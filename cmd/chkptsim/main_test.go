package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
)

func writeChain(t *testing.T, n int) string {
	t.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wf.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunExponential(t *testing.T) {
	path := writeChain(t, 5)
	if err := run(path, "exponential", 0.05, 0, 0.7, 1, 0.25, 2000, 1, ""); err != nil {
		t.Fatalf("exponential sim: %v", err)
	}
}

func TestRunWeibull(t *testing.T) {
	path := writeChain(t, 5)
	if err := run(path, "weibull", 0, 80, 0.7, 4, 0.25, 1000, 1, ""); err != nil {
		t.Fatalf("weibull sim: %v", err)
	}
}

func TestRunLogNormal(t *testing.T) {
	path := writeChain(t, 4)
	if err := run(path, "lognormal", 0, 80, 0.5, 2, 0.25, 1000, 1, ""); err != nil {
		t.Fatalf("lognormal sim: %v", err)
	}
}

func TestRunReplaysPlanOnDAG(t *testing.T) {
	// A non-chain workflow becomes simulatable once a plan (with a full
	// linearization) is supplied.
	g, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "wf.json")
	wf, err := os.Create(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(wf); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(order, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	planPath := filepath.Join(dir, "plan.json")
	pf, err := os.Create(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WritePlan(pf, plan); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	if err := run(wfPath, "exponential", 0.05, 0, 0, 1, 0.25, 1000, 1, planPath); err != nil {
		t.Fatalf("replaying plan on DAG: %v", err)
	}
	// A plan that does not fit the workflow must be rejected.
	short, err := core.NewPlan([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad.json")
	bf, err := os.Create(badPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WritePlan(bf, short); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	if err := run(wfPath, "exponential", 0.05, 0, 0, 1, 0.25, 100, 1, badPath); err == nil {
		t.Error("mismatched plan should be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeChain(t, 4)
	if err := run(path, "weibull", 0, 0, 0.7, 1, 0, 100, 1, ""); err == nil {
		t.Error("weibull without mtbf should fail")
	}
	if err := run(path, "cauchy", 0.05, 0, 0, 1, 0, 100, 1, ""); err == nil {
		t.Error("unknown law should fail")
	}
	if err := run(filepath.Join(t.TempDir(), "nope.json"), "exponential", 0.05, 0, 0, 1, 0, 100, 1, ""); err == nil {
		t.Error("missing file should fail")
	}
	// Non-chain workflow is rejected.
	g, err := dag.ForkJoin(2, 1, dag.DefaultWeights(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	dagPath := filepath.Join(t.TempDir(), "dag.json")
	f, err := os.Create(dagPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if err := run(dagPath, "exponential", 0.05, 0, 0, 1, 0, 100, 1, ""); err == nil {
		t.Error("non-chain workflow should fail")
	}
}
