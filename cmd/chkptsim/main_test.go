package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
	"repro/internal/sim"
)

func writeChain(t *testing.T, n int) string {
	t.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "wf.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// base returns the legacy flag set the original positional CLI took.
func base(wfPath string) config {
	return config{
		wfPath: wfPath, law: "exponential", lambda: 0.05, shape: 0.7,
		procs: 1, downtime: 0.25, runs: 2000, seed: 1, shard: -1,
		shards: 1,
	}
}

func TestRunExponential(t *testing.T) {
	cfg := base(writeChain(t, 5))
	if err := run(cfg); err != nil {
		t.Fatalf("exponential sim: %v", err)
	}
}

func TestRunWeibull(t *testing.T) {
	cfg := base(writeChain(t, 5))
	cfg.law, cfg.lambda, cfg.mtbf, cfg.procs, cfg.runs = "weibull", 0, 80, 4, 1000
	if err := run(cfg); err != nil {
		t.Fatalf("weibull sim: %v", err)
	}
}

func TestRunLogNormal(t *testing.T) {
	cfg := base(writeChain(t, 4))
	cfg.law, cfg.lambda, cfg.mtbf, cfg.shape, cfg.procs, cfg.runs = "lognormal", 0, 80, 0.5, 2, 1000
	if err := run(cfg); err != nil {
		t.Fatalf("lognormal sim: %v", err)
	}
}

func TestRunReplaysPlanOnDAG(t *testing.T) {
	// A non-chain workflow becomes simulatable once a plan (with a full
	// linearization) is supplied.
	g, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	wfPath := filepath.Join(dir, "wf.json")
	wf, err := os.Create(wfPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(wf); err != nil {
		t.Fatal(err)
	}
	wf.Close()

	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(order, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	planPath := filepath.Join(dir, "plan.json")
	pf, err := os.Create(planPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WritePlan(pf, plan); err != nil {
		t.Fatal(err)
	}
	pf.Close()

	cfg := base(wfPath)
	cfg.runs, cfg.planPath = 1000, planPath
	if err := run(cfg); err != nil {
		t.Fatalf("replaying plan on DAG: %v", err)
	}
	// A plan that does not fit the workflow must be rejected.
	short, err := core.NewPlan([]int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	badPath := filepath.Join(dir, "bad.json")
	bf, err := os.Create(badPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := core.WritePlan(bf, short); err != nil {
		t.Fatal(err)
	}
	bf.Close()
	cfg.runs, cfg.planPath = 100, badPath
	if err := run(cfg); err == nil {
		t.Error("mismatched plan should be rejected")
	}
}

func TestRunErrors(t *testing.T) {
	path := writeChain(t, 4)
	cfg := base(path)
	cfg.law, cfg.lambda, cfg.runs = "weibull", 0, 100
	if err := run(cfg); err == nil {
		t.Error("weibull without mtbf should fail")
	}
	cfg = base(path)
	cfg.law, cfg.runs = "cauchy", 100
	if err := run(cfg); err == nil {
		t.Error("unknown law should fail")
	}
	cfg = base(filepath.Join(t.TempDir(), "nope.json"))
	if err := run(cfg); err == nil {
		t.Error("missing file should fail")
	}
	// Non-chain workflow is rejected.
	g, err := dag.ForkJoin(2, 1, dag.DefaultWeights(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	dagPath := filepath.Join(t.TempDir(), "dag.json")
	f, err := os.Create(dagPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	f.Close()
	cfg = base(dagPath)
	cfg.runs = 100
	if err := run(cfg); err == nil {
		t.Error("non-chain workflow should fail")
	}
}

// TestCampaignShardsAcrossInvocations runs each shard in its own run()
// call against a shared campaign directory — as separate machines would
// — then merges with a -merge invocation, and checks the directory's
// merged result matches an in-process single-invocation campaign.
func TestCampaignShardsAcrossInvocations(t *testing.T) {
	path := writeChain(t, 5)
	dir := t.TempDir()
	cfg := base(path)
	cfg.runs, cfg.candidates, cfg.shards, cfg.resumeDir = 256, "dp,never", 3, dir
	for s := 0; s < 3; s++ {
		c := cfg
		c.shard = s
		if err := run(c); err != nil {
			t.Fatalf("shard %d invocation: %v", s, err)
		}
	}
	merge := config{resumeDir: dir, mergeOnly: true, shard: -1}
	if err := run(merge); err != nil {
		t.Fatalf("merge invocation: %v", err)
	}

	// The directory's shards must merge to the same bits a fresh
	// non-spilled campaign over the same fingerprint produces.
	parts, err := sim.LoadCampaignDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := sim.MergeShards(parts)
	if err != nil {
		t.Fatal(err)
	}
	fresh := cfg
	fresh.resumeDir = ""
	if err := run(fresh); err != nil {
		t.Fatalf("fresh full campaign: %v", err)
	}
	if merged.Runs != 256 {
		t.Errorf("merged runs = %d, want 256", merged.Runs)
	}
}

// TestCampaignFingerprintMismatchLoud: a campaign directory refuses
// invocations whose parameters disagree with its manifest.
func TestCampaignFingerprintMismatchLoud(t *testing.T) {
	path := writeChain(t, 5)
	dir := t.TempDir()
	cfg := base(path)
	cfg.runs, cfg.candidates, cfg.shards, cfg.resumeDir, cfg.shard = 256, "dp,never", 2, dir, 0
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	for name, mut := range map[string]func(*config){
		"seed":       func(c *config) { c.seed = 99 },
		"runs":       func(c *config) { c.runs = 512 },
		"candidates": func(c *config) { c.candidates = "dp,always" },
		"downtime":   func(c *config) { c.downtime = 0.5 },
	} {
		c := cfg
		mut(&c)
		err := run(c)
		if err == nil || !strings.Contains(err.Error(), "already holds") {
			t.Errorf("%s mismatch: error %v, want manifest refusal", name, err)
		}
	}
}

func TestCampaignAdaptive(t *testing.T) {
	path := writeChain(t, 5)
	cfg := base(path)
	cfg.runs, cfg.candidates, cfg.ciWidth = 4000, "dp,never", 5
	if err := run(cfg); err != nil {
		t.Fatalf("adaptive campaign: %v", err)
	}
}

func TestCampaignFlagErrors(t *testing.T) {
	path := writeChain(t, 5)
	for name, tc := range map[string]struct {
		mut  func(*config)
		want string
	}{
		"shard without resume": {func(c *config) { c.shard = 0; c.shards = 2 }, "-resume"},
		"merge without resume": {func(c *config) { c.mergeOnly = true }, "-resume"},
		"ci-width with resume": {func(c *config) { c.ciWidth = 1; c.resumeDir = "x"; c.candidates = "dp,never" }, "-resume"},
		"unknown candidate":    {func(c *config) { c.candidates = "dp,magic" }, "unknown candidate"},
		"bad every":            {func(c *config) { c.candidates = "every:0" }, "every:k"},
	} {
		cfg := base(path)
		cfg.runs = 100
		tc.mut(&cfg)
		if err := run(cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want mention of %q", name, err, tc.want)
		}
	}
}
