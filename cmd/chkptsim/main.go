// Command chkptsim Monte-Carlo-simulates a workflow's checkpoint plan
// under a chosen failure law and compares the simulated makespan with the
// analytical expectation where one exists (Exponential failures,
// Proposition 1).
//
// Usage:
//
//	chkptsim -workflow wf.json -lambda 0.01 -downtime 1 -runs 100000
//	chkptsim -workflow wf.json -law weibull -shape 0.7 -mtbf 100 -procs 16
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

func main() {
	var (
		wfPath   = flag.String("workflow", "", "workflow JSON file (required; must be a linear chain)")
		law      = flag.String("law", "exponential", "failure law: exponential | weibull | lognormal")
		lambda   = flag.Float64("lambda", 0.01, "platform failure rate (exponential law)")
		mtbf     = flag.Float64("mtbf", 0, "per-processor MTBF (weibull/lognormal; overrides -lambda)")
		shape    = flag.Float64("shape", 0.7, "weibull shape / lognormal sigma")
		procs    = flag.Int("procs", 1, "processor count for superposed non-exponential laws")
		downtime = flag.Float64("downtime", 0, "downtime D after each failure")
		runs     = flag.Int("runs", 50000, "Monte-Carlo runs")
		seed     = flag.Uint64("seed", 1, "random seed")
		planPath = flag.String("plan", "", "replay a plan JSON (from chkptplan -out) instead of recomputing the DP")
	)
	flag.Parse()
	if *wfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*wfPath, *law, *lambda, *mtbf, *shape, *procs, *downtime, *runs, *seed, *planPath); err != nil {
		fmt.Fprintf(os.Stderr, "chkptsim: %v\n", err)
		os.Exit(1)
	}
}

func run(wfPath, law string, lambda, mtbf, shape float64, procs int, downtime float64, runs int, seed uint64, planPath string) error {
	f, err := os.Open(wfPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := dag.Read(f)
	if err != nil {
		return err
	}

	// The analytical model needs an Exponential rate; for other laws it
	// is the mean-matched rate, used only for planning.
	planLambda := lambda
	if mtbf > 0 {
		planLambda = float64(procs) / mtbf
	}
	m, err := expectation.NewModel(planLambda, downtime)
	if err != nil {
		return err
	}

	var (
		order           []int
		checkpointAfter []bool
	)
	if planPath != "" {
		pf, err := os.Open(planPath)
		if err != nil {
			return err
		}
		plan, err := core.ReadPlan(pf)
		pf.Close()
		if err != nil {
			return err
		}
		if err := plan.Validate(g); err != nil {
			return fmt.Errorf("plan does not fit workflow: %w", err)
		}
		order = plan.Order
		checkpointAfter = plan.CheckpointAfter
	} else {
		var ok bool
		order, ok = g.IsLinearChain()
		if !ok {
			return fmt.Errorf("workflow is not a linear chain: compute a plan with chkptplan -out and pass it via -plan")
		}
	}
	cp, err := core.NewChainProblemOrdered(g, order, m, 0)
	if err != nil {
		return err
	}
	var res core.ChainResult
	if checkpointAfter == nil {
		res, err = core.SolveChainDP(cp)
		if err != nil {
			return err
		}
	} else {
		e, err := cp.Makespan(checkpointAfter)
		if err != nil {
			return err
		}
		res = core.ChainResult{Expected: e, CheckpointAfter: checkpointAfter}
	}
	fmt.Printf("plan: %d checkpoints, analytical E[T] = %.6g (exponential model, λ=%g)\n",
		len(res.Positions()), res.Expected, planLambda)

	var factory sim.ProcessFactory
	switch law {
	case "exponential":
		factory = sim.ExponentialFactory(planLambda)
	case "weibull":
		if mtbf <= 0 {
			return fmt.Errorf("weibull law needs -mtbf")
		}
		scale := mtbf / math.Gamma(1+1/shape)
		w, err := failure.NewWeibull(shape, scale)
		if err != nil {
			return err
		}
		factory = sim.SuperposedFactory(w, procs, failure.RejuvenateFailedOnly)
		fmt.Printf("simulating %s per processor × %d processors\n", w, procs)
	case "lognormal":
		if mtbf <= 0 {
			return fmt.Errorf("lognormal law needs -mtbf")
		}
		mu := math.Log(mtbf) - shape*shape/2
		l, err := failure.NewLogNormal(mu, shape)
		if err != nil {
			return err
		}
		factory = sim.SuperposedFactory(l, procs, failure.RejuvenateFailedOnly)
		fmt.Printf("simulating %s per processor × %d processors\n", l, procs)
	default:
		return fmt.Errorf("unknown law %q", law)
	}

	mc, err := sim.MonteCarloPlan(cp, res.CheckpointAfter, factory, sim.Options{}, runs, rng.New(seed))
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated over %d runs:\n", mc.Runs)
	fmt.Printf("  makespan: mean %.6g  sd %.4g  99%%CI ±%.4g  min %.6g  max %.6g\n",
		mc.Makespan.Mean(), mc.Makespan.StdDev(), mc.Makespan.CI(0.99), mc.Makespan.Min(), mc.Makespan.Max())
	fmt.Printf("  failures per run: mean %.4g  max %.0f\n", mc.Failures.Mean(), mc.Failures.Max())
	fmt.Printf("  time split: useful %.4g  lost %.4g  downtime %.4g  recovery %.4g\n",
		mc.Useful.Mean(), mc.Lost.Mean(), mc.Downtime.Mean(), mc.RecoveryTime.Mean())
	if law == "exponential" {
		rel := math.Abs(mc.Makespan.Mean()-res.Expected) / res.Expected
		fmt.Printf("\nanalytical vs simulated: %.6g vs %.6g (relative gap %.2e; Prop. 1 is exact, gap is Monte-Carlo noise)\n",
			res.Expected, mc.Makespan.Mean(), rel)
	}
	return nil
}
