// Command chkptsim Monte-Carlo-simulates a workflow's checkpoint plan
// under a chosen failure law and compares the simulated makespan with the
// analytical expectation where one exists (Exponential failures,
// Proposition 1).
//
// Usage:
//
//	chkptsim -workflow wf.json -lambda 0.01 -downtime 1 -runs 100000
//	chkptsim -workflow wf.json -law weibull -shape 0.7 -mtbf 100 -procs 16
//
// Beyond the single-plan simulation, -candidates switches to a
// common-random-number comparator campaign over several checkpoint
// strategies, run through the sharded deterministic pipeline: results
// are bit-identical for any -shards value, shards can be computed by
// separate invocations against a shared -resume directory and merged
// with -merge, and a killed invocation resumes from its spilled traces.
//
//	chkptsim -workflow wf.json -candidates dp,daly,never -runs 1e6 -shards 16
//	chkptsim -workflow wf.json -candidates dp,daly -shards 4 -shard 2 -resume dir/
//	chkptsim -resume dir/ -merge
//	chkptsim -workflow wf.json -candidates dp,every:3 -ci-width 0.05 -runs 200000
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

// config carries every flag; run is pure in it so tests drive the CLI
// without exec.
type config struct {
	wfPath   string
	law      string
	lambda   float64
	mtbf     float64
	shape    float64
	procs    int
	downtime float64
	runs     int
	seed     uint64
	planPath string

	// Sharded-campaign extensions.
	candidates string
	shards     int
	shard      int
	block      int
	resumeDir  string
	mergeOnly  bool
	ciWidth    float64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.wfPath, "workflow", "", "workflow JSON file (required unless -merge; must be a linear chain)")
	flag.StringVar(&cfg.law, "law", "exponential", "failure law: exponential | weibull | lognormal")
	flag.Float64Var(&cfg.lambda, "lambda", 0.01, "platform failure rate (exponential law)")
	flag.Float64Var(&cfg.mtbf, "mtbf", 0, "per-processor MTBF (weibull/lognormal; overrides -lambda)")
	flag.Float64Var(&cfg.shape, "shape", 0.7, "weibull shape / lognormal sigma")
	flag.IntVar(&cfg.procs, "procs", 1, "processor count for superposed non-exponential laws")
	flag.Float64Var(&cfg.downtime, "downtime", 0, "downtime D after each failure")
	flag.IntVar(&cfg.runs, "runs", 50000, "Monte-Carlo runs (per-candidate cap with -ci-width)")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed")
	flag.StringVar(&cfg.planPath, "plan", "", "replay a plan JSON (from chkptplan -out) instead of recomputing the DP")
	flag.StringVar(&cfg.candidates, "candidates", "", "comma-separated CRN campaign candidates: dp | always | never | daly | every:k (first is the baseline)")
	flag.IntVar(&cfg.shards, "shards", 1, "split the campaign into N deterministic shards; merged results are bit-identical for any N")
	flag.IntVar(&cfg.shard, "shard", -1, "run only this shard index (needs -resume; combine later with -merge)")
	flag.IntVar(&cfg.block, "block", 0, "replications per deterministic fold block (0 = auto); part of the campaign fingerprint")
	flag.StringVar(&cfg.resumeDir, "resume", "", "campaign directory: spill traces and shard results there, resume bit-identically after a kill")
	flag.BoolVar(&cfg.mergeOnly, "merge", false, "merge the finished shards in -resume and print, without simulating")
	flag.Float64Var(&cfg.ciWidth, "ci-width", 0, "adaptive stopping: sample until every paired-delta 99% CI is narrower than this or excludes zero")
	flag.Parse()
	if cfg.wfPath == "" && !cfg.mergeOnly {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "chkptsim: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	if cfg.mergeOnly {
		if cfg.resumeDir == "" {
			return fmt.Errorf("-merge reads shard results from a campaign directory: pass -resume <dir>")
		}
		return mergeCampaign(cfg.resumeDir)
	}

	f, err := os.Open(cfg.wfPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := dag.Read(f)
	if err != nil {
		return err
	}

	// The analytical model needs an Exponential rate; for other laws it
	// is the mean-matched rate, used only for planning.
	planLambda := cfg.lambda
	if cfg.mtbf > 0 {
		planLambda = float64(cfg.procs) / cfg.mtbf
	}
	m, err := expectation.NewModel(planLambda, cfg.downtime)
	if err != nil {
		return err
	}

	var (
		order           []int
		checkpointAfter []bool
	)
	if cfg.planPath != "" {
		pf, err := os.Open(cfg.planPath)
		if err != nil {
			return err
		}
		plan, err := core.ReadPlan(pf)
		pf.Close()
		if err != nil {
			return err
		}
		if err := plan.Validate(g); err != nil {
			return fmt.Errorf("plan does not fit workflow: %w", err)
		}
		order = plan.Order
		checkpointAfter = plan.CheckpointAfter
	} else {
		var ok bool
		order, ok = g.IsLinearChain()
		if !ok {
			return fmt.Errorf("workflow is not a linear chain: compute a plan with chkptplan -out and pass it via -plan")
		}
	}
	cp, err := core.NewChainProblemOrdered(g, order, m, 0)
	if err != nil {
		return err
	}
	var res core.ChainResult
	if checkpointAfter == nil {
		res, err = core.SolveChainDP(cp)
		if err != nil {
			return err
		}
	} else {
		e, err := cp.Makespan(checkpointAfter)
		if err != nil {
			return err
		}
		res = core.ChainResult{Expected: e, CheckpointAfter: checkpointAfter}
	}
	fmt.Printf("plan: %d checkpoints, analytical E[T] = %.6g (exponential model, λ=%g)\n",
		len(res.Positions()), res.Expected, planLambda)

	var factory sim.ProcessFactory
	switch cfg.law {
	case "exponential":
		factory = sim.ExponentialFactory(planLambda)
	case "weibull":
		if cfg.mtbf <= 0 {
			return fmt.Errorf("weibull law needs -mtbf")
		}
		scale := cfg.mtbf / math.Gamma(1+1/cfg.shape)
		w, err := failure.NewWeibull(cfg.shape, scale)
		if err != nil {
			return err
		}
		factory = sim.SuperposedFactory(w, cfg.procs, failure.RejuvenateFailedOnly)
		fmt.Printf("simulating %s per processor × %d processors\n", w, cfg.procs)
	case "lognormal":
		if cfg.mtbf <= 0 {
			return fmt.Errorf("lognormal law needs -mtbf")
		}
		mu := math.Log(cfg.mtbf) - cfg.shape*cfg.shape/2
		l, err := failure.NewLogNormal(mu, cfg.shape)
		if err != nil {
			return err
		}
		factory = sim.SuperposedFactory(l, cfg.procs, failure.RejuvenateFailedOnly)
		fmt.Printf("simulating %s per processor × %d processors\n", l, cfg.procs)
	default:
		return fmt.Errorf("unknown law %q", cfg.law)
	}

	if cfg.candidates != "" || cfg.shards > 1 || cfg.resumeDir != "" ||
		cfg.shard >= 0 || cfg.ciWidth > 0 || cfg.block > 0 {
		return runCampaign(cfg, cp, res, factory, planLambda)
	}

	mc, err := sim.MonteCarloPlan(cp, res.CheckpointAfter, factory, sim.Options{}, cfg.runs, rng.New(cfg.seed))
	if err != nil {
		return err
	}
	fmt.Printf("\nsimulated over %d runs:\n", mc.Runs)
	fmt.Printf("  makespan: mean %.6g  sd %.4g  99%%CI ±%.4g  min %.6g  max %.6g\n",
		mc.Makespan.Mean(), mc.Makespan.StdDev(), mc.Makespan.CI(0.99), mc.Makespan.Min(), mc.Makespan.Max())
	fmt.Printf("  failures per run: mean %.4g  max %.0f\n", mc.Failures.Mean(), mc.Failures.Max())
	fmt.Printf("  time split: useful %.4g  lost %.4g  downtime %.4g  recovery %.4g\n",
		mc.Useful.Mean(), mc.Lost.Mean(), mc.Downtime.Mean(), mc.RecoveryTime.Mean())
	if cfg.law == "exponential" {
		rel := math.Abs(mc.Makespan.Mean()-res.Expected) / res.Expected
		fmt.Printf("\nanalytical vs simulated: %.6g vs %.6g (relative gap %.2e; Prop. 1 is exact, gap is Monte-Carlo noise)\n",
			res.Expected, mc.Makespan.Mean(), rel)
	}
	return nil
}

// runCampaign is the sharded CRN path: bit-identical merges across any
// shard split, resumable against a campaign directory, optionally with
// adaptive sample-until-CI-width stopping.
func runCampaign(cfg config, cp *core.ChainProblem, res core.ChainResult, factory sim.ProcessFactory, planLambda float64) error {
	names, plans, err := buildCandidates(cfg, cp, res, planLambda)
	if err != nil {
		return err
	}
	so := sim.ShardOptions{
		Options:   sim.Options{Downtime: cp.Model.Downtime},
		Seed:      cfg.seed,
		Runs:      cfg.runs,
		Shards:    cfg.shards,
		BlockSize: cfg.block,
		SpillDir:  cfg.resumeDir,
	}

	if cfg.ciWidth > 0 {
		if cfg.resumeDir != "" || cfg.shard >= 0 {
			return fmt.Errorf("-ci-width campaigns re-plan every round and cannot spill or split across invocations; drop -resume/-shard")
		}
		so.SpillDir = ""
		ares, err := sim.CampaignPlansAdaptive(plans, factory, so, sim.AdaptiveOptions{
			TargetWidth: cfg.ciWidth,
			MaxRuns:     cfg.runs,
		})
		if err != nil {
			return err
		}
		printAdaptive(names, ares, cfg.ciWidth)
		return nil
	}

	if cfg.resumeDir != "" {
		// Pin the fingerprint before any work: a directory holding a
		// different campaign fails here, loudly, not after hours of
		// simulation.
		fp, err := so.Fingerprint(plans)
		if err != nil {
			return err
		}
		if err := sim.WriteCampaignManifest(cfg.resumeDir, fp); err != nil {
			return err
		}
	}

	if cfg.shard >= 0 {
		if cfg.resumeDir == "" {
			return fmt.Errorf("-shard runs one partition of a multi-invocation campaign and needs -resume <dir> to leave its result in")
		}
		sr, err := sim.CampaignPlansShard(plans, factory, so, cfg.shard)
		if err != nil {
			return err
		}
		fmt.Printf("shard %d/%d done: %d blocks under fingerprint\n  %s\nmerge with -merge -resume %s once every shard has run\n",
			cfg.shard, so.Shards, len(sr.Blocks), sr.Fingerprint, cfg.resumeDir)
		return nil
	}

	out, err := sim.CampaignPlansSharded(plans, factory, so)
	if err != nil {
		return err
	}
	printCampaign(names, out)
	return nil
}

// mergeCampaign folds the shard results already present in dir.
func mergeCampaign(dir string) error {
	fp, err := sim.ReadCampaignManifest(dir)
	if err != nil {
		return fmt.Errorf("reading campaign manifest in %s: %w", dir, err)
	}
	parts, err := sim.LoadCampaignDir(dir)
	if err != nil {
		return err
	}
	out, err := sim.MergeShards(parts)
	if err != nil {
		return err
	}
	fmt.Printf("merged campaign\n  %s\n", fp)
	names := make([]string, fp.Candidates)
	for i := range names {
		names[i] = fmt.Sprintf("cand%d", i)
	}
	printCampaign(names, out)
	return nil
}

// buildCandidates turns the -candidates spec into plans over the chain.
// The candidate list is part of the campaign's workload fingerprint, so
// shard invocations that disagree on it refuse to merge.
func buildCandidates(cfg config, cp *core.ChainProblem, res core.ChainResult, planLambda float64) ([]string, [][]core.Segment, error) {
	spec := cfg.candidates
	if spec == "" {
		spec = "dp"
	}
	var names []string
	var plans [][]core.Segment
	for _, name := range strings.Split(spec, ",") {
		name = strings.TrimSpace(name)
		var ck []bool
		switch {
		case name == "dp":
			ck = res.CheckpointAfter
		case name == "always":
			r, err := core.AlwaysCheckpoint(cp)
			if err != nil {
				return nil, nil, err
			}
			ck = r.CheckpointAfter
		case name == "never":
			r, err := core.NeverCheckpoint(cp)
			if err != nil {
				return nil, nil, err
			}
			ck = r.CheckpointAfter
		case name == "daly":
			meanC := 0.0
			for _, c := range cp.Ckpt {
				meanC += c
			}
			meanC /= float64(len(cp.Ckpt))
			r, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, planLambda))
			if err != nil {
				return nil, nil, err
			}
			ck = r.CheckpointAfter
		case strings.HasPrefix(name, "every:"):
			k, err := strconv.Atoi(strings.TrimPrefix(name, "every:"))
			if err != nil || k <= 0 {
				return nil, nil, fmt.Errorf("candidate %q: want every:k with a positive integer k", name)
			}
			ck = make([]bool, cp.Len())
			for i := range ck {
				ck[i] = (i+1)%k == 0
			}
			ck[len(ck)-1] = true
		default:
			return nil, nil, fmt.Errorf("unknown candidate %q (want dp, always, never, daly or every:k)", name)
		}
		segs, err := cp.Segments(ck)
		if err != nil {
			return nil, nil, err
		}
		names = append(names, name)
		plans = append(plans, segs)
	}
	return names, plans, nil
}

func printCampaign(names []string, out sim.CampaignResult) {
	fmt.Printf("\nCRN campaign: %d candidates × %d runs\n", len(out.Results), out.Runs)
	for i, r := range out.Results {
		fmt.Printf("  %-10s mean %.6g  sd %.4g  99%%CI ±%.4g", names[i], r.Makespan.Mean(), r.Makespan.StdDev(), r.Makespan.CI(0.99))
		if out.Digests != nil {
			d := out.Digests[i]
			fmt.Printf("  p50 %.6g  p90 %.6g  p99 %.6g", d.Quantile(0.5), d.Quantile(0.9), d.Quantile(0.99))
		}
		fmt.Println()
	}
	for i := 1; i < len(out.Delta); i++ {
		fmt.Printf("  Δ(%s − %s) = %.6g ± %.4g (99%% paired CI)\n",
			names[i], names[0], out.Delta[i].Mean(), out.Delta[i].CI(0.99))
	}
}

func printAdaptive(names []string, out sim.AdaptiveResult, target float64) {
	fmt.Printf("\nadaptive CRN campaign: %d rounds, %d replications spent (fixed design at the same width: %d → %.0f%%)\n",
		out.Rounds, out.Spent, out.FixedSpent, 100*float64(out.Spent)/float64(out.FixedSpent))
	for i := range out.Results {
		fmt.Printf("  %-10s runs %-8d mean %.6g", names[i], out.RunsPerCandidate[i], out.Results[i].Makespan.Mean())
		if i > 0 {
			fmt.Printf("  Δ=%.6g ±%.4g  %s", out.Delta[i].Mean(), out.Widths[i], out.Decision[i])
		}
		fmt.Println()
	}
	fmt.Printf("  target half-width %.4g at 99%% confidence\n", target)
}
