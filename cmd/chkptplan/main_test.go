package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
)

func writeWorkflow(t *testing.T, g *dag.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wf.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunChainWorkflow(t *testing.T) {
	g, err := dag.Chain(6, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	if err := run(path, 0.02, 0.5, 0, false, true, 0, ""); err != nil {
		t.Fatalf("run on chain: %v", err)
	}
}

func TestRunDAGWorkflow(t *testing.T) {
	g, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	if err := run(path, 0.02, 0.5, 0.1, false, false, 0, ""); err != nil {
		t.Fatalf("run on DAG: %v", err)
	}
	if err := run(path, 0.02, 0.5, 0.1, true, false, 0, ""); err != nil {
		t.Fatalf("run on DAG with live costs: %v", err)
	}
}

func TestRunWritesPlanAndHonorsBudget(t *testing.T) {
	g, err := dag.Chain(8, dag.DefaultWeights(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	if err := run(path, 0.05, 0.5, 0, false, false, 2, planPath); err != nil {
		t.Fatalf("run with budget+out: %v", err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatalf("plan file not written: %v", err)
	}
	defer f.Close()
	plan, err := core.ReadPlan(f)
	if err != nil {
		t.Fatalf("plan file unreadable: %v", err)
	}
	if got := plan.NumCheckpoints(); got > 2 {
		t.Errorf("budget 2 violated: %d checkpoints in written plan", got)
	}
	if err := plan.Validate(g); err != nil {
		t.Errorf("written plan invalid for workflow: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(filepath.Join(t.TempDir(), "missing.json"), 0.02, 0, 0, false, false, 0, ""); err == nil {
		t.Error("missing file should fail")
	}
	g, err := dag.Chain(3, dag.DefaultWeights(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	if err := run(path, -1, 0, 0, false, false, 0, ""); err == nil {
		t.Error("invalid lambda should fail")
	}
	// Corrupt JSON.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(bad, 0.02, 0, 0, false, false, 0, ""); err == nil {
		t.Error("corrupt workflow should fail")
	}
}
