package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/rng"
)

func writeWorkflow(t *testing.T, g *dag.Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "wf.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunChainWorkflow(t *testing.T) {
	g, err := dag.Chain(6, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	if err := run(config{wfPath: path, lambda: 0.02, downtime: 0.5, baselines: true}); err != nil {
		t.Fatalf("run on chain: %v", err)
	}
}

// TestRunAlgoSelection drives every -algo arm on a chain workflow; the
// default-weights chain certifies, so even the pinned monotone arm must
// succeed, and an unknown arm must fail loudly.
func TestRunAlgoSelection(t *testing.T) {
	g, err := dag.Chain(10, dag.DefaultWeights(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	for _, algo := range []string{"auto", "monotone", "kernel", "dense"} {
		if err := run(config{wfPath: path, lambda: 0.02, downtime: 0.5, algo: algo}); err != nil {
			t.Fatalf("run with -algo %s: %v", algo, err)
		}
	}
	if err := run(config{wfPath: path, lambda: 0.02, algo: "quantum"}); err == nil {
		t.Error("unknown -algo should fail")
	}
	// -budget only exists as the auto-dispatching portfolio: a pinned
	// arm must be refused (not silently ignored), an unknown arm still
	// rejected, and auto accepted.
	if err := run(config{wfPath: path, lambda: 0.02, budget: 2, algo: "dense"}); err == nil {
		t.Error("-algo dense with -budget should fail")
	}
	if err := run(config{wfPath: path, lambda: 0.02, budget: 2, algo: "quantum"}); err == nil {
		t.Error("unknown -algo with -budget should fail")
	}
	if err := run(config{wfPath: path, lambda: 0.02, budget: 2, algo: "auto"}); err != nil {
		t.Errorf("-algo auto with -budget: %v", err)
	}
	// Workflows taking the DAG paths refuse a pinned arm (and still
	// reject unknown values) rather than silently ignoring -algo.
	fj, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	dagPath := writeWorkflow(t, fj)
	if err := run(config{wfPath: dagPath, lambda: 0.02, algo: "dense"}); err == nil {
		t.Error("-algo dense on a DAG workflow should fail")
	}
	if err := run(config{wfPath: dagPath, lambda: 0.02, algo: "quantum"}); err == nil {
		t.Error("unknown -algo on a DAG workflow should fail")
	}
	if err := run(config{wfPath: path, lambda: 0.02, liveCosts: true, algo: "kernel"}); err == nil {
		t.Error("-algo kernel with -livecosts should fail (live-set chains take the DAG path)")
	}
	if err := run(config{wfPath: dagPath, lambda: 0.02, algo: "auto"}); err != nil {
		t.Errorf("-algo auto on a DAG workflow: %v", err)
	}
}

func TestRunDAGWorkflow(t *testing.T) {
	g, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	if err := run(config{wfPath: path, lambda: 0.02, downtime: 0.5, r0: 0.1}); err != nil {
		t.Fatalf("run on DAG: %v", err)
	}
	if err := run(config{wfPath: path, lambda: 0.02, downtime: 0.5, r0: 0.1, liveCosts: true}); err != nil {
		t.Fatalf("run on DAG with live costs: %v", err)
	}
}

// TestRunExactMatchesAndWritesPlan drives the -exact lattice arm: it
// must produce a valid plan at least as good as the portfolio's.
func TestRunExactMatchesAndWritesPlan(t *testing.T) {
	g, err := dag.GNP(9, 0.3, dag.DefaultWeights(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	for _, live := range []bool{false, true} {
		if err := run(config{
			wfPath: path, lambda: 0.03, downtime: 1,
			liveCosts: live, exact: true, workers: 1, outPlan: planPath,
		}); err != nil {
			t.Fatalf("exact run (live=%v): %v", live, err)
		}
		f, err := os.Open(planPath)
		if err != nil {
			t.Fatalf("plan file not written: %v", err)
		}
		plan, err := core.ReadPlan(f)
		f.Close()
		if err != nil {
			t.Fatalf("plan file unreadable: %v", err)
		}
		if err := plan.Validate(g); err != nil {
			t.Errorf("exact plan invalid: %v", err)
		}
	}
	// A tight state cap must fail loudly, not melt down.
	if err := run(config{
		wfPath: path, lambda: 0.03, downtime: 1, exact: true, maxStates: 1,
	}); err == nil {
		t.Error("state cap of 1 should fail")
	}
}

func TestRunWritesPlanAndHonorsBudget(t *testing.T) {
	g, err := dag.Chain(8, dag.DefaultWeights(), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	planPath := filepath.Join(t.TempDir(), "plan.json")
	if err := run(config{wfPath: path, lambda: 0.05, downtime: 0.5, budget: 2, outPlan: planPath}); err != nil {
		t.Fatalf("run with budget+out: %v", err)
	}
	f, err := os.Open(planPath)
	if err != nil {
		t.Fatalf("plan file not written: %v", err)
	}
	defer f.Close()
	plan, err := core.ReadPlan(f)
	if err != nil {
		t.Fatalf("plan file unreadable: %v", err)
	}
	if got := plan.NumCheckpoints(); got > 2 {
		t.Errorf("budget 2 violated: %d checkpoints in written plan", got)
	}
	if err := plan.Validate(g); err != nil {
		t.Errorf("written plan invalid for workflow: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(config{wfPath: filepath.Join(t.TempDir(), "missing.json"), lambda: 0.02}); err == nil {
		t.Error("missing file should fail")
	}
	g, err := dag.Chain(3, dag.DefaultWeights(), rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	path := writeWorkflow(t, g)
	if err := run(config{wfPath: path, lambda: -1}); err == nil {
		t.Error("invalid lambda should fail")
	}
	// Corrupt JSON.
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{nonsense"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(config{wfPath: bad, lambda: 0.02}); err == nil {
		t.Error("corrupt workflow should fail")
	}
}
