// Command chkptplan computes checkpoint plans for a workflow stored in
// the JSON format of internal/dag (see examples/pipeline for a generator).
//
// Usage:
//
//	chkptplan -workflow wf.json -lambda 0.01 -downtime 1
//	chkptplan -workflow wf.json -lambda 0.01 -livecosts   # live-set cost model
//	chkptplan -workflow wf.json -lambda 0.01 -baselines   # compare baselines
//	chkptplan -workflow wf.json -lambda 0.01 -exact       # downset-lattice exact optimum
//	chkptplan -workflow wf.json -lambda 0.01 -algo monotone  # pin a chain solver arm
//
// For linear chains the plan is optimal (Proposition 3). The chain
// solver is a portfolio: -algo auto (default) runs the
// quadrangle-inequality certifier and dispatches certified instances to
// the O(n log n) monotone-matrix arm, falling back to the pruned kernel
// scan; -algo monotone/kernel/dense pin one arm (monotone fails with
// the certifier's reason on uncertified instances; dense is the seed
// O(n²) reference). For general DAGs the default is a heuristic
// portfolio of linearization strategies with exact per-order placement
// (optimal ordering is strongly NP-hard by Proposition 2); -exact
// instead runs the downset-lattice DP, which returns the globally
// optimal order-plus-placement for graphs whose lattice fits in memory
// (-maxstates caps it).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/sim"
)

// config carries the CLI parameters.
type config struct {
	wfPath    string
	lambda    float64
	downtime  float64
	r0        float64
	liveCosts bool
	baselines bool
	budget    int
	outPlan   string
	exact     bool
	workers   int
	maxStates int64
	algo      string
}

func main() {
	var cfg config
	flag.StringVar(&cfg.wfPath, "workflow", "", "workflow JSON file (required)")
	flag.Float64Var(&cfg.lambda, "lambda", 0.01, "platform failure rate λ")
	flag.Float64Var(&cfg.downtime, "downtime", 0, "downtime D after each failure")
	flag.Float64Var(&cfg.r0, "r0", 0, "initial recovery cost R₀")
	flag.BoolVar(&cfg.liveCosts, "livecosts", false, "use the live-set checkpoint cost model (Section 6 extension)")
	flag.BoolVar(&cfg.baselines, "baselines", false, "also print always/never/periodic baselines (chains only)")
	flag.IntVar(&cfg.budget, "budget", 0, "limit the number of checkpoints (0 = unlimited; chains only)")
	flag.StringVar(&cfg.outPlan, "out", "", "write the computed plan as JSON to this file")
	flag.BoolVar(&cfg.exact, "exact", false, "solve general DAGs exactly over the downset lattice instead of the heuristic portfolio")
	flag.IntVar(&cfg.workers, "workers", 0, "solver parallelism (0 = all CPUs)")
	flag.Int64Var(&cfg.maxStates, "maxstates", 20_000_000, "state cap for the -exact lattice search, ~100 bytes/state — size it to available memory (0 = unlimited)")
	flag.StringVar(&cfg.algo, "algo", "auto", "chain solver arm: auto (certifier-gated portfolio), monotone, kernel, or dense")
	flag.Parse()
	if cfg.wfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg); err != nil {
		fmt.Fprintf(os.Stderr, "chkptplan: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config) error {
	f, err := os.Open(cfg.wfPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := dag.Read(f)
	if err != nil {
		return err
	}
	m, err := expectation.NewModel(cfg.lambda, cfg.downtime)
	if err != nil {
		return err
	}
	switch cfg.algo {
	case "", "auto", "monotone", "kernel", "dense":
	default:
		return fmt.Errorf("unknown -algo %q (want auto, monotone, kernel, or dense)", cfg.algo)
	}
	fmt.Printf("workflow: %d tasks, %d edges, total work %.4g\n", g.Len(), g.EdgeCount(), g.TotalWeight())
	fmt.Printf("model: λ=%g (MTBF %.4g), D=%g, R₀=%g\n\n", cfg.lambda, 1/cfg.lambda, cfg.downtime, cfg.r0)

	if order, ok := g.IsLinearChain(); ok && !cfg.liveCosts {
		cp, err := core.NewChainProblemOrdered(g, order, m, cfg.r0)
		if err != nil {
			return err
		}
		var res core.ChainResult
		var stats core.DPStats
		armNote := ""
		if cfg.budget > 0 {
			// The bounded solver only exists as the certifier-gated
			// portfolio; refuse a pinned arm rather than silently ignore it.
			if cfg.algo != "" && cfg.algo != "auto" {
				return fmt.Errorf("-algo %s cannot be combined with -budget (the bounded solver is the auto-dispatching portfolio)", cfg.algo)
			}
			res, stats, err = core.SolveChainDPBoundedStats(cp, cfg.budget)
			armNote = stats.Arm.String() + " (auto)"
		} else {
			switch cfg.algo {
			case "auto", "":
				res, stats, err = core.SolveChainDPStats(cp)
				armNote = stats.Arm.String() + " (auto)"
			case "monotone":
				res, stats, err = core.SolveChainDPMonotoneStats(cp)
				armNote = stats.Arm.String()
			case "kernel":
				res, stats, err = core.SolveChainDPKernelStats(cp)
				armNote = stats.Arm.String()
			case "dense":
				res, err = core.SolveChainDPDense(cp)
				armNote = "dense"
			}
		}
		if err != nil {
			return err
		}
		if armNote != "" {
			if stats.Transitions > 0 {
				fmt.Printf("chain solver arm: %s, %d oracle evaluations\n", armNote, stats.Transitions)
			} else {
				fmt.Printf("chain solver arm: %s\n", armNote)
			}
		}
		printChainPlan(g, order, res)
		printReport(cp, res)
		if cfg.baselines {
			printBaselines(cp, m)
		}
		return writePlanFile(cfg.outPlan, core.Plan{Order: order, CheckpointAfter: res.CheckpointAfter})
	}

	// -algo selects among the chain solver arms; refuse a pinned arm on
	// workflows that take the DAG paths rather than silently ignore it.
	if cfg.algo != "" && cfg.algo != "auto" {
		return fmt.Errorf("-algo %s only applies to linear chains without -livecosts (this workflow takes the DAG path)", cfg.algo)
	}
	var cm core.CostModel = core.LastTaskCosts{R0: cfg.r0}
	if cfg.liveCosts {
		cm = core.LiveSetCosts{R0: cfg.r0}
	}
	opts := core.Options{Workers: cfg.workers, MaxStates: cfg.maxStates}
	var res core.DAGResult
	if cfg.exact {
		var stats core.LatticeStats
		res, stats, err = core.SolveDAGLatticeStats(g, m, cm, opts)
		if err != nil {
			return err
		}
		fmt.Printf("cost model: %s; exact downset-lattice optimum\n", cm.Name())
		fmt.Printf("lattice search: %d states, %d transitions, %d states expanded\n",
			stats.States, stats.Transitions, stats.Expanded)
		if stats.Incumbent > 0 && res.Expected > 0 {
			fmt.Printf("portfolio incumbent %.6g → exact optimum %.6g (heuristic gap %.4f)\n",
				stats.Incumbent, res.Expected, stats.Incumbent/res.Expected)
		}
	} else {
		res, err = core.SolveDAGWith(g, m, cm, opts)
		if err != nil {
			return err
		}
		fmt.Printf("cost model: %s; best linearization strategy: %s\n", cm.Name(), res.Strategy)
	}
	fmt.Printf("expected makespan: %.6g\n", res.Expected)
	fmt.Println("schedule (→ marks checkpoints):")
	for i, id := range res.Order {
		t := g.Task(id)
		mark := ""
		if res.CheckpointAfter[i] {
			mark = "  → checkpoint"
		}
		fmt.Printf("  %2d. %-16s w=%-8.4g%s\n", i+1, t.Name, t.Weight, mark)
	}
	return writePlanFile(cfg.outPlan, res.Plan())
}

func writePlanFile(path string, plan core.Plan) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WritePlan(f, plan); err != nil {
		return err
	}
	fmt.Printf("\nplan written to %s\n", path)
	return nil
}

func printReport(cp *core.ChainProblem, res core.ChainResult) {
	rep, err := sim.Report(cp, res.CheckpointAfter)
	if err != nil {
		return
	}
	fmt.Printf("\nreport: E[T]=%.6g  sd=%.4g  failure-free=%.6g  expected waste=%.2f%%  segments=%d\n",
		rep.Expected, rep.StdDev, rep.FailureFree, rep.ExpectedWaste*100, rep.Checkpoints)
}

func printChainPlan(g *dag.Graph, order []int, res core.ChainResult) {
	fmt.Printf("linear chain detected: optimal placement via Algorithm 1 (Prop. 3)\n")
	fmt.Printf("optimal expected makespan: %.6g with %d checkpoints\n", res.Expected, len(res.Positions()))
	fmt.Println("schedule (→ marks checkpoints):")
	for i, id := range order {
		t := g.Task(id)
		mark := ""
		if res.CheckpointAfter[i] {
			mark = fmt.Sprintf("  → checkpoint (C=%.4g)", t.Checkpoint)
		}
		fmt.Printf("  %2d. %-16s w=%-8.4g%s\n", i+1, t.Name, t.Weight, mark)
	}
}

func printBaselines(cp *core.ChainProblem, m expectation.Model) {
	fmt.Println("\nbaselines:")
	if res, err := core.AlwaysCheckpoint(cp); err == nil {
		fmt.Printf("  always-checkpoint: %.6g\n", res.Expected)
	}
	if res, err := core.NeverCheckpoint(cp); err == nil {
		fmt.Printf("  never-checkpoint:  %.6g\n", res.Expected)
	}
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))
	if res, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, m.Lambda)); err == nil {
		fmt.Printf("  daly-periodic:     %.6g (period %.4g)\n", res.Expected, expectation.DalyPeriod(meanC, m.Lambda))
	}
}
