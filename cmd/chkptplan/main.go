// Command chkptplan computes checkpoint plans for a workflow stored in
// the JSON format of internal/dag (see examples/pipeline for a generator).
//
// Usage:
//
//	chkptplan -workflow wf.json -lambda 0.01 -downtime 1
//	chkptplan -workflow wf.json -lambda 0.01 -livecosts   # live-set cost model
//	chkptplan -workflow wf.json -lambda 0.01 -baselines   # compare baselines
//
// For linear chains the plan is optimal (Proposition 3); for general DAGs
// the order is chosen by a heuristic portfolio with exact per-order
// placement (optimal ordering is strongly NP-hard by Proposition 2).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/sim"
)

func main() {
	var (
		wfPath    = flag.String("workflow", "", "workflow JSON file (required)")
		lambda    = flag.Float64("lambda", 0.01, "platform failure rate λ")
		downtime  = flag.Float64("downtime", 0, "downtime D after each failure")
		r0        = flag.Float64("r0", 0, "initial recovery cost R₀")
		liveCosts = flag.Bool("livecosts", false, "use the live-set checkpoint cost model (Section 6 extension)")
		baselines = flag.Bool("baselines", false, "also print always/never/periodic baselines (chains only)")
		budget    = flag.Int("budget", 0, "limit the number of checkpoints (0 = unlimited; chains only)")
		outPlan   = flag.String("out", "", "write the computed plan as JSON to this file")
	)
	flag.Parse()
	if *wfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*wfPath, *lambda, *downtime, *r0, *liveCosts, *baselines, *budget, *outPlan); err != nil {
		fmt.Fprintf(os.Stderr, "chkptplan: %v\n", err)
		os.Exit(1)
	}
}

func run(wfPath string, lambda, downtime, r0 float64, liveCosts, baselines bool, budget int, outPlan string) error {
	f, err := os.Open(wfPath)
	if err != nil {
		return err
	}
	defer f.Close()
	g, err := dag.Read(f)
	if err != nil {
		return err
	}
	m, err := expectation.NewModel(lambda, downtime)
	if err != nil {
		return err
	}
	fmt.Printf("workflow: %d tasks, %d edges, total work %.4g\n", g.Len(), g.EdgeCount(), g.TotalWeight())
	fmt.Printf("model: λ=%g (MTBF %.4g), D=%g, R₀=%g\n\n", lambda, 1/lambda, downtime, r0)

	if order, ok := g.IsLinearChain(); ok && !liveCosts {
		cp, err := core.NewChainProblemOrdered(g, order, m, r0)
		if err != nil {
			return err
		}
		var res core.ChainResult
		if budget > 0 {
			res, err = core.SolveChainDPBounded(cp, budget)
		} else {
			res, err = core.SolveChainDP(cp)
		}
		if err != nil {
			return err
		}
		printChainPlan(g, order, res)
		printReport(cp, res)
		if baselines {
			printBaselines(cp, m)
		}
		return writePlanFile(outPlan, core.Plan{Order: order, CheckpointAfter: res.CheckpointAfter})
	}

	var cm core.CostModel = core.LastTaskCosts{R0: r0}
	if liveCosts {
		cm = core.LiveSetCosts{R0: r0}
	}
	res, err := core.SolveDAG(g, m, cm, nil)
	if err != nil {
		return err
	}
	fmt.Printf("cost model: %s; best linearization strategy: %s\n", cm.Name(), res.Strategy)
	fmt.Printf("expected makespan: %.6g\n", res.Expected)
	fmt.Println("schedule (→ marks checkpoints):")
	for i, id := range res.Order {
		t := g.Task(id)
		mark := ""
		if res.CheckpointAfter[i] {
			mark = "  → checkpoint"
		}
		fmt.Printf("  %2d. %-16s w=%-8.4g%s\n", i+1, t.Name, t.Weight, mark)
	}
	return writePlanFile(outPlan, res.Plan())
}

func writePlanFile(path string, plan core.Plan) error {
	if path == "" {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := core.WritePlan(f, plan); err != nil {
		return err
	}
	fmt.Printf("\nplan written to %s\n", path)
	return nil
}

func printReport(cp *core.ChainProblem, res core.ChainResult) {
	rep, err := sim.Report(cp, res.CheckpointAfter)
	if err != nil {
		return
	}
	fmt.Printf("\nreport: E[T]=%.6g  sd=%.4g  failure-free=%.6g  expected waste=%.2f%%  segments=%d\n",
		rep.Expected, rep.StdDev, rep.FailureFree, rep.ExpectedWaste*100, rep.Checkpoints)
}

func printChainPlan(g *dag.Graph, order []int, res core.ChainResult) {
	fmt.Printf("linear chain detected: optimal placement via Algorithm 1 (Prop. 3)\n")
	fmt.Printf("optimal expected makespan: %.6g with %d checkpoints\n", res.Expected, len(res.Positions()))
	fmt.Println("schedule (→ marks checkpoints):")
	for i, id := range order {
		t := g.Task(id)
		mark := ""
		if res.CheckpointAfter[i] {
			mark = fmt.Sprintf("  → checkpoint (C=%.4g)", t.Checkpoint)
		}
		fmt.Printf("  %2d. %-16s w=%-8.4g%s\n", i+1, t.Name, t.Weight, mark)
	}
}

func printBaselines(cp *core.ChainProblem, m expectation.Model) {
	fmt.Println("\nbaselines:")
	if res, err := core.AlwaysCheckpoint(cp); err == nil {
		fmt.Printf("  always-checkpoint: %.6g\n", res.Expected)
	}
	if res, err := core.NeverCheckpoint(cp); err == nil {
		fmt.Printf("  never-checkpoint:  %.6g\n", res.Expected)
	}
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))
	if res, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, m.Lambda)); err == nil {
		fmt.Printf("  daly-periodic:     %.6g (period %.4g)\n", res.Expected, expectation.DalyPeriod(meanC, m.Lambda))
	}
}
