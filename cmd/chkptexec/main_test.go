package main

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"errors"

	"repro/internal/dag"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/store"
	"repro/internal/trace"
)

// writeWorkflow materializes a graph as a workflow JSON file in dir.
func writeWorkflow(t *testing.T, dir string, g *dag.Graph) string {
	t.Helper()
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "wf.json")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func chainWorkflow(t *testing.T, dir string, n int) string {
	t.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	return writeWorkflow(t, dir, g)
}

func baseConfig(wf string) config {
	return config{
		wfPath: wf, lambda: 0.05, downtime: 1, seed: 3,
		runs: 500, strategy: "dp", costmodel: "last-task", runID: "run",
	}
}

// TestCampaignChain checks the default mode end to end: the realized
// mean is reported against the planned expectation.
func TestCampaignChain(t *testing.T) {
	wf := chainWorkflow(t, t.TempDir(), 12)
	var out bytes.Buffer
	if err := run(baseConfig(wf), &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for _, want := range []string{"plan: chain/dp", "campaign: 500 runs", "planned vs realized"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

// TestCampaignStrategies exercises every chain strategy spelling,
// including the parameterized one, plus rejection of bad names.
func TestCampaignStrategies(t *testing.T) {
	wf := chainWorkflow(t, t.TempDir(), 10)
	for _, strat := range []string{"dp", "always", "never", "daly", "young", "every:3"} {
		cfg := baseConfig(wf)
		cfg.strategy = strat
		cfg.runs = 50
		var out bytes.Buffer
		if err := run(cfg, &out); err != nil {
			t.Errorf("strategy %s: %v", strat, err)
		}
	}
	for _, bad := range []string{"bogus", "every:0", "every:x"} {
		cfg := baseConfig(wf)
		cfg.strategy = bad
		if err := run(cfg, &bytes.Buffer{}); err == nil {
			t.Errorf("strategy %q accepted", bad)
		}
	}
}

// TestCampaignDAG routes a non-chain workflow through the order DP
// under both cost models.
func TestCampaignDAG(t *testing.T) {
	g, err := dag.Layered(3, 3, 0.5, dag.DefaultWeights(), rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	wf := writeWorkflow(t, t.TempDir(), g)
	for _, cm := range []string{"last-task", "live-set"} {
		cfg := baseConfig(wf)
		cfg.costmodel = cm
		cfg.runs = 50
		var out bytes.Buffer
		if err := run(cfg, &out); err != nil {
			t.Fatalf("cost model %s: %v", cm, err)
		}
		if !strings.Contains(out.String(), "plan: dag/"+cm) {
			t.Errorf("cost model %s not reported:\n%s", cm, out.String())
		}
	}
	cfg := baseConfig(wf)
	cfg.costmodel = "nope"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Error("bad cost model accepted")
	}
}

var journalLine = regexp.MustCompile(`journal: (\d+) events, hash ([0-9a-f]{16})`)

var planLine = regexp.MustCompile(`plan: \S+ — \d+ tasks, (\d+) segments`)

// TestPersistedCrashResume is the CLI-level crash drill: kill a
// persisted run at an injected point, re-invoke to resume, and check
// the journal hash matches an uninterrupted run in a fresh store.
func TestPersistedCrashResume(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)

	// Reference: uninterrupted persisted run.
	ref := baseConfig(wf)
	ref.dir = filepath.Join(base, "ref")
	var refOut bytes.Buffer
	if err := run(ref, &refOut); err != nil {
		t.Fatal(err)
	}
	refM := journalLine.FindStringSubmatch(refOut.String())
	if refM == nil {
		t.Fatalf("no journal line in reference output:\n%s", refOut.String())
	}

	// Crash at an injected point, then resume with the same store.
	crashed := baseConfig(wf)
	crashed.dir = filepath.Join(base, "crash")
	crashed.crashEvents = 10
	var crashOut bytes.Buffer
	if err := run(crashed, &crashOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crashOut.String(), "crashed as requested") {
		t.Fatalf("crash flag did not crash:\n%s", crashOut.String())
	}

	resumed := crashed
	resumed.crashEvents = 0
	var resOut bytes.Buffer
	if err := run(resumed, &resOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(resOut.String(), "resumed from checkpoint") {
		t.Fatalf("resume not reported:\n%s", resOut.String())
	}
	resM := journalLine.FindStringSubmatch(resOut.String())
	if resM == nil {
		t.Fatalf("no journal line in resumed output:\n%s", resOut.String())
	}
	if resM[1] != refM[1] || resM[2] != refM[2] {
		t.Errorf("resumed journal %s/%s differs from reference %s/%s",
			resM[1], resM[2], refM[1], refM[2])
	}
}

// TestPersistedWithFaults drives the persisted path through the fault
// injector with retries; the run must still complete with the same
// journal hash as the clean store.
func TestPersistedWithFaults(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)

	clean := baseConfig(wf)
	clean.dir = filepath.Join(base, "clean")
	var cleanOut bytes.Buffer
	if err := run(clean, &cleanOut); err != nil {
		t.Fatal(err)
	}
	cleanM := journalLine.FindStringSubmatch(cleanOut.String())

	faulty := baseConfig(wf)
	faulty.dir = filepath.Join(base, "faulty")
	faulty.faults = true
	faulty.retries = 6
	var faultOut bytes.Buffer
	if err := run(faulty, &faultOut); err != nil {
		t.Fatal(err)
	}
	faultM := journalLine.FindStringSubmatch(faultOut.String())
	if faultM == nil {
		t.Fatalf("no journal line under faults:\n%s", faultOut.String())
	}
	if cleanM == nil || faultM[1] != cleanM[1] || faultM[2] != cleanM[2] {
		t.Errorf("faulty-store journal %v differs from clean %v", faultM[1:], cleanM[1:])
	}
}

var resilienceLine = regexp.MustCompile(`resilience: policy ([a-z0-9:.]+), replans (\d+), save give-ups (\d+), level (\w+), store overhead ([0-9.]+), max rewind exposure ([0-9.]+)`)

// TestPersistedAdaptiveDegraded drives the persisted path through a
// degraded store (injected latency + write faults) on the adaptive
// executor: the run must replan at least once, print the resilience
// summary, and a killed invocation must resume to the same journal
// hash as an uninterrupted adaptive run.
func TestPersistedAdaptiveDegraded(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	adaptive := func(dir string) config {
		cfg := baseConfig(wf)
		cfg.dir = filepath.Join(base, dir)
		cfg.faults = true
		cfg.faultLatency = 2
		cfg.retryPolicy = "exp:0.5"
		cfg.replanThreshold = 1.3
		return cfg
	}

	var refOut bytes.Buffer
	if err := run(adaptive("ref"), &refOut); err != nil {
		t.Fatal(err)
	}
	refM := journalLine.FindStringSubmatch(refOut.String())
	if refM == nil {
		t.Fatalf("no journal line:\n%s", refOut.String())
	}
	res := resilienceLine.FindStringSubmatch(refOut.String())
	if res == nil {
		t.Fatalf("no resilience summary:\n%s", refOut.String())
	}
	if res[1] != "exp" {
		t.Errorf("policy %q, want exp", res[1])
	}
	if res[2] == "0" {
		t.Errorf("no replans under 2-unit store latency:\n%s", refOut.String())
	}
	if res[5] == "0.0000" {
		t.Errorf("zero store overhead under injected latency:\n%s", refOut.String())
	}

	crashed := adaptive("crash")
	crashed.crashEvents = 10
	var crashOut bytes.Buffer
	if err := run(crashed, &crashOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crashOut.String(), "crashed as requested") {
		t.Fatalf("crash flag did not crash:\n%s", crashOut.String())
	}
	resumed := crashed
	resumed.crashEvents = 0
	var resOut bytes.Buffer
	if err := run(resumed, &resOut); err != nil {
		t.Fatal(err)
	}
	resM := journalLine.FindStringSubmatch(resOut.String())
	if resM == nil {
		t.Fatalf("no journal line in resumed output:\n%s", resOut.String())
	}
	if resM[1] != refM[1] || resM[2] != refM[2] {
		t.Errorf("resumed adaptive journal %s/%s differs from reference %s/%s",
			resM[1], resM[2], refM[1], refM[2])
	}
}

// TestPersistedMultiTenantQuota runs concurrent tenants against one
// shared store stack under a per-tenant quota and checks every tenant
// completes with its own resilience summary.
func TestPersistedMultiTenantQuota(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	cfg := baseConfig(wf)
	cfg.dir = filepath.Join(base, "shared")
	cfg.faults = true
	cfg.retryPolicy = "fixed:2"
	cfg.quota = "ckpts:2"
	cfg.tenants = 3
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	for i := 0; i < cfg.tenants; i++ {
		prefix := "tenant " + string(rune('0'+i)) + ": "
		if !strings.Contains(s, prefix+"completed:") {
			t.Errorf("tenant %d did not complete:\n%s", i, s)
		}
		if !strings.Contains(s, prefix+"resilience: policy fixed:2") {
			t.Errorf("tenant %d missing resilience summary:\n%s", i, s)
		}
	}
	// A 2-checkpoint quota on a 12-task dp plan must reject some saves.
	if !resilienceLine.MatchString(s) {
		t.Fatalf("no resilience line:\n%s", s)
	}
}

// TestResilienceFlagsRequireDir pins the campaign-mode rejection.
func TestResilienceFlagsRequireDir(t *testing.T) {
	wf := chainWorkflow(t, t.TempDir(), 10)
	cfg := baseConfig(wf)
	cfg.retryPolicy = "exp"
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Error("resilience flags without -dir accepted")
	}
}

// TestParseRetryPolicy covers the flag grammar.
func TestParseRetryPolicy(t *testing.T) {
	for _, good := range []string{"", "none", "fixed:3", "exp", "exp:1", "exp:1:3", "exp:1:3:8", "exp:1:3:8:5"} {
		if _, err := parseRetryPolicy(good); err != nil {
			t.Errorf("parseRetryPolicy(%q): %v", good, err)
		}
	}
	for _, bad := range []string{"bogus", "fixed:0", "fixed:x", "exp:-1", "exp:1:2:3:0", "exp:1:2:3:x"} {
		if _, err := parseRetryPolicy(bad); err == nil {
			t.Errorf("parseRetryPolicy(%q) accepted", bad)
		}
	}
}

// TestParseQuota covers the quota grammar.
func TestParseQuota(t *testing.T) {
	q, err := parseQuota("ckpts:4,bytes:8192")
	if err != nil || q.MaxCheckpoints != 4 || q.MaxBytes != 8192 {
		t.Errorf("parseQuota: %+v, %v", q, err)
	}
	for _, bad := range []string{"x", "ckpts:0", "bytes:-1", "ckpts:4,nope:1"} {
		if _, err := parseQuota(bad); err == nil {
			t.Errorf("parseQuota(%q) accepted", bad)
		}
	}
}

func TestMissingWorkflow(t *testing.T) {
	cfg := baseConfig(filepath.Join(t.TempDir(), "nope.json"))
	if err := run(cfg, &bytes.Buffer{}); err == nil {
		t.Error("missing workflow file accepted")
	}
}

// writeTrace materializes a synthetic failure trace as a CSV file.
func writeTrace(t *testing.T, dir string, mtbf, horizon float64, nodes int) string {
	t.Helper()
	dist, err := failure.NewExponential(1 / mtbf)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(dist, nodes, horizon, rng.New(11))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "trace.csv")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteCSV(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestTraceDrivenRun replays a recorded failure log through a persisted
// run: two fresh stores driven by the same trace produce identical
// journals, and a trace too short for the workload fails loudly instead
// of fabricating a failure-free tail.
func TestTraceDrivenRun(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	long := writeTrace(t, base, 20, 100000, 4)

	hashes := make([]string, 2)
	for i := range hashes {
		cfg := baseConfig(wf)
		cfg.dir = filepath.Join(base, fmt.Sprintf("trace%d", i))
		cfg.tracePath = long
		var out bytes.Buffer
		if err := run(cfg, &out); err != nil {
			t.Fatal(err)
		}
		m := journalLine.FindStringSubmatch(out.String())
		if m == nil {
			t.Fatalf("no journal line:\n%s", out.String())
		}
		hashes[i] = m[2]
	}
	if hashes[0] != hashes[1] {
		t.Errorf("same trace, different journals: %s vs %s", hashes[0], hashes[1])
	}

	short := writeTrace(t, base, 2, 9, 1)
	cfg := baseConfig(wf)
	cfg.dir = filepath.Join(base, "short")
	cfg.tracePath = short
	err := run(cfg, &bytes.Buffer{})
	if err == nil || !strings.Contains(err.Error(), "exhausted mid-run") {
		t.Errorf("exhausted trace not reported loudly: %v", err)
	}
}

// TestTraceFlagValidation pins the modes a trace cannot drive.
func TestTraceFlagValidation(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 8)
	tracePath := writeTrace(t, base, 20, 10000, 2)

	campaign := baseConfig(wf)
	campaign.tracePath = tracePath
	if err := run(campaign, &bytes.Buffer{}); err == nil {
		t.Error("-trace without -dir accepted")
	}

	tenants := baseConfig(wf)
	tenants.dir = filepath.Join(base, "d")
	tenants.tracePath = tracePath
	tenants.tenants = 3
	if err := run(tenants, &bytes.Buffer{}); err == nil {
		t.Error("-trace with -tenants accepted")
	}

	missing := baseConfig(wf)
	missing.dir = filepath.Join(base, "d2")
	missing.tracePath = filepath.Join(base, "nope.csv")
	if err := run(missing, &bytes.Buffer{}); err == nil {
		t.Error("missing trace file accepted")
	}
}

// TestNetworkedFlagsRequireDir pins that network and telemetry flags
// demand a persisted run.
func TestNetworkedFlagsRequireDir(t *testing.T) {
	wf := chainWorkflow(t, t.TempDir(), 8)
	net := baseConfig(wf)
	net.netLatency = 0.1
	if err := run(net, &bytes.Buffer{}); err == nil {
		t.Error("network flags without -dir accepted")
	}
	tel := baseConfig(wf)
	tel.planFromTelemetry = true
	if err := run(tel, &bytes.Buffer{}); err == nil {
		t.Error("-plan-from-telemetry without -dir accepted")
	}
}

// TestParsePartitions covers the window grammar.
func TestParsePartitions(t *testing.T) {
	wins, err := parsePartitions("10:25,40:50.5")
	if err != nil || len(wins) != 2 || wins[1].End != 50.5 || wins[0].Isolated[0] != "s0" {
		t.Errorf("parsePartitions: %+v, %v", wins, err)
	}
	if wins, err := parsePartitions(""); err != nil || wins != nil {
		t.Errorf("empty spec: %+v, %v", wins, err)
	}
	for _, bad := range []string{"10", "10:5", "x:5", "10:y", "-1:5"} {
		if _, err := parsePartitions(bad); err == nil {
			t.Errorf("parsePartitions(%q) accepted", bad)
		}
	}
}

// TestNetworkedQuorumPartitionResume is the CLI face of the tentpole:
// a quorum of three networked replicas rides out a partition window
// isolating replica s0, and a run killed during the window resumes to
// the reference journal bit-for-bit.
func TestNetworkedQuorumPartitionResume(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	netCfg := func(dir string) config {
		cfg := baseConfig(wf)
		cfg.dir = dir
		cfg.netLatency = 0.05
		cfg.netJitter = 0.1
		cfg.netLoss = 0.02
		cfg.netSeed = 9
		cfg.replicas = 3
		cfg.partition = "2:40"
		cfg.retryPolicy = "exp:0.5"
		return cfg
	}

	var refOut bytes.Buffer
	if err := run(netCfg(filepath.Join(base, "ref")), &refOut); err != nil {
		t.Fatal(err)
	}
	refM := journalLine.FindStringSubmatch(refOut.String())
	if refM == nil {
		t.Fatalf("no journal line in reference output:\n%s", refOut.String())
	}

	crashed := netCfg(filepath.Join(base, "crash"))
	crashed.crashEvents = 12
	var crashOut bytes.Buffer
	if err := run(crashed, &crashOut); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(crashOut.String(), "crashed as requested") {
		t.Fatalf("crash flag did not crash:\n%s", crashOut.String())
	}
	resumed := netCfg(filepath.Join(base, "crash"))
	var resOut bytes.Buffer
	if err := run(resumed, &resOut); err != nil {
		t.Fatal(err)
	}
	resM := journalLine.FindStringSubmatch(resOut.String())
	if resM == nil {
		t.Fatalf("no journal line in resumed output:\n%s", resOut.String())
	}
	if resM[1] != refM[1] || resM[2] != refM[2] {
		t.Errorf("resumed journal %s/%s differs from reference %s/%s",
			resM[1], resM[2], refM[1], refM[2])
	}

	// The replicas hold real per-replica directories.
	for i := 0; i < 3; i++ {
		if _, err := os.Stat(filepath.Join(base, "ref", fmt.Sprintf("r%d", i))); err != nil {
			t.Errorf("replica directory r%d missing: %v", i, err)
		}
	}
}

// TestPlanFromTelemetry pins the plan-time feedback loop: probing a
// slow networked store re-solves the placement with the effective
// checkpoint cost, yielding a sparser plan than the naive one.
func TestPlanFromTelemetry(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)

	naive := baseConfig(wf)
	naive.dir = filepath.Join(base, "naive")
	var naiveOut bytes.Buffer
	if err := run(naive, &naiveOut); err != nil {
		t.Fatal(err)
	}
	naiveM := planLine.FindStringSubmatch(naiveOut.String())
	if naiveM == nil {
		t.Fatalf("no plan line:\n%s", naiveOut.String())
	}

	tel := baseConfig(wf)
	tel.dir = filepath.Join(base, "tel")
	tel.netLatency = 3
	tel.planFromTelemetry = true
	var telOut bytes.Buffer
	if err := run(tel, &telOut); err != nil {
		t.Fatal(err)
	}
	s := telOut.String()
	if !strings.Contains(s, "probe: 16 samples") {
		t.Errorf("probe summary missing:\n%s", s)
	}
	telM := planLine.FindStringSubmatch(s)
	if telM == nil || !strings.Contains(s, "chain/telemetry") {
		t.Fatalf("telemetry plan line missing:\n%s", s)
	}
	naiveSegs, _ := strconv.Atoi(naiveM[1])
	telSegs, _ := strconv.Atoi(telM[1])
	if telSegs >= naiveSegs {
		t.Errorf("telemetry plan has %d segments, naive %d — a slow store should sparsify", telSegs, naiveSegs)
	}
}

// TestPersistedLeasedRun pins the single-writer lease path: the run
// holds epoch 1, a crash/resume cycle re-acquires a higher epoch in the
// new process, and the lease traffic is invisible to the journal — the
// leased journal matches a lease-free reference bit for bit.
func TestPersistedLeasedRun(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)

	ref := baseConfig(wf)
	ref.dir = filepath.Join(base, "ref")
	var refOut bytes.Buffer
	if err := run(ref, &refOut); err != nil {
		t.Fatal(err)
	}
	refM := journalLine.FindStringSubmatch(refOut.String())
	if refM == nil {
		t.Fatalf("no journal line in reference output:\n%s", refOut.String())
	}

	leased := baseConfig(wf)
	leased.dir = filepath.Join(base, "leased")
	leased.lease = 1e9
	leased.crashEvents = 10
	var crashOut bytes.Buffer
	if err := run(leased, &crashOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"lease: holding epoch 1", "crashed as requested"} {
		if !strings.Contains(crashOut.String(), want) {
			t.Fatalf("crash output missing %q:\n%s", want, crashOut.String())
		}
	}

	resumed := leased
	resumed.crashEvents = 0
	var resOut bytes.Buffer
	if err := run(resumed, &resOut); err != nil {
		t.Fatal(err)
	}
	s := resOut.String()
	for _, want := range []string{"resumed from checkpoint", "lease: holding epoch 2"} {
		if !strings.Contains(s, want) {
			t.Fatalf("resume output missing %q:\n%s", want, s)
		}
	}
	resM := journalLine.FindStringSubmatch(s)
	if resM == nil {
		t.Fatalf("no journal line in resumed output:\n%s", s)
	}
	if resM[1] != refM[1] || resM[2] != refM[2] {
		t.Errorf("leased journal %s/%s differs from lease-free reference %s/%s",
			resM[1], resM[2], refM[1], refM[2])
	}
}

// TestContendFencingDrill runs the CLI's two-executor drill: executor a
// is killed mid-run, b takes the lease over, the woken zombie a is
// fenced, and the survivor's journal is bit-identical to the
// uncontended reference.
func TestContendFencingDrill(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	cfg := baseConfig(wf)
	cfg.dir = filepath.Join(base, "drill")
	cfg.lease = 1e9
	cfg.contend = true
	cfg.crashEvents = 10
	var out bytes.Buffer
	if err := run(cfg, &out); err != nil {
		t.Fatalf("contend drill failed: %v\n%s", err, out.String())
	}
	s := out.String()
	for _, want := range []string{
		"contend: reference (epoch 1)",
		"contend: executor a (epoch 1) killed after 10 journal events",
		"contend: executor b (epoch 2) took the run over",
		"contend: zombie a fenced",
		"contend: survivor journal identical to uncontended reference: true",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("drill output missing %q:\n%s", want, s)
		}
	}
}

// replicaFiles lists the checkpoint files one replica directory holds.
func replicaFiles(t *testing.T, dir string, replica int, runID string) []string {
	t.Helper()
	pat := filepath.Join(dir, fmt.Sprintf("r%d", replica), runID, "ckpt-*")
	files, err := filepath.Glob(pat)
	if err != nil || len(files) == 0 {
		t.Fatalf("no checkpoint files match %s (%v)", pat, err)
	}
	return files
}

var syncLine = regexp.MustCompile(`sync run: (\d+) seqs, (\d+) replica copies written`)

// TestMaintenanceSync pins `chkptexec -sync`: a checkpoint deleted from
// one replica after a clean quorum run is copied back by one
// anti-entropy pass (no workflow needed), and a second pass is a no-op.
func TestMaintenanceSync(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	cfg := baseConfig(wf)
	cfg.dir = filepath.Join(base, "store")
	cfg.netLatency = 0.05
	cfg.netSeed = 9
	cfg.replicas = 3
	if err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	// Lose one checkpoint from replica r2 behind the quorum's back.
	files := replicaFiles(t, cfg.dir, 2, "run")
	if err := os.Remove(files[0]); err != nil {
		t.Fatal(err)
	}

	maint := config{dir: cfg.dir, runID: "run", replicas: 3, netLatency: 0.05, netSeed: 9, syncMode: true}
	var out bytes.Buffer
	if err := run(maint, &out); err != nil {
		t.Fatalf("sync pass: %v\n%s", err, out.String())
	}
	m := syncLine.FindStringSubmatch(out.String())
	if m == nil {
		t.Fatalf("no sync line:\n%s", out.String())
	}
	if copied, _ := strconv.Atoi(m[2]); copied < 1 {
		t.Errorf("sync copied %s replicas, want >= 1:\n%s", m[2], out.String())
	}
	if !strings.Contains(out.String(), "converged true") {
		t.Errorf("sync did not converge:\n%s", out.String())
	}

	// A second pass finds nothing to do.
	var again bytes.Buffer
	if err := run(maint, &again); err != nil {
		t.Fatal(err)
	}
	m = syncLine.FindStringSubmatch(again.String())
	if m == nil || m[2] != "0" {
		t.Errorf("second sync pass not a no-op:\n%s", again.String())
	}
	if len(replicaFiles(t, cfg.dir, 2, "run")) != len(replicaFiles(t, cfg.dir, 0, "run")) {
		t.Error("replica r2 still missing checkpoints after sync")
	}
}

// tearFile truncates a checkpoint file's tail so the CRC frame no
// longer decodes — the same torn-write shape the Checked codec detects.
func tearFile(t *testing.T, path string) {
	t.Helper()
	raw, err := os.ReadFile(path)
	if err != nil || len(raw) < 4 {
		t.Fatalf("reading %s: %v", path, err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMaintenanceScrub pins `chkptexec -scrub`: one torn replica copy
// is detected and repaired from the clean quorum; tearing the same
// checkpoint on two of three replicas leaves no clean quorum and the
// scrub fails with the typed unrepairable error.
func TestMaintenanceScrub(t *testing.T) {
	base := t.TempDir()
	wf := chainWorkflow(t, base, 12)
	cfg := baseConfig(wf)
	cfg.dir = filepath.Join(base, "store")
	cfg.netLatency = 0.05
	cfg.netSeed = 9
	cfg.replicas = 3
	if err := run(cfg, &bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	tearFile(t, replicaFiles(t, cfg.dir, 1, "run")[0])
	maint := config{dir: cfg.dir, runID: "run", replicas: 3, netLatency: 0.05, netSeed: 9, scrub: true}
	var out bytes.Buffer
	if err := run(maint, &out); err != nil {
		t.Fatalf("scrub pass: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 corrupt, 1 repaired, 0 unrepairable") {
		t.Errorf("scrub did not repair the torn replica:\n%s", out.String())
	}

	// Rot on two of three replicas beats the R=2 clean quorum.
	tearFile(t, replicaFiles(t, cfg.dir, 0, "run")[0])
	tearFile(t, replicaFiles(t, cfg.dir, 1, "run")[0])
	err := run(maint, &bytes.Buffer{})
	if !errors.Is(err, store.ErrUnrepairable) {
		t.Errorf("scrub with no clean quorum = %v, want ErrUnrepairable", err)
	}
}

// TestMultiWriterFlagValidation pins the rejection matrix for the
// lease, contend, and maintenance flags.
func TestMultiWriterFlagValidation(t *testing.T) {
	wf := chainWorkflow(t, t.TempDir(), 8)

	lease := baseConfig(wf)
	lease.lease = 10
	if err := run(lease, &bytes.Buffer{}); err == nil {
		t.Error("-lease without -dir accepted")
	}

	contend := baseConfig(wf)
	contend.dir = t.TempDir()
	contend.contend = true
	if err := run(contend, &bytes.Buffer{}); err == nil {
		t.Error("-contend without -lease accepted")
	}

	if err := run(config{syncMode: true, runID: "run"}, &bytes.Buffer{}); err == nil {
		t.Error("-sync without -dir accepted")
	}
	if err := run(config{scrub: true, runID: "run", dir: t.TempDir()}, &bytes.Buffer{}); err == nil {
		t.Error("-scrub with a single replica accepted")
	}
	if err := run(config{syncMode: true, runID: "run", dir: t.TempDir(), replicas: 3, contend: true}, &bytes.Buffer{}); err == nil {
		t.Error("-sync combined with -contend accepted")
	}
}
