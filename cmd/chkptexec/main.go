// Command chkptexec executes a checkpoint plan on the crash-safe
// runtime (internal/exec): segments of work ending in checkpoints run
// against a seeded failure process under a virtual clock, uncheckpointed
// progress is lost on every failure, and committed checkpoints persist
// through a pluggable store.
//
// Two modes:
//
// Campaign (default) — execute the plan many times against independent
// keyed failure sources and compare the realized mean makespan with the
// planned expectation (Proposition 1):
//
//	chkptexec -workflow wf.json -lambda 0.01 -downtime 1 -runs 20000
//	chkptexec -workflow wf.json -strategy daly -runs 20000
//	chkptexec -workflow dag.json -costmodel live-set -runs 10000
//
// Persisted single run — execute once with checkpoints saved to a
// crash-durable file store. -crash-events kills the run at an injected
// point; re-running the identical command line resumes from the store
// and finishes with a journal byte-identical to an uninterrupted run
// (the printed journal hash is the witness). -faults wraps the store in
// a deterministic fault injector (failed and torn writes, lost old
// checkpoints, transient read failures) to drill the recovery paths:
//
//	chkptexec -workflow wf.json -dir /tmp/ckpts -crash-events 40
//	chkptexec -workflow wf.json -dir /tmp/ckpts            # resumes
//	chkptexec -workflow wf.json -dir /tmp/ckpts -faults -retries 4
//
// Chain workflows choose the checkpoint vector with -strategy
// (dp | always | never | daly | young | every:k); general DAGs are
// linearized in topological order and placed optimally by the per-order
// DP under -costmodel (last-task | live-set).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/store"
)

// config carries every flag; run is pure in it so tests drive the CLI
// without exec.
type config struct {
	wfPath    string
	lambda    float64
	downtime  float64
	seed      uint64
	runs      int
	strategy  string
	costmodel string

	dir         string
	runID       string
	retries     int
	crashEvents int
	crashSaves  int
	faults      bool
	faultSeed   uint64
}

func main() {
	var cfg config
	flag.StringVar(&cfg.wfPath, "workflow", "", "workflow JSON file (required)")
	flag.Float64Var(&cfg.lambda, "lambda", 0.01, "platform failure rate λ")
	flag.Float64Var(&cfg.downtime, "downtime", 1, "downtime D after each failure")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed (keys every failure gap)")
	flag.IntVar(&cfg.runs, "runs", 20000, "campaign executions (campaign mode)")
	flag.StringVar(&cfg.strategy, "strategy", "dp", "chain checkpoint strategy: dp | always | never | daly | young | every:k")
	flag.StringVar(&cfg.costmodel, "costmodel", "last-task", "DAG cost model: last-task | live-set")
	flag.StringVar(&cfg.dir, "dir", "", "checkpoint store directory: switches to a persisted single run that resumes across invocations")
	flag.StringVar(&cfg.runID, "run-id", "run", "run name inside the store")
	flag.IntVar(&cfg.retries, "retries", 0, "store save/load retries (useful with -faults)")
	flag.IntVar(&cfg.crashEvents, "crash-events", 0, "kill the run once the journal holds this many events (demo crash point)")
	flag.IntVar(&cfg.crashSaves, "crash-saves", 0, "kill the run after this many checkpoint saves")
	flag.BoolVar(&cfg.faults, "faults", false, "wrap the store in the deterministic fault injector")
	flag.Uint64Var(&cfg.faultSeed, "fault-seed", 42, "fault injector seed")
	flag.Parse()
	if cfg.wfPath == "" {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chkptexec: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	f, err := os.Open(cfg.wfPath)
	if err != nil {
		return err
	}
	g, err := dag.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	m, err := expectation.NewModel(cfg.lambda, cfg.downtime)
	if err != nil {
		return err
	}
	w, desc, err := buildWorkload(g, m, cfg)
	if err != nil {
		return err
	}
	planned := w.Planned(m)
	fmt.Fprintf(out, "plan: %s — %d tasks, %d segments, planned E[makespan] %.4f\n",
		desc, w.Len(), w.Segments(), planned)

	if cfg.dir == "" {
		return runCampaign(w, m, planned, cfg, out)
	}
	return runPersisted(w, m, planned, cfg, out)
}

// buildWorkload compiles the workflow into an executable workload:
// chains via the strategy flag, general DAGs via topological
// linearization plus the exact placement DP under the cost model flag.
func buildWorkload(g *dag.Graph, m expectation.Model, cfg config) (*exec.Workload, string, error) {
	if _, isChain := g.IsLinearChain(); isChain {
		cp, _, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			return nil, "", err
		}
		ck, err := chainStrategy(cp, cfg.strategy)
		if err != nil {
			return nil, "", err
		}
		w, err := exec.NewChainWorkload(cp, ck)
		return w, "chain/" + cfg.strategy, err
	}
	var cm core.CostModel
	switch cfg.costmodel {
	case "last-task":
		cm = core.LastTaskCosts{}
	case "live-set":
		cm = core.LiveSetCosts{}
	default:
		return nil, "", fmt.Errorf("unknown cost model %q (want last-task | live-set)", cfg.costmodel)
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, "", err
	}
	sol, err := core.SolveOrderDP(g, order, m, cm)
	if err != nil {
		return nil, "", err
	}
	w, err := exec.NewDAGWorkload(g, sol.Plan(), cm)
	return w, "dag/" + cm.Name(), err
}

// chainStrategy resolves a strategy name to a checkpoint vector.
func chainStrategy(cp *core.ChainProblem, name string) ([]bool, error) {
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))
	switch {
	case name == "dp":
		res, err := core.SolveChainDP(cp)
		return res.CheckpointAfter, err
	case name == "always":
		res, err := core.AlwaysCheckpoint(cp)
		return res.CheckpointAfter, err
	case name == "never":
		res, err := core.NeverCheckpoint(cp)
		return res.CheckpointAfter, err
	case name == "daly":
		res, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, cp.Model.Lambda))
		return res.CheckpointAfter, err
	case name == "young":
		res, err := core.PeriodicCheckpoint(cp, expectation.YoungPeriod(meanC, cp.Model.Lambda))
		return res.CheckpointAfter, err
	case strings.HasPrefix(name, "every:"):
		k, err := strconv.Atoi(name[len("every:"):])
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bad strategy %q: want every:<positive k>", name)
		}
		ck := make([]bool, cp.Len())
		for i := range ck {
			ck[i] = (i+1)%k == 0
		}
		ck[cp.Len()-1] = true
		return ck, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// runCampaign executes the plan cfg.runs times and prints realized vs
// planned.
func runCampaign(w *exec.Workload, m expectation.Model, planned float64, cfg config, out io.Writer) error {
	res, err := exec.Campaign(w, failure.Exponential{Lambda: m.Lambda}, exec.CampaignOptions{
		Runs: cfg.runs, Seed: cfg.seed, Downtime: m.Downtime,
	})
	if err != nil {
		return err
	}
	realized := res.Makespan.Mean()
	ci := res.Makespan.CI(0.99)
	fmt.Fprintf(out, "campaign: %d runs, realized %.4f ± %.4f (99%% CI), mean failures %.2f\n",
		res.Runs, realized, ci, res.Failures.Mean())
	fmt.Fprintf(out, "planned vs realized: |Δ| = %.4f, within CI: %v\n",
		math.Abs(realized-planned), math.Abs(realized-planned) <= ci)
	return nil
}

// runPersisted executes once against a crash-durable file store,
// resuming from whatever a previous invocation left there.
func runPersisted(w *exec.Workload, m expectation.Model, planned float64, cfg config, out io.Writer) error {
	fs, err := store.NewFileStore(cfg.dir)
	if err != nil {
		return err
	}
	var st store.Store = fs
	if cfg.faults {
		st = store.NewFaultStore(st, store.FaultPlan{
			Seed: cfg.faultSeed, WriteFail: 0.1, TornWrite: 0.1, LoseOld: 0.2, ReadFail: 0.1,
		})
	}
	st = store.Checked(st)
	src := exec.NewKeyedSource(failure.Exponential{Lambda: m.Lambda}, cfg.seed, 1)
	res, err := exec.Execute(w, src, exec.Options{
		RunID: cfg.runID, Store: st, Downtime: m.Downtime,
		SaveRetries: cfg.retries, CrashAfterEvents: cfg.crashEvents, CrashAfterSaves: cfg.crashSaves,
	})
	if res != nil && res.Resumed {
		fmt.Fprintf(out, "resumed from checkpoint %d (%d journal events restored)\n",
			res.ResumeSeq, res.RestoredEvents)
	}
	if errors.Is(err, exec.ErrCrashed) {
		fmt.Fprintf(out, "crashed as requested: %v\n", err)
		fmt.Fprintf(out, "state persists in %s — re-run without the crash flag to resume\n", cfg.dir)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "completed: makespan %.4f (planned %.4f), %d failures, %d checkpoints, %d saves this invocation\n",
		res.Makespan, planned, res.Failures, res.Checkpoints, res.Saves)
	fmt.Fprintf(out, "journal: %d events, hash %016x\n", len(res.Journal), res.Journal.Hash())
	return nil
}
