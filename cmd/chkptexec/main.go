// Command chkptexec executes a checkpoint plan on the crash-safe
// runtime (internal/exec): segments of work ending in checkpoints run
// against a seeded failure process under a virtual clock, uncheckpointed
// progress is lost on every failure, and committed checkpoints persist
// through a pluggable store.
//
// Two modes:
//
// Campaign (default) — execute the plan many times against independent
// keyed failure sources and compare the realized mean makespan with the
// planned expectation (Proposition 1):
//
//	chkptexec -workflow wf.json -lambda 0.01 -downtime 1 -runs 20000
//	chkptexec -workflow wf.json -strategy daly -runs 20000
//	chkptexec -workflow dag.json -costmodel live-set -runs 10000
//
// Persisted single run — execute once with checkpoints saved to a
// crash-durable file store. -crash-events kills the run at an injected
// point; re-running the identical command line resumes from the store
// and finishes with a journal byte-identical to an uninterrupted run
// (the printed journal hash is the witness). -faults wraps the store in
// a deterministic fault injector (failed and torn writes, lost old
// checkpoints, transient read failures) to drill the recovery paths:
//
//	chkptexec -workflow wf.json -dir /tmp/ckpts -crash-events 40
//	chkptexec -workflow wf.json -dir /tmp/ckpts            # resumes
//	chkptexec -workflow wf.json -dir /tmp/ckpts -faults -retries 4
//
// Degraded-store resilience — any of -retry-policy, -replan-threshold,
// -quota, -secondary-dir or -tenants switches the persisted run onto
// the adaptive executor (health-tracked retries with backoff, online
// suffix replanning under cost drift, failover, per-tenant quotas) and
// prints a resilience summary. -tenants N runs N concurrent persisted
// runs (<run-id>-t0 .. -t<N-1>) against one shared store stack; crash
// flags then apply to tenant 0 only:
//
//	chkptexec -workflow wf.json -dir /tmp/ckpts -faults -fault-latency 2 \
//	    -retry-policy exp:0.5 -replan-threshold 1.3
//	chkptexec -workflow wf.json -dir /tmp/ckpts -faults \
//	    -retry-policy fixed:2 -secondary-dir /tmp/ckpts2
//	chkptexec -workflow wf.json -dir /tmp/ckpts -tenants 4 -quota ckpts:3
//
// Quota accounting is per process: a resumed invocation starts with an
// empty ledger and only counts what it retains from then on.
//
// Networked stores — the -net-* flags route every store operation
// through a deterministic simulated network (keyed-stream latency,
// jitter, loss, and scheduled -partition windows isolating endpoint
// s0); -replicas N spreads checkpoints across N sealed remotes under a
// write quorum (-write-quorum, majority by default), so the run rides
// out a partition that cuts off a minority of replicas.
// -plan-from-telemetry closes the planner-feedback loop at plan time:
// the store stack is probed before planning and the placement re-solved
// with the effective checkpoint cost. -trace <csv> replays a recorded
// FTA-style failure log (see cmd/tracegen) instead of the seeded law,
// and fails loudly if the log runs out mid-run:
//
//	chkptexec -workflow wf.json -dir /tmp/ckpts -net-latency 0.5 \
//	    -net-jitter 0.2 -net-loss 0.05 -replicas 3 -partition 10:25 \
//	    -retry-policy exp:0.5
//	chkptexec -workflow wf.json -dir /tmp/ckpts -net-latency 2 -plan-from-telemetry
//	chkptexec -workflow wf.json -dir /tmp/ckpts -trace trace.csv
//
// Chain workflows choose the checkpoint vector with -strategy
// (dp | always | never | daly | young | every:k); general DAGs are
// linearized in topological order and placed optimally by the per-order
// DP under -costmodel (last-task | live-set). The same construction
// yields the online replanner: chains re-solve the suffix chain DP,
// DAGs the per-order placement DP under the chosen cost model.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/store"
	"repro/internal/trace"
)

// config carries every flag; run is pure in it so tests drive the CLI
// without exec.
type config struct {
	wfPath    string
	lambda    float64
	downtime  float64
	seed      uint64
	runs      int
	strategy  string
	costmodel string

	dir         string
	runID       string
	retries     int
	crashEvents int
	crashSaves  int
	faults      bool
	faultSeed   uint64

	retryPolicy     string
	replanThreshold float64
	quota           string
	tenants         int
	secondaryDir    string
	faultLatency    float64

	tracePath         string
	planFromTelemetry bool

	netLatency  float64
	netJitter   float64
	netLoss     float64
	netTimeout  float64
	netSeed     uint64
	partition   string
	replicas    int
	writeQuorum int

	lease     float64
	holder    string
	takeover  bool
	contend   bool
	syncMode  bool
	scrub     bool
	syncEvery int
}

// networked reports whether any network flag routes the store through
// the simulated network.
func (c config) networked() bool {
	return c.netLatency > 0 || c.netJitter > 0 || c.netLoss > 0 ||
		c.partition != "" || c.replicas > 1
}

// adaptive reports whether any resilience flag asks for the adaptive
// executor.
func (c config) adaptive() bool {
	return c.retryPolicy != "" || c.replanThreshold > 1 || c.quota != "" ||
		c.secondaryDir != "" || c.tenants > 1 || c.syncEvery > 0
}

// maintenance reports whether the invocation is a store-maintenance
// pass (-sync / -scrub) rather than an execution — no workflow needed.
func (c config) maintenance() bool {
	return c.syncMode || c.scrub
}

func main() {
	var cfg config
	flag.StringVar(&cfg.wfPath, "workflow", "", "workflow JSON file (required)")
	flag.Float64Var(&cfg.lambda, "lambda", 0.01, "platform failure rate λ")
	flag.Float64Var(&cfg.downtime, "downtime", 1, "downtime D after each failure")
	flag.Uint64Var(&cfg.seed, "seed", 1, "random seed (keys every failure gap)")
	flag.IntVar(&cfg.runs, "runs", 20000, "campaign executions (campaign mode)")
	flag.StringVar(&cfg.strategy, "strategy", "dp", "chain checkpoint strategy: dp | always | never | daly | young | every:k")
	flag.StringVar(&cfg.costmodel, "costmodel", "last-task", "DAG cost model: last-task | live-set")
	flag.StringVar(&cfg.dir, "dir", "", "checkpoint store directory: switches to a persisted single run that resumes across invocations")
	flag.StringVar(&cfg.runID, "run-id", "run", "run name inside the store")
	flag.IntVar(&cfg.retries, "retries", 0, "store save/load retries (useful with -faults)")
	flag.IntVar(&cfg.crashEvents, "crash-events", 0, "kill the run once the journal holds this many events (demo crash point)")
	flag.IntVar(&cfg.crashSaves, "crash-saves", 0, "kill the run after this many checkpoint saves")
	flag.BoolVar(&cfg.faults, "faults", false, "wrap the store in the deterministic fault injector")
	flag.Uint64Var(&cfg.faultSeed, "fault-seed", 42, "fault injector seed")
	flag.StringVar(&cfg.retryPolicy, "retry-policy", "", "adaptive save retry policy: none | fixed:<n> | exp[:base[:factor[:cap[:max]]]] (enables the adaptive executor)")
	flag.Float64Var(&cfg.replanThreshold, "replan-threshold", 0, "hysteresis ratio of effective vs planned checkpoint cost that triggers online replanning (> 1 enables; adaptive)")
	flag.StringVar(&cfg.quota, "quota", "", "per-tenant retained-checkpoint quota, e.g. ckpts:4, bytes:8192 or ckpts:4,bytes:8192 (adaptive; per-process accounting)")
	flag.IntVar(&cfg.tenants, "tenants", 1, "run this many concurrent tenants (<run-id>-t<i>) against one shared store stack (adaptive)")
	flag.StringVar(&cfg.secondaryDir, "secondary-dir", "", "failover checkpoint store directory (adaptive)")
	flag.Float64Var(&cfg.faultLatency, "fault-latency", 0, "mean injected store latency per operation (with -faults)")
	flag.StringVar(&cfg.tracePath, "trace", "", "drive failures from a recorded FTA-style CSV log instead of a seeded law (persisted run only)")
	flag.BoolVar(&cfg.planFromTelemetry, "plan-from-telemetry", false, "probe the store before planning and re-solve the placement with the effective checkpoint cost (requires -dir)")
	flag.Float64Var(&cfg.netLatency, "net-latency", 0, "simulated network base latency per store operation (enables the networked store)")
	flag.Float64Var(&cfg.netJitter, "net-jitter", 0, "mean of the Exp-distributed latency jitter (networked)")
	flag.Float64Var(&cfg.netLoss, "net-loss", 0, "message loss probability per delivery (networked)")
	flag.Float64Var(&cfg.netTimeout, "net-timeout", 0, "per-operation remote timeout; 0 picks 8x(latency+jitter) (networked)")
	flag.Uint64Var(&cfg.netSeed, "net-seed", 7, "network simulation seed (networked)")
	flag.StringVar(&cfg.partition, "partition", "", "partition windows isolating store endpoint s0, e.g. 10:25 or 10:25,40:50 in virtual time (networked)")
	flag.IntVar(&cfg.replicas, "replicas", 1, "replicate checkpoints across this many networked stores (endpoints s0..s<n-1>, directories <dir>/r<i>)")
	flag.IntVar(&cfg.writeQuorum, "write-quorum", 0, "write quorum W for -replicas > 1; 0 picks the majority")
	flag.Float64Var(&cfg.lease, "lease", 0, "epoch-fenced write lease TTL in virtual time: the executor acquires a monotonically increasing epoch before writing, and stale-epoch (zombie) writes fail with ErrFenced (persisted run)")
	flag.StringVar(&cfg.holder, "holder", "", "lease holder identity (with -lease; default \"exec\")")
	flag.BoolVar(&cfg.takeover, "takeover", false, "acquire the lease even while another holder's lease is live — fences the old holder (with -lease)")
	flag.BoolVar(&cfg.contend, "contend", false, "two-executor fencing drill: run an uncontended reference, kill executor a, let b take over, prove the woken zombie is fenced and the survivor journal is bit-identical (requires -lease)")
	flag.BoolVar(&cfg.syncMode, "sync", false, "maintenance: run one anti-entropy pass converging every replica of -run-id, then exit (requires -dir and -replicas >= 2; no -workflow needed)")
	flag.BoolVar(&cfg.scrub, "scrub", false, "maintenance: walk every (run, seq) key, repair CRC-corrupt replicas from a clean quorum, fail loudly when none exists (requires -dir and -replicas >= 2; no -workflow needed)")
	flag.IntVar(&cfg.syncEvery, "sync-every", 0, "run an anti-entropy pass after every k-th committed segment and at completion (adaptive; with -replicas >= 2)")
	flag.Parse()
	if cfg.wfPath == "" && !cfg.maintenance() {
		flag.Usage()
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "chkptexec: %v\n", err)
		os.Exit(1)
	}
}

func run(cfg config, out io.Writer) error {
	if cfg.maintenance() {
		return runMaintenance(cfg, out)
	}
	f, err := os.Open(cfg.wfPath)
	if err != nil {
		return err
	}
	g, err := dag.Read(f)
	f.Close()
	if err != nil {
		return err
	}
	m, err := expectation.NewModel(cfg.lambda, cfg.downtime)
	if err != nil {
		return err
	}
	if cfg.dir == "" {
		switch {
		case cfg.adaptive():
			return fmt.Errorf("resilience flags (-retry-policy, -replan-threshold, -quota, -tenants, -secondary-dir) require a persisted run: set -dir")
		case cfg.networked():
			return fmt.Errorf("network flags (-net-latency, -net-jitter, -net-loss, -partition, -replicas) require a persisted run: set -dir")
		case cfg.tracePath != "":
			return fmt.Errorf("-trace replays one recorded platform log through one run: set -dir")
		case cfg.planFromTelemetry:
			return fmt.Errorf("-plan-from-telemetry probes the persisted store stack: set -dir")
		case cfg.lease > 0 || cfg.contend:
			return fmt.Errorf("-lease/-contend fence writes to a persisted store: set -dir")
		}
	}
	overhead := 0.0
	if cfg.planFromTelemetry {
		st, err := buildStore(cfg, nil)
		if err != nil {
			return err
		}
		probe := exec.ProbeStore(st, "telemetry-probe", 16, 0, 0)
		fmt.Fprintf(out, "%s\n", probe)
		overhead = probe.Estimate
	}
	w, replanner, desc, err := buildWorkload(g, m, cfg, overhead)
	if err != nil {
		return err
	}
	planned := w.Planned(m)
	fmt.Fprintf(out, "plan: %s — %d tasks, %d segments, planned E[makespan] %.4f\n",
		desc, w.Len(), w.Segments(), planned)

	if cfg.dir == "" {
		return runCampaign(w, m, planned, cfg, out)
	}
	if cfg.contend {
		if cfg.tenants > 1 || cfg.tracePath != "" {
			return fmt.Errorf("-contend drives one contended run: drop -tenants/-trace")
		}
		return runContend(g, m, planned, cfg, overhead, out)
	}
	if cfg.tenants > 1 {
		if cfg.tracePath != "" {
			return fmt.Errorf("-trace records one platform's failures: it cannot drive %d concurrent tenants", cfg.tenants)
		}
		return runTenants(g, m, planned, replanner, cfg, overhead, out)
	}
	return runPersisted(w, m, planned, replanner, cfg, out)
}

// buildSource picks the failure source for a persisted run: the keyed
// seeded law, or the recorded trace when -trace is set (the *TraceSource
// return is non-nil exactly then, so the caller can check exhaustion).
func buildSource(cfg config, m expectation.Model) (exec.Source, *exec.TraceSource, error) {
	if cfg.tracePath == "" {
		return exec.NewKeyedSource(failure.Exponential{Lambda: m.Lambda}, cfg.seed, 1), nil, nil
	}
	f, err := os.Open(cfg.tracePath)
	if err != nil {
		return nil, nil, err
	}
	tr, err := trace.ReadCSV(f)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("reading trace %s: %w", cfg.tracePath, err)
	}
	gaps := tr.PlatformGaps()
	if len(gaps) == 0 {
		return nil, nil, fmt.Errorf("trace %s holds fewer than two events: no failure gaps to replay", cfg.tracePath)
	}
	rate := 0.0
	if mtbf := tr.MTBF(); mtbf > 0 {
		rate = 1 / mtbf
	}
	ts := exec.NewTraceSource(gaps, rate)
	return ts, ts, nil
}

// buildWorkload compiles the workflow into an executable workload plus
// the matching online replanner: chains via the strategy flag and the
// suffix chain DP, general DAGs via topological linearization plus the
// exact placement DP under the cost model flag. A positive overhead is
// the plan-time telemetry estimate: the placement is re-solved with
// every checkpoint cost inflated by it (the whole-plan analog of the
// executor's online suffix replanning).
func buildWorkload(g *dag.Graph, m expectation.Model, cfg config, overhead float64) (*exec.Workload, exec.Replanner, string, error) {
	if _, isChain := g.IsLinearChain(); isChain {
		cp, _, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			return nil, nil, "", err
		}
		ck, err := chainStrategy(cp, cfg.strategy)
		if err != nil {
			return nil, nil, "", err
		}
		rp := exec.ChainReplanner{CP: cp}
		desc := "chain/" + cfg.strategy
		if overhead > 0 {
			segs, err := rp.Replan(0, overhead)
			if err != nil {
				return nil, nil, "", err
			}
			ck = checkpointsFromSegments(cp.Len(), segs)
			desc = "chain/telemetry"
		}
		w, err := exec.NewChainWorkload(cp, ck)
		return w, rp, desc, err
	}
	var cm core.CostModel
	switch cfg.costmodel {
	case "last-task":
		cm = core.LastTaskCosts{}
	case "live-set":
		cm = core.LiveSetCosts{}
	default:
		return nil, nil, "", fmt.Errorf("unknown cost model %q (want last-task | live-set)", cfg.costmodel)
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		return nil, nil, "", err
	}
	sol, err := core.SolveOrderDP(g, order, m, cm)
	if err != nil {
		return nil, nil, "", err
	}
	rp := exec.OrderReplanner{G: g, Order: order, M: m, CM: cm}
	plan := sol.Plan()
	desc := "dag/" + cm.Name()
	if overhead > 0 {
		segs, err := rp.Replan(0, overhead)
		if err != nil {
			return nil, nil, "", err
		}
		plan.CheckpointAfter = checkpointsFromSegments(len(plan.Order), segs)
		desc = "dag/telemetry"
	}
	w, err := exec.NewDAGWorkload(g, plan, cm)
	return w, rp, desc, err
}

// checkpointsFromSegments converts a replanned segment cover back into
// the positional checkpoint vector (each segment ends at a checkpoint).
func checkpointsFromSegments(n int, segs []core.Segment) []bool {
	ck := make([]bool, n)
	for _, s := range segs {
		ck[s.End] = true
	}
	return ck
}

// parseRetryPolicy resolves the -retry-policy spelling.
func parseRetryPolicy(name string) (exec.RetryPolicy, error) {
	switch {
	case name == "" || name == "none":
		return exec.NoRetry{}, nil
	case strings.HasPrefix(name, "fixed:"):
		n, err := strconv.Atoi(name[len("fixed:"):])
		if err != nil || n <= 0 {
			return nil, fmt.Errorf("bad retry policy %q: want fixed:<positive n>", name)
		}
		return exec.FixedRetry{Attempts: n}, nil
	case name == "exp" || strings.HasPrefix(name, "exp:"):
		pol := exec.ExpBackoff{Base: 0.5}
		parts := strings.Split(name, ":")[1:]
		dst := []*float64{&pol.Base, &pol.Factor, &pol.Cap}
		for i, part := range parts {
			if i == len(dst) {
				n, err := strconv.Atoi(part)
				if err != nil || n <= 0 {
					return nil, fmt.Errorf("bad retry policy %q: max attempts %q", name, part)
				}
				pol.MaxAttempts = n
				break
			}
			v, err := strconv.ParseFloat(part, 64)
			if err != nil || v < 0 {
				return nil, fmt.Errorf("bad retry policy %q: %q", name, part)
			}
			*dst[i] = v
		}
		return pol, nil
	}
	return nil, fmt.Errorf("unknown retry policy %q (want none | fixed:<n> | exp[:base[:factor[:cap[:max]]]])", name)
}

// parseQuota resolves the -quota spelling into a per-tenant budget.
func parseQuota(spec string) (store.Quota, error) {
	var q store.Quota
	if spec == "" {
		return q, nil
	}
	for _, part := range strings.Split(spec, ",") {
		switch {
		case strings.HasPrefix(part, "ckpts:"):
			n, err := strconv.Atoi(part[len("ckpts:"):])
			if err != nil || n <= 0 {
				return q, fmt.Errorf("bad quota %q: want ckpts:<positive n>", part)
			}
			q.MaxCheckpoints = n
		case strings.HasPrefix(part, "bytes:"):
			n, err := strconv.ParseUint(part[len("bytes:"):], 10, 64)
			if err != nil || n == 0 {
				return q, fmt.Errorf("bad quota %q: want bytes:<positive n>", part)
			}
			q.MaxBytes = n
		default:
			return q, fmt.Errorf("bad quota %q (want ckpts:<n>, bytes:<n> or both, comma-separated)", part)
		}
	}
	return q, nil
}

// chainStrategy resolves a strategy name to a checkpoint vector.
func chainStrategy(cp *core.ChainProblem, name string) ([]bool, error) {
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))
	switch {
	case name == "dp":
		res, err := core.SolveChainDP(cp)
		return res.CheckpointAfter, err
	case name == "always":
		res, err := core.AlwaysCheckpoint(cp)
		return res.CheckpointAfter, err
	case name == "never":
		res, err := core.NeverCheckpoint(cp)
		return res.CheckpointAfter, err
	case name == "daly":
		res, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, cp.Model.Lambda))
		return res.CheckpointAfter, err
	case name == "young":
		res, err := core.PeriodicCheckpoint(cp, expectation.YoungPeriod(meanC, cp.Model.Lambda))
		return res.CheckpointAfter, err
	case strings.HasPrefix(name, "every:"):
		k, err := strconv.Atoi(name[len("every:"):])
		if err != nil || k <= 0 {
			return nil, fmt.Errorf("bad strategy %q: want every:<positive k>", name)
		}
		ck := make([]bool, cp.Len())
		for i := range ck {
			ck[i] = (i+1)%k == 0
		}
		ck[cp.Len()-1] = true
		return ck, nil
	}
	return nil, fmt.Errorf("unknown strategy %q", name)
}

// runCampaign executes the plan cfg.runs times and prints realized vs
// planned.
func runCampaign(w *exec.Workload, m expectation.Model, planned float64, cfg config, out io.Writer) error {
	res, err := exec.Campaign(w, failure.Exponential{Lambda: m.Lambda}, exec.CampaignOptions{
		Runs: cfg.runs, Seed: cfg.seed, Downtime: m.Downtime,
	})
	if err != nil {
		return err
	}
	realized := res.Makespan.Mean()
	ci := res.Makespan.CI(0.99)
	fmt.Fprintf(out, "campaign: %d runs, realized %.4f ± %.4f (99%% CI), mean failures %.2f\n",
		res.Runs, realized, ci, res.Failures.Mean())
	fmt.Fprintf(out, "planned vs realized: |Δ| = %.4f, within CI: %v\n",
		math.Abs(realized-planned), math.Abs(realized-planned) <= ci)
	return nil
}

// parsePartitions resolves the -partition spelling into scheduled
// windows isolating store endpoint s0.
func parsePartitions(spec string) ([]netsim.Window, error) {
	if spec == "" {
		return nil, nil
	}
	var wins []netsim.Window
	for _, part := range strings.Split(spec, ",") {
		lo, hi, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("bad partition window %q (want start:end)", part)
		}
		start, err1 := strconv.ParseFloat(lo, 64)
		end, err2 := strconv.ParseFloat(hi, 64)
		if err1 != nil || err2 != nil || start < 0 || end <= start {
			return nil, fmt.Errorf("bad partition window %q (want 0 <= start < end)", part)
		}
		wins = append(wins, netsim.Window{Start: start, End: end, Isolated: []string{"s0"}})
	}
	return wins, nil
}

// buildStore assembles the persisted store stack: file store, optional
// fault injector, codec sealing, optional quota layer. The quota ledger
// is passed in so concurrent tenants share one accounting.
//
// Network flags route every replica through one simulated network
// (endpoint s<i>, directory <dir>/r<i> when replicated), with the codec
// seal OUTSIDE the remote hop so torn and lost messages are detected,
// not decoded; -replicas > 1 composes the sealed remotes under a write
// quorum. The quota layer stays outermost — it meters what the tenant
// retains, however it is replicated.
func buildStore(cfg config, ledger *store.QuotaLedger) (store.Store, error) {
	inner := func(dir string, salt uint64) (store.Store, error) {
		fs, err := store.NewFileStore(dir)
		if err != nil {
			return nil, err
		}
		var st store.Store = fs
		if cfg.faults {
			plan := store.FaultPlan{
				Seed: cfg.faultSeed + salt, WriteFail: 0.1, TornWrite: 0.1, LoseOld: 0.2, ReadFail: 0.1,
				MeanLatency: cfg.faultLatency,
				// The adaptive executor's replay identity requires fault
				// outcomes to be a pure function of the logical operation,
				// not of the injector's lifetime op index.
				LogicalKeys: cfg.adaptive() || cfg.networked(),
			}
			if ledger != nil {
				// Silent old-checkpoint loss would desync the quota
				// ledger's retained accounting from the store.
				plan.LoseOld = 0
			}
			st = store.NewFaultStore(st, plan)
		}
		return st, nil
	}

	var st store.Store
	if !cfg.networked() {
		s, err := inner(cfg.dir, 0)
		if err != nil {
			return nil, err
		}
		st = store.Checked(s)
	} else {
		wins, err := parsePartitions(cfg.partition)
		if err != nil {
			return nil, err
		}
		netCfg := netsim.Config{
			Seed: cfg.netSeed, Latency: cfg.netLatency, Jitter: cfg.netJitter,
			Loss: cfg.netLoss, Partitions: wins,
		}
		net := netsim.New(netCfg)
		n := cfg.replicas
		if n < 1 {
			n = 1
		}
		reps := make([]store.Store, n)
		for i := range reps {
			dir := cfg.dir
			if n > 1 {
				dir = filepath.Join(cfg.dir, fmt.Sprintf("r%d", i))
			}
			s, err := inner(dir, uint64(i))
			if err != nil {
				return nil, err
			}
			reps[i] = store.Checked(store.NewRemoteStore(s, net, netCfg, store.RemoteConfig{
				Remote: fmt.Sprintf("s%d", i), Timeout: cfg.netTimeout,
			}))
		}
		if n > 1 {
			q, err := store.NewQuorumStore(reps, store.QuorumConfig{W: cfg.writeQuorum})
			if err != nil {
				return nil, err
			}
			st = q
		} else {
			st = reps[0]
		}
	}
	if cfg.lease > 0 {
		// Epoch-fenced leases ride INSIDE the quota wrapper: the lease
		// record persists through the same codec/quorum machinery as the
		// checkpoints it guards, but lease traffic is protocol overhead,
		// not tenant data, so it stays off the quota ledger.
		st = store.NewLeaseStore(st, store.LeaseConfig{
			Holder: cfg.holder, TTL: cfg.lease, Takeover: cfg.takeover,
		})
	}
	if ledger != nil {
		st = store.NewQuotaStore(ledger, st)
	}
	return st, nil
}

// buildAdaptive assembles the AdaptiveOptions the resilience flags ask
// for; nil when no resilience flag is set.
func buildAdaptive(cfg config, replanner exec.Replanner) (*exec.AdaptiveOptions, exec.RetryPolicy, error) {
	if !cfg.adaptive() {
		return nil, nil, nil
	}
	pol, err := parseRetryPolicy(cfg.retryPolicy)
	if err != nil {
		return nil, nil, err
	}
	ao := &exec.AdaptiveOptions{Retry: pol, ReplanRatio: cfg.replanThreshold, SyncEvery: cfg.syncEvery}
	if cfg.replanThreshold > 1 {
		ao.Replanner = replanner
	}
	if cfg.secondaryDir != "" {
		sfs, err := store.NewFileStore(cfg.secondaryDir)
		if err != nil {
			return nil, nil, err
		}
		ao.Secondary = store.Checked(sfs)
	}
	return ao, pol, nil
}

// quotaLedger builds the per-process quota ledger, nil when -quota is
// unset.
func quotaLedger(cfg config) (*store.QuotaLedger, error) {
	if cfg.quota == "" {
		return nil, nil
	}
	q, err := parseQuota(cfg.quota)
	if err != nil {
		return nil, err
	}
	return store.NewQuotaLedger(q, nil), nil
}

// reportResult prints one invocation's outcome; prefix labels the
// tenant in multi-tenant mode.
func reportResult(out io.Writer, prefix string, cfg config, planned float64, res *exec.Result, err error) error {
	if res != nil && res.Resumed {
		fmt.Fprintf(out, "%sresumed from checkpoint %d (%d journal events restored)\n",
			prefix, res.ResumeSeq, res.RestoredEvents)
	}
	if res != nil && res.Epoch > 0 {
		fmt.Fprintf(out, "%slease: holding epoch %d\n", prefix, res.Epoch)
	}
	if errors.Is(err, exec.ErrCrashed) {
		fmt.Fprintf(out, "%scrashed as requested: %v\n", prefix, err)
		fmt.Fprintf(out, "%sstate persists in %s — re-run without the crash flag to resume\n", prefix, cfg.dir)
		return nil
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "%scompleted: makespan %.4f (planned %.4f), %d failures, %d checkpoints, %d saves this invocation\n",
		prefix, res.Makespan, planned, res.Failures, res.Checkpoints, res.Saves)
	fmt.Fprintf(out, "%sjournal: %d events, hash %016x\n", prefix, len(res.Journal), res.Journal.Hash())
	return nil
}

// reportResilience prints the adaptive executor's summary line.
func reportResilience(out io.Writer, prefix string, pol exec.RetryPolicy, res *exec.Result) {
	fmt.Fprintf(out, "%sresilience: policy %s, replans %d, save give-ups %d, level %s, store overhead %.4f, max rewind exposure %.4f\n",
		prefix, pol.Name(), res.Replans, res.GiveUps, res.Level, res.StoreOverhead, res.MaxRewind)
	if res.Syncs > 0 {
		fmt.Fprintf(out, "%santi-entropy: %d passes, %d replica copies, %d unconverged\n",
			prefix, res.Syncs, res.SyncCopied, res.SyncFailures)
	}
}

// runPersisted executes once against a crash-durable file store,
// resuming from whatever a previous invocation left there.
func runPersisted(w *exec.Workload, m expectation.Model, planned float64, replanner exec.Replanner, cfg config, out io.Writer) error {
	ledger, err := quotaLedger(cfg)
	if err != nil {
		return err
	}
	st, err := buildStore(cfg, ledger)
	if err != nil {
		return err
	}
	ao, pol, err := buildAdaptive(cfg, replanner)
	if err != nil {
		return err
	}
	src, ts, err := buildSource(cfg, m)
	if err != nil {
		return err
	}
	res, err := exec.Execute(w, src, exec.Options{
		RunID: cfg.runID, Store: st, Downtime: m.Downtime,
		SaveRetries: cfg.retries, CrashAfterEvents: cfg.crashEvents, CrashAfterSaves: cfg.crashSaves,
		Adaptive: ao,
	})
	if ts != nil && ts.Exhausted() {
		// The recorded log ran out of failure gaps mid-run: everything
		// past the last recorded event executed failure-free, which the
		// trace cannot justify. Refuse to pass that off as a replay.
		return fmt.Errorf("trace %s exhausted mid-run: the execution outlived the recorded log — provide a longer trace or lower the workload", cfg.tracePath)
	}
	if rerr := reportResult(out, "", cfg, planned, res, err); rerr != nil || err != nil {
		return rerr
	}
	if ao != nil {
		reportResilience(out, "", pol, res)
	}
	return nil
}

// runTenants executes cfg.tenants concurrent persisted runs, one per
// tenant, against one shared store stack (and one shared quota ledger).
// Crash flags apply to tenant 0 only; every tenant resumes its own run
// on the next invocation.
func runTenants(g *dag.Graph, m expectation.Model, planned float64, replanner exec.Replanner, cfg config, overhead float64, out io.Writer) error {
	ledger, err := quotaLedger(cfg)
	if err != nil {
		return err
	}
	st, err := buildStore(cfg, ledger)
	if err != nil {
		return err
	}
	ao, pol, err := buildAdaptive(cfg, replanner)
	if err != nil {
		return err
	}
	results := make([]*exec.Result, cfg.tenants)
	errs := make([]error, cfg.tenants)
	var wg sync.WaitGroup
	for i := 0; i < cfg.tenants; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each tenant needs its own workload: the executor replans
			// against executor-local segment state.
			w, _, _, err := buildWorkload(g, m, cfg, overhead)
			if err != nil {
				errs[i] = err
				return
			}
			opts := exec.Options{
				RunID:    fmt.Sprintf("%s-t%d", cfg.runID, i),
				Store:    st,
				Downtime: m.Downtime,
				Adaptive: ao,
			}
			if i == 0 {
				opts.CrashAfterEvents = cfg.crashEvents
				opts.CrashAfterSaves = cfg.crashSaves
			}
			src := exec.NewKeyedSource(failure.Exponential{Lambda: m.Lambda}, cfg.seed, uint64(i+1))
			results[i], errs[i] = exec.Execute(w, src, opts)
		}()
	}
	wg.Wait()
	for i := 0; i < cfg.tenants; i++ {
		prefix := fmt.Sprintf("tenant %d: ", i)
		if err := reportResult(out, prefix, cfg, planned, results[i], errs[i]); err != nil {
			return fmt.Errorf("tenant %d: %w", i, err)
		}
		if ao != nil && errs[i] == nil {
			reportResilience(out, prefix, pol, results[i])
		}
	}
	return nil
}

// runMaintenance serves -sync and -scrub: no workflow, no execution —
// just deterministic repair passes over the persisted replicated store.
// With both flags set the scrub runs first (heal rot from clean
// quorums), then the sync (fill missing/stale copies), so one
// invocation leaves every reachable replica clean AND converged.
func runMaintenance(cfg config, out io.Writer) error {
	if cfg.dir == "" {
		return fmt.Errorf("-sync/-scrub repair a persisted replicated store: set -dir")
	}
	if cfg.replicas < 2 {
		return fmt.Errorf("-sync/-scrub compare replicas: set -replicas >= 2")
	}
	if cfg.contend || cfg.tenants > 1 {
		return fmt.Errorf("-sync/-scrub are maintenance passes: drop -contend/-tenants")
	}
	st, err := buildStore(cfg, nil)
	if err != nil {
		return err
	}
	if cfg.scrub {
		sc, ok := store.FindScrubber(st)
		if !ok {
			return fmt.Errorf("store stack has no scrubber (need -replicas >= 2)")
		}
		rep, err := sc.ScrubRun(cfg.runID)
		fmt.Fprintf(out, "scrub %s: %d seqs, %d replica copies checked, %d corrupt, %d repaired, %d unrepairable, %d repair writes failed\n",
			cfg.runID, rep.Seqs, rep.Checked, rep.Corrupt, rep.Repaired, rep.Unrepairable, rep.CopyFailures)
		if err != nil {
			return err
		}
	}
	if cfg.syncMode {
		sy, ok := store.FindSyncer(st)
		if !ok {
			return fmt.Errorf("store stack has no syncer (need -replicas >= 2)")
		}
		rep, err := sy.SyncRun(cfg.runID)
		fmt.Fprintf(out, "sync %s: %d seqs, %d replica copies written, %d verified in sync, %d load failures, %d copy failures, %d replicas unlisted — converged %v\n",
			cfg.runID, rep.Seqs, rep.Copied, rep.InSync, rep.LoadFailures, rep.CopyFailures, rep.Unlisted, rep.Converged())
		if err != nil {
			return err
		}
	}
	return nil
}

// runContend drives the two-executor fencing drill end to end inside
// -dir: an uncontended leased reference run under <dir>/ref, then a
// contended run under <dir>/main where executor a is killed at the
// -crash-events point, executor b takes the run over with a higher
// epoch (and is itself killed after one save), the woken zombie a is
// fenced on its first write, and the surviving b resumes to completion.
// The drill fails unless the survivor's journal is bit-identical to the
// uncontended reference — fencing means the loser never interleaved.
func runContend(g *dag.Graph, m expectation.Model, planned float64, cfg config, overhead float64, out io.Writer) error {
	if cfg.lease <= 0 {
		return fmt.Errorf("-contend is a fencing drill: set -lease <ttl>")
	}
	crash := cfg.crashEvents
	if crash <= 0 {
		crash = 40
	}
	exe := func(c config, st store.Store, crashEvents, crashSaves int) (*exec.Result, error) {
		w, replanner, _, err := buildWorkload(g, m, c, overhead)
		if err != nil {
			return nil, err
		}
		ao, _, err := buildAdaptive(c, replanner)
		if err != nil {
			return nil, err
		}
		src, _, err := buildSource(c, m)
		if err != nil {
			return nil, err
		}
		return exec.Execute(w, src, exec.Options{
			RunID: c.runID, Store: st, Downtime: m.Downtime,
			SaveRetries: c.retries, CrashAfterEvents: crashEvents, CrashAfterSaves: crashSaves,
			Adaptive: ao,
		})
	}

	refCfg := cfg
	refCfg.dir = filepath.Join(cfg.dir, "ref")
	refCfg.holder = "ref"
	refStore, err := buildStore(refCfg, nil)
	if err != nil {
		return err
	}
	ref, err := exe(refCfg, refStore, 0, 0)
	if err != nil {
		return fmt.Errorf("contend reference run: %w", err)
	}
	fmt.Fprintf(out, "contend: reference (epoch %d) journal: %d events, hash %016x\n",
		ref.Epoch, len(ref.Journal), ref.Journal.Hash())

	mainCfg := cfg
	mainCfg.dir = filepath.Join(cfg.dir, "main")

	aCfg := mainCfg
	aCfg.holder = "a"
	aStore, err := buildStore(aCfg, nil)
	if err != nil {
		return err
	}
	resA, err := exe(aCfg, aStore, crash, 0)
	if !errors.Is(err, exec.ErrCrashed) {
		return fmt.Errorf("contend: executor a finished before the kill point (%v): set -crash-events below the run's %d events", err, len(ref.Journal))
	}
	fmt.Fprintf(out, "contend: executor a (epoch %d) killed after %d journal events\n", resA.Epoch, crash)

	bCfg := mainCfg
	bCfg.holder = "b"
	bCfg.takeover = true
	bStore, err := buildStore(bCfg, nil)
	if err != nil {
		return err
	}
	resB, err := exe(bCfg, bStore, 0, 1)
	switch {
	case errors.Is(err, exec.ErrCrashed):
		fmt.Fprintf(out, "contend: executor b (epoch %d) took the run over, killed after one save\n", resB.Epoch)
	case err == nil:
		fmt.Fprintf(out, "contend: executor b (epoch %d) took the run over and completed\n", resB.Epoch)
	default:
		return fmt.Errorf("contend: executor b: %w", err)
	}

	// Zombie a wakes up on its ORIGINAL store instance — stale lease
	// session, stale epoch — and must be fenced on its first write (or
	// complete write-free with the identical journal when b already
	// finished the run).
	zRes, zErr := exe(aCfg, aStore, 0, 0)
	switch {
	case errors.Is(zErr, store.ErrFenced):
		fmt.Fprintf(out, "contend: zombie a fenced: %v\n", zErr)
	case zErr == nil && zRes.Journal.Equal(ref.Journal):
		fmt.Fprintf(out, "contend: zombie a had no writes left (journal already complete)\n")
	case zErr == nil:
		return fmt.Errorf("contend: zombie a completed UNFENCED with a diverged journal (hash %016x, reference %016x)",
			zRes.Journal.Hash(), ref.Journal.Hash())
	default:
		return fmt.Errorf("contend: zombie a: %w", zErr)
	}

	survStore, err := buildStore(bCfg, nil)
	if err != nil {
		return err
	}
	surv, err := exe(bCfg, survStore, 0, 0)
	if err != nil {
		return fmt.Errorf("contend survivor run: %w", err)
	}
	fmt.Fprintf(out, "contend: survivor (epoch %d) journal: %d events, hash %016x\n",
		surv.Epoch, len(surv.Journal), surv.Journal.Hash())
	identical := surv.Journal.Equal(ref.Journal)
	fmt.Fprintf(out, "contend: survivor journal identical to uncontended reference: %v\n", identical)
	if !identical {
		return fmt.Errorf("contend: survivor journal diverged from the uncontended reference")
	}
	return nil
}
