package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchtrajWritesReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	simOut := filepath.Join(dir, "bench_sim.json")
	dagOut := filepath.Join(dir, "bench_dag.json")
	var stderr bytes.Buffer
	if code := run([]string{"-out", out, "-simout", simOut, "-dagout", dagOut, "-benchtime", "1ms",
		"-sizes", "50,100", "-simprocs", "1,64", "-dagsizes", "7,10"}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// Two solvers × two sizes + the sim steady-state loop.
	if len(rep.Results) != 5 {
		t.Fatalf("got %d results, want 5: %+v", len(rep.Results), rep.Results)
	}
	byName := map[string]Measurement{}
	for _, m := range rep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		byName[m.Name] = m
	}
	if _, ok := byName["chain_dp_kernel/n=100"]; !ok {
		t.Error("missing chain_dp_kernel/n=100")
	}
	if m, ok := byName["sim_run_steady_state"]; !ok {
		t.Error("missing sim_run_steady_state")
	} else if m.AllocsPerOp != 0 {
		t.Errorf("sim steady state allocates %d/op, want 0", m.AllocsPerOp)
	}

	simData, err := os.ReadFile(simOut)
	if err != nil {
		t.Fatal(err)
	}
	var simRep Report
	if err := json.Unmarshal(simData, &simRep); err != nil {
		t.Fatalf("sim output is not valid JSON: %v", err)
	}
	// Scan+heap × two platform sizes + CRN/independent + sort/P².
	if len(simRep.Results) != 8 {
		t.Fatalf("got %d sim results, want 8: %+v", len(simRep.Results), simRep.Results)
	}
	simByName := map[string]Measurement{}
	for _, m := range simRep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		simByName[m.Name] = m
	}
	for _, name := range []string{
		"superposed_campaign_scan/p=64", "superposed_campaign_heap/p=64",
		"campaign_crn/s=2", "campaign_independent/s=2",
		"quantiles_sort/n=1000000", "quantiles_p2/n=1000000",
	} {
		if _, ok := simByName[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
	// The superposed campaign loops reuse one process: 0 allocs/op, like
	// the steady-state loop.
	for _, name := range []string{"superposed_campaign_scan/p=64", "superposed_campaign_heap/p=64"} {
		if m := simByName[name]; m.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d/op, want 0", name, m.AllocsPerOp)
		}
	}

	dagData, err := os.ReadFile(dagOut)
	if err != nil {
		t.Fatal(err)
	}
	var dagRep Report
	if err := json.Unmarshal(dagData, &dagRep); err != nil {
		t.Fatalf("dag output is not valid JSON: %v", err)
	}
	dagByName := map[string]Measurement{}
	for _, m := range dagRep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		dagByName[m.Name] = m
	}
	// -dagsizes 7,10 → in-trees of 7 and 10 tasks: lattice + factorial
	// for both (small order counts), plus the two portfolio arms.
	for _, name := range []string{
		"dag_lattice/n=7", "dag_factorial/n=7",
		"dag_lattice/n=10", "dag_factorial/n=10",
		"dag_portfolio/workers=1", "dag_portfolio/workers=4",
	} {
		if _, ok := dagByName[name]; !ok {
			t.Errorf("missing %s (have %v)", name, dagRep.Results)
		}
	}
	for _, name := range []string{"dag_lattice/n=7", "dag_lattice/n=10"} {
		if m := dagByName[name]; m.States <= 0 {
			t.Errorf("%s records no peak state count", name)
		}
	}
}

func TestBenchtrajSkipsSimReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stderr bytes.Buffer
	if code := run([]string{"-out", out, "-simout", "", "-dagout", "", "-benchtime", "1ms", "-sizes", "50"}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("empty -simout/-dagout must skip those trajectories; dir has %d files", len(entries))
	}
}

func TestBenchtrajBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-sizes", "0"}, &stderr); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
	if code := run([]string{"-sizes", "abc"}, &stderr); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
	if code := run([]string{"-simprocs", "-3"}, &stderr); code != 2 {
		t.Errorf("bad simprocs: exit %d, want 2", code)
	}
}
