package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestBenchtrajWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "bench.json")
	var stderr bytes.Buffer
	if code := run([]string{"-out", out, "-benchtime", "1ms", "-sizes", "50,100"}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// Two solvers × two sizes + the sim steady-state loop.
	if len(rep.Results) != 5 {
		t.Fatalf("got %d results, want 5: %+v", len(rep.Results), rep.Results)
	}
	byName := map[string]Measurement{}
	for _, m := range rep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		byName[m.Name] = m
	}
	if _, ok := byName["chain_dp_kernel/n=100"]; !ok {
		t.Error("missing chain_dp_kernel/n=100")
	}
	if m, ok := byName["sim_run_steady_state"]; !ok {
		t.Error("missing sim_run_steady_state")
	} else if m.AllocsPerOp != 0 {
		t.Errorf("sim steady state allocates %d/op, want 0", m.AllocsPerOp)
	}
}

func TestBenchtrajBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-sizes", "0"}, &stderr); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
	if code := run([]string{"-sizes", "abc"}, &stderr); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
}
