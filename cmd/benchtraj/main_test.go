package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBenchtrajWritesReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	simOut := filepath.Join(dir, "bench_sim.json")
	dagOut := filepath.Join(dir, "bench_dag.json")
	execOut := filepath.Join(dir, "bench_exec.json")
	var stderr bytes.Buffer
	if code := run([]string{"-out", out, "-simout", simOut, "-dagout", dagOut, "-execout", execOut, "-benchtime", "1ms", "-frontier=false",
		"-sizes", "50,100", "-simprocs", "1,64", "-dagsizes", "7,10"}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	// Three solver arms × two sizes + the sim steady-state loop.
	if len(rep.Results) != 7 {
		t.Fatalf("got %d results, want 7: %+v", len(rep.Results), rep.Results)
	}
	byName := map[string]Measurement{}
	for _, m := range rep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		byName[m.Name] = m
	}
	for _, name := range []string{"chain_dp_monotone/n=100", "chain_dp_kernel/n=100", "chain_dp_dense/n=100"} {
		if _, ok := byName[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
	if m, ok := byName["sim_run_steady_state"]; !ok {
		t.Error("missing sim_run_steady_state")
	} else if m.AllocsPerOp != 0 {
		t.Errorf("sim steady state allocates %d/op, want 0", m.AllocsPerOp)
	}

	simData, err := os.ReadFile(simOut)
	if err != nil {
		t.Fatal(err)
	}
	var simRep Report
	if err := json.Unmarshal(simData, &simRep); err != nil {
		t.Fatalf("sim output is not valid JSON: %v", err)
	}
	// Scan+heap × two platform sizes + CRN/independent + three sharded
	// splits + adaptive on/off + sort/P².
	if len(simRep.Results) != 13 {
		t.Fatalf("got %d sim results, want 13: %+v", len(simRep.Results), simRep.Results)
	}
	simByName := map[string]Measurement{}
	for _, m := range simRep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		simByName[m.Name] = m
	}
	for _, name := range []string{
		"superposed_campaign_scan/p=64", "superposed_campaign_heap/p=64",
		"campaign_crn/s=2", "campaign_independent/s=2",
		"campaign_sharded/shards=1", "campaign_sharded/shards=4", "campaign_sharded/shards=16",
		"campaign_adaptive/mode=off", "campaign_adaptive/mode=on",
		"quantiles_sort/n=1000000", "quantiles_p2/n=1000000",
	} {
		if _, ok := simByName[name]; !ok {
			t.Errorf("missing %s", name)
		}
	}
	// The superposed campaign loops reuse one process: 0 allocs/op, like
	// the steady-state loop.
	for _, name := range []string{"superposed_campaign_scan/p=64", "superposed_campaign_heap/p=64"} {
		if m := simByName[name]; m.AllocsPerOp != 0 {
			t.Errorf("%s allocates %d/op, want 0", name, m.AllocsPerOp)
		}
	}

	dagData, err := os.ReadFile(dagOut)
	if err != nil {
		t.Fatal(err)
	}
	var dagRep Report
	if err := json.Unmarshal(dagData, &dagRep); err != nil {
		t.Fatalf("dag output is not valid JSON: %v", err)
	}
	dagByName := map[string]Measurement{}
	for _, m := range dagRep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		dagByName[m.Name] = m
	}
	// -dagsizes 7,10 → in-trees of 7 and 10 tasks: lattice + factorial
	// for both (small order counts), plus the two portfolio arms.
	for _, name := range []string{
		"dag_lattice/n=7", "dag_factorial/n=7",
		"dag_lattice/n=10", "dag_factorial/n=10",
		"dag_portfolio/workers=1", "dag_portfolio/workers=4",
	} {
		if _, ok := dagByName[name]; !ok {
			t.Errorf("missing %s (have %v)", name, dagRep.Results)
		}
	}
	for _, name := range []string{"dag_lattice/n=7", "dag_lattice/n=10"} {
		if m := dagByName[name]; m.States <= 0 {
			t.Errorf("%s records no peak state count", name)
		}
	}

	execData, err := os.ReadFile(execOut)
	if err != nil {
		t.Fatal(err)
	}
	var execRep Report
	if err := json.Unmarshal(execData, &execRep); err != nil {
		t.Fatalf("exec output is not valid JSON: %v", err)
	}
	execByName := map[string]Measurement{}
	for _, m := range execRep.Results {
		if m.NsPerOp <= 0 || m.Iterations <= 0 {
			t.Errorf("%s: empty measurement %+v", m.Name, m)
		}
		execByName[m.Name] = m
	}
	// Three executor rows (bare + two stores), six raw Save rows (the
	// networked remote/quorum stacks and the lease guard included),
	// three degraded-store resilience rows, two partition-tolerance
	// rows, and the anti-entropy row.
	for _, name := range []string{
		"exec_run/store=none", "exec_run/store=mem", "exec_run/store=file",
		"store_save/kind=mem", "store_save/kind=file", "store_save/kind=quota",
		"store_save/kind=remote", "store_save/kind=quorum", "store_save/kind=lease",
		"exec_adaptive/replan", "exec_adaptive/run mode=static", "exec_adaptive/run mode=adaptive",
		"exec_partition/store=remote", "exec_partition/store=quorum",
		"exec_sync/store=quorum sync-every=3",
	} {
		if _, ok := execByName[name]; !ok {
			t.Errorf("missing %s (have %v)", name, execRep.Results)
		}
	}
	if len(execRep.Results) != 15 {
		t.Errorf("got %d exec results, want 15", len(execRep.Results))
	}
}

func TestBenchtrajSkipsSimReport(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "bench.json")
	var stderr bytes.Buffer
	if code := run([]string{"-out", out, "-simout", "", "-dagout", "", "-execout", "", "-benchtime", "1ms", "-frontier=false", "-sizes", "50"}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("empty -simout/-dagout must skip those trajectories; dir has %d files", len(entries))
	}
}

// TestBenchtrajDirOutputs drives the "-out ./"-style mode: directory
// paths keep the default filenames inside them.
func TestBenchtrajDirOutputs(t *testing.T) {
	dir := t.TempDir()
	var stderr bytes.Buffer
	if code := run([]string{"-out", dir + string(os.PathSeparator), "-simout", "", "-dagout", "", "-execout", "", "-benchtime", "1ms", "-frontier=false", "-sizes", "50"}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	if _, err := os.Stat(filepath.Join(dir, "BENCH_chain_dp.json")); err != nil {
		t.Errorf("default filename not created inside directory: %v", err)
	}
}

// TestBenchtrajProfiles checks -cpuprofile/-memprofile produce files.
func TestBenchtrajProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	var stderr bytes.Buffer
	if code := run([]string{"-out", filepath.Join(dir, "b.json"), "-simout", "", "-dagout", "", "-execout", "",
		"-benchtime", "1ms", "-frontier=false", "-sizes", "50", "-cpuprofile", cpu, "-memprofile", mem}, &stderr); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, stderr.String())
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Errorf("profile not written: %v", err)
			continue
		}
		if info.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

// TestBenchtrajDiff pins the snapshot comparator: regressions beyond
// 25% and missing benchmarks warn, improvements and small movements
// pass, and the exit code stays 0 (the trajectory warns, it does not
// gate).
func TestBenchtrajDiff(t *testing.T) {
	dir := t.TempDir()
	write := func(name string, rep Report) string {
		path := filepath.Join(dir, name)
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	old := write("old.json", Report{Results: []Measurement{
		{Name: "a", NsPerOp: 100},
		{Name: "b", NsPerOp: 100},
		{Name: "gone", NsPerOp: 100},
	}})
	fresh := write("new.json", Report{Results: []Measurement{
		{Name: "a", NsPerOp: 110},  // +10%: fine
		{Name: "b", NsPerOp: 200},  // 2x: regression
		{Name: "new", NsPerOp: 50}, // no snapshot: informational
	}})
	var stderr bytes.Buffer
	if code := run([]string{"-diff", old, fresh}, &stderr); code != 0 {
		t.Fatalf("diff exit %d, stderr:\n%s", code, stderr.String())
	}
	out := stderr.String()
	for _, want := range []string{
		"::warning title=benchtraj regression::b regressed 2.00x",
		"::warning title=benchtraj regression::gone present in snapshot",
		"2 warning(s)",
		"(no snapshot)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("diff output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "::warning title=benchtraj regression::a ") {
		t.Errorf("diff flagged a 10%% movement as a regression:\n%s", out)
	}
	// Unreadable inputs are a hard error.
	if code := run([]string{"-diff", filepath.Join(dir, "missing.json"), fresh}, &stderr); code != 2 {
		t.Errorf("missing old file: exit %d, want 2", code)
	}
	if code := run([]string{"-diff", old}, &stderr); code != 2 {
		t.Errorf("one operand: exit %d, want 2", code)
	}
}

func TestBenchtrajBadFlags(t *testing.T) {
	var stderr bytes.Buffer
	if code := run([]string{"-sizes", "0"}, &stderr); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
	if code := run([]string{"-sizes", "abc"}, &stderr); code != 2 {
		t.Errorf("bad size: exit %d, want 2", code)
	}
	if code := run([]string{"-simprocs", "-3"}, &stderr); code != 2 {
		t.Errorf("bad simprocs: exit %d, want 2", code)
	}
}
