// Command benchtraj bootstraps the benchmark trajectory: it runs the
// chain-DP benchmarks programmatically (monotone-matrix arm vs kernel
// fast path vs the dense Algorithm 1 scan, n ∈ {100, 1000, 5000} by
// default) plus the steady-state simulation loop, and writes the
// measurements as JSON. Snapshots of the four trajectories are checked
// in at the repository root (BENCH_chain_dp.json, BENCH_sim.json,
// BENCH_dag.json, BENCH_exec.json), so the repo carries its own perf
// history; the CI bench job regenerates them and diffs fresh results
// against the snapshots, warning on >25% ns/op regressions (see -diff).
//
// It also emits a second trajectory, BENCH_sim.json, for the Monte-Carlo
// backbone: scan-vs-heap superposed-platform campaigns at
// p ∈ {1, 1000, 65536}, common-random-number vs independent comparator
// campaigns, and streaming (P²) vs sort-based quantile estimation.
//
// Usage:
//
//	benchtraj                       # write all four BENCH_*.json trajectories
//	benchtraj -out ./               # output paths may be directories (default filenames inside)
//	benchtraj -out results.json     # choose the chain-DP output path
//	benchtraj -simout sim.json      # choose the sim output path ("" skips it)
//	benchtraj -benchtime 0.2s       # shorter measurement per benchmark
//	benchtraj -sizes 100,1000       # choose chain lengths
//	benchtraj -simprocs 1,1000      # choose platform sizes for scan-vs-heap
//	benchtraj -frontier=false       # skip the large-chain frontier points (n=200k/1M, several seconds)
//	benchtraj -cpuprofile cpu.pprof # capture a CPU profile of the measured code
//	benchtraj -memprofile mem.pprof # write an allocation profile on exit
//	benchtraj -diff old.json new.json  # compare two trajectories, warn on >25% ns/op regressions
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/expt"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/store"
)

// Measurement is one benchmark's recorded trajectory point.
type Measurement struct {
	Name        string  `json:"name"`
	N           int     `json:"n,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// States records the lattice solver's peak stored DP states for the
	// BENCH_dag points (0 elsewhere).
	States int64 `json:"states,omitempty"`
}

// Report is the JSON document benchtraj emits.
type Report struct {
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Unix      int64         `json:"unix_time"`
	Results   []Measurement `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtraj", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out        = fs.String("out", "BENCH_chain_dp.json", "output JSON path (a directory keeps the default filename inside it)")
		simOut     = fs.String("simout", "BENCH_sim.json", "Monte-Carlo backbone output JSON path (empty to skip; directories as for -out)")
		dagOut     = fs.String("dagout", "BENCH_dag.json", "DAG lattice-vs-factorial output JSON path (empty to skip; directories as for -out)")
		execOut    = fs.String("execout", "BENCH_exec.json", "crash-safe executor output JSON path (empty to skip; directories as for -out)")
		benchtime  = fs.Duration("benchtime", 500*time.Millisecond, "target measurement time per benchmark")
		sizesFlag  = fs.String("sizes", "100,1000,5000", "comma-separated chain lengths")
		procsFlag  = fs.String("simprocs", "1,1000,65536", "comma-separated platform sizes for scan-vs-heap campaigns")
		dagFlag    = fs.String("dagsizes", "8,12,16,20", "comma-separated in-tree sizes for the lattice trajectory")
		cpuProfile = fs.String("cpuprofile", "", "write a CPU profile of the measured benchmarks to this file")
		memProfile = fs.String("memprofile", "", "write an allocation profile to this file on exit")
		diffMode   = fs.Bool("diff", false, "compare two trajectory files (old new) instead of benchmarking; warns on >25% ns/op regressions")
		frontier   = fs.Bool("frontier", true, "include the large-chain frontier points (monotone vs kernel at n=200k, monotone at n=1M, MTBF 1000)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *diffMode {
		if fs.NArg() != 2 {
			fmt.Fprintln(stderr, "benchtraj: -diff needs exactly two trajectory files (old new)")
			return 2
		}
		return diffReports(fs.Arg(0), fs.Arg(1), stderr)
	}
	parseInts := func(flagVal, what string) ([]int, bool) {
		var vals []int
		for _, s := range strings.Split(flagVal, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil || n < 1 {
				fmt.Fprintf(stderr, "benchtraj: bad %s %q\n", what, s)
				return nil, false
			}
			vals = append(vals, n)
		}
		return vals, true
	}
	sizes, ok := parseInts(*sizesFlag, "size")
	if !ok {
		return 2
	}
	procs, ok := parseInts(*procsFlag, "platform size")
	if !ok {
		return 2
	}
	dagSizes, ok := parseInts(*dagFlag, "dag size")
	if !ok {
		return 2
	}
	// Output paths may name directories ("-out ./"): keep the default
	// filename inside them, so the checked-in snapshots and CI both use
	// one spelling.
	resolveOut(out, "BENCH_chain_dp.json")
	resolveOut(simOut, "BENCH_sim.json")
	resolveOut(dagOut, "BENCH_dag.json")
	resolveOut(execOut, "BENCH_exec.json")
	// testing.Benchmark sizes its runs from the -test.benchtime flag;
	// register the testing flags and set it to our budget.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(stderr, "benchtraj: %v\n", err)
		return 1
	}
	// The memprofile defer is registered first so it runs last (LIFO):
	// its forced GC and profile serialization must not be captured
	// inside the still-active CPU profile.
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintf(stderr, "benchtraj: %v\n", err)
				return
			}
			runtime.GC()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			}
			f.Close()
			fmt.Fprintf(stderr, "benchtraj: wrote allocation profile to %s\n", *memProfile)
		}()
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
			fmt.Fprintf(stderr, "benchtraj: wrote CPU profile to %s\n", *cpuProfile)
		}()
	}
	report, err := measure(sizes, *frontier)
	if err != nil {
		fmt.Fprintf(stderr, "benchtraj: %v\n", err)
		return 1
	}
	if err := writeReport(*out, report, stderr); err != nil {
		fmt.Fprintf(stderr, "benchtraj: %v\n", err)
		return 1
	}
	if *simOut != "" {
		simReport, err := measureSim(procs)
		if err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
		if err := writeReport(*simOut, simReport, stderr); err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
	}
	if *dagOut != "" {
		dagReport, err := measureDag(dagSizes)
		if err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
		if err := writeReport(*dagOut, dagReport, stderr); err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
	}
	if *execOut != "" {
		execReport, err := measureExec()
		if err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
		if err := writeReport(*execOut, execReport, stderr); err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return 1
		}
	}
	return 0
}

// resolveOut rewrites a path flag that names a directory (or ends in a
// separator) to the default filename inside that directory.
func resolveOut(path *string, defaultName string) {
	p := *path
	if p == "" {
		return
	}
	if strings.HasSuffix(p, "/") || strings.HasSuffix(p, string(os.PathSeparator)) {
		*path = filepath.Join(p, defaultName)
		return
	}
	if info, err := os.Stat(p); err == nil && info.IsDir() {
		*path = filepath.Join(p, defaultName)
	}
}

// regressionThreshold is the ns/op ratio beyond which -diff warns: a
// fresh measurement more than 25% slower than the snapshot.
const regressionThreshold = 1.25

// diffReports compares two trajectory files by benchmark name and
// reports ns/op movements. Regressions beyond regressionThreshold are
// emitted as GitHub-annotation warnings (plain lines elsewhere read the
// same); the exit code stays 0 — the trajectory warns, it does not
// gate — with 2 reserved for unreadable inputs.
func diffReports(oldPath, newPath string, stderr io.Writer) int {
	read := func(path string) (*Report, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchtraj: %v\n", err)
			return nil, false
		}
		var rep Report
		if err := json.Unmarshal(data, &rep); err != nil {
			fmt.Fprintf(stderr, "benchtraj: %s: %v\n", path, err)
			return nil, false
		}
		return &rep, true
	}
	oldRep, ok := read(oldPath)
	if !ok {
		return 2
	}
	newRep, ok := read(newPath)
	if !ok {
		return 2
	}
	oldByName := make(map[string]Measurement, len(oldRep.Results))
	for _, m := range oldRep.Results {
		oldByName[m.Name] = m
	}
	names := make([]string, 0, len(newRep.Results))
	newByName := make(map[string]Measurement, len(newRep.Results))
	for _, m := range newRep.Results {
		names = append(names, m.Name)
		newByName[m.Name] = m
	}
	sort.Strings(names)
	regressions := 0
	for _, name := range names {
		cur := newByName[name]
		prev, ok := oldByName[name]
		if !ok || prev.NsPerOp <= 0 {
			fmt.Fprintf(stderr, "  new    %-36s %12.0f ns/op (no snapshot)\n", name, cur.NsPerOp)
			continue
		}
		ratio := cur.NsPerOp / prev.NsPerOp
		if ratio > regressionThreshold {
			regressions++
			fmt.Fprintf(stderr, "::warning title=benchtraj regression::%s regressed %.2fx (%.0f → %.0f ns/op)\n",
				name, ratio, prev.NsPerOp, cur.NsPerOp)
			continue
		}
		fmt.Fprintf(stderr, "  ok     %-36s %12.0f ns/op (%.2fx vs snapshot)\n", name, cur.NsPerOp, ratio)
	}
	missing := make([]string, 0, len(oldByName))
	for name := range oldByName {
		if _, ok := newByName[name]; !ok {
			missing = append(missing, name)
		}
	}
	sort.Strings(missing)
	for _, name := range missing {
		fmt.Fprintf(stderr, "::warning title=benchtraj regression::%s present in snapshot %s but missing from %s\n", name, oldPath, newPath)
		regressions++
	}
	fmt.Fprintf(stderr, "benchtraj: compared %d benchmarks against %s, %d warning(s)\n", len(names), oldPath, regressions)
	return 0
}

// writeReport writes one trajectory document and echoes its measurements.
func writeReport(path string, report *Report, stderr io.Writer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("write %s: %w", path, err)
	}
	for _, m := range report.Results {
		fmt.Fprintf(stderr, "%-32s %12.0f ns/op %8d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	fmt.Fprintf(stderr, "benchtraj: wrote %d measurements to %s\n", len(report.Results), path)
	return nil
}

func measure(sizes []int, frontier bool) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Unix:      time.Now().Unix(),
	}
	record := func(name string, n int, r testing.BenchmarkResult) {
		report.Results = append(report.Results, Measurement{
			Name:        name,
			N:           n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	for _, n := range sizes {
		g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
		if err != nil {
			return nil, err
		}
		m, err := expectation.NewModel(0.01, 0.5)
		if err != nil {
			return nil, err
		}
		cp, _, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			return nil, err
		}
		// Pre-flight once so a solver error surfaces as an error, not a
		// swallowed benchmark failure. The default-weights chain is
		// quadrangle-certified, so the pinned monotone arm must accept it.
		if _, err := core.SolveChainDPMonotone(cp); err != nil {
			return nil, err
		}
		if _, err := core.SolveChainDPKernel(cp); err != nil {
			return nil, err
		}
		if _, err := core.SolveChainDPDense(cp); err != nil {
			return nil, err
		}
		bench := func(f func() error) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := f(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		record(fmt.Sprintf("chain_dp_monotone/n=%d", n), n, bench(func() error {
			_, err := core.SolveChainDPMonotone(cp)
			return err
		}))
		record(fmt.Sprintf("chain_dp_kernel/n=%d", n), n, bench(func() error {
			_, err := core.SolveChainDPKernel(cp)
			return err
		}))
		record(fmt.Sprintf("chain_dp_dense/n=%d", n), n, bench(func() error {
			_, err := core.SolveChainDPDense(cp)
			return err
		}))
	}

	// Frontier points: the workload class E16 sweeps, at platform MTBF
	// 1000 where the kernel scan's pruned look-ahead is longest. These
	// record the monotone arm's headline wins in the trajectory: the
	// ≥20× speedup over the kernel arm at n = 200,000 and the sub-second
	// exact million-task solve.
	if frontier {
		const frontierLambda = 0.001
		m, err := expectation.NewModel(frontierLambda, 0.5)
		if err != nil {
			return nil, err
		}
		frontierChain := func(n int) (*core.ChainProblem, error) {
			g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
			if err != nil {
				return nil, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return nil, err
			}
			return cp, nil
		}
		cp, err := frontierChain(200000)
		if err != nil {
			return nil, err
		}
		if _, err := core.SolveChainDPMonotone(cp); err != nil {
			return nil, err
		}
		record("chain_dp_monotone_frontier/n=200000", 200000, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveChainDPMonotone(cp); err != nil {
					b.Fatal(err)
				}
			}
		}))
		record("chain_dp_kernel_frontier/n=200000", 200000, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveChainDPKernel(cp); err != nil {
					b.Fatal(err)
				}
			}
		}))
		big, err := frontierChain(1000000)
		if err != nil {
			return nil, err
		}
		record("chain_dp_monotone_frontier/n=1000000", 1000000, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.SolveChainDPMonotone(big); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Steady-state simulation loop: the allocs_per_op trajectory pins the
	// allocation-free Monte-Carlo contract (0 expected).
	simRes, err := simSteadyState()
	if err != nil {
		return nil, err
	}
	record("sim_run_steady_state", 0, simRes)
	return report, nil
}

func simSteadyState() (testing.BenchmarkResult, error) {
	g, err := dag.Chain(64, dag.DefaultWeights(), rng.New(5))
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	m, err := expectation.NewModel(0.05, 0.5)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	res, err := core.SolveChainDP(cp)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	segs, err := cp.Segments(res.CheckpointAfter)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	proc := failure.NewExponentialProcess(0.05, rng.New(6))
	opts := sim.Options{Downtime: 0.5}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			proc.Reset()
			if _, err := sim.Run(segs, proc, opts); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}

// measureSim builds the Monte-Carlo backbone trajectory (BENCH_sim.json):
// scan-vs-heap superposed-platform campaign runs, CRN-vs-independent
// comparator campaigns, and streaming-vs-sort quantile estimation.
func measureSim(procSizes []int) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Unix:      time.Now().Unix(),
	}
	record := func(name string, n int, r testing.BenchmarkResult) {
		report.Results = append(report.Results, Measurement{
			Name:        name,
			N:           n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}

	// Scan vs heap: one op = one campaign run (reset + full simulation of
	// a 512-segment plan) on a platform of p processors with constant
	// platform-level MTBF — the E14 configuration, shared via the expt
	// helpers so the trajectory always measures the workload the
	// experiment reports on. The scan pays two O(p) passes per segment;
	// the heap leaves the O(p) reset as the only platform-size term.
	const platformMTBF = expt.E14PlatformMTBF
	segs := expt.E14Segments()
	opts := sim.Options{Downtime: 0.5}
	benchProcess := func(proc interface {
		failure.Process
		failure.Resettable
	}) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				proc.Reset()
				if _, err := sim.Run(segs, proc, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, p := range procSizes {
		e, err := failure.NewExponential(1 / (platformMTBF * float64(p)))
		if err != nil {
			return nil, err
		}
		scan, err := failure.NewScanProcess(e, p, failure.RejuvenateFailedOnly, rng.New(7))
		if err != nil {
			return nil, err
		}
		record(fmt.Sprintf("superposed_campaign_scan/p=%d", p), p, benchProcess(scan))
		heap, err := failure.NewSuperposedProcess(e, p, failure.RejuvenateFailedOnly, rng.New(7))
		if err != nil {
			return nil, err
		}
		record(fmt.Sprintf("superposed_campaign_heap/p=%d", p), p, benchProcess(heap))
	}

	// CRN vs independent comparator campaigns: one op = comparing two
	// placements over 200 replications on a 1000-processor Weibull
	// platform — once replaying a shared recorded trace per replication,
	// once resampling per candidate.
	const (
		crnProcs = 1000
		crnRuns  = 200
	)
	weib, err := expt.E14WeibullLaw(platformMTBF / 20 * crnProcs)
	if err != nil {
		return nil, err
	}
	factory := sim.SuperposedFactory(weib, crnProcs, failure.RejuvenateFailedOnly)
	plans := expt.E14ComparatorPlans()
	copts := sim.Options{Downtime: 0.5, Workers: 1}
	record(fmt.Sprintf("campaign_crn/s=%d", len(plans)), crnProcs, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.CampaignPlans(plans, factory, copts, crnRuns, rng.New(9)); err != nil {
				b.Fatal(err)
			}
		}
	}))
	record(fmt.Sprintf("campaign_independent/s=%d", len(plans)), crnProcs, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for _, plan := range plans {
				if _, err := sim.MonteCarlo(plan, factory, copts, crnRuns, rng.New(9)); err != nil {
					b.Fatal(err)
				}
			}
		}
	}))

	// Sharded campaigns: one op = the same CRN comparison run through the
	// block-deterministic sharded pipeline and merged. Results are
	// bit-identical across the shard counts, so these rows measure what
	// sharding *costs*: the per-block setup and the per-block partial
	// aggregates the deterministic merge keeps. Workers is pinned to 1 —
	// on a multi-core host wall-clock scales with min(Workers, shards·…)
	// but ns/op here tracks the single-threaded overhead trajectory.
	for _, shards := range []int{1, 4, 16} {
		so := sim.ShardOptions{
			Options:   sim.Options{Downtime: 0.5, Workers: 1},
			Seed:      9,
			Runs:      crnRuns,
			Shards:    shards,
			BlockSize: 8, // 25 blocks, so the 16-shard split stays valid
		}
		record(fmt.Sprintf("campaign_sharded/shards=%d", shards), crnProcs, testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := sim.CampaignPlansSharded(plans, factory, so); err != nil {
					b.Fatal(err)
				}
			}
		}))
	}

	// Adaptive stopping vs fixed budget on the same comparator pair: the
	// off arm spends the full per-candidate budget through the sharded
	// pipeline; the on arm starts at a quarter of it and stops the pair
	// as soon as its paired-delta CI excludes zero, so its ns/op records
	// the realized saving on a pair that separates early.
	fixedSo := sim.ShardOptions{Options: sim.Options{Downtime: 0.5, Workers: 1}, Seed: 9, Runs: crnRuns, Shards: 1}
	record("campaign_adaptive/mode=off", crnProcs, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.CampaignPlansSharded(plans, factory, fixedSo); err != nil {
				b.Fatal(err)
			}
		}
	}))
	adaptSo := sim.ShardOptions{Options: sim.Options{Downtime: 0.5, Workers: 1}, Seed: 9, Shards: 1}
	record("campaign_adaptive/mode=on", crnProcs, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sim.CampaignPlansAdaptive(plans, factory, adaptSo, sim.AdaptiveOptions{
				TargetWidth: 1e-9,
				InitialRuns: crnRuns / 4,
				MaxRuns:     crnRuns,
			}); err != nil {
				b.Fatal(err)
			}
		}
	}))

	// Streaming vs sort quantiles: one op = four quantiles over a million
	// samples. The P² path's story is the allocs/op column (O(1) memory
	// vs an 8 MB copy per estimate).
	const qn = 1_000_000
	xs := make([]float64, qn)
	r := rng.New(11)
	for i := range xs {
		xs[i] = r.ExpFloat64()
	}
	record(fmt.Sprintf("quantiles_sort/n=%d", qn), qn, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			qs := stats.Quantiles(xs, 0.5, 0.9, 0.99, 0.999)
			if qs[0] <= 0 {
				b.Fatal("degenerate quantile")
			}
		}
	}))
	record(fmt.Sprintf("quantiles_p2/n=%d", qn), qn, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			p50, p90 := stats.NewP2Quantile(0.5), stats.NewP2Quantile(0.9)
			p99, p999 := stats.NewP2Quantile(0.99), stats.NewP2Quantile(0.999)
			for _, x := range xs {
				p50.Add(x)
				p90.Add(x)
				p99.Add(x)
				p999.Add(x)
			}
			if p50.Value() <= 0 {
				b.Fatal("degenerate quantile")
			}
		}
	}))
	return report, nil
}

// measureExec builds the crash-safe runtime trajectory
// (BENCH_exec.json): one full plan execution on the sim steady-state
// workload (64-task chain, λ = 0.05, DP placement) bare and through
// each checkpoint store, so the store columns read directly as the
// runtime's persistence overhead; plus raw store Save throughput on a
// state-sized payload, where the file row's extra ns/op is the fsync'd
// atomic rename the crash-durability contract pays for.
func measureExec() (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Unix:      time.Now().Unix(),
	}
	record := func(name string, n int, r testing.BenchmarkResult) {
		report.Results = append(report.Results, Measurement{
			Name:        name,
			N:           n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	g, err := dag.Chain(64, dag.DefaultWeights(), rng.New(5))
	if err != nil {
		return nil, err
	}
	m, err := expectation.NewModel(0.05, 0.5)
	if err != nil {
		return nil, err
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return nil, err
	}
	dp, err := core.SolveChainDP(cp)
	if err != nil {
		return nil, err
	}
	w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
	if err != nil {
		return nil, err
	}
	dir, err := os.MkdirTemp("", "benchtraj-exec-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	fileStore, err := store.NewFileStore(dir)
	if err != nil {
		return nil, err
	}
	src := exec.NewKeyedSource(failure.Exponential{Lambda: 0.05}, 6, 1)
	// One op = one complete execution (plus, for the stored variants,
	// purging the run so the next op starts cold rather than resuming).
	benchExec := func(st store.Store) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src.Reset()
				opts := exec.Options{Downtime: 0.5}
				if st != nil {
					opts.RunID, opts.Store = "bench", st
				}
				if _, err := exec.Execute(w, src, opts); err != nil {
					b.Fatal(err)
				}
				if st != nil {
					seqs, err := st.List("bench")
					if err != nil {
						b.Fatal(err)
					}
					for _, seq := range seqs {
						if err := st.Delete("bench", seq); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
		})
	}
	record("exec_run/store=none", 64, benchExec(nil))
	record("exec_run/store=mem", 64, benchExec(store.Checked(store.NewMemStore())))
	record("exec_run/store=file", 64, benchExec(store.Checked(fileStore)))

	// Raw store Save on a checkpoint-state-sized payload (4 KiB): the
	// codec seal plus the store's write path; the file store's cost is
	// dominated by the fsync + atomic-rename durability contract.
	payload := make([]byte, 4096)
	r := rng.New(17)
	for i := range payload {
		payload[i] = byte(r.Uint64())
	}
	benchSave := func(st store.Store) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if err := st.Save("save", uint64(i%8)+1, payload); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	record("store_save/kind=mem", 4096, benchSave(store.Checked(store.NewMemStore())))
	record("store_save/kind=file", 4096, benchSave(store.Checked(fileStore)))
	// Quota layer on top of the mem row: the delta is the ledger's
	// admit/commit accounting per save.
	record("store_save/kind=quota", 4096, benchSave(store.NewQuotaStore(
		store.NewQuotaLedger(store.Quota{}, nil), store.Checked(store.NewMemStore()))))
	// Networked rows on top of the mem row: one simulated remote
	// endpoint, then a 3-replica write-quorum (W=2). Latency is virtual
	// and loss is zero — a dropped save would abort the benchmark — so
	// the deltas read as the pure bookkeeping cost of the network layer:
	// keyed jitter/loss draws and attempt accounting per message, plus
	// (for the quorum) the replica fan-out and deterministic response
	// merge.
	netCfg := netsim.Config{Seed: 29, Latency: 0.01, Jitter: 0.005}
	record("store_save/kind=remote", 4096, benchSave(store.Checked(store.NewRemoteStore(
		store.NewMemStore(), netsim.New(netCfg), netCfg, store.RemoteConfig{Remote: "s0"}))))
	qnet := netsim.New(netCfg)
	reps := make([]store.Store, 3)
	for i := range reps {
		reps[i] = store.Checked(store.NewRemoteStore(store.NewMemStore(), qnet, netCfg,
			store.RemoteConfig{Remote: fmt.Sprintf("s%d", i)}))
	}
	quorum, err := store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
	if err != nil {
		return nil, err
	}
	record("store_save/kind=quorum", 4096, benchSave(quorum))
	// Lease layer on top of the mem row: the delta is the per-save fence
	// check — one lease-record read, epoch comparison, and (amortized)
	// renewal write through the same codec as the data it guards.
	leaseStore := store.NewLeaseStore(store.Checked(store.NewMemStore()),
		store.LeaseConfig{Holder: "bench", TTL: 1e12})
	if _, err := leaseStore.Acquire("save"); err != nil {
		return nil, err
	}
	record("store_save/kind=lease", 4096, benchSave(leaseStore))

	// Degraded-store resilience rows. exec_adaptive/replan is one
	// suffix re-solve of the chain DP from the mid-plan frontier — the
	// cost the adaptive executor pays each time drift crosses the
	// hysteresis band. The run rows execute the full plan through a
	// lossy, slow store (logically-keyed injector) with exponential
	// backoff, static (no replanner) vs adaptive, so the delta reads as
	// the end-to-end cost/benefit of online replanning at equal fault
	// exposure.
	replanner := exec.ChainReplanner{CP: cp}
	record("exec_adaptive/replan", 64, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := replanner.Replan(32, 1.5); err != nil {
				b.Fatal(err)
			}
		}
	}))
	benchAdaptive := func(rp exec.Replanner) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src.Reset()
				st := store.Checked(store.NewFaultStore(store.NewMemStore(), store.FaultPlan{
					Seed: 23, WriteFail: 0.1, ReadFail: 0.05, MeanLatency: 0.5, LogicalKeys: true,
				}))
				_, err := exec.Execute(w, src, exec.Options{
					RunID: "bench", Store: st, Downtime: 0.5,
					Adaptive: &exec.AdaptiveOptions{
						Retry:       exec.ExpBackoff{Base: 0.25, Cap: 1, MaxAttempts: 4},
						Replanner:   rp,
						ReplanRatio: 1.3,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	record("exec_adaptive/run mode=static", 64, benchAdaptive(nil))
	record("exec_adaptive/run mode=adaptive", 64, benchAdaptive(replanner))

	// Partition-tolerance rows: one full adaptive execution through a
	// networked store whose endpoint s0 is cut off for the middle of the
	// run. The single-remote arm pays the ride-out (timeouts, backoff,
	// ladder moves, probe re-admission); the quorum arm keeps committing
	// on the two-replica majority — both at equal workload and failure
	// exposure, so the rows price partition tolerance end to end.
	src.Reset()
	bare, err := exec.Execute(w, src, exec.Options{Downtime: 0.5})
	if err != nil {
		return nil, err
	}
	partCfg := netsim.Config{Seed: 31, Latency: 0.01, Partitions: []netsim.Window{
		{Start: 0.3 * bare.Makespan, End: 0.7 * bare.Makespan, Isolated: []string{"s0"}},
	}}
	benchPartition := func(quorumArm bool) testing.BenchmarkResult {
		return testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				src.Reset()
				net := netsim.New(partCfg)
				var st store.Store
				if quorumArm {
					reps := make([]store.Store, 3)
					for k := range reps {
						reps[k] = store.Checked(store.NewRemoteStore(store.NewMemStore(), net, partCfg,
							store.RemoteConfig{Remote: fmt.Sprintf("s%d", k), Timeout: 0.25}))
					}
					q, err := store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
					if err != nil {
						b.Fatal(err)
					}
					st = q
				} else {
					st = store.Checked(store.NewRemoteStore(store.NewMemStore(), net, partCfg,
						store.RemoteConfig{Remote: "s0", Timeout: 0.25}))
				}
				_, err := exec.Execute(w, src, exec.Options{
					RunID: "bench", Store: st, Downtime: 0.5,
					Adaptive: &exec.AdaptiveOptions{
						Retry:      exec.ExpBackoff{Base: 0.1, Cap: 0.5, MaxAttempts: 3},
						DownAfter:  2,
						ProbeEvery: 2,
					},
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	record("exec_partition/store=remote", 64, benchPartition(false))
	record("exec_partition/store=quorum", 64, benchPartition(true))

	// Anti-entropy row: the quorum partition arm again, now with an
	// executor-driven sync pass every 3rd commit plus the final one. The
	// delta against exec_partition/store=quorum prices converging the
	// partitioned replica during the run instead of leaving it behind.
	record("exec_sync/store=quorum sync-every=3", 64, testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			src.Reset()
			net := netsim.New(partCfg)
			reps := make([]store.Store, 3)
			for k := range reps {
				reps[k] = store.Checked(store.NewRemoteStore(store.NewMemStore(), net, partCfg,
					store.RemoteConfig{Remote: fmt.Sprintf("s%d", k), Timeout: 0.25}))
			}
			q, err := store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
			if err != nil {
				b.Fatal(err)
			}
			_, err = exec.Execute(w, src, exec.Options{
				RunID: "bench", Store: q, Downtime: 0.5,
				Adaptive: &exec.AdaptiveOptions{
					Retry:      exec.ExpBackoff{Base: 0.1, Cap: 0.5, MaxAttempts: 3},
					DownAfter:  2,
					ProbeEvery: 2,
					SyncEvery:  3,
				},
			})
			if err != nil {
				b.Fatal(err)
			}
		}
	}))
	return report, nil
}

// measureDag builds the exact-DAG-solver trajectory (BENCH_dag.json):
// downset-lattice solves vs factorial order enumeration on the E15
// in-tree workloads (shared via expt.E15Graph, so the trajectory
// measures the experiment's graphs), plus the linearization portfolio
// serial vs parallel. The factorial arm only runs where the
// linear-extension count stays benchmarkable; its absence at larger n
// *is* the trajectory's story, next to the lattice points that remain
// a few ms with their peak state counts recorded.
func measureDag(dagSizes []int) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Unix:      time.Now().Unix(),
	}
	record := func(name string, n int, states int64, r testing.BenchmarkResult) {
		report.Results = append(report.Results, Measurement{
			Name:        name,
			N:           n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
			States:      states,
		})
	}
	m, err := expt.E15Model()
	if err != nil {
		return nil, err
	}
	const factorialBudget = 1e5 // orders beyond this are not benchmarkable
	for _, n := range dagSizes {
		g, err := expt.E15Graph("in-tree", n, rng.New(13))
		if err != nil {
			return nil, err
		}
		lat, err := g.Lattice()
		if err != nil {
			return nil, err
		}
		orders := lat.CountLinearExtensions()
		opts := core.Options{Workers: 1}
		latRes, latStats, err := core.SolveDAGLatticeStats(g, m, core.LastTaskCosts{}, opts)
		if err != nil {
			return nil, err
		}
		record(fmt.Sprintf("dag_lattice/n=%d", g.Len()), g.Len(), latStats.States,
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.SolveDAGLattice(g, m, core.LastTaskCosts{}, opts); err != nil {
						b.Fatal(err)
					}
				}
			}))
		if orders <= factorialBudget {
			record(fmt.Sprintf("dag_factorial/n=%d", g.Len()), g.Len(), 0,
				testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						ex, err := core.SolveDAGExhaustive(g, m, core.LastTaskCosts{}, 0)
						if err != nil {
							b.Fatal(err)
						}
						if ex.Expected != latRes.Expected {
							b.Fatalf("factorial %v ≠ lattice %v", ex.Expected, latRes.Expected)
						}
					}
				}))
		}
	}

	// Portfolio serial vs parallel on a wide layered workflow: same
	// result bit-for-bit, the parallel arm bounded by Options.Workers.
	pg, err := dag.Layered(10, 20, 0.3, dag.DefaultWeights(), rng.New(14))
	if err != nil {
		return nil, err
	}
	for _, workers := range []int{1, 4} {
		opts := core.Options{Workers: workers}
		record(fmt.Sprintf("dag_portfolio/workers=%d", workers), pg.Len(), 0,
			testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.SolveDAGWith(pg, m, core.LiveSetCosts{}, opts); err != nil {
						b.Fatal(err)
					}
				}
			}))
	}
	return report, nil
}
