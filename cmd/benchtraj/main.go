// Command benchtraj bootstraps the benchmark trajectory: it runs the
// chain-DP benchmarks programmatically (kernel fast path vs the dense
// Algorithm 1 scan, n ∈ {100, 1000, 5000} by default) plus the
// steady-state simulation loop, and writes the measurements as JSON —
// the artifact the CI bench job uploads, so successive commits leave a
// comparable ns/op and allocs/op trail.
//
// Usage:
//
//	benchtraj                       # write BENCH_chain_dp.json
//	benchtraj -out results.json     # choose the output path
//	benchtraj -benchtime 0.2s       # shorter measurement per benchmark
//	benchtraj -sizes 100,1000       # choose chain lengths
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

// Measurement is one benchmark's recorded trajectory point.
type Measurement struct {
	Name        string  `json:"name"`
	N           int     `json:"n,omitempty"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
}

// Report is the JSON document benchtraj emits.
type Report struct {
	GoVersion string        `json:"go_version"`
	GOARCH    string        `json:"goarch"`
	Unix      int64         `json:"unix_time"`
	Results   []Measurement `json:"results"`
}

func main() {
	os.Exit(run(os.Args[1:], os.Stderr))
}

func run(args []string, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchtraj", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		out       = fs.String("out", "BENCH_chain_dp.json", "output JSON path")
		benchtime = fs.Duration("benchtime", 500*time.Millisecond, "target measurement time per benchmark")
		sizesFlag = fs.String("sizes", "100,1000,5000", "comma-separated chain lengths")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	var sizes []int
	for _, s := range strings.Split(*sizesFlag, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n < 1 {
			fmt.Fprintf(stderr, "benchtraj: bad size %q\n", s)
			return 2
		}
		sizes = append(sizes, n)
	}
	// testing.Benchmark sizes its runs from the -test.benchtime flag;
	// register the testing flags and set it to our budget.
	testing.Init()
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(stderr, "benchtraj: %v\n", err)
		return 1
	}
	report, err := measure(sizes)
	if err != nil {
		fmt.Fprintf(stderr, "benchtraj: %v\n", err)
		return 1
	}
	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(stderr, "benchtraj: %v\n", err)
		return 1
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	err = enc.Encode(report)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		fmt.Fprintf(stderr, "benchtraj: write %s: %v\n", *out, err)
		return 1
	}
	for _, m := range report.Results {
		fmt.Fprintf(stderr, "%-28s %12.0f ns/op %8d allocs/op\n", m.Name, m.NsPerOp, m.AllocsPerOp)
	}
	fmt.Fprintf(stderr, "benchtraj: wrote %d measurements to %s\n", len(report.Results), *out)
	return 0
}

func measure(sizes []int) (*Report, error) {
	report := &Report{
		GoVersion: runtime.Version(),
		GOARCH:    runtime.GOARCH,
		Unix:      time.Now().Unix(),
	}
	record := func(name string, n int, r testing.BenchmarkResult) {
		report.Results = append(report.Results, Measurement{
			Name:        name,
			N:           n,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		})
	}
	for _, n := range sizes {
		g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
		if err != nil {
			return nil, err
		}
		m, err := expectation.NewModel(0.01, 0.5)
		if err != nil {
			return nil, err
		}
		cp, _, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			return nil, err
		}
		// Pre-flight once so a solver error surfaces as an error, not a
		// swallowed benchmark failure.
		if _, err := core.SolveChainDP(cp); err != nil {
			return nil, err
		}
		if _, err := core.SolveChainDPDense(cp); err != nil {
			return nil, err
		}
		bench := func(f func() error) testing.BenchmarkResult {
			return testing.Benchmark(func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if err := f(); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
		record(fmt.Sprintf("chain_dp_kernel/n=%d", n), n, bench(func() error {
			_, err := core.SolveChainDP(cp)
			return err
		}))
		record(fmt.Sprintf("chain_dp_dense/n=%d", n), n, bench(func() error {
			_, err := core.SolveChainDPDense(cp)
			return err
		}))
	}

	// Steady-state simulation loop: the allocs_per_op trajectory pins the
	// allocation-free Monte-Carlo contract (0 expected).
	simRes, err := simSteadyState()
	if err != nil {
		return nil, err
	}
	record("sim_run_steady_state", 0, simRes)
	return report, nil
}

func simSteadyState() (testing.BenchmarkResult, error) {
	g, err := dag.Chain(64, dag.DefaultWeights(), rng.New(5))
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	m, err := expectation.NewModel(0.05, 0.5)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	res, err := core.SolveChainDP(cp)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	segs, err := cp.Segments(res.CheckpointAfter)
	if err != nil {
		return testing.BenchmarkResult{}, err
	}
	proc := failure.NewExponentialProcess(0.05, rng.New(6))
	opts := sim.Options{Downtime: 0.5}
	return testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			proc.Reset()
			if _, err := sim.Run(segs, proc, opts); err != nil {
				b.Fatal(err)
			}
		}
	}), nil
}
