package main

import (
	"os"
	"path/filepath"
	"testing"

	"repro/internal/trace"
)

func TestGenerateAllLaws(t *testing.T) {
	// run() writes to stdout; redirect to a pipe-backed file.
	for _, law := range []string{"exponential", "weibull", "lognormal"} {
		law := law
		t.Run(law, func(t *testing.T) {
			old := os.Stdout
			tmp, err := os.CreateTemp(t.TempDir(), "trace")
			if err != nil {
				t.Fatal(err)
			}
			os.Stdout = tmp
			err = run(law, 50, 0.7, 4, 5000, 1, "", "")
			os.Stdout = old
			if err != nil {
				t.Fatalf("generate %s: %v", law, err)
			}
			info, err := tmp.Stat()
			if err != nil {
				t.Fatal(err)
			}
			if info.Size() == 0 {
				t.Error("no trace written")
			}
			tmp.Close()
		})
	}
}

func TestFitRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "trace.csv")
	tmp, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = tmp
	err = run("weibull", 50, 0.7, 8, 50000, 2, "", "")
	os.Stdout = old
	tmp.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := run("", 0, 0, 0, 0, 0, path, ""); err != nil {
		t.Fatalf("fit: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("cauchy", 50, 0.7, 4, 1000, 1, "", ""); err == nil {
		t.Error("unknown law should fail")
	}
	if err := run("", 0, 0, 0, 0, 0, filepath.Join(t.TempDir(), "missing.csv"), ""); err == nil {
		t.Error("missing fit file should fail")
	}
}

// TestGenerateToFile covers -out: the trace lands in the named file and
// reads back through the trace parser.
func TestGenerateToFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.csv")
	if err := run("exponential", 50, 0.7, 4, 5000, 3, "", path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := trace.ReadCSV(f)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 4 || len(tr.Events) == 0 {
		t.Errorf("trace = %d nodes, %d events, want 4 nodes and some events", tr.Nodes, len(tr.Events))
	}
	if err := run("exponential", 50, 0.7, 4, 5000, 3, "", filepath.Join(t.TempDir(), "no", "such", "dir", "t.csv")); err == nil {
		t.Error("uncreatable -out path accepted")
	}
}
