// Command tracegen generates synthetic failure traces (the stand-in for
// production failure logs; see the substitution table in DESIGN.md),
// writes them in the CSV format of internal/trace, and can fit laws back
// from a trace.
//
// Usage:
//
//	tracegen -law weibull -shape 0.7 -mtbf 100 -nodes 64 -horizon 100000 > trace.csv
//	tracegen -law exponential -mtbf 50 -nodes 8 -out trace.csv
//	tracegen -fit trace.csv
//
// The emitted logs feed chkptexec's trace-driven executions
// (chkptexec -trace trace.csv -dir ...), which replay the platform's
// recorded inter-failure gaps through the crash-safe runtime.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/trace"
)

func main() {
	var (
		law     = flag.String("law", "exponential", "failure law: exponential | weibull | lognormal")
		mtbf    = flag.Float64("mtbf", 100, "per-node mean time between failures")
		shape   = flag.Float64("shape", 0.7, "weibull shape / lognormal sigma")
		nodes   = flag.Int("nodes", 16, "number of nodes")
		horizon = flag.Float64("horizon", 100000, "trace horizon (time units)")
		seed    = flag.Uint64("seed", 1, "random seed")
		fit     = flag.String("fit", "", "fit laws to an existing trace file instead of generating")
		out     = flag.String("out", "", "write the generated trace to this file instead of stdout")
	)
	flag.Parse()
	if err := run(*law, *mtbf, *shape, *nodes, *horizon, *seed, *fit, *out); err != nil {
		fmt.Fprintf(os.Stderr, "tracegen: %v\n", err)
		os.Exit(1)
	}
}

func run(law string, mtbf, shape float64, nodes int, horizon float64, seed uint64, fit, out string) error {
	if fit != "" {
		f, err := os.Open(fit)
		if err != nil {
			return err
		}
		defer f.Close()
		tr, err := trace.ReadCSV(f)
		if err != nil {
			return err
		}
		fs, err := tr.Fit()
		if err != nil {
			return err
		}
		fmt.Printf("trace: %d nodes, %d events, platform MTBF %.6g\n", tr.Nodes, len(tr.Events), fs.MTBF)
		fmt.Printf("exponential fit: %s\n", fs.Exp)
		fmt.Printf("weibull fit:     %s (shape < 1 ⇒ decreasing hazard: memoryless scheduling is suboptimal)\n", fs.Weib)
		return nil
	}

	var dist failure.Distribution
	switch law {
	case "exponential":
		e, err := failure.NewExponential(1 / mtbf)
		if err != nil {
			return err
		}
		dist = e
	case "weibull":
		w, err := failure.NewWeibull(shape, mtbf/math.Gamma(1+1/shape))
		if err != nil {
			return err
		}
		dist = w
	case "lognormal":
		l, err := failure.NewLogNormal(math.Log(mtbf)-shape*shape/2, shape)
		if err != nil {
			return err
		}
		dist = l
	default:
		return fmt.Errorf("unknown law %q", law)
	}
	tr, err := trace.Generate(dist, nodes, horizon, rng.New(seed))
	if err != nil {
		return err
	}
	if out == "" {
		return tr.WriteCSV(os.Stdout)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	if err := tr.WriteCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
