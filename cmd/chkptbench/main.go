// Command chkptbench runs the reproduction experiment suite (E1–E12; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// results) and prints the result tables.
//
// Usage:
//
//	chkptbench                 # run everything, full Monte-Carlo budget
//	chkptbench -run E1,E5      # run selected experiments
//	chkptbench -quick          # reduced Monte-Carlo budget
//	chkptbench -seed 42        # change the master seed
//	chkptbench -csv            # emit CSV instead of aligned tables
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/expt"
)

func main() {
	var (
		runList = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		quick   = flag.Bool("quick", false, "reduced Monte-Carlo budget")
		seed    = flag.Uint64("seed", 7, "master random seed")
		csv     = flag.Bool("csv", false, "emit CSV tables")
	)
	flag.Parse()

	cfg := expt.Config{Seed: *seed, Quick: *quick}
	var selected []expt.Experiment
	if *runList == "" {
		selected = expt.All()
	} else {
		for _, id := range strings.Split(*runList, ",") {
			id = strings.TrimSpace(id)
			e, ok := expt.ByID(id)
			if !ok {
				fmt.Fprintf(os.Stderr, "chkptbench: unknown experiment %q; available:", id)
				for _, a := range expt.All() {
					fmt.Fprintf(os.Stderr, " %s", a.ID)
				}
				fmt.Fprintln(os.Stderr)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	for _, e := range selected {
		fmt.Printf("### %s — %s\nclaim: %s\n\n", e.ID, e.Title, e.Claim)
		tables, err := e.Run(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "chkptbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		for _, t := range tables {
			var err error
			if *csv {
				err = t.CSV(os.Stdout)
				fmt.Println()
			} else {
				err = t.Render(os.Stdout)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "chkptbench: render: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
