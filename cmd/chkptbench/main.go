// Command chkptbench runs the reproduction experiment suite (E1–E14; see
// DESIGN.md for the per-experiment index and EXPERIMENTS.md for recorded
// results) through the parallel scenario engine and prints the result
// tables.
//
// Usage:
//
//	chkptbench                 # run everything, full Monte-Carlo budget
//	chkptbench -run E1,E5      # run selected experiments
//	chkptbench -quick          # reduced Monte-Carlo budget
//	chkptbench -seed 42        # change the master seed
//	chkptbench -parallel 8     # worker-pool size (default GOMAXPROCS)
//	chkptbench -csv            # emit CSV instead of aligned tables
//	chkptbench -json           # emit typed JSON
//	chkptbench -crn            # opt into common-random-number comparisons
//
// With a fixed seed the tables are byte-identical for every -parallel
// value (volatile wall-clock cells in E7/E13/E14 excepted; see DESIGN.md's
// determinism contract).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/expt"
	"repro/internal/expt/engine"
	"repro/internal/expt/render"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is the testable entry point: parses args, executes, renders, and
// returns the process exit code.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("chkptbench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		runList  = fs.String("run", "", "comma-separated experiment IDs (default: all)")
		quick    = fs.Bool("quick", false, "reduced Monte-Carlo budget")
		seed     = fs.Uint64("seed", 7, "master random seed")
		parallel = fs.Int("parallel", 0, "worker-pool size (0 = GOMAXPROCS)")
		csv      = fs.Bool("csv", false, "emit CSV tables")
		jsonOut  = fs.Bool("json", false, "emit typed JSON")
		crn      = fs.Bool("crn", false, "run strategy comparisons (E8, E11) on the common-random-number campaign; changes those tables' sampling schedule, so fingerprints differ from the default")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *csv && *jsonOut {
		fmt.Fprintln(stderr, "chkptbench: -csv and -json are mutually exclusive")
		return 2
	}

	selected, err := selectExperiments(*runList)
	if err != nil {
		fmt.Fprintf(stderr, "chkptbench: %v\n", err)
		return 2
	}

	cfg := expt.Config{Seed: *seed, Quick: *quick, CRN: *crn}
	runner := engine.Runner{Workers: *parallel}

	if *jsonOut {
		// JSON is one document, so it cannot stream; collect everything.
		results := runner.Run(cfg, selected)
		suites := make([]render.Suite, 0, len(results))
		for _, res := range results {
			if res.Err != nil {
				fmt.Fprintf(stderr, "chkptbench: %v\n", res.Err)
				return 1
			}
			suites = append(suites, render.Suite{
				ID: res.Info.ID, Title: res.Info.Title, Claim: res.Info.Claim, Tables: res.Tables,
			})
		}
		if err := render.JSON(stdout, suites); err != nil {
			fmt.Fprintf(stderr, "chkptbench: render: %v\n", err)
			return 1
		}
		return 0
	}

	// Text/CSV stream: each experiment prints as soon as it (and its
	// predecessors) complete, like the old serial harness; after the
	// first failure nothing further is printed.
	exit := 0
	runner.RunStream(cfg, selected, func(res engine.Result) {
		if exit != 0 {
			return
		}
		if res.Err != nil {
			fmt.Fprintf(stderr, "chkptbench: %v\n", res.Err)
			exit = 1
			return
		}
		fmt.Fprintf(stdout, "### %s — %s\nclaim: %s\n\n", res.Info.ID, res.Info.Title, res.Info.Claim)
		for _, t := range res.Tables {
			var err error
			if *csv {
				err = render.CSV(stdout, t)
				fmt.Fprintln(stdout)
			} else {
				err = render.Text(stdout, t)
			}
			if err != nil {
				fmt.Fprintf(stderr, "chkptbench: render: %v\n", err)
				exit = 1
				return
			}
		}
	})
	return exit
}

// selectExperiments resolves a comma-separated ID list ("" = all). An
// unknown or empty ID is an error naming the valid IDs, so a typo fails
// loudly instead of being skipped.
func selectExperiments(runList string) ([]expt.Scenario, error) {
	if runList == "" {
		return expt.All(), nil
	}
	var selected []expt.Scenario
	seen := map[string]bool{}
	for _, id := range strings.Split(runList, ",") {
		id = strings.TrimSpace(id)
		if id == "" {
			return nil, fmt.Errorf("empty experiment ID in -run list; available: %s", strings.Join(expt.IDs(), " "))
		}
		e, ok := expt.ByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q; available: %s", id, strings.Join(expt.IDs(), " "))
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		selected = append(selected, e)
	}
	return selected, nil
}
