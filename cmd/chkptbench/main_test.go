package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/expt"
)

func TestSelectExperiments(t *testing.T) {
	all, err := selectExperiments("")
	if err != nil || len(all) != len(expt.All()) {
		t.Fatalf("default selection: %d experiments, err %v", len(all), err)
	}
	sel, err := selectExperiments("E5, E1,E5")
	if err != nil {
		t.Fatal(err)
	}
	if len(sel) != 2 || sel[0].Info().ID != "E5" || sel[1].Info().ID != "E1" {
		t.Errorf("selection order/dedup wrong: %v", sel)
	}
}

func TestUnknownExperimentFailsLoudly(t *testing.T) {
	for _, list := range []string{"E99", "bogus", "E1,,E2", ","} {
		var stdout, stderr bytes.Buffer
		code := run([]string{"-run", list, "-quick"}, &stdout, &stderr)
		if code == 0 {
			t.Errorf("-run %q exited 0", list)
		}
		msg := stderr.String()
		if !strings.Contains(msg, "E1") || !strings.Contains(msg, "E12") {
			t.Errorf("-run %q error does not list valid IDs: %s", list, msg)
		}
	}
}

func TestConflictingFormats(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-csv", "-json"}, &stdout, &stderr); code == 0 {
		t.Error("-csv -json accepted")
	}
}

func TestRunTextAndJSON(t *testing.T) {
	var stdout, stderr bytes.Buffer
	// E4 is pure-analytical and fast even at full budget.
	if code := run([]string{"-run", "E4", "-quick"}, &stdout, &stderr); code != 0 {
		t.Fatalf("text run failed (%d): %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "### E4") {
		t.Errorf("missing experiment header:\n%s", stdout.String())
	}

	stdout.Reset()
	stderr.Reset()
	if code := run([]string{"-run", "E4", "-quick", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("json run failed (%d): %s", code, stderr.String())
	}
	var got []struct {
		ID     string `json:"id"`
		Tables []struct {
			Rows []struct {
				Cells []struct {
					Kind string `json:"kind"`
				} `json:"cells"`
			} `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(stdout.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON output: %v", err)
	}
	if len(got) != 1 || got[0].ID != "E4" || len(got[0].Tables) == 0 || len(got[0].Tables[0].Rows) == 0 {
		t.Errorf("unexpected JSON shape: %s", stdout.String())
	}
}
