package repro_test

// One benchmark per reproduction experiment (see DESIGN.md's
// per-experiment index). Each benchmark executes the corresponding
// experiment from internal/expt in quick mode through the serial
// reference executor, so
//
//	go test -bench=. -benchmem
//
// regenerates every table of the evaluation; cmd/chkptbench runs the same
// experiments through the parallel engine with the full Monte-Carlo
// budget and prints the tables recorded in EXPERIMENTS.md. The
// BenchmarkSuite* and BenchmarkE11WeibullWorkers* benchmarks measure the
// engine itself: serial vs worker-pool execution of the same scenarios
// (see EXPERIMENTS.md for the recorded comparison).

import (
	"io"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt"
	"repro/internal/expt/engine"
	"repro/internal/expt/render"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

func runExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := expt.ByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	cfg := expt.Config{Seed: 7, Quick: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := expt.Execute(cfg, e)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		for _, t := range tables {
			if err := render.Text(io.Discard, t); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkE1FormulaValidation(b *testing.B) { runExperiment(b, "E1") }
func BenchmarkE2Components(b *testing.B)        { runExperiment(b, "E2") }
func BenchmarkE3Comparators(b *testing.B)       { runExperiment(b, "E3") }
func BenchmarkE4Convexity(b *testing.B)         { runExperiment(b, "E4") }
func BenchmarkE5Reduction(b *testing.B)         { runExperiment(b, "E5") }
func BenchmarkE6ChainOptimality(b *testing.B)   { runExperiment(b, "E6") }
func BenchmarkE7DPScaling(b *testing.B)         { runExperiment(b, "E7") }
func BenchmarkE8Strategies(b *testing.B)        { runExperiment(b, "E8") }
func BenchmarkE9Platform(b *testing.B)          { runExperiment(b, "E9") }
func BenchmarkE10Downtime(b *testing.B)         { runExperiment(b, "E10") }
func BenchmarkE11Weibull(b *testing.B)          { runExperiment(b, "E11") }
func BenchmarkE12Extensions(b *testing.B)       { runExperiment(b, "E12") }
func BenchmarkE13DPKernelScaling(b *testing.B)  { runExperiment(b, "E13") }
func BenchmarkE14MCScaling(b *testing.B)        { runExperiment(b, "E14") }
func BenchmarkE15LatticeScaling(b *testing.B)   { runExperiment(b, "E15") }

// Engine benchmarks: the full quick-mode suite and the heaviest
// Monte-Carlo experiment (E11, four simulation campaigns per row) at
// different worker counts. On a multi-core host the Workers>1 variants
// show the fan-out speedup; on a single-core host they bound the
// engine's scheduling overhead instead.

func benchSuite(b *testing.B, workers int) {
	b.Helper()
	cfg := expt.Config{Seed: 7, Quick: true}
	r := engine.Runner{Workers: workers}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := r.RunAll(cfg)
		if err := engine.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSuiteWorkers1(b *testing.B) { benchSuite(b, 1) }
func BenchmarkSuiteWorkers4(b *testing.B) { benchSuite(b, 4) }
func BenchmarkSuiteWorkers8(b *testing.B) { benchSuite(b, 8) }

func benchE11Workers(b *testing.B, workers int) {
	b.Helper()
	e, ok := expt.ByID("E11")
	if !ok {
		b.Fatal("E11 not registered")
	}
	cfg := expt.Config{Seed: 7, Quick: true}
	r := engine.Runner{Workers: workers}
	scens := []expt.Scenario{e}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		results := r.Run(cfg, scens)
		if err := engine.FirstError(results); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE11WeibullWorkers1(b *testing.B) { benchE11Workers(b, 1) }
func BenchmarkE11WeibullWorkers4(b *testing.B) { benchE11Workers(b, 4) }

// Micro-benchmarks of the core algorithms themselves, independent of the
// experiment harness: these measure the library's hot paths.

func benchChain(b *testing.B, n int) {
	b.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := expectation.NewModel(0.01, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveChainDP(cp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainDP* measures the dispatching portfolio, which takes
// the monotone-matrix arm on this certified workload; the pinned
// kernel-arm and dense benchmarks below isolate the other arms.
func BenchmarkChainDP64(b *testing.B)   { benchChain(b, 64) }
func BenchmarkChainDP256(b *testing.B)  { benchChain(b, 256) }
func BenchmarkChainDP1024(b *testing.B) { benchChain(b, 1024) }
func BenchmarkChainDP4096(b *testing.B) { benchChain(b, 4096) }

// Pinned kernel arm: comparing against BenchmarkChainDP* at the same
// size measures the monotone arm's win over the pruned scan;
// experiment E16 records the same comparison as a table.
func benchChainKernel(b *testing.B, n int) {
	b.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := expectation.NewModel(0.01, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveChainDPKernel(cp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainDPKernel1024(b *testing.B) { benchChainKernel(b, 1024) }
func BenchmarkChainDPKernel4096(b *testing.B) { benchChainKernel(b, 4096) }

// Kernel-off ablation: the dense Algorithm 1 scan (one exp + one expm1
// per transition, all n(n+1)/2 transitions). Comparing against
// BenchmarkChainDPKernel* at the same size measures the segment-kernel
// + exact-pruning speedup; experiment E13 records the same comparison
// as a table.
func benchChainDense(b *testing.B, n int) {
	b.Helper()
	g, err := dag.Chain(n, dag.DefaultWeights(), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := expectation.NewModel(0.01, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveChainDPDense(cp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkChainDPDense1024(b *testing.B) { benchChainDense(b, 1024) }
func BenchmarkChainDPDense4096(b *testing.B) { benchChainDense(b, 4096) }

// Exact DAG solver: the downset-lattice DP vs factorial order
// enumeration on the same in-tree (13 tasks, 34,650 linearizations) —
// the microbenchmark behind experiment E15 and BENCH_dag.json.
func benchDAGExact(b *testing.B, lattice bool) {
	b.Helper()
	g, err := dag.IntreeFromChains(3, 4, dag.DefaultWeights(), rng.New(21))
	if err != nil {
		b.Fatal(err)
	}
	m, err := expectation.NewModel(0.02, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if lattice {
			_, err = core.SolveDAGLattice(g, m, core.LastTaskCosts{}, core.Options{Workers: 1})
		} else {
			_, err = core.SolveDAGExhaustive(g, m, core.LastTaskCosts{}, 0)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDAGLattice13(b *testing.B)   { benchDAGExact(b, true) }
func BenchmarkDAGFactorial13(b *testing.B) { benchDAGExact(b, false) }

// BenchmarkSimRunSteadyState measures one simulated execution in the
// regime MonteCarlo's worker loop runs in — a reused resettable process
// and a caller-owned segments slice. The acceptance bar is 0 allocs/op
// (pinned by TestRunSteadyStateAllocs in internal/sim).
func BenchmarkSimRunSteadyState(b *testing.B) {
	g, err := dag.Chain(64, dag.DefaultWeights(), rng.New(5))
	if err != nil {
		b.Fatal(err)
	}
	m, err := expectation.NewModel(0.05, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	res, err := core.SolveChainDP(cp)
	if err != nil {
		b.Fatal(err)
	}
	segs, err := cp.Segments(res.CheckpointAfter)
	if err != nil {
		b.Fatal(err)
	}
	proc := failure.NewExponentialProcess(0.05, rng.New(6))
	opts := sim.Options{Downtime: 0.5}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		proc.Reset()
		if _, err := sim.Run(segs, proc, opts); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExpectedTime(b *testing.B) {
	m, err := expectation.NewModel(0.01, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += m.ExpectedTime(10, 1, 1)
	}
	_ = sink
}

func BenchmarkIndependentExact12(b *testing.B) {
	r := rng.New(3)
	weights := make([]float64, 12)
	for i := range weights {
		weights[i] = r.Range(1, 10)
	}
	m, err := expectation.NewModel(0.02, 0)
	if err != nil {
		b.Fatal(err)
	}
	ip := &core.IndependentProblem{Weights: weights, Checkpoint: 0.5, Recovery: 0.5, Model: m}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveIndependentExact(ip); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablation: the Monge-pruned homogeneous solver vs the general O(n²) DP
// on the same constant-cost instances — the speedup the paper's general
// cost model gives up.

func benchHomogeneous(b *testing.B, n int, pruned bool) {
	b.Helper()
	r := rng.New(2)
	m, err := expectation.NewModel(0.02, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cp := &core.ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: 0.3,
		Model:           m,
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = r.Range(0.5, 8)
		cp.Ckpt[i] = 0.3
		cp.Rec[i] = 0.3
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if pruned {
			_, err = core.SolveChainDPHomogeneous(cp)
		} else {
			_, err = core.SolveChainDP(cp)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHomogeneousGeneral1024(b *testing.B) { benchHomogeneous(b, 1024, false) }
func BenchmarkHomogeneousPruned1024(b *testing.B)  { benchHomogeneous(b, 1024, true) }
func BenchmarkHomogeneousGeneral4096(b *testing.B) { benchHomogeneous(b, 4096, false) }
func BenchmarkHomogeneousPruned4096(b *testing.B)  { benchHomogeneous(b, 4096, true) }

func BenchmarkBoundedDP256Budget8(b *testing.B) {
	g, err := dag.Chain(256, dag.DefaultWeights(), rng.New(3))
	if err != nil {
		b.Fatal(err)
	}
	m, err := expectation.NewModel(0.01, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveChainDPBounded(cp, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIndependentLPT100(b *testing.B) {
	r := rng.New(4)
	weights := make([]float64, 100)
	for i := range weights {
		weights[i] = r.Range(1, 10)
	}
	m, err := expectation.NewModel(0.02, 0)
	if err != nil {
		b.Fatal(err)
	}
	ip := &core.IndependentProblem{Weights: weights, Checkpoint: 0.5, Recovery: 0.5, Model: m}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveIndependentLPT(ip); err != nil {
			b.Fatal(err)
		}
	}
}
