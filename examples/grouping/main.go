// Grouping: the independent-task instance class of Proposition 2. Shows
// (1) why grouping is a hard combinatorial problem — exact vs heuristic
// solutions on bag-of-tasks workloads — and (2) the 3-PARTITION reduction
// in action: scheduling decides 3-PARTITION.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/partition"
	"repro/internal/rng"
)

func main() {
	r := rng.New(2024)

	// Part 1: a bag of 14 render-farm jobs, constant checkpoint cost.
	weights := make([]float64, 14)
	for i := range weights {
		weights[i] = r.Range(0.5, 8)
	}
	m, err := expectation.NewModel(1.0/40, 0.25) // MTBF 40 h
	if err != nil {
		log.Fatal(err)
	}
	ip := &core.IndependentProblem{
		Weights:    weights,
		Checkpoint: 0.5,
		Recovery:   0.5,
		Model:      m,
	}
	exact, err := core.SolveIndependentExact(ip)
	if err != nil {
		log.Fatal(err)
	}
	lpt, err := core.SolveIndependentLPT(ip)
	if err != nil {
		log.Fatal(err)
	}
	chunk, err := core.SolveIndependentChunk(ip)
	if err != nil {
		log.Fatal(err)
	}
	perTask, err := ip.SingleGroupPerTask()
	if err != nil {
		log.Fatal(err)
	}
	one, err := ip.OneGroup()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("bag of %d tasks, total work %.1f h, C=R=%.1f h, MTBF %.0f h\n\n",
		len(weights), ip.TotalWork(), ip.Checkpoint, 1/m.Lambda)
	fmt.Printf("%-28s %-12s %s\n", "strategy", "E[T] (h)", "groups")
	show := func(name string, g core.Grouping) {
		fmt.Printf("%-28s %-12.4f %d\n", name, g.Expected, len(g.Groups))
	}
	show("exact (subset DP, O(3^n))", exact)
	show("LPT scan (heuristic)", lpt)
	show("Lambert-chunk target", chunk)
	show("checkpoint after each task", perTask)
	show("single final checkpoint", one)
	fmt.Printf("\nLPT gap to exact: %.4f%%  (Prop. 2: closing it in general is strongly NP-hard)\n",
		(lpt.Expected/exact.Expected-1)*100)

	// Part 2: the reduction. Scheduling answers 3-PARTITION.
	fmt.Println("\n--- Proposition 2 reduction demo ---")
	yes, err := partition.GenerateYes(4, 240, r)
	if err != nil {
		log.Fatal(err)
	}
	no, err := partition.GenerateNo(3, 120, r)
	if err != nil {
		log.Fatal(err)
	}
	for _, in := range []struct {
		name string
		inst partition.Instance
	}{{"planted YES", yes}, {"perturbed NO", no}} {
		ri, err := core.BuildReduction(in.inst)
		if err != nil {
			log.Fatal(err)
		}
		decision, g, err := ri.DecideByScheduling()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s instance %v (T=%d)\n", in.name, in.inst.Items, in.inst.Target)
		fmt.Printf("  %s\n", ri)
		fmt.Printf("  optimal schedule: E* = %.6f, bound K = %.6f, gap %.2e → 3-PARTITION says %v\n",
			g.Expected, ri.Bound, ri.GapToBound(g), decision)
	}
}
