// Dagsched: scheduling a non-chain workflow. Proposition 2 says jointly
// choosing the order and the checkpoints is strongly NP-hard, so the
// library linearizes with a portfolio of heuristics and runs the exact
// per-order placement DP (a generalized Algorithm 1) on each — including
// under the Section 6 live-set cost model where a checkpoint pays for
// every output that is still needed. The example closes with the
// replication trade-off the paper's related work points to: when is it
// worth splitting the platform into replica groups instead of relying on
// checkpoints alone?
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/replication"
	"repro/internal/rng"
)

func main() {
	r := rng.New(99)

	// An astronomy-style mosaic workflow: wide projection stage, pairwise
	// overlaps, fan-in fit, tail chain.
	g, err := dag.MontageLike(8, dag.DefaultWeights(), r)
	if err != nil {
		log.Fatal(err)
	}
	stats, err := g.Analyze()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workflow: %s\n\n", stats)

	m, err := expectation.NewModel(1.0/50, 0.5) // MTBF 50 h
	if err != nil {
		log.Fatal(err)
	}

	// Compare linearization strategies under both cost models.
	for _, cm := range []core.CostModel{core.LastTaskCosts{}, core.LiveSetCosts{}} {
		fmt.Printf("cost model %q:\n", cm.Name())
		for _, s := range core.DefaultStrategies() {
			order, err := s.Order(g)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.SolveOrderDP(g, order, m, cm)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-18s E[T] = %-10.4f (%d checkpoints)\n",
				s.Name, res.Expected, len(res.Plan().Checkpoints()))
		}
		best, err := core.SolveDAG(g, m, cm, nil)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  portfolio best: %s (E[T] = %.4f)\n\n", best.Strategy, best.Expected)
	}

	// Replication: split a 64-node platform into g groups all executing
	// the workflow's heaviest segment. Perfect parallelism means g groups
	// slow the attempt by g; resilience must pay for that.
	fmt.Println("replication trade-off on the heaviest segment (total work 40 h on 64 nodes):")
	const (
		segWork   = 40.0
		ckpt      = 1.0
		totalRate = 64 * 1e-3 // per-node MTBF 1000 h
	)
	workAt := func(groups int) float64 { return segWork * float64(groups) }
	bestG, times, err := replication.BreakEvenGroups(4, totalRate, 0.5, 1, ckpt, workAt, 20000, r)
	if err != nil {
		log.Fatal(err)
	}
	for gi, tm := range times {
		marker := ""
		if gi+1 == bestG {
			marker = "  ← best"
		}
		fmt.Printf("  g=%d: E[T] = %.3f h%s\n", gi+1, tm, marker)
	}
	fmt.Println("\nwith a 1000 h per-node MTBF, checkpointing alone wins (g=1): replication's")
	fmt.Println("slowdown outweighs its resilience — consistent with treating replication as")
	fmt.Println("complementary, for regimes where failures outpace recovery (see internal/replication).")
}
