// Quickstart: build a 6-stage pipeline, compute the optimal checkpoint
// placement (Proposition 3 / Algorithm 1), compare it with the naive
// policies, and confirm the analytical optimum by simulation and by
// executing the plan on the crash-safe runtime.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// Failure environment: platform MTBF of 100 hours, 1 hour of
	// downtime per failure.
	model, err := repro.NewModel(1.0/100, 1.0)
	if err != nil {
		log.Fatal(err)
	}

	// A linear chain of six tasks. Weights are hours of compute;
	// Checkpoint/Recovery are the per-task C_i and R_i of the paper.
	g := repro.NewGraph()
	stages := []repro.Task{
		{Name: "ingest", Weight: 2, Checkpoint: 0.05, Recovery: 0.05},
		{Name: "clean", Weight: 5, Checkpoint: 0.30, Recovery: 0.30},
		{Name: "align", Weight: 22, Checkpoint: 1.50, Recovery: 1.50},
		{Name: "call", Weight: 11, Checkpoint: 0.40, Recovery: 0.40},
		{Name: "annotate", Weight: 7, Checkpoint: 0.20, Recovery: 0.20},
		{Name: "report", Weight: 1, Checkpoint: 0.05, Recovery: 0.05},
	}
	prev := -1
	for _, s := range stages {
		id, err := g.AddTask(s)
		if err != nil {
			log.Fatal(err)
		}
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				log.Fatal(err)
			}
		}
		prev = id
	}

	// Optimal placement. The Stats variant also reports which arm of the
	// solver portfolio ran (see the printout at the end).
	plan, stats, err := repro.OptimalChainPlanStats(g, model, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("optimal expected makespan: %.3f h\n", plan.Expected)
	fmt.Print("checkpoint after:")
	for _, pos := range plan.Positions() {
		fmt.Printf(" %s", stages[pos].Name)
	}
	fmt.Println()

	// How much the optimum buys over one-size-fits-all policies.
	full := make([]bool, len(stages))
	for i := range full {
		full[i] = true
	}
	finalOnly := make([]bool, len(stages))
	finalOnly[len(stages)-1] = true
	for _, alt := range []struct {
		name string
		ck   []bool
	}{{"checkpoint-everywhere", full}, {"final-checkpoint-only", finalOnly}} {
		p := repro.Plan{Order: seq(len(stages)), CheckpointAfter: alt.ck}
		e, err := repro.EvaluatePlan(model, g, p, 0)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %.3f h (%.1f%% over optimal)\n", alt.name+":", e, (e/plan.Expected-1)*100)
	}

	// Proposition 1 is exact: simulation agrees with the optimum.
	mean, ci, err := repro.Simulate(g, model, plan.CheckpointAfter, 50000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated (50k runs):  %.3f ± %.3f h  (analytical %.3f)\n", mean, ci, plan.Expected)

	// Execute the plan on the crash-safe runtime: unlike the simulator's
	// closed-form attempt accounting, the executor advances task by task
	// under a virtual clock, loses uncheckpointed progress on failures,
	// and rewinds to the last checkpoint — the realized mean validates
	// the planned expectation end to end. (`cmd/chkptexec` is the CLI
	// face of this: campaigns, plus persisted single runs that survive
	// crashes via a durable checkpoint store and resume bit-identically.)
	exr, err := repro.ExecutePlan(g, model, plan.CheckpointAfter, 50000, 42)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("executed  (50k runs):  %.3f ± %.3f h  (planned %.3f, within CI: %v)\n",
		exr.Realized, exr.CI, exr.Planned, exr.WithinCI())

	// Which solver arm ran? The chain solver is a certifier-gated
	// portfolio: instances whose segment costs pass the
	// quadrangle-inequality certificate (checkpoint/recovery jumps never
	// outweigh task weights — true for this pipeline) dispatch to the
	// O(n log n) monotone-matrix arm, everything else falls back to the
	// pruned kernel scan. The same selection is exposed on the command
	// line: `chkptplan -workflow wf.json -algo auto|monotone|kernel|dense`
	// pins an arm explicitly, and `-algo monotone` explains (via the
	// certifier's reason) when an instance does not qualify.
	fmt.Printf("solver arm: %s (%d oracle evaluations for %d tasks)\n", stats.Arm, stats.Transitions, len(stages))
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}
