// Weibull: the general-failure-law extension (Section 6). Generates a
// synthetic failure trace with the decreasing hazard rate reported for
// production clusters, fits laws back from it, and compares the
// exponential-fit DP placement against the Weibull-aware
// maximize-expected-work placement by simulation.
package main

import (
	"fmt"
	"log"
	"math"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/heuristic"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

func main() {
	r := rng.New(7)
	const (
		shape = 0.7  // Weibull shape of production failure logs
		mtbf  = 60.0 // platform MTBF in hours
		dtime = 0.25 // downtime
		nTask = 24   // chain length
		w     = 2.5  // per-task hours
		c     = 0.4  // checkpoint cost
	)

	// 1. "Observe" a failure log (the Failure Trace Archive substitute).
	weib, err := failure.NewWeibull(shape, mtbf/math.Gamma(1+1/shape))
	if err != nil {
		log.Fatal(err)
	}
	tr, err := trace.Generate(weib, 1, 500000, r)
	if err != nil {
		log.Fatal(err)
	}
	fit, err := tr.Fit()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("synthetic failure log: %d failures, MTBF %.2f h\n", len(tr.Events), fit.MTBF)
	fmt.Printf("  exponential fit: %v\n", fit.Exp)
	fmt.Printf("  weibull fit:     %v  ← shape < 1: decreasing hazard, memoryless models mislead\n\n", fit.Weib)

	// 2. Plan with both models.
	weights := make([]float64, nTask)
	costs := make([]float64, nTask)
	for i := range weights {
		weights[i] = w
		costs[i] = c
	}
	mExp, err := expectation.NewModel(fit.Exp.Lambda, dtime)
	if err != nil {
		log.Fatal(err)
	}
	cp := &core.ChainProblem{Weights: weights, Ckpt: costs, Rec: costs, Model: mExp}
	expPlan, err := core.SolveChainDP(cp)
	if err != nil {
		log.Fatal(err)
	}
	surv, err := heuristic.FreshPlatformSurvival(fit.Weib, 1)
	if err != nil {
		log.Fatal(err)
	}
	weibPlan, err := heuristic.MaxSavedWorkDP(weights, c, surv)
	if err != nil {
		log.Fatal(err)
	}
	count := func(ck []bool) int {
		n := 0
		for _, b := range ck {
			if b {
				n++
			}
		}
		return n
	}
	fmt.Printf("exponential-fit DP placement:     %d checkpoints\n", count(expPlan.CheckpointAfter))
	fmt.Printf("weibull max-saved-work placement: %d checkpoints\n\n", count(weibPlan.CheckpointAfter))

	// 3. Judge both under the true Weibull process.
	factory := sim.SuperposedFactory(weib, 1, failure.RejuvenateFailedOnly)
	simulate := func(ck []bool) float64 {
		segs, err := cp.Segments(ck)
		if err != nil {
			log.Fatal(err)
		}
		res, err := sim.MonteCarlo(segs, factory, sim.Options{Downtime: dtime}, 40000, r.Split())
		if err != nil {
			log.Fatal(err)
		}
		return res.Makespan.Mean()
	}
	eExp := simulate(expPlan.CheckpointAfter)
	eWeib := simulate(weibPlan.CheckpointAfter)
	fmt.Println("simulated mean makespan under the true Weibull failures (40k runs):")
	fmt.Printf("  exponential-fit DP:  %.3f h\n", eExp)
	fmt.Printf("  weibull-aware:       %.3f h  (%.2f%% vs exponential fit)\n",
		eWeib, (eWeib/eExp-1)*100)
	fmt.Println("\nno closed form exists for Weibull (the paper's third extension): these are")
	fmt.Println("heuristics judged by simulation, exactly as Section 6 prescribes.")

	// 4. History dependence: after surviving a long time, a k<1 platform
	// is safer and the placement thins out.
	fmt.Println("\ncheckpoints chosen vs platform age (k=0.7):")
	for _, age := range []float64{0, 30, 120, 500} {
		s, err := heuristic.AgedPlatformSurvival(weib, []float64{age})
		if err != nil {
			log.Fatal(err)
		}
		p, err := heuristic.MaxSavedWorkDP(weights, c, s)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  age %5.0f h → %d checkpoints\n", age, count(p.CheckpointAfter))
	}
}
