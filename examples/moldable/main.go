// Moldable: the second extension of Section 6 — tasks that can run on any
// number of processors. Instantiates Equation 6 under the Section 3
// workload/overhead models and shows how the failure-aware optimal
// processor count differs from the failure-blind one.
package main

import (
	"fmt"
	"log"

	"repro/internal/expectation"
	"repro/internal/moldable"
	"repro/internal/platform"
)

func main() {
	pl := platform.Platform{Processors: 1 << 16, LambdaProc: 2e-6, Downtime: 1}
	fmt.Printf("platform: up to %d processors, per-node MTBF %.0f h, downtime %g h\n\n",
		pl.Processors, 1/pl.LambdaProc, pl.Downtime)

	task := moldable.Task{
		Name:           "LU factorization",
		WTotal:         5e4, // 50k core-hours
		BaseCheckpoint: 25,  // full-memory dump through shared storage
		Scenario: platform.Scenario{
			Workload: platform.NumericalKernel{Gamma: 0.03},
			Overhead: platform.ConstantOverhead{},
		},
	}

	// E(p) curve: failure-free time shrinks with p, but λ(p) = p·λproc
	// grows and the constant checkpoint cost does not shrink.
	fmt.Println("E(p) for the numerical kernel (constant checkpoint overhead):")
	fmt.Printf("%-10s %-14s %-14s %-12s\n", "p", "W(p) (h)", "E(p) (h)", "waste %")
	for p := 64; p <= pl.Processors; p *= 4 {
		wp := task.Scenario.Workload.Time(task.WTotal, p)
		e, err := task.ExpectedTime(pl, p)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d %-14.4g %-14.4g %-12.2f\n", p, wp, e, (e/wp-1)*100)
	}

	a, err := moldable.OptimalProcessors(task, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfailure-aware optimum: p* = %d, E = %.4g h, speedup %.0fx over p=1\n",
		a.Processors, a.Expected, a.Speedup)

	// The failure-blind choice (minimize W(p)) takes every processor —
	// and pays for it.
	eMax, err := task.ExpectedTime(pl, pl.Processors)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failure-blind choice (p = %d): E = %.4g h, %.1f%% slower than p*\n",
		pl.Processors, eMax, (eMax/a.Expected-1)*100)

	// A pipeline of moldable stages: each ends in a checkpoint (renewal
	// point), so per-stage optimization is globally optimal.
	fmt.Println("\nmoldable pipeline:")
	pipe := []moldable.Task{
		{Name: "load+scatter", WTotal: 5e3, BaseCheckpoint: 4,
			Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ProportionalOverhead{}}},
		task,
		{Name: "solve+gather", WTotal: 1.2e4, BaseCheckpoint: 8,
			Scenario: platform.Scenario{Workload: platform.Amdahl{Gamma: 5e-4}, Overhead: platform.ConstantOverhead{}}},
	}
	seq, err := moldable.PlanSequence(pipe, pl)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %-22s %-14s %-10s %-12s\n", "stage", "workload model", "overhead", "p*", "E (h)")
	for i, alloc := range seq.Allocations {
		fmt.Printf("%-16s %-22s %-14s %-10d %-12.4g\n",
			pipe[i].Name, pipe[i].Scenario.Workload.Name(), pipe[i].Scenario.Overhead.Name(),
			alloc.Processors, alloc.Expected)
	}
	fmt.Printf("pipeline expected total: %.4g h\n", seq.TotalExpected)

	// Context: what the divisible-load theory says the checkpoint period
	// should be at p*.
	lambda := float64(a.Processors) * pl.LambdaProc
	chunk, err := expectation.OptimalChunk(task.BaseCheckpoint, lambda)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nat p* the Lambert-W optimal checkpoint period would be %.4g h (Daly: %.4g h)\n",
		chunk, expectation.DalyPeriod(task.BaseCheckpoint, lambda))
}
