// Pipeline: a genomics-style linear workflow with heterogeneous
// checkpoint costs (big intermediate files after alignment, small ones
// after variant calling). Shows how the optimal placement concentrates
// checkpoints where they are cheap, sweeps the failure rate to expose the
// crossover between never- and always-checkpoint, and writes the workflow
// JSON consumable by cmd/chkptplan and cmd/chkptsim.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
)

func buildPipeline() (*dag.Graph, error) {
	g := dag.New()
	// Weights in hours; checkpoint cost ∝ intermediate data volume.
	stages := []dag.Task{
		{Name: "fastq-qc", Weight: 1.5, Checkpoint: 0.02, Recovery: 0.02},
		{Name: "trim", Weight: 2.5, Checkpoint: 0.40, Recovery: 0.40},
		{Name: "align-bwa", Weight: 30, Checkpoint: 2.50, Recovery: 2.50}, // 200 GB BAM
		{Name: "sort-dedup", Weight: 8, Checkpoint: 2.20, Recovery: 2.20},
		{Name: "recalibrate", Weight: 12, Checkpoint: 2.00, Recovery: 2.00},
		{Name: "call-variants", Weight: 20, Checkpoint: 0.10, Recovery: 0.10}, // small VCF
		{Name: "filter", Weight: 2, Checkpoint: 0.05, Recovery: 0.05},
		{Name: "annotate", Weight: 4, Checkpoint: 0.08, Recovery: 0.08},
		{Name: "report", Weight: 0.5, Checkpoint: 0.01, Recovery: 0.01},
	}
	prev := -1
	for _, s := range stages {
		id, err := g.AddTask(s)
		if err != nil {
			return nil, err
		}
		if prev >= 0 {
			if err := g.AddEdge(prev, id); err != nil {
				return nil, err
			}
		}
		prev = id
	}
	return g, nil
}

func main() {
	g, err := buildPipeline()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("genomics pipeline: optimal checkpoint placement vs platform MTBF")
	fmt.Printf("%-10s %-12s %-14s %-14s %-14s %s\n",
		"MTBF (h)", "E_opt (h)", "E_always (h)", "E_never (h)", "E_daly (h)", "checkpoints after")
	for _, mtbf := range []float64{10000, 1000, 300, 100, 30, 10} {
		m, err := expectation.NewModel(1/mtbf, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		cp, order, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			log.Fatal(err)
		}
		opt, err := core.SolveChainDP(cp)
		if err != nil {
			log.Fatal(err)
		}
		always, err := core.AlwaysCheckpoint(cp)
		if err != nil {
			log.Fatal(err)
		}
		never, err := core.NeverCheckpoint(cp)
		if err != nil {
			log.Fatal(err)
		}
		daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(1.0, m.Lambda))
		if err != nil {
			log.Fatal(err)
		}
		names := ""
		for _, pos := range opt.Positions() {
			names += g.Task(order[pos]).Name + " "
		}
		fmt.Printf("%-10.4g %-12.4g %-14.4g %-14.4g %-14.4g %s\n",
			mtbf, opt.Expected, always.Expected, never.Expected, daly.Expected, names)
	}
	fmt.Println("\nreading the table: at long MTBF only the mandatory final checkpoint survives;")
	fmt.Println("as failures become frequent the DP checkpoints the cheap positions (post-variant-calling)")
	fmt.Println("long before it is willing to pay for the expensive post-alignment BAM dumps.")

	// Persist the workflow for the CLI tools.
	const out = "pipeline.json"
	f, err := os.Create(out)
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := g.Write(f); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkflow written to %s — try:\n", out)
	fmt.Println("  go run ./cmd/chkptplan -workflow pipeline.json -lambda 0.01 -downtime 0.5 -baselines")
	fmt.Println("  go run ./cmd/chkptsim  -workflow pipeline.json -lambda 0.01 -downtime 0.5 -runs 100000")
}
