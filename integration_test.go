package repro_test

// Cross-module integration tests: each test exercises a full pipeline a
// downstream user would run, stitching several internal packages together
// the way the cmd/ tools and examples do.

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt"
	"repro/internal/expt/engine"
	"repro/internal/expt/render"
	"repro/internal/failure"
	"repro/internal/heuristic"
	"repro/internal/partition"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/trace"
)

// TestIntegrationEngineSuite runs the whole experiment suite the way
// cmd/chkptbench does — through the parallel engine — and pushes the
// typed results through all three renderers, round-tripping the JSON.
func TestIntegrationEngineSuite(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run skipped with -short")
	}
	cfg := expt.Config{Seed: 7, Quick: true}
	results := engine.Runner{Workers: 4}.RunAll(cfg)
	if err := engine.FirstError(results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(expt.All()) {
		t.Fatalf("engine ran %d experiments, want %d", len(results), len(expt.All()))
	}
	var text, csv, jsonBuf bytes.Buffer
	suites := make([]render.Suite, 0, len(results))
	for _, res := range results {
		if len(res.Tables) == 0 {
			t.Errorf("%s produced no tables", res.Info.ID)
		}
		for _, tb := range res.Tables {
			if err := render.Text(&text, tb); err != nil {
				t.Fatal(err)
			}
			if err := render.CSV(&csv, tb); err != nil {
				t.Fatal(err)
			}
		}
		suites = append(suites, render.Suite{
			ID: res.Info.ID, Title: res.Info.Title, Claim: res.Info.Claim, Tables: res.Tables,
		})
	}
	if text.Len() == 0 || csv.Len() == 0 {
		t.Fatal("renderers produced no output")
	}
	if err := render.JSON(&jsonBuf, suites); err != nil {
		t.Fatal(err)
	}
	var decoded []struct {
		ID     string `json:"id"`
		Tables []struct {
			Columns []string          `json:"columns"`
			Rows    []json.RawMessage `json:"rows"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(jsonBuf.Bytes(), &decoded); err != nil {
		t.Fatalf("JSON output does not round-trip: %v", err)
	}
	if len(decoded) != len(expt.All()) || decoded[0].ID != "E1" || len(decoded[0].Tables) == 0 {
		t.Fatalf("unexpected JSON shape: %d suites", len(decoded))
	}
	if len(decoded[0].Tables[0].Rows) == 0 {
		t.Fatal("E1's first table decoded with no rows")
	}
}

// TestIntegrationTraceToPlanToSimulation plays the full general-law
// workflow: generate a failure log, fit laws, plan with the fitted
// exponential, and validate the plan's expectation by replaying the
// *same trace* through the simulator.
func TestIntegrationTraceToPlanToSimulation(t *testing.T) {
	r := rng.New(2025)

	// 1. A synthetic cluster log.
	weib, err := failure.NewWeibull(0.8, 40)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := trace.Generate(weib, 8, 100000, r)
	if err != nil {
		t.Fatal(err)
	}

	// 2. Round-trip through the CSV format.
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	tr2, err := trace.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}

	// 3. Fit and plan.
	fit, err := tr2.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if fit.Exp.Lambda <= 0 {
		t.Fatal("degenerate fit")
	}
	m, err := expectation.NewModel(fit.Exp.Lambda, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	g, err := dag.Chain(10, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}

	// 4. Replay the plan against the recorded trace.
	segs, err := cp.Segments(plan.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	proc, err := tr2.Process()
	if err != nil {
		t.Fatal(err)
	}
	rs, err := sim.Run(segs, proc, sim.Options{Downtime: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Makespan <= 0 {
		t.Fatal("replay produced no makespan")
	}
	// The single-replay makespan is one sample; sanity-bound it by the
	// failure-free time and a generous multiple of the expectation.
	ff, err := cp.FailureFreeMakespan(plan.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Makespan < ff {
		t.Errorf("replay %v below failure-free %v", rs.Makespan, ff)
	}
}

// TestIntegrationReductionPipeline goes 3-PARTITION instance → reduced
// scheduling instance → exact solver → plan → simulation, confirming the
// simulated makespan matches K on a yes-instance.
func TestIntegrationReductionPipeline(t *testing.T) {
	r := rng.New(11)
	in, err := partition.GenerateYes(3, 120, r)
	if err != nil {
		t.Fatal(err)
	}
	ri, err := core.BuildReduction(in)
	if err != nil {
		t.Fatal(err)
	}
	yes, grouping, err := ri.DecideByScheduling()
	if err != nil {
		t.Fatal(err)
	}
	if !yes {
		t.Fatal("yes-instance decided no")
	}

	// Build the executable plan and simulate it: the mean makespan must
	// approach K = E*.
	plan := grouping.Plan()
	gph, err := dag.IndependentWithWeights(ri.Problem.Weights, ri.Problem.Checkpoint, ri.Problem.Recovery)
	if err != nil {
		t.Fatal(err)
	}
	if err := plan.Validate(gph); err != nil {
		t.Fatal(err)
	}
	cp, err := core.NewChainProblemOrdered(gph, plan.Order, ri.Problem.Model, ri.Problem.Recovery)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := sim.MonteCarloPlan(cp, plan.CheckpointAfter,
		sim.ExponentialFactory(ri.Problem.Model.Lambda), sim.Options{}, 60000, rng.New(12))
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Makespan.Contains(ri.Bound, 0.999) {
		t.Errorf("simulated %v ± %v vs K = %v",
			mc.Makespan.Mean(), mc.Makespan.CI(0.999), ri.Bound)
	}
}

// TestIntegrationDAGJSONRoundTripSchedule exercises workflow JSON I/O
// into DAG scheduling under both cost models, like cmd/chkptplan.
func TestIntegrationDAGJSONRoundTripSchedule(t *testing.T) {
	r := rng.New(13)
	g, err := dag.MontageLike(5, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	g2, err := dag.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	m, err := expectation.NewModel(0.02, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range []core.CostModel{core.LastTaskCosts{}, core.LiveSetCosts{}} {
		res, err := core.SolveDAG(g2, m, cm, nil)
		if err != nil {
			t.Fatalf("%s: %v", cm.Name(), err)
		}
		if err := res.Plan().Validate(g2); err != nil {
			t.Errorf("%s: %v", cm.Name(), err)
		}
	}
}

// TestIntegrationWeibullPlanningLoop runs the extension-3 loop: fit a
// Weibull trace, build both exponential-fit and Weibull-aware placements,
// and verify the simulator ranks both far ahead of never-checkpointing.
func TestIntegrationWeibullPlanningLoop(t *testing.T) {
	r := rng.New(17)
	weib, err := failure.NewWeibull(0.7, 30/math.Gamma(1+1/0.7))
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	weights := make([]float64, n)
	costs := make([]float64, n)
	for i := range weights {
		weights[i] = 2
		costs[i] = 0.3
	}
	mFit, err := expectation.NewModel(1.0/30, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	cp := &core.ChainProblem{Weights: weights, Ckpt: costs, Rec: costs, Model: mFit}
	expPlan, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	surv, err := heuristic.FreshPlatformSurvival(weib, 1)
	if err != nil {
		t.Fatal(err)
	}
	weibPlan, err := heuristic.MaxSavedWorkDP(weights, 0.3, surv)
	if err != nil {
		t.Fatal(err)
	}
	never := make([]bool, n)
	never[n-1] = true

	factory := sim.SuperposedFactory(weib, 1, failure.RejuvenateFailedOnly)
	simulate := func(ck []bool) float64 {
		segs, err := cp.Segments(ck)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.MonteCarlo(segs, factory, sim.Options{Downtime: 0.2}, 20000, r.Split())
		if err != nil {
			t.Fatal(err)
		}
		return res.Makespan.Mean()
	}
	eExp := simulate(expPlan.CheckpointAfter)
	eWeib := simulate(weibPlan.CheckpointAfter)
	eNever := simulate(never)
	if eNever < eExp || eNever < eWeib {
		t.Errorf("never-checkpoint (%v) should lose to planned placements (%v, %v)", eNever, eExp, eWeib)
	}
	if ratio := eWeib / eExp; ratio > 1.15 || ratio < 0.85 {
		t.Errorf("weibull-aware vs exponential-fit ratio %v out of plausible band", ratio)
	}
}

// TestIntegrationBoundedBudgetFlow: a user with limited checkpoint
// storage plans with a budget and verifies by simulation.
func TestIntegrationBoundedBudgetFlow(t *testing.T) {
	r := rng.New(19)
	g, err := dag.Chain(15, dag.DefaultWeights(), r)
	if err != nil {
		t.Fatal(err)
	}
	m, err := expectation.NewModel(0.05, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		t.Fatal(err)
	}
	budget3, err := core.SolveChainDPBounded(cp, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(budget3.Positions()); got > 3 {
		t.Fatalf("budget violated: %d checkpoints", got)
	}
	mc, err := sim.MonteCarloPlan(cp, budget3.CheckpointAfter,
		sim.ExponentialFactory(m.Lambda), sim.Options{}, 40000, rng.New(20))
	if err != nil {
		t.Fatal(err)
	}
	if !mc.Makespan.Contains(budget3.Expected, 0.999) {
		t.Errorf("simulated %v ± %v vs analytical %v",
			mc.Makespan.Mean(), mc.Makespan.CI(0.999), budget3.Expected)
	}
}
