// Package repro reproduces, as a production-quality Go library, the system
// described in:
//
//	Yves Robert, Frédéric Vivien, Dounia Zaidouni.
//	"On the complexity of scheduling checkpoints for computational
//	workflows." INRIA Research Report RR-7907 (DSN 2012 companion), 2012.
//
// The paper studies the joint problem of ordering the tasks of a workflow
// DAG and deciding after which tasks to checkpoint, under Exponential
// failures with downtime and recovery, so as to minimize the expected
// makespan. Its three results — the exact expectation formula
// (Proposition 1), strong NP-completeness via 3-PARTITION
// (Proposition 2), and the O(n²) optimal dynamic program for linear
// chains (Proposition 3) — are all implemented, exhaustively tested, and
// numerically validated here, together with the three extensions the
// paper sketches (content-dependent checkpoint costs, moldable tasks,
// general failure laws).
//
// This root package is a thin facade over the implementation packages:
//
//   - internal/expectation — Proposition 1 and the comparator formulas
//   - internal/core        — the schedulers (chain DP, independent tasks,
//     DAG linearization + placement, 3-PARTITION reduction)
//   - internal/dag         — the workflow graph model and generators
//   - internal/sim         — the discrete-event execution simulator
//   - internal/failure     — failure laws and platform processes
//   - internal/platform, internal/moldable, internal/heuristic,
//     internal/partition, internal/trace, internal/expt — substrates and
//     the experiment harness (see DESIGN.md)
//
// Quick start (see examples/quickstart for the runnable version):
//
//	model, _ := repro.NewModel(1.0/100, 1.0) // λ = 1/100h, D = 1h
//	g := repro.NewGraph()
//	... add tasks and edges ...
//	plan, _ := repro.OptimalChainPlan(g, model, 0)
//	fmt.Println(plan.Expected, plan.Positions())
package repro

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/store"
)

// Model carries the failure environment: the platform failure rate λ and
// the downtime D. It is internal/expectation.Model re-exported.
type Model = expectation.Model

// NewModel validates and builds a Model.
func NewModel(lambda, downtime float64) (Model, error) {
	return expectation.NewModel(lambda, downtime)
}

// Graph is the workflow DAG (internal/dag.Graph re-exported).
type Graph = dag.Graph

// Task is a workflow task (internal/dag.Task re-exported).
type Task = dag.Task

// NewGraph returns an empty workflow graph.
func NewGraph() *Graph { return dag.New() }

// Plan is an execution order plus checkpoint decisions
// (internal/core.Plan re-exported).
type Plan = core.Plan

// ChainResult is the output of the chain optimizers
// (internal/core.ChainResult re-exported).
type ChainResult = core.ChainResult

// ExpectedTime returns E[T(W,C,D,R,λ)], the Proposition 1 closed form.
func ExpectedTime(m Model, w, c, r float64) float64 {
	return m.ExpectedTime(w, c, r)
}

// OptimalChainPlan computes the optimal checkpoint placement for a
// workflow whose DAG is a linear chain, using Algorithm 1 (Proposition 3).
// initialRecovery is R₀, the cost of restarting from the initial state
// before any checkpoint exists (commonly 0).
//
// The solver is a certifier-gated portfolio: instances whose
// segment-cost matrix passes the quadrangle-inequality certificate run
// a totally-monotone-matrix DP in O(n log n) oracle evaluations —
// million-task chains solve in well under a second — and everything
// else takes the pruned kernel scan. Both arms are exact; use
// OptimalChainPlanStats to see which one ran.
func OptimalChainPlan(g *Graph, m Model, initialRecovery float64) (ChainResult, error) {
	cp, _, err := core.NewChainProblem(g, m, initialRecovery)
	if err != nil {
		return ChainResult{}, err
	}
	return core.SolveChainDP(cp)
}

// DPStats reports a chain solve's dispatched arm and oracle-evaluation
// count (internal/core.DPStats re-exported).
type DPStats = core.DPStats

// OptimalChainPlanStats is OptimalChainPlan, additionally reporting
// which solver arm the portfolio dispatched to ("monotone" on
// quadrangle-certified instances, "kernel" otherwise) and how many
// cost-oracle evaluations it made.
func OptimalChainPlanStats(g *Graph, m Model, initialRecovery float64) (ChainResult, DPStats, error) {
	cp, _, err := core.NewChainProblem(g, m, initialRecovery)
	if err != nil {
		return ChainResult{}, DPStats{}, err
	}
	return core.SolveChainDPStats(cp)
}

// ScheduleDAG schedules a general workflow DAG: it linearizes the graph
// with a portfolio of heuristics (optimal ordering is strongly NP-hard by
// Proposition 2) and runs the exact per-order placement DP, returning the
// best schedule found.
func ScheduleDAG(g *Graph, m Model) (core.DAGResult, error) {
	return core.SolveDAG(g, m, core.LastTaskCosts{}, nil)
}

// ScheduleDAGExact computes the globally optimal order-plus-placement
// schedule by dynamic programming over the DAG's downset lattice —
// exponential in the graph's width rather than factorial in its size,
// which reaches ~20–30-task workflows where order enumeration is
// hopeless. The NP-hardness of Proposition 2 caps how far any exact
// method scales: very wide graphs trip the built-in 20M-state budget
// (roughly a couple of GB of tables; size core.Options.MaxStates to
// your memory if you need more) and return an error — fall back to
// ScheduleDAG there.
func ScheduleDAGExact(g *Graph, m Model) (core.DAGResult, error) {
	return core.SolveDAGLattice(g, m, core.LastTaskCosts{}, core.Options{MaxStates: 20_000_000})
}

// EvaluatePlan returns the exact expected makespan of an explicit plan.
func EvaluatePlan(m Model, g *Graph, plan Plan, initialRecovery float64) (float64, error) {
	return core.EvaluatePlan(m, g, plan, initialRecovery)
}

// Simulate Monte-Carlo-simulates a chain plan under Exponential failures
// with the model's rate and downtime, returning the mean simulated
// makespan and its 99% confidence half-width.
func Simulate(g *Graph, m Model, checkpointAfter []bool, runs int, seed uint64) (mean, ci float64, err error) {
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return 0, 0, err
	}
	res, err := sim.MonteCarloPlan(cp, checkpointAfter, sim.ExponentialFactory(m.Lambda), sim.Options{}, runs, rng.New(seed))
	if err != nil {
		return 0, 0, err
	}
	return res.Makespan.Mean(), res.Makespan.CI(0.99), nil
}

// PlanReport bundles the analytical assessment of a chain plan: expected
// makespan, standard deviation, failure-free makespan, expected waste,
// and the segment decomposition (internal/sim.PlanReport re-exported).
type PlanReport = sim.PlanReport

// ReportChainPlan assembles the analytical report for a checkpoint
// placement on a chain workflow: exact expectation (Proposition 1 per
// segment) plus the exact variance from the second-moment extension.
func ReportChainPlan(g *Graph, m Model, checkpointAfter []bool, initialRecovery float64) (PlanReport, error) {
	cp, _, err := core.NewChainProblem(g, m, initialRecovery)
	if err != nil {
		return PlanReport{}, err
	}
	return sim.Report(cp, checkpointAfter)
}

// OptimalChainPlanBounded is OptimalChainPlan under a checkpoint budget:
// the optimal placement using at most maxCheckpoints checkpoints.
func OptimalChainPlanBounded(g *Graph, m Model, initialRecovery float64, maxCheckpoints int) (ChainResult, error) {
	cp, _, err := core.NewChainProblem(g, m, initialRecovery)
	if err != nil {
		return ChainResult{}, err
	}
	return core.SolveChainDPBounded(cp, maxCheckpoints)
}

// ExecReport summarizes an ExecutePlan campaign: the Proposition-1
// planned expectation of the plan, the realized mean makespan over the
// executed runs with its 99% confidence half-width, and the mean number
// of failures survived per run.
type ExecReport struct {
	// Planned is the analytical expected makespan of the plan.
	Planned float64
	// Realized is the mean makespan over the executed runs.
	Realized float64
	// CI is the 99% confidence half-width of Realized.
	CI float64
	// MeanFailures is the mean failure count per run.
	MeanFailures float64
	// Runs is the number of executions.
	Runs int
}

// WithinCI reports whether the realized mean lies within its confidence
// interval of the planned expectation — the planned-vs-realized
// validation the runtime experiments gate on.
func (r ExecReport) WithinCI() bool {
	d := r.Realized - r.Planned
	if d < 0 {
		d = -d
	}
	return d <= r.CI
}

// ExecutePlan runs a chain checkpoint plan on the crash-safe execution
// runtime (internal/exec) runs times under Exponential failures with
// the model's rate and downtime, and reports the realized makespan
// against the Proposition-1 planned expectation. It is the
// executed-counterpart of Simulate: the runtime advances task by task
// under a virtual clock, loses uncheckpointed progress on every
// failure, and rewinds to the latest checkpoint — so the realized mean
// validates the planned expectation end to end.
func ExecutePlan(g *Graph, m Model, checkpointAfter []bool, runs int, seed uint64) (ExecReport, error) {
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return ExecReport{}, err
	}
	w, err := exec.NewChainWorkload(cp, checkpointAfter)
	if err != nil {
		return ExecReport{}, err
	}
	res, err := exec.Campaign(w, failure.Exponential{Lambda: m.Lambda}, exec.CampaignOptions{
		Runs: runs, Seed: seed, Downtime: m.Downtime,
	})
	if err != nil {
		return ExecReport{}, err
	}
	return ExecReport{
		Planned:      w.Planned(m),
		Realized:     res.Makespan.Mean(),
		CI:           res.Makespan.CI(0.99),
		MeanFailures: res.Failures.Mean(),
		Runs:         res.Runs,
	}, nil
}

// ResilienceReport summarizes one adaptive execution against a
// degraded checkpoint store: the realized makespan, the virtual store
// overhead folded into it (injected latency plus backoff delays), the
// worst crash-rewind exposure the run ever carried, the number of
// online replans and abandoned saves, and the final degradation-ladder
// level ("healthy", "degraded", "failover" or "down").
type ResilienceReport struct {
	Makespan      float64
	StoreOverhead float64
	MaxRewind     float64
	Replans       int
	GiveUps       int
	Level         string
}

// ExecutePlanResilient runs a chain checkpoint plan ONCE on the
// adaptive executor against a deterministically degraded in-memory
// store: every operation pays Exp-distributed virtual latency with the
// given mean, saves fail with probability writeFail, and the executor
// responds with capped exponential-backoff retries plus online suffix
// replanning (re-solving the chain DP when effective checkpoint cost
// drifts 25% past the plan's). It is the degraded-store counterpart of
// ExecutePlan — the evidence behind it is experiment E19.
func ExecutePlanResilient(g *Graph, m Model, checkpointAfter []bool, meanLatency, writeFail float64, seed uint64) (ResilienceReport, error) {
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return ResilienceReport{}, err
	}
	w, err := exec.NewChainWorkload(cp, checkpointAfter)
	if err != nil {
		return ResilienceReport{}, err
	}
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))
	st := store.Checked(store.NewFaultStore(store.NewMemStore(), store.FaultPlan{
		Seed: seed, WriteFail: writeFail, MeanLatency: meanLatency, LogicalKeys: true,
	}))
	res, err := exec.Execute(w,
		exec.NewKeyedSource(failure.Exponential{Lambda: m.Lambda}, seed, 1),
		exec.Options{
			RunID: "resilient", Store: st, Downtime: m.Downtime,
			Adaptive: &exec.AdaptiveOptions{
				Retry:       exec.ExpBackoff{Base: 0.25 * meanC, Cap: meanC, MaxAttempts: 4},
				Replanner:   exec.ChainReplanner{CP: cp},
				ReplanRatio: 1.25,
			},
		})
	if err != nil {
		return ResilienceReport{}, err
	}
	return ResilienceReport{
		Makespan:      res.Makespan,
		StoreOverhead: res.StoreOverhead,
		MaxRewind:     res.MaxRewind,
		Replans:       res.Replans,
		GiveUps:       res.GiveUps,
		Level:         res.Level.String(),
	}, nil
}

// ProbeResult is the plan-time store-telemetry measurement
// (internal/exec.ProbeResult re-exported).
type ProbeResult = exec.ProbeResult

// TelemetryPlan is the outcome of a telemetry-fed plan-time re-solve:
// the probe that measured the store, the placement re-solved under
// effective checkpoint costs C_i + overhead, and the naive placement
// the configured costs would have produced. Both Expected fields are
// TRUE-cost expectations (the overhead inflates costs only inside the
// optimization), so the two plans are directly comparable — and under
// the REALIZED effective costs the telemetry plan's sparser placement
// is the one that wins.
type TelemetryPlan struct {
	Probe ProbeResult
	// Plan is the placement re-solved with every checkpoint cost
	// inflated by the probe's overhead estimate.
	Plan ChainResult
	// Naive is the placement solved from the configured costs alone.
	Naive ChainResult
	// Overhead is the per-checkpoint overhead the re-solve used
	// (Probe.Estimate).
	Overhead float64
}

// OptimalChainPlanTelemetry closes the planner-feedback loop at PLAN
// time: it probes the given store stack for its realized per-operation
// overhead (probeSamples saves under a dedicated run ID; ≤ 0 for the
// default), then re-solves the chain placement with the effective
// checkpoint cost C_i + overhead — the same re-solve the executor's
// online replanning performs mid-run, applied before the run starts.
// This is the whole-plan counterpart of suffix replanning: a store
// behind a slow or lossy network yields a sparser placement up front
// instead of after the first drift detection.
func OptimalChainPlanTelemetry(g *Graph, m Model, initialRecovery float64, st store.Store, probeSamples int) (TelemetryPlan, error) {
	cp, _, err := core.NewChainProblem(g, m, initialRecovery)
	if err != nil {
		return TelemetryPlan{}, err
	}
	naive, err := core.SolveChainDP(cp)
	if err != nil {
		return TelemetryPlan{}, err
	}
	probe := exec.ProbeStore(st, "telemetry-probe", probeSamples, 0, 0)
	segs, err := exec.ChainReplanner{CP: cp}.Replan(0, probe.Estimate)
	if err != nil {
		return TelemetryPlan{}, err
	}
	ck := make([]bool, cp.Len())
	for _, s := range segs {
		ck[s.End] = true
	}
	expected, err := cp.Makespan(ck)
	if err != nil {
		return TelemetryPlan{}, err
	}
	return TelemetryPlan{
		Probe:    probe,
		Plan:     ChainResult{Expected: expected, CheckpointAfter: ck},
		Naive:    naive,
		Overhead: probe.Estimate,
	}, nil
}

// Exponential builds the memoryless failure law of the core model.
func Exponential(lambda float64) (failure.Exponential, error) {
	return failure.NewExponential(lambda)
}

// Weibull builds the heavy-tailed law of the general-failure extension.
func Weibull(shape, scale float64) (failure.Weibull, error) {
	return failure.NewWeibull(shape, scale)
}
