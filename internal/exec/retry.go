package exec

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/store"
)

// ErrorClass partitions store errors by what retrying can achieve.
type ErrorClass uint8

const (
	// ClassTransient errors (injected write/read faults, unclassified
	// I/O hiccups) may succeed on retry.
	ClassTransient ErrorClass = iota
	// ClassPermanent errors (quota exhaustion, corrupt or missing
	// entries) cannot be fixed by retrying the identical operation; the
	// caller must degrade — fall back to an older checkpoint, replan,
	// fail over, or stop persisting.
	ClassPermanent
	// ClassFatal errors (fingerprint mismatch, malformed state payload)
	// mean the store holds state that is not this execution's; retrying
	// OR degrading would mask real damage, so the run must abort loudly.
	ClassFatal
)

// String names the class.
func (c ErrorClass) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	case ClassFatal:
		return "fatal"
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassifyStoreError maps a store error to its class. Unknown errors
// classify transient: a real I/O hiccup deserves its retries, and the
// retry budget bounds the damage of misclassifying.
func ClassifyStoreError(err error) ErrorClass {
	switch {
	case errors.Is(err, ErrFingerprint) || errors.Is(err, errState):
		return ClassFatal
	case errors.Is(err, store.ErrFenced):
		// A higher-epoch lease fenced this write: another executor owns
		// the run now. Retrying or degrading would interleave two
		// writers' histories — the zombie must abort loudly.
		return ClassFatal
	case errors.Is(err, store.ErrLeaseExpired), errors.Is(err, store.ErrLeaseHeld):
		// The lease could not be confirmed (or is briefly held): nothing
		// proves a competing writer, so retrying re-validates — and a
		// renewal riding a healed partition succeeds.
		return ClassTransient
	case errors.Is(err, store.ErrTimeout):
		// A remote operation that missed its deadline — lost message,
		// partition window, or a slow link. Partitions heal: retry, back
		// off, ride the window out on the degradation ladder. A quorum
		// error whose representative cause is a timeout lands here too.
		return ClassTransient
	case errors.Is(err, store.ErrQuota),
		errors.Is(err, store.ErrCorrupt),
		errors.Is(err, store.ErrNotFound):
		return ClassPermanent
	default:
		return ClassTransient
	}
}

// ErrSaveExhausted wraps a transient store error that survived every
// allowed retry.
var ErrSaveExhausted = errors.New("exec: save retries exhausted")

// ErrSavePermanent wraps a permanent store error encountered while
// saving — retrying was not attempted because it cannot help.
var ErrSavePermanent = errors.New("exec: permanent store error")

// RetryPolicy decides, after each failed store attempt, whether to try
// again and how much virtual time to back off first. Policies must be
// deterministic (no jitter, no wall clock): backoff delays are folded
// into the executor's virtual clock and persisted accounting, so a
// replayed run must compute the identical delays.
type RetryPolicy interface {
	// Name identifies the policy in summaries and benchmarks.
	Name() string
	// Backoff is called after the attempt-th failure (1-based) with the
	// virtual-time overhead already spent on this operation (latency of
	// failed attempts plus earlier backoffs). It returns the delay to
	// serve before the next attempt and whether to retry at all.
	Backoff(attempt int, spent float64) (delay float64, retry bool)
}

// NoRetry gives up after the first failure.
type NoRetry struct{}

// Name identifies the policy.
func (NoRetry) Name() string { return "none" }

// Backoff never retries.
func (NoRetry) Backoff(int, float64) (float64, bool) { return 0, false }

// FixedRetry retries up to Attempts times with no backoff — the legacy
// SaveRetries behavior as a policy.
type FixedRetry struct {
	// Attempts is the number of RETRIES after the first failure.
	Attempts int
}

// Name identifies the policy.
func (p FixedRetry) Name() string { return fmt.Sprintf("fixed:%d", p.Attempts) }

// Backoff retries immediately while attempts remain.
func (p FixedRetry) Backoff(attempt int, _ float64) (float64, bool) {
	return 0, attempt <= p.Attempts
}

// ExpBackoff is capped exponential backoff in virtual time: retry k
// (1-based) waits min(Base·Factor^(k−1), Cap) before the next attempt,
// up to MaxAttempts retries and a total per-operation overhead Budget.
// It is deliberately jitter-free: determinism outranks thundering-herd
// etiquette inside a replayable virtual clock.
type ExpBackoff struct {
	// Base is the first retry's delay (virtual time units).
	Base float64
	// Factor multiplies the delay each further retry (≤ 0 means 2).
	Factor float64
	// Cap bounds a single delay; 0 means uncapped.
	Cap float64
	// MaxAttempts bounds retries; 0 means 8.
	MaxAttempts int
	// Budget bounds the operation's total overhead (spent + next delay);
	// 0 means unbounded.
	Budget float64
}

// Name identifies the policy.
func (p ExpBackoff) Name() string { return "exp" }

// Backoff computes the capped exponential delay and every stop rule.
func (p ExpBackoff) Backoff(attempt int, spent float64) (float64, bool) {
	max := p.MaxAttempts
	if max <= 0 {
		max = 8
	}
	if attempt > max {
		return 0, false
	}
	factor := p.Factor
	if factor <= 0 {
		factor = 2
	}
	delay := p.Base * math.Pow(factor, float64(attempt-1))
	if p.Cap > 0 && delay > p.Cap {
		delay = p.Cap
	}
	if p.Budget > 0 && spent+delay > p.Budget {
		return 0, false
	}
	return delay, true
}

var (
	_ RetryPolicy = NoRetry{}
	_ RetryPolicy = FixedRetry{}
	_ RetryPolicy = ExpBackoff{}
)
