package exec

import (
	"fmt"
	"math/bits"
)

// DegradeLevel is the executor's position on the degradation ladder.
// Levels move down within a run; the single path back up is the
// ride-out probe (AdaptiveOptions.ProbeEvery): a store that went
// effectively down can be re-admitted at LevelDegraded when a probe
// save succeeds — partitions heal — but never re-earns LevelHealthy or
// an undone failover within the run.
type DegradeLevel uint8

const (
	// LevelHealthy: the store behaves close to the plan's assumptions.
	LevelHealthy DegradeLevel = iota
	// LevelDegraded: observed save cost drifted enough that at least one
	// replan re-solved the remaining plan with the effective cost.
	LevelDegraded
	// LevelFailover: the primary store gave up too often; checkpoints go
	// to the secondary store.
	LevelFailover
	// LevelDown: no store accepts saves; execution continues
	// checkpoint-free (in-model checkpoints still bound failure
	// rollback, but a crash now rewinds to the last PERSISTED
	// checkpoint — the growing exposure is tracked as MaxRewind).
	LevelDown
)

// String names the level.
func (l DegradeLevel) String() string {
	switch l {
	case LevelHealthy:
		return "healthy"
	case LevelDegraded:
		return "degraded"
	case LevelFailover:
		return "failover"
	case LevelDown:
		return "down"
	}
	return fmt.Sprintf("level(%d)", uint8(l))
}

// StoreHealth is the deterministic store-health observer: an EWMA of
// per-commit save latency, an EWMA of per-commit retry overhead
// (backoff delays plus latency burned on failed attempts), and a
// rolling window of per-attempt outcomes for a failure rate. All inputs
// are virtual-time quantities read from the deterministic store stack,
// and every field round-trips bit-exactly through the checkpoint
// payload, so a resumed run's health — and therefore its replan
// decisions — is identical to the uninterrupted run's.
type StoreHealth struct {
	alpha  float64
	window int

	commits  uint64 // commits observed (first one seeds the EWMAs)
	ewmaLat  float64
	ewmaOver float64
	bits     uint64 // rolling per-attempt outcomes, bit 0 = most recent
	nbits    int
	attempts uint64
	failures uint64
}

// newStoreHealth builds an observer; alpha ≤ 0 defaults to 0.25,
// window ≤ 0 to 16 (capped at 64, the width of the bit window).
func newStoreHealth(alpha float64, window int) StoreHealth {
	if alpha <= 0 || alpha > 1 {
		alpha = 0.25
	}
	if window <= 0 {
		window = 16
	}
	if window > 64 {
		window = 64
	}
	return StoreHealth{alpha: alpha, window: window}
}

// ObserveAttempt records one save attempt's outcome in the failure
// window.
func (h *StoreHealth) ObserveAttempt(failed bool) {
	h.attempts++
	h.bits <<= 1
	if failed {
		h.failures++
		h.bits |= 1
	}
	if h.nbits < h.window {
		h.nbits++
	}
	h.bits &= windowMask(h.window)
}

func windowMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << w) - 1
}

// ObserveCommit folds one commit's outcome into the EWMAs: successLat
// is the injected latency of the successful attempt (0 on give-up),
// retryOverhead is everything else the commit burned (failed-attempt
// latency plus backoff delays).
func (h *StoreHealth) ObserveCommit(successLat, retryOverhead float64) {
	if h.commits == 0 {
		h.ewmaLat = successLat
		h.ewmaOver = retryOverhead
	} else {
		h.ewmaLat += h.alpha * (successLat - h.ewmaLat)
		h.ewmaOver += h.alpha * (retryOverhead - h.ewmaOver)
	}
	h.commits++
}

// EwmaLatency returns the smoothed per-commit successful-save latency.
func (h *StoreHealth) EwmaLatency() float64 { return h.ewmaLat }

// EwmaOverhead returns the smoothed per-commit retry overhead.
func (h *StoreHealth) EwmaOverhead() float64 { return h.ewmaOver }

// OverheadEstimate is the expected EXTRA cost of the next checkpoint
// beyond its planned C: smoothed latency plus smoothed retry overhead.
// This is the C_eff − C term replan decisions use.
func (h *StoreHealth) OverheadEstimate() float64 { return h.ewmaLat + h.ewmaOver }

// FailureRate returns the fraction of failed attempts in the window
// (0 before any attempt).
func (h *StoreHealth) FailureRate() float64 {
	if h.nbits == 0 {
		return 0
	}
	return float64(bits.OnesCount64(h.bits)) / float64(h.nbits)
}

// Attempts and Failures return lifetime counters; Commits the number of
// committed observations.
func (h *StoreHealth) Attempts() uint64 { return h.attempts }

// Failures returns the lifetime failed-attempt count.
func (h *StoreHealth) Failures() uint64 { return h.failures }

// Commits returns the number of ObserveCommit calls.
func (h *StoreHealth) Commits() uint64 { return h.commits }
