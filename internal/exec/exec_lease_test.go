package exec

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/store"
)

// TestExecuteFencesZombie drives the full multi-writer drill at the
// executor level: A crashes mid-run, B takes the run over with a
// higher epoch, zombie A wakes up and is fenced on its first write,
// and the survivor's journal is bit-identical to an uncontended run —
// the lease layer is invisible to the journal.
func TestExecuteFencesZombie(t *testing.T) {
	w := chainWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 77, 1) }

	// Uncontended reference on a lease-free store.
	ref, err := Execute(w, src(), Options{Store: store.Checked(store.NewMemStore()), Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}

	mem := store.NewMemStore()
	shared := func() store.Store { return store.Checked(mem) }

	// Executor A acquires epoch 1 and crashes after two saves, leaving
	// segments for B and (crucially) one more beyond B's kill point so
	// the zombie still has a write to attempt.
	a := store.NewLeaseStore(shared(), store.LeaseConfig{Holder: "a", TTL: 1e9})
	resA, err := Execute(w, src(), Options{Store: a, Downtime: 1, CrashAfterSaves: 2})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("A = %v, want ErrCrashed", err)
	}
	if resA.Epoch != 1 {
		t.Fatalf("A epoch = %d, want 1", resA.Epoch)
	}

	// A polite B (no takeover) is blocked while A's lease is live.
	polite := store.NewLeaseStore(shared(), store.LeaseConfig{Holder: "b", TTL: 1e9})
	if _, err := Execute(w, src(), Options{Store: polite, Downtime: 1}); !errors.Is(err, store.ErrLeaseHeld) {
		t.Fatalf("polite B = %v, want ErrLeaseHeld", err)
	}

	// B's failure detector declares A dead: takeover bumps to epoch 2.
	b := store.NewLeaseStore(shared(), store.LeaseConfig{Holder: "b", TTL: 1e9, Takeover: true})
	resB, err := Execute(w, src(), Options{Store: b, Downtime: 1, CrashAfterSaves: 1})
	if !errors.Is(err, ErrCrashed) {
		t.Fatalf("B = %v, want ErrCrashed", err)
	}
	if resB.Epoch != 2 {
		t.Fatalf("B epoch = %d, want 2", resB.Epoch)
	}

	// Zombie A re-enters on its ORIGINAL LeaseStore instance: its stale
	// session survives Acquire untouched, and the first guarded write
	// is fenced — fatal, never interleaved.
	if _, err := Execute(w, src(), Options{Store: a, Downtime: 1}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("zombie A = %v, want ErrFenced", err)
	}

	// The survivor (a fresh process, same holder) resumes to completion
	// with a higher epoch and the uncontended journal.
	b2 := store.NewLeaseStore(shared(), store.LeaseConfig{Holder: "b", TTL: 1e9, Takeover: true})
	res, err := Execute(w, src(), Options{Store: b2, Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Epoch != 3 {
		t.Fatalf("survivor epoch = %d, want 3", res.Epoch)
	}
	if !res.Journal.Equal(ref.Journal) {
		t.Fatalf("survivor journal diverges from uncontended reference:\nref %d events hash %016x\ngot %d events hash %016x",
			len(ref.Journal), ref.Journal.Hash(), len(res.Journal), res.Journal.Hash())
	}
}

// TestExecuteSyncEvery pins executor-driven anti-entropy: a replica
// isolated for the first part of the run converges bit-identically by
// completion without any read traffic, and the pass cadence (absolute
// segment index + one final pass) is what drove it.
func TestExecuteSyncEvery(t *testing.T) {
	w := chainWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 78, 1) }

	build := func(partitionEnd float64) (store.Store, []*store.MemStore) {
		netCfg := netsim.Config{Seed: 9, Latency: 0.02}
		if partitionEnd > 0 {
			netCfg.Partitions = []netsim.Window{{Start: 0, End: partitionEnd, Isolated: []string{"s0"}}}
		}
		net := netsim.New(netCfg)
		mems := make([]*store.MemStore, 3)
		replicas := make([]store.Store, 3)
		for i := range mems {
			mems[i] = store.NewMemStore()
			rs := store.NewRemoteStore(mems[i], net, netCfg, store.RemoteConfig{Remote: fmt.Sprintf("s%d", i), Timeout: 1.5})
			replicas[i] = store.Checked(rs)
		}
		q, err := store.NewQuorumStore(replicas, store.QuorumConfig{W: 2, R: 2})
		if err != nil {
			t.Fatal(err)
		}
		return q, mems
	}

	st, mems := build(20)
	res, err := Execute(w, src(), Options{Store: st, Downtime: 1, Adaptive: &AdaptiveOptions{
		Retry:     ExpBackoff{Base: 0.25, Cap: 0.5, MaxAttempts: 4},
		SyncEvery: 3,
	}})
	if err != nil {
		t.Fatal(err)
	}
	wantPasses := w.Segments()/3 + 1
	if res.Syncs != wantPasses {
		t.Fatalf("Syncs = %d, want %d (every 3rd commit + final)", res.Syncs, wantPasses)
	}
	if res.SyncCopied == 0 {
		t.Fatal("SyncCopied = 0: the isolated replica was never repaired by anti-entropy")
	}
	// All three replicas hold identical raw contents for the run.
	refSeqs, _ := mems[1].List("run")
	for i := range mems {
		seqs, _ := mems[i].List("run")
		if fmt.Sprint(seqs) != fmt.Sprint(refSeqs) {
			t.Fatalf("replica %d seqs %v != %v after final sync", i, seqs, refSeqs)
		}
	}
	for _, sq := range refSeqs {
		want, _ := mems[1].Load("run", sq)
		for i := range mems {
			got, lerr := mems[i].Load("run", sq)
			if lerr != nil || string(got) != string(want) {
				t.Fatalf("replica %d seq %d diverges after final sync (%v)", i, sq, lerr)
			}
		}
	}

	// The sync cadence is invisible to the journal: the same run under
	// the same partition schedule WITHOUT SyncEvery produces the
	// identical journal.
	plain, _ := build(20)
	refRes, err := Execute(w, src(), Options{Store: plain, Downtime: 1, Adaptive: &AdaptiveOptions{
		Retry: ExpBackoff{Base: 0.25, Cap: 0.5, MaxAttempts: 4},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Journal.Equal(refRes.Journal) {
		t.Fatalf("journal with SyncEvery diverges from plain run: %016x vs %016x",
			res.Journal.Hash(), refRes.Journal.Hash())
	}
}
