// Plan-time telemetry: probing a store stack for its realized
// per-operation overhead BEFORE an execution starts, so the planner can
// re-solve with an effective checkpoint cost C + overhead instead of
// the configured C. This closes the feedback loop that online
// replanning only closes mid-run: ProbeStore feeds the same StoreHealth
// EWMA the executor maintains, and the estimate plugs directly into
// Replanner.Replan(0, overhead) — a whole-plan re-solve under effective
// costs (see repro.OptimalChainPlanTelemetry and cmd/chkptexec's
// -plan-from-telemetry).
package exec

import (
	"fmt"

	"repro/internal/store"
)

// ProbeResult is what ProbeStore measured.
type ProbeResult struct {
	// Estimate is the store-health EWMA estimate of per-operation
	// overhead after the probes — successful probes contribute their
	// exact virtual latency, failed ones their full cost (e.g. the
	// remote timeout), so a store behind a partition probes expensive,
	// not free.
	Estimate float64
	// Samples is the number of probe saves issued, Failures how many
	// of them errored.
	Samples  int
	Failures int
	// Tracked reports whether the stack exposes per-op virtual latency
	// (store.LastOp). When false the estimate is necessarily zero and
	// telemetry-fed planning degenerates to the naive plan.
	Tracked bool
}

// ProbeStore measures the effective per-operation overhead of a store
// stack by issuing samples probe saves of a payloadSize-byte payload
// under the given run ID and folding each probe's exact virtual
// latency into a fresh StoreHealth EWMA (weight alpha, 0 for the
// default). Probe checkpoints are deleted afterwards (best effort).
// Use a dedicated run ID: probes share the stack's logically-keyed
// fault and network streams, so a run ID disjoint from real runs
// leaves their outcomes untouched.
func ProbeStore(st store.Store, run string, samples, payloadSize int, alpha float64) ProbeResult {
	if samples <= 0 {
		samples = 32
	}
	if payloadSize <= 0 {
		payloadSize = 4096
	}
	payload := make([]byte, payloadSize)
	health := newStoreHealth(alpha, 0)
	res := ProbeResult{Samples: samples}
	for i := 1; i <= samples; i++ {
		seq := uint64(i)
		before, tracked := store.LastOp(st, run)
		err := st.Save(run, seq, payload)
		res.Tracked = tracked
		var lat float64
		if tracked {
			if after, _ := store.LastOp(st, run); after.Ops > before.Ops {
				lat = after.Latency
			}
		}
		health.ObserveAttempt(err != nil)
		if err == nil {
			health.ObserveCommit(lat, 0)
		} else {
			res.Failures++
			health.ObserveCommit(0, lat)
		}
	}
	for i := 1; i <= samples; i++ {
		_ = st.Delete(run, uint64(i))
	}
	res.Estimate = health.OverheadEstimate()
	return res
}

// String summarizes the probe for CLI output.
func (r ProbeResult) String() string {
	return fmt.Sprintf("probe: %d samples, %d failures, overhead estimate %.6g (latency tracked: %v)",
		r.Samples, r.Failures, r.Estimate, r.Tracked)
}
