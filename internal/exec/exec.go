// Package exec is the crash-safe execution runtime: it runs checkpoint
// plans — chains and linearized DAGs alike, compiled to a Workload —
// against a live failure Source under a virtual clock, losing
// uncheckpointed progress on every failure exactly as the paper's model
// prescribes, persisting committed checkpoints through a pluggable
// store.Store, and recording a structured Journal of every attempt,
// failure, restore and checkpoint.
//
// The package's load-bearing property is replay determinism: because
// failure gaps are position-indexed (Source.State is just "which gap,
// how far into it") and the checkpoint payload round-trips every
// accumulator bit-exactly, a run that is killed at any point and
// resumed from the store produces a final journal byte-identical to the
// journal of an uninterrupted run. That is what makes the planned
// expectations of internal/core directly comparable to realized
// executions, crashes and all — and it is pinned by the crash-harness
// tests, which kill the executor at injected fault points (including
// torn writes and lost checkpoints from store.FaultStore) and diff the
// journals.
package exec

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/store"
)

// ErrCrashed is returned when an injected crash point (CrashAfterEvents
// or CrashAfterSaves) aborts the execution. State already persisted to
// the store is intact; re-invoking Execute resumes from it.
var ErrCrashed = errors.New("exec: injected crash")

// ErrTooManyFailures is returned when one execution exceeds its failure
// budget — the guard against configurations that cannot make progress.
var ErrTooManyFailures = errors.New("exec: failure budget exhausted; execution cannot make progress")

// ErrFingerprint is returned when a persisted checkpoint belongs to a
// different (workload, source) pair than the one being executed.
var ErrFingerprint = errors.New("exec: checkpoint fingerprint mismatch (different workload or failure source)")

// Metrics decomposes an execution, with the same fields and semantics
// as sim.RunStats so realized executions and simulated runs compare
// field-for-field.
type Metrics struct {
	// Makespan is the virtual wall-clock time of the whole execution.
	Makespan float64
	// Failures counts failure strikes (during work, checkpointing or
	// recovery).
	Failures int
	// Lost is wasted work and checkpoint time (rolled back on failure).
	Lost float64
	// Downtime is total downtime served.
	Downtime float64
	// RecoveryTime is total time in recoveries, failed attempts included.
	RecoveryTime float64
	// Useful is work plus checkpoint time that stuck.
	Useful float64
	// StoreOverhead is virtual time burned on the store side channel in
	// adaptive mode — injected save latency plus retry backoff delays. It
	// is included in Makespan but kept out of the sim.RunStats-aligned
	// fields above (always 0 outside adaptive mode).
	StoreOverhead float64
}

// Result is the outcome of one Execute call.
type Result struct {
	Metrics
	// Journal is the full structured record, including any prefix
	// restored from a checkpoint.
	Journal Journal
	// Checkpoints counts committed checkpoints in the journal.
	Checkpoints int
	// Saves counts store saves performed by this invocation.
	Saves int
	// Resumed reports whether state was restored from the store,
	// ResumeSeq which checkpoint sequence it was restored from, and
	// RestoredEvents how many journal events that checkpoint carried.
	Resumed        bool
	ResumeSeq      uint64
	RestoredEvents int
	// Replans counts online replans applied over the run's lifetime
	// (adaptive mode), GiveUps the commits whose save was abandoned,
	// Level the final degradation-ladder position, and MaxRewind the
	// worst crash-rewind exposure (virtual time between a moment of
	// execution and the last PERSISTED checkpoint) the run ever carried.
	Replans   int
	GiveUps   int
	Level     DegradeLevel
	MaxRewind float64
	// OverheadEstimate is the store-health EWMA estimate of
	// per-checkpoint overhead at run end (adaptive mode) — the
	// realized-telemetry figure a planner can feed back into a
	// latency-aware re-solve (see ProbeStore and ChainReplanner).
	OverheadEstimate float64
	// Epoch is the fencing epoch this invocation held, when the store
	// stack carries a lease layer (0 otherwise). A resumed run reports
	// a strictly higher epoch than the invocation it took over from.
	Epoch uint64
	// Syncs counts anti-entropy passes run at executor idle points,
	// SyncCopied the replica copies those passes wrote, and
	// SyncFailures the passes that could not fully converge (e.g.
	// mid-partition) and will be retried at the next idle point.
	Syncs        int
	SyncCopied   int
	SyncFailures int
}

// Options tunes an execution.
type Options struct {
	// RunID names the run in the store ("run" when empty).
	RunID string
	// Store persists checkpoints; nil disables persistence (the
	// execution model is unchanged — checkpoint costs are still paid).
	Store store.Store
	// Downtime is D, the failure-free delay after every failure.
	Downtime float64
	// MaxFailures bounds failures tolerated per invocation (0 means the
	// default of 10 million).
	MaxFailures int
	// SaveRetries is how many times a failed store Save or Load is
	// retried before giving up (0 means none). Retries matter under
	// store.FaultStore: transient injected faults succeed on retry,
	// exhausted retries surface the error.
	SaveRetries int
	// CrashAfterEvents, when positive, aborts with ErrCrashed as soon as
	// the journal holds that many events — a deterministic kill point
	// anywhere in the execution, including between a checkpoint event
	// and its save.
	CrashAfterEvents int
	// CrashAfterSaves, when positive, aborts with ErrCrashed right after
	// this invocation's n-th successful store save.
	CrashAfterSaves int
	// Adaptive, when non-nil, enables the degraded-store resilience
	// layer (health-tracked retries with backoff, online replanning,
	// failover and persistence-off — see AdaptiveOptions). Requires a
	// Store. SaveRetries is ignored in adaptive mode; Adaptive.Retry
	// governs retries instead.
	Adaptive *AdaptiveOptions
}

func (o Options) runID() string {
	if o.RunID == "" {
		return "run"
	}
	return o.RunID
}

func (o Options) maxFailures() int {
	if o.MaxFailures <= 0 {
		return 10_000_000
	}
	return o.MaxFailures
}

// executor is the state of one Execute invocation.
type executor struct {
	w    *Workload
	src  Source
	opts Options
	fp   uint64 // workload fingerprint mixed with source fingerprint

	t       float64 // virtual clock
	met     Metrics
	j       Journal
	attempt float64 // elapsed time of the in-flight attempt
	curSeg  int
	saves   int
	budget  int

	// Executor-local segment layout. Initially aliases the Workload's
	// arrays; online replans replace the slices wholesale (spliceAt), so
	// the shared Workload is never mutated.
	segStart, segEnd []int
	segCkpt, segRec  []float64

	// Adaptive-mode state; zero / unused when ad is nil.
	ad           *AdaptiveOptions
	store        store.Store // active store (primary, or secondary after failover)
	health       StoreHealth
	level        DegradeLevel
	consec       int // consecutive commit give-ups on the active store
	giveups      int // lifetime commit give-ups
	sinceDown    int // commits skipped since the last ride-out probe
	replans      int // replans applied (including replayed ones)
	lastOverhead float64
	lastReplanAt int64 // commit index of the last replan; −1 = never
	lastPersistT float64
	maxRewind    float64
	baseCost     float64

	// Anti-entropy pass counters (SyncEvery > 0); never journaled.
	syncs        int
	syncCopied   int
	syncFailures int

	// pending is the in-flight store overhead of the current save loop
	// (accrued latency + backoffs not yet folded into t). The virtual
	// clock bound to time-dependent store layers reads t + pending, so
	// retries and backoff advance delivery time mid-commit — an
	// execution backing off across a partition window's end observes
	// the heal. Always zero at state-encode time, so it never needs to
	// round-trip through the checkpoint.
	pending float64
}

// Execute runs the workload against src. With a store configured it
// first tries to resume from the latest loadable checkpoint (falling
// back to older ones past corrupt, lost or unreadable entries), then
// executes the remaining segments, persisting a checkpoint after each.
// On ErrCrashed (injected kill) or a store failure, the returned Result
// carries the partial journal; re-invoking Execute with the same
// arguments resumes and completes the run.
func Execute(w *Workload, src Source, opts Options) (*Result, error) {
	if opts.Downtime < 0 {
		return nil, fmt.Errorf("exec: negative downtime %v", opts.Downtime)
	}
	if w.Segments() == 0 {
		return nil, errors.New("exec: workload has no segments")
	}
	ex := &executor{
		w:      w,
		src:    src,
		opts:   opts,
		fp:     w.Fingerprint() ^ (src.Fingerprint() * 0x9e3779b97f4a7c15),
		budget: opts.maxFailures(),

		segStart: w.segStart,
		segEnd:   w.segEnd,
		segCkpt:  w.segCkpt,
		segRec:   w.segRec,
	}
	if opts.Adaptive != nil {
		if opts.Store == nil {
			return nil, errors.New("exec: adaptive mode requires a store")
		}
		ex.ad = opts.Adaptive
		ex.store = opts.Store
		ex.health = newStoreHealth(opts.Adaptive.Alpha, opts.Adaptive.Window)
		ex.lastReplanAt = -1
		ex.baseCost = ex.resolveBaseCost()
	}
	if opts.Store != nil {
		// Bind the run's virtual clock into every time-dependent store
		// layer (RemoteStore partition evaluation). The closure reads
		// the live executor clock plus any in-flight save overhead, so
		// delivery times track the commit's own retries.
		clock := func() float64 { return ex.t + ex.pending }
		store.BindClock(opts.Store, opts.runID(), clock)
		if opts.Adaptive != nil && opts.Adaptive.Secondary != nil {
			store.BindClock(opts.Adaptive.Secondary, opts.runID(), clock)
		}
	}
	res := &Result{}
	if opts.Store != nil {
		// Epoch-fenced writes: when the stack carries a lease layer,
		// claim the run before touching it. A fresh LeaseStore instance
		// (a new process) bumps the epoch, fencing every older writer's
		// saves; re-entering on the same instance (a zombie waking up)
		// keeps its stale session and is fenced on its first write.
		ls, leased, lerr := store.AcquireLease(opts.Store, opts.runID())
		if lerr != nil {
			return res, fmt.Errorf("exec: acquiring run lease: %w", lerr)
		}
		if leased {
			res.Epoch = ls.Epoch
		}
	}
	startSeg := 0
	st, raw, err := ex.loadResume()
	if err != nil {
		return res, err
	}
	if st != nil {
		ex.t = st.t
		ex.met = st.met
		ex.j = st.journal
		ex.src.Restore(st.src)
		startSeg = int(st.nextSeg)
		res.Resumed = true
		res.ResumeSeq = st.seq
		res.RestoredEvents = len(st.journal)
		if ex.ad != nil {
			if err := ex.restoreAdaptive(st); err != nil {
				return res, err
			}
		}
	}
	err = func() error {
		if st != nil && ex.ad != nil {
			// Re-save the restored payload through the normal post-encode
			// path. The save outcomes of commit k happen AFTER payload k is
			// encoded, so they are not inside it; re-saving against the
			// logically-keyed store stack regenerates the same outcome
			// events, clock overhead and ladder moves the uninterrupted run
			// produced at that commit.
			if err := ex.persist(st.seq, raw); err != nil {
				return err
			}
		}
		for s := startSeg; s < len(ex.segStart); s++ {
			if err := ex.runSegment(s); err != nil {
				return err
			}
			if err := ex.commit(s); err != nil {
				return err
			}
			// Anti-entropy at the executor's idle point between commits,
			// keyed to the absolute segment index so the cadence is
			// resume-invariant.
			if ex.ad != nil && ex.ad.SyncEvery > 0 && (s+1)%ex.ad.SyncEvery == 0 {
				ex.syncPass()
			}
		}
		if err := ex.event(Event{Kind: EvComplete, Time: ex.t}); err != nil {
			return err
		}
		// One final pass after completion so the run ends with every
		// replica it can reach converged.
		if ex.ad != nil && ex.ad.SyncEvery > 0 {
			ex.syncPass()
		}
		return nil
	}()
	ex.met.Makespan = ex.t
	if ex.ad != nil {
		ex.noteExposure()
	}
	res.Metrics = ex.met
	res.Journal = ex.j
	res.Checkpoints = ex.j.Count(EvCheckpoint)
	res.Saves = ex.saves
	res.Replans = ex.replans
	res.GiveUps = ex.giveups
	res.Level = ex.level
	res.MaxRewind = ex.maxRewind
	if ex.ad != nil {
		res.OverheadEstimate = ex.health.OverheadEstimate()
	}
	res.Syncs = ex.syncs
	res.SyncCopied = ex.syncCopied
	res.SyncFailures = ex.syncFailures
	return res, err
}

// syncPass runs one anti-entropy pass over the active store, best
// effort: failures are counted, not surfaced — a pass that could not
// converge (mid-partition) is retried at the next idle point, and the
// read path still repairs in the meantime. Nothing here journals or
// advances the virtual clock, so replay identity is untouched.
func (ex *executor) syncPass() {
	sy, ok := store.FindSyncer(ex.opts.Store)
	if !ok {
		return
	}
	rep, err := sy.SyncRun(ex.opts.runID())
	ex.syncs++
	ex.syncCopied += rep.Copied
	if err != nil {
		ex.syncFailures++
	}
}

// event appends to the journal and fires the event-count crash point.
func (ex *executor) event(e Event) error {
	ex.j = append(ex.j, e)
	if n := ex.opts.CrashAfterEvents; n > 0 && len(ex.j) >= n {
		return fmt.Errorf("exec: crash after %d journal events (t=%v): %w", len(ex.j), ex.t, ErrCrashed)
	}
	return nil
}

// piece advances the execution through d units of atomic progress
// (one task's work, or a segment's checkpoint phase). It returns done =
// true if the piece completed, done = false if a failure struck — in
// which case the failure, downtime and recovery (with possible repeated
// failures) have all been served and the attempt must restart.
func (ex *executor) piece(d float64) (done bool, err error) {
	if next := ex.src.NextFailure(); next >= d {
		ex.src.Advance(d)
		ex.t += d
		ex.attempt += d
		return true, nil
	} else {
		// Failure mid-piece: everything since the attempt started is lost.
		ex.src.ObserveFailure()
		ex.t += next
		ex.met.Lost += ex.attempt + next
		ex.attempt = 0
		if err := ex.strike(); err != nil {
			return false, err
		}
	}
	// Downtime is failure-free by assumption; process clocks frozen.
	ex.t += ex.opts.Downtime
	ex.met.Downtime += ex.opts.Downtime
	// Recovery: failures possible; repeat until one completes.
	rec := ex.segRec[ex.curSeg]
	for {
		if next := ex.src.NextFailure(); next >= rec {
			ex.src.Advance(rec)
			ex.t += rec
			ex.met.RecoveryTime += rec
			break
		} else {
			ex.src.ObserveFailure()
			ex.t += next
			ex.met.RecoveryTime += next
			if err := ex.strike(); err != nil {
				return false, err
			}
			ex.t += ex.opts.Downtime
			ex.met.Downtime += ex.opts.Downtime
		}
	}
	return false, ex.event(Event{Kind: EvRestored, Time: ex.t})
}

// strike accounts one failure: budget check plus journal event.
func (ex *executor) strike() error {
	ex.met.Failures++
	if ex.met.Failures > ex.budget {
		return ErrTooManyFailures
	}
	return ex.event(Event{Kind: EvFailure, Time: ex.t})
}

// runSegment executes segment s to a committed checkpoint event,
// restarting the attempt from the segment start after every failure.
func (ex *executor) runSegment(s int) error {
	ex.curSeg = s
	start, end := ex.segStart[s], ex.segEnd[s]
	for {
		ex.attempt = 0
		if err := ex.event(Event{Kind: EvSegmentStart, Time: ex.t, Arg: int32(start)}); err != nil {
			return err
		}
		failed := false
		for pos := start; pos <= end; pos++ {
			done, err := ex.piece(ex.w.Weights[pos])
			if err != nil {
				return err
			}
			if !done {
				failed = true
				break
			}
			if err := ex.event(Event{Kind: EvTaskDone, Time: ex.t, Arg: int32(ex.w.Order[pos])}); err != nil {
				return err
			}
		}
		if failed {
			continue
		}
		done, err := ex.piece(ex.segCkpt[s])
		if err != nil {
			return err
		}
		if done {
			ex.met.Useful += ex.attempt
			ex.attempt = 0
			return ex.event(Event{Kind: EvCheckpoint, Time: ex.t, Seq: uint64(s) + 1})
		}
	}
}

// commit persists the post-segment state. The EvCheckpoint event was
// already appended by runSegment, BEFORE the state is encoded here, so
// the event is always inside the persisted journal prefix: a resume
// from seq k replays from a journal that already records checkpoint k.
// In adaptive mode the commit additionally journals health, may replan,
// and routes the save through the retry policy and degradation ladder.
func (ex *executor) commit(s int) error {
	if ex.ad != nil {
		return ex.adaptiveCommit(s)
	}
	if ex.opts.Store == nil {
		return nil
	}
	seq := uint64(s) + 1
	payload := encodeState(ex.snapshot(seq, uint64(s)+1))
	var err error
	for try := 0; try <= ex.opts.SaveRetries; try++ {
		if err = ex.opts.Store.Save(ex.opts.runID(), seq, payload); err == nil {
			break
		}
		if ClassifyStoreError(err) != ClassTransient {
			// Retrying a permanent error (quota, corrupt entry) burns the
			// budget without any chance of success.
			return fmt.Errorf("exec: saving checkpoint %d: %w: %w", seq, ErrSavePermanent, err)
		}
	}
	if err != nil {
		return fmt.Errorf("exec: saving checkpoint %d: %w: %w", seq, ErrSaveExhausted, err)
	}
	ex.saves++
	if n := ex.opts.CrashAfterSaves; n > 0 && ex.saves >= n {
		return fmt.Errorf("exec: crash after %d checkpoint saves (t=%v): %w", ex.saves, ex.t, ErrCrashed)
	}
	return nil
}

// resumeCandidate is one listed checkpoint and the store holding it.
type resumeCandidate struct {
	seq       uint64
	secondary bool
}

// listOnce lists a run's checkpoints, riding out transient network
// loss: a lost list message surfaces as a timeout, and a retry is an
// independent draw (the network keys outcomes by attempt), so a small
// retry budget keeps a seeded message drop from killing a resume. A
// partition times out every attempt deterministically and still fails
// loudly after the budget. Like loads, list retries serve no backoff:
// resume happens outside the modeled timeline.
func (ex *executor) listOnce(st store.Store) ([]uint64, error) {
	seqs, err := st.List(ex.opts.runID())
	for extra := 0; errors.Is(err, store.ErrTimeout) && extra < 4; extra++ {
		seqs, err = st.List(ex.opts.runID())
	}
	return seqs, err
}

// listResume merges the primary's checkpoint listing with the
// secondary's (adaptive mode with a failover store), newest first,
// preferring the secondary on equal sequence numbers — the secondary
// only ever holds post-failover saves, which are the later writes.
func (ex *executor) listResume() ([]resumeCandidate, error) {
	seqs, err := ex.listOnce(ex.opts.Store)
	if err != nil {
		return nil, fmt.Errorf("exec: listing checkpoints: %w", err)
	}
	var sec []uint64
	if ex.ad != nil && ex.ad.Secondary != nil {
		if sec, err = ex.listOnce(ex.ad.Secondary); err != nil {
			return nil, fmt.Errorf("exec: listing secondary checkpoints: %w", err)
		}
	}
	cands := make([]resumeCandidate, 0, len(seqs)+len(sec))
	i, k := len(seqs)-1, len(sec)-1
	for i >= 0 || k >= 0 {
		switch {
		case i < 0 || (k >= 0 && sec[k] >= seqs[i]):
			if i >= 0 && sec[k] == seqs[i] {
				i--
			}
			cands = append(cands, resumeCandidate{seq: sec[k], secondary: true})
			k--
		default:
			cands = append(cands, resumeCandidate{seq: seqs[i]})
			i--
		}
	}
	return cands, nil
}

// loadOnce loads one checkpoint with retries: the legacy SaveRetries
// count, or — in adaptive mode — the retry policy's attempt limit.
// Backoff delays are NOT served: resume happens outside the modeled
// timeline (an uninterrupted run performs no loads), so load retries
// must not advance any clock.
func (ex *executor) loadOnce(st store.Store, seq uint64) ([]byte, error) {
	if ex.ad != nil {
		pol := ex.ad.retry()
		for attempt := 1; ; attempt++ {
			data, err := st.Load(ex.opts.runID(), seq)
			if err == nil {
				return data, nil
			}
			if ClassifyStoreError(err) != ClassTransient {
				return nil, err
			}
			if _, retry := pol.Backoff(attempt, 0); !retry {
				return nil, err
			}
		}
	}
	var data []byte
	var err error
	for try := 0; try <= ex.opts.SaveRetries; try++ {
		if data, err = st.Load(ex.opts.runID(), seq); err == nil {
			break
		}
	}
	return data, err
}

// loadResume finds the newest loadable, decodable checkpoint of this
// run, skipping past corrupt frames, injected read failures (after
// retries) and lost entries to older checkpoints, consulting the
// secondary store too when one is configured. It returns the decoded
// state together with the raw payload (the adaptive resume re-saves it)
// or nil with no error when the run has no usable checkpoint (fresh
// start). A fingerprint mismatch is a loud error: the store holds a
// different workload's state and silently restarting would mask it.
func (ex *executor) loadResume() (*execState, []byte, error) {
	if ex.opts.Store == nil {
		return nil, nil, nil
	}
	cands, err := ex.listResume()
	if err != nil {
		return nil, nil, err
	}
	for _, c := range cands {
		from := ex.opts.Store
		if c.secondary {
			from = ex.ad.Secondary
		}
		data, err := ex.loadOnce(from, c.seq)
		if errors.Is(err, store.ErrCorrupt) || errors.Is(err, store.ErrNotFound) ||
			errors.Is(err, store.ErrInjected) || errors.Is(err, store.ErrTimeout) {
			// Fall back to an older checkpoint. Timeouts included: a
			// partition active at resume time makes the newest entry
			// unreachable, not the run unresumable — replaying more is
			// always safe.
			continue
		}
		if err != nil {
			return nil, nil, fmt.Errorf("exec: loading checkpoint %d: %w", c.seq, err)
		}
		st, err := decodeState(data)
		if err != nil {
			return nil, nil, err
		}
		if st.fp != ex.fp {
			return nil, nil, fmt.Errorf("%w: checkpoint %d has %016x, want %016x",
				ErrFingerprint, c.seq, st.fp, ex.fp)
		}
		return st, data, nil
	}
	return nil, nil, nil
}

// execState is the decoded checkpoint payload: every accumulator the
// executor owns, bit-exact, plus the source position and the journal
// prefix. Bit-exact float round-tripping is what makes resumed
// accumulations identical to uninterrupted ones. The adaptive block
// (health, ladder, hysteresis anchors, exposure accounting) rides along
// as zeros for legacy runs.
type execState struct {
	fp      uint64
	seq     uint64
	nextSeg uint64
	t       float64
	met     Metrics
	src     SourceState
	journal Journal

	healthCommits  uint64
	healthEwmaLat  float64
	healthEwmaOver float64
	healthBits     uint64
	healthNbits    uint64
	healthAttempts uint64
	healthFailures uint64
	level          uint64
	consec         uint64
	giveups        uint64
	replans        uint64
	lastOverhead   float64
	lastReplanAt1  uint64 // commit index of last replan + 1; 0 = never
	lastPersistT   float64
	maxRewind      float64
	sinceDown      uint64
}

// stateSchema versions the checkpoint payload (inside the store codec's
// frame, which versions the framing itself). Schema 2 appended the
// adaptive block to schema 1's twelve slots, reusing slot 11 (reserved)
// for StoreOverhead; schema 3 appended the ride-out probe counter
// (sinceDown).
const stateSchema = 3

// stateHeaderSize is the fixed part of the payload before the journal.
const stateHeaderSize = 4 + 8*28

// encodeState serializes the checkpoint payload.
func encodeState(st *execState) []byte {
	out := make([]byte, stateHeaderSize, stateHeaderSize+8+len(st.journal)*eventSize)
	putU32(out, stateSchema)
	fields := [...]uint64{
		st.fp,
		st.seq,
		st.nextSeg,
		math.Float64bits(st.t),
		uint64(st.met.Failures),
		math.Float64bits(st.met.Lost),
		math.Float64bits(st.met.Downtime),
		math.Float64bits(st.met.RecoveryTime),
		math.Float64bits(st.met.Useful),
		st.src.Draws,
		math.Float64bits(st.src.Consumed),
		math.Float64bits(st.met.StoreOverhead),
		st.healthCommits,
		math.Float64bits(st.healthEwmaLat),
		math.Float64bits(st.healthEwmaOver),
		st.healthBits,
		st.healthNbits,
		st.healthAttempts,
		st.healthFailures,
		st.level,
		st.consec,
		st.giveups,
		st.replans,
		math.Float64bits(st.lastOverhead),
		st.lastReplanAt1,
		math.Float64bits(st.lastPersistT),
		math.Float64bits(st.maxRewind),
		st.sinceDown,
	}
	for i, v := range fields {
		putU64(out[4+8*i:], v)
	}
	return append(out, st.journal.Marshal()...)
}

// errState reports a malformed checkpoint payload — a schema mismatch
// or truncation that survived the store codec's CRC, i.e. a version
// skew rather than bit rot. It is loud, not skipped: resuming past it
// would silently discard real state.
var errState = errors.New("exec: malformed checkpoint payload")

// decodeState parses a checkpoint payload.
func decodeState(data []byte) (*execState, error) {
	if len(data) < stateHeaderSize {
		return nil, errState
	}
	if getU32(data) != stateSchema {
		return nil, fmt.Errorf("%w: schema %d, want %d", errState, getU32(data), stateSchema)
	}
	f := func(i int) uint64 { return getU64(data[4+8*i:]) }
	st := &execState{
		fp:      f(0),
		seq:     f(1),
		nextSeg: f(2),
		t:       math.Float64frombits(f(3)),
		met: Metrics{
			Failures:      int(f(4)),
			Lost:          math.Float64frombits(f(5)),
			Downtime:      math.Float64frombits(f(6)),
			RecoveryTime:  math.Float64frombits(f(7)),
			Useful:        math.Float64frombits(f(8)),
			StoreOverhead: math.Float64frombits(f(11)),
		},
		src: SourceState{Draws: f(9), Consumed: math.Float64frombits(f(10))},

		healthCommits:  f(12),
		healthEwmaLat:  math.Float64frombits(f(13)),
		healthEwmaOver: math.Float64frombits(f(14)),
		healthBits:     f(15),
		healthNbits:    f(16),
		healthAttempts: f(17),
		healthFailures: f(18),
		level:          f(19),
		consec:         f(20),
		giveups:        f(21),
		replans:        f(22),
		lastOverhead:   math.Float64frombits(f(23)),
		lastReplanAt1:  f(24),
		lastPersistT:   math.Float64frombits(f(25)),
		maxRewind:      math.Float64frombits(f(26)),
		sinceDown:      f(27),
	}
	j, err := UnmarshalJournal(data[stateHeaderSize:])
	if err != nil {
		return nil, err
	}
	st.journal = j
	return st, nil
}
