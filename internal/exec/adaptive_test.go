package exec

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/store"
)

// TestClassifyStoreError pins the error taxonomy the retry loops key
// off: transient faults retry, permanent faults degrade, fatal faults
// abort.
func TestClassifyStoreError(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want ErrorClass
	}{
		{"injected write", store.ErrInjectedWrite, ClassTransient},
		{"injected read", store.ErrInjectedRead, ClassTransient},
		{"wrapped injected", fmt.Errorf("save r/3: %w", store.ErrInjectedWrite), ClassTransient},
		{"unknown io error", errors.New("connection reset"), ClassTransient},
		{"quota", store.ErrQuota, ClassPermanent},
		{"wrapped quota", fmt.Errorf("save r/3: %w", store.ErrQuota), ClassPermanent},
		{"corrupt", store.ErrCorrupt, ClassPermanent},
		{"not found", store.ErrNotFound, ClassPermanent},
		{"fingerprint", fmt.Errorf("resume: %w", ErrFingerprint), ClassFatal},
		{"malformed state", fmt.Errorf("decode: %w", errState), ClassFatal},
		{"timeout", store.ErrTimeout, ClassTransient},
		{"wrapped timeout", fmt.Errorf("save r/3: %w", store.ErrTimeout), ClassTransient},
		{"quorum wrapping timeout", fmt.Errorf("save r/3: 1/2 replicas: %w: %w", store.ErrQuorum, store.ErrTimeout), ClassTransient},
		{"fenced", store.ErrFenced, ClassFatal},
		{"wrapped fenced", fmt.Errorf("save r/3: %w (epoch 2 supersedes 1)", store.ErrFenced), ClassFatal},
		{"lease expired", store.ErrLeaseExpired, ClassTransient},
		{"wrapped lease expired", fmt.Errorf("save r/3: %w: %w", store.ErrLeaseExpired, store.ErrTimeout), ClassTransient},
		{"lease held", store.ErrLeaseHeld, ClassTransient},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := ClassifyStoreError(c.err); got != c.want {
				t.Fatalf("ClassifyStoreError(%v) = %v, want %v", c.err, got, c.want)
			}
		})
	}
}

// TestLegacyCommitErrorWrapping pins the classified wrapping of the
// legacy (non-adaptive) save path: exhausted transient retries wrap
// ErrSaveExhausted, permanent errors wrap ErrSavePermanent without
// burning retries, and the underlying store sentinel stays reachable
// through errors.Is in both cases.
func TestLegacyCommitErrorWrapping(t *testing.T) {
	w := chainWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1) }
	cases := []struct {
		name    string
		store   store.Store
		wrapper error
		under   error
	}{
		{
			"transient exhausted",
			store.NewFaultStore(store.NewMemStore(), store.FaultPlan{Seed: 1, WriteFail: 1}),
			ErrSaveExhausted,
			store.ErrInjectedWrite,
		},
		{
			"permanent quota",
			store.NewQuotaStore(store.NewQuotaLedger(store.Quota{MaxBytes: 8}, nil), store.NewMemStore()),
			ErrSavePermanent,
			store.ErrQuota,
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Execute(w, src(), Options{Downtime: 1, Store: c.store, SaveRetries: 2})
			if !errors.Is(err, c.wrapper) {
				t.Fatalf("err = %v, want wrapped %v", err, c.wrapper)
			}
			if !errors.Is(err, c.under) {
				t.Fatalf("err = %v lost the underlying %v", err, c.under)
			}
		})
	}
}

// TestRetryPolicies pins each policy's full decision sequence.
func TestRetryPolicies(t *testing.T) {
	type step struct {
		attempt int
		spent   float64
		delay   float64
		retry   bool
	}
	cases := []struct {
		name  string
		pol   RetryPolicy
		steps []step
	}{
		{"none", NoRetry{}, []step{{1, 0, 0, false}}},
		{"fixed", FixedRetry{Attempts: 2}, []step{
			{1, 0, 0, true}, {2, 0, 0, true}, {3, 0, 0, false},
		}},
		{"exp capped", ExpBackoff{Base: 1, Factor: 2, Cap: 5, MaxAttempts: 4}, []step{
			{1, 0, 1, true}, {2, 0, 2, true}, {3, 0, 4, true}, {4, 0, 5, true}, {5, 0, 0, false},
		}},
		{"exp budget", ExpBackoff{Base: 4, MaxAttempts: 8, Budget: 10}, []step{
			{1, 0, 4, true}, {2, 9, 0, false},
		}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if c.pol.Name() == "" {
				t.Fatal("empty policy name")
			}
			for _, s := range c.steps {
				delay, retry := c.pol.Backoff(s.attempt, s.spent)
				if delay != s.delay || retry != s.retry {
					t.Fatalf("Backoff(%d, %v) = (%v, %v), want (%v, %v)",
						s.attempt, s.spent, delay, retry, s.delay, s.retry)
				}
			}
		})
	}
}

// TestStoreHealthObserver pins the EWMA seeding/update rule and the
// windowed failure rate.
func TestStoreHealthObserver(t *testing.T) {
	h := newStoreHealth(0.5, 4)
	h.ObserveCommit(2, 1)
	if h.EwmaLatency() != 2 || h.EwmaOverhead() != 1 || h.OverheadEstimate() != 3 {
		t.Fatalf("first commit did not seed: lat %v over %v", h.EwmaLatency(), h.EwmaOverhead())
	}
	h.ObserveCommit(4, 0)
	if h.EwmaLatency() != 3 || h.EwmaOverhead() != 0.5 {
		t.Fatalf("alpha=0.5 update wrong: lat %v over %v", h.EwmaLatency(), h.EwmaOverhead())
	}
	for _, failed := range []bool{true, false, true, true} {
		h.ObserveAttempt(failed)
	}
	if got := h.FailureRate(); got != 0.75 {
		t.Fatalf("FailureRate = %v, want 0.75", got)
	}
	for i := 0; i < 4; i++ {
		h.ObserveAttempt(false)
	}
	if got := h.FailureRate(); got != 0 {
		t.Fatalf("FailureRate after window rolled = %v, want 0 (window=4)", got)
	}
	if h.Attempts() != 8 || h.Failures() != 3 || h.Commits() != 2 {
		t.Fatalf("lifetime counters wrong: %d/%d/%d", h.Attempts(), h.Failures(), h.Commits())
	}
}

// TestChainReplannerSuffixes pins that a zero-overhead replan from the
// start reproduces the full DP solution exactly, and that inflated
// overhead never yields more checkpoints on this instance.
func TestChainReplannerSuffixes(t *testing.T) {
	cp, _ := chainProblem(t)
	full, err := core.SolveChainDP(cp)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cp.Segments(full.CheckpointAfter)
	if err != nil {
		t.Fatal(err)
	}
	got, err := ChainReplanner{CP: cp}.Replan(0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("zero-overhead replan: %d segments, want %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("segment %d: %+v, want %+v", i, got[i], want[i])
		}
	}
	inflated, err := ChainReplanner{CP: cp}.Replan(0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(inflated) > len(want) {
		t.Fatalf("overhead 5 increased checkpoints: %d > %d", len(inflated), len(want))
	}
	// True costs, not inflated ones, must appear in the output segments.
	for _, sg := range inflated {
		if sg.Checkpoint != cp.Ckpt[sg.End] {
			t.Fatalf("segment [%d,%d] carries checkpoint %v, want true cost %v",
				sg.Start, sg.End, sg.Checkpoint, cp.Ckpt[sg.End])
		}
	}
	// A mid-chain suffix covers exactly [from, n−1] contiguously.
	segs, err := ChainReplanner{CP: cp}.Replan(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	checkCover(t, segs, 4, cp.Len()-1)
	bounded, err := ChainReplanner{CP: cp, MaxCheckpoints: 2}.Replan(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(bounded) > 2 {
		t.Fatalf("bounded replan produced %d segments, cap 2", len(bounded))
	}
}

// checkCover asserts segments cover [from, last] contiguously.
func checkCover(t *testing.T, segs []core.Segment, from, last int) {
	t.Helper()
	want := from
	for _, sg := range segs {
		if sg.Start != want {
			t.Fatalf("segment starts at %d, want %d", sg.Start, want)
		}
		want = sg.End + 1
	}
	if want != last+1 {
		t.Fatalf("segments end at %d, want %d", want-1, last)
	}
}

// TestOrderReplannerBothModels pins the DAG suffix replanner under a
// start-independent model (routed through the chain portfolio) and the
// general live-set model (suffix recurrence with full-order cost-model
// calls): contiguous cover and true absolute-position costs.
func TestOrderReplannerBothModels(t *testing.T) {
	g, _ := diamondDAG(t)
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	m, err := expectation.NewModel(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range []core.CostModel{core.LastTaskCosts{R0: 0.5}, core.LiveSetCosts{R0: 0.5}} {
		t.Run(cm.Name(), func(t *testing.T) {
			r := OrderReplanner{G: g, Order: order, M: m, CM: cm}
			for _, from := range []int{0, 3, len(order) - 1} {
				segs, err := r.Replan(from, 1.5)
				if err != nil {
					t.Fatal(err)
				}
				checkCover(t, segs, from, len(order)-1)
				for _, sg := range segs {
					if want := cm.CheckpointCost(g, order, sg.Start, sg.End); sg.Checkpoint != want {
						t.Fatalf("[%d,%d]: checkpoint %v, want %v (absolute-position cost)",
							sg.Start, sg.End, sg.Checkpoint, want)
					}
					wantRec := cm.InitialRecovery()
					if sg.Start > 0 {
						wantRec = cm.RecoveryCost(g, order, sg.Start-1)
					}
					if sg.Recovery != wantRec {
						t.Fatalf("[%d,%d]: recovery %v, want %v", sg.Start, sg.End, sg.Recovery, wantRec)
					}
				}
			}
		})
	}
}

// legacyEvents filters a journal down to the event kinds the
// non-adaptive executor emits.
func legacyEvents(j Journal) Journal {
	var out Journal
	for _, e := range j {
		switch e.Kind {
		case EvHealth, EvReplan, EvSaveResult, EvDegrade:
		default:
			out = append(out, e)
		}
	}
	return out
}

// TestAdaptiveCleanStoreMatchesLegacy pins that on a healthy store the
// adaptive layer is pure observation: no overhead, no replans, no
// ladder moves, and the execution trajectory (the legacy event
// subsequence) is byte-identical to the non-adaptive run's.
func TestAdaptiveCleanStoreMatchesLegacy(t *testing.T) {
	cp, _ := chainProblem(t)
	w := chainWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1) }
	legacy, err := Execute(w, src(), Options{Downtime: 1, Store: store.Checked(store.NewMemStore())})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Execute(w, src(), Options{
		Downtime: 1, Store: store.Checked(store.NewMemStore()),
		Adaptive: &AdaptiveOptions{
			Retry:       ExpBackoff{Base: 0.5, Cap: 4},
			Replanner:   ChainReplanner{CP: cp},
			ReplanRatio: 1.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !legacyEvents(adaptive.Journal).Equal(legacy.Journal) {
		t.Fatal("adaptive run's execution trajectory differs on a healthy store")
	}
	if adaptive.StoreOverhead != 0 || adaptive.Replans != 0 || adaptive.GiveUps != 0 ||
		adaptive.Level != LevelHealthy {
		t.Fatalf("healthy store perturbed adaptivity: %+v", *adaptive)
	}
	if adaptive.Makespan != legacy.Makespan {
		t.Fatalf("makespan drifted: %v vs %v", adaptive.Makespan, legacy.Makespan)
	}
	if adaptive.Journal.Count(EvHealth) != w.Segments() ||
		adaptive.Journal.Count(EvSaveResult) != w.Segments() {
		t.Fatalf("expected one health + save-result event per commit: %d/%d",
			adaptive.Journal.Count(EvHealth), adaptive.Journal.Count(EvSaveResult))
	}
}

// TestAdaptiveReplanUnderDrift pins the tentpole behavior: a store
// whose injected latency dwarfs the planned checkpoint cost pushes
// C_eff out of the hysteresis band, the executor replans online, and
// the run finishes degraded with the overhead on the books.
func TestAdaptiveReplanUnderDrift(t *testing.T) {
	cp, _ := chainProblem(t)
	w := chainWorkload(t)
	src := NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1)
	st := store.Checked(store.NewFaultStore(store.NewMemStore(), store.FaultPlan{
		Seed: 9, MeanLatency: 3, LogicalKeys: true,
	}))
	res, err := Execute(w, src, Options{
		Downtime: 1, Store: st,
		Adaptive: &AdaptiveOptions{
			Retry:       ExpBackoff{Base: 0.5, Cap: 4},
			Replanner:   ChainReplanner{CP: cp},
			ReplanRatio: 1.5,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Replans == 0 {
		t.Fatal("3-unit latency against sub-unit checkpoint costs triggered no replan")
	}
	if res.Level != LevelDegraded {
		t.Fatalf("level = %v, want degraded", res.Level)
	}
	if res.StoreOverhead <= 0 {
		t.Fatal("no store overhead recorded")
	}
	if res.Journal.Count(EvReplan) != res.Replans {
		t.Fatalf("journal records %d replans, result says %d", res.Journal.Count(EvReplan), res.Replans)
	}
	if res.Journal.Count(EvComplete) != 1 {
		t.Fatal("run did not complete")
	}
}

// TestAdaptiveFailover pins the ladder's middle rung: a primary that
// rejects every write pushes the run to the secondary after the
// consecutive-give-up threshold, and the run completes with every
// checkpoint on the secondary.
func TestAdaptiveFailover(t *testing.T) {
	w := chainWorkload(t)
	src := NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1)
	primInner, secInner := store.NewMemStore(), store.NewMemStore()
	prim := store.Checked(store.NewFaultStore(primInner, store.FaultPlan{
		Seed: 14, WriteFail: 1, LogicalKeys: true,
	}))
	res, err := Execute(w, src, Options{
		Downtime: 1, Store: prim,
		Adaptive: &AdaptiveOptions{
			Retry:         FixedRetry{Attempts: 1},
			Secondary:     store.Checked(secInner),
			FailoverAfter: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelFailover {
		t.Fatalf("level = %v, want failover", res.Level)
	}
	if res.GiveUps != 2 {
		t.Fatalf("give-ups = %d, want exactly the failover threshold", res.GiveUps)
	}
	if got := res.Journal.Count(EvDegrade); got != 1 {
		t.Fatalf("%d degrade events, want 1", got)
	}
	if seqs, _ := primInner.List("run"); len(seqs) != 0 {
		t.Fatalf("primary holds %v despite WriteFail=1", seqs)
	}
	seqs, err := secInner.List("run")
	if err != nil || len(seqs) != w.Segments()-2 {
		t.Fatalf("secondary holds %v, want the %d post-failover checkpoints", seqs, w.Segments()-2)
	}
	// A fresh invocation resumes from the secondary and reproduces the
	// reference tail.
	again, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1), Options{
		Downtime: 1,
		Store: store.Checked(store.NewFaultStore(primInner, store.FaultPlan{
			Seed: 14, WriteFail: 1, LogicalKeys: true,
		})),
		Adaptive: &AdaptiveOptions{
			Retry:         FixedRetry{Attempts: 1},
			Secondary:     store.Checked(secInner),
			FailoverAfter: 2,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !again.Resumed || !again.Journal.Equal(res.Journal) {
		t.Fatalf("resume from secondary diverged (resumed=%v)", again.Resumed)
	}
}

// TestAdaptiveDownAndRewind pins the ladder's last rung: with no
// secondary and a store that never accepts a write, the run switches
// persistence off after DownAfter give-ups, keeps executing
// (checkpoint costs still paid — the model is unchanged), skips the
// remaining saves, and reports the accumulated rewind exposure.
func TestAdaptiveDownAndRewind(t *testing.T) {
	w := chainWorkload(t)
	src := NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1)
	st := store.Checked(store.NewFaultStore(store.NewMemStore(), store.FaultPlan{
		Seed: 3, WriteFail: 1, LogicalKeys: true,
	}))
	res, err := Execute(w, src, Options{
		Downtime: 1, Store: st,
		Adaptive: &AdaptiveOptions{Retry: FixedRetry{Attempts: 1}, DownAfter: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelDown {
		t.Fatalf("level = %v, want down", res.Level)
	}
	if res.Saves != 0 {
		t.Fatalf("saves = %d on an always-failing store", res.Saves)
	}
	if res.GiveUps != 2 {
		t.Fatalf("give-ups = %d, want DownAfter=2", res.GiveUps)
	}
	skipped := 0
	for _, e := range res.Journal {
		if e.Kind == EvSaveResult && int(e.Arg)&7 == saveCodeSkipped {
			skipped++
		}
	}
	if want := w.Segments() - 2; skipped != want {
		t.Fatalf("%d skipped saves, want %d", skipped, want)
	}
	if res.MaxRewind != res.Makespan {
		t.Fatalf("rewind exposure %v, want full makespan %v (nothing ever persisted)",
			res.MaxRewind, res.Makespan)
	}
	if res.Journal.Count(EvComplete) != 1 {
		t.Fatal("run did not complete checkpoint-free")
	}
}

// TestAdaptiveQuotaPermanent pins that a quota rejection is treated as
// permanent: no retries are burned, and the ladder reacts immediately.
func TestAdaptiveQuotaPermanent(t *testing.T) {
	w := chainWorkload(t)
	src := NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1)
	ledger := store.NewQuotaLedger(store.Quota{MaxBytes: 16}, nil)
	st := store.NewQuotaStore(ledger, store.Checked(store.NewMemStore()))
	res, err := Execute(w, src, Options{
		Downtime: 1, Store: st,
		Adaptive: &AdaptiveOptions{Retry: FixedRetry{Attempts: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Level != LevelDown {
		t.Fatalf("level = %v, want down (permanent error, no secondary)", res.Level)
	}
	if res.GiveUps != 1 {
		t.Fatalf("give-ups = %d, want 1 (immediate)", res.GiveUps)
	}
	for _, e := range res.Journal {
		if e.Kind == EvSaveResult && int(e.Arg)&7 == saveCodePermanent {
			if attempts := int(e.Arg) >> 3; attempts != 1 {
				t.Fatalf("permanent error burned %d attempts, want 1", attempts)
			}
			return
		}
	}
	t.Fatal("no permanent save-result event in journal")
}
