package exec

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/store"
)

// crashScenario names one (workload, source) pair for the harness.
type crashScenario struct {
	name string
	w    *Workload
	src  func() Source
}

// crashScenarios builds the acceptance matrix: a chain plan and a DAG
// plan under both cost models, each against a keyed exponential source.
func crashScenarios(t *testing.T) []crashScenario {
	t.Helper()
	g, plan := diamondDAG(t)
	var out []crashScenario
	out = append(out, crashScenario{
		name: "chain",
		w:    chainWorkload(t),
		src:  func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 101, 1) },
	})
	for _, cm := range []core.CostModel{core.LastTaskCosts{R0: 0.5}, core.LiveSetCosts{R0: 0.5}} {
		w, err := NewDAGWorkload(g, plan, cm)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, crashScenario{
			name: "dag/" + cm.Name(),
			w:    w,
			src:  func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.05}, 101, 2) },
		})
	}
	return out
}

// runToCompletion drives the executor through a sequence of injected
// kill points: each invocation crashes at its kill point (or dies on an
// exhausted-retries store error, which the harness treats the same
// way), and the next invocation resumes from whatever the store holds.
// After the kill list is exhausted, a final clean invocation completes
// the run. It returns the final result and the number of invocations
// that actually crashed.
func runToCompletion(t *testing.T, sc crashScenario, st store.Store, kills []int, retries int) (*Result, int) {
	t.Helper()
	crashes := 0
	for _, kill := range kills {
		_, err := Execute(sc.w, sc.src(), Options{
			RunID: "acceptance", Store: st, Downtime: 1,
			SaveRetries: retries, CrashAfterEvents: kill,
		})
		switch {
		case err == nil:
			// The kill point landed past the end of the run; nothing to
			// resume, later kill points would also miss.
			return nil, crashes
		case errors.Is(err, ErrCrashed) || errors.Is(err, store.ErrInjected):
			crashes++
		default:
			t.Fatalf("kill@%d: unexpected error: %v", kill, err)
		}
	}
	res, err := Execute(sc.w, sc.src(), Options{
		RunID: "acceptance", Store: st, Downtime: 1, SaveRetries: retries,
	})
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	return res, crashes
}

// TestCrashResumeBitIdenticalJournals is the acceptance property of the
// whole runtime: for chain and DAG plans under both cost models, an
// execution killed at several distinct injected points and resumed each
// time from the durable file store finishes with a journal
// byte-identical to the uninterrupted run's, and identical metrics.
func TestCrashResumeBitIdenticalJournals(t *testing.T) {
	for _, sc := range crashScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref, err := Execute(sc.w, sc.src(), Options{Downtime: 1})
			if err != nil {
				t.Fatal(err)
			}
			n := len(ref.Journal)
			if n < 10 {
				t.Fatalf("reference journal too short (%d events) to place 3 kill points", n)
			}
			// Three strictly increasing kill points inside the run, plus
			// one killing between the final checkpoint event and
			// completion.
			kills := []int{n / 5, 2 * n / 5, 7 * n / 10, n - 1}
			fs, err := store.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			res, crashes := runToCompletion(t, sc, store.Checked(fs), kills, 0)
			if res == nil {
				t.Fatal("kill points missed the run entirely")
			}
			if crashes < 3 {
				t.Fatalf("only %d crashes injected, want ≥ 3", crashes)
			}
			if !res.Resumed {
				t.Fatal("final invocation did not resume from the store")
			}
			if !res.Journal.Equal(ref.Journal) {
				t.Fatalf("resumed journal differs from uninterrupted run:\nresumed %d events, reference %d",
					len(res.Journal), len(ref.Journal))
			}
			if res.Metrics != ref.Metrics {
				t.Fatalf("resumed metrics differ: %+v vs %+v", res.Metrics, ref.Metrics)
			}
		})
	}
}

// TestCrashResumeUnderFaultInjection repeats the acceptance property
// with a hostile store: injected clean write failures, torn writes
// (detected by the codec on resume), silent loss of old checkpoints and
// transient read failures. Retries absorb what they can; resume falls
// back past what they cannot; the final journal must still be
// byte-identical to the undisturbed reference.
func TestCrashResumeUnderFaultInjection(t *testing.T) {
	for _, sc := range crashScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref, err := Execute(sc.w, sc.src(), Options{Downtime: 1})
			if err != nil {
				t.Fatal(err)
			}
			n := len(ref.Journal)
			for _, plan := range []store.FaultPlan{
				{Seed: 1, WriteFail: 0.3},
				{Seed: 2, TornWrite: 0.4},
				{Seed: 3, LoseOld: 0.8},
				{Seed: 4, ReadFail: 0.3},
				{Seed: 5, WriteFail: 0.15, TornWrite: 0.15, LoseOld: 0.4, ReadFail: 0.15, MeanLatency: 2},
			} {
				fs, err := store.NewFileStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				faulty := store.NewFaultStore(fs, plan)
				kills := []int{n / 6, n / 3, n / 2, 4 * n / 5}
				res, crashes := runToCompletion(t, sc, store.Checked(faulty), kills, 4)
				if res == nil {
					t.Fatalf("plan %+v: kill points missed the run", plan)
				}
				if crashes < 3 {
					t.Fatalf("plan %+v: only %d crashes", plan, crashes)
				}
				if !res.Journal.Equal(ref.Journal) {
					t.Fatalf("plan %+v: resumed journal differs from reference", plan)
				}
				if res.Metrics != ref.Metrics {
					t.Fatalf("plan %+v: metrics differ: %+v vs %+v", plan, res.Metrics, ref.Metrics)
				}
			}
		})
	}
}

// TestCrashAfterSavesKillPoint covers the save-count kill point: the
// crash lands immediately after a successful save, the resume picks up
// exactly there.
func TestCrashAfterSavesKillPoint(t *testing.T) {
	w := chainWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 55, 1) }
	ref, err := Execute(w, src(), Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := store.Checked(store.NewMemStore())
	// Crash after every single save: each invocation advances exactly one
	// segment past its resume point.
	for i := 0; i < w.Segments()-1; i++ {
		_, err := Execute(w, src(), Options{Store: st, Downtime: 1, CrashAfterSaves: 1})
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash %d: %v, want ErrCrashed", i, err)
		}
	}
	res, err := Execute(w, src(), Options{Store: st, Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.ResumeSeq != uint64(w.Segments()-1) {
		t.Fatalf("resumed=%v seq=%d, want resume from seq %d", res.Resumed, res.ResumeSeq, w.Segments()-1)
	}
	if !res.Journal.Equal(ref.Journal) {
		t.Fatal("journal differs after save-count crashes")
	}
	// The planned expectation is still what the realized run decomposes
	// against; a resumed run reports the same makespan as the reference.
	if res.Makespan != ref.Makespan {
		t.Fatalf("makespan %v != reference %v", res.Makespan, ref.Makespan)
	}
}
