package exec

import (
	"errors"
	"testing"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/store"
)

// crashScenario names one (workload, source) pair for the harness.
type crashScenario struct {
	name string
	w    *Workload
	src  func() Source
}

// crashScenarios builds the acceptance matrix: a chain plan and a DAG
// plan under both cost models, each against a keyed exponential source.
func crashScenarios(t *testing.T) []crashScenario {
	t.Helper()
	g, plan := diamondDAG(t)
	var out []crashScenario
	out = append(out, crashScenario{
		name: "chain",
		w:    chainWorkload(t),
		src:  func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 101, 1) },
	})
	for _, cm := range []core.CostModel{core.LastTaskCosts{R0: 0.5}, core.LiveSetCosts{R0: 0.5}} {
		w, err := NewDAGWorkload(g, plan, cm)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, crashScenario{
			name: "dag/" + cm.Name(),
			w:    w,
			src:  func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.05}, 101, 2) },
		})
	}
	return out
}

// runToCompletion drives the executor through a sequence of injected
// kill points: each invocation crashes at its kill point (or dies on an
// exhausted-retries store error, which the harness treats the same
// way), and the next invocation resumes from whatever the store holds.
// After the kill list is exhausted, a final clean invocation completes
// the run. It returns the final result and the number of invocations
// that actually crashed.
func runToCompletion(t *testing.T, sc crashScenario, st store.Store, kills []int, retries int) (*Result, int) {
	t.Helper()
	crashes := 0
	for _, kill := range kills {
		_, err := Execute(sc.w, sc.src(), Options{
			RunID: "acceptance", Store: st, Downtime: 1,
			SaveRetries: retries, CrashAfterEvents: kill,
		})
		switch {
		case err == nil:
			// The kill point landed past the end of the run; nothing to
			// resume, later kill points would also miss.
			return nil, crashes
		case errors.Is(err, ErrCrashed) || errors.Is(err, store.ErrInjected):
			crashes++
		default:
			t.Fatalf("kill@%d: unexpected error: %v", kill, err)
		}
	}
	res, err := Execute(sc.w, sc.src(), Options{
		RunID: "acceptance", Store: st, Downtime: 1, SaveRetries: retries,
	})
	if err != nil {
		t.Fatalf("final resume: %v", err)
	}
	return res, crashes
}

// TestCrashResumeBitIdenticalJournals is the acceptance property of the
// whole runtime: for chain and DAG plans under both cost models, an
// execution killed at several distinct injected points and resumed each
// time from the durable file store finishes with a journal
// byte-identical to the uninterrupted run's, and identical metrics.
func TestCrashResumeBitIdenticalJournals(t *testing.T) {
	for _, sc := range crashScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref, err := Execute(sc.w, sc.src(), Options{Downtime: 1})
			if err != nil {
				t.Fatal(err)
			}
			n := len(ref.Journal)
			if n < 10 {
				t.Fatalf("reference journal too short (%d events) to place 3 kill points", n)
			}
			// Three strictly increasing kill points inside the run, plus
			// one killing between the final checkpoint event and
			// completion.
			kills := []int{n / 5, 2 * n / 5, 7 * n / 10, n - 1}
			fs, err := store.NewFileStore(t.TempDir())
			if err != nil {
				t.Fatal(err)
			}
			res, crashes := runToCompletion(t, sc, store.Checked(fs), kills, 0)
			if res == nil {
				t.Fatal("kill points missed the run entirely")
			}
			if crashes < 3 {
				t.Fatalf("only %d crashes injected, want ≥ 3", crashes)
			}
			if !res.Resumed {
				t.Fatal("final invocation did not resume from the store")
			}
			if !res.Journal.Equal(ref.Journal) {
				t.Fatalf("resumed journal differs from uninterrupted run:\nresumed %d events, reference %d",
					len(res.Journal), len(ref.Journal))
			}
			if res.Metrics != ref.Metrics {
				t.Fatalf("resumed metrics differ: %+v vs %+v", res.Metrics, ref.Metrics)
			}
		})
	}
}

// TestCrashResumeUnderFaultInjection repeats the acceptance property
// with a hostile store: injected clean write failures, torn writes
// (detected by the codec on resume), silent loss of old checkpoints and
// transient read failures. Retries absorb what they can; resume falls
// back past what they cannot; the final journal must still be
// byte-identical to the undisturbed reference.
func TestCrashResumeUnderFaultInjection(t *testing.T) {
	for _, sc := range crashScenarios(t) {
		t.Run(sc.name, func(t *testing.T) {
			ref, err := Execute(sc.w, sc.src(), Options{Downtime: 1})
			if err != nil {
				t.Fatal(err)
			}
			n := len(ref.Journal)
			for _, plan := range []store.FaultPlan{
				{Seed: 1, WriteFail: 0.3},
				{Seed: 2, TornWrite: 0.4},
				{Seed: 3, LoseOld: 0.8},
				{Seed: 4, ReadFail: 0.3},
				{Seed: 5, WriteFail: 0.15, TornWrite: 0.15, LoseOld: 0.4, ReadFail: 0.15, MeanLatency: 2},
			} {
				fs, err := store.NewFileStore(t.TempDir())
				if err != nil {
					t.Fatal(err)
				}
				faulty := store.NewFaultStore(fs, plan)
				kills := []int{n / 6, n / 3, n / 2, 4 * n / 5}
				res, crashes := runToCompletion(t, sc, store.Checked(faulty), kills, 4)
				if res == nil {
					t.Fatalf("plan %+v: kill points missed the run", plan)
				}
				if crashes < 3 {
					t.Fatalf("plan %+v: only %d crashes", plan, crashes)
				}
				if !res.Journal.Equal(ref.Journal) {
					t.Fatalf("plan %+v: resumed journal differs from reference", plan)
				}
				if res.Metrics != ref.Metrics {
					t.Fatalf("plan %+v: metrics differ: %+v vs %+v", plan, res.Metrics, ref.Metrics)
				}
			}
		})
	}
}

// adaptiveDrill is one degraded-store kill/resume scenario: a workload,
// a fault plan (logical keys — required so a fresh injector deals a
// resumed run the same outcomes the uninterrupted run saw), an optional
// quota and secondary, a retry policy and optionally a replanner.
type adaptiveDrill struct {
	name      string
	w         *Workload
	src       func() Source
	plan      store.FaultPlan
	quota     *store.Quota
	secondary bool
	retry     RetryPolicy
	replanner func() Replanner
}

// adaptiveStack is one scenario's persistent storage: the inner stores
// and quota ledger survive invocations, while the fault-injecting
// wrapper is rebuilt per invocation — process-restart semantics, which
// resets the injector's logical attempt counters exactly as the
// contract requires.
type adaptiveStack struct {
	d      adaptiveDrill
	mem    *store.MemStore
	sec    *store.MemStore
	ledger *store.QuotaLedger
}

func newAdaptiveStack(d adaptiveDrill) *adaptiveStack {
	a := &adaptiveStack{d: d, mem: store.NewMemStore()}
	if d.secondary {
		a.sec = store.NewMemStore()
	}
	if d.quota != nil {
		a.ledger = store.NewQuotaLedger(*d.quota, nil)
	}
	return a
}

func (a *adaptiveStack) options(crashEvents int) Options {
	prim := store.Store(store.Checked(store.NewFaultStore(a.mem, a.d.plan)))
	if a.ledger != nil {
		prim = store.NewQuotaStore(a.ledger, prim)
	}
	ad := &AdaptiveOptions{
		Retry:         a.d.retry,
		ReplanRatio:   1.4,
		FailoverAfter: 2,
		DownAfter:     3,
	}
	if a.d.replanner != nil {
		ad.Replanner = a.d.replanner()
	}
	if a.sec != nil {
		ad.Secondary = store.Checked(a.sec)
	}
	return Options{
		RunID: "acceptance", Store: prim, Downtime: 1,
		CrashAfterEvents: crashEvents, Adaptive: ad,
	}
}

// adaptiveDrills builds the degraded-store scenario matrix: chain plans
// under drift+replan with exponential backoff and with fixed retries,
// a quota that runs out mid-run, an always-failing primary with
// failover, a no-retry ladder collapse, and a DAG live-set plan with
// the order replanner.
func adaptiveDrills(t *testing.T) []adaptiveDrill {
	t.Helper()
	cp, _ := chainProblem(t)
	chainSrc := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 101, 1) }
	chainRP := func() Replanner { return ChainReplanner{CP: cp} }
	g, plan := diamondDAG(t)
	cm := core.LiveSetCosts{R0: 0.5}
	dagW, err := NewDAGWorkload(g, plan, cm)
	if err != nil {
		t.Fatal(err)
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	m, err := expectation.NewModel(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	return []adaptiveDrill{
		{
			name: "chain/drift-exp-backoff", w: chainWorkload(t), src: chainSrc,
			plan:  store.FaultPlan{Seed: 11, MeanLatency: 2.5, WriteFail: 0.2, ReadFail: 0.1, LogicalKeys: true},
			retry: ExpBackoff{Base: 0.5, Cap: 4, MaxAttempts: 5}, replanner: chainRP,
		},
		{
			name: "chain/torn-fixed-retry", w: chainWorkload(t), src: chainSrc,
			plan:  store.FaultPlan{Seed: 12, MeanLatency: 1.5, WriteFail: 0.3, TornWrite: 0.2, LogicalKeys: true},
			retry: FixedRetry{Attempts: 3}, replanner: chainRP,
		},
		{
			name: "chain/quota-down", w: chainWorkload(t), src: chainSrc,
			plan:  store.FaultPlan{Seed: 13, MeanLatency: 1, LogicalKeys: true},
			quota: &store.Quota{MaxCheckpoints: 2},
			retry: ExpBackoff{Base: 0.5, MaxAttempts: 3}, replanner: chainRP,
		},
		{
			name: "chain/failover", w: chainWorkload(t), src: chainSrc,
			plan:      store.FaultPlan{Seed: 14, WriteFail: 1, LogicalKeys: true},
			secondary: true, retry: FixedRetry{Attempts: 1}, replanner: chainRP,
		},
		{
			name: "chain/no-retry", w: chainWorkload(t), src: chainSrc,
			plan:  store.FaultPlan{Seed: 15, MeanLatency: 1, WriteFail: 0.25, LogicalKeys: true},
			retry: NoRetry{},
		},
		{
			name: "dag/live-set-drift", w: dagW,
			src:   func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.05}, 101, 2) },
			plan:  store.FaultPlan{Seed: 16, MeanLatency: 2, WriteFail: 0.2, LogicalKeys: true},
			retry: ExpBackoff{Base: 0.5, Cap: 4, MaxAttempts: 4},
			replanner: func() Replanner {
				return OrderReplanner{G: g, Order: order, M: m, CM: cm}
			},
		},
	}
}

// TestAdaptiveCrashResumeEveryEventPoint is the resilience acceptance
// property (the resume-under-backoff matrix): for every degraded-store
// scenario, a run killed at EVERY possible journal length and resumed
// once finishes with a journal byte-identical to the uninterrupted
// run's — retries, backoff, replans, quota rejections, failover and
// persistence-off included. In adaptive mode store trouble degrades
// rather than errors out, so a single clean resume always completes.
func TestAdaptiveCrashResumeEveryEventPoint(t *testing.T) {
	for _, d := range adaptiveDrills(t) {
		t.Run(d.name, func(t *testing.T) {
			refStack := newAdaptiveStack(d)
			ref, err := Execute(d.w, d.src(), refStack.options(0))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Journal.Count(EvComplete) != 1 {
				t.Fatal("reference run did not complete")
			}
			n := len(ref.Journal)
			for kill := 1; kill <= n; kill++ {
				stack := newAdaptiveStack(d)
				_, err := Execute(d.w, d.src(), stack.options(kill))
				if err == nil {
					t.Fatalf("kill@%d did not crash a %d-event run", kill, n)
				}
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("kill@%d: unexpected error: %v", kill, err)
				}
				res, err := Execute(d.w, d.src(), stack.options(0))
				if err != nil {
					t.Fatalf("kill@%d: resume: %v", kill, err)
				}
				if !res.Journal.Equal(ref.Journal) {
					t.Fatalf("kill@%d: resumed journal differs from reference (%d vs %d events)",
						kill, len(res.Journal), len(ref.Journal))
				}
				if res.Metrics != ref.Metrics {
					t.Fatalf("kill@%d: metrics differ: %+v vs %+v", kill, res.Metrics, ref.Metrics)
				}
			}
		})
	}
}

// TestCrashAfterSavesKillPoint covers the save-count kill point: the
// crash lands immediately after a successful save, the resume picks up
// exactly there.
func TestCrashAfterSavesKillPoint(t *testing.T) {
	w := chainWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 55, 1) }
	ref, err := Execute(w, src(), Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	st := store.Checked(store.NewMemStore())
	// Crash after every single save: each invocation advances exactly one
	// segment past its resume point.
	for i := 0; i < w.Segments()-1; i++ {
		_, err := Execute(w, src(), Options{Store: st, Downtime: 1, CrashAfterSaves: 1})
		if !errors.Is(err, ErrCrashed) {
			t.Fatalf("crash %d: %v, want ErrCrashed", i, err)
		}
	}
	res, err := Execute(w, src(), Options{Store: st, Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Resumed || res.ResumeSeq != uint64(w.Segments()-1) {
		t.Fatalf("resumed=%v seq=%d, want resume from seq %d", res.Resumed, res.ResumeSeq, w.Segments()-1)
	}
	if !res.Journal.Equal(ref.Journal) {
		t.Fatal("journal differs after save-count crashes")
	}
	// The planned expectation is still what the realized run decomposes
	// against; a resumed run reports the same makespan as the reference.
	if res.Makespan != ref.Makespan {
		t.Fatalf("makespan %v != reference %v", res.Makespan, ref.Makespan)
	}
}
