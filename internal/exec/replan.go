package exec

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
)

// Replanner re-solves the remaining suffix of a plan when the observed
// effective checkpoint cost drifts from the planned one. Replan must be
// a PURE function of (from, overhead): the executor records each replan
// in the journal as an EvReplan{from, overhead} event and a resumed run
// reconstructs the spliced plan by replaying those events, so a
// replanner that consulted anything else would break replay identity.
//
// The returned segments cover positions [from, n−1] of the original
// execution order with ABSOLUTE positions and the plan's TRUE
// checkpoint/recovery costs — overhead inflates the costs only inside
// the optimization, because the executor keeps paying the planned C in
// the model and observes store overhead separately.
type Replanner interface {
	// Name identifies the replanner in summaries.
	Name() string
	// Replan re-solves positions [from, n−1] under a per-checkpoint
	// store overhead estimate.
	Replan(from int, overhead float64) ([]core.Segment, error)
}

// ChainReplanner re-solves chain suffixes through the chain-DP solver
// portfolio (SolveChainDP / SolveChainDPBounded — kernel, monotone and
// bounded arms included, exactly the solvers the initial plan came
// from).
type ChainReplanner struct {
	// CP is the full original chain problem.
	CP *core.ChainProblem
	// MaxCheckpoints, when positive, bounds the checkpoints of each
	// re-solved suffix (SolveChainDPBounded).
	MaxCheckpoints int
}

// Name identifies the replanner.
func (r ChainReplanner) Name() string { return "chain-dp" }

// Replan solves the suffix chain problem with Ckpt inflated by overhead
// for the decision, then rebuilds the chosen segments with the true
// costs.
func (r ChainReplanner) Replan(from int, overhead float64) ([]core.Segment, error) {
	n := r.CP.Len()
	if from < 0 || from >= n {
		return nil, fmt.Errorf("exec: replan frontier %d out of range [0, %d)", from, n)
	}
	if overhead < 0 {
		return nil, fmt.Errorf("exec: negative replan overhead %v", overhead)
	}
	initRec := r.CP.InitialRecovery
	if from > 0 {
		initRec = r.CP.Rec[from-1]
	}
	inflated := make([]float64, n-from)
	for i := range inflated {
		inflated[i] = r.CP.Ckpt[from+i] + overhead
	}
	decide := &core.ChainProblem{
		Weights:         r.CP.Weights[from:],
		Ckpt:            inflated,
		Rec:             r.CP.Rec[from:],
		InitialRecovery: initRec,
		Model:           r.CP.Model,
	}
	var (
		res core.ChainResult
		err error
	)
	if r.MaxCheckpoints > 0 {
		res, err = core.SolveChainDPBounded(decide, r.MaxCheckpoints)
	} else {
		res, err = core.SolveChainDP(decide)
	}
	if err != nil {
		return nil, fmt.Errorf("exec: replanning chain suffix [%d:]: %w", from, err)
	}
	exact := &core.ChainProblem{
		Weights:         r.CP.Weights[from:],
		Ckpt:            r.CP.Ckpt[from:],
		Rec:             r.CP.Rec[from:],
		InitialRecovery: initRec,
		Model:           r.CP.Model,
	}
	segs, err := exact.Segments(res.CheckpointAfter)
	if err != nil {
		return nil, err
	}
	for i := range segs {
		segs[i].Start += from
		segs[i].End += from
	}
	return segs, nil
}

// OrderReplanner re-solves DAG-plan suffixes along the FIXED original
// linearization: the order is never re-linearized (executed prefixes
// pin it), only the checkpoint placement over the remaining positions
// is re-decided. Start-independent cost models route through the chain
// solver portfolio on a positional suffix problem; general models
// (LiveSetCosts) run the same Proposition-3 recurrence restricted to
// the suffix, with every cost-model call made against the FULL order at
// absolute positions — a suffix sub-order would distort live sets.
type OrderReplanner struct {
	// G and Order are the graph and the plan's linearization.
	G     *dag.Graph
	Order []int
	// M carries λ and D; CM is the cost model the plan was solved under.
	M  expectation.Model
	CM core.CostModel
}

// Name identifies the replanner.
func (r OrderReplanner) Name() string { return "order-dp/" + r.CM.Name() }

// recoveryAt returns the recovery cost of the checkpoint preceding
// position x under the cost model.
func (r OrderReplanner) recoveryAt(x int) float64 {
	if x == 0 {
		return r.CM.InitialRecovery()
	}
	return r.CM.RecoveryCost(r.G, r.Order, x-1)
}

// Replan re-decides checkpoints over positions [from, n−1].
func (r OrderReplanner) Replan(from int, overhead float64) ([]core.Segment, error) {
	n := len(r.Order)
	if from < 0 || from >= n {
		return nil, fmt.Errorf("exec: replan frontier %d out of range [0, %d)", from, n)
	}
	if overhead < 0 {
		return nil, fmt.Errorf("exec: negative replan overhead %v", overhead)
	}
	if si, ok := r.CM.(core.StartIndependentCosts); ok && si.CheckpointCostStartIndependent() {
		return r.replanPositional(from, overhead)
	}
	return r.replanGeneral(from, overhead)
}

// replanPositional builds the positional suffix problem (valid because
// checkpoint cost ignores the segment start) and reuses the chain
// solver portfolio.
func (r OrderReplanner) replanPositional(from int, overhead float64) ([]core.Segment, error) {
	n := len(r.Order)
	cp := &core.ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: r.CM.InitialRecovery(),
		Model:           r.M,
	}
	for i, id := range r.Order {
		cp.Weights[i] = r.G.Task(id).Weight
		cp.Ckpt[i] = r.CM.CheckpointCost(r.G, r.Order, i, i)
		cp.Rec[i] = r.CM.RecoveryCost(r.G, r.Order, i)
	}
	return ChainReplanner{CP: cp}.Replan(from, overhead)
}

// replanGeneral runs the suffix DP with full-order cost-model calls:
// E[x] = min over j ≥ x of ExpectedTime(w(x..j), C(x, j)+overhead,
// R(x)) + E[j+1], reconstructing the argmin segmentation and rebuilding
// it with the true costs.
func (r OrderReplanner) replanGeneral(from int, overhead float64) ([]core.Segment, error) {
	n := len(r.Order)
	weights := make([]float64, n)
	for i, id := range r.Order {
		weights[i] = r.G.Task(id).Weight
	}
	best := make([]float64, n-from+1)
	choice := make([]int, n-from)
	best[n-from] = 0
	for x := n - 1; x >= from; x-- {
		rec := r.recoveryAt(x)
		bx := math.Inf(1)
		var w float64
		cx := -1
		for j := x; j < n; j++ {
			w += weights[j]
			c := r.CM.CheckpointCost(r.G, r.Order, x, j) + overhead
			v := r.M.ExpectedTime(w, c, rec) + best[j+1-from]
			if v < bx {
				bx = v
				cx = j
			}
		}
		best[x-from] = bx
		choice[x-from] = cx
	}
	var segs []core.Segment
	for x := from; x < n; {
		j := choice[x-from]
		var w float64
		for i := x; i <= j; i++ {
			w += weights[i]
		}
		segs = append(segs, core.Segment{
			Start:      x,
			End:        j,
			Work:       w,
			Checkpoint: r.CM.CheckpointCost(r.G, r.Order, x, j),
			Recovery:   r.recoveryAt(x),
		})
		x = j + 1
	}
	return segs, nil
}

var (
	_ Replanner = ChainReplanner{}
	_ Replanner = OrderReplanner{}
)
