package exec

import (
	"hash/fnv"
	"math"

	"repro/internal/failure"
	"repro/internal/rng"
)

// Source is the failure process the executor runs against: a
// failure.Process whose position is capturable and restorable, so an
// execution checkpoint can pin "which failure gap we are in and how much
// of it is consumed" and a resumed run continues the exact same
// stochastic trajectory. Fingerprint identifies the source's seed
// material; the executor stores it (mixed with the workload fingerprint)
// in every checkpoint and refuses to resume against a different source.
type Source interface {
	failure.Process
	// State captures the source's position.
	State() SourceState
	// Restore repositions the source. Restore(State()) is a no-op;
	// restoring a state captured earlier rewinds deterministically.
	Restore(SourceState)
	// Fingerprint identifies the source's identity (kind, distribution,
	// seed material) — NOT its position.
	Fingerprint() uint64
}

// SourceState is a source's position: how many gaps have been fully
// consumed (= failures observed or gaps advanced through) and how much
// of the current gap has elapsed.
type SourceState struct {
	// Draws counts completed gaps.
	Draws uint64
	// Consumed is the elapsed part of the current gap.
	Consumed float64
}

// KeyedSource is the executor's default failure source: gap i is drawn
// from the stateless keyed stream rng.New(seed).Keyed(salt).Keyed(i+1),
// so the i-th inter-failure gap depends only on (seed, salt, i) — never
// on how the executor got there. That position-indexed determinism is
// what makes rewind/replay exact: a resumed run restored to
// (draws, consumed) sees the same remaining failure sequence the
// uninterrupted run saw, with no stream state to reconstruct.
//
// Semantics mirror failure.ExponentialProcess: Advance consumes the
// announced gap and redraws a fresh one when the residual hits zero
// (for the memoryless Exponential law the two are distributionally
// identical; for other laws this source models gaps that restart at
// renewal points, same as the platform-level process abstraction).
type KeyedSource struct {
	dist       failure.Distribution
	seed, salt uint64
	draws      uint64
	consumed   float64
	gap        float64
}

// NewKeyedSource returns a keyed source over dist. salt distinguishes
// independent runs under one seed (campaigns key it by run index).
func NewKeyedSource(dist failure.Distribution, seed, salt uint64) *KeyedSource {
	k := &KeyedSource{dist: dist, seed: seed, salt: salt}
	k.gap = k.gapAt(0)
	return k
}

// gapAt draws gap i from its private keyed stream.
func (k *KeyedSource) gapAt(i uint64) float64 {
	return k.dist.Sample(rng.New(k.seed).Keyed(k.salt).Keyed(i + 1))
}

// NextFailure returns the residual of the current gap.
func (k *KeyedSource) NextFailure() float64 { return k.gap - k.consumed }

// ObserveFailure moves to the next gap.
func (k *KeyedSource) ObserveFailure() {
	k.draws++
	k.consumed = 0
	k.gap = k.gapAt(k.draws)
}

// Advance consumes dt of the current gap, moving to the next gap when
// the residual reaches zero (failure.ExponentialProcess semantics).
func (k *KeyedSource) Advance(dt float64) {
	k.consumed += dt
	if k.consumed >= k.gap {
		k.draws++
		k.consumed = 0
		k.gap = k.gapAt(k.draws)
	}
}

// Rate returns λ for Exponential laws and 0 otherwise.
func (k *KeyedSource) Rate() float64 {
	if e, ok := k.dist.(failure.Exponential); ok {
		return e.Lambda
	}
	return 0
}

// Reset rewinds to gap zero.
func (k *KeyedSource) Reset() {
	k.draws = 0
	k.consumed = 0
	k.gap = k.gapAt(0)
}

// State captures the position.
func (k *KeyedSource) State() SourceState {
	return SourceState{Draws: k.draws, Consumed: k.consumed}
}

// Restore repositions the source.
func (k *KeyedSource) Restore(st SourceState) {
	k.draws = st.Draws
	k.consumed = st.Consumed
	k.gap = k.gapAt(k.draws)
}

// Fingerprint hashes (kind, distribution, seed, salt).
func (k *KeyedSource) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte("keyed:"))
	h.Write([]byte(k.dist.String()))
	var b [16]byte
	putU64(b[:8], k.seed)
	putU64(b[8:], k.salt)
	h.Write(b[:])
	return h.Sum64()
}

// TraceSource replays a fixed recorded gap sequence — the executor's
// trace-replay mode, the Process-level analogue of
// failure.ReplayTrace. Past the end of the recording it announces an
// infinite gap (no further failures) and sets the exhausted flag, which
// callers must check: an exhausted replay means the recording was
// shorter than the execution that consumed it, so the failure-free tail
// is an artifact of the trace, not of the platform.
//
// Advance mirrors failure.TraceCursor: it consumes the current gap and
// clamps — it never skips to the next gap, so a fully consumed gap
// yields an immediate failure on the next attempt, exactly as a cursor
// replay in sim.Run does. That is what makes executor trace replays
// failure-for-failure identical to simulator replays of the same gaps.
type TraceSource struct {
	gaps      []float64
	rate      float64
	idx       uint64
	consumed  float64
	exhausted bool
}

// NewTraceSource replays gaps; rate is the nominal platform rate for
// Rate() (0 when unknown).
func NewTraceSource(gaps []float64, rate float64) *TraceSource {
	return &TraceSource{gaps: gaps, rate: rate}
}

// NextFailure returns the residual of the current gap, or +Inf past the
// end of the recording.
func (t *TraceSource) NextFailure() float64 {
	if t.idx >= uint64(len(t.gaps)) {
		t.exhausted = true
		return math.Inf(1)
	}
	rem := t.gaps[t.idx] - t.consumed
	if rem < 0 {
		return 0
	}
	return rem
}

// ObserveFailure moves to the next recorded gap.
func (t *TraceSource) ObserveFailure() {
	t.idx++
	t.consumed = 0
}

// Advance consumes dt of the current gap without ever skipping gaps
// (TraceCursor semantics; see the type comment).
func (t *TraceSource) Advance(dt float64) { t.consumed += dt }

// Rate returns the nominal rate.
func (t *TraceSource) Rate() float64 { return t.rate }

// Exhausted reports whether the execution asked for gaps beyond the
// recording.
func (t *TraceSource) Exhausted() bool { return t.exhausted }

// Reset rewinds to the first gap.
func (t *TraceSource) Reset() {
	t.idx = 0
	t.consumed = 0
	t.exhausted = false
}

// State captures the position.
func (t *TraceSource) State() SourceState {
	return SourceState{Draws: t.idx, Consumed: t.consumed}
}

// Restore repositions the replay.
func (t *TraceSource) Restore(st SourceState) {
	t.idx = st.Draws
	t.consumed = st.Consumed
	t.exhausted = false
}

// Fingerprint hashes the recorded gaps and rate.
func (t *TraceSource) Fingerprint() uint64 {
	h := fnv.New64a()
	h.Write([]byte("trace:"))
	var b [8]byte
	putU64(b[:], uint64(len(t.gaps)))
	h.Write(b[:])
	for _, g := range t.gaps {
		putU64(b[:], math.Float64bits(g))
		h.Write(b[:])
	}
	putU64(b[:], math.Float64bits(t.rate))
	h.Write(b[:])
	return h.Sum64()
}

var (
	_ Source             = (*KeyedSource)(nil)
	_ Source             = (*TraceSource)(nil)
	_ failure.Resettable = (*KeyedSource)(nil)
	_ failure.Resettable = (*TraceSource)(nil)
)

// putU64 writes v little-endian into b[:8].
func putU64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
