package exec

import (
	"errors"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/sim"
	"repro/internal/store"
)

// chainProblem builds a small heterogeneous chain problem with a
// non-trivial checkpoint vector.
func chainProblem(t *testing.T) (*core.ChainProblem, []bool) {
	t.Helper()
	m, err := expectation.NewModel(0.08, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	cp := &core.ChainProblem{
		Weights:         []float64{3, 1, 4, 1, 5, 9, 2, 6, 5, 3.5},
		Ckpt:            []float64{0.5, 1, 0.25, 0.75, 0.5, 1.25, 0.5, 1, 0.25, 0.5},
		Rec:             []float64{0.4, 0.8, 0.2, 0.6, 0.4, 1.0, 0.4, 0.8, 0.2, 0.4},
		InitialRecovery: 0.3,
		Model:           m,
	}
	ck := []bool{false, true, false, false, true, false, true, false, false, true}
	return cp, ck
}

func chainWorkload(t *testing.T) *Workload {
	t.Helper()
	cp, ck := chainProblem(t)
	w, err := NewChainWorkload(cp, ck)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func approx(a, b, rel float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return math.Abs(a-b) <= rel*math.Max(scale, 1)
}

// TestChainWorkloadPlannedMatchesMakespan pins that the workload's
// Planned is bit-identical to the chain evaluator's Makespan.
func TestChainWorkloadPlannedMatchesMakespan(t *testing.T) {
	cp, ck := chainProblem(t)
	w := chainWorkload(t)
	want, err := cp.Makespan(ck)
	if err != nil {
		t.Fatal(err)
	}
	if got := w.Planned(cp.Model); got != want {
		t.Fatalf("Planned = %v, Makespan = %v", got, want)
	}
}

// TestExecuteParityWithSim drives the executor and sim.Run over the
// identical segmentation with identical failure sources: failure counts
// must match exactly, the time decomposition up to float re-association
// (the executor advances task-by-task, the simulator attempt-by-attempt).
func TestExecuteParityWithSim(t *testing.T) {
	w := chainWorkload(t)
	segs := w.CoreSegments()
	const d = 1.5
	for seed := uint64(1); seed <= 50; seed++ {
		rs, err := sim.Run(segs, NewKeyedSource(failure.Exponential{Lambda: 0.08}, seed, 1), sim.Options{Downtime: d})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.08}, seed, 1), Options{Downtime: d})
		if err != nil {
			t.Fatal(err)
		}
		if res.Failures != rs.Failures {
			t.Fatalf("seed %d: failures %d, sim %d", seed, res.Failures, rs.Failures)
		}
		pairs := [][2]float64{
			{res.Makespan, rs.Makespan},
			{res.Lost, rs.Lost},
			{res.Downtime, rs.Downtime},
			{res.RecoveryTime, rs.RecoveryTime},
			{res.Useful, rs.Useful},
		}
		for i, p := range pairs {
			if !approx(p[0], p[1], 1e-9) {
				t.Fatalf("seed %d: metric %d: exec %v, sim %v", seed, i, p[0], p[1])
			}
		}
		if res.Checkpoints != w.Segments() {
			t.Fatalf("seed %d: %d checkpoints, want %d", seed, res.Checkpoints, w.Segments())
		}
		if res.Journal.Count(EvComplete) != 1 {
			t.Fatalf("seed %d: journal not completed", seed)
		}
	}
}

// TestTraceParityWithSim pins failure-for-failure parity between the
// executor's trace-replay mode and a simulator replay of the same gaps.
func TestTraceParityWithSim(t *testing.T) {
	w := chainWorkload(t)
	segs := w.CoreSegments()
	// Record plenty of exponential gaps, then replay them both ways.
	src := NewKeyedSource(failure.Exponential{Lambda: 0.08}, 99, 7)
	gaps := make([]float64, 400)
	for i := range gaps {
		gaps[i] = src.gapAt(uint64(i))
	}
	rs, err := sim.Run(segs, NewTraceSource(gaps, 0.08), sim.Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := NewTraceSource(gaps, 0.08)
	res, err := Execute(w, ts, Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failures != rs.Failures {
		t.Fatalf("failures %d, sim %d", res.Failures, rs.Failures)
	}
	if !approx(res.Makespan, rs.Makespan, 1e-9) {
		t.Fatalf("makespan %v, sim %v", res.Makespan, rs.Makespan)
	}
	if ts.Exhausted() {
		t.Fatal("400 gaps exhausted unexpectedly")
	}
}

// TestTraceExhaustion pins the trace-replay exhaustion contract: a
// too-short recording completes failure-free past its end and the
// source flags it.
func TestTraceExhaustion(t *testing.T) {
	w := chainWorkload(t)
	ts := NewTraceSource([]float64{2.5}, 0.08)
	res, err := Execute(w, ts, Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !ts.Exhausted() {
		t.Fatal("single-gap trace not flagged exhausted")
	}
	if res.Failures != 1 {
		t.Fatalf("failures = %d, want exactly the one recorded gap", res.Failures)
	}
}

// TestFailureBudget pins the non-termination guard.
func TestFailureBudget(t *testing.T) {
	w := chainWorkload(t)
	gaps := make([]float64, 100)
	for i := range gaps {
		gaps[i] = 0.01 // far shorter than any piece: no progress possible
	}
	_, err := Execute(w, NewTraceSource(gaps, 0), Options{Downtime: 0, MaxFailures: 5})
	if !errors.Is(err, ErrTooManyFailures) {
		t.Fatalf("err = %v, want ErrTooManyFailures", err)
	}
}

// TestKeyedSourceRestoreRewinds pins the position-indexed determinism
// that replay correctness rests on: restoring an earlier state replays
// the exact same residual sequence.
func TestKeyedSourceRestoreRewinds(t *testing.T) {
	src := NewKeyedSource(failure.Exponential{Lambda: 0.5}, 11, 3)
	src.Advance(0.7)
	src.ObserveFailure()
	src.Advance(1.3)
	mark := src.State()
	var tail []float64
	for i := 0; i < 10; i++ {
		tail = append(tail, src.NextFailure())
		src.ObserveFailure()
	}
	src.Restore(mark)
	for i := 0; i < 10; i++ {
		if got := src.NextFailure(); got != tail[i] {
			t.Fatalf("replayed residual %d = %v, want %v", i, got, tail[i])
		}
		src.ObserveFailure()
	}
}

// TestStoreDoesNotPerturbExecution pins that attaching a store changes
// nothing about the trajectory: journals with and without persistence
// are byte-identical.
func TestStoreDoesNotPerturbExecution(t *testing.T) {
	w := chainWorkload(t)
	bare, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1), Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	stored, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1), Options{
		Downtime: 1, Store: store.Checked(store.NewMemStore()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bare.Journal.Equal(stored.Journal) {
		t.Fatal("journal differs with a store attached")
	}
	if stored.Saves != w.Segments() {
		t.Fatalf("saves = %d, want %d", stored.Saves, w.Segments())
	}
}

// TestResumeFingerprintMismatch pins the loud failure on resuming a
// different workload's checkpoints.
func TestResumeFingerprintMismatch(t *testing.T) {
	w := chainWorkload(t)
	st := store.NewMemStore()
	if _, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 1), Options{Downtime: 1, Store: st}); err != nil {
		t.Fatal(err)
	}
	// Same store, different salt → different source fingerprint.
	_, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.08}, 5, 2), Options{Downtime: 1, Store: st})
	if !errors.Is(err, ErrFingerprint) {
		t.Fatalf("err = %v, want ErrFingerprint", err)
	}
}

// TestJournalRoundTrip pins the canonical encoding.
func TestJournalRoundTrip(t *testing.T) {
	j := Journal{
		{Kind: EvSegmentStart, Time: 0, Arg: 0},
		{Kind: EvTaskDone, Time: 1.25, Arg: 3},
		{Kind: EvFailure, Time: 2.5},
		{Kind: EvRestored, Time: 4.75},
		{Kind: EvCheckpoint, Time: 9.5, Seq: 1},
		{Kind: EvComplete, Time: 9.5},
	}
	got, err := UnmarshalJournal(j.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(j) {
		t.Fatalf("round trip lost events: %v vs %v", got, j)
	}
	if j.Hash() == Journal(nil).Hash() {
		t.Fatal("hash does not separate journals")
	}
	for _, bad := range [][]byte{nil, {1, 2, 3}, j.Marshal()[:len(j.Marshal())-1]} {
		if _, err := UnmarshalJournal(bad); err == nil {
			t.Fatalf("malformed encoding %v accepted", bad)
		}
	}
}

// TestCampaignMatchesPlanned is the statistical planned-vs-realized
// check in miniature: the campaign mean must sit within a few standard
// errors of the exact expectation.
func TestCampaignMatchesPlanned(t *testing.T) {
	cp, _ := chainProblem(t)
	w := chainWorkload(t)
	res, err := Campaign(w, failure.Exponential{Lambda: cp.Model.Lambda}, CampaignOptions{
		Runs: 4000, Seed: 17, Downtime: cp.Model.Downtime,
	})
	if err != nil {
		t.Fatal(err)
	}
	planned := w.Planned(cp.Model)
	if diff := math.Abs(res.Makespan.Mean() - planned); diff > 4*res.Makespan.StdErr() {
		t.Fatalf("realized %v vs planned %v: off by %v > 4·stderr %v",
			res.Makespan.Mean(), planned, diff, 4*res.Makespan.StdErr())
	}
	if res.Failures.Mean() <= 0 {
		t.Fatal("campaign saw no failures; parameters too tame to validate anything")
	}
}

// TestCampaignDeterministic pins bit-identical campaign results for a
// fixed (seed, workers) pair.
func TestCampaignDeterministic(t *testing.T) {
	w := chainWorkload(t)
	run := func() CampaignResult {
		res, err := Campaign(w, failure.Exponential{Lambda: 0.08}, CampaignOptions{
			Runs: 500, Seed: 23, Workers: 4, Downtime: 1.5,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Makespan.Mean() != b.Makespan.Mean() || a.Failures.Mean() != b.Failures.Mean() {
		t.Fatalf("campaign not deterministic: %v vs %v", a, b)
	}
}

// diamondDAG builds a small fork-join DAG with heterogeneous costs.
func diamondDAG(t *testing.T) (*dag.Graph, core.Plan) {
	t.Helper()
	g := dag.New()
	weights := []float64{2, 3, 1.5, 4, 2.5, 1, 3.5, 2}
	ids := make([]int, len(weights))
	for i, wt := range weights {
		ids[i] = g.MustAddTask(dag.Task{
			Name:       "t",
			Weight:     wt,
			Checkpoint: 0.25 * float64(i%3+1),
			Recovery:   0.2 * float64(i%2+1),
		})
	}
	// 0 fans out to 1..3, which feed 4..6, all joining at 7.
	for _, mid := range ids[1:4] {
		g.MustAddEdge(ids[0], mid)
	}
	for i, late := range ids[4:7] {
		g.MustAddEdge(ids[1+i], late)
		g.MustAddEdge(late, ids[7])
	}
	order, err := g.TopologicalOrder()
	if err != nil {
		t.Fatal(err)
	}
	plan, err := core.NewPlan(order, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g, plan
}

// TestDAGWorkloadBothCostModels pins that DAG plans compile and execute
// under both cost models, with segment costs matching the model's
// arithmetic.
func TestDAGWorkloadBothCostModels(t *testing.T) {
	g, plan := diamondDAG(t)
	m, err := expectation.NewModel(0.05, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, cm := range []core.CostModel{
		core.LastTaskCosts{R0: 0.5},
		core.LiveSetCosts{R0: 0.5},
	} {
		w, err := NewDAGWorkload(g, plan, cm)
		if err != nil {
			t.Fatalf("%s: %v", cm.Name(), err)
		}
		if w.Segments() != plan.NumCheckpoints() {
			t.Fatalf("%s: %d segments, want %d", cm.Name(), w.Segments(), plan.NumCheckpoints())
		}
		res, err := Execute(w, NewKeyedSource(failure.Exponential{Lambda: 0.05}, 3, 1), Options{Downtime: 1})
		if err != nil {
			t.Fatalf("%s: %v", cm.Name(), err)
		}
		if res.Checkpoints != w.Segments() || res.Journal.Count(EvComplete) != 1 {
			t.Fatalf("%s: incomplete execution: %+v", cm.Name(), res)
		}
		// Every TaskDone Arg must be a task of the order.
		done := 0
		for _, e := range res.Journal {
			if e.Kind == EvTaskDone {
				done++
			}
		}
		if done < g.Len() {
			t.Fatalf("%s: only %d task completions for %d tasks", cm.Name(), done, g.Len())
		}
		if w.Planned(m) <= g.TotalWeight() {
			t.Fatalf("%s: planned %v not above failure-free weight", cm.Name(), w.Planned(m))
		}
	}
}
