package exec

import (
	"bytes"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
)

// EventKind classifies journal events.
type EventKind uint8

// Journal event kinds. The numeric values are part of the checkpoint
// wire format — append new kinds, never renumber.
const (
	// EvSegmentStart opens an attempt at a segment; Arg is the segment's
	// first position in the order. Emitted once per attempt, so a segment
	// hit by k failures contributes k+1 of these.
	EvSegmentStart EventKind = iota + 1
	// EvTaskDone records completion of one task; Arg is the task ID.
	EvTaskDone
	// EvFailure records a failure strike; Time is the failure instant.
	EvFailure
	// EvRestored records the completion of downtime + recovery after a
	// failure; execution state is back at the last checkpoint.
	EvRestored
	// EvCheckpoint records a committed checkpoint; Seq is its sequence
	// number. The event is appended before the state is encoded, so it is
	// always part of the persisted journal prefix.
	EvCheckpoint
	// EvComplete closes the journal; Time is the final makespan.
	EvComplete
	// EvHealth records the store-health estimate at a commit, BEFORE the
	// state is encoded (adaptive mode only): Arg is the degradation
	// level, Seq holds Float64bits of the effective checkpoint-cost
	// estimate C_eff the replan decision is about to use.
	EvHealth
	// EvReplan records an online replan spliced at the frontier, BEFORE
	// the state is encoded: Arg is the frontier position (first
	// unexecuted position), Seq holds Float64bits of the per-checkpoint
	// overhead the suffix was re-solved with. A resume reconstructs the
	// spliced plan by replaying these events through the configured
	// replanner.
	EvReplan
	// EvSaveResult records the outcome of one commit's save, AFTER the
	// state was encoded (so it lands in the NEXT checkpoint's persisted
	// prefix, and a resume regenerates it by re-saving the restored
	// payload): Arg packs attempts<<3 | outcome code (see saveCode*),
	// Seq holds Float64bits of the commit's total store overhead
	// (injected latency + backoff delays), Time is the clock after that
	// overhead was served.
	EvSaveResult
	// EvDegrade records a post-save degradation-ladder move (failover to
	// the secondary store, persistence-off, or re-admission of a down
	// store by a successful ride-out probe): Arg is the new level.
	EvDegrade
)

// String names the kind.
func (k EventKind) String() string {
	switch k {
	case EvSegmentStart:
		return "segment-start"
	case EvTaskDone:
		return "task-done"
	case EvFailure:
		return "failure"
	case EvRestored:
		return "restored"
	case EvCheckpoint:
		return "checkpoint"
	case EvComplete:
		return "complete"
	case EvHealth:
		return "health"
	case EvReplan:
		return "replan"
	case EvSaveResult:
		return "save-result"
	case EvDegrade:
		return "degrade"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one journal entry. Time is the virtual clock at the event;
// Arg and Seq are kind-specific (see the kind constants). The zero
// fields of unused slots are written as zeros so the encoding is a pure
// function of the event.
type Event struct {
	Kind EventKind
	Time float64
	Arg  int32
	Seq  uint64
}

// Journal is the structured record of one execution: every attempt,
// task completion, failure, restore and checkpoint, in order. Its
// Marshal encoding is canonical — byte-for-byte equality of marshaled
// journals is the replay-determinism acceptance criterion ("a resumed
// run is indistinguishable from an uninterrupted one").
type Journal []Event

// eventSize is the fixed wire size of one event:
// kind u8 | time f64 | arg i32 | seq u64.
const eventSize = 1 + 8 + 4 + 8

// Marshal encodes the journal canonically: u64 count, then fixed-width
// little-endian events.
func (j Journal) Marshal() []byte {
	out := make([]byte, 8+len(j)*eventSize)
	putU64(out, uint64(len(j)))
	off := 8
	for _, e := range j {
		out[off] = byte(e.Kind)
		putU64(out[off+1:], math.Float64bits(e.Time))
		putU32(out[off+9:], uint32(e.Arg))
		putU64(out[off+13:], e.Seq)
		off += eventSize
	}
	return out
}

// errJournal reports a malformed journal encoding.
var errJournal = errors.New("exec: malformed journal encoding")

// UnmarshalJournal decodes a canonical journal encoding.
func UnmarshalJournal(data []byte) (Journal, error) {
	if len(data) < 8 {
		return nil, errJournal
	}
	n := getU64(data)
	if n > uint64((len(data)-8)/eventSize) || len(data) != 8+int(n)*eventSize {
		return nil, errJournal
	}
	j := make(Journal, n)
	off := 8
	for i := range j {
		j[i] = Event{
			Kind: EventKind(data[off]),
			Time: math.Float64frombits(getU64(data[off+1:])),
			Arg:  int32(getU32(data[off+9:])),
			Seq:  getU64(data[off+13:]),
		}
		off += eventSize
	}
	return j, nil
}

// Equal reports byte-for-byte equality of the canonical encodings.
func (j Journal) Equal(other Journal) bool {
	return bytes.Equal(j.Marshal(), other.Marshal())
}

// Hash returns a 64-bit digest of the canonical encoding, for compact
// journal-identity assertions in experiment output.
func (j Journal) Hash() uint64 {
	h := fnv.New64a()
	h.Write(j.Marshal())
	return h.Sum64()
}

// Count returns the number of events of the given kind.
func (j Journal) Count(kind EventKind) int {
	n := 0
	for _, e := range j {
		if e.Kind == kind {
			n++
		}
	}
	return n
}

// putU32 writes v little-endian into b[:4].
func putU32(b []byte, v uint32) {
	_ = b[3]
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

// getU32 reads a little-endian u32 from b[:4].
func getU32(b []byte) uint32 {
	_ = b[3]
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

// getU64 reads a little-endian u64 from b[:8].
func getU64(b []byte) uint64 {
	_ = b[7]
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}
