package exec

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/store"
)

// partitionStack is one partition drill's persistent storage: replica
// mem stores survive invocations while the network and every wrapper
// are rebuilt per invocation — process-restart semantics, resetting
// the network's logical attempt counters exactly as the replay
// contract requires.
type partitionStack struct {
	netCfg netsim.Config
	quorum bool
	mems   []*store.MemStore
}

func newPartitionStack(netCfg netsim.Config, quorum bool) *partitionStack {
	n := 1
	if quorum {
		n = 3
	}
	mems := make([]*store.MemStore, n)
	for i := range mems {
		mems[i] = store.NewMemStore()
	}
	return &partitionStack{netCfg: netCfg, quorum: quorum, mems: mems}
}

func (p *partitionStack) build() store.Store {
	net := netsim.New(p.netCfg)
	if !p.quorum {
		return store.Checked(store.NewRemoteStore(p.mems[0], net, p.netCfg,
			store.RemoteConfig{Remote: "s0", Timeout: 1.5}))
	}
	reps := make([]store.Store, len(p.mems))
	for i := range p.mems {
		reps[i] = store.Checked(store.NewRemoteStore(p.mems[i], net, p.netCfg,
			store.RemoteConfig{Remote: fmt.Sprintf("s%d", i), Timeout: 1.5}))
	}
	q, err := store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
	if err != nil {
		panic(err)
	}
	return q
}

// partitionProblem is a chain dense in checkpoints: partition drills
// need commits frequent enough that a window contains several of them
// (ladder goes down) and several more follow the heal (ride-out probe
// re-admits).
func partitionProblem(t *testing.T) *core.ChainProblem {
	t.Helper()
	m, err := expectation.NewModel(0.08, 1)
	if err != nil {
		t.Fatal(err)
	}
	const n = 14
	cp := &core.ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: 0.2,
		Model:           m,
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = 1.5
		cp.Ckpt[i] = 0.3
		cp.Rec[i] = 0.25
	}
	return cp
}

// partitionWorkload is partitionProblem with a checkpoint after every
// segment.
func partitionWorkload(t *testing.T) *Workload {
	t.Helper()
	cp := partitionProblem(t)
	ck := make([]bool, len(cp.Weights))
	for i := range ck {
		ck[i] = true
	}
	w, err := NewChainWorkload(cp, ck)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func (p *partitionStack) options(t *testing.T, crashEvents int) Options {
	return Options{
		RunID: "acceptance", Store: p.build(), Downtime: 1,
		CrashAfterEvents: crashEvents,
		Adaptive: &AdaptiveOptions{
			Retry:       ExpBackoff{Base: 0.25, Cap: 0.5, MaxAttempts: 3},
			Replanner:   ChainReplanner{CP: partitionProblem(t)},
			ReplanRatio: 1.4,
			DownAfter:   2,
			ProbeEvery:  2,
		},
	}
}

// partitionNetCfg schedules a partition window across the middle of
// the run, isolating endpoint s0. For the single-store drill that is
// THE store — the executor is on the minority side and must ride the
// window out; for the quorum drill it is one replica of three — the
// majority side keeps committing.
func partitionNetCfg(start, end float64) netsim.Config {
	return netsim.Config{
		Seed:    21,
		Latency: 0.2,
		Jitter:  0.3,
		Loss:    0.05,
		Partitions: []netsim.Window{
			{Start: start, End: end, Isolated: []string{"s0"}},
		},
	}
}

// TestPartitionEveryEventPointKillResume is the tentpole acceptance
// drill: under an active partition window — single remote store cut
// off mid-run, and a quorum with one isolated replica — a run killed
// at EVERY possible journal length and resumed once finishes with a
// journal and metrics byte-identical to the uninterrupted run's.
// Kill points inside the window are the interesting ones (resume
// while the store is unreachable); the drill covers them and every
// other point too.
func TestPartitionEveryEventPointKillResume(t *testing.T) {
	w := partitionWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 101, 1) }
	base, err := Execute(w, src(), Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	mk := base.Makespan
	netCfg := partitionNetCfg(0.2*mk, 1.2*mk)

	for _, quorum := range []bool{false, true} {
		name := "single-remote"
		if quorum {
			name = "quorum-n3-w2"
		}
		t.Run(name, func(t *testing.T) {
			refStack := newPartitionStack(netCfg, quorum)
			ref, err := Execute(w, src(), refStack.options(t, 0))
			if err != nil {
				t.Fatal(err)
			}
			if ref.Journal.Count(EvComplete) != 1 {
				t.Fatal("reference run did not complete")
			}
			if !quorum {
				// The single store must actually have been cut off: commits
				// gave up during the window and the ladder moved.
				if ref.GiveUps == 0 || ref.Journal.Count(EvDegrade) == 0 {
					t.Fatalf("partition never degraded the single store (giveups=%d, degrades=%d)",
						ref.GiveUps, ref.Journal.Count(EvDegrade))
				}
			} else if ref.GiveUps != 0 {
				// The majority side never gives up a commit: W=2 of 3
				// replicas stay reachable throughout the window.
				t.Fatalf("quorum side gave up %d commits during the window", ref.GiveUps)
			}
			n := len(ref.Journal)
			for kill := 1; kill <= n; kill++ {
				stack := newPartitionStack(netCfg, quorum)
				_, err := Execute(w, src(), stack.options(t, kill))
				if err == nil {
					t.Fatalf("kill@%d did not crash a %d-event run", kill, n)
				}
				if !errors.Is(err, ErrCrashed) {
					t.Fatalf("kill@%d: unexpected error: %v", kill, err)
				}
				res, err := Execute(w, src(), stack.options(t, 0))
				if err != nil {
					t.Fatalf("kill@%d: resume: %v", kill, err)
				}
				if !res.Journal.Equal(ref.Journal) {
					t.Fatalf("kill@%d: resumed journal differs from reference (%d vs %d events)",
						kill, len(res.Journal), len(ref.Journal))
				}
				if res.Metrics != ref.Metrics {
					t.Fatalf("kill@%d: metrics differ: %+v vs %+v", kill, res.Metrics, ref.Metrics)
				}
				if res.Replans != ref.Replans || res.GiveUps != ref.GiveUps ||
					res.Level != ref.Level || res.MaxRewind != ref.MaxRewind {
					t.Fatalf("kill@%d: resilience counters differ: (%d,%d,%v,%v) vs (%d,%d,%v,%v)",
						kill, res.Replans, res.GiveUps, res.Level, res.MaxRewind,
						ref.Replans, ref.GiveUps, ref.Level, ref.MaxRewind)
				}
			}
		})
	}
}

// TestRideOutProbeReadmits pins the ladder's new path back up: a store
// down for a partition window is re-admitted by the first successful
// probe after the heal, and the journal records both ladder moves.
// With ProbeEvery = 0 the legacy one-way ladder stays down for good.
func TestRideOutProbeReadmits(t *testing.T) {
	w := partitionWorkload(t)
	src := func() Source { return NewKeyedSource(failure.Exponential{Lambda: 0.08}, 101, 1) }
	base, err := Execute(w, src(), Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Window across the early middle of the run: the first commits
	// succeed, then a stretch of them times out.
	netCfg := netsim.Config{
		Seed:       22,
		Latency:    0.1,
		Partitions: []netsim.Window{{Start: 0.1 * base.Makespan, End: 1.2 * base.Makespan, Isolated: []string{"s0"}}},
	}
	run := func(probeEvery int) *Result {
		st := store.Checked(store.NewRemoteStore(store.NewMemStore(), netsim.New(netCfg), netCfg,
			store.RemoteConfig{Remote: "s0", Timeout: 2}))
		res, err := Execute(w, src(), Options{
			RunID: "rideout", Store: st, Downtime: 1,
			Adaptive: &AdaptiveOptions{
				Retry:      ExpBackoff{Base: 0.5, Cap: 2, MaxAttempts: 2},
				DownAfter:  2,
				ProbeEvery: probeEvery,
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	ladderMoves := func(res *Result) (downs, readmits int) {
		for _, e := range res.Journal {
			if e.Kind != EvDegrade {
				continue
			}
			switch DegradeLevel(e.Arg) {
			case LevelDown:
				downs++
			case LevelDegraded:
				readmits++
			}
		}
		return downs, readmits
	}

	probed := run(2)
	if probed.Level != LevelDegraded {
		t.Fatalf("final level with probing = %v, want %v (re-admitted after the heal)", probed.Level, LevelDegraded)
	}
	downs, readmits := ladderMoves(probed)
	if downs == 0 || readmits == 0 {
		t.Fatalf("journal records %d downs and %d re-admissions, want both > 0", downs, readmits)
	}

	legacy := run(0)
	if legacy.Level != LevelDown {
		t.Fatalf("final level without probing = %v, want %v (one-way ladder)", legacy.Level, LevelDown)
	}
	if _, readmits := ladderMoves(legacy); readmits != 0 {
		t.Fatalf("legacy ladder re-admitted the store %d times with probing off", readmits)
	}
	if legacy.Saves >= probed.Saves {
		t.Fatalf("legacy ladder saved %d checkpoints, probing saved %d — probing should persist more",
			legacy.Saves, probed.Saves)
	}
}

// TestTimeoutClassification pins the new transient class: remote
// timeouts (and quorum errors whose representative cause is a timeout)
// retry; quorum errors rooted in permanent causes do not.
func TestTimeoutClassification(t *testing.T) {
	timeout := fmt.Errorf("save r/1: %w", store.ErrTimeout)
	if c := ClassifyStoreError(timeout); c != ClassTransient {
		t.Fatalf("timeout classifies %v, want transient", c)
	}
	quorumTimeout := fmt.Errorf("quorum 1/2: %w: %w", store.ErrQuorum, store.ErrTimeout)
	if c := ClassifyStoreError(quorumTimeout); c != ClassTransient {
		t.Fatalf("quorum timeout classifies %v, want transient", c)
	}
	quorumQuota := fmt.Errorf("quorum 1/2: %w: %w", store.ErrQuorum, store.ErrQuota)
	if c := ClassifyStoreError(quorumQuota); c != ClassPermanent {
		t.Fatalf("quorum quota classifies %v, want permanent", c)
	}
}

// TestProbeStore pins the plan-time telemetry contract: the probe
// estimate equals the exact virtual latency for a deterministic-
// latency store, the timeout for a partitioned one, and zero (with
// Tracked = false) for a stack with no latency ledger.
func TestProbeStore(t *testing.T) {
	netCfg := netsim.Config{Seed: 23, Latency: 0.3}
	st := store.Checked(store.NewRemoteStore(store.NewMemStore(), netsim.New(netCfg), netCfg,
		store.RemoteConfig{Remote: "s0", Timeout: 2}))
	res := ProbeStore(st, "probe", 16, 1024, 0)
	if !res.Tracked || res.Failures != 0 {
		t.Fatalf("probe = %+v, want tracked, no failures", res)
	}
	if res.Estimate != 0.3 {
		t.Fatalf("estimate %v, want the exact 0.3 base latency", res.Estimate)
	}

	cut := netCfg
	cut.Partitions = []netsim.Window{{Start: 0, End: 1e9, Isolated: []string{"s0"}}}
	down := store.Checked(store.NewRemoteStore(store.NewMemStore(), netsim.New(cut), cut,
		store.RemoteConfig{Remote: "s0", Timeout: 2}))
	res = ProbeStore(down, "probe", 8, 1024, 0)
	if res.Failures != 8 {
		t.Fatalf("partitioned probe failures = %d, want all 8", res.Failures)
	}
	if res.Estimate != 2 {
		t.Fatalf("partitioned estimate %v, want the 2.0 timeout", res.Estimate)
	}

	plain := ProbeStore(store.NewMemStore(), "probe", 8, 1024, 0)
	if plain.Tracked || plain.Estimate != 0 {
		t.Fatalf("mem-store probe = %+v, want untracked zero estimate", plain)
	}
}
