package exec

import (
	"fmt"
	"hash/fnv"
	"math"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
)

// Workload is an executable plan in positional form: the execution
// order, the per-position weights, and the segment boundaries with
// their checkpoint and recovery costs already resolved through whatever
// cost model produced them. It is the common currency of the executor —
// chain plans and DAG plans both compile down to it, so the execution
// loop, the checkpoint format and the crash harness are written once.
type Workload struct {
	// Order lists task IDs in execution order (identity for chains).
	Order []int
	// CheckpointAfter[i] reports a checkpoint after position i.
	CheckpointAfter []bool
	// Weights[i] is the work of the task at position i.
	Weights []float64

	// Per-segment views, segment s covering positions
	// [segStart[s], segEnd[s]].
	segStart, segEnd []int
	segCkpt, segRec  []float64

	fp uint64
}

// NewChainWorkload compiles a positional chain problem and checkpoint
// vector into a workload. Segment costs come from cp itself (Ckpt at
// the segment end, Rec of the preceding checkpoint), so
// Planned(cp.Model) reproduces cp.Makespan(checkpointAfter) exactly.
func NewChainWorkload(cp *core.ChainProblem, checkpointAfter []bool) (*Workload, error) {
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	segs, err := cp.Segments(checkpointAfter)
	if err != nil {
		return nil, err
	}
	n := cp.Len()
	w := &Workload{
		Order:           make([]int, n),
		CheckpointAfter: append([]bool(nil), checkpointAfter...),
		Weights:         append([]float64(nil), cp.Weights...),
	}
	for i := range w.Order {
		w.Order[i] = i
	}
	w.setSegments(segs)
	w.fp = w.fingerprint()
	return w, nil
}

// NewDAGWorkload compiles a DAG plan into a workload under the given
// cost model: segment [x, j] pays cm.CheckpointCost(g, order, x, j) and
// recovers at cm.InitialRecovery() for x = 0, cm.RecoveryCost(g, order,
// x−1) otherwise — the same costs the DAG schedulers optimize, so
// Planned matches the solver's Expected for the same plan.
func NewDAGWorkload(g *dag.Graph, plan core.Plan, cm core.CostModel) (*Workload, error) {
	if err := plan.Validate(g); err != nil {
		return nil, err
	}
	n := len(plan.Order)
	w := &Workload{
		Order:           append([]int(nil), plan.Order...),
		CheckpointAfter: append([]bool(nil), plan.CheckpointAfter...),
		Weights:         make([]float64, n),
	}
	for i, id := range plan.Order {
		w.Weights[i] = g.Task(id).Weight
	}
	var segs []core.Segment
	start := 0
	for i := 0; i < n; i++ {
		if !plan.CheckpointAfter[i] {
			continue
		}
		seg := core.Segment{
			Start:      start,
			End:        i,
			Checkpoint: cm.CheckpointCost(g, plan.Order, start, i),
		}
		if start == 0 {
			seg.Recovery = cm.InitialRecovery()
		} else {
			seg.Recovery = cm.RecoveryCost(g, plan.Order, start-1)
		}
		segs = append(segs, seg)
		start = i + 1
	}
	w.setSegments(segs)
	w.fp = w.fingerprint()
	return w, nil
}

// setSegments fills the per-segment arrays from core segments.
func (w *Workload) setSegments(segs []core.Segment) {
	w.segStart = make([]int, len(segs))
	w.segEnd = make([]int, len(segs))
	w.segCkpt = make([]float64, len(segs))
	w.segRec = make([]float64, len(segs))
	for s, seg := range segs {
		w.segStart[s] = seg.Start
		w.segEnd[s] = seg.End
		w.segCkpt[s] = seg.Checkpoint
		w.segRec[s] = seg.Recovery
	}
}

// Len returns the number of positions.
func (w *Workload) Len() int { return len(w.Order) }

// Segments returns the number of segments (= checkpoints in the plan).
func (w *Workload) Segments() int { return len(w.segStart) }

// SegmentWork returns Σ weights over segment s.
func (w *Workload) SegmentWork(s int) float64 {
	var sum float64
	for i := w.segStart[s]; i <= w.segEnd[s]; i++ {
		sum += w.Weights[i]
	}
	return sum
}

// Planned returns the plan's exact expected makespan under m: the sum
// of Proposition 1 over segments, identical term-for-term to
// core.ChainProblem.Makespan (chains) and to the DAG solvers' Expected
// (DAG plans compiled with the same cost model).
func (w *Workload) Planned(m expectation.Model) float64 {
	var total float64
	for s := range w.segStart {
		total += m.ExpectedTime(w.SegmentWork(s), w.segCkpt[s], w.segRec[s])
	}
	return total
}

// Fingerprint identifies the workload (order, weights, checkpoint
// vector, segment costs). The executor mixes it with the source
// fingerprint into every checkpoint and refuses to resume a mismatch.
func (w *Workload) Fingerprint() uint64 { return w.fp }

func (w *Workload) fingerprint() uint64 {
	h := fnv.New64a()
	var b [8]byte
	wr := func(v uint64) {
		putU64(b[:], v)
		h.Write(b[:])
	}
	wr(uint64(len(w.Order)))
	for _, id := range w.Order {
		wr(uint64(uint32(id)))
	}
	for _, ck := range w.CheckpointAfter {
		if ck {
			wr(1)
		} else {
			wr(0)
		}
	}
	for _, wt := range w.Weights {
		wr(math.Float64bits(wt))
	}
	wr(uint64(len(w.segStart)))
	for s := range w.segStart {
		wr(math.Float64bits(w.segCkpt[s]))
		wr(math.Float64bits(w.segRec[s]))
	}
	return h.Sum64()
}

// CoreSegments returns the workload's segments in core form, for
// callers that want to drive sim.Run on the identical segmentation.
func (w *Workload) CoreSegments() []core.Segment {
	segs := make([]core.Segment, w.Segments())
	for s := range segs {
		segs[s] = core.Segment{
			Start:      w.segStart[s],
			End:        w.segEnd[s],
			Work:       w.SegmentWork(s),
			Checkpoint: w.segCkpt[s],
			Recovery:   w.segRec[s],
		}
	}
	return segs
}

// String summarizes the workload.
func (w *Workload) String() string {
	return fmt.Sprintf("workload{n=%d segments=%d fp=%016x}", w.Len(), w.Segments(), w.fp)
}
