// Degraded-store resilience: everything the executor does beyond the
// plain "save and hope" path lives here — the retry loop driven by a
// RetryPolicy, the StoreHealth observer, online replanning with
// hysteresis, and the degradation ladder (healthy → degraded →
// failover → down).
//
// Determinism under adaptivity is the load-bearing design: every
// decision is a pure function of state that round-trips through the
// checkpoint payload. Store overhead is measured from the
// deterministic fault injector's per-run latency ledger; replans are
// journaled as (frontier, overhead) pairs and reconstructed by
// replaying them through the pure Replanner; and the save outcomes of
// commit k — which happen AFTER payload k is encoded — are re-observed
// on resume by re-saving the restored payload through the same
// logically-keyed store stack, regenerating the post-encode journal
// events bit-for-bit. That is what keeps the crash-harness acceptance
// (kill anywhere, resume, byte-identical journal) true even while the
// executor is adapting to the store it is being killed on.
//
// A deliberate model choice: store overhead (injected latency and
// backoff delays) advances the virtual clock and therefore the realized
// makespan, but does NOT advance the failure source — checkpoint
// traffic stalls on a storage side channel, not on the compute platform
// whose failure process the plan models.
package exec

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/store"
)

// AdaptiveOptions enables the degraded-store resilience layer. The
// zero value of each field picks a sane default; the executor runs
// adaptively whenever Options.Adaptive is non-nil (which requires a
// configured Store).
type AdaptiveOptions struct {
	// Retry drives the save retry loop (nil = NoRetry). Only transient
	// errors are retried; permanent errors (quota, corrupt) give up
	// immediately and feed the degradation ladder.
	Retry RetryPolicy
	// Replanner re-solves plan suffixes; nil disables replanning.
	Replanner Replanner
	// ReplanRatio is the hysteresis band edge: a replan triggers when
	// (C + overhead_now) / (C + overhead_at_last_plan) leaves
	// [1/ReplanRatio, ReplanRatio]. Values ≤ 1 disable replanning.
	ReplanRatio float64
	// Cooldown is the minimum number of commits between replans
	// (default 1).
	Cooldown int
	// BaseCost is the reference per-checkpoint cost C for drift ratios;
	// 0 derives it as the mean checkpoint cost of the initial plan.
	BaseCost float64
	// Alpha is the health EWMA weight (default 0.25).
	Alpha float64
	// Window is the health failure-rate window in attempts (default 16,
	// max 64).
	Window int
	// Secondary, when non-nil, is the failover store (compose it with
	// Checked like the primary). It must persist as long as the primary:
	// resuming a run that failed over lists and loads from both.
	Secondary store.Store
	// FailoverAfter is the number of consecutive commit give-ups that
	// trigger failover to Secondary (default 2). A permanent error
	// fails over immediately.
	FailoverAfter int
	// DownAfter is the number of consecutive give-ups (on the last
	// store in the ladder) after which persistence is switched off
	// (default 4). A permanent error goes down immediately.
	DownAfter int
	// ProbeEvery, when positive, makes persistence-off survivable: at
	// LevelDown, every ProbeEvery-th commit attempts its save anyway
	// (the probe IS the save — no separate traffic). A successful
	// probe re-admits the active store at LevelDegraded, which is how
	// a minority-side executor rides out a partition window and
	// resumes committing once the network heals. Zero keeps the
	// legacy one-way ladder: down stays down for the rest of the run.
	ProbeEvery int
	// SyncEvery, when positive, runs an anti-entropy pass over the
	// active store after every SyncEvery-th committed segment (by
	// absolute segment index, so the cadence is resume-invariant) and
	// once more after completion — the executor's idle points. Each
	// pass calls the stack's RunSyncer (quorum SyncRun) to converge
	// replicas that missed writes during a partition, without waiting
	// for read traffic. Passes never journal, never advance the
	// virtual clock, and draw only attempt-keyed store randomness, so
	// kill/resume journal identity is untouched. Zero disables
	// executor-driven syncs; requires a stack with a RunSyncer to have
	// any effect.
	SyncEvery int
}

func (a *AdaptiveOptions) retry() RetryPolicy {
	if a.Retry == nil {
		return NoRetry{}
	}
	return a.Retry
}

func (a *AdaptiveOptions) cooldown() int {
	if a.Cooldown <= 0 {
		return 1
	}
	return a.Cooldown
}

func (a *AdaptiveOptions) failoverAfter() int {
	if a.FailoverAfter <= 0 {
		return 2
	}
	return a.FailoverAfter
}

func (a *AdaptiveOptions) downAfter() int {
	if a.DownAfter <= 0 {
		return 4
	}
	return a.DownAfter
}

// Save outcome codes packed into EvSaveResult's Arg (attempts<<3|code).
const (
	saveCodeOK        = 0
	saveCodeExhausted = 1
	saveCodePermanent = 2
	saveCodeSkipped   = 3
)

// encodeSaveArg packs a save outcome for the journal.
func encodeSaveArg(attempts, code int) int32 { return int32(attempts<<3 | code) }

// saveOutcome is what one commit's save loop produced.
type saveOutcome struct {
	attempts   int
	overhead   float64 // total injected latency + backoff delays
	successLat float64 // latency of the successful attempt (0 on give-up)
	ok         bool
	code       int
	err        error
}

// adaptiveSave runs the retry loop against the active store, reading
// per-attempt injected latency from the store stack's per-run ledger
// and serving policy backoff in virtual time. Fatal-class errors abort;
// permanent-class errors give up without retrying; transient errors
// retry per policy.
func (ex *executor) adaptiveSave(seq uint64, payload []byte) (saveOutcome, error) {
	pol := ex.ad.retry()
	run := ex.opts.runID()
	var out saveOutcome
	defer func() { ex.pending = 0 }()
	for attempt := 1; ; attempt++ {
		// Expose the overhead accrued so far through the bound clock:
		// this attempt's network delivery happens at t + overhead, so
		// backing off long enough walks the commit past a partition
		// window's end.
		ex.pending = out.overhead
		before, _ := store.LastOp(ex.store, run)
		err := ex.store.Save(run, seq, payload)
		after, ok := store.LastOp(ex.store, run)
		var lat float64
		if ok && after.Ops > before.Ops {
			lat = after.Latency
		}
		out.overhead += lat
		out.attempts = attempt
		ex.health.ObserveAttempt(err != nil)
		if err == nil {
			out.ok = true
			out.code = saveCodeOK
			out.successLat = lat
			return out, nil
		}
		out.err = err
		switch ClassifyStoreError(err) {
		case ClassFatal:
			return out, fmt.Errorf("exec: saving checkpoint %d: %w", seq, err)
		case ClassPermanent:
			out.code = saveCodePermanent
			return out, nil
		}
		delay, retry := pol.Backoff(attempt, out.overhead)
		if !retry {
			out.code = saveCodeExhausted
			return out, nil
		}
		out.overhead += delay
	}
}

// currentOverheadEstimate is the expected extra cost of the next
// checkpoint: the health estimate, or 0 once persistence is off.
func (ex *executor) currentOverheadEstimate() float64 {
	if ex.level == LevelDown {
		return 0
	}
	return ex.health.OverheadEstimate()
}

// noteExposure records the current crash-rewind exposure (virtual time
// since the last PERSISTED checkpoint).
func (ex *executor) noteExposure() {
	if exp := ex.t - ex.lastPersistT; exp > ex.maxRewind {
		ex.maxRewind = exp
	}
}

// adaptiveCommit is the adaptive-mode commit: health event and replan
// decision BEFORE the state is encoded (so both are part of the
// persisted prefix), then the save with retries, overhead accounting,
// outcome event and ladder update AFTER (regenerated on resume by
// re-saving the restored payload).
func (ex *executor) adaptiveCommit(s int) error {
	est := ex.baseCost + ex.currentOverheadEstimate()
	if err := ex.event(Event{Kind: EvHealth, Time: ex.t, Arg: int32(ex.level), Seq: math.Float64bits(est)}); err != nil {
		return err
	}
	if err := ex.maybeReplan(s); err != nil {
		return err
	}
	seq := uint64(s) + 1
	payload := encodeState(ex.snapshot(seq, uint64(s)+1))
	return ex.persist(seq, payload)
}

// persist is everything that happens to a checkpoint payload after it
// is encoded: skip (persistence off), or save-with-retries plus clock,
// health, exposure and ladder updates. The resume path calls it with
// the restored payload to re-observe the same outcomes.
func (ex *executor) persist(seq uint64, payload []byte) error {
	if ex.level == LevelDown {
		// Ride-out probing: at LevelDown every ProbeEvery-th commit
		// attempts its save anyway; the others skip as before. The
		// counter round-trips through the checkpoint (it is captured
		// pre-mutation and re-applied by the resume re-save), so the
		// probe cadence replays bit-identically.
		probe := false
		if ex.ad.ProbeEvery > 0 {
			ex.sinceDown++
			if ex.sinceDown >= ex.ad.ProbeEvery {
				ex.sinceDown = 0
				probe = true
			}
		}
		if !probe {
			if err := ex.event(Event{Kind: EvSaveResult, Time: ex.t, Arg: encodeSaveArg(0, saveCodeSkipped), Seq: 0}); err != nil {
				return err
			}
			ex.noteExposure()
			return nil
		}
	}
	out, fatal := ex.adaptiveSave(seq, payload)
	if fatal != nil {
		return fatal
	}
	ex.t += out.overhead
	ex.met.StoreOverhead += out.overhead
	if err := ex.event(Event{Kind: EvSaveResult, Time: ex.t, Arg: encodeSaveArg(out.attempts, out.code), Seq: math.Float64bits(out.overhead)}); err != nil {
		return err
	}
	ex.health.ObserveCommit(out.successLat, out.overhead-out.successLat)
	ex.noteExposure()
	if out.ok {
		ex.lastPersistT = ex.t
		ex.consec = 0
		if ex.level == LevelDown {
			// A successful ride-out probe re-admits the active store:
			// the window healed. Re-entry is to LevelDegraded, not
			// LevelHealthy — the store just spent a window down and
			// has yet to re-earn trust through the health EWMA.
			ex.level = LevelDegraded
			if err := ex.event(Event{Kind: EvDegrade, Time: ex.t, Arg: int32(ex.level)}); err != nil {
				return err
			}
		}
		ex.saves++
		if n := ex.opts.CrashAfterSaves; n > 0 && ex.saves >= n {
			return fmt.Errorf("exec: crash after %d checkpoint saves (t=%v): %w", ex.saves, ex.t, ErrCrashed)
		}
		return nil
	}
	ex.giveups++
	ex.consec++
	return ex.escalate(out.code == saveCodePermanent)
}

// escalate moves down the degradation ladder after a commit gave up:
// failover to the secondary while one is available, persistence-off
// past that. Permanent errors skip the consecutive-give-up thresholds.
func (ex *executor) escalate(permanent bool) error {
	switch {
	case ex.level < LevelFailover && ex.ad.Secondary != nil &&
		(permanent || ex.consec >= ex.ad.failoverAfter()):
		ex.level = LevelFailover
		ex.store = ex.ad.Secondary
		ex.consec = 0
		return ex.event(Event{Kind: EvDegrade, Time: ex.t, Arg: int32(ex.level)})
	case ex.level < LevelDown && (ex.ad.Secondary == nil || ex.level >= LevelFailover) &&
		(permanent || ex.consec >= ex.ad.downAfter()):
		ex.level = LevelDown
		return ex.event(Event{Kind: EvDegrade, Time: ex.t, Arg: int32(ex.level)})
	}
	return nil
}

// maybeReplan applies the hysteresis rule at commit s and splices a
// re-solved suffix at the frontier when the effective checkpoint cost
// has drifted out of the band since the plan was last (re)solved.
func (ex *executor) maybeReplan(s int) error {
	ad := ex.ad
	if ad.Replanner == nil || ad.ReplanRatio <= 1 || ex.baseCost <= 0 {
		return nil
	}
	from := ex.segEnd[s] + 1
	if from >= len(ex.w.Order) {
		return nil
	}
	if ex.lastReplanAt >= 0 && int64(s)-ex.lastReplanAt < int64(ad.cooldown()) {
		return nil
	}
	overhead := ex.currentOverheadEstimate()
	ratio := (ex.baseCost + overhead) / (ex.baseCost + ex.lastOverhead)
	if ratio < ad.ReplanRatio && ratio > 1/ad.ReplanRatio {
		return nil
	}
	segs, err := ad.Replanner.Replan(from, overhead)
	if err != nil {
		return fmt.Errorf("exec: replanning at frontier %d: %w", from, err)
	}
	if err := ex.spliceAt(from, segs); err != nil {
		return err
	}
	ex.replans++
	ex.lastOverhead = overhead
	ex.lastReplanAt = int64(s)
	if ex.level == LevelHealthy {
		ex.level = LevelDegraded
	}
	return ex.event(Event{Kind: EvReplan, Time: ex.t, Arg: int32(from), Seq: math.Float64bits(overhead)})
}

// spliceAt replaces every segment at or past position from with segs,
// validating that the splice covers [from, n−1] contiguously. The
// executor's segment arrays are private copies, so splicing never
// mutates the (possibly shared) Workload.
func (ex *executor) spliceAt(from int, segs []core.Segment) error {
	cut := 0
	if from > 0 {
		cut = -1
		for i := range ex.segEnd {
			if ex.segEnd[i] == from-1 {
				cut = i + 1
				break
			}
		}
		if cut < 0 {
			return fmt.Errorf("exec: splice frontier %d is not a segment boundary", from)
		}
	}
	if len(segs) == 0 {
		return fmt.Errorf("exec: empty splice at frontier %d", from)
	}
	want := from
	for _, sg := range segs {
		if sg.Start != want || sg.End < sg.Start {
			return fmt.Errorf("exec: discontiguous splice at frontier %d (segment [%d,%d], want start %d)",
				from, sg.Start, sg.End, want)
		}
		want = sg.End + 1
	}
	if want != len(ex.w.Order) {
		return fmt.Errorf("exec: splice at frontier %d ends at %d, want %d", from, want-1, len(ex.w.Order)-1)
	}
	nStart := append(make([]int, 0, cut+len(segs)), ex.segStart[:cut]...)
	nEnd := append(make([]int, 0, cut+len(segs)), ex.segEnd[:cut]...)
	nCkpt := append(make([]float64, 0, cut+len(segs)), ex.segCkpt[:cut]...)
	nRec := append(make([]float64, 0, cut+len(segs)), ex.segRec[:cut]...)
	for _, sg := range segs {
		nStart = append(nStart, sg.Start)
		nEnd = append(nEnd, sg.End)
		nCkpt = append(nCkpt, sg.Checkpoint)
		nRec = append(nRec, sg.Recovery)
	}
	ex.segStart, ex.segEnd, ex.segCkpt, ex.segRec = nStart, nEnd, nCkpt, nRec
	return nil
}

// resolveBaseCost derives the drift-reference checkpoint cost from the
// ORIGINAL plan (deterministic, independent of later splices).
func (ex *executor) resolveBaseCost() float64 {
	if ex.ad.BaseCost > 0 {
		return ex.ad.BaseCost
	}
	if len(ex.w.segCkpt) == 0 {
		return 0
	}
	var sum float64
	for _, c := range ex.w.segCkpt {
		sum += c
	}
	return sum / float64(len(ex.w.segCkpt))
}

// restoreAdaptive rebuilds the adaptive state from a decoded
// checkpoint: health, ladder position, hysteresis anchors, exposure
// accounting, the active store, and the spliced segment layout
// (reconstructed by replaying the journal's EvReplan events through the
// configured replanner).
func (ex *executor) restoreAdaptive(st *execState) error {
	ex.health.commits = st.healthCommits
	ex.health.ewmaLat = st.healthEwmaLat
	ex.health.ewmaOver = st.healthEwmaOver
	ex.health.bits = st.healthBits
	ex.health.nbits = int(st.healthNbits)
	ex.health.attempts = st.healthAttempts
	ex.health.failures = st.healthFailures
	ex.level = DegradeLevel(st.level)
	ex.consec = int(st.consec)
	ex.giveups = int(st.giveups)
	ex.sinceDown = int(st.sinceDown)
	ex.replans = int(st.replans)
	ex.lastOverhead = st.lastOverhead
	ex.lastReplanAt = int64(st.lastReplanAt1) - 1
	ex.lastPersistT = st.lastPersistT
	ex.maxRewind = st.maxRewind
	// A restored LevelFailover means saves were going to the secondary.
	// LevelDown alone does not: a ride-out probe can persist a
	// down-level state through the PRIMARY when no failover ever
	// happened — the journal prefix is the arbiter (it records every
	// ladder move up to the encode point).
	failedOver := ex.level == LevelFailover
	if !failedOver && ex.level == LevelDown {
		for _, e := range st.journal {
			if e.Kind == EvDegrade && DegradeLevel(e.Arg) == LevelFailover {
				failedOver = true
				break
			}
		}
	}
	if failedOver {
		if ex.ad.Secondary == nil {
			return fmt.Errorf("exec: checkpoint was saved after failover but no secondary store is configured")
		}
		ex.store = ex.ad.Secondary
	}
	for _, e := range st.journal {
		if e.Kind != EvReplan {
			continue
		}
		if ex.ad.Replanner == nil {
			return fmt.Errorf("exec: journal records a replan at %d but no replanner is configured", e.Arg)
		}
		segs, err := ex.ad.Replanner.Replan(int(e.Arg), math.Float64frombits(e.Seq))
		if err != nil {
			return fmt.Errorf("exec: replaying replan at %d: %w", e.Arg, err)
		}
		if err := ex.spliceAt(int(e.Arg), segs); err != nil {
			return err
		}
	}
	return nil
}

// snapshot captures the executor's full state for encoding.
func (ex *executor) snapshot(seq, nextSeg uint64) *execState {
	st := &execState{
		fp:      ex.fp,
		seq:     seq,
		nextSeg: nextSeg,
		t:       ex.t,
		met:     ex.met,
		src:     ex.src.State(),
		journal: ex.j,

		healthCommits:  ex.health.commits,
		healthEwmaLat:  ex.health.ewmaLat,
		healthEwmaOver: ex.health.ewmaOver,
		healthBits:     ex.health.bits,
		healthNbits:    uint64(ex.health.nbits),
		healthAttempts: ex.health.attempts,
		healthFailures: ex.health.failures,
		level:          uint64(ex.level),
		consec:         uint64(ex.consec),
		giveups:        uint64(ex.giveups),
		sinceDown:      uint64(ex.sinceDown),
		replans:        uint64(ex.replans),
		lastOverhead:   ex.lastOverhead,
		lastReplanAt1:  uint64(ex.lastReplanAt + 1),
		lastPersistT:   ex.lastPersistT,
		maxRewind:      ex.maxRewind,
	}
	return st
}
