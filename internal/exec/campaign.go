package exec

import (
	"fmt"
	"runtime"
	"sync"

	"repro/internal/failure"
	"repro/internal/stats"
)

// CampaignOptions tunes a Monte-Carlo campaign of executions.
type CampaignOptions struct {
	// Runs is the number of independent executions.
	Runs int
	// Seed drives every run: run r uses NewKeyedSource(dist, Seed, r+1),
	// so the campaign is deterministic for a given Seed regardless of
	// scheduling — each run's failure sequence depends only on (Seed, r).
	Seed uint64
	// Workers fans runs out over goroutines; ≤ 0 means
	// runtime.GOMAXPROCS(0). Per-run results are Workers-independent;
	// the merged summaries are deterministic for a given (Seed, Workers)
	// pair (summary merging is not floating-point associative).
	Workers int
	// Downtime and MaxFailures are per-run execution options.
	Downtime    float64
	MaxFailures int
}

// CampaignResult aggregates a campaign.
type CampaignResult struct {
	// Makespan and Failures summarize per-run realized makespans and
	// failure counts.
	Makespan, Failures stats.Summary
	// Runs is the number of executions aggregated.
	Runs int
}

// Campaign executes the workload Runs times against independent keyed
// failure sources drawn from dist, without persistence (checkpoints
// exist to bound rollback, not to survive a crash), and aggregates the
// realized metrics. The mean of Makespan converges to
// w.Planned(model) when dist matches the model's failure law — the
// planned-vs-realized validation experiment E18 rides on exactly this.
func Campaign(w *Workload, dist failure.Distribution, opts CampaignOptions) (CampaignResult, error) {
	if opts.Runs <= 0 {
		return CampaignResult{}, fmt.Errorf("exec: campaign needs a positive run count, got %d", opts.Runs)
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > opts.Runs {
		workers = opts.Runs
	}
	type partial struct {
		makespan, failures stats.Summary
		err                error
	}
	parts := make([]partial, workers)
	per := opts.Runs / workers
	extra := opts.Runs % workers
	var wg sync.WaitGroup
	next := 0
	for wk := 0; wk < workers; wk++ {
		count := per
		if wk < extra {
			count++
		}
		first := next
		next += count
		wg.Add(1)
		go func(wk, first, count int) {
			defer wg.Done()
			p := &parts[wk]
			for r := first; r < first+count; r++ {
				src := NewKeyedSource(dist, opts.Seed, uint64(r)+1)
				res, err := Execute(w, src, Options{
					Downtime:    opts.Downtime,
					MaxFailures: opts.MaxFailures,
				})
				if err != nil {
					p.err = fmt.Errorf("exec: campaign run %d: %w", r, err)
					return
				}
				p.makespan.Add(res.Makespan)
				p.failures.Add(float64(res.Failures))
			}
		}(wk, first, count)
	}
	wg.Wait()
	out := CampaignResult{Runs: opts.Runs}
	for i := range parts {
		if parts[i].err != nil {
			return CampaignResult{}, parts[i].err
		}
		// Merge in worker order: deterministic for a (Seed, Workers) pair.
		out.Makespan.Merge(parts[i].makespan)
		out.Failures.Merge(parts[i].failures)
	}
	return out, nil
}
