package failure

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/rng"
)

// recordingDist wraps a Distribution and logs every sample drawn, so the
// identity tests can compare the exact variate sequences two process
// implementations consume.
type recordingDist struct {
	Distribution
	log *[]float64
}

func (d recordingDist) Sample(r *rng.Stream) float64 {
	x := d.Distribution.Sample(r)
	*d.log = append(*d.log, x)
	return x
}

// identityLaws returns the three laws of the paper's extension, MTBF ≈ 25.
func identityLaws(t *testing.T) map[string]Distribution {
	t.Helper()
	weib, err := NewWeibull(0.7, 25/math.Gamma(1+1/0.7))
	if err != nil {
		t.Fatal(err)
	}
	logn, err := NewLogNormal(3, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := NewExponential(1.0 / 25)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Distribution{"exponential": exp, "weibull": weib, "lognormal": logn}
}

// TestHeapMatchesScanSampleIdentity pins the tentpole contract: the
// heap-based SuperposedProcess consumes the same stream variates in the
// same order as the ScanProcess reference, under every law × rejuvenation
// policy × platform size, over a randomized schedule of
// NextFailure/Advance/ObserveFailure/Reset calls. NextFailure values must
// agree bit-for-bit at p = 1 (the fingerprinted E11 configuration) and to
// ulp accuracy beyond.
func TestHeapMatchesScanSampleIdentity(t *testing.T) {
	for name, dist := range identityLaws(t) {
		for _, policy := range []RejuvenationPolicy{RejuvenateFailedOnly, RejuvenateAll} {
			for _, procs := range []int{1, 2, 3, 7, 64} {
				t.Run(fmt.Sprintf("%s/%s/p=%d", name, policy, procs), func(t *testing.T) {
					const seed = 12345
					var scanLog, heapLog []float64
					scan, err := NewScanProcess(recordingDist{dist, &scanLog}, procs, policy, rng.New(seed))
					if err != nil {
						t.Fatal(err)
					}
					heap, err := NewSuperposedProcess(recordingDist{dist, &heapLog}, procs, policy, rng.New(seed))
					if err != nil {
						t.Fatal(err)
					}
					sched := rng.New(999)
					for step := 0; step < 4000; step++ {
						vs, vh := scan.NextFailure(), heap.NextFailure()
						if procs == 1 {
							if vs != vh {
								t.Fatalf("step %d: NextFailure %v (scan) != %v (heap) at p=1 (must be bit-exact)", step, vs, vh)
							}
						} else if !ulpClose(vs, vh) {
							t.Fatalf("step %d: NextFailure %v (scan) vs %v (heap) beyond ulp tolerance", step, vs, vh)
						}
						switch u := sched.Float64(); {
						case u < 0.45:
							scan.ObserveFailure()
							heap.ObserveFailure()
						case u < 0.9:
							// Advance some fraction of the announced gap;
							// each implementation consumes its own value so
							// the p=1 arithmetic stays bit-identical.
							f := sched.Float64()
							scan.Advance(f * vs)
							heap.Advance(f * vh)
						default:
							scan.Reset()
							heap.Reset()
						}
						if len(scanLog) != len(heapLog) {
							t.Fatalf("step %d: %d variates drawn by scan, %d by heap", step, len(scanLog), len(heapLog))
						}
						for i := range scanLog {
							if scanLog[i] != heapLog[i] {
								t.Fatalf("step %d: variate %d is %v (scan) vs %v (heap)", step, i, scanLog[i], heapLog[i])
							}
						}
						agesScan, agesHeap := scan.Ages(), heap.Ages()
						for i := range agesScan {
							if !ulpClose(agesScan[i], agesHeap[i]) {
								t.Fatalf("step %d: proc %d age %v (scan) vs %v (heap)", step, i, agesScan[i], agesHeap[i])
							}
						}
					}
					if len(scanLog) < 1000 {
						t.Fatalf("schedule only drew %d variates; test lost its teeth", len(scanLog))
					}
				})
			}
		}
	}
}

// ulpClose reports near-equality up to accumulated last-ulp differences
// between the scan's repeated-subtraction arithmetic and the heap's
// absolute-time representation.
func ulpClose(a, b float64) bool {
	if a == b {
		return true
	}
	diff := math.Abs(a - b)
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= 1e-9*scale+1e-12
}

// TestHeapMatchesScanSimultaneousFailures drives both implementations
// through deterministic simultaneous failures: every processor fails at
// the same instant, the lowest index must be selected as the failed one,
// and the remaining processors stay pinned at zero (failed-only) or all
// rejuvenate (all). Deterministic gaps make every comparison exact.
func TestHeapMatchesScanSimultaneousFailures(t *testing.T) {
	for _, policy := range []RejuvenationPolicy{RejuvenateFailedOnly, RejuvenateAll} {
		t.Run(policy.String(), func(t *testing.T) {
			const procs = 5
			var scanLog, heapLog []float64
			dist := Deterministic{Value: 8}
			scan, err := NewScanProcess(recordingDist{dist, &scanLog}, procs, policy, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			heap, err := NewSuperposedProcess(recordingDist{dist, &heapLog}, procs, policy, rng.New(1))
			if err != nil {
				t.Fatal(err)
			}
			// All five processors fail simultaneously at t = 8; observing
			// failures one by one must retire them in index order, each
			// with an exactly-zero gap after the first.
			for round := 0; round < 3; round++ {
				if got := scan.NextFailure(); got != 8 {
					t.Fatalf("round %d: scan first gap %v, want 8", round, got)
				}
				if got := heap.NextFailure(); got != 8 {
					t.Fatalf("round %d: heap first gap %v, want 8", round, got)
				}
				scan.Advance(3)
				heap.Advance(3)
				scan.ObserveFailure()
				heap.ObserveFailure()
				if policy == RejuvenateAll {
					// Everyone is fresh again; nothing left pinned.
					for i, a := range heap.Ages() {
						if a != 8 {
							t.Fatalf("round %d: rejuvenate-all heap age[%d] = %v, want 8", round, i, a)
						}
					}
				} else {
					// The remaining four are pinned at exactly zero and
					// must be observed in index order with zero gaps.
					for k := 0; k < procs-1; k++ {
						if got := scan.NextFailure(); got != 0 {
							t.Fatalf("round %d: scan pinned gap %v, want 0", round, got)
						}
						if got := heap.NextFailure(); got != 0 {
							t.Fatalf("round %d: heap pinned gap %v, want 0", round, got)
						}
						scan.ObserveFailure()
						heap.ObserveFailure()
						for i := range scanLog {
							if scanLog[i] != heapLog[i] {
								t.Fatalf("variate %d diverged: %v vs %v", i, scanLog[i], heapLog[i])
							}
						}
					}
				}
				for i := range heap.Ages() {
					if heap.Ages()[i] != scan.Ages()[i] {
						t.Fatalf("round %d: ages diverged: %v vs %v", round, scan.Ages(), heap.Ages())
					}
				}
			}
			if len(scanLog) != len(heapLog) {
				t.Fatalf("draw counts diverged: %d vs %d", len(scanLog), len(heapLog))
			}
		})
	}
}

// TestRecordedTraceReplaysSharedEnvironment pins the CRN contract: two
// cursors over one recording observe bit-identical gap sequences, and
// extending the recording through one cursor is visible to the other.
func TestRecordedTraceReplaysSharedEnvironment(t *testing.T) {
	e, err := NewExponential(0.1)
	if err != nil {
		t.Fatal(err)
	}
	src, err := NewSuperposedProcess(e, 4, RejuvenateFailedOnly, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	tr := NewRecordedTrace(src)
	a := tr.Cursor()
	var gapsA []float64
	for i := 0; i < 50; i++ {
		gapsA = append(gapsA, a.NextFailure())
		a.ObserveFailure()
	}
	if tr.Recorded() < 50 {
		t.Fatalf("recorded %d gaps, want ≥ 50", tr.Recorded())
	}
	b := tr.Cursor()
	for i := 0; i < 50; i++ {
		if got := b.NextFailure(); got != gapsA[i] {
			t.Fatalf("gap %d: second cursor saw %v, first %v", i, got, gapsA[i])
		}
		b.ObserveFailure()
	}
	// Partial consumption replays like a live process.
	b.Reset()
	first := b.NextFailure()
	b.Advance(first / 2)
	if got := b.NextFailure(); math.Abs(got-first/2) > 1e-12 {
		t.Fatalf("after advance: %v, want %v", got, first/2)
	}
	// Reset starts a fresh replication: a new recording, new gaps.
	tr.Reset()
	if tr.Recorded() != 0 {
		t.Fatalf("reset kept %d gaps", tr.Recorded())
	}
	c := tr.Cursor()
	same := 0
	for i := 0; i < 50; i++ {
		if c.NextFailure() == gapsA[i] {
			same++
		}
		c.ObserveFailure()
	}
	if same > 2 {
		t.Fatalf("fresh replication repeated %d/50 gaps of the previous one", same)
	}
}
