package failure

import (
	"fmt"

	"repro/internal/rng"
)

// SuperposedProcess superposes p independent per-processor distributions:
// the platform fails when any processor fails. It tracks each processor's
// time-to-next-failure, so it is exact for non-memoryless laws.
//
// Representation: an indexed min-heap over *absolute* failure times plus a
// global clock offset. Advancing the platform adds to the offset instead
// of aging p clocks, so the per-event costs are
//
//	NextFailure    O(1)   (peek the heap root)
//	Advance        O(1)   (bump the clock offset)
//	ObserveFailure O(log p) under RejuvenateFailedOnly (fix one heap entry)
//	               O(p)     under RejuvenateAll (every clock is rewritten)
//	Reset          O(p)     (resample every clock, heapify)
//
// versus O(p) for every operation of the ScanProcess reference. The
// variate draw order is identical to ScanProcess — clocks are sampled in
// processor-index order at construction/Reset/RejuvenateAll, the failed
// processor is the unique heap minimum with ties broken toward the lowest
// processor index (matching the scan's first-strict-minimum selection),
// and only the failed processor redraws under RejuvenateFailedOnly — so a
// campaign on either implementation consumes the same stream variates in
// the same order (pinned by identity_test.go).
//
// Determinism note: for p == 1 the clock offset stays zero and Advance
// subtracts from the single remaining time directly, reproducing the scan
// arithmetic bit-for-bit (this is the configuration E11's fingerprinted
// tables simulate). For p > 1 remaining times are computed as
// absolute − clock, which is mathematically identical but may differ from
// the scan's repeated subtraction in the last ulp; the variate sequence is
// still identical whenever both implementations see the same call
// schedule.
type SuperposedProcess struct {
	dist   Distribution
	policy RejuvenationPolicy
	r      *rng.Stream
	clock  float64   // process time elapsed since the last rebase
	abs    []float64 // absolute failure time per processor (remaining when p == 1)
	heap   []int32   // heap slot → processor index; empty when p == 1
}

// NewSuperposedProcess creates a platform of n processors whose individual
// inter-failure times follow dist.
func NewSuperposedProcess(dist Distribution, n int, policy RejuvenationPolicy, r *rng.Stream) (*SuperposedProcess, error) {
	if n <= 0 {
		return nil, fmt.Errorf("failure: processor count must be positive, got %d", n)
	}
	sp := &SuperposedProcess{dist: dist, policy: policy, r: r, abs: make([]float64, n)}
	if n > 1 {
		sp.heap = make([]int32, n)
	}
	sp.Reset()
	return sp, nil
}

// less orders processors by (absolute failure time, processor index). The
// index tie-break reproduces the scan reference's lowest-index selection
// among simultaneous failures, which keeps the variate draw order
// identical under ties (e.g. the pinned-at-zero processors of the
// failed-only policy).
func (sp *SuperposedProcess) less(a, b int32) bool {
	return sp.abs[a] < sp.abs[b] || (sp.abs[a] == sp.abs[b] && a < b)
}

// heapify rebuilds the heap from scratch (Floyd's O(p) construction).
func (sp *SuperposedProcess) heapify() {
	if len(sp.heap) == 0 {
		return
	}
	for i := range sp.heap {
		sp.heap[i] = int32(i)
	}
	for i := len(sp.heap)/2 - 1; i >= 0; i-- {
		sp.siftDown(i)
	}
}

// siftDown restores the heap property below slot i.
func (sp *SuperposedProcess) siftDown(i int) {
	n := len(sp.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && sp.less(sp.heap[r], sp.heap[l]) {
			small = r
		}
		if !sp.less(sp.heap[small], sp.heap[i]) {
			return
		}
		sp.heap[i], sp.heap[small] = sp.heap[small], sp.heap[i]
		i = small
	}
}

// NextFailure returns the minimum residual clock over processors: the heap
// root's absolute time minus the clock offset. O(1).
func (sp *SuperposedProcess) NextFailure() float64 {
	if len(sp.heap) == 0 {
		return sp.abs[0]
	}
	return sp.abs[sp.heap[0]] - sp.clock
}

// ObserveFailure advances the platform to the failure instant, then
// rejuvenates according to the policy: O(log p) for failed-only (one heap
// fix-up), O(p) for rejuvenate-all (every clock is rewritten anyway).
func (sp *SuperposedProcess) ObserveFailure() {
	if len(sp.heap) == 0 {
		sp.abs[0] = sp.dist.Sample(sp.r)
		return
	}
	top := sp.heap[0]
	if t := sp.abs[top]; t > sp.clock {
		// Setting clock = abs[top] (rather than adding the residual) keeps
		// processors tied at the failure instant at exactly zero remaining
		// time, matching the scan's x − x = 0 pinning.
		sp.clock = t
	}
	if sp.policy == RejuvenateAll {
		// Every clock is rewritten, so rebase the offset to zero and
		// rebuild the heap wholesale; samples are drawn in index order,
		// like the scan.
		sp.clock = 0
		for i := range sp.abs {
			sp.abs[i] = sp.dist.Sample(sp.r)
		}
		sp.heapify()
		return
	}
	sp.abs[top] = sp.clock + sp.dist.Sample(sp.r)
	sp.siftDown(0)
}

// Advance ages the whole platform by dt in O(1), by bumping the clock
// offset. Per the Process contract dt never exceeds the announced
// NextFailure, so no clock can be pushed past its failure time.
func (sp *SuperposedProcess) Advance(dt float64) {
	if len(sp.heap) == 0 {
		// Single processor: subtract directly so the arithmetic matches
		// the scan reference bit-for-bit (the clock offset stays zero).
		sp.abs[0] -= dt
		if sp.abs[0] < 0 {
			sp.abs[0] = 0
		}
		return
	}
	sp.clock += dt
}

// Rate returns p·λ for Exponential component laws and 0 otherwise.
func (sp *SuperposedProcess) Rate() float64 {
	if e, ok := sp.dist.(Exponential); ok {
		return e.Lambda * float64(len(sp.abs))
	}
	return 0
}

// Reset resamples every processor clock in index order, exactly as
// construction does, and rebases the clock offset to zero.
func (sp *SuperposedProcess) Reset() {
	sp.clock = 0
	for i := range sp.abs {
		sp.abs[i] = sp.dist.Sample(sp.r)
	}
	sp.heapify()
}

// Ages returns, for laws where it matters, the elapsed life of each
// processor clock expressed as time-to-failure remaining. Exposed for
// white-box tests.
func (sp *SuperposedProcess) Ages() []float64 {
	out := make([]float64, len(sp.abs))
	for i, a := range sp.abs {
		out[i] = a - sp.clock
	}
	return out
}

var (
	_ Process    = (*SuperposedProcess)(nil)
	_ Resettable = (*SuperposedProcess)(nil)
)
