package failure

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// RejuvenationPolicy states which processors get a fresh failure clock
// after a platform failure. For Exponential laws the policy is irrelevant
// (memorylessness), but for Weibull/log-normal laws it changes the platform
// process substantially — the distinction at the heart of the paper's
// critique of Bouguerra et al. [12] (which implicitly rejuvenates all
// processors at every failure and checkpoint).
type RejuvenationPolicy int

const (
	// RejuvenateFailedOnly resets only the failed processor's clock: the
	// realistic model (only the failed node is rebooted/replaced).
	RejuvenateFailedOnly RejuvenationPolicy = iota
	// RejuvenateAll resets every processor's clock at each failure: the
	// (unrealistic) assumption under which periodic checkpointing is
	// provably optimal for Weibull laws.
	RejuvenateAll
)

// String implements fmt.Stringer.
func (p RejuvenationPolicy) String() string {
	switch p {
	case RejuvenateFailedOnly:
		return "failed-only"
	case RejuvenateAll:
		return "all"
	default:
		return fmt.Sprintf("RejuvenationPolicy(%d)", int(p))
	}
}

// Process generates the platform-level failure sequence seen by a
// fully-parallel application: the superposition of the per-processor
// processes. It is consumed by the simulator.
type Process interface {
	// NextFailure returns the delay from now until the next platform
	// failure, assuming the platform runs (computing or recovering —
	// clocks advance identically) for that whole span.
	NextFailure() float64
	// ObserveFailure informs the process that the failure it announced
	// occurred and was handled (downtime served). Clocks of non-failed
	// processors have advanced by delay; the failed processor restarts.
	ObserveFailure()
	// Advance informs the process that dt time units elapsed without the
	// announced failure being reached (e.g. the segment finished first).
	Advance(dt float64)
	// Rate returns the nominal platform failure rate if defined (the
	// Exponential λ = p·λproc), or 0 when no constant rate exists.
	Rate() float64
}

// Resettable is implemented by processes that can re-initialize
// themselves for a fresh, independent run, drawing any new randomness
// from their original stream. A Reset consumes exactly the random
// variates the corresponding constructor would, so a Monte-Carlo
// campaign that resets one process per run is sample-for-sample
// identical to one constructing a fresh process per run — while
// allocating nothing in its steady state (see sim.MonteCarlo).
type Resettable interface {
	Reset()
}

// ExponentialProcess is the memoryless platform process of the core model:
// platform failures are Exp(λ) with λ = p·λproc.
type ExponentialProcess struct {
	lambda float64
	r      *rng.Stream
	next   float64
}

// NewExponentialProcess returns a platform process of rate lambda.
func NewExponentialProcess(lambda float64, r *rng.Stream) *ExponentialProcess {
	p := &ExponentialProcess{lambda: lambda, r: r}
	p.next = p.draw()
	return p
}

func (p *ExponentialProcess) draw() float64 { return p.r.ExpFloat64() / p.lambda }

// NextFailure returns the delay until the next failure.
func (p *ExponentialProcess) NextFailure() float64 { return p.next }

// ObserveFailure redraws the failure clock.
func (p *ExponentialProcess) ObserveFailure() { p.next = p.draw() }

// Advance consumes dt units of the current clock. Thanks to memorylessness
// the residual is still exponential, so consuming or redrawing are
// equivalent; we consume to keep the announced failure time consistent.
func (p *ExponentialProcess) Advance(dt float64) {
	p.next -= dt
	if p.next <= 0 {
		p.next = p.draw()
	}
}

// Rate returns λ.
func (p *ExponentialProcess) Rate() float64 { return p.lambda }

// Reset redraws the failure clock, exactly as construction does.
func (p *ExponentialProcess) Reset() { p.next = p.draw() }

// ScanProcess is the linear-scan reference implementation of the
// superposed platform process: it tracks each processor's
// time-to-next-failure in a flat slice and scans all p entries on every
// NextFailure/Advance/ObserveFailure. It is exact for non-memoryless laws
// but O(p) per event, which makes large-platform Monte-Carlo campaigns
// effectively quadratic in platform size. SuperposedProcess (the
// production implementation) replaces the scans with an indexed min-heap
// over absolute failure times; ScanProcess is kept as the semantic
// reference the heap is pinned against — the sample-identity tests in
// identity_test.go assert the two draw the same variates in the same
// order — and as the "before" arm of E14 and cmd/benchtraj.
type ScanProcess struct {
	dist   Distribution
	policy RejuvenationPolicy
	r      *rng.Stream
	remain []float64 // per-processor time until its next failure
}

// NewScanProcess creates a platform of n processors whose individual
// inter-failure times follow dist, using the O(p)-per-event scan
// representation.
func NewScanProcess(dist Distribution, n int, policy RejuvenationPolicy, r *rng.Stream) (*ScanProcess, error) {
	if n <= 0 {
		return nil, fmt.Errorf("failure: processor count must be positive, got %d", n)
	}
	sp := &ScanProcess{dist: dist, policy: policy, r: r, remain: make([]float64, n)}
	for i := range sp.remain {
		sp.remain[i] = dist.Sample(r)
	}
	return sp, nil
}

func (sp *ScanProcess) minIdx() (int, float64) {
	best, bestV := 0, sp.remain[0]
	for i, v := range sp.remain[1:] {
		if v < bestV {
			best, bestV = i+1, v
		}
	}
	return best, bestV
}

// NextFailure returns the minimum residual clock over processors.
func (sp *ScanProcess) NextFailure() float64 {
	_, v := sp.minIdx()
	return v
}

// ObserveFailure advances every clock to the failure instant, then
// rejuvenates according to the policy.
func (sp *ScanProcess) ObserveFailure() {
	idx, v := sp.minIdx()
	for i := range sp.remain {
		sp.remain[i] -= v
	}
	switch sp.policy {
	case RejuvenateAll:
		for i := range sp.remain {
			sp.remain[i] = sp.dist.Sample(sp.r)
		}
	default:
		sp.remain[idx] = sp.dist.Sample(sp.r)
		// Other processors keep their aged clocks; any that would have
		// failed at the same instant fail next with zero delay, which the
		// simulator handles as an immediate subsequent failure.
		for i := range sp.remain {
			if i != idx && sp.remain[i] <= 0 {
				sp.remain[i] = 0
			}
		}
	}
}

// Advance ages every processor clock by dt.
func (sp *ScanProcess) Advance(dt float64) {
	for i := range sp.remain {
		sp.remain[i] -= dt
		if sp.remain[i] < 0 {
			sp.remain[i] = 0
		}
	}
}

// Rate returns p·λ for Exponential component laws and 0 otherwise.
func (sp *ScanProcess) Rate() float64 {
	if e, ok := sp.dist.(Exponential); ok {
		return e.Lambda * float64(len(sp.remain))
	}
	return 0
}

// Reset resamples every processor clock, exactly as construction does.
func (sp *ScanProcess) Reset() {
	for i := range sp.remain {
		sp.remain[i] = sp.dist.Sample(sp.r)
	}
}

// Ages returns, for laws where it matters, the elapsed life of each
// processor clock expressed as time-to-failure remaining. Exposed for
// white-box tests.
func (sp *ScanProcess) Ages() []float64 {
	out := make([]float64, len(sp.remain))
	copy(out, sp.remain)
	return out
}

// TraceProcess replays a fixed sequence of platform failure inter-arrival
// times, cycling if exhausted. It adapts recorded traces (internal/trace)
// to the Process interface.
type TraceProcess struct {
	gaps []float64
	pos  int
	next float64
}

// NewTraceProcess replays gaps as successive inter-failure delays.
func NewTraceProcess(gaps []float64) (*TraceProcess, error) {
	if len(gaps) == 0 {
		return nil, fmt.Errorf("failure: empty trace")
	}
	for i, g := range gaps {
		if g < 0 || math.IsNaN(g) {
			return nil, fmt.Errorf("failure: trace gap %d is invalid (%v)", i, g)
		}
	}
	t := &TraceProcess{gaps: gaps}
	t.next = t.gaps[0]
	return t, nil
}

// NextFailure returns the remaining delay of the current gap.
func (t *TraceProcess) NextFailure() float64 { return t.next }

// ObserveFailure moves to the next recorded gap.
func (t *TraceProcess) ObserveFailure() {
	t.pos = (t.pos + 1) % len(t.gaps)
	t.next = t.gaps[t.pos]
}

// Advance consumes dt from the current gap.
func (t *TraceProcess) Advance(dt float64) {
	t.next -= dt
	if t.next < 0 {
		t.next = 0
	}
}

// Rate returns 0: a trace has no constant rate.
func (t *TraceProcess) Rate() float64 { return 0 }

// Reset rewinds the trace to its first gap.
func (t *TraceProcess) Reset() {
	t.pos = 0
	t.next = t.gaps[0]
}

var (
	_ Process    = (*ExponentialProcess)(nil)
	_ Process    = (*ScanProcess)(nil)
	_ Process    = (*TraceProcess)(nil)
	_ Resettable = (*ExponentialProcess)(nil)
	_ Resettable = (*ScanProcess)(nil)
	_ Resettable = (*TraceProcess)(nil)
)
