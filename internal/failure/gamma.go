package failure

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// Gamma is the Gamma(k, θ) law (shape–scale parameterization). Like
// Weibull it interpolates hazard behaviours around the Exponential
// (k = 1): k < 1 gives a decreasing hazard, k > 1 increasing. It is a
// common alternative fit for failure inter-arrival data and rounds out
// the general-law extension.
type Gamma struct {
	// Shape is k (> 0).
	Shape float64
	// Scale is θ (> 0); the mean is k·θ.
	Scale float64
}

// NewGamma validates and returns a Gamma law.
func NewGamma(shape, scale float64) (Gamma, error) {
	if shape <= 0 || scale <= 0 {
		return Gamma{}, fmt.Errorf("failure: gamma shape and scale must be positive, got k=%v θ=%v", shape, scale)
	}
	return Gamma{Shape: shape, Scale: scale}, nil
}

// Sample draws by the Marsaglia–Tsang squeeze method (with the boost
// transform for shape < 1).
func (g Gamma) Sample(r *rng.Stream) float64 {
	k := g.Shape
	boost := 1.0
	if k < 1 {
		// X_k = X_{k+1} · U^{1/k}.
		boost = math.Pow(r.Float64(), 1/k)
		k++
	}
	d := k - 1.0/3.0
	c := 1 / math.Sqrt(9*d)
	for {
		var x, v float64
		for {
			x = r.NormFloat64()
			v = 1 + c*x
			if v > 0 {
				break
			}
		}
		v = v * v * v
		u := r.Float64()
		if u < 1-0.0331*x*x*x*x {
			return g.Scale * boost * d * v
		}
		if math.Log(u) < 0.5*x*x+d*(1-v+math.Log(v)) {
			return g.Scale * boost * d * v
		}
	}
}

// CDF returns the regularized lower incomplete gamma P(k, x/θ).
func (g Gamma) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return regularizedGammaP(g.Shape, x/g.Scale)
}

// Survival returns 1 − CDF(x).
func (g Gamma) Survival(x float64) float64 { return 1 - g.CDF(x) }

// Mean returns k·θ.
func (g Gamma) Mean() float64 { return g.Shape * g.Scale }

// String implements fmt.Stringer.
func (g Gamma) String() string { return fmt.Sprintf("Gamma(k=%g, θ=%g)", g.Shape, g.Scale) }

var (
	_ Distribution = Gamma{}
	_ Survivaler   = Gamma{}
)

// regularizedGammaP computes P(a, x) = γ(a, x)/Γ(a) by series expansion
// for x < a+1 and by continued fraction otherwise (Numerical-Recipes
// style, relative accuracy ~1e-12).
func regularizedGammaP(a, x float64) float64 {
	switch {
	case x <= 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

func gammaPSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-14 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaQContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-14 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}
