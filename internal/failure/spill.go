package failure

// Trace spill: a compact binary log of the gap sequences recorded by a
// campaign shard, written behind the recording loop (one record per
// completed block) and replayed sequentially on resume. The format is
// what makes killed campaigns resumable *bit-identically*: a replayed
// block feeds the exact recorded gaps back through the CRN loop, so the
// candidate makespans — and every statistic folded from them — match
// the uninterrupted run to the last bit.
//
// Layout (little-endian throughout):
//
//	header:  magic "CHKTRACE" | version u32 | rate f64 | metaLen u32 | meta bytes
//	record:  index u64 | reps u32 | gapCount u32 × reps | gaps f64 × Σcounts | crc32 u32
//
// meta is an opaque fingerprint string supplied by the campaign layer;
// readers surface it so mismatched spills fail loudly instead of
// replaying the wrong environment. The crc32 (IEEE) covers the encoded
// record payload. A kill mid-write leaves a truncated or corrupt tail;
// ReadTraceSpill treats that as the end of the good prefix and reports
// the offset where appending may resume after truncation.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/fsx"
)

const (
	spillMagic   = "CHKTRACE"
	spillVersion = 1
	// Sanity bounds applied while decoding, so a corrupt length field
	// cannot demand a giant allocation: replications per block and gaps
	// per replication far beyond any real campaign are rejected as
	// corruption.
	spillMaxReps = 1 << 24
	spillMaxGaps = 1 << 28
)

// SpilledBlock is one campaign block's recorded environment: the
// inter-failure gap sequence of every replication in the block.
type SpilledBlock struct {
	Index int
	Reps  [][]float64
}

// TraceSpillWriter appends block records to a spill file. Each
// WriteBlock flushes and fsyncs through to the file, so neither a kill
// nor a host crash loses more than the block being written — never a
// completed one. (Flush alone only survives a killed process; the page
// cache still dies with the host, which is exactly the failure the
// resume path exists for.)
type TraceSpillWriter struct {
	f *os.File
	w *bufio.Writer
}

// CreateTraceSpill creates (truncating) a spill file with the given
// fingerprint meta string and nominal failure rate.
func CreateTraceSpill(path, meta string, rate float64) (*TraceSpillWriter, error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	w := bufio.NewWriterSize(f, 1<<16)
	if _, err := w.WriteString(spillMagic); err != nil {
		f.Close()
		return nil, err
	}
	var scratch [8]byte
	binary.LittleEndian.PutUint32(scratch[:4], spillVersion)
	w.Write(scratch[:4])
	binary.LittleEndian.PutUint64(scratch[:], math.Float64bits(rate))
	w.Write(scratch[:])
	binary.LittleEndian.PutUint32(scratch[:4], uint32(len(meta)))
	w.Write(scratch[:4])
	if _, err := w.WriteString(meta); err != nil {
		f.Close()
		return nil, err
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return nil, err
	}
	// Make the header durable (and, via the directory fsync, the file's
	// very existence): a resume that finds no spill re-simulates from
	// scratch, but a resume that finds a header-less file fails loudly.
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	if err := fsx.SyncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, err
	}
	return &TraceSpillWriter{f: f, w: w}, nil
}

// AppendTraceSpill reopens an existing spill for appending after
// truncating it to offset — the resume path, with offset taken from
// ReadTraceSpill so the corrupt tail of a killed run is discarded.
func AppendTraceSpill(path string, offset int64) (*TraceSpillWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return nil, err
	}
	if err := f.Truncate(offset); err != nil {
		f.Close()
		return nil, err
	}
	if _, err := f.Seek(offset, io.SeekStart); err != nil {
		f.Close()
		return nil, err
	}
	return &TraceSpillWriter{f: f, w: bufio.NewWriterSize(f, 1<<16)}, nil
}

// WriteBlock appends one block record and flushes it to the file.
func (s *TraceSpillWriter) WriteBlock(index int, reps [][]float64) error {
	if index < 0 {
		return fmt.Errorf("failure: negative spill block index %d", index)
	}
	total := 0
	for _, r := range reps {
		total += len(r)
	}
	buf := make([]byte, 0, 12+4*len(reps)+8*total)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(index))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(reps)))
	for _, r := range reps {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
	}
	for _, r := range reps {
		for _, g := range r {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(g))
		}
	}
	if _, err := s.w.Write(buf); err != nil {
		return err
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(buf))
	if _, err := s.w.Write(crc[:]); err != nil {
		return err
	}
	if err := s.w.Flush(); err != nil {
		return err
	}
	return s.f.Sync()
}

// Close flushes, fsyncs and closes the underlying file.
func (s *TraceSpillWriter) Close() error {
	if err := s.w.Flush(); err != nil {
		s.f.Close()
		return err
	}
	if err := s.f.Sync(); err != nil {
		s.f.Close()
		return err
	}
	return s.f.Close()
}

// TraceSpillReader reads a spill sequentially.
type TraceSpillReader struct {
	f      *os.File
	r      *bufio.Reader
	meta   string
	rate   float64
	offset int64 // end of the last successfully decoded record
}

// OpenTraceSpill opens path and decodes the header.
func OpenTraceSpill(path string) (*TraceSpillReader, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	r := bufio.NewReaderSize(f, 1<<16)
	head := make([]byte, len(spillMagic)+4+8+4)
	if _, err := io.ReadFull(r, head); err != nil {
		f.Close()
		return nil, fmt.Errorf("failure: spill %s: truncated header: %w", path, err)
	}
	if string(head[:len(spillMagic)]) != spillMagic {
		f.Close()
		return nil, fmt.Errorf("failure: %s is not a trace spill (bad magic)", path)
	}
	p := len(spillMagic)
	if v := binary.LittleEndian.Uint32(head[p:]); v != spillVersion {
		f.Close()
		return nil, fmt.Errorf("failure: spill %s has unsupported version %d", path, v)
	}
	p += 4
	rate := math.Float64frombits(binary.LittleEndian.Uint64(head[p:]))
	p += 8
	metaLen := binary.LittleEndian.Uint32(head[p:])
	if metaLen > 1<<20 {
		f.Close()
		return nil, fmt.Errorf("failure: spill %s claims %d-byte meta", path, metaLen)
	}
	meta := make([]byte, metaLen)
	if _, err := io.ReadFull(r, meta); err != nil {
		f.Close()
		return nil, fmt.Errorf("failure: spill %s: truncated meta: %w", path, err)
	}
	return &TraceSpillReader{
		f:      f,
		r:      r,
		meta:   string(meta),
		rate:   rate,
		offset: int64(len(head)) + int64(metaLen),
	}, nil
}

// Meta returns the fingerprint string the spill was created with.
func (s *TraceSpillReader) Meta() string { return s.meta }

// Rate returns the nominal failure rate recorded in the header.
func (s *TraceSpillReader) Rate() float64 { return s.rate }

// Offset returns the file offset just past the last complete record —
// where AppendTraceSpill should truncate to resume after a kill.
func (s *TraceSpillReader) Offset() int64 { return s.offset }

// ErrSpillTail marks a truncated or corrupt record tail: the expected
// outcome of a killed writer, distinguished from a clean io.EOF so
// resume logic knows the file needs truncating before appending.
var ErrSpillTail = errors.New("failure: truncated or corrupt spill tail")

// Next decodes the next block record. io.EOF signals a clean end;
// ErrSpillTail a truncated or corrupt tail (resume by truncating to
// Offset and re-running the lost blocks).
func (s *TraceSpillReader) Next() (SpilledBlock, error) {
	var fixed [12]byte
	if _, err := io.ReadFull(s.r, fixed[:]); err != nil {
		if err == io.EOF {
			return SpilledBlock{}, io.EOF
		}
		return SpilledBlock{}, ErrSpillTail
	}
	index := binary.LittleEndian.Uint64(fixed[:8])
	reps := binary.LittleEndian.Uint32(fixed[8:])
	if index > 1<<40 || reps > spillMaxReps {
		return SpilledBlock{}, ErrSpillTail
	}
	counts := make([]byte, 4*reps)
	if _, err := io.ReadFull(s.r, counts); err != nil {
		return SpilledBlock{}, ErrSpillTail
	}
	total := uint64(0)
	for i := uint32(0); i < reps; i++ {
		c := binary.LittleEndian.Uint32(counts[4*i:])
		if c > spillMaxGaps {
			return SpilledBlock{}, ErrSpillTail
		}
		total += uint64(c)
	}
	if total > spillMaxGaps {
		return SpilledBlock{}, ErrSpillTail
	}
	gaps := make([]byte, 8*total)
	if _, err := io.ReadFull(s.r, gaps); err != nil {
		return SpilledBlock{}, ErrSpillTail
	}
	var crcBuf [4]byte
	if _, err := io.ReadFull(s.r, crcBuf[:]); err != nil {
		return SpilledBlock{}, ErrSpillTail
	}
	crc := crc32.NewIEEE()
	crc.Write(fixed[:])
	crc.Write(counts)
	crc.Write(gaps)
	if binary.LittleEndian.Uint32(crcBuf[:]) != crc.Sum32() {
		return SpilledBlock{}, ErrSpillTail
	}
	blk := SpilledBlock{Index: int(index), Reps: make([][]float64, reps)}
	off := 0
	for i := uint32(0); i < reps; i++ {
		c := int(binary.LittleEndian.Uint32(counts[4*i:]))
		rep := make([]float64, c)
		for j := 0; j < c; j++ {
			rep[j] = math.Float64frombits(binary.LittleEndian.Uint64(gaps[off:]))
			off += 8
		}
		blk.Reps[i] = rep
	}
	s.offset += int64(12 + len(counts) + len(gaps) + 4)
	return blk, nil
}

// Close closes the underlying file.
func (s *TraceSpillReader) Close() error { return s.f.Close() }

// ReadTraceSpill decodes every complete block of a spill in one call,
// returning the blocks, the header meta and rate, and the offset of the
// end of the good prefix. A truncated or corrupt tail is NOT an error —
// it is the expected state after a kill; tail reports whether one was
// found (the caller should truncate to offset before appending).
func ReadTraceSpill(path string) (blocks []SpilledBlock, meta string, rate float64, offset int64, tail bool, err error) {
	r, err := OpenTraceSpill(path)
	if err != nil {
		return nil, "", 0, 0, false, err
	}
	defer r.Close()
	for {
		blk, err := r.Next()
		if err == io.EOF {
			return blocks, r.Meta(), r.Rate(), r.Offset(), false, nil
		}
		if errors.Is(err, ErrSpillTail) {
			return blocks, r.Meta(), r.Rate(), r.Offset(), true, nil
		}
		if err != nil {
			return nil, "", 0, 0, false, err
		}
		blocks = append(blocks, blk)
	}
}
