package failure

import (
	"math"
	"testing"

	"repro/internal/rng"
	"repro/internal/stats"
)

func TestGammaValidation(t *testing.T) {
	if _, err := NewGamma(0, 1); err == nil {
		t.Error("zero shape should be rejected")
	}
	if _, err := NewGamma(1, -1); err == nil {
		t.Error("negative scale should be rejected")
	}
	if _, err := NewGamma(2, 3); err != nil {
		t.Errorf("valid gamma rejected: %v", err)
	}
}

func TestGammaMean(t *testing.T) {
	g, _ := NewGamma(2.5, 4)
	if g.Mean() != 10 {
		t.Errorf("Mean = %v, want 10", g.Mean())
	}
	m := sampleMean(g, 300000, 7)
	if math.Abs(m-10)/10 > 0.01 {
		t.Errorf("sample mean = %v, want ≈ 10", m)
	}
}

func TestGammaShape1IsExponential(t *testing.T) {
	// Gamma(1, θ) = Exp(1/θ).
	g, _ := NewGamma(1, 5)
	e, _ := NewExponential(0.2)
	for _, x := range []float64{0.5, 2, 10, 30} {
		if math.Abs(g.CDF(x)-e.CDF(x)) > 1e-10 {
			t.Errorf("Gamma(1,5).CDF(%v) = %v, want %v", x, g.CDF(x), e.CDF(x))
		}
	}
}

func TestGammaCDFKnownValues(t *testing.T) {
	// P(k=2, x=2) with θ=1: 1 − e^{−2}(1+2) = 0.59399…
	g, _ := NewGamma(2, 1)
	want := 1 - math.Exp(-2)*3
	if got := g.CDF(2); math.Abs(got-want) > 1e-10 {
		t.Errorf("CDF(2) = %v, want %v", got, want)
	}
	if g.CDF(0) != 0 || g.CDF(-1) != 0 {
		t.Error("CDF at non-positive x should be 0")
	}
	// Survival complements.
	if math.Abs(g.CDF(3)+g.Survival(3)-1) > 1e-12 {
		t.Error("CDF + Survival ≠ 1")
	}
}

func TestGammaSamplerMatchesCDF(t *testing.T) {
	for _, g := range []Gamma{{Shape: 0.5, Scale: 2}, {Shape: 1, Scale: 1}, {Shape: 3.5, Scale: 0.7}} {
		r := rng.New(42)
		sample := make([]float64, 20000)
		for i := range sample {
			sample[i] = g.Sample(r)
		}
		ok, d, err := stats.KSTest(sample, g.CDF, 0.01)
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if !ok {
			t.Errorf("%v sampler rejected by KS (D = %v)", g, d)
		}
	}
}

func TestGammaCDFMonotone(t *testing.T) {
	g, _ := NewGamma(0.7, 3)
	prev := -1.0
	for x := 0.0; x <= 30; x += 0.25 {
		c := g.CDF(x)
		if c < prev-1e-12 || c < 0 || c > 1 {
			t.Fatalf("CDF not monotone/in-range at %v: %v after %v", x, c, prev)
		}
		prev = c
	}
}

func TestGammaString(t *testing.T) {
	g, _ := NewGamma(1, 1)
	if g.String() == "" {
		t.Error("empty String()")
	}
}
