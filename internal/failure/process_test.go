package failure

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestExponentialProcessRateAndRenewal(t *testing.T) {
	r := rng.New(1)
	p := NewExponentialProcess(2, r)
	if p.Rate() != 2 {
		t.Errorf("Rate = %v", p.Rate())
	}
	// Mean inter-failure time should be 1/2.
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += p.NextFailure()
		p.ObserveFailure()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("mean gap = %v, want ≈ 0.5", mean)
	}
}

func TestExponentialProcessAdvance(t *testing.T) {
	r := rng.New(2)
	p := NewExponentialProcess(1, r)
	next := p.NextFailure()
	if next <= 0 {
		t.Fatal("next failure must be positive")
	}
	p.Advance(next / 2)
	got := p.NextFailure()
	if math.Abs(got-next/2) > 1e-12 {
		t.Errorf("after Advance, next = %v, want %v", got, next/2)
	}
	// Advancing past the failure should redraw a positive clock.
	p.Advance(got + 1)
	if p.NextFailure() <= 0 {
		t.Error("clock after over-advance should be a fresh positive draw")
	}
}

func TestSuperposedExponentialMatchesPlatformRate(t *testing.T) {
	// Superposing p Exp(λproc) processes gives platform rate p·λproc.
	const procs = 8
	const lambdaProc = 0.05
	r := rng.New(3)
	e, _ := NewExponential(lambdaProc)
	sp, err := NewSuperposedProcess(e, procs, RejuvenateFailedOnly, r)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Rate() != procs*lambdaProc {
		t.Errorf("Rate = %v", sp.Rate())
	}
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		gap := sp.NextFailure()
		sum += gap
		sp.ObserveFailure()
	}
	mean := sum / n
	want := 1 / (procs * lambdaProc)
	if math.Abs(mean-want)/want > 0.02 {
		t.Errorf("mean platform gap = %v, want ≈ %v", mean, want)
	}
}

func TestSuperposedValidation(t *testing.T) {
	if _, err := NewSuperposedProcess(Exponential{Lambda: 1}, 0, RejuvenateAll, rng.New(1)); err == nil {
		t.Error("zero processors should be rejected")
	}
}

func TestSuperposedAdvanceAges(t *testing.T) {
	r := rng.New(4)
	sp, _ := NewSuperposedProcess(Deterministic{Value: 10}, 3, RejuvenateFailedOnly, r)
	before := sp.Ages()
	sp.Advance(4)
	after := sp.Ages()
	for i := range before {
		if math.Abs(after[i]-(before[i]-4)) > 1e-12 {
			t.Errorf("proc %d: age %v → %v, want −4", i, before[i], after[i])
		}
	}
}

func TestSuperposedRejuvenationPolicies(t *testing.T) {
	// With deterministic gaps, failed-only keeps other clocks aged while
	// rejuvenate-all resets them.
	r := rng.New(5)
	failedOnly, _ := NewSuperposedProcess(Deterministic{Value: 10}, 2, RejuvenateFailedOnly, r)
	failedOnly.Advance(6)
	failedOnly.ObserveFailure() // both at 4 → both fail; one resets to 10, other pinned at 0
	ages := failedOnly.Ages()
	has10, has0 := false, false
	for _, a := range ages {
		if a == 10 {
			has10 = true
		}
		if a == 0 {
			has0 = true
		}
	}
	if !has10 || !has0 {
		t.Errorf("failed-only ages = %v, want one fresh (10) and one due (0)", ages)
	}

	all, _ := NewSuperposedProcess(Deterministic{Value: 10}, 2, RejuvenateAll, rng.New(6))
	all.Advance(6)
	all.ObserveFailure()
	for _, a := range all.Ages() {
		if a != 10 {
			t.Errorf("rejuvenate-all should reset every clock, got %v", all.Ages())
		}
	}
}

func TestTraceProcess(t *testing.T) {
	tp, err := NewTraceProcess([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if tp.Rate() != 0 {
		t.Error("trace process has no constant rate")
	}
	if tp.NextFailure() != 1 {
		t.Errorf("first gap = %v", tp.NextFailure())
	}
	tp.ObserveFailure()
	if tp.NextFailure() != 2 {
		t.Errorf("second gap = %v", tp.NextFailure())
	}
	tp.Advance(0.5)
	if tp.NextFailure() != 1.5 {
		t.Errorf("after advance = %v", tp.NextFailure())
	}
	tp.ObserveFailure()
	tp.ObserveFailure() // wraps around
	if tp.NextFailure() != 1 {
		t.Errorf("wrap-around gap = %v", tp.NextFailure())
	}
}

func TestTraceProcessValidation(t *testing.T) {
	if _, err := NewTraceProcess(nil); err == nil {
		t.Error("empty trace should be rejected")
	}
	if _, err := NewTraceProcess([]float64{1, -2}); err == nil {
		t.Error("negative gap should be rejected")
	}
	if _, err := NewTraceProcess([]float64{math.NaN()}); err == nil {
		t.Error("NaN gap should be rejected")
	}
}
