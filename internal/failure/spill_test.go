package failure

import (
	"errors"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/rng"
)

func spillBlocks(t *testing.T, seed uint64, n int) []SpilledBlock {
	t.Helper()
	r := rng.New(seed)
	blocks := make([]SpilledBlock, n)
	for b := range blocks {
		reps := make([][]float64, 1+r.IntN(5))
		for i := range reps {
			gaps := make([]float64, r.IntN(20))
			for j := range gaps {
				gaps[j] = r.ExpFloat64()
			}
			reps[i] = gaps
		}
		blocks[b] = SpilledBlock{Index: b, Reps: reps}
	}
	return blocks
}

func writeSpill(t *testing.T, path, meta string, rate float64, blocks []SpilledBlock) {
	t.Helper()
	w, err := CreateTraceSpill(path, meta, rate)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range blocks {
		if err := w.WriteBlock(blk.Index, blk.Reps); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func sameBlocks(a, b []SpilledBlock) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Index != b[i].Index || len(a[i].Reps) != len(b[i].Reps) {
			return false
		}
		for j := range a[i].Reps {
			if len(a[i].Reps[j]) != len(b[i].Reps[j]) {
				return false
			}
			for k := range a[i].Reps[j] {
				if math.Float64bits(a[i].Reps[j][k]) != math.Float64bits(b[i].Reps[j][k]) {
					return false
				}
			}
		}
	}
	return true
}

func TestSpillRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.trace")
	blocks := spillBlocks(t, 1, 12)
	writeSpill(t, path, "fp:test=1", 0.25, blocks)
	got, meta, rate, _, tail, err := ReadTraceSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if tail {
		t.Error("clean spill reported a corrupt tail")
	}
	if meta != "fp:test=1" || rate != 0.25 {
		t.Errorf("header meta=%q rate=%v", meta, rate)
	}
	if !sameBlocks(got, blocks) {
		t.Error("round trip changed block contents")
	}
	// Empty replications and empty blocks are representable.
	path2 := filepath.Join(t.TempDir(), "empty.trace")
	writeSpill(t, path2, "", 1, []SpilledBlock{{Index: 0, Reps: [][]float64{{}, {1.5}, {}}}, {Index: 1, Reps: nil}})
	got2, _, _, _, _, err := ReadTraceSpill(path2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got2) != 2 || len(got2[0].Reps) != 3 || len(got2[0].Reps[1]) != 1 || len(got2[1].Reps) != 0 {
		t.Errorf("degenerate blocks mangled: %+v", got2)
	}
}

// TestSpillTruncatedTail simulates a kill mid-write: every truncation
// point inside the last record must yield the complete prefix plus a
// tail marker, and AppendTraceSpill at the reported offset must produce
// a file equivalent to an uninterrupted run.
func TestSpillTruncatedTail(t *testing.T) {
	dir := t.TempDir()
	full := filepath.Join(dir, "full.trace")
	blocks := spillBlocks(t, 2, 6)
	writeSpill(t, full, "fp", 0.5, blocks)
	data, err := os.ReadFile(full)
	if err != nil {
		t.Fatal(err)
	}
	// Find the offset where the last record starts by reading 5 blocks.
	r, err := OpenTraceSpill(full)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	cut5 := r.Offset()
	r.Close()
	for _, cut := range []int64{cut5 + 1, cut5 + 13, int64(len(data)) - 1} {
		path := filepath.Join(dir, "cut.trace")
		if err := os.WriteFile(path, data[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		got, _, _, off, tail, err := ReadTraceSpill(path)
		if err != nil {
			t.Fatal(err)
		}
		if !tail {
			t.Errorf("cut=%d: truncated spill not flagged", cut)
		}
		if off != cut5 {
			t.Errorf("cut=%d: good offset %d, want %d", cut, off, cut5)
		}
		if !sameBlocks(got, blocks[:5]) {
			t.Errorf("cut=%d: prefix blocks corrupted", cut)
		}
		// Resume: truncate and append the lost block.
		w, err := AppendTraceSpill(path, off)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.WriteBlock(blocks[5].Index, blocks[5].Reps); err != nil {
			t.Fatal(err)
		}
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		resumed, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if string(resumed) != string(data) {
			t.Errorf("cut=%d: resumed file differs from uninterrupted run", cut)
		}
	}
}

// TestSpillCorruptPayload flips a byte inside a record: the CRC must
// catch it and reading must stop at the previous record boundary.
func TestSpillCorruptPayload(t *testing.T) {
	path := filepath.Join(t.TempDir(), "corrupt.trace")
	blocks := spillBlocks(t, 3, 4)
	writeSpill(t, path, "fp", 0.5, blocks)
	r, err := OpenTraceSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	good := r.Offset()
	r.Close()
	data, _ := os.ReadFile(path)
	data[good+20] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, _, _, off, tail, err := ReadTraceSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	if !tail || off != good || len(got) != 3 {
		t.Errorf("corrupt record: tail=%v off=%d blocks=%d (want true, %d, 3)", tail, off, len(got), good)
	}
}

func TestSpillRejectsForeignFiles(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "not-a-spill")
	if err := os.WriteFile(bad, []byte("definitely not a trace spill file"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceSpill(bad); err == nil {
		t.Error("foreign file accepted")
	}
	short := filepath.Join(dir, "short")
	if err := os.WriteFile(short, []byte("CHK"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenTraceSpill(short); err == nil {
		t.Error("short file accepted")
	}
	if _, err := OpenTraceSpill(filepath.Join(dir, "missing")); err == nil {
		t.Error("missing file accepted")
	}
}

// TestReplayTrace pins the replay path: a RecordedTrace over a live
// process and a ReplayTrace over its spilled gaps drive cursors
// bit-identically, and exhaustion is detected, not invented.
func TestReplayTrace(t *testing.T) {
	src := NewExponentialProcess(2, rng.New(77))
	live := NewRecordedTrace(src)
	cur := live.Cursor()
	for i := 0; i < 40; i++ {
		cur.Advance(cur.NextFailure())
		cur.ObserveFailure()
	}
	gaps := append([]float64(nil), live.Gaps()...)
	replay := ReplayTrace(gaps, 2)
	if replay.Exhausted() {
		t.Error("fresh replay already exhausted")
	}
	rc := replay.Cursor()
	for i := range gaps {
		if got := rc.NextFailure(); math.Float64bits(got) != math.Float64bits(gaps[i]) {
			t.Fatalf("gap %d: replay %v, recorded %v", i, got, gaps[i])
		}
		rc.Advance(rc.NextFailure())
		if i+1 < len(gaps) {
			rc.ObserveFailure()
		}
	}
	if replay.Exhausted() {
		t.Error("replay exhausted within the recording")
	}
	if rc.Rate() != 2 {
		t.Errorf("replay rate %v", rc.Rate())
	}
	rc.ObserveFailure() // step past the end
	if !math.IsInf(rc.NextFailure(), 1) {
		t.Errorf("past-end gap %v, want +Inf", rc.NextFailure())
	}
	if !replay.Exhausted() {
		t.Error("past-end read did not mark the replay exhausted")
	}
}

func TestSpillReaderNextEOF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "two.trace")
	writeSpill(t, path, "m", 1, spillBlocks(t, 4, 2))
	r, err := OpenTraceSpill(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 2; i++ {
		if _, err := r.Next(); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Next(); err != io.EOF {
		t.Errorf("clean end gave %v, want io.EOF", err)
	}
	if _, err := r.Next(); !errors.Is(err, io.EOF) && err != io.EOF {
		t.Errorf("repeated read past end gave %v", err)
	}
}
