package failure

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
	"repro/internal/stats"
)

func sampleMean(d Distribution, n int, seed uint64) float64 {
	r := rng.New(seed)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += d.Sample(r)
	}
	return sum / float64(n)
}

func TestExponentialValidation(t *testing.T) {
	if _, err := NewExponential(0); err == nil {
		t.Error("rate 0 should be rejected")
	}
	if _, err := NewExponential(-1); err == nil {
		t.Error("negative rate should be rejected")
	}
	if _, err := NewExponential(math.Inf(1)); err == nil {
		t.Error("infinite rate should be rejected")
	}
	if _, err := NewExponential(2); err != nil {
		t.Errorf("valid rate rejected: %v", err)
	}
}

func TestExponentialMoments(t *testing.T) {
	e, _ := NewExponential(0.5)
	if e.Mean() != 2 {
		t.Errorf("Mean = %v, want 2", e.Mean())
	}
	m := sampleMean(e, 300000, 1)
	if math.Abs(m-2) > 0.02 {
		t.Errorf("sample mean = %v, want ≈ 2", m)
	}
}

func TestExponentialCDFSurvival(t *testing.T) {
	e, _ := NewExponential(1)
	if e.CDF(0) != 0 || e.CDF(-1) != 0 {
		t.Error("CDF at non-positive x should be 0")
	}
	if math.Abs(e.CDF(1)-(1-1/math.E)) > 1e-12 {
		t.Errorf("CDF(1) = %v", e.CDF(1))
	}
	for _, x := range []float64{0.1, 1, 5} {
		if math.Abs(e.CDF(x)+e.Survival(x)-1) > 1e-12 {
			t.Errorf("CDF + Survival ≠ 1 at %v", x)
		}
	}
	if e.Hazard(3) != 1 {
		t.Error("exponential hazard should be constant λ")
	}
}

func TestWeibullMoments(t *testing.T) {
	w, err := NewWeibull(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := 3 * math.Gamma(1.5)
	if math.Abs(w.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", w.Mean(), want)
	}
	m := sampleMean(w, 300000, 2)
	if math.Abs(m-want) > 0.02 {
		t.Errorf("sample mean = %v, want ≈ %v", m, want)
	}
}

func TestWeibullShape1IsExponential(t *testing.T) {
	w, _ := NewWeibull(1, 2) // Exp(rate 1/2)
	e, _ := NewExponential(0.5)
	for _, x := range []float64{0.1, 1, 3, 10} {
		if math.Abs(w.CDF(x)-e.CDF(x)) > 1e-12 {
			t.Errorf("Weibull(1, 2) CDF(%v) = %v, want %v", x, w.CDF(x), e.CDF(x))
		}
	}
}

func TestWeibullHazardMonotone(t *testing.T) {
	dec, _ := NewWeibull(0.7, 1)
	inc, _ := NewWeibull(1.5, 1)
	if dec.Hazard(0.5) <= dec.Hazard(2) {
		t.Error("shape < 1 should have decreasing hazard")
	}
	if inc.Hazard(0.5) >= inc.Hazard(2) {
		t.Error("shape > 1 should have increasing hazard")
	}
	if !math.IsInf(dec.Hazard(0), 1) {
		t.Error("shape < 1 hazard at 0 should be +Inf")
	}
}

func TestWeibullValidation(t *testing.T) {
	if _, err := NewWeibull(0, 1); err == nil {
		t.Error("zero shape should be rejected")
	}
	if _, err := NewWeibull(1, -2); err == nil {
		t.Error("negative scale should be rejected")
	}
}

func TestLogNormalMoments(t *testing.T) {
	l, err := NewLogNormal(0, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Exp(0.125)
	if math.Abs(l.Mean()-want) > 1e-12 {
		t.Errorf("Mean = %v, want %v", l.Mean(), want)
	}
	m := sampleMean(l, 300000, 3)
	if math.Abs(m-want) > 0.02 {
		t.Errorf("sample mean = %v, want ≈ %v", m, want)
	}
	if math.Abs(l.CDF(1)-0.5) > 1e-12 {
		t.Errorf("median should be e^μ: CDF(1) = %v", l.CDF(1))
	}
}

func TestUniform(t *testing.T) {
	u, err := NewUniform(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if u.Mean() != 2 {
		t.Errorf("Mean = %v", u.Mean())
	}
	if u.CDF(0) != 0 || u.CDF(4) != 1 || u.CDF(2) != 0.5 {
		t.Error("uniform CDF wrong")
	}
	if _, err := NewUniform(3, 1); err == nil {
		t.Error("inverted bounds should be rejected")
	}
}

func TestDeterministic(t *testing.T) {
	d := Deterministic{Value: 5}
	if d.Sample(rng.New(1)) != 5 || d.Mean() != 5 {
		t.Error("deterministic law broken")
	}
	if d.CDF(4.9) != 0 || d.CDF(5) != 1 {
		t.Error("deterministic CDF wrong")
	}
}

func TestCDFMonotoneProperty(t *testing.T) {
	dists := []Distribution{
		Exponential{Lambda: 0.3},
		Weibull{Shape: 0.7, Scale: 2},
		LogNormal{Mu: 0.5, Sigma: 1},
		Uniform{Lo: 0, Hi: 4},
	}
	f := func(a, b float64) bool {
		x := math.Abs(math.Mod(a, 100))
		y := math.Abs(math.Mod(b, 100))
		if x > y {
			x, y = y, x
		}
		for _, d := range dists {
			cx, cy := d.CDF(x), d.CDF(y)
			if cx < 0 || cy > 1 || cx > cy+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestFitExponential(t *testing.T) {
	e, _ := NewExponential(0.25)
	r := rng.New(4)
	samples := make([]float64, 100000)
	for i := range samples {
		samples[i] = e.Sample(r)
	}
	fit, err := FitExponential(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Lambda-0.25) > 0.005 {
		t.Errorf("fitted λ = %v, want ≈ 0.25", fit.Lambda)
	}
	if _, err := FitExponential(nil); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := FitExponential([]float64{0, 0}); err == nil {
		t.Error("all-zero sample should fail")
	}
	if _, err := FitExponential([]float64{1, -1}); err == nil {
		t.Error("negative sample should fail")
	}
}

func TestFitWeibull(t *testing.T) {
	w, _ := NewWeibull(0.7, 10)
	r := rng.New(5)
	samples := make([]float64, 50000)
	for i := range samples {
		samples[i] = w.Sample(r)
	}
	fit, err := FitWeibull(samples)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fit.Shape-0.7) > 0.03 {
		t.Errorf("fitted shape = %v, want ≈ 0.7", fit.Shape)
	}
	if math.Abs(fit.Scale-10)/10 > 0.05 {
		t.Errorf("fitted scale = %v, want ≈ 10", fit.Scale)
	}
	if _, err := FitWeibull([]float64{1, -2}); err == nil {
		t.Error("non-positive samples should fail")
	}
	if _, err := FitWeibull(nil); err == nil {
		t.Error("empty sample should fail")
	}
}

func TestSamplersMatchCDFs(t *testing.T) {
	// Kolmogorov–Smirnov at 1% significance: each sampler's empirical
	// distribution must match its analytic CDF.
	dists := []Distribution{
		Exponential{Lambda: 0.3},
		Weibull{Shape: 0.7, Scale: 5},
		Weibull{Shape: 2, Scale: 1},
		LogNormal{Mu: 1, Sigma: 0.8},
		Uniform{Lo: 2, Hi: 9},
	}
	r := rng.New(99)
	for _, d := range dists {
		sample := make([]float64, 20000)
		for i := range sample {
			sample[i] = d.Sample(r)
		}
		ok, ks, err := stats.KSTest(sample, d.CDF, 0.01)
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if !ok {
			t.Errorf("%v: sampler rejected by KS test (D = %v)", d, ks)
		}
	}
}

func TestStringers(t *testing.T) {
	for _, d := range []Distribution{
		Exponential{Lambda: 1}, Weibull{Shape: 1, Scale: 1},
		LogNormal{Mu: 0, Sigma: 1}, Uniform{Lo: 0, Hi: 1}, Deterministic{Value: 1},
	} {
		if d.String() == "" {
			t.Errorf("%T has empty String()", d)
		}
	}
	if RejuvenateFailedOnly.String() == "" || RejuvenateAll.String() == "" {
		t.Error("policy String() empty")
	}
}
