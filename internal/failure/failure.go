// Package failure models the stochastic failure processes of the paper:
// Exponential inter-arrival times in the core model (Section 2), and the
// Weibull / log-normal laws of the Section 6 extension. It also provides
// the platform-level process obtained by superposing p independent
// per-processor processes, with the rejuvenation policies discussed in the
// related-work comparison with Bouguerra et al.
package failure

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Distribution is a positive continuous distribution of failure
// inter-arrival times.
type Distribution interface {
	// Sample draws one inter-arrival time.
	Sample(r *rng.Stream) float64
	// CDF returns P(X ≤ x).
	CDF(x float64) float64
	// Mean returns E[X] (the MTBF of the process it generates).
	Mean() float64
	// String describes the distribution for experiment tables.
	String() string
}

// HazardRater is implemented by distributions with a tractable hazard rate
// h(t) = f(t)/S(t); general-law scheduling heuristics use it.
type HazardRater interface {
	Hazard(t float64) float64
}

// Survivaler is implemented by distributions with a tractable survival
// function S(t) = 1 − CDF(t). All distributions in this package implement
// it; it is split out so algorithms can state the capability they need.
type Survivaler interface {
	Survival(t float64) float64
}

// Exponential is the memoryless law of the paper's core model.
type Exponential struct {
	Lambda float64 // failure rate; MTBF = 1/Lambda
}

// NewExponential returns an Exponential law with rate lambda (> 0).
func NewExponential(lambda float64) (Exponential, error) {
	if lambda <= 0 || math.IsNaN(lambda) || math.IsInf(lambda, 0) {
		return Exponential{}, fmt.Errorf("failure: exponential rate must be positive and finite, got %v", lambda)
	}
	return Exponential{Lambda: lambda}, nil
}

// Sample draws an Exp(λ) variate.
func (e Exponential) Sample(r *rng.Stream) float64 { return r.ExpFloat64() / e.Lambda }

// CDF returns 1 − e^{−λx}.
func (e Exponential) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-e.Lambda * x)
}

// Survival returns e^{−λx}.
func (e Exponential) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-e.Lambda * x)
}

// Hazard returns the constant hazard rate λ.
func (e Exponential) Hazard(float64) float64 { return e.Lambda }

// Mean returns 1/λ.
func (e Exponential) Mean() float64 { return 1 / e.Lambda }

func (e Exponential) String() string { return fmt.Sprintf("Exp(λ=%g)", e.Lambda) }

// Weibull has survival S(t) = exp(−(t/Scale)^Shape). Shape < 1 gives the
// decreasing hazard rate reported for production HPC failure logs
// (Schroeder & Gibson; Heien et al.), the regime where memoryless
// scheduling is suboptimal.
type Weibull struct {
	Shape float64 // k
	Scale float64 // η
}

// NewWeibull validates and returns a Weibull law.
func NewWeibull(shape, scale float64) (Weibull, error) {
	if shape <= 0 || scale <= 0 {
		return Weibull{}, fmt.Errorf("failure: weibull shape and scale must be positive, got k=%v η=%v", shape, scale)
	}
	return Weibull{Shape: shape, Scale: scale}, nil
}

// Sample draws by inversion: η·(−ln U)^{1/k}.
func (w Weibull) Sample(r *rng.Stream) float64 {
	return w.Scale * math.Pow(r.ExpFloat64(), 1/w.Shape)
}

// CDF returns 1 − exp(−(x/η)^k).
func (w Weibull) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return -math.Expm1(-math.Pow(x/w.Scale, w.Shape))
}

// Survival returns exp(−(x/η)^k).
func (w Weibull) Survival(x float64) float64 {
	if x <= 0 {
		return 1
	}
	return math.Exp(-math.Pow(x/w.Scale, w.Shape))
}

// Hazard returns (k/η)·(t/η)^{k−1}.
func (w Weibull) Hazard(t float64) float64 {
	if t <= 0 {
		if w.Shape < 1 {
			return math.Inf(1)
		}
		if w.Shape == 1 {
			return 1 / w.Scale
		}
		return 0
	}
	return w.Shape / w.Scale * math.Pow(t/w.Scale, w.Shape-1)
}

// Mean returns η·Γ(1 + 1/k).
func (w Weibull) Mean() float64 { return w.Scale * math.Gamma(1+1/w.Shape) }

func (w Weibull) String() string { return fmt.Sprintf("Weibull(k=%g, η=%g)", w.Shape, w.Scale) }

// LogNormal has ln X ~ N(Mu, Sigma²).
type LogNormal struct {
	Mu    float64
	Sigma float64
}

// NewLogNormal validates and returns a log-normal law.
func NewLogNormal(mu, sigma float64) (LogNormal, error) {
	if sigma <= 0 {
		return LogNormal{}, fmt.Errorf("failure: log-normal sigma must be positive, got %v", sigma)
	}
	return LogNormal{Mu: mu, Sigma: sigma}, nil
}

// Sample draws exp(μ + σZ).
func (l LogNormal) Sample(r *rng.Stream) float64 {
	return math.Exp(l.Mu + l.Sigma*r.NormFloat64())
}

// CDF returns Φ((ln x − μ)/σ).
func (l LogNormal) CDF(x float64) float64 {
	if x <= 0 {
		return 0
	}
	return 0.5 * math.Erfc(-(math.Log(x)-l.Mu)/(l.Sigma*math.Sqrt2))
}

// Survival returns 1 − CDF(x).
func (l LogNormal) Survival(x float64) float64 { return 1 - l.CDF(x) }

// Mean returns exp(μ + σ²/2).
func (l LogNormal) Mean() float64 { return math.Exp(l.Mu + l.Sigma*l.Sigma/2) }

func (l LogNormal) String() string { return fmt.Sprintf("LogN(μ=%g, σ=%g)", l.Mu, l.Sigma) }

// Uniform is the law on [Lo, Hi] used by Bouguerra–Trystram–Wagner in
// their weak NP-completeness result, provided here for the extension
// experiments.
type Uniform struct {
	Lo, Hi float64
}

// NewUniform validates and returns a uniform law on [lo, hi].
func NewUniform(lo, hi float64) (Uniform, error) {
	if lo < 0 || hi <= lo {
		return Uniform{}, fmt.Errorf("failure: uniform requires 0 ≤ lo < hi, got [%v, %v]", lo, hi)
	}
	return Uniform{Lo: lo, Hi: hi}, nil
}

// Sample draws uniformly on [Lo, Hi).
func (u Uniform) Sample(r *rng.Stream) float64 { return r.Range(u.Lo, u.Hi) }

// CDF returns the linear CDF clamped to [0, 1].
func (u Uniform) CDF(x float64) float64 {
	switch {
	case x <= u.Lo:
		return 0
	case x >= u.Hi:
		return 1
	default:
		return (x - u.Lo) / (u.Hi - u.Lo)
	}
}

// Survival returns 1 − CDF(x).
func (u Uniform) Survival(x float64) float64 { return 1 - u.CDF(x) }

// Mean returns (Lo+Hi)/2.
func (u Uniform) Mean() float64 { return (u.Lo + u.Hi) / 2 }

func (u Uniform) String() string { return fmt.Sprintf("U[%g, %g]", u.Lo, u.Hi) }

// Deterministic always returns Value. Useful in tests to script failures.
type Deterministic struct {
	Value float64
}

// Sample returns Value.
func (d Deterministic) Sample(*rng.Stream) float64 { return d.Value }

// CDF is the step function at Value.
func (d Deterministic) CDF(x float64) float64 {
	if x < d.Value {
		return 0
	}
	return 1
}

// Survival returns 1 − CDF(x).
func (d Deterministic) Survival(x float64) float64 { return 1 - d.CDF(x) }

// Mean returns Value.
func (d Deterministic) Mean() float64 { return d.Value }

func (d Deterministic) String() string { return fmt.Sprintf("Det(%g)", d.Value) }

// Compile-time interface checks.
var (
	_ Distribution = Exponential{}
	_ Distribution = Weibull{}
	_ Distribution = LogNormal{}
	_ Distribution = Uniform{}
	_ Distribution = Deterministic{}
	_ HazardRater  = Exponential{}
	_ HazardRater  = Weibull{}
	_ Survivaler   = Exponential{}
	_ Survivaler   = Weibull{}
	_ Survivaler   = LogNormal{}
	_ Survivaler   = Uniform{}
	_ Survivaler   = Deterministic{}
)

// ErrEmptySample is returned by fitters invoked on empty data.
var ErrEmptySample = errors.New("failure: empty sample")

// FitExponential returns the maximum-likelihood Exponential law for the
// observed inter-arrival times (rate = 1/mean).
func FitExponential(samples []float64) (Exponential, error) {
	if len(samples) == 0 {
		return Exponential{}, ErrEmptySample
	}
	var sum float64
	for _, s := range samples {
		if s < 0 {
			return Exponential{}, fmt.Errorf("failure: negative inter-arrival time %v", s)
		}
		sum += s
	}
	if sum == 0 {
		return Exponential{}, errors.New("failure: all inter-arrival times are zero")
	}
	return Exponential{Lambda: float64(len(samples)) / sum}, nil
}

// FitWeibull estimates a Weibull law by maximum likelihood: the shape
// solves the standard one-dimensional MLE fixed-point equation (found by
// bisection), and the scale follows in closed form.
func FitWeibull(samples []float64) (Weibull, error) {
	if len(samples) == 0 {
		return Weibull{}, ErrEmptySample
	}
	logs := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s <= 0 {
			return Weibull{}, fmt.Errorf("failure: non-positive inter-arrival time %v", s)
		}
		logs = append(logs, math.Log(s))
	}
	var meanLog float64
	for _, l := range logs {
		meanLog += l
	}
	meanLog /= float64(len(logs))

	// MLE condition: 1/k = Σ x^k ln x / Σ x^k − mean(ln x).
	g := func(k float64) float64 {
		var num, den float64
		for i, s := range samples {
			xk := math.Pow(s, k)
			num += xk * logs[i]
			den += xk
		}
		return 1/k - (num/den - meanLog)
	}
	// Bracket: g is decreasing in k; scan for a sign change.
	lo, hi := 1e-3, 1.0
	for g(hi) > 0 && hi < 1e6 {
		lo = hi
		hi *= 2
	}
	if g(hi) > 0 {
		return Weibull{}, errors.New("failure: weibull MLE did not bracket (degenerate sample)")
	}
	k := lo
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if g(mid) > 0 {
			lo = mid
		} else {
			hi = mid
		}
		k = (lo + hi) / 2
	}
	var sumXk float64
	for _, s := range samples {
		sumXk += math.Pow(s, k)
	}
	scale := math.Pow(sumXk/float64(len(samples)), 1/k)
	return Weibull{Shape: k, Scale: scale}, nil
}
