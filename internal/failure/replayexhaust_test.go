package failure_test

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

// TestReplayTraceExhaustionMidSegment pins what happens when a spilled
// recording runs out in the middle of a segment attempt: the replay
// announces an infinite gap, the simulator finishes the rest of the run
// failure-free, and Exhausted() reports the truncation — the signal the
// campaign layer (and the executor's trace-replay mode) relies on to
// distinguish "genuinely no more failures" from "recording too short".
func TestReplayTraceExhaustionMidSegment(t *testing.T) {
	segs := []core.Segment{{Work: 10, Checkpoint: 1, Recovery: 0.5}}
	// Two recorded gaps, both striking inside the 11-unit attempt.
	replay := failure.ReplayTrace([]float64{3, 4}, 0.1)
	rs, err := sim.Run(segs, replay.Cursor(), sim.Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failures != 2 {
		t.Fatalf("failures = %d, want the 2 recorded strikes", rs.Failures)
	}
	if !replay.Exhausted() {
		t.Fatal("mid-segment truncation not flagged exhausted")
	}
	if math.IsInf(rs.Makespan, 0) || rs.Makespan <= 11 {
		t.Fatalf("makespan %v not a finite completed run", rs.Makespan)
	}
}

// TestReplayTraceExhaustionMidRecovery drives the truncation into the
// recovery loop: the last recorded gap is shorter than the recovery
// itself, so the recording dies while re-loading the checkpoint.
func TestReplayTraceExhaustionMidRecovery(t *testing.T) {
	segs := []core.Segment{{Work: 10, Checkpoint: 1, Recovery: 2}}
	// Gap 0.5 < recovery 2: the second strike lands mid-recovery, then
	// the recording is out.
	replay := failure.ReplayTrace([]float64{3, 0.5}, 0.1)
	rs, err := sim.Run(segs, replay.Cursor(), sim.Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rs.Failures != 2 {
		t.Fatalf("failures = %d, want 2", rs.Failures)
	}
	if rs.RecoveryTime <= 2 {
		t.Fatalf("recovery time %v does not include the failed attempt", rs.RecoveryTime)
	}
	if !replay.Exhausted() {
		t.Fatal("mid-recovery truncation not flagged exhausted")
	}
}

// TestReplayTraceSufficientRecordingNeverExhausts is the control: when
// the recording covers the whole run, replaying it must not trip the
// exhaustion flag, and the replayed run must match a live run over the
// same process bit-for-bit.
func TestReplayTraceSufficientRecordingNeverExhausts(t *testing.T) {
	segs := []core.Segment{
		{Work: 6, Checkpoint: 0.5, Recovery: 0.4},
		{Work: 8, Checkpoint: 0.5, Recovery: 0.6},
	}
	live := failure.NewRecordedTrace(failure.NewExponentialProcess(0.2, rng.New(31)))
	liveStats, err := sim.Run(segs, live.Cursor(), sim.Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	gaps := append([]float64(nil), live.Gaps()...)
	replay := failure.ReplayTrace(gaps, 0.2)
	replayStats, err := sim.Run(segs, replay.Cursor(), sim.Options{Downtime: 1})
	if err != nil {
		t.Fatal(err)
	}
	if replay.Exhausted() {
		t.Fatal("replay of a complete recording reported exhaustion")
	}
	if liveStats != replayStats {
		t.Fatalf("replayed run differs from live run:\n%+v\n%+v", liveStats, replayStats)
	}
}
