package failure

import "math"

// RecordedTrace lazily materializes the platform-level inter-failure gap
// sequence of a live process so several candidate simulations can replay
// one stochastic environment — the common-random-numbers backbone behind
// sim.Campaign.
//
// The gap sequence of a Process is plan-independent: Advance only consumes
// parts of the announced gap, so the delays between successive failures
// depend on the process state alone, never on the plan being executed.
// Recording therefore drives the source through its failure sequence
// directly (NextFailure/ObserveFailure), and every candidate replays the
// identical gaps through a TraceCursor — the same idea as TraceProcess
// replaying a recorded log, but extended on demand instead of cycling when
// a candidate outlives the recording. S candidates thus cost one set of
// distribution draws instead of S, and their makespans are positively
// correlated, which is what shrinks the variance of paired strategy
// deltas.
type RecordedTrace struct {
	src  Process
	gaps []float64
}

// NewRecordedTrace wraps src for recording. The trace takes ownership of
// src's failure sequence: nothing else may advance src while the trace is
// in use.
func NewRecordedTrace(src Process) *RecordedTrace {
	return &RecordedTrace{src: src}
}

// Gap returns the i-th inter-failure gap, extending the recording from the
// live process on demand. Extension order — and hence the source stream's
// draw order — is deterministic regardless of which replay cursor
// triggers the extension, because cursors run sequentially within a
// replication.
func (t *RecordedTrace) Gap(i int) float64 {
	for len(t.gaps) <= i {
		g := t.src.NextFailure()
		t.src.ObserveFailure()
		t.gaps = append(t.gaps, g)
	}
	return t.gaps[i]
}

// Recorded returns the number of gaps materialized so far.
func (t *RecordedTrace) Recorded() int { return len(t.gaps) }

// Gaps returns the gaps recorded so far. The slice aliases the trace's
// internal buffer and is invalidated by Reset — spill writers must copy
// it before starting the next replication.
func (t *RecordedTrace) Gaps() []float64 { return t.gaps }

// Exhausted reports whether a replaying trace (ReplayTrace) has been
// asked for more gaps than were spilled. A bit-identical replay never
// exhausts — the spill holds exactly the gaps the original run drew —
// so exhaustion means the replay is being driven by a different
// workload or plan set than the recording, and the campaign layer
// escalates it to a fingerprint error.
func (t *RecordedTrace) Exhausted() bool {
	r, ok := t.src.(*replaySource)
	return ok && r.exhausted
}

// Source returns the live process being recorded.
func (t *RecordedTrace) Source() Process { return t.src }

// Reset begins a new replication: it discards the recorded gaps (keeping
// their capacity, so steady-state recording allocates nothing) and
// re-initializes the source process when it is Resettable, making the next
// recording statistically fresh.
func (t *RecordedTrace) Reset() {
	t.gaps = t.gaps[:0]
	if r, ok := t.src.(Resettable); ok {
		r.Reset()
	}
}

// TraceCursor replays a RecordedTrace through the Process interface. Each
// candidate simulation gets its own cursor (or reuses one via Reset);
// cursors share the recording, so replays draw nothing from the source
// stream beyond the shared extensions.
type TraceCursor struct {
	t    *RecordedTrace
	pos  int
	next float64
}

// Cursor returns a replay view positioned at the first gap of the current
// recording (materializing it if needed).
func (t *RecordedTrace) Cursor() *TraceCursor {
	c := &TraceCursor{t: t}
	c.Reset()
	return c
}

// NextFailure returns the remaining delay of the current gap.
func (c *TraceCursor) NextFailure() float64 { return c.next }

// ObserveFailure moves to the next recorded gap, extending the recording
// if this cursor is the first to reach it.
func (c *TraceCursor) ObserveFailure() {
	c.pos++
	c.next = c.t.Gap(c.pos)
}

// Advance consumes dt from the current gap.
func (c *TraceCursor) Advance(dt float64) {
	c.next -= dt
	if c.next < 0 {
		c.next = 0
	}
}

// Rate returns the source process's nominal rate.
func (c *TraceCursor) Rate() float64 { return c.t.src.Rate() }

// Reset rewinds the cursor to the start of the current recording. Note
// this replays the same environment again — fresh randomness comes from
// resetting the RecordedTrace itself between replications.
func (c *TraceCursor) Reset() {
	c.pos = 0
	c.next = c.t.Gap(0)
}

var (
	_ Process    = (*TraceCursor)(nil)
	_ Resettable = (*TraceCursor)(nil)
)

// replaySource feeds a fixed spilled gap sequence back through the
// Process interface so a RecordedTrace can re-materialize a prior
// recording instead of drawing fresh randomness. Past the end of the
// sequence it announces an infinite gap (no further failures) and sets
// the exhausted flag.
type replaySource struct {
	gaps      []float64
	pos       int
	rate      float64
	exhausted bool
}

func (r *replaySource) NextFailure() float64 {
	if r.pos >= len(r.gaps) {
		r.exhausted = true
		return math.Inf(1)
	}
	return r.gaps[r.pos]
}

func (r *replaySource) ObserveFailure() { r.pos++ }
func (r *replaySource) Advance(float64) {}
func (r *replaySource) Rate() float64   { return r.rate }
func (r *replaySource) Reset()          { r.pos = 0; r.exhausted = false }

var (
	_ Process    = (*replaySource)(nil)
	_ Resettable = (*replaySource)(nil)
)

// ReplayTrace returns a RecordedTrace that re-materializes a previously
// recorded gap sequence (one replication's worth, e.g. one entry of a
// SpilledBlock) instead of consuming a live process. Cursors over it
// behave exactly as they did over the original recording, which is what
// makes resume-from-spill bit-identical. rate is the nominal failure
// rate from the spill header.
//
// Note Reset rewinds to the SAME gap sequence (the replay analogue of
// "statistically fresh" is a different spilled replication), so a
// replay trace is used for one replication and discarded.
func ReplayTrace(gaps []float64, rate float64) *RecordedTrace {
	return &RecordedTrace{src: &replaySource{gaps: gaps, rate: rate}}
}
