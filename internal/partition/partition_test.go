package partition

import (
	"testing"

	"repro/internal/rng"
)

func TestValidate(t *testing.T) {
	good := Instance{Items: []int{20, 20, 20}, Target: 60}
	if err := good.Validate(); err != nil {
		t.Errorf("valid instance rejected: %v", err)
	}
	cases := []Instance{
		{Items: []int{1, 2}, Target: 3},                    // not multiple of 3
		{Items: []int{20, 20, 20}, Target: 0},              // bad target
		{Items: []int{10, 25, 25}, Target: 60},             // 10 ≤ T/4
		{Items: []int{30, 15, 15}, Target: 60},             // 30 ≥ T/2
		{Items: []int{20, 20, 21}, Target: 60},             // wrong sum
		{Items: nil, Target: 10},                           // empty
		{Items: []int{16, 20, 25, 20, 20, 20}, Target: 60}, // sum 61+60
	}
	for i, in := range cases {
		if err := in.Validate(); err == nil {
			t.Errorf("case %d should be invalid: %+v", i, in)
		}
	}
}

func TestSolveTrivialYes(t *testing.T) {
	in := Instance{Items: []int{20, 20, 20, 19, 20, 21}, Target: 60}
	sol, ok, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("instance is satisfiable")
	}
	if err := in.Check(sol); err != nil {
		t.Errorf("witness invalid: %v", err)
	}
}

func TestSolveNo(t *testing.T) {
	// Items sum to 2T but no triple hits T = 60 exactly:
	// {16,17,18,22,23,24}: triples must mix; 16+20... enumerate: the
	// exact solver decides.
	in := Instance{Items: []int{16, 17, 18, 22, 23, 24}, Target: 60}
	if err := in.Validate(); err != nil {
		t.Fatalf("instance should be well-formed: %v", err)
	}
	_, ok, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	// 16+20? No 20. Possible triples summing to 60: 16+20+24 no,
	// 16+21+23 no, 17+19+24 no, 16+22+22 no, 17+20+23 no, 18+19+23 no,
	// 16+23+21 no, 17+18+25 no, 18+20+22 no, 17+22+21 no, 18+24+18 no,
	// 16+24+20 no, 23+24+13 no... only {16,24,20},{17,23,20},{18,22,20},
	// {16,23,21},{17,22,21},{16,22,22},{17,24,19},{18,23,19},{24,18,18}:
	// none uses available values twice correctly. Expect unsatisfiable —
	// but trust the solver plus Check: if it says yes, verify.
	if ok {
		sol, _, _ := Solve(in)
		if err := in.Check(sol); err != nil {
			t.Errorf("solver returned invalid witness: %v", err)
		}
	}
}

func TestGenerateYes(t *testing.T) {
	r := rng.New(1)
	for n := 1; n <= 6; n++ {
		in, err := GenerateYes(n, 120, r)
		if err != nil {
			t.Fatal(err)
		}
		if err := in.Validate(); err != nil {
			t.Fatalf("generated instance invalid: %v", err)
		}
		sol, ok, err := Solve(in)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Fatalf("planted yes-instance unsolvable: %+v", in)
		}
		if err := in.Check(sol); err != nil {
			t.Errorf("witness invalid: %v", err)
		}
	}
}

func TestGenerateYesRoundsTarget(t *testing.T) {
	r := rng.New(2)
	in, err := GenerateYes(2, 100, r) // not divisible by 3 → rounded up
	if err != nil {
		t.Fatal(err)
	}
	if in.Target%3 != 0 {
		t.Errorf("target %d not rounded to a multiple of 3", in.Target)
	}
}

func TestGenerateNo(t *testing.T) {
	r := rng.New(3)
	in, err := GenerateNo(3, 120, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Validate(); err != nil {
		t.Fatalf("no-instance should still be well-formed: %v", err)
	}
	_, ok, err := Solve(in)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("GenerateNo returned a satisfiable instance")
	}
}

func TestGreedySolveNeverLies(t *testing.T) {
	// Greedy is an incomplete baseline: it may fail on yes-instances,
	// but any witness it returns must be valid.
	r := rng.New(4)
	for i := 0; i < 20; i++ {
		in, err := GenerateYes(3, 240, r)
		if err != nil {
			t.Fatal(err)
		}
		if sol, ok := GreedySolve(in); ok {
			if err := in.Check(sol); err != nil {
				t.Errorf("greedy returned invalid solution: %v", err)
			}
		}
	}
}

func TestGreedySolveUniformInstance(t *testing.T) {
	// With all items equal to T/3 greedy must succeed.
	in := Instance{Items: []int{40, 40, 40, 40, 40, 40}, Target: 120}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, ok := GreedySolve(in)
	if !ok {
		t.Fatal("greedy failed on the uniform instance")
	}
	if err := in.Check(sol); err != nil {
		t.Errorf("greedy witness invalid: %v", err)
	}
}

func TestCheckRejectsBadSolutions(t *testing.T) {
	in := Instance{Items: []int{20, 20, 20, 19, 20, 21}, Target: 60}
	bad := []Solution{
		{{0, 1, 2}},            // wrong group count
		{{0, 1}, {2, 3, 4}},    // group of 2
		{{0, 1, 2}, {0, 3, 4}}, // reuse
		{{0, 1, 3}, {2, 4, 5}}, // wrong sums
		{{0, 1, 9}, {2, 3, 4}}, // out of range
	}
	for i, sol := range bad {
		if err := in.Check(sol); err == nil {
			t.Errorf("bad solution %d accepted", i)
		}
	}
}

func TestSolveRejectsMalformed(t *testing.T) {
	if _, _, err := Solve(Instance{Items: []int{1, 2, 3}, Target: 6}); err == nil {
		t.Error("malformed instance should be rejected")
	}
}
