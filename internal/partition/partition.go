// Package partition implements the 3-PARTITION problem used as the source
// of the paper's strong NP-completeness reduction (Proposition 2): given
// 3n integers a_1..a_3n summing to n·T with T/4 < a_i < T/2, decide whether
// they can be split into n triples each summing to T.
//
// The package provides instance generation (planted yes-instances and
// perturbed no-instances), an exact backtracking decision procedure for
// the small sizes the reduction experiments need, and a first-fit greedy
// baseline.
package partition

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/rng"
)

// Instance is a 3-PARTITION instance.
type Instance struct {
	// Items holds the 3n integers.
	Items []int
	// Target is T, the required sum of each triple; Σ Items = n·T.
	Target int
}

// ErrMalformed is returned when an instance violates the 3-PARTITION
// shape constraints.
var ErrMalformed = errors.New("partition: malformed 3-PARTITION instance")

// Groups returns n, the number of triples.
func (in Instance) Groups() int { return len(in.Items) / 3 }

// Validate checks the structural constraints: |Items| = 3n, Σ = n·T and
// T/4 < a_i < T/2 for all i (strict, as in Garey & Johnson).
func (in Instance) Validate() error {
	if len(in.Items) == 0 || len(in.Items)%3 != 0 {
		return fmt.Errorf("%w: item count %d is not a positive multiple of 3", ErrMalformed, len(in.Items))
	}
	if in.Target <= 0 {
		return fmt.Errorf("%w: target %d is not positive", ErrMalformed, in.Target)
	}
	sum := 0
	for _, a := range in.Items {
		if 4*a <= in.Target || 2*a >= in.Target {
			return fmt.Errorf("%w: item %d outside (T/4, T/2) for T=%d", ErrMalformed, a, in.Target)
		}
		sum += a
	}
	if sum != in.Groups()*in.Target {
		return fmt.Errorf("%w: items sum to %d, want n·T = %d", ErrMalformed, sum, in.Groups()*in.Target)
	}
	return nil
}

// Solution is a partition of item indices into triples.
type Solution [][]int

// Check verifies that sol is a valid solution of in.
func (in Instance) Check(sol Solution) error {
	if len(sol) != in.Groups() {
		return fmt.Errorf("partition: %d groups, want %d", len(sol), in.Groups())
	}
	seen := make([]bool, len(in.Items))
	for gi, group := range sol {
		if len(group) != 3 {
			return fmt.Errorf("partition: group %d has %d items, want 3", gi, len(group))
		}
		sum := 0
		for _, idx := range group {
			if idx < 0 || idx >= len(in.Items) {
				return fmt.Errorf("partition: group %d references item %d out of range", gi, idx)
			}
			if seen[idx] {
				return fmt.Errorf("partition: item %d used twice", idx)
			}
			seen[idx] = true
			sum += in.Items[idx]
		}
		if sum != in.Target {
			return fmt.Errorf("partition: group %d sums to %d, want %d", gi, sum, in.Target)
		}
	}
	return nil
}

// Solve decides the instance exactly by backtracking over triples, fixing
// the largest unused item of each new triple to break symmetry. It returns
// a witness when the answer is yes. Intended for the reduction experiments
// (n ≤ 8 or so); 3-PARTITION is strongly NP-complete so no polynomial
// algorithm is expected.
func Solve(in Instance) (Solution, bool, error) {
	if err := in.Validate(); err != nil {
		return nil, false, err
	}
	n3 := len(in.Items)
	// Sort indices by decreasing value: big items constrain most.
	idx := make([]int, n3)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return in.Items[idx[a]] > in.Items[idx[b]] })

	used := make([]bool, n3)
	var groups Solution
	var rec func(remaining int) bool
	rec = func(remaining int) bool {
		if remaining == 0 {
			return true
		}
		// Anchor: first unused (largest remaining) item.
		anchor := -1
		for _, i := range idx {
			if !used[i] {
				anchor = i
				break
			}
		}
		used[anchor] = true
		need := in.Target - in.Items[anchor]
		// Choose two partners among smaller unused items.
		for ai := 0; ai < n3; ai++ {
			a := idx[ai]
			if used[a] || in.Items[a] > need {
				continue
			}
			used[a] = true
			rest := need - in.Items[a]
			for bi := ai + 1; bi < n3; bi++ {
				b := idx[bi]
				if used[b] || in.Items[b] != rest {
					continue
				}
				used[b] = true
				groups = append(groups, []int{anchor, a, b})
				if rec(remaining - 1) {
					return true
				}
				groups = groups[:len(groups)-1]
				used[b] = false
				// Only the first partner with the exact value matters:
				// equal values are interchangeable.
				break
			}
			used[a] = false
		}
		used[anchor] = false
		return false
	}
	if rec(in.Groups()) {
		out := make(Solution, len(groups))
		for i, gp := range groups {
			cp := make([]int, len(gp))
			copy(cp, gp)
			out[i] = cp
		}
		return out, true, nil
	}
	return nil, false, nil
}

// GreedySolve attempts the instance with first-fit-decreasing triples. It
// is a baseline: it can fail on yes-instances.
func GreedySolve(in Instance) (Solution, bool) {
	n3 := len(in.Items)
	idx := make([]int, n3)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return in.Items[idx[a]] > in.Items[idx[b]] })
	used := make([]bool, n3)
	var sol Solution
	for g := 0; g < in.Groups(); g++ {
		group := make([]int, 0, 3)
		sum := 0
		for _, i := range idx {
			if used[i] || len(group) == 3 {
				continue
			}
			if sum+in.Items[i] <= in.Target {
				used[i] = true
				group = append(group, i)
				sum += in.Items[i]
			}
		}
		if len(group) != 3 || sum != in.Target {
			return nil, false
		}
		sol = append(sol, group)
	}
	return sol, true
}

// GenerateYes plants a satisfiable instance with n triples and target
// around target (must allow T/4 < a < T/2). Each triple is built as
// (T/3 − d, T/3, T/3 + d) with a random jitter d keeping the shape
// constraints.
func GenerateYes(n, target int, r *rng.Stream) (Instance, error) {
	if n <= 0 {
		return Instance{}, fmt.Errorf("partition: group count must be positive, got %d", n)
	}
	if target%3 != 0 {
		target += 3 - target%3
	}
	third := target / 3
	// Jitter must keep items strictly inside (T/4, T/2):
	// third − d > T/4 ⇒ d < T/12; third + d < T/2 ⇒ d < T/6.
	maxJitter := target/12 - 1
	if maxJitter < 0 {
		return Instance{}, fmt.Errorf("partition: target %d too small to jitter", target)
	}
	items := make([]int, 0, 3*n)
	for g := 0; g < n; g++ {
		d := 0
		if maxJitter > 0 {
			d = r.IntN(maxJitter + 1)
		}
		items = append(items, third-d, third, third+d)
	}
	r.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	in := Instance{Items: items, Target: target}
	if err := in.Validate(); err != nil {
		return Instance{}, err
	}
	return in, nil
}

// GenerateNo produces an unsatisfiable instance by taking a planted
// yes-instance and shifting one unit of weight between two items of
// different triples so that sums remain n·T but no perfect triple
// partition exists. It verifies unsatisfiability with the exact solver
// (callers should keep n small) and retries until a genuine no-instance
// appears.
func GenerateNo(n, target int, r *rng.Stream) (Instance, error) {
	if n < 2 {
		return Instance{}, fmt.Errorf("partition: no-instances need at least 2 groups, got %d", n)
	}
	for attempt := 0; attempt < 100; attempt++ {
		in, err := GenerateYes(n, target, r)
		if err != nil {
			return Instance{}, err
		}
		// Perturb: move one unit from a random item to another, keeping
		// shape constraints.
		i := r.IntN(len(in.Items))
		j := r.IntN(len(in.Items))
		if i == j {
			continue
		}
		in.Items[i]--
		in.Items[j]++
		if in.Validate() != nil {
			continue
		}
		if _, ok, err := Solve(in); err == nil && !ok {
			return in, nil
		}
	}
	return Instance{}, errors.New("partition: could not generate a no-instance (target too forgiving)")
}
