package expt

import (
	"errors"
	"fmt"

	"repro/internal/exec"
	"repro/internal/expt/result"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/store"
)

func init() {
	register(Info{
		ID:    "E21",
		Title: "Multi-writer safety: epoch-fenced leases, executor-driven anti-entropy, scrub-and-repair of corrupt replicas",
		Claim: "(1) under contention, epoch-fenced leases admit exactly one writer: executor a killed at ANY event point and taken over by executor b leaves a zombie whose first write is fenced with a typed fatal error (or that has no writes left), and the survivor's journal is bit-identical to an uncontended run's — the lease protocol is invisible to the journal; (2) executor-driven anti-entropy passes converge every replica of a 3-way quorum bit-identically by completion despite partition windows that leave one replica behind, without perturbing the journal; (3) a scrub pass repairs CRC-corrupt replicas from any clean read-quorum and fails with a typed error exactly when no clean quorum remains",
	}, planE21)
}

// e21Stack is one drill's persistent storage: three replica mem stores
// survive invocations while the network, remotes, codec, quorum, and
// lease wrapper are rebuilt per invocation — process-restart semantics.
// The LeaseStore is returned concretely so the zombie drill can re-enter
// on the ORIGINAL instance, whose stale lease session is exactly what a
// woken zombie process holds.
type e21Stack struct {
	netCfg netsim.Config
	mems   []*store.MemStore
}

func newE21Stack(netCfg netsim.Config) *e21Stack {
	mems := make([]*store.MemStore, 3)
	for i := range mems {
		mems[i] = store.NewMemStore()
	}
	return &e21Stack{netCfg: netCfg, mems: mems}
}

func (p *e21Stack) quorum() (*store.QuorumStore, error) {
	net := netsim.New(p.netCfg)
	const timeout = 1.5
	reps := make([]store.Store, len(p.mems))
	for i := range p.mems {
		reps[i] = store.Checked(store.NewRemoteStore(p.mems[i], net, p.netCfg,
			store.RemoteConfig{Remote: fmt.Sprintf("s%d", i), Timeout: timeout}))
	}
	return store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
}

func (p *e21Stack) leased(holder string, takeover bool) (*store.LeaseStore, error) {
	q, err := p.quorum()
	if err != nil {
		return nil, err
	}
	return store.NewLeaseStore(q, store.LeaseConfig{Holder: holder, TTL: 1e9, Takeover: takeover}), nil
}

// e21Options mirrors the adaptive configuration E20 proved replay-exact
// over this network, so every journal-identity claim here isolates the
// new machinery (leases, sync passes), not the executor.
func e21Options(st store.Store, crashEvents, crashSaves, syncEvery int) exec.Options {
	return exec.Options{
		RunID: "e21", Store: st, Downtime: e20Downtime,
		CrashAfterEvents: crashEvents, CrashAfterSaves: crashSaves,
		Adaptive: &exec.AdaptiveOptions{
			Retry:     exec.ExpBackoff{Base: 0.25, Cap: 0.5, MaxAttempts: 4},
			SyncEvery: syncEvery,
		},
	}
}

// e21Converged reports whether every replica holds bit-identical
// contents for the data run: same seq lists, same raw frames.
func e21Converged(mems []*store.MemStore) (bool, error) {
	refSeqs, err := mems[0].List("e21")
	if err != nil {
		return false, err
	}
	for _, m := range mems[1:] {
		seqs, err := m.List("e21")
		if err != nil {
			return false, err
		}
		if fmt.Sprint(seqs) != fmt.Sprint(refSeqs) {
			return false, nil
		}
	}
	for _, seq := range refSeqs {
		want, err := mems[0].Load("e21", seq)
		if err != nil {
			return false, err
		}
		for _, m := range mems[1:] {
			got, err := m.Load("e21", seq)
			if err != nil || string(got) != string(want) {
				return false, err
			}
		}
	}
	return true, nil
}

func planE21(cfg Config) (*Plan, error) {
	cp, err := e20Problem()
	if err != nil {
		return nil, err
	}

	p := &Plan{}

	// Table 1: the contended fencing drill at every kill point. Executor
	// a (epoch 1) is killed at event point k, executor b (epoch 2) takes
	// the lease over and is itself killed after one save, the zombie a
	// re-enters on its ORIGINAL lease instance and must be fenced on its
	// first write (or complete write-free when nothing remains), and the
	// survivor (epoch 3) finishes with the uncontended journal. Full
	// budget kills at EVERY event point; quick strides through them.
	drill := p.AddTable(&result.Table{
		ID:    "E21",
		Title: "contended fencing drill: executor a killed at every event point, b takes over, zombie fenced, survivor journal vs uncontended reference",
		Columns: []string{
			"kill_points", "journal_events", "zombies_fenced", "zombies_write_free", "polite_b_blocked", "epochs_monotone", "journal_identical",
		},
	})
	type drillOut struct{ ok bool }
	killStride := 1
	if cfg.Quick {
		killStride = 7
	}
	p.Job(drill, func(s *rng.Stream) (RowOut, error) {
		srcSeed := s.Uint64()
		netSeed := s.Uint64()
		src := func() exec.Source {
			return exec.NewKeyedSource(failure.Exponential{Lambda: e20Lambda}, srcSeed, 1)
		}
		netCfg := netsim.Config{Seed: netSeed, Latency: 0.2, Jitter: 0.3, Loss: 0.05}
		run := func(st store.Store, crashEvents, crashSaves int) (*exec.Result, error) {
			w, err := e20Workload(cp)
			if err != nil {
				return nil, err
			}
			return exec.Execute(w, src(), e21Options(st, crashEvents, crashSaves, 0))
		}

		// Uncontended leased reference, plus a lease-free control proving
		// the lease protocol never reaches the journal.
		refStore, err := newE21Stack(netCfg).leased("ref", false)
		if err != nil {
			return RowOut{}, err
		}
		ref, err := run(refStore, 0, 0)
		if err != nil {
			return RowOut{}, err
		}
		if ref.Epoch != 1 {
			return RowOut{}, fmt.Errorf("E21: reference epoch = %d, want 1", ref.Epoch)
		}
		bareStore, err := newE21Stack(netCfg).quorum()
		if err != nil {
			return RowOut{}, err
		}
		bare, err := run(bareStore, 0, 0)
		if err != nil {
			return RowOut{}, err
		}
		if !bare.Journal.Equal(ref.Journal) {
			return RowOut{}, fmt.Errorf("E21: leased journal differs from lease-free journal")
		}

		ne := len(ref.Journal)
		kills, fenced, writeFree := 0, 0, 0
		politeBlocked, epochsOK, identical := false, true, true
		for kill := 1; kill <= ne; kill += killStride {
			kills++
			stack := newE21Stack(netCfg)
			aStore, err := stack.leased("a", false)
			if err != nil {
				return RowOut{}, err
			}
			resA, err := run(aStore, kill, 0)
			if !errors.Is(err, exec.ErrCrashed) {
				return RowOut{}, fmt.Errorf("E21: kill@%d: a = %v, want ErrCrashed", kill, err)
			}
			epochsOK = epochsOK && resA.Epoch == 1

			if kill == 1 {
				// A polite b (no takeover) is blocked while a's lease lives.
				polite, err := stack.leased("b", false)
				if err != nil {
					return RowOut{}, err
				}
				_, perr := run(polite, 0, 0)
				politeBlocked = errors.Is(perr, store.ErrLeaseHeld)
			}

			bStore, err := stack.leased("b", true)
			if err != nil {
				return RowOut{}, err
			}
			resB, err := run(bStore, 0, 1)
			if err != nil && !errors.Is(err, exec.ErrCrashed) {
				return RowOut{}, fmt.Errorf("E21: kill@%d: b = %v", kill, err)
			}
			epochsOK = epochsOK && resB.Epoch == 2

			zRes, zErr := run(aStore, 0, 0)
			switch {
			case errors.Is(zErr, store.ErrFenced):
				fenced++
			case zErr == nil && zRes.Journal.Equal(ref.Journal):
				writeFree++
			default:
				return RowOut{}, fmt.Errorf("E21: kill@%d: zombie = %v, want ErrFenced or write-free completion", kill, zErr)
			}

			survStore, err := stack.leased("b", true)
			if err != nil {
				return RowOut{}, err
			}
			surv, err := run(survStore, 0, 0)
			if err != nil {
				return RowOut{}, fmt.Errorf("E21: kill@%d: survivor = %v", kill, err)
			}
			epochsOK = epochsOK && surv.Epoch == 3
			identical = identical && surv.Journal.Equal(ref.Journal)
		}
		ok := politeBlocked && epochsOK && identical && fenced > 0
		return RowOut{
			Cells: []result.Cell{
				result.Int(kills),
				result.Int(ne),
				result.Int(fenced),
				result.Int(writeFree),
				result.Bool(politeBlocked),
				result.Bool(epochsOK),
				result.Bool(identical),
			},
			Value: drillOut{ok: ok},
		}, nil
	})

	// Table 2: executor-driven anti-entropy. A partition window leaves
	// replica s0 behind for part of the run; with SyncEvery the executor
	// converges all three replicas bit-identically by completion, the
	// control arm without sync does not, and the journal is identical in
	// both arms — sync traffic is invisible to replay.
	sync := p.AddTable(&result.Table{
		ID:    "E21",
		Title: "executor-driven anti-entropy under partition windows isolating replica s0 (quorum N=3, W=2, sync every 3rd commit + final)",
		Columns: []string{
			"window_end", "syncs", "sync_copied", "converged", "control_converged", "journal_identical",
		},
	})
	type syncOut struct{ ok bool }
	for _, windowEnd := range []float64{0.45, 0.7, 0.9} {
		windowEnd := windowEnd
		p.Job(sync, func(s *rng.Stream) (RowOut, error) {
			srcSeed := s.Uint64()
			netSeed := s.Uint64()
			src := func() exec.Source {
				return exec.NewKeyedSource(failure.Exponential{Lambda: e20Lambda}, srcSeed, 1)
			}
			w, err := e20Workload(cp)
			if err != nil {
				return RowOut{}, err
			}
			base, err := exec.Execute(w, src(), exec.Options{Downtime: e20Downtime})
			if err != nil {
				return RowOut{}, err
			}
			netCfg := e20NetCfg(netSeed, 0.1*base.Makespan, windowEnd*base.Makespan)
			arm := func(syncEvery int) (*exec.Result, []*store.MemStore, error) {
				w, err := e20Workload(cp)
				if err != nil {
					return nil, nil, err
				}
				stack := newE21Stack(netCfg)
				q, err := stack.quorum()
				if err != nil {
					return nil, nil, err
				}
				res, err := exec.Execute(w, src(), e21Options(q, 0, 0, syncEvery))
				return res, stack.mems, err
			}
			res, mems, err := arm(3)
			if err != nil {
				return RowOut{}, err
			}
			converged, err := e21Converged(mems)
			if err != nil {
				return RowOut{}, err
			}
			control, controlMems, err := arm(0)
			if err != nil {
				return RowOut{}, err
			}
			controlConverged, err := e21Converged(controlMems)
			if err != nil {
				return RowOut{}, err
			}
			identical := res.Journal.Equal(control.Journal)
			ok := converged && !controlConverged && identical && res.Syncs > 0
			return RowOut{
				Cells: []result.Cell{
					result.Float(windowEnd),
					result.Int(res.Syncs),
					result.Int(res.SyncCopied),
					result.Bool(converged),
					result.Bool(controlConverged),
					result.Bool(identical),
				},
				Value: syncOut{ok: ok},
			}, nil
		})
	}

	// Table 3: scrub-and-repair. After a clean quorum run, k replicas'
	// copies of the first checkpoint are torn (the CRC frame no longer
	// decodes). With R=2 clean copies required, k ≤ 1 = N−R is repaired
	// from the clean quorum; k = 2 leaves no clean quorum and the scrub
	// fails with the typed ErrUnrepairable while the clean survivor is
	// left untouched.
	scrub := p.AddTable(&result.Table{
		ID:    "E21",
		Title: "scrub-and-repair over 3 CRC-framed replicas (repair quorum R=2): torn copies vs repair bound N−R=1",
		Columns: []string{
			"corrupt_replicas", "seqs", "copies_checked", "corrupt", "repaired", "unrepairable", "typed_error", "replicas_identical_after",
		},
	})
	type scrubOut struct{ ok bool }
	for _, corrupt := range []int{0, 1, 2} {
		corrupt := corrupt
		p.Job(scrub, func(s *rng.Stream) (RowOut, error) {
			srcSeed := s.Uint64()
			src := exec.NewKeyedSource(failure.Exponential{Lambda: e20Lambda}, srcSeed, 1)
			mems := make([]*store.MemStore, 3)
			reps := make([]store.Store, 3)
			for i := range mems {
				mems[i] = store.NewMemStore()
				reps[i] = store.Checked(mems[i])
			}
			q, err := store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
			if err != nil {
				return RowOut{}, err
			}
			w, err := e20Workload(cp)
			if err != nil {
				return RowOut{}, err
			}
			if _, err := exec.Execute(w, src, exec.Options{RunID: "e21", Store: q, Downtime: e20Downtime}); err != nil {
				return RowOut{}, err
			}
			seqs, err := mems[0].List("e21")
			if err != nil || len(seqs) == 0 {
				return RowOut{}, fmt.Errorf("E21: no checkpoints to scrub (%v)", err)
			}
			for i := 0; i < corrupt; i++ {
				raw, err := mems[i].Load("e21", seqs[0])
				if err != nil {
					return RowOut{}, err
				}
				if err := mems[i].Save("e21", seqs[0], raw[:len(raw)-3]); err != nil {
					return RowOut{}, err
				}
			}
			rep, err := q.ScrubRun("e21")
			typed := errors.Is(err, store.ErrUnrepairable)
			if corrupt <= 1 && err != nil {
				return RowOut{}, fmt.Errorf("E21: scrub with %d corrupt = %v, want repair", corrupt, err)
			}
			identical, cerr := e21Converged(mems)
			if cerr != nil && corrupt < 2 {
				return RowOut{}, cerr
			}
			var ok bool
			switch corrupt {
			case 0:
				ok = rep.Corrupt == 0 && rep.Repaired == 0 && identical
			case 1:
				ok = rep.Corrupt == 1 && rep.Repaired == 1 && identical
			case 2:
				ok = typed && rep.Unrepairable >= 1
			}
			return RowOut{
				Cells: []result.Cell{
					result.Int(corrupt),
					result.Int(rep.Seqs),
					result.Int(rep.Checked),
					result.Int(rep.Corrupt),
					result.Int(rep.Repaired),
					result.Int(rep.Unrepairable),
					result.Bool(typed),
					result.Bool(identical),
				},
				Value: scrubOut{ok: ok},
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allDrill, allSync, allScrub := true, true, true
		for _, out := range outs {
			switch v := out.Value.(type) {
			case drillOut:
				allDrill = allDrill && v.ok
			case syncOut:
				allSync = allSync && v.ok
			case scrubOut:
				allScrub = allScrub && v.ok
			}
		}
		tables[drill].AddNote("acceptance: at every kill point the zombie was fenced (or had no writes left), epochs stayed monotone, a polite second writer was held off, and the survivor's journal matched the uncontended reference bit-for-bit → %s", yn(allDrill))
		tables[sync].AddNote("acceptance: anti-entropy converged all replicas bit-identically after every partition schedule, the no-sync control did not converge, and the journal was identical in both arms → %s", yn(allSync))
		tables[scrub].AddNote("acceptance: scrub repaired up to N−R corrupt replicas from the clean quorum and failed with the typed ErrUnrepairable beyond the bound → %s", yn(allScrub))
		return nil
	}
	return p, nil
}
