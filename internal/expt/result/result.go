// Package result holds the typed experiment results: tables whose rows
// are typed Cells (float, int, bool, string, duration) plus per-row
// metadata, decoupled from any output format. Experiments build these
// values; internal/expt/render turns them into aligned text, CSV, or
// JSON. Keeping the data typed lets cmd/chkptbench, the benchmarks, and
// future tooling consume results structurally instead of parsing
// pre-rendered strings, and lets the determinism tests compare runs
// cell-by-cell while masking volatile (wall-clock) content.
package result

import (
	"encoding/json"
	"fmt"
	"time"
)

// Kind discriminates the value held by a Cell.
type Kind uint8

const (
	// KindString is a raw string cell.
	KindString Kind = iota
	// KindFloat is a float rendered compactly (%.6g).
	KindFloat
	// KindSci is a float rendered in scientific notation (%.2e).
	KindSci
	// KindFixed is a float rendered with a fixed number of decimals
	// (and an optional unit suffix, e.g. "3.1x").
	KindFixed
	// KindInt is an integer cell.
	KindInt
	// KindBool is a pass/fail cell rendered as "yes"/"NO".
	KindBool
	// KindDuration is a wall-clock measurement; always volatile.
	KindDuration
)

// String names the kind for the JSON encoding.
func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindFloat:
		return "float"
	case KindSci:
		return "sci"
	case KindFixed:
		return "fixed"
	case KindInt:
		return "int"
	case KindBool:
		return "bool"
	case KindDuration:
		return "duration"
	}
	return "invalid"
}

// Cell is one typed table value. The zero value is an empty string cell.
type Cell struct {
	Kind Kind
	// F holds KindFloat/KindSci/KindFixed values.
	F float64
	// I holds KindInt values.
	I int64
	// S holds KindString values.
	S string
	// B holds KindBool values.
	B bool
	// D holds KindDuration values.
	D time.Duration
	// Prec is the decimal count for KindFixed.
	Prec int
	// Unit is appended after KindFixed values ("x", "%", ...).
	Unit string
	// Volatile marks content that legitimately differs between runs
	// (wall-clock timings and values derived from them). Volatile cells
	// are excluded from determinism fingerprints; everything else must
	// reproduce bit-for-bit from the seed.
	Volatile bool
}

// Str returns a raw string cell.
func Str(s string) Cell { return Cell{Kind: KindString, S: s} }

// Float returns a compact float cell (%.6g), the table default.
func Float(v float64) Cell { return Cell{Kind: KindFloat, F: v} }

// Sci returns a scientific-notation cell (%.2e), used for errors and CIs.
func Sci(v float64) Cell { return Cell{Kind: KindSci, F: v} }

// Fixed returns a fixed-decimals cell (e.g. Fixed(r, 3) → "0.998").
func Fixed(v float64, prec int) Cell { return Cell{Kind: KindFixed, F: v, Prec: prec} }

// FixedUnit is Fixed with a unit suffix (e.g. FixedUnit(s, 1, "x") → "4.2x").
func FixedUnit(v float64, prec int, unit string) Cell {
	return Cell{Kind: KindFixed, F: v, Prec: prec, Unit: unit}
}

// Int returns an integer cell.
func Int(v int) Cell { return Cell{Kind: KindInt, I: int64(v)} }

// Bool returns a pass/fail cell ("yes"/"NO").
func Bool(v bool) Cell { return Cell{Kind: KindBool, B: v} }

// Dur returns a wall-clock cell; it is volatile by construction.
func Dur(d time.Duration) Cell { return Cell{Kind: KindDuration, D: d, Volatile: true} }

// AsVolatile returns a copy of c marked volatile, for non-duration cells
// whose value is derived from a measurement (speedups, time ratios).
func (c Cell) AsVolatile() Cell {
	c.Volatile = true
	return c
}

// String renders the cell the way the text and CSV renderers print it.
func (c Cell) String() string {
	switch c.Kind {
	case KindFloat:
		return fmt.Sprintf("%.6g", c.F)
	case KindSci:
		return fmt.Sprintf("%.2e", c.F)
	case KindFixed:
		return fmt.Sprintf("%.*f%s", c.Prec, c.F, c.Unit)
	case KindInt:
		return fmt.Sprintf("%d", c.I)
	case KindBool:
		if c.B {
			return "yes"
		}
		return "NO"
	case KindDuration:
		return c.D.String()
	default:
		return c.S
	}
}

// MarshalJSON encodes the cell as {"kind": ..., "value": ..., "text": ...}
// so consumers get both the typed value and the canonical rendering.
func (c Cell) MarshalJSON() ([]byte, error) {
	obj := struct {
		Kind     string `json:"kind"`
		Value    any    `json:"value"`
		Text     string `json:"text"`
		Volatile bool   `json:"volatile,omitempty"`
	}{Kind: c.Kind.String(), Text: c.String(), Volatile: c.Volatile}
	switch c.Kind {
	case KindFloat, KindSci, KindFixed:
		obj.Value = c.F
	case KindInt:
		obj.Value = c.I
	case KindBool:
		obj.Value = c.B
	case KindDuration:
		obj.Value = c.D.Nanoseconds()
	default:
		obj.Value = c.S
	}
	return json.Marshal(obj)
}

// Row is one table row: typed cells plus free-form metadata (row
// provenance, parameter labels) that renderers may surface and tooling
// may filter on.
type Row struct {
	Cells []Cell            `json:"cells"`
	Meta  map[string]string `json:"meta,omitempty"`
}

// Note is a line printed under a table (pass/fail criteria, caveats).
type Note struct {
	Text string `json:"text"`
	// Volatile marks notes whose text depends on wall-clock measurements.
	Volatile bool `json:"volatile,omitempty"`
}

// Table is a typed experiment result.
type Table struct {
	// ID is the experiment ID (e.g. "E1"); Title describes the table.
	ID, Title string
	// Columns holds the header cells.
	Columns []string
	// Rows holds the data; each row must have len(Columns) cells.
	Rows []Row
	// Notes are attached under the table.
	Notes []Note
}

// AddRow appends a row of typed cells.
func (t *Table) AddRow(cells ...Cell) {
	t.Rows = append(t.Rows, Row{Cells: cells})
}

// AddRowMeta appends a row with metadata.
func (t *Table) AddRowMeta(meta map[string]string, cells ...Cell) {
	t.Rows = append(t.Rows, Row{Cells: cells, Meta: meta})
}

// AddNote appends a formatted note.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, Note{Text: fmt.Sprintf(format, args...)})
}

// AddVolatileNote appends a note whose text depends on measurements.
func (t *Table) AddVolatileNote(format string, args ...any) {
	t.Notes = append(t.Notes, Note{Text: fmt.Sprintf(format, args...), Volatile: true})
}

// Volatile reports whether any cell or note in the table is volatile.
func (t *Table) Volatile() bool {
	for _, r := range t.Rows {
		for _, c := range r.Cells {
			if c.Volatile {
				return true
			}
		}
	}
	for _, n := range t.Notes {
		if n.Volatile {
			return true
		}
	}
	return false
}

// MarshalJSON encodes the table with lower-case field names.
func (t *Table) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		ID      string   `json:"id"`
		Title   string   `json:"title"`
		Columns []string `json:"columns"`
		Rows    []Row    `json:"rows"`
		Notes   []Note   `json:"notes,omitempty"`
	}{t.ID, t.Title, t.Columns, t.Rows, t.Notes})
}
