package result

import (
	"encoding/json"
	"testing"
	"time"
)

func TestCellString(t *testing.T) {
	cases := []struct {
		cell Cell
		want string
	}{
		{Str("abc"), "abc"},
		{Cell{}, ""},
		{Float(1.0 / 3), "0.333333"},
		{Float(123456789), "1.23457e+08"},
		{Sci(0.0123), "1.23e-02"},
		{Fixed(1.23456, 3), "1.235"},
		{FixedUnit(4.26, 1, "x"), "4.3x"},
		{Int(-42), "-42"},
		{Bool(true), "yes"},
		{Bool(false), "NO"},
		{Dur(1500 * time.Millisecond), "1.5s"},
	}
	for _, c := range cases {
		if got := c.cell.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.cell, got, c.want)
		}
	}
}

func TestVolatility(t *testing.T) {
	if !Dur(time.Second).Volatile {
		t.Error("durations must be volatile")
	}
	if Float(1).Volatile {
		t.Error("floats are not volatile by default")
	}
	if !Float(1).AsVolatile().Volatile {
		t.Error("AsVolatile did not mark the cell")
	}

	tb := &Table{Columns: []string{"a"}}
	tb.AddRow(Float(1))
	tb.AddNote("stable")
	if tb.Volatile() {
		t.Error("table with no volatile content reported volatile")
	}
	tb.AddVolatileNote("took %s", time.Second)
	if !tb.Volatile() {
		t.Error("volatile note not detected")
	}

	tb2 := &Table{Columns: []string{"a"}}
	tb2.AddRow(Dur(time.Second))
	if !tb2.Volatile() {
		t.Error("volatile cell not detected")
	}
}

func TestCellJSON(t *testing.T) {
	b, err := json.Marshal(Fixed(1.25, 2))
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		Kind  string  `json:"kind"`
		Value float64 `json:"value"`
		Text  string  `json:"text"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.Kind != "fixed" || got.Value != 1.25 || got.Text != "1.25" {
		t.Errorf("unexpected cell JSON: %s", b)
	}
}

func TestTableJSON(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"x"}}
	tb.AddRowMeta(map[string]string{"p": "1"}, Int(3))
	tb.AddNote("a note")
	b, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ID      string   `json:"id"`
		Columns []string `json:"columns"`
		Rows    []struct {
			Cells []struct {
				Kind  string `json:"kind"`
				Value int64  `json:"value"`
			} `json:"cells"`
			Meta map[string]string `json:"meta"`
		} `json:"rows"`
		Notes []struct {
			Text string `json:"text"`
		} `json:"notes"`
	}
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got.ID != "T" || len(got.Rows) != 1 || got.Rows[0].Cells[0].Value != 3 ||
		got.Rows[0].Meta["p"] != "1" || len(got.Notes) != 1 {
		t.Errorf("unexpected table JSON: %s", b)
	}
}
