package expt

import (
	"fmt"

	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E2",
		Title: "Equations 3–5: E[Tlost], E[Trec] components and the recursion identity",
		Claim: "Eq. 4 (E[Tlost]) and Eq. 5 (E[Trec]) are exact; Eq. 3 recursion equals the factored closed form",
		Run:   runE2,
	})
}

func runE2(cfg Config) ([]*Table, error) {
	runs := cfg.Runs(200_000, 8_000)
	seed := rng.New(cfg.Seed + 1)

	lost := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("E[Tlost] (Eq. 4) vs conditional sampling (%d samples)", runs),
		Columns: []string{"W+C", "lambda", "Eq4", "simulated", "CI(99.9%)", "inCI"},
	}
	allIn := true
	for _, c := range []struct{ wc, lambda float64 }{
		{1, 0.01}, {10, 0.01}, {12, 0.1}, {50, 0.05}, {3, 1},
	} {
		m, err := expectation.NewModel(c.lambda, 0)
		if err != nil {
			return nil, err
		}
		want := m.ExpectedLost(c.wc, 0)
		est, err := sim.EstimateLost(c.wc, 0, c.lambda, runs, seed.Split())
		if err != nil {
			return nil, err
		}
		in := est.Contains(want, 0.999)
		allIn = allIn && in
		lost.AddRow(fm(c.wc), fm(c.lambda), fm(want), fm(est.Mean()), fe(est.CI(0.999)), fb(in))
	}
	lost.Notes = append(lost.Notes, fmt.Sprintf("pass: all inside CI → %s", fb(allIn)))

	rec := &Table{
		ID:      "E2",
		Title:   fmt.Sprintf("E[Trec] (Eq. 5) vs downtime/recovery-loop simulation (%d samples)", runs),
		Columns: []string{"D", "R", "lambda", "Eq5", "simulated", "CI(99.9%)", "inCI"},
	}
	allIn = true
	for _, c := range []struct{ d, r, lambda float64 }{
		{0, 1, 0.05}, {1, 1, 0.05}, {2, 5, 0.1}, {0.5, 0.5, 1}, {5, 10, 0.02},
	} {
		m, err := expectation.NewModel(c.lambda, c.d)
		if err != nil {
			return nil, err
		}
		want := m.ExpectedRecovery(c.r)
		est, err := sim.EstimateRecovery(c.d, c.r, c.lambda, runs, seed.Split())
		if err != nil {
			return nil, err
		}
		in := est.Contains(want, 0.999)
		allIn = allIn && in
		rec.AddRow(fm(c.d), fm(c.r), fm(c.lambda), fm(want), fm(est.Mean()), fe(est.CI(0.999)), fb(in))
	}
	rec.Notes = append(rec.Notes, fmt.Sprintf("pass: all inside CI → %s", fb(allIn)))

	ident := &Table{
		ID:      "E2",
		Title:   "recursion (Eq. 3) vs factored closed form (Prop. 1), max relative gap over a parameter grid",
		Columns: []string{"grid", "cells", "max_rel_gap", "pass(<1e-9)"},
	}
	var worst float64
	count := 0
	for _, l := range []float64{1e-6, 1e-3, 0.01, 0.1, 1} {
		for _, d := range []float64{0, 0.5, 5} {
			m, err := expectation.NewModel(l, d)
			if err != nil {
				return nil, err
			}
			for _, w := range []float64{0.1, 1, 50, 500} {
				for _, ck := range []float64{0, 0.1, 3} {
					for _, r := range []float64{0, 0.2, 4} {
						a := m.ExpectedTime(w, ck, r)
						b := m.ExpectedTimeRecursion(w, ck, r)
						if g := numeric.RelErr(a, b); g > worst {
							worst = g
						}
						count++
					}
				}
			}
		}
	}
	ident.AddRow("λ×D×W×C×R", fmt.Sprintf("%d", count), fe(worst), fb(worst < 1e-9))

	return []*Table{lost, rec, ident}, nil
}
