package expt

import (
	"fmt"

	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E2",
		Title: "Equations 3–5: E[Tlost], E[Trec] components and the recursion identity",
		Claim: "Eq. 4 (E[Tlost]) and Eq. 5 (E[Trec]) are exact; Eq. 3 recursion equals the factored closed form",
	}, planE2)
}

func planE2(cfg Config) (*Plan, error) {
	runs := cfg.Runs(200_000, 8_000)
	p := &Plan{}

	lost := p.AddTable(&result.Table{
		ID:      "E2",
		Title:   fmt.Sprintf("E[Tlost] (Eq. 4) vs conditional sampling (%d samples)", runs),
		Columns: []string{"W+C", "lambda", "Eq4", "simulated", "CI(99.9%)", "inCI"},
	})
	lostCases := []struct{ wc, lambda float64 }{
		{1, 0.01}, {10, 0.01}, {12, 0.1}, {50, 0.05}, {3, 1},
	}
	for _, c := range lostCases {
		c := c
		p.Job(lost, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(c.lambda, 0)
			if err != nil {
				return RowOut{}, err
			}
			want := m.ExpectedLost(c.wc, 0)
			est, err := sim.EstimateLost(c.wc, 0, c.lambda, runs, s)
			if err != nil {
				return RowOut{}, err
			}
			in := est.Contains(want, 0.999)
			return RowOut{
				Cells: []result.Cell{
					result.Float(c.wc), result.Float(c.lambda), result.Float(want),
					result.Float(est.Mean()), result.Sci(est.CI(0.999)), result.Bool(in),
				},
				Value: in,
			}, nil
		})
	}

	rec := p.AddTable(&result.Table{
		ID:      "E2",
		Title:   fmt.Sprintf("E[Trec] (Eq. 5) vs downtime/recovery-loop simulation (%d samples)", runs),
		Columns: []string{"D", "R", "lambda", "Eq5", "simulated", "CI(99.9%)", "inCI"},
	})
	recCases := []struct{ d, r, lambda float64 }{
		{0, 1, 0.05}, {1, 1, 0.05}, {2, 5, 0.1}, {0.5, 0.5, 1}, {5, 10, 0.02},
	}
	for _, c := range recCases {
		c := c
		p.Job(rec, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(c.lambda, c.d)
			if err != nil {
				return RowOut{}, err
			}
			want := m.ExpectedRecovery(c.r)
			est, err := sim.EstimateRecovery(c.d, c.r, c.lambda, runs, s)
			if err != nil {
				return RowOut{}, err
			}
			in := est.Contains(want, 0.999)
			return RowOut{
				Cells: []result.Cell{
					result.Float(c.d), result.Float(c.r), result.Float(c.lambda), result.Float(want),
					result.Float(est.Mean()), result.Sci(est.CI(0.999)), result.Bool(in),
				},
				Value: in,
			}, nil
		})
	}

	ident := p.AddTable(&result.Table{
		ID:      "E2",
		Title:   "recursion (Eq. 3) vs factored closed form (Prop. 1), max relative gap over a parameter grid",
		Columns: []string{"grid", "cells", "max_rel_gap", "pass(<1e-9)"},
	})
	p.Job(ident, func(s *rng.Stream) (RowOut, error) {
		var worst float64
		count := 0
		for _, l := range []float64{1e-6, 1e-3, 0.01, 0.1, 1} {
			for _, d := range []float64{0, 0.5, 5} {
				m, err := expectation.NewModel(l, d)
				if err != nil {
					return RowOut{}, err
				}
				for _, w := range []float64{0.1, 1, 50, 500} {
					for _, ck := range []float64{0, 0.1, 3} {
						for _, r := range []float64{0, 0.2, 4} {
							a := m.ExpectedTime(w, ck, r)
							b := m.ExpectedTimeRecursion(w, ck, r)
							if g := numeric.RelErr(a, b); g > worst {
								worst = g
							}
							count++
						}
					}
				}
			}
		}
		return RowOut{Cells: []result.Cell{
			result.Str("λ×D×W×C×R"), result.Int(count), result.Sci(worst), result.Bool(worst < 1e-9),
		}}, nil
	})

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		for _, tab := range []int{lost, rec} {
			allIn := true
			for j, job := range p.Jobs {
				if job.Table == tab {
					allIn = allIn && outs[j].Value.(bool)
				}
			}
			tables[tab].AddNote("pass: all inside CI → %s", yn(allIn))
		}
		return nil
	}
	return p, nil
}
