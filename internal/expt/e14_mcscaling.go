package expt

import (
	"fmt"
	"math"
	"time"

	"repro/internal/core"
	"repro/internal/expt/result"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E14",
		Title: "Monte-Carlo scaling: indexed-heap platform process + common-random-number campaigns",
		Claim: "the heap-based superposed process cuts large-p campaign cost from O(events·p) to O(events·log p) while staying sample-identical to the scan reference, and CRN replay tightens strategy-delta CIs at equal run counts",
	}, planE14)
}

// The E14 workload is shared with cmd/benchtraj's BENCH_sim.json
// trajectory, so the recorded benchmarks always measure the same
// configuration the experiment reports on.
const (
	// E14PlatformMTBF is the mean platform-level inter-failure gap; jobs
	// scale the per-processor law's mean by p so it stays constant across
	// the platform-size sweep.
	E14PlatformMTBF = 2000.0
	// E14WeibullShape is the decreasing-hazard shape of the sweep's
	// non-memoryless law.
	E14WeibullShape = 0.7

	e14SegWork = 2.0
	e14SegCost = 0.3
	e14Dtime   = 0.5
)

// E14Segments returns the timing-sweep plan: a long chain (512 segments)
// makes the per-event platform cost the dominant term, which is the
// regime large-scale sweeps live in — the scan pays two O(p) passes per
// segment attempt, the heap pays O(1).
func E14Segments() []core.Segment {
	segs := make([]core.Segment, 512)
	for i := range segs {
		segs[i] = core.Segment{Work: e14SegWork, Checkpoint: e14SegCost, Recovery: e14SegCost}
	}
	return segs
}

// E14ComparatorPlans returns the two nearby candidate placements of the
// CRN comparison: the same 60-task chain checkpointed every 2 vs every 3
// tasks.
func E14ComparatorPlans() [][]core.Segment {
	mk := func(every int) []core.Segment {
		const tasks = 60
		var out []core.Segment
		for start := 0; start < tasks; start += every {
			n := every
			if start+n > tasks {
				n = tasks - start
			}
			out = append(out, core.Segment{Work: e14SegWork * float64(n), Checkpoint: e14SegCost, Recovery: e14SegCost})
		}
		return out
	}
	return [][]core.Segment{mk(2), mk(3)}
}

// E14WeibullLaw returns the sweep's Weibull law with the given mean.
func E14WeibullLaw(mean float64) (failure.Weibull, error) {
	return failure.NewWeibull(E14WeibullShape, weibullScaleForMean(E14WeibullShape, mean))
}

// E14 measures the Monte-Carlo backbone itself, like E13 measures the
// solver: wall-clock and speedup cells are volatile, while makespans,
// failure counts, sample-identity flags and the CRN variance-reduction
// factors reproduce bit-for-bit from the seed.
func planE14(cfg Config) (*Plan, error) {
	const (
		platformMTBF = E14PlatformMTBF
		dtime        = e14Dtime
		weibShape    = E14WeibullShape
	)
	segs := E14Segments()
	runs := cfg.Runs(50, 5)

	// law builds a per-processor distribution of the given mean; jobs pick
	// mean = platformMTBF·p so the superposed platform MTBF — and with it
	// the failure counts — stay comparable across the sweep.
	type lawSpec struct {
		name string
		dist func(mean float64) (failure.Distribution, error)
	}
	laws := []lawSpec{
		{"exponential", func(mean float64) (failure.Distribution, error) {
			return failure.NewExponential(1 / mean)
		}},
		{fmt.Sprintf("weibull k=%g", weibShape), func(mean float64) (failure.Distribution, error) {
			return E14WeibullLaw(mean)
		}},
	}

	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID: "E14",
		Title: fmt.Sprintf("scan vs heap platform process: %d-run campaigns over a %d-segment plan (platform MTBF %g)",
			runs, len(segs), platformMTBF),
		Columns: []string{"law", "p", "t_scan", "t_heap", "speedup", "mean_makespan", "failures/run", "identical"},
	})
	for _, law := range laws {
		for _, procs := range []int{1, 100, 1_000, 10_000, 100_000} {
			law, procs := law, procs
			p.Job(t, func(s *rng.Stream) (RowOut, error) {
				dist, err := law.dist(platformMTBF * float64(procs))
				if err != nil {
					return RowOut{}, err
				}
				opts := sim.Options{Downtime: dtime, Workers: 1}
				// Identical seeds for both arms: the processes are
				// sample-identical, so the campaigns must agree (bit-exact
				// at p=1, to float accumulation accuracy beyond).
				armSeed := s.Uint64()
				campaign := func(factory sim.ProcessFactory) (sim.MCResult, time.Duration, error) {
					start := time.Now()
					res, err := sim.MonteCarlo(segs, factory, opts, runs, rng.New(armSeed))
					return res, time.Since(start), err
				}
				scanRes, tScan, err := campaign(sim.ScanFactory(dist, procs, failure.RejuvenateFailedOnly))
				if err != nil {
					return RowOut{}, err
				}
				heapRes, tHeap, err := campaign(sim.SuperposedFactory(dist, procs, failure.RejuvenateFailedOnly))
				if err != nil {
					return RowOut{}, err
				}
				sm, hm := scanRes.Makespan.Mean(), heapRes.Makespan.Mean()
				identical := sm == hm
				if procs > 1 && !identical {
					identical = math.Abs(sm-hm) <= 1e-9*math.Abs(sm)
				}
				return RowOut{
					Cells: []result.Cell{
						result.Str(law.name), result.Int(procs),
						result.Dur(tScan), result.Dur(tHeap),
						result.FixedUnit(float64(tScan)/float64(tHeap), 1, "x").AsVolatile(),
						result.Float(hm), result.Fixed(heapRes.Failures.Mean(), 3), result.Bool(identical),
					},
					Value: identical,
				}, nil
			})
		}
	}

	// CRN variance reduction, measured through the engine: two nearby
	// placements of the same 60-task chain compared once with paired CRN
	// replay and once with independent campaigns at the same run count.
	crnRuns := cfg.Runs(4000, 500)
	vr := p.AddTable(&result.Table{
		ID: "E14",
		Title: fmt.Sprintf("CRN vs independent strategy deltas (checkpoint-every-2 vs every-3, %d runs)",
			crnRuns),
		Columns: []string{"law", "p", "delta_mean", "ci99_crn", "ci99_indep", "var_reduction"},
	})
	for _, law := range laws {
		for _, procs := range []int{1, 1_000} {
			law, procs := law, procs
			p.Job(vr, func(s *rng.Stream) (RowOut, error) {
				// A busier platform than the timing sweep (MTBF/20), so
				// the deltas see plenty of failures.
				bdist, err := law.dist(platformMTBF / 20 * float64(procs))
				if err != nil {
					return RowOut{}, err
				}
				factory := sim.SuperposedFactory(bdist, procs, failure.RejuvenateFailedOnly)
				opts := sim.Options{Downtime: dtime, Workers: 1}
				plans := E14ComparatorPlans()
				crn, err := sim.CampaignPlans(plans, factory, opts, crnRuns, s.Split())
				if err != nil {
					return RowOut{}, err
				}
				a, err := sim.MonteCarlo(plans[0], factory, opts, crnRuns, s.Split())
				if err != nil {
					return RowOut{}, err
				}
				b, err := sim.MonteCarlo(plans[1], factory, opts, crnRuns, s.Split())
				if err != nil {
					return RowOut{}, err
				}
				indepVar := a.Makespan.Variance() + b.Makespan.Variance()
				ciIndep := 2.576 * math.Sqrt(indepVar/float64(crnRuns))
				reduction := math.Inf(1)
				if v := crn.Delta[1].Variance(); v > 0 {
					reduction = indepVar / v
				}
				return RowOut{
					Cells: []result.Cell{
						result.Str(law.name), result.Int(procs),
						result.Float(crn.Delta[1].Mean()),
						result.Sci(crn.Delta[1].CI(0.99)), result.Sci(ciIndep),
						result.FixedUnit(reduction, 1, "x"),
					},
					Value: reduction,
				}, nil
			})
		}
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allIdentical := true
		minReduction := math.Inf(1)
		for j, job := range p.Jobs {
			switch job.Table {
			case t:
				allIdentical = allIdentical && outs[j].Value.(bool)
			case vr:
				if r := outs[j].Value.(float64); r < minReduction {
					minReduction = r
				}
			}
		}
		tables[t].AddNote("heap and scan campaigns are sample-identical on every row → %s", yn(allIdentical))
		tables[t].AddNote("the scan arm pays two O(p) passes per segment attempt; the heap arm peeks the root and bumps a clock offset, leaving the O(p) per-run reset as the only platform-size term")
		tables[vr].AddNote("CRN variance reduction ≥ %.1fx on every row: paired replay beats independent differencing at equal run counts", minReduction)
		tables[vr].AddNote("var_reduction and both CIs are deterministic from the seed — they measure the sampling design, not the wall clock")
		return nil
	}
	return p, nil
}
