// Package engine executes experiment scenarios (internal/expt) on a
// configurable worker pool. It fans work out at two grains: across
// experiments and, within each experiment, across its independent row
// jobs — every job across every selected scenario feeds one shared pool,
// so a single slow experiment cannot serialize the run.
//
// Determinism contract (see DESIGN.md): each row job draws randomness
// only from a stream keyed by (seed, experiment ID, job index), and job
// outputs are placed by index, never by completion order. A run with
// Workers=1 and a run with Workers=N therefore produce bit-identical
// tables for the same seed, up to cells explicitly marked volatile
// (wall-clock measurements). internal/expt.Execute is the serial
// reference the Runner is tested against.
package engine

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/expt"
	"repro/internal/expt/result"
)

// Runner executes scenarios on a worker pool.
type Runner struct {
	// Workers is the pool size; ≤ 0 means runtime.GOMAXPROCS(0).
	Workers int
}

// Result is one scenario's outcome.
type Result struct {
	Info   expt.Info
	Tables []*result.Table
	// Err is the scenario's failure, if any: the planning error, the
	// lowest-indexed job error (a deterministic choice, independent of
	// completion order), or the assembly error.
	Err error
	// Elapsed is the wall-clock span from the scenario's plan start to
	// its assembly end. Under a shared pool spans overlap across
	// scenarios, so these do not sum to the run's wall-clock.
	Elapsed time.Duration
}

// workerCount resolves the configured pool size.
func (r Runner) workerCount() int {
	if r.Workers > 0 {
		return r.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// task is one unit for the pool: a row job of one scenario.
type task struct {
	scen, job int
}

// state tracks one scenario through the run.
type state struct {
	info    expt.Info
	plan    *expt.Plan
	planErr error
	outs    []expt.RowOut
	errs    []error // per-job errors, picked lowest-index-first
	start   time.Time
	// pending counts unfinished jobs; the worker that retires the last
	// one assembles the scenario.
	pending atomic.Int64
}

// Run executes the scenarios and returns their results in input order.
// Planning, row jobs, and assembly all run on the pool; results are
// deterministic per the package contract.
func (r Runner) Run(cfg expt.Config, scens []expt.Scenario) []Result {
	return r.RunStream(cfg, scens, nil)
}

// RunStream is Run with incremental delivery: emit (if non-nil) is
// called once per scenario, in input order, as soon as that scenario
// and all its predecessors have completed — so a consumer can render
// E1's tables while E9 is still simulating, the way the old serial
// harness streamed its output. emit runs on a single goroutine; the
// emitted Result is identical to the corresponding Run return value.
func (r Runner) RunStream(cfg expt.Config, scens []expt.Scenario, emit func(Result)) []Result {
	workers := r.workerCount()
	states := make([]*state, len(scens))
	results := make([]Result, len(scens))
	completed := make([]chan struct{}, len(scens))
	for i := range completed {
		completed[i] = make(chan struct{})
	}
	// finish assembles scenario i (or records its error) and releases it
	// to the in-order emitter. Called exactly once per scenario.
	finish := func(i int) {
		st := states[i]
		results[i].Info = st.info
		if st.planErr != nil {
			results[i].Err = fmt.Errorf("expt: %s: plan: %w", st.info.ID, st.planErr)
		} else {
			for j, err := range st.errs {
				if err != nil {
					results[i].Err = fmt.Errorf("expt: %s: job %d: %w", st.info.ID, j, err)
					break
				}
			}
		}
		if results[i].Err == nil {
			tables, err := st.plan.Assemble(st.outs)
			if err != nil {
				results[i].Err = fmt.Errorf("expt: %s: %w", st.info.ID, err)
			} else {
				results[i].Tables = tables
			}
		}
		results[i].Elapsed = time.Since(st.start)
		close(completed[i])
	}

	var emitted sync.WaitGroup
	if emit != nil {
		emitted.Add(1)
		go func() {
			defer emitted.Done()
			for i := range scens {
				<-completed[i]
				emit(results[i])
			}
		}()
	}

	// Phase 1: plan every scenario (bounded fan-out across experiments).
	runBounded(workers, len(scens), func(i int) {
		st := &state{info: scens[i].Info(), start: time.Now()}
		plan, err := scens[i].Plan(cfg)
		if err != nil {
			st.planErr = err
		} else {
			st.plan = plan
			st.outs = make([]expt.RowOut, len(plan.Jobs))
			st.errs = make([]error, len(plan.Jobs))
			st.pending.Store(int64(len(plan.Jobs)))
		}
		states[i] = st
	})

	// Phase 2: one shared pool over every row job of every scenario. A
	// scenario is assembled by whichever worker retires its last job, so
	// early experiments stream out while later ones are still running.
	var tasks []task
	for i, st := range states {
		if st.plan == nil || len(st.plan.Jobs) == 0 {
			finish(i)
			continue
		}
		for j := range st.plan.Jobs {
			tasks = append(tasks, task{scen: i, job: j})
		}
	}
	runBounded(workers, len(tasks), func(k int) {
		tk := tasks[k]
		st := states[tk.scen]
		s := expt.JobStream(cfg, st.info.ID, tk.job)
		out, err := st.plan.Jobs[tk.job].Run(s)
		if err != nil {
			st.errs[tk.job] = err
		} else {
			st.outs[tk.job] = out
		}
		if st.pending.Add(-1) == 0 {
			finish(tk.scen)
		}
	})

	emitted.Wait()
	return results
}

// RunAll executes every registered experiment.
func (r Runner) RunAll(cfg expt.Config) []Result {
	return r.Run(cfg, expt.All())
}

// FirstError returns the first failed result in order, or nil.
func FirstError(results []Result) error {
	for _, res := range results {
		if res.Err != nil {
			return res.Err
		}
	}
	return nil
}

// runBounded executes fn(0..n-1) on up to `workers` goroutines, blocking
// until all complete. With workers == 1 it degenerates to a plain serial
// loop on the caller's goroutine.
func runBounded(workers, n int, fn func(i int)) {
	if n == 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
