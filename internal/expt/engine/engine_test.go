package engine

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/expt"
	"repro/internal/expt/render"
	"repro/internal/expt/result"
	"repro/internal/rng"
)

// renderAll renders tables to full text + CSV (no masking).
func renderAll(t *testing.T, tables []*result.Table) string {
	t.Helper()
	var buf bytes.Buffer
	for _, tb := range tables {
		if err := render.Text(&buf, tb); err != nil {
			t.Fatal(err)
		}
		if err := render.CSV(&buf, tb); err != nil {
			t.Fatal(err)
		}
	}
	return buf.String()
}

// TestParallelMatchesSerialByteForByte is the engine's determinism
// contract: for every registered experiment and a fixed seed, a
// Workers=1 run, a Workers=8 run, and the serial reference executor all
// produce identical tables. Volatile (wall-clock) cells are masked via
// render.Fingerprint; experiments with no volatile content are
// additionally compared as full text+CSV bytes.
func TestParallelMatchesSerialByteForByte(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite runs skipped with -short")
	}
	cfg := expt.Config{Seed: 7, Quick: true}
	for _, s := range expt.All() {
		s := s
		t.Run(s.Info().ID, func(t *testing.T) {
			t.Parallel()
			scens := []expt.Scenario{s}

			serial1 := Runner{Workers: 1}.Run(cfg, scens)
			parallel8 := Runner{Workers: 8}.Run(cfg, scens)
			reference, refErr := expt.Execute(cfg, s)
			if serial1[0].Err != nil || parallel8[0].Err != nil || refErr != nil {
				t.Fatalf("run failed: serial=%v parallel=%v reference=%v",
					serial1[0].Err, parallel8[0].Err, refErr)
			}

			fp1 := render.Fingerprint(serial1[0].Tables)
			fp8 := render.Fingerprint(parallel8[0].Tables)
			fpRef := render.Fingerprint(reference)
			if fp1 != fp8 {
				t.Errorf("workers=1 vs workers=8 fingerprints differ:\n--- serial ---\n%s\n--- parallel ---\n%s", fp1, fp8)
			}
			if fp1 != fpRef {
				t.Errorf("engine vs reference executor fingerprints differ")
			}

			volatile := false
			for _, tb := range serial1[0].Tables {
				volatile = volatile || tb.Volatile()
			}
			if !volatile {
				if renderAll(t, serial1[0].Tables) != renderAll(t, parallel8[0].Tables) {
					t.Errorf("full text+CSV output differs between worker counts")
				}
			} else if id := s.Info().ID; id != "E7" && id != "E13" && id != "E14" && id != "E15" && id != "E16" {
				t.Errorf("only E7 and E13–E16 (wall-clock scaling) may contain volatile cells, %s does too", id)
			}
		})
	}
}

// fake is a synthetic scenario for engine-behavior tests.
type fake struct {
	id   string
	plan func(cfg expt.Config) (*expt.Plan, error)
}

func (f fake) Info() expt.Info                          { return expt.Info{ID: f.id, Title: f.id, Claim: f.id} }
func (f fake) Plan(cfg expt.Config) (*expt.Plan, error) { return f.plan(cfg) }

func TestPlanErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	res := Runner{Workers: 2}.Run(expt.Config{}, []expt.Scenario{
		fake{id: "bad", plan: func(expt.Config) (*expt.Plan, error) { return nil, boom }},
	})
	if !errors.Is(res[0].Err, boom) {
		t.Errorf("plan error lost: %v", res[0].Err)
	}
	if FirstError(res) == nil {
		t.Error("FirstError missed the failure")
	}
}

// TestJobErrorIsDeterministic: when several jobs fail, the reported
// error is the lowest-indexed one regardless of completion order.
func TestJobErrorIsDeterministic(t *testing.T) {
	mk := func() expt.Scenario {
		return fake{id: "multi", plan: func(expt.Config) (*expt.Plan, error) {
			p := &expt.Plan{}
			tab := p.AddTable(&result.Table{ID: "T", Title: "t", Columns: []string{"a"}})
			for j := 0; j < 8; j++ {
				j := j
				p.Job(tab, func(*rng.Stream) (expt.RowOut, error) {
					if j%2 == 1 {
						return expt.RowOut{}, fmt.Errorf("job %d failed", j)
					}
					return expt.RowOut{Cells: []result.Cell{result.Int(j)}}, nil
				})
			}
			return p, nil
		}}
	}
	for _, workers := range []int{1, 8} {
		res := Runner{Workers: workers}.Run(expt.Config{}, []expt.Scenario{mk()})
		if res[0].Err == nil || !strings.Contains(res[0].Err.Error(), "job 1 failed") {
			t.Errorf("workers=%d: want lowest-indexed job error, got %v", workers, res[0].Err)
		}
	}
}

// TestRowOrderIsDeclarationOrder: rows land in job-declaration order
// even when workers complete them out of order.
func TestRowOrderIsDeclarationOrder(t *testing.T) {
	scen := fake{id: "order", plan: func(expt.Config) (*expt.Plan, error) {
		p := &expt.Plan{}
		tab := p.AddTable(&result.Table{ID: "T", Title: "t", Columns: []string{"i", "draw"}})
		for j := 0; j < 64; j++ {
			j := j
			p.Job(tab, func(s *rng.Stream) (expt.RowOut, error) {
				return expt.RowOut{Cells: []result.Cell{
					result.Int(j), result.Int(int(s.IntN(1 << 30))),
				}}, nil
			})
		}
		return p, nil
	}}
	res := Runner{Workers: 8}.Run(expt.Config{Seed: 3}, []expt.Scenario{scen})
	if res[0].Err != nil {
		t.Fatal(res[0].Err)
	}
	rows := res[0].Tables[0].Rows
	if len(rows) != 64 {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, row := range rows {
		if row.Cells[0].I != int64(i) {
			t.Fatalf("row %d holds job %d's output", i, row.Cells[0].I)
		}
	}
	// And the keyed draws reproduce under a different worker count.
	res1 := Runner{Workers: 1}.Run(expt.Config{Seed: 3}, []expt.Scenario{scen})
	for i := range rows {
		if rows[i].Cells[1].I != res1[0].Tables[0].Rows[i].Cells[1].I {
			t.Fatalf("row %d draw differs between worker counts", i)
		}
	}
}

// TestRunStreamEmitsInOrder: emit fires once per scenario, in input
// order, with results identical to Run's, even when a plan fails.
func TestRunStreamEmitsInOrder(t *testing.T) {
	mkOK := func(id string) expt.Scenario {
		return fake{id: id, plan: func(expt.Config) (*expt.Plan, error) {
			p := &expt.Plan{}
			tab := p.AddTable(&result.Table{ID: id, Title: id, Columns: []string{"v"}})
			for j := 0; j < 4; j++ {
				p.Job(tab, func(s *rng.Stream) (expt.RowOut, error) {
					return expt.RowOut{Cells: []result.Cell{result.Int(int(s.IntN(100)))}}, nil
				})
			}
			return p, nil
		}}
	}
	scens := []expt.Scenario{
		mkOK("A"),
		fake{id: "B", plan: func(expt.Config) (*expt.Plan, error) { return nil, errors.New("nope") }},
		mkOK("C"),
	}
	var order []string
	streamed := Runner{Workers: 4}.RunStream(expt.Config{Seed: 5}, scens, func(res Result) {
		order = append(order, res.Info.ID)
	})
	if strings.Join(order, "") != "ABC" {
		t.Errorf("emit order %v, want A B C", order)
	}
	plain := Runner{Workers: 4}.Run(expt.Config{Seed: 5}, scens)
	for i := range scens {
		if (streamed[i].Err == nil) != (plain[i].Err == nil) {
			t.Errorf("scenario %d: stream err %v vs run err %v", i, streamed[i].Err, plain[i].Err)
		}
		if streamed[i].Err != nil {
			continue
		}
		if render.Fingerprint(streamed[i].Tables) != render.Fingerprint(plain[i].Tables) {
			t.Errorf("scenario %d: streamed tables differ from Run's", i)
		}
	}
}

func TestWorkerCountDefault(t *testing.T) {
	if got := (Runner{}).workerCount(); got < 1 {
		t.Errorf("default worker count %d", got)
	}
	if got := (Runner{Workers: 3}).workerCount(); got != 3 {
		t.Errorf("explicit worker count %d", got)
	}
}
