// Package expt is the experiment harness: it defines one runnable
// experiment per checkable claim of the paper (see DESIGN.md's
// per-experiment index) and renders their results as plain-text tables.
// The same experiments back cmd/chkptbench and the root-level Go
// benchmarks, and their outputs are the evidence recorded in
// EXPERIMENTS.md.
package expt

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives every random choice; equal seeds reproduce tables
	// bit-for-bit.
	Seed uint64
	// Quick trades Monte-Carlo precision for speed (used by `go test
	// -bench` so the full suite stays fast; the recorded tables use the
	// full budget).
	Quick bool
}

// Runs picks a Monte-Carlo budget: full when !Quick, reduced otherwise.
func (c Config) Runs(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Table is a rendered experiment result.
type Table struct {
	// ID is the experiment ID (e.g. "E1"); Title describes the table.
	ID, Title string
	// Columns holds the header cells.
	Columns []string
	// Rows holds the data cells; each row must have len(Columns) cells.
	Rows [][]string
	// Notes are printed under the table (pass/fail criteria, caveats).
	Notes []string
}

// AddRow appends a row of stringified cells.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (quotes around cells
// containing commas).
func (t *Table) CSV(w io.Writer) error {
	quote := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cells []string) error {
		qs := make([]string, len(cells))
		for i, c := range cells {
			qs[i] = quote(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(qs, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	return nil
}

// Experiment is a named, runnable reproduction of one paper claim.
type Experiment struct {
	// ID is the index key ("E1".."E12").
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites what part of the paper the experiment checks.
	Claim string
	// Run executes the experiment.
	Run func(cfg Config) ([]*Table, error)
}

var registry = map[string]Experiment{}

func register(e Experiment) {
	if _, dup := registry[e.ID]; dup {
		panic("expt: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// All returns every experiment in ID order.
func All() []Experiment {
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric ordering of E1..E12.
		var a, b int
		fmt.Sscanf(out[i].ID, "E%d", &a)
		fmt.Sscanf(out[j].ID, "E%d", &b)
		return a < b
	})
	return out
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	e, ok := registry[id]
	return e, ok
}

// RunAll executes every experiment and renders results to w.
func RunAll(cfg Config, w io.Writer) error {
	for _, e := range All() {
		if _, err := fmt.Fprintf(w, "### %s — %s\nclaim: %s\n\n", e.ID, e.Title, e.Claim); err != nil {
			return err
		}
		tables, err := e.Run(cfg)
		if err != nil {
			return fmt.Errorf("expt: %s: %w", e.ID, err)
		}
		for _, t := range tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}

// fm formats a float compactly for tables.
func fm(v float64) string { return fmt.Sprintf("%.6g", v) }

// fe formats in scientific notation for error columns.
func fe(v float64) string { return fmt.Sprintf("%.2e", v) }

// fb formats a pass/fail cell.
func fb(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
