// Package expt is the experiment harness: it defines one runnable
// scenario per checkable claim of the paper (see DESIGN.md's
// per-experiment index, E1–E12) and produces typed result tables
// (internal/expt/result). The same scenarios back cmd/chkptbench and the
// root-level Go benchmarks, and their rendered outputs are the evidence
// recorded in EXPERIMENTS.md.
//
// A Scenario declares its work as a Plan: pre-shaped output tables plus
// a list of independent RowJobs, one per table row. Each job receives a
// private random stream keyed by (experiment ID, job index) — never by
// execution order — so the engine (internal/expt/engine) can run jobs on
// any number of workers and still reproduce the serial run bit-for-bit.
// Execute in this package is the serial reference implementation of
// those semantics.
package expt

import (
	"fmt"
	"sort"

	"repro/internal/expt/result"
	"repro/internal/rng"
)

// Config tunes an experiment run.
type Config struct {
	// Seed drives every random choice; equal seeds reproduce tables
	// bit-for-bit (up to volatile wall-clock cells; see DESIGN.md).
	Seed uint64
	// Quick trades Monte-Carlo precision for speed (used by `go test
	// -bench` so the full suite stays fast; the recorded tables use the
	// full budget).
	Quick bool
	// CRN switches the strategy-comparison experiments (E8, E11) onto the
	// common-random-number sharded campaign (sim.CampaignPlansSharded,
	// single-shard so the table cells match the documented CRN
	// fingerprints): every candidate
	// strategy replays the same recorded failure environments, which
	// tightens paired-delta confidence intervals at equal run counts and
	// cuts the distribution sampling S-fold. Off by default because the
	// CRN sampling schedule differs from the independent one, so the
	// fingerprinted tables would change (see DESIGN.md's determinism
	// contract).
	CRN bool
}

// Runs picks a Monte-Carlo budget: full when !Quick, reduced otherwise.
func (c Config) Runs(full, quick int) int {
	if c.Quick {
		return quick
	}
	return full
}

// Info identifies a scenario.
type Info struct {
	// ID is the index key ("E1".."E12").
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites what part of the paper the scenario checks.
	Claim string
}

// RowOut is what one RowJob produces: the row's cells, optional row
// metadata, and an optional payload for the plan's Finish hook
// (pass/fail flags, intermediate values the notes aggregate over).
type RowOut struct {
	Cells []result.Cell
	Meta  map[string]string
	Value any
}

// RowJob computes one row of one table. Jobs within a plan are
// independent: they share no mutable state and draw randomness only from
// the keyed stream they are handed, so the engine may run them in any
// order and on any worker.
type RowJob struct {
	// Table indexes Plan.Tables.
	Table int
	// Run computes the row. s is derived from (seed, experiment ID, job
	// index) and is private to this job.
	Run func(s *rng.Stream) (RowOut, error)
}

// Plan is a scenario's declared work: the output tables with headers set
// and rows empty, the row jobs that fill them, and an optional Finish
// hook that runs after every job completed.
type Plan struct {
	Tables []*result.Table
	Jobs   []RowJob
	// Finish runs once all rows are in place, with outs in job order. It
	// typically aggregates job payloads into notes; it may also rewrite
	// cells that depend on neighbouring rows (e.g. timing ratios).
	Finish func(tables []*result.Table, outs []RowOut) error
}

// AddTable registers an output table and returns its index for RowJobs.
func (p *Plan) AddTable(t *result.Table) int {
	p.Tables = append(p.Tables, t)
	return len(p.Tables) - 1
}

// Job appends a row job for table index tab. Jobs targeting the same
// table fill its rows in the order they were added, regardless of the
// order they execute in.
func (p *Plan) Job(tab int, run func(s *rng.Stream) (RowOut, error)) {
	p.Jobs = append(p.Jobs, RowJob{Table: tab, Run: run})
}

// Scenario is a named, runnable reproduction of one paper claim in
// declared-input form.
type Scenario interface {
	Info() Info
	Plan(cfg Config) (*Plan, error)
}

// scenario is the registry's Scenario implementation.
type scenario struct {
	info Info
	plan func(cfg Config) (*Plan, error)
}

func (s scenario) Info() Info                     { return s.info }
func (s scenario) Plan(cfg Config) (*Plan, error) { return s.plan(cfg) }

var registry = map[string]Scenario{}

func register(info Info, plan func(cfg Config) (*Plan, error)) {
	if _, dup := registry[info.ID]; dup {
		panic("expt: duplicate experiment " + info.ID)
	}
	registry[info.ID] = scenario{info: info, plan: plan}
}

// All returns every scenario in ID order.
func All() []Scenario {
	out := make([]Scenario, 0, len(registry))
	for _, s := range registry {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric ordering of E1..E12.
		var a, b int
		fmt.Sscanf(out[i].Info().ID, "E%d", &a)
		fmt.Sscanf(out[j].Info().ID, "E%d", &b)
		return a < b
	})
	return out
}

// IDs returns every registered experiment ID in order.
func IDs() []string {
	all := All()
	ids := make([]string, len(all))
	for i, s := range all {
		ids[i] = s.Info().ID
	}
	return ids
}

// ByID looks a scenario up.
func ByID(id string) (Scenario, bool) {
	s, ok := registry[id]
	return s, ok
}

// hashID is FNV-1a over the experiment ID, the namespace component of
// job-stream keys.
func hashID(id string) uint64 {
	const (
		offset = 0xcbf29ce484222325
		prime  = 0x100000001b3
	)
	h := uint64(offset)
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= prime
	}
	return h
}

// JobStream derives the deterministic random stream for job index j of
// experiment id: rng.New(seed).Keyed(hash(id)).Keyed(j+1). The key chain
// depends only on (seed, id, j) — not on execution order or worker count
// — which is the engine's determinism contract.
func JobStream(cfg Config, id string, j int) *rng.Stream {
	return rng.New(cfg.Seed).Keyed(hashID(id)).Keyed(uint64(j) + 1)
}

// SetupStream derives the stream for plan-time setup (shared inputs such
// as a graph every row reuses). It is the reserved key 0 of the
// experiment's namespace, disjoint from every JobStream.
func SetupStream(cfg Config, id string) *rng.Stream {
	return rng.New(cfg.Seed).Keyed(hashID(id)).Keyed(0)
}

// Assemble places job outputs (in job order) into the plan's tables and
// runs the Finish hook. It validates the one-job-one-row invariant and
// row widths against the declared columns.
func (p *Plan) Assemble(outs []RowOut) ([]*result.Table, error) {
	if len(outs) != len(p.Jobs) {
		return nil, fmt.Errorf("expt: %d outputs for %d jobs", len(outs), len(p.Jobs))
	}
	for i, job := range p.Jobs {
		if job.Table < 0 || job.Table >= len(p.Tables) {
			return nil, fmt.Errorf("expt: job %d targets table %d of %d", i, job.Table, len(p.Tables))
		}
		t := p.Tables[job.Table]
		if len(outs[i].Cells) != len(t.Columns) {
			return nil, fmt.Errorf("expt: job %d produced %d cells for %d columns of table %q",
				i, len(outs[i].Cells), len(t.Columns), t.Title)
		}
		t.Rows = append(t.Rows, result.Row{Cells: outs[i].Cells, Meta: outs[i].Meta})
	}
	if p.Finish != nil {
		if err := p.Finish(p.Tables, outs); err != nil {
			return nil, err
		}
	}
	return p.Tables, nil
}

// yn formats a pass/fail flag inside note text ("yes"/"NO"), matching
// result.Bool's cell rendering.
func yn(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}

// Execute runs a scenario serially: plan, run each job with its keyed
// stream, assemble. It is the reference semantics that
// internal/expt/engine's parallel Runner must reproduce bit-for-bit.
func Execute(cfg Config, s Scenario) ([]*result.Table, error) {
	id := s.Info().ID
	plan, err := s.Plan(cfg)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: plan: %w", id, err)
	}
	outs := make([]RowOut, len(plan.Jobs))
	for j, job := range plan.Jobs {
		out, err := job.Run(JobStream(cfg, id, j))
		if err != nil {
			return nil, fmt.Errorf("expt: %s: job %d: %w", id, j, err)
		}
		outs[j] = out
	}
	tables, err := plan.Assemble(outs)
	if err != nil {
		return nil, fmt.Errorf("expt: %s: %w", id, err)
	}
	return tables, nil
}
