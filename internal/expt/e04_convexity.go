package expt

import (
	"fmt"
	"math"

	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/rng"
	"repro/internal/stats"
)

func init() {
	register(Info{
		ID:    "E4",
		Title: "Convexity machinery of the Proposition 2 proof",
		Claim: "g(m) = m(e^{λ(nT/m+C)}−1) is convex with unique minimum at m = n under λ=1/(2T), C=(ln2−½)/λ",
	}, planE4)
}

func planE4(cfg Config) (*Plan, error) {
	const (
		tVal = 100.0
		n    = 8.0
	)
	lambda := 1 / (2 * tVal)
	c := (math.Ln2 - 0.5) / lambda
	w := n * tVal

	p := &Plan{}
	curve := p.AddTable(&result.Table{
		ID:      "E4",
		Title:   fmt.Sprintf("g(m) under the reduction parameters (T=%g, n=%g, λ=%g, C=%.6g)", tVal, n, lambda, c),
		Columns: []string{"m", "g(m)", "g'(m)", "g''(m)"},
	})
	for m := 1.0; m <= 2*n; m++ {
		m := m
		p.Job(curve, func(s *rng.Stream) (RowOut, error) {
			g := expectation.ProofG(lambda, w, c, m)
			gp := expectation.ProofGPrime(lambda, w, c, m)
			gpp := expectation.ProofGDoublePrime(lambda, w, c, m)
			return RowOut{
				Cells: []result.Cell{result.Float(m), result.Float(g), result.Float(gp), result.Float(gpp)},
				Value: g,
			}, nil
		})
	}

	// Equal-sums optimality: among groupings with m = n groups, unequal
	// sums strictly lose (the convexity/Jensen step of the proof).
	jensen := p.AddTable(&result.Table{
		ID:      "E4",
		Title:   "Jensen step: equal group sums minimize Σe^{λT_i} at fixed m = n",
		Columns: []string{"perturbation δ", "E_equal", "E_perturbed", "E_perturbed > E_equal"},
	})
	for _, delta := range []float64{1, 5, 20, 50} {
		delta := delta
		p.Job(jensen, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(lambda, 0)
			if err != nil {
				return RowOut{}, err
			}
			eEqual := m.EqualChunkMakespan(w, c, c, int(n))
			// Two groups perturbed by ±δ, the rest equal.
			e := eEqual - 2*m.ExpectedTime(tVal, c, c) +
				m.ExpectedTime(tVal+delta, c, c) + m.ExpectedTime(tVal-delta, c, c)
			worse := e > eEqual
			return RowOut{
				Cells: []result.Cell{result.Float(delta), result.Float(eEqual), result.Float(e), result.Bool(worse)},
				Value: worse,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		var ys []float64
		allWorse := true
		for j, job := range p.Jobs {
			switch job.Table {
			case curve:
				ys = append(ys, outs[j].Value.(float64))
			case jensen:
				allWorse = allWorse && outs[j].Value.(bool)
			}
		}
		// Relative tolerance: the probe's verdict must not depend on the
		// instance's magnitude (the g(m) curve scales with the reduction's
		// work volume), so slack is a few ulps of the local curve value
		// rather than a fixed absolute cutoff.
		convex := stats.IsConvexRel(ys, 1e-12)
		argmin := stats.ArgminSlice(ys) + 1
		gPrimeAtN := expectation.ProofGPrime(lambda, w, c, n)
		exponent := math.Exp(lambda * (tVal + c))
		tables[curve].AddNote("discrete convexity over m ∈ [1, %g] → %s", 2*n, yn(convex))
		tables[curve].AddNote("integer argmin = %d (proof predicts n = %g) → %s", argmin, n, yn(float64(argmin) == n))
		tables[curve].AddNote("g'(n) = %.3e (proof predicts exactly 0)", gPrimeAtN)
		tables[curve].AddNote("e^{λ(T+C)} = %.12f (proof rigs it to exactly 2)", exponent)
		tables[jensen].AddNote("every perturbation strictly increases E → %s", yn(allWorse))
		return nil
	}
	return p, nil
}
