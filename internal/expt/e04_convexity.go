package expt

import (
	"fmt"
	"math"

	"repro/internal/expectation"
	"repro/internal/stats"
)

func init() {
	register(Experiment{
		ID:    "E4",
		Title: "Convexity machinery of the Proposition 2 proof",
		Claim: "g(m) = m(e^{λ(nT/m+C)}−1) is convex with unique minimum at m = n under λ=1/(2T), C=(ln2−½)/λ",
		Run:   runE4,
	})
}

func runE4(cfg Config) ([]*Table, error) {
	const (
		tVal = 100.0
		n    = 8.0
	)
	lambda := 1 / (2 * tVal)
	c := (math.Ln2 - 0.5) / lambda
	w := n * tVal

	curve := &Table{
		ID:      "E4",
		Title:   fmt.Sprintf("g(m) under the reduction parameters (T=%g, n=%g, λ=%g, C=%.6g)", tVal, n, lambda, c),
		Columns: []string{"m", "g(m)", "g'(m)", "g''(m)"},
	}
	var ys []float64
	for m := 1.0; m <= 2*n; m++ {
		g := expectation.ProofG(lambda, w, c, m)
		gp := expectation.ProofGPrime(lambda, w, c, m)
		gpp := expectation.ProofGDoublePrime(lambda, w, c, m)
		ys = append(ys, g)
		curve.AddRow(fm(m), fm(g), fm(gp), fm(gpp))
	}
	convex := stats.IsConvex(ys, 1e-9)
	argmin := stats.ArgminSlice(ys) + 1
	gPrimeAtN := expectation.ProofGPrime(lambda, w, c, n)
	exponent := math.Exp(lambda * (tVal + c))
	curve.Notes = append(curve.Notes,
		fmt.Sprintf("discrete convexity over m ∈ [1, %g] → %s", 2*n, fb(convex)),
		fmt.Sprintf("integer argmin = %d (proof predicts n = %g) → %s", argmin, n, fb(float64(argmin) == n)),
		fmt.Sprintf("g'(n) = %.3e (proof predicts exactly 0)", gPrimeAtN),
		fmt.Sprintf("e^{λ(T+C)} = %.12f (proof rigs it to exactly 2)", exponent),
	)

	// Equal-sums optimality: among groupings with m = n groups, unequal
	// sums strictly lose (the convexity/Jensen step of the proof).
	jensen := &Table{
		ID:      "E4",
		Title:   "Jensen step: equal group sums minimize Σe^{λT_i} at fixed m = n",
		Columns: []string{"perturbation δ", "E_equal", "E_perturbed", "E_perturbed > E_equal"},
	}
	m, err := expectation.NewModel(lambda, 0)
	if err != nil {
		return nil, err
	}
	eEqual := m.EqualChunkMakespan(w, c, c, int(n))
	allWorse := true
	for _, delta := range []float64{1, 5, 20, 50} {
		// Two groups perturbed by ±δ, the rest equal.
		e := eEqual - 2*m.ExpectedTime(tVal, c, c) +
			m.ExpectedTime(tVal+delta, c, c) + m.ExpectedTime(tVal-delta, c, c)
		worse := e > eEqual
		allWorse = allWorse && worse
		jensen.AddRow(fm(delta), fm(eEqual), fm(e), fb(worse))
	}
	jensen.Notes = append(jensen.Notes,
		fmt.Sprintf("every perturbation strictly increases E → %s", fb(allWorse)))

	return []*Table{curve, jensen}, nil
}
