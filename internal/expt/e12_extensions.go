package expt

import (
	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E12",
		Title: "Extensions: content-dependent checkpoint costs on DAGs, and moldable pipelines",
		Claim: "with live-set checkpoint costs the linearization choice matters (Section 6, first extension); per-task processor counts instantiate the second extension",
	}, planE12)
}

func planE12(cfg Config) (*Plan, error) {
	p := &Plan{}

	// Table 1: linearization strategies under the live-set cost model.
	// One row job per graph family; each builds its graph from its own
	// keyed stream.
	strategies := core.DefaultStrategies()
	linCols := []string{"graph"}
	for _, s := range strategies {
		linCols = append(linCols, s.Name)
	}
	linCols = append(linCols, "best")
	lin := p.AddTable(&result.Table{
		ID:      "E12",
		Title:   "expected makespan per linearization strategy (live-set checkpoint costs)",
		Columns: linCols,
	})
	graphs := []struct {
		name  string
		build func(s *rng.Stream) (*dag.Graph, error)
	}{
		{"fork-join 4x3", func(s *rng.Stream) (*dag.Graph, error) {
			return dag.ForkJoin(4, 3, dag.DefaultWeights(), s)
		}},
		{"layered 4x4", func(s *rng.Stream) (*dag.Graph, error) {
			return dag.Layered(4, 4, 0.4, dag.DefaultWeights(), s)
		}},
		{"montage(6)", func(s *rng.Stream) (*dag.Graph, error) {
			return dag.MontageLike(6, dag.DefaultWeights(), s)
		}},
	}
	for _, gr := range graphs {
		gr := gr
		p.Job(lin, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.02, 1)
			if err != nil {
				return RowOut{}, err
			}
			g, err := gr.build(s.Split())
			if err != nil {
				return RowOut{}, err
			}
			row := []result.Cell{result.Str(gr.name)}
			bestName, bestE := "", 0.0
			var firstE float64
			for i, st := range strategies {
				order, err := st.Order(g)
				if err != nil {
					return RowOut{}, err
				}
				res, err := core.SolveOrderDP(g, order, m, core.LiveSetCosts{})
				if err != nil {
					return RowOut{}, err
				}
				row = append(row, result.Float(res.Expected))
				if i == 0 {
					firstE = res.Expected
				}
				if bestName == "" || res.Expected < bestE {
					bestName, bestE = st.Name, res.Expected
				}
			}
			row = append(row, result.Str(bestName))
			return RowOut{Cells: row, Value: bestE < firstE*(1-1e-9)}, nil
		})
	}

	// Table 2: heuristic portfolio vs exhaustive optimum on a small DAG.
	small := p.AddTable(&result.Table{
		ID:      "E12",
		Title:   "portfolio vs exhaustive linearization optimum (small fork-join, live-set costs)",
		Columns: []string{"orders_enumerated", "E_portfolio", "E_exhaustive", "portfolio/exhaustive"},
	})
	p.Job(small, func(s *rng.Stream) (RowOut, error) {
		m, err := expectation.NewModel(0.02, 1)
		if err != nil {
			return RowOut{}, err
		}
		sg, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), s.Split())
		if err != nil {
			return RowOut{}, err
		}
		heur, err := core.SolveDAG(sg, m, core.LiveSetCosts{}, nil)
		if err != nil {
			return RowOut{}, err
		}
		// The exact arm runs on the downset-lattice DP (E15 validates it
		// bit-identical to the factorial oracle), seeded with the
		// portfolio value just computed — same bound the solver would
		// derive itself, without solving the portfolio twice; the order
		// count streams through the O(n)-memory enumerator.
		exact, err := core.SolveDAGLattice(sg, m, core.LiveSetCosts{},
			core.Options{Workers: 1, IncumbentUB: heur.Expected})
		if err != nil {
			return RowOut{}, err
		}
		nOrders := int(sg.CountTopologicalOrders(0))
		return RowOut{Cells: []result.Cell{
			result.Int(nOrders), result.Float(heur.Expected), result.Float(exact.Expected),
			result.Fixed(heur.Expected/exact.Expected, 4),
		}}, nil
	})

	// Table 3: moldable pipeline (second extension). The plan is fully
	// deterministic (no rng), so it is computed at plan time and the row
	// jobs just emit the allocations.
	pl := platform.Platform{Processors: 1 << 16, LambdaProc: 1e-6, Downtime: 1}
	pipe := []moldable.Task{
		{Name: "ingest", WTotal: 2e4, BaseCheckpoint: 5,
			Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ProportionalOverhead{}}},
		{Name: "factorize", WTotal: 8e4, BaseCheckpoint: 30,
			Scenario: platform.Scenario{Workload: platform.NumericalKernel{Gamma: 0.05}, Overhead: platform.ConstantOverhead{}}},
		{Name: "reduce", WTotal: 1e4, BaseCheckpoint: 10,
			Scenario: platform.Scenario{Workload: platform.Amdahl{Gamma: 1e-4}, Overhead: platform.ConstantOverhead{}}},
	}
	seq, err := moldable.PlanSequence(pipe, pl)
	if err != nil {
		return nil, err
	}
	mold := p.AddTable(&result.Table{
		ID:      "E12",
		Title:   "moldable pipeline: per-task processor allocation (Eq. 6 instantiated per Section 3)",
		Columns: []string{"task", "workload", "overhead", "p*", "E(p*)", "speedup"},
	})
	for i := range seq.Allocations {
		i := i
		p.Job(mold, func(s *rng.Stream) (RowOut, error) {
			a := seq.Allocations[i]
			return RowOut{Cells: []result.Cell{
				result.Str(pipe[i].Name), result.Str(pipe[i].Scenario.Workload.Name()), result.Str(pipe[i].Scenario.Overhead.Name()),
				result.Int(a.Processors), result.Float(a.Expected), result.FixedUnit(a.Speedup, 1, "x"),
			}}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		ordersMatter := false
		for j, job := range p.Jobs {
			if job.Table == lin && outs[j].Value.(bool) {
				ordersMatter = true
			}
		}
		tables[lin].AddNote("some graph benefits from a non-default order → %s", yn(ordersMatter))
		tables[lin].AddNote("per-order checkpoint placement is exact (generalized Algorithm 1); only the order is heuristic — Prop. 2 says optimal ordering is strongly NP-hard")
		tables[small].AddNote("ratio 1.0000 means the portfolio found a globally optimal order")
		tables[mold].AddNote("pipeline total expected time %s; each task ends in a checkpoint, so per-task optimization is globally optimal for the sequence", result.Float(seq.TotalExpected).String())
		return nil
	}
	return p, nil
}
