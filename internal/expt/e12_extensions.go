package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E12",
		Title: "Extensions: content-dependent checkpoint costs on DAGs, and moldable pipelines",
		Claim: "with live-set checkpoint costs the linearization choice matters (Section 6, first extension); per-task processor counts instantiate the second extension",
		Run:   runE12,
	})
}

func runE12(cfg Config) ([]*Table, error) {
	seed := rng.New(cfg.Seed + 12)
	m, err := expectation.NewModel(0.02, 1)
	if err != nil {
		return nil, err
	}

	// Table 1: linearization strategies under the live-set cost model.
	lin := &Table{
		ID:      "E12",
		Title:   "expected makespan per linearization strategy (live-set checkpoint costs)",
		Columns: []string{"graph", "topo-id", "heaviest-first", "cheap-ckpt-first", "min-live-set", "best"},
	}
	graphs := []struct {
		name string
		g    *dag.Graph
	}{}
	fj, err := dag.ForkJoin(4, 3, dag.DefaultWeights(), seed.Split())
	if err != nil {
		return nil, err
	}
	graphs = append(graphs, struct {
		name string
		g    *dag.Graph
	}{"fork-join 4x3", fj})
	lay, err := dag.Layered(4, 4, 0.4, dag.DefaultWeights(), seed.Split())
	if err != nil {
		return nil, err
	}
	graphs = append(graphs, struct {
		name string
		g    *dag.Graph
	}{"layered 4x4", lay})
	mon, err := dag.MontageLike(6, dag.DefaultWeights(), seed.Split())
	if err != nil {
		return nil, err
	}
	graphs = append(graphs, struct {
		name string
		g    *dag.Graph
	}{"montage(6)", mon})

	ordersMatter := false
	for _, gr := range graphs {
		row := []string{gr.name}
		bestName, bestE := "", 0.0
		var firstE float64
		for i, s := range core.DefaultStrategies() {
			order, err := s.Order(gr.g)
			if err != nil {
				return nil, err
			}
			res, err := core.SolveOrderDP(gr.g, order, m, core.LiveSetCosts{})
			if err != nil {
				return nil, err
			}
			row = append(row, fm(res.Expected))
			if i == 0 {
				firstE = res.Expected
			}
			if bestName == "" || res.Expected < bestE {
				bestName, bestE = s.Name, res.Expected
			}
		}
		if bestE < firstE*(1-1e-9) {
			ordersMatter = true
		}
		row = append(row, bestName)
		lin.AddRow(row...)
	}
	lin.Notes = append(lin.Notes,
		fmt.Sprintf("some graph benefits from a non-default order → %s", fb(ordersMatter)),
		"per-order checkpoint placement is exact (generalized Algorithm 1); only the order is heuristic — Prop. 2 says optimal ordering is strongly NP-hard",
	)

	// Table 2: heuristic portfolio vs exhaustive optimum on a small DAG.
	small := &Table{
		ID:      "E12",
		Title:   "portfolio vs exhaustive linearization optimum (small fork-join, live-set costs)",
		Columns: []string{"orders_enumerated", "E_portfolio", "E_exhaustive", "portfolio/exhaustive"},
	}
	sg, err := dag.ForkJoin(2, 2, dag.DefaultWeights(), seed.Split())
	if err != nil {
		return nil, err
	}
	heur, err := core.SolveDAG(sg, m, core.LiveSetCosts{}, nil)
	if err != nil {
		return nil, err
	}
	exact, err := core.SolveDAGExhaustive(sg, m, core.LiveSetCosts{}, 0)
	if err != nil {
		return nil, err
	}
	nOrders := len(sg.AllTopologicalOrders(0))
	small.AddRow(fmt.Sprintf("%d", nOrders), fm(heur.Expected), fm(exact.Expected),
		fmt.Sprintf("%.4f", heur.Expected/exact.Expected))
	small.Notes = append(small.Notes, "ratio 1.0000 means the portfolio found a globally optimal order")

	// Table 3: moldable pipeline (second extension).
	pl := platform.Platform{Processors: 1 << 16, LambdaProc: 1e-6, Downtime: 1}
	pipe := []moldable.Task{
		{Name: "ingest", WTotal: 2e4, BaseCheckpoint: 5,
			Scenario: platform.Scenario{Workload: platform.PerfectlyParallel{}, Overhead: platform.ProportionalOverhead{}}},
		{Name: "factorize", WTotal: 8e4, BaseCheckpoint: 30,
			Scenario: platform.Scenario{Workload: platform.NumericalKernel{Gamma: 0.05}, Overhead: platform.ConstantOverhead{}}},
		{Name: "reduce", WTotal: 1e4, BaseCheckpoint: 10,
			Scenario: platform.Scenario{Workload: platform.Amdahl{Gamma: 1e-4}, Overhead: platform.ConstantOverhead{}}},
	}
	seq, err := moldable.PlanSequence(pipe, pl)
	if err != nil {
		return nil, err
	}
	mold := &Table{
		ID:      "E12",
		Title:   "moldable pipeline: per-task processor allocation (Eq. 6 instantiated per Section 3)",
		Columns: []string{"task", "workload", "overhead", "p*", "E(p*)", "speedup"},
	}
	for i, a := range seq.Allocations {
		mold.AddRow(pipe[i].Name, pipe[i].Scenario.Workload.Name(), pipe[i].Scenario.Overhead.Name(),
			fmt.Sprintf("%d", a.Processors), fm(a.Expected), fmt.Sprintf("%.1fx", a.Speedup))
	}
	mold.Notes = append(mold.Notes,
		fmt.Sprintf("pipeline total expected time %s; each task ends in a checkpoint, so per-task optimization is globally optimal for the sequence", fm(seq.TotalExpected)))

	return []*Table{lin, small, mold}, nil
}
