package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E7",
		Title: "Proposition 3 complexity: the DP runs in O(n²)",
		Claim: "doubling the chain length roughly quadruples the DP's running time",
		Run:   runE7,
	})
}

func runE7(cfg Config) ([]*Table, error) {
	seed := rng.New(cfg.Seed + 7)
	sizes := []int{128, 256, 512, 1024, 2048}
	if cfg.Quick {
		sizes = []int{128, 256, 512}
	}
	t := &Table{
		ID:      "E7",
		Title:   "DP wall-clock scaling (median of repetitions)",
		Columns: []string{"n", "time", "t(n)/t(n/2)", "E_opt", "checkpoints"},
	}
	m, err := expectation.NewModel(0.01, 0.5)
	if err != nil {
		return nil, err
	}
	var prev time.Duration
	quadraticish := true
	for i, n := range sizes {
		g, err := dag.Chain(n, dag.DefaultWeights(), seed.Split())
		if err != nil {
			return nil, err
		}
		cp, _, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			return nil, err
		}
		var best time.Duration
		var res core.ChainResult
		reps := 5
		if cfg.Quick {
			reps = 2
		}
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			res, err = core.SolveChainDP(cp)
			el := time.Since(start)
			if err != nil {
				return nil, err
			}
			if rep == 0 || el < best {
				best = el
			}
		}
		ratio := "-"
		if i > 0 && prev > 0 {
			rv := float64(best) / float64(prev)
			ratio = fmt.Sprintf("%.2f", rv)
			// O(n²) doubling ratio is 4; allow a generous band since
			// small sizes are cache/startup dominated.
			if rv > 8 {
				quadraticish = false
			}
		}
		prev = best
		t.AddRow(fmt.Sprintf("%d", n), best.String(), ratio,
			fm(res.Expected), fmt.Sprintf("%d", len(res.Positions())))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("doubling ratios stay near 4 (quadratic), never explode → %s", fb(quadraticish)),
		"the memoized recursion of Algorithm 1 gives identical values (tested in internal/core)",
	)

	// Ablation: the generality of per-task costs is what blocks faster
	// algorithms. With constant C = R the segment-cost matrix is Monge
	// and the decision-monotone pruned solver matches the O(n²) DP while
	// scanning far fewer cells.
	abl := &Table{
		ID:      "E7",
		Title:   "ablation: general O(n²) DP vs Monge-pruned solver on homogeneous costs",
		Columns: []string{"n", "t_general", "t_pruned", "speedup", "values_equal"},
	}
	allEqual := true
	for _, n := range sizes {
		g, err := dag.Chain(n, dag.WeightSpec{
			MinWeight: 1, MaxWeight: 10,
			MinCheckpoint: 0.3, MaxCheckpoint: 0.3, RecoveryFactor: 1,
		}, seed.Split())
		if err != nil {
			return nil, err
		}
		cp, _, err := core.NewChainProblem(g, m, 0.3)
		if err != nil {
			return nil, err
		}
		startG := time.Now()
		general, err := core.SolveChainDP(cp)
		if err != nil {
			return nil, err
		}
		tGeneral := time.Since(startG)
		startP := time.Now()
		pruned, err := core.SolveChainDPHomogeneous(cp)
		if err != nil {
			return nil, err
		}
		tPruned := time.Since(startP)
		equal := general.Expected == pruned.Expected ||
			(general.Expected-pruned.Expected)/general.Expected < 1e-9
		allEqual = allEqual && equal
		speed := float64(tGeneral) / float64(tPruned)
		abl.AddRow(fmt.Sprintf("%d", n), tGeneral.String(), tPruned.String(),
			fmt.Sprintf("%.1fx", speed), fb(equal))
	}
	abl.Notes = append(abl.Notes,
		fmt.Sprintf("pruned solver returns the identical optimum on every size → %s", fb(allEqual)),
		"per-task C_i/R_i break the Monge property, so the paper's general algorithm cannot be pruned this way",
	)

	return []*Table{t, abl}, nil
}
