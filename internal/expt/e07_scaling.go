package expt

import (
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E7",
		Title: "Proposition 3 complexity: the DP runs in O(n²)",
		Claim: "doubling the chain length roughly quadruples the DP's running time",
	}, planE7)
}

// E7's tables contain wall-clock measurements (as do E13's). Its timing
// cells (and the notes derived from them) are marked volatile: they are
// excluded from the determinism contract, since concurrent workers
// legitimately perturb wall-clock readings. Everything else in the
// tables (expectations, checkpoint counts, value-equality flags) still
// reproduces bit-for-bit.
//
// E7 checks the complexity stated by Proposition 3, so it times the
// dense Algorithm 1 scan (SolveChainDPDense), which evaluates all
// n(n+1)/2 transitions; the production solver's kernel fast path is
// near-linear on these instances and is measured separately in E13.
func planE7(cfg Config) (*Plan, error) {
	sizes := []int{128, 256, 512, 1024, 2048}
	reps := 5
	if cfg.Quick {
		sizes = []int{128, 256, 512}
		reps = 2
	}
	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID:      "E7",
		Title:   "DP wall-clock scaling (median of repetitions)",
		Columns: []string{"n", "time", "t(n)/t(n/2)", "E_opt", "checkpoints"},
	})
	type timing struct {
		best time.Duration
	}
	for _, n := range sizes {
		n := n
		p.Job(t, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.01, 0.5)
			if err != nil {
				return RowOut{}, err
			}
			g, err := dag.Chain(n, dag.DefaultWeights(), s.Split())
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return RowOut{}, err
			}
			var best time.Duration
			var res core.ChainResult
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				res, err = core.SolveChainDPDense(cp)
				el := time.Since(start)
				if err != nil {
					return RowOut{}, err
				}
				if rep == 0 || el < best {
					best = el
				}
			}
			return RowOut{
				Cells: []result.Cell{
					result.Int(n), result.Dur(best), result.Str("-").AsVolatile(),
					result.Float(res.Expected), result.Int(len(res.Positions())),
				},
				Value: timing{best: best},
			}, nil
		})
	}

	// Ablation: the generality of per-task costs is what blocks faster
	// algorithms. With constant C = R the segment-cost matrix is Monge
	// and the decision-monotone pruned solver matches the O(n²) DP while
	// scanning far fewer cells.
	abl := p.AddTable(&result.Table{
		ID:      "E7",
		Title:   "ablation: general O(n²) DP vs Monge-pruned solver on homogeneous costs",
		Columns: []string{"n", "t_general", "t_pruned", "speedup", "values_equal"},
	})
	for _, n := range sizes {
		n := n
		p.Job(abl, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.01, 0.5)
			if err != nil {
				return RowOut{}, err
			}
			g, err := dag.Chain(n, dag.WeightSpec{
				MinWeight: 1, MaxWeight: 10,
				MinCheckpoint: 0.3, MaxCheckpoint: 0.3, RecoveryFactor: 1,
			}, s.Split())
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0.3)
			if err != nil {
				return RowOut{}, err
			}
			startG := time.Now()
			general, err := core.SolveChainDPDense(cp)
			if err != nil {
				return RowOut{}, err
			}
			tGeneral := time.Since(startG)
			startP := time.Now()
			pruned, err := core.SolveChainDPHomogeneous(cp)
			if err != nil {
				return RowOut{}, err
			}
			tPruned := time.Since(startP)
			equal := general.Expected == pruned.Expected ||
				(general.Expected-pruned.Expected)/general.Expected < 1e-9
			speed := float64(tGeneral) / float64(tPruned)
			return RowOut{
				Cells: []result.Cell{
					result.Int(n), result.Dur(tGeneral), result.Dur(tPruned),
					result.FixedUnit(speed, 1, "x").AsVolatile(), result.Bool(equal),
				},
				Value: equal,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		var prev time.Duration
		quadraticish := true
		row := 0
		allEqual := true
		for j, job := range p.Jobs {
			switch job.Table {
			case t:
				best := outs[j].Value.(timing).best
				if row > 0 && prev > 0 {
					rv := float64(best) / float64(prev)
					tables[t].Rows[row].Cells[2] = result.FixedUnit(rv, 2, "").AsVolatile()
					// O(n²) doubling ratio is 4; allow a generous band since
					// small sizes are cache/startup dominated.
					if rv > 8 {
						quadraticish = false
					}
				}
				prev = best
				row++
			case abl:
				allEqual = allEqual && outs[j].Value.(bool)
			}
		}
		tables[t].AddVolatileNote("doubling ratios stay near 4 (quadratic), never explode → %s", yn(quadraticish))
		tables[t].AddNote("the memoized recursion of Algorithm 1 gives identical values (tested in internal/core)")
		tables[abl].AddNote("pruned solver returns the identical optimum on every size → %s", yn(allEqual))
		tables[abl].AddNote("per-task C_i/R_i break the Monge property, so the paper's general algorithm cannot be pruned this way")
		return nil
	}
	return p, nil
}
