package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E6",
		Title: "Proposition 3: the chain DP is optimal",
		Claim: "Algorithm 1 returns the minimum expected makespan over all 2^{n−1} placements; its value matches simulation",
	}, planE6)
}

func planE6(cfg Config) (*Plan, error) {
	p := &Plan{}
	opt := p.AddTable(&result.Table{
		ID:      "E6",
		Title:   "DP vs exhaustive enumeration on random heterogeneous chains",
		Columns: []string{"n", "lambda", "E_dp", "E_bruteforce", "rel_gap", "ckpts_dp", "match"},
	})
	for _, n := range []int{6, 10, 14, 16} {
		for _, lambda := range []float64{1e-3, 0.02, 0.2} {
			n, lambda := n, lambda
			p.Job(opt, func(s *rng.Stream) (RowOut, error) {
				g, err := dag.Chain(n, dag.DefaultWeights(), s.Split())
				if err != nil {
					return RowOut{}, err
				}
				m, err := expectation.NewModel(lambda, 0.5)
				if err != nil {
					return RowOut{}, err
				}
				cp, _, err := core.NewChainProblem(g, m, 0)
				if err != nil {
					return RowOut{}, err
				}
				dp, err := core.SolveChainDP(cp)
				if err != nil {
					return RowOut{}, err
				}
				bf, err := core.BruteForceChain(cp)
				if err != nil {
					return RowOut{}, err
				}
				gap := numeric.RelErr(dp.Expected, bf.Expected)
				match := gap < 1e-9
				return RowOut{
					Cells: []result.Cell{
						result.Int(n), result.Float(lambda), result.Float(dp.Expected), result.Float(bf.Expected),
						result.Sci(gap), result.Int(len(dp.Positions())), result.Bool(match),
					},
					Value: match,
				}, nil
			})
		}
	}

	// Cross-validate the DP's expectation by simulating its plan.
	runs := cfg.Runs(60_000, 3_000)
	mc := p.AddTable(&result.Table{
		ID:      "E6",
		Title:   fmt.Sprintf("DP expectation vs simulated makespan of its plan (%d runs)", runs),
		Columns: []string{"n", "lambda", "E_dp", "E_sim", "CI(99.9%)", "inCI"},
	})
	for _, n := range []int{8, 16} {
		for _, lambda := range []float64{0.02, 0.1} {
			n, lambda := n, lambda
			p.Job(mc, func(s *rng.Stream) (RowOut, error) {
				g, err := dag.Chain(n, dag.DefaultWeights(), s.Split())
				if err != nil {
					return RowOut{}, err
				}
				m, err := expectation.NewModel(lambda, 0.5)
				if err != nil {
					return RowOut{}, err
				}
				cp, _, err := core.NewChainProblem(g, m, 0)
				if err != nil {
					return RowOut{}, err
				}
				dp, err := core.SolveChainDP(cp)
				if err != nil {
					return RowOut{}, err
				}
				// Workers: 1 — this job already runs on the engine's
				// saturated pool, and a pinned worker count keeps the table
				// independent of the host's GOMAXPROCS.
				res, err := sim.MonteCarloPlan(cp, dp.CheckpointAfter, sim.ExponentialFactory(lambda), sim.Options{Workers: 1}, runs, s.Split())
				if err != nil {
					return RowOut{}, err
				}
				in := res.Makespan.Contains(dp.Expected, 0.999)
				return RowOut{
					Cells: []result.Cell{
						result.Int(n), result.Float(lambda), result.Float(dp.Expected),
						result.Float(res.Makespan.Mean()), result.Sci(res.Makespan.CI(0.999)), result.Bool(in),
					},
					Value: in,
				}, nil
			})
		}
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allMatch, allIn := true, true
		for j, job := range p.Jobs {
			switch job.Table {
			case opt:
				allMatch = allMatch && outs[j].Value.(bool)
			case mc:
				allIn = allIn && outs[j].Value.(bool)
			}
		}
		tables[opt].AddNote("pass: DP equals exhaustive optimum on every instance → %s", yn(allMatch))
		tables[mc].AddNote("pass: analytical optimum inside simulated CI everywhere → %s", yn(allIn))
		return nil
	}
	return p, nil
}
