package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E6",
		Title: "Proposition 3: the chain DP is optimal",
		Claim: "Algorithm 1 returns the minimum expected makespan over all 2^{n−1} placements; its value matches simulation",
		Run:   runE6,
	})
}

func runE6(cfg Config) ([]*Table, error) {
	seed := rng.New(cfg.Seed + 6)
	opt := &Table{
		ID:      "E6",
		Title:   "DP vs exhaustive enumeration on random heterogeneous chains",
		Columns: []string{"n", "lambda", "E_dp", "E_bruteforce", "rel_gap", "ckpts_dp", "match"},
	}
	allMatch := true
	for _, n := range []int{6, 10, 14, 16} {
		for _, lambda := range []float64{1e-3, 0.02, 0.2} {
			g, err := dag.Chain(n, dag.DefaultWeights(), seed.Split())
			if err != nil {
				return nil, err
			}
			m, err := expectation.NewModel(lambda, 0.5)
			if err != nil {
				return nil, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return nil, err
			}
			dp, err := core.SolveChainDP(cp)
			if err != nil {
				return nil, err
			}
			bf, err := core.BruteForceChain(cp)
			if err != nil {
				return nil, err
			}
			gap := numeric.RelErr(dp.Expected, bf.Expected)
			match := gap < 1e-9
			allMatch = allMatch && match
			opt.AddRow(fmt.Sprintf("%d", n), fm(lambda), fm(dp.Expected), fm(bf.Expected),
				fe(gap), fmt.Sprintf("%d", len(dp.Positions())), fb(match))
		}
	}
	opt.Notes = append(opt.Notes,
		fmt.Sprintf("pass: DP equals exhaustive optimum on every instance → %s", fb(allMatch)))

	// Cross-validate the DP's expectation by simulating its plan.
	runs := cfg.Runs(60_000, 3_000)
	mc := &Table{
		ID:      "E6",
		Title:   fmt.Sprintf("DP expectation vs simulated makespan of its plan (%d runs)", runs),
		Columns: []string{"n", "lambda", "E_dp", "E_sim", "CI(99.9%)", "inCI"},
	}
	allIn := true
	for _, n := range []int{8, 16} {
		for _, lambda := range []float64{0.02, 0.1} {
			g, err := dag.Chain(n, dag.DefaultWeights(), seed.Split())
			if err != nil {
				return nil, err
			}
			m, err := expectation.NewModel(lambda, 0.5)
			if err != nil {
				return nil, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return nil, err
			}
			dp, err := core.SolveChainDP(cp)
			if err != nil {
				return nil, err
			}
			res, err := sim.MonteCarloPlan(cp, dp.CheckpointAfter, sim.ExponentialFactory(lambda), runs, seed.Split())
			if err != nil {
				return nil, err
			}
			in := res.Makespan.Contains(dp.Expected, 0.999)
			allIn = allIn && in
			mc.AddRow(fmt.Sprintf("%d", n), fm(lambda), fm(dp.Expected),
				fm(res.Makespan.Mean()), fe(res.Makespan.CI(0.999)), fb(in))
		}
	}
	mc.Notes = append(mc.Notes,
		fmt.Sprintf("pass: analytical optimum inside simulated CI everywhere → %s", fb(allIn)))

	return []*Table{opt, mc}, nil
}
