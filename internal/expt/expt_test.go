package expt

import (
	"bytes"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	all := All()
	if len(all) != 12 {
		t.Fatalf("registry has %d experiments, want 12", len(all))
	}
	for i, e := range all {
		want := i + 1
		var got int
		if _, err := fmtSscanfID(e.ID, &got); err != nil || got != want {
			t.Errorf("experiment %d has ID %s", i, e.ID)
		}
		if e.Title == "" || e.Claim == "" || e.Run == nil {
			t.Errorf("%s is incomplete", e.ID)
		}
	}
}

func fmtSscanfID(id string, out *int) (int, error) {
	var n int
	k, err := sscanf(id, &n)
	*out = n
	return k, err
}

func sscanf(id string, n *int) (int, error) {
	if !strings.HasPrefix(id, "E") {
		return 0, errBadID
	}
	v := 0
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			return 0, errBadID
		}
		v = v*10 + int(r-'0')
	}
	*n = v
	return 1, nil
}

var errBadID = &badIDError{}

type badIDError struct{}

func (*badIDError) Error() string { return "bad experiment ID" }

func TestByID(t *testing.T) {
	if _, ok := ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestTableRender(t *testing.T) {
	tb := &Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "bbbb"},
		Notes:   []string{"a note"},
	}
	tb.AddRow("1", "2")
	tb.AddRow("333", "4")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "a    bbbb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestTableCSV(t *testing.T) {
	tb := &Table{ID: "T", Title: "demo", Columns: []string{"x", "y"}}
	tb.AddRow("1", "has,comma")
	tb.AddRow(`q"uote`, "2")
	var buf bytes.Buffer
	if err := tb.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"q""uote"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
}

func TestConfigRuns(t *testing.T) {
	full := Config{}
	quick := Config{Quick: true}
	if full.Runs(100, 10) != 100 || quick.Runs(100, 10) != 10 {
		t.Error("Runs selection wrong")
	}
}

// TestEveryExperimentRunsQuick executes the entire suite in quick mode:
// every experiment must complete without error and produce at least one
// table with consistent shape, and no pass/fail note may report "NO".
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run skipped with -short")
	}
	cfg := Config{Seed: 7, Quick: true}
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			t.Parallel()
			tables, err := e.Run(cfg)
			if err != nil {
				t.Fatalf("%s failed: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Errorf("%s table %q is empty", e.ID, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row) != len(tb.Columns) {
						t.Errorf("%s table %q: row width %d ≠ %d columns", e.ID, tb.Title, len(row), len(tb.Columns))
					}
				}
				for _, n := range tb.Notes {
					if strings.Contains(n, "→ NO") {
						t.Errorf("%s table %q reports failed criterion: %s", e.ID, tb.Title, n)
					}
				}
			}
		})
	}
}

func TestRunAllRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	var buf bytes.Buffer
	// Run only E4 (pure analytical, fast) through the full renderer by
	// using a registry subset via ByID.
	e, ok := ByID("E4")
	if !ok {
		t.Fatal("E4 missing")
	}
	tables, err := e.Run(Config{Seed: 1, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if err := tb.Render(&buf); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() == 0 {
		t.Error("no render output")
	}
}
