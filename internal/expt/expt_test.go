package expt_test

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/expt"
	"repro/internal/expt/render"
	"repro/internal/expt/result"
	"repro/internal/rng"
)

func parseID(id string) (int, bool) {
	if !strings.HasPrefix(id, "E") {
		return 0, false
	}
	v := 0
	for _, r := range id[1:] {
		if r < '0' || r > '9' {
			return 0, false
		}
		v = v*10 + int(r-'0')
	}
	return v, true
}

// registryNums is the expected experiment numbering: E1–E16 plus the
// runtime experiments E18–E21. The numbering deliberately skips E17:
// the slot was left unassigned when the executor work (E18) landed as
// one block, and it stays reserved for the DAG-structure sweep on the
// roadmap rather than being backfilled — renumbering published
// experiments would invalidate the recorded EXPERIMENTS.md tables,
// which cite IDs.
var registryNums = []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 18, 19, 20, 21}

func TestRegistryComplete(t *testing.T) {
	all := expt.All()
	if len(all) != len(registryNums) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(registryNums))
	}
	for i, s := range all {
		info := s.Info()
		got, ok := parseID(info.ID)
		if !ok || got != registryNums[i] {
			t.Errorf("experiment %d has ID %s, want E%d", i, info.ID, registryNums[i])
		}
		if info.Title == "" || info.Claim == "" {
			t.Errorf("%s is incomplete", info.ID)
		}
	}
	// E17 is intentionally unregistered (see registryNums): the slot is
	// reserved, not forgotten. If someone assigns it, this test forces
	// them to update the documented numbering above.
	if _, ok := expt.ByID("E17"); ok {
		t.Error("E17 is registered but the documented numbering reserves it; update registryNums and its comment")
	}
}

func TestByID(t *testing.T) {
	if _, ok := expt.ByID("E1"); !ok {
		t.Error("E1 missing")
	}
	if _, ok := expt.ByID("E99"); ok {
		t.Error("E99 should not exist")
	}
}

func TestIDs(t *testing.T) {
	ids := expt.IDs()
	if len(ids) != len(registryNums) || ids[0] != "E1" || ids[15] != "E16" || ids[16] != "E18" || ids[18] != "E20" || ids[19] != "E21" {
		t.Errorf("IDs() = %v", ids)
	}
}

func TestConfigRuns(t *testing.T) {
	full := expt.Config{}
	quick := expt.Config{Quick: true}
	if full.Runs(100, 10) != 100 || quick.Runs(100, 10) != 10 {
		t.Error("Runs selection wrong")
	}
}

// TestJobStreamKeying pins the stream-derivation contract: job streams
// depend only on (seed, ID, index), differ across each of those axes,
// and are disjoint from the setup stream.
func TestJobStreamKeying(t *testing.T) {
	cfg := expt.Config{Seed: 7}
	a := expt.JobStream(cfg, "E1", 0)
	b := expt.JobStream(cfg, "E1", 0)
	if a.Uint64() != b.Uint64() {
		t.Error("same (seed, id, job) produced different streams")
	}
	distinct := map[uint64]string{}
	add := func(name string, s *rng.Stream) {
		v := s.Uint64()
		if prev, dup := distinct[v]; dup {
			t.Errorf("streams %s and %s collide on first draw", prev, name)
		}
		distinct[v] = name
	}
	add("E1/0", expt.JobStream(cfg, "E1", 0))
	add("E1/1", expt.JobStream(cfg, "E1", 1))
	add("E2/0", expt.JobStream(cfg, "E2", 0))
	add("E1/0 seed 8", expt.JobStream(expt.Config{Seed: 8}, "E1", 0))
	add("E1 setup", expt.SetupStream(cfg, "E1"))
}

// TestAssembleValidation covers the one-job-one-row invariants.
func TestAssembleValidation(t *testing.T) {
	mkPlan := func() *expt.Plan {
		p := &expt.Plan{}
		tab := p.AddTable(&result.Table{ID: "T", Title: "t", Columns: []string{"a", "b"}})
		p.Job(tab, func(s *rng.Stream) (expt.RowOut, error) {
			return expt.RowOut{Cells: []result.Cell{result.Int(1), result.Int(2)}}, nil
		})
		return p
	}

	p := mkPlan()
	if _, err := p.Assemble(nil); err == nil {
		t.Error("output-count mismatch not rejected")
	}
	p = mkPlan()
	if _, err := p.Assemble([]expt.RowOut{{Cells: []result.Cell{result.Int(1)}}}); err == nil {
		t.Error("row-width mismatch not rejected")
	}
	p = mkPlan()
	tables, err := p.Assemble([]expt.RowOut{{Cells: []result.Cell{result.Int(1), result.Int(2)}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 1 || len(tables[0].Rows) != 1 {
		t.Fatalf("unexpected assembly: %+v", tables)
	}
}

// TestEveryExperimentRunsQuick executes the entire suite in quick mode
// through the serial reference executor: every experiment must complete
// without error and produce at least one table with consistent shape,
// and no pass/fail note may report "NO".
func TestEveryExperimentRunsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite run skipped with -short")
	}
	cfg := expt.Config{Seed: 7, Quick: true}
	for _, s := range expt.All() {
		s := s
		t.Run(s.Info().ID, func(t *testing.T) {
			t.Parallel()
			id := s.Info().ID
			tables, err := expt.Execute(cfg, s)
			if err != nil {
				t.Fatalf("%s failed: %v", id, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", id)
			}
			for _, tb := range tables {
				if len(tb.Columns) == 0 || len(tb.Rows) == 0 {
					t.Errorf("%s table %q is empty", id, tb.Title)
				}
				for _, row := range tb.Rows {
					if len(row.Cells) != len(tb.Columns) {
						t.Errorf("%s table %q: row width %d ≠ %d columns", id, tb.Title, len(row.Cells), len(tb.Columns))
					}
				}
				for _, n := range tb.Notes {
					if strings.Contains(n.Text, "→ NO") {
						t.Errorf("%s table %q reports failed criterion: %s", id, tb.Title, n.Text)
					}
				}
			}
		})
	}
}

func TestExecuteRenders(t *testing.T) {
	if testing.Short() {
		t.Skip("skipped with -short")
	}
	var buf bytes.Buffer
	// Run only E4 (pure analytical, fast) through the full renderer.
	e, ok := expt.ByID("E4")
	if !ok {
		t.Fatal("E4 missing")
	}
	tables, err := expt.Execute(expt.Config{Seed: 1, Quick: true}, e)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		if err := render.Text(&buf, tb); err != nil {
			t.Fatal(err)
		}
	}
	if buf.Len() == 0 {
		t.Error("no render output")
	}
}
