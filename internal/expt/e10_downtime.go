package expt

import (
	"fmt"

	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E10",
		Title: "Cascading downtimes: D(p) vs the lower bound D",
		Claim: "D(p) ≥ D(1) = D always; the lower bound is 'very accurate in most practical cases' (remark after Eq. 6)",
		Run:   runE10,
	})
}

func runE10(cfg Config) ([]*Table, error) {
	runs := cfg.Runs(40_000, 2_000)
	seed := rng.New(cfg.Seed + 10)
	const d = 1.0
	t := &Table{
		ID:      "E10",
		Title:   fmt.Sprintf("simulated platform downtime per failure (D=%g, %d cascades/cell)", d, runs),
		Columns: []string{"p", "lambda_proc", "p·λproc·D", "E[D(p)]", "E[D(p)]/D", "bound_tight(<1%)"},
	}
	allLower := true
	practicalTight := true
	skipped := 0
	for _, p := range []int{1, 16, 256, 4096, 65536} {
		for _, lp := range []float64{1e-7, 1e-5, 1e-3} {
			if float64(p)*lp*d >= 0.9 {
				// Supercritical: new failures arrive faster than repairs
				// drain, the cascade (essentially) never ends and E[D(p)]
				// diverges. Recorded as skipped rather than simulated.
				skipped++
				t.AddRow(fmt.Sprintf("%d", p), fe(lp), fe(float64(p)*lp*d),
					"diverges", "inf", "n/a (supercritical)")
				continue
			}
			est, err := sim.CascadeDowntime(p, lp, d, runs, seed.Split())
			if err != nil {
				return nil, err
			}
			ratio := est.Mean() / d
			if ratio < 1-1e-9 {
				allLower = false
			}
			load := float64(p) * lp * d
			tight := ratio < 1.01
			if load <= 1e-2 && !tight {
				practicalTight = false
			}
			t.AddRow(fmt.Sprintf("%d", p), fe(lp), fe(load),
				fm(est.Mean()), fmt.Sprintf("%.4f", ratio), fb(tight))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("D(p) ≥ D on every simulated cell → %s", fb(allLower)),
		fmt.Sprintf("in practical regimes (p·λproc·D ≤ 1e-2) the lower bound is within 1%% → %s", fb(practicalTight)),
		fmt.Sprintf("%d supercritical cells (load ≥ 0.9) marked as diverging instead of simulated: there E[D(p)] has no finite value, the extreme case of the paper's cascading-downtime caveat", skipped),
	)
	return []*Table{t}, nil
}
