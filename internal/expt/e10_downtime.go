package expt

import (
	"fmt"

	"repro/internal/expt/result"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E10",
		Title: "Cascading downtimes: D(p) vs the lower bound D",
		Claim: "D(p) ≥ D(1) = D always; the lower bound is 'very accurate in most practical cases' (remark after Eq. 6)",
	}, planE10)
}

func planE10(cfg Config) (*Plan, error) {
	runs := cfg.Runs(40_000, 2_000)
	const d = 1.0
	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID:      "E10",
		Title:   fmt.Sprintf("simulated platform downtime per failure (D=%g, %d cascades/cell)", d, runs),
		Columns: []string{"p", "lambda_proc", "p·λproc·D", "E[D(p)]", "E[D(p)]/D", "bound_tight(<1%)"},
	})
	type verdict struct {
		skipped   bool
		lower     bool
		practical bool // practically-loaded cell failed the 1% bound
	}
	for _, pp := range []int{1, 16, 256, 4096, 65536} {
		for _, lp := range []float64{1e-7, 1e-5, 1e-3} {
			pp, lp := pp, lp
			load := float64(pp) * lp * d
			if load >= 0.9 {
				// Supercritical: new failures arrive faster than repairs
				// drain, the cascade (essentially) never ends and E[D(p)]
				// diverges. Recorded as skipped rather than simulated.
				p.Job(t, func(s *rng.Stream) (RowOut, error) {
					return RowOut{
						Cells: []result.Cell{
							result.Int(pp), result.Sci(lp), result.Sci(load),
							result.Str("diverges"), result.Str("inf"), result.Str("n/a (supercritical)"),
						},
						Meta:  map[string]string{"regime": "supercritical"},
						Value: verdict{skipped: true, lower: true},
					}, nil
				})
				continue
			}
			p.Job(t, func(s *rng.Stream) (RowOut, error) {
				est, err := sim.CascadeDowntime(pp, lp, d, runs, s)
				if err != nil {
					return RowOut{}, err
				}
				ratio := est.Mean() / d
				tight := ratio < 1.01
				regime := "subcritical"
				if load <= 1e-2 {
					regime = "practical"
				}
				return RowOut{
					Cells: []result.Cell{
						result.Int(pp), result.Sci(lp), result.Sci(load),
						result.Float(est.Mean()), result.Fixed(ratio, 4), result.Bool(tight),
					},
					Meta: map[string]string{"regime": regime},
					Value: verdict{
						lower:     ratio >= 1-1e-9,
						practical: load <= 1e-2 && !tight,
					},
				}, nil
			})
		}
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allLower := true
		practicalTight := true
		skipped := 0
		for _, o := range outs {
			v := o.Value.(verdict)
			if v.skipped {
				skipped++
				continue
			}
			allLower = allLower && v.lower
			if v.practical {
				practicalTight = false
			}
		}
		tables[t].AddNote("D(p) ≥ D on every simulated cell → %s", yn(allLower))
		tables[t].AddNote("in practical regimes (p·λproc·D ≤ 1e-2) the lower bound is within 1%% → %s", yn(practicalTight))
		tables[t].AddNote("%d supercritical cells (load ≥ 0.9) marked as diverging instead of simulated: there E[D(p)] has no finite value, the extreme case of the paper's cascading-downtime caveat", skipped)
		return nil
	}
	return p, nil
}
