package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/partition"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E5",
		Title: "The 3-PARTITION reduction end-to-end",
		Claim: "yes-instances reach E* = K exactly; no-instances have E* > K (Prop. 2, both directions)",
		Run:   runE5,
	})
}

func runE5(cfg Config) ([]*Table, error) {
	seed := rng.New(cfg.Seed + 5)
	t := &Table{
		ID:    "E5",
		Title: "reduced scheduling instances solved exactly (subset DP)",
		Columns: []string{
			"kind", "n", "T", "K", "E*", "gap=(E*-K)/K", "decide", "3PART(exact)", "agree",
		},
	}
	type trial struct {
		kind   string
		groups int
		target int
	}
	trials := []trial{
		{"yes", 2, 120}, {"yes", 3, 120}, {"yes", 4, 240}, {"yes", 5, 300},
		{"no", 2, 120}, {"no", 3, 120}, {"no", 4, 240},
	}
	allAgree := true
	for _, tr := range trials {
		var in partition.Instance
		var err error
		if tr.kind == "yes" {
			in, err = partition.GenerateYes(tr.groups, tr.target, seed)
		} else {
			in, err = partition.GenerateNo(tr.groups, tr.target, seed)
		}
		if err != nil {
			return nil, err
		}
		ri, err := core.BuildReduction(in)
		if err != nil {
			return nil, err
		}
		decision, g, err := ri.DecideByScheduling()
		if err != nil {
			return nil, err
		}
		_, direct, err := partition.Solve(in)
		if err != nil {
			return nil, err
		}
		agree := decision == direct && direct == (tr.kind == "yes")
		allAgree = allAgree && agree
		t.AddRow(tr.kind, fmt.Sprintf("%d", in.Groups()), fmt.Sprintf("%d", in.Target),
			fm(ri.Bound), fm(g.Expected), fe(ri.GapToBound(g)),
			fb(decision), fb(direct), fb(agree))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("pass: scheduling decision ≡ 3-PARTITION decision on every instance → %s", fb(allAgree)),
		"yes-instance gaps are 0 to machine precision; no-instance gaps are strictly positive",
	)

	// Forward-direction table: witness schedules achieve exactly K.
	fwd := &Table{
		ID:      "E5",
		Title:   "forward direction: schedule built from a 3-PARTITION witness",
		Columns: []string{"n", "T", "K", "E(witness)", "|E-K|/K"},
	}
	for _, tr := range []trial{{"yes", 3, 120}, {"yes", 5, 300}, {"yes", 7, 420}} {
		in, err := partition.GenerateYes(tr.groups, tr.target, seed)
		if err != nil {
			return nil, err
		}
		sol, ok, err := partition.Solve(in)
		if err != nil || !ok {
			return nil, fmt.Errorf("planted instance unsolvable: %v", err)
		}
		ri, err := core.BuildReduction(in)
		if err != nil {
			return nil, err
		}
		g, err := ri.GroupingFromPartition(sol)
		if err != nil {
			return nil, err
		}
		fwd.AddRow(fmt.Sprintf("%d", in.Groups()), fmt.Sprintf("%d", in.Target),
			fm(ri.Bound), fm(g.Expected), fe(ri.GapToBound(g)))
	}
	fwd.Notes = append(fwd.Notes, "witness schedules meet the bound K exactly (machine precision)")

	return []*Table{t, fwd}, nil
}
