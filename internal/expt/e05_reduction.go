package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/expt/result"
	"repro/internal/partition"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E5",
		Title: "The 3-PARTITION reduction end-to-end",
		Claim: "yes-instances reach E* = K exactly; no-instances have E* > K (Prop. 2, both directions)",
	}, planE5)
}

type e5Trial struct {
	kind   string
	groups int
	target int
}

func planE5(cfg Config) (*Plan, error) {
	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID:    "E5",
		Title: "reduced scheduling instances solved exactly (subset DP)",
		Columns: []string{
			"kind", "n", "T", "K", "E*", "gap=(E*-K)/K", "decide", "3PART(exact)", "agree",
		},
	})
	trials := []e5Trial{
		{"yes", 2, 120}, {"yes", 3, 120}, {"yes", 4, 240}, {"yes", 5, 300},
		{"no", 2, 120}, {"no", 3, 120}, {"no", 4, 240},
	}
	for _, tr := range trials {
		tr := tr
		p.Job(t, func(s *rng.Stream) (RowOut, error) {
			var in partition.Instance
			var err error
			if tr.kind == "yes" {
				in, err = partition.GenerateYes(tr.groups, tr.target, s)
			} else {
				in, err = partition.GenerateNo(tr.groups, tr.target, s)
			}
			if err != nil {
				return RowOut{}, err
			}
			ri, err := core.BuildReduction(in)
			if err != nil {
				return RowOut{}, err
			}
			decision, g, err := ri.DecideByScheduling()
			if err != nil {
				return RowOut{}, err
			}
			_, direct, err := partition.Solve(in)
			if err != nil {
				return RowOut{}, err
			}
			agree := decision == direct && direct == (tr.kind == "yes")
			return RowOut{
				Cells: []result.Cell{
					result.Str(tr.kind), result.Int(in.Groups()), result.Int(in.Target),
					result.Float(ri.Bound), result.Float(g.Expected), result.Sci(ri.GapToBound(g)),
					result.Bool(decision), result.Bool(direct), result.Bool(agree),
				},
				Value: agree,
			}, nil
		})
	}

	// Forward-direction table: witness schedules achieve exactly K.
	fwd := p.AddTable(&result.Table{
		ID:      "E5",
		Title:   "forward direction: schedule built from a 3-PARTITION witness",
		Columns: []string{"n", "T", "K", "E(witness)", "|E-K|/K"},
	})
	for _, tr := range []e5Trial{{"yes", 3, 120}, {"yes", 5, 300}, {"yes", 7, 420}} {
		tr := tr
		p.Job(fwd, func(s *rng.Stream) (RowOut, error) {
			in, err := partition.GenerateYes(tr.groups, tr.target, s)
			if err != nil {
				return RowOut{}, err
			}
			sol, ok, err := partition.Solve(in)
			if err != nil {
				return RowOut{}, fmt.Errorf("solving planted instance: %w", err)
			}
			if !ok {
				return RowOut{}, fmt.Errorf("planted yes-instance (m=%d, T=%d) decided unsolvable", tr.groups, tr.target)
			}
			ri, err := core.BuildReduction(in)
			if err != nil {
				return RowOut{}, err
			}
			g, err := ri.GroupingFromPartition(sol)
			if err != nil {
				return RowOut{}, err
			}
			return RowOut{Cells: []result.Cell{
				result.Int(in.Groups()), result.Int(in.Target),
				result.Float(ri.Bound), result.Float(g.Expected), result.Sci(ri.GapToBound(g)),
			}}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allAgree := true
		for j, job := range p.Jobs {
			if job.Table == t {
				allAgree = allAgree && outs[j].Value.(bool)
			}
		}
		tables[t].AddNote("pass: scheduling decision ≡ 3-PARTITION decision on every instance → %s", yn(allAgree))
		tables[t].AddNote("yes-instance gaps are 0 to machine precision; no-instance gaps are strictly positive")
		tables[fwd].AddNote("witness schedules meet the bound K exactly (machine precision)")
		return nil
	}
	return p, nil
}
