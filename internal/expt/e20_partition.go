package expt

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/failure"
	"repro/internal/netsim"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/store"
)

func init() {
	register(Info{
		ID:    "E20",
		Title: "Networked stores: partition replay identity, quorum vs single-remote under partition schedules, telemetry-fed planning",
		Claim: "over a simulated network with keyed latency, loss and scheduled partition windows, (1) an execution killed at any event point during an active partition resumes to a journal bit-identical to the uninterrupted run's, for a single remote store and for a 3-replica write-quorum; (2) the quorum store realizes a strictly lower expected makespan than the single remote under the same partition schedule (paired 99% CI of the delta excluding zero); (3) a plan-time store probe recovers the network's mean per-op latency within EWMA tolerance and the telemetry-fed re-solve is no worse than the naive plan under effective checkpoint costs",
	}, planE20)
}

// e20Problem is a chain dense in checkpoints: partition drills need
// commits frequent enough that a window contains several of them (the
// ladder goes down on the minority side) and the quorum's majority side
// has many commits to keep winning.
func e20Problem() (*core.ChainProblem, error) {
	const (
		n      = 14
		lambda = 0.08
		down   = 1.0
	)
	m, err := expectation.NewModel(lambda, down)
	if err != nil {
		return nil, err
	}
	cp := &core.ChainProblem{
		Weights:         make([]float64, n),
		Ckpt:            make([]float64, n),
		Rec:             make([]float64, n),
		InitialRecovery: 0.2,
		Model:           m,
	}
	for i := 0; i < n; i++ {
		cp.Weights[i] = 1.5
		cp.Ckpt[i] = 0.3
		cp.Rec[i] = 0.25
	}
	return cp, nil
}

const (
	e20Lambda   = 0.08
	e20Downtime = 1.0
)

// e20Workload is the checkpoint-everywhere workload over e20Problem —
// the densest commit schedule, so partition windows always cover
// several commits.
func e20Workload(cp *core.ChainProblem) (*exec.Workload, error) {
	ck := make([]bool, cp.Len())
	for i := range ck {
		ck[i] = true
	}
	return exec.NewChainWorkload(cp, ck)
}

// e20Stack is one drill's persistent storage: replica mem stores
// survive invocations while the network and every wrapper are rebuilt
// per invocation — process-restart semantics, resetting the network's
// logical attempt counters exactly as the replay contract requires.
type e20Stack struct {
	netCfg netsim.Config
	quorum bool
	mems   []*store.MemStore
}

func newE20Stack(netCfg netsim.Config, quorum bool) *e20Stack {
	n := 1
	if quorum {
		n = 3
	}
	mems := make([]*store.MemStore, n)
	for i := range mems {
		mems[i] = store.NewMemStore()
	}
	return &e20Stack{netCfg: netCfg, quorum: quorum, mems: mems}
}

func (p *e20Stack) build() (store.Store, error) {
	net := netsim.New(p.netCfg)
	const timeout = 1.5
	if !p.quorum {
		return store.Checked(store.NewRemoteStore(p.mems[0], net, p.netCfg,
			store.RemoteConfig{Remote: "s0", Timeout: timeout})), nil
	}
	reps := make([]store.Store, len(p.mems))
	for i := range p.mems {
		reps[i] = store.Checked(store.NewRemoteStore(p.mems[i], net, p.netCfg,
			store.RemoteConfig{Remote: fmt.Sprintf("s%d", i), Timeout: timeout}))
	}
	return store.NewQuorumStore(reps, store.QuorumConfig{W: 2, R: 2})
}

func (p *e20Stack) options(cp *core.ChainProblem, crashEvents int) (exec.Options, error) {
	st, err := p.build()
	if err != nil {
		return exec.Options{}, err
	}
	return exec.Options{
		RunID: "e20", Store: st, Downtime: e20Downtime,
		CrashAfterEvents: crashEvents,
		Adaptive: &exec.AdaptiveOptions{
			Retry:       exec.ExpBackoff{Base: 0.25, Cap: 0.5, MaxAttempts: 4},
			Replanner:   exec.ChainReplanner{CP: cp},
			ReplanRatio: 1.4,
			DownAfter:   2,
			ProbeEvery:  2,
		},
	}, nil
}

// e20NetCfg schedules one partition window isolating endpoint s0. For
// the single-store drill that is THE store — the executor is on the
// minority side and must ride the window out; for the quorum drill it
// is one replica of three — the majority side keeps committing.
func e20NetCfg(seed uint64, start, end float64) netsim.Config {
	return netsim.Config{
		Seed:    seed,
		Latency: 0.2,
		Jitter:  0.3,
		Loss:    0.05,
		Partitions: []netsim.Window{
			{Start: start, End: end, Isolated: []string{"s0"}},
		},
	}
}

func planE20(cfg Config) (*Plan, error) {
	cp, err := e20Problem()
	if err != nil {
		return nil, err
	}

	p := &Plan{}

	// Table 1: partition replay identity. For each store architecture,
	// run an uninterrupted reference under an active partition window,
	// then kill a fresh-stack run at event points across the whole
	// journal — inside the window included — resume once, and demand
	// journal and metrics match the reference bit-for-bit. Full budget
	// kills at EVERY event point; quick strides through them.
	drills := p.AddTable(&result.Table{
		ID:    "E20",
		Title: "partition replay identity: executions killed at event points during an active partition window, resumed from the store",
		Columns: []string{
			"scenario", "store", "kill_points", "journal_events", "give_ups", "down_moves", "journal_identical", "metrics_identical",
		},
	})
	type identOut struct{ ok bool }
	killStride := 1
	if cfg.Quick {
		killStride = 7
	}
	for _, quorum := range []bool{false, true} {
		quorum := quorum
		p.Job(drills, func(s *rng.Stream) (RowOut, error) {
			name, storeTag := "single-remote", "mem+crc+remote"
			if quorum {
				name, storeTag = "quorum-n3-w2", "mem+crc+remote×3+quorum"
			}
			srcSeed := s.Uint64()
			netSeed := s.Uint64()
			src := func() exec.Source {
				return exec.NewKeyedSource(failure.Exponential{Lambda: e20Lambda}, srcSeed, 1)
			}
			w, err := e20Workload(cp)
			if err != nil {
				return RowOut{}, err
			}
			base, err := exec.Execute(w, src(), exec.Options{Downtime: e20Downtime})
			if err != nil {
				return RowOut{}, err
			}
			netCfg := e20NetCfg(netSeed, 0.2*base.Makespan, 1.2*base.Makespan)

			run := func(stack *e20Stack, crash int) (*exec.Result, error) {
				w, err := e20Workload(cp)
				if err != nil {
					return nil, err
				}
				o, err := stack.options(cp, crash)
				if err != nil {
					return nil, err
				}
				return exec.Execute(w, src(), o)
			}
			ref, err := run(newE20Stack(netCfg, quorum), 0)
			if err != nil {
				return RowOut{}, err
			}
			if ref.Journal.Count(exec.EvComplete) != 1 {
				return RowOut{}, fmt.Errorf("E20: %s reference run did not complete", name)
			}
			downs := 0
			for _, e := range ref.Journal {
				if e.Kind == exec.EvDegrade && exec.DegradeLevel(e.Arg) == exec.LevelDown {
					downs++
				}
			}
			if !quorum && (ref.GiveUps == 0 || downs == 0) {
				return RowOut{}, fmt.Errorf("E20: partition never degraded the single store (giveups=%d, downs=%d)",
					ref.GiveUps, downs)
			}
			ne := len(ref.Journal)
			kills := 0
			identical, metricsOK := true, true
			for kill := 1; kill <= ne; kill += killStride {
				kills++
				stack := newE20Stack(netCfg, quorum)
				_, err := run(stack, kill)
				if !errors.Is(err, exec.ErrCrashed) {
					return RowOut{}, fmt.Errorf("E20: %s kill@%d: want ErrCrashed, got %v", name, kill, err)
				}
				res, err := run(stack, 0)
				if err != nil {
					return RowOut{}, fmt.Errorf("E20: %s resume after kill@%d: %w", name, kill, err)
				}
				identical = identical && res.Journal.Equal(ref.Journal)
				metricsOK = metricsOK && res.Metrics == ref.Metrics &&
					res.Replans == ref.Replans && res.GiveUps == ref.GiveUps &&
					res.Level == ref.Level && res.MaxRewind == ref.MaxRewind
			}
			return RowOut{
				Cells: []result.Cell{
					result.Str(name),
					result.Str(storeTag),
					result.Int(kills),
					result.Int(ne),
					result.Int(ref.GiveUps),
					result.Int(downs),
					result.Bool(identical),
					result.Bool(metricsOK),
				},
				Value: identOut{ok: identical && metricsOK},
			}, nil
		})
	}

	// Table 2: paired quorum-vs-single campaign under partition
	// schedules. Both arms replay the SAME failure environment and the
	// SAME network seed; the only difference is the store architecture
	// (one remote endpoint vs three replicas behind a write-quorum), and
	// the window isolates s0 in both — THE store for the single arm, a
	// minority replica for the quorum. The paired per-run makespan delta
	// therefore isolates the value of quorum replication.
	campRuns := cfg.Runs(300, 60)
	camp := p.AddTable(&result.Table{
		ID: "E20",
		Title: fmt.Sprintf("quorum (N=3, W=2) vs single remote under partition schedules: paired deltas over %d runs (chain n=%d, λ=%g, D=%g)",
			campRuns, cp.Len(), e20Lambda, e20Downtime),
		Columns: []string{
			"window_end", "runs", "single_mean", "quorum_mean", "delta_mean", "delta_ci99", "single_giveups_mean", "ci_excludes_0",
		},
	})
	type campOut struct {
		applicable bool // the acceptance claim covers the long windows
		improves   bool
	}
	for _, windowEnd := range []float64{0.5, 0.9, 1.2} {
		windowEnd := windowEnd
		p.Job(camp, func(s *rng.Stream) (RowOut, error) {
			var single, quorum, delta stats.Summary
			giveUps := 0
			for r := 0; r < campRuns; r++ {
				srcSeed := s.Uint64()
				netSeed := s.Uint64()
				src := func() exec.Source {
					return exec.NewKeyedSource(failure.Exponential{Lambda: e20Lambda}, srcSeed, 1)
				}
				w, err := e20Workload(cp)
				if err != nil {
					return RowOut{}, err
				}
				base, err := exec.Execute(w, src(), exec.Options{Downtime: e20Downtime})
				if err != nil {
					return RowOut{}, err
				}
				netCfg := e20NetCfg(netSeed, 0.2*base.Makespan, windowEnd*base.Makespan)
				arm := func(isQuorum bool) (*exec.Result, error) {
					w, err := e20Workload(cp)
					if err != nil {
						return nil, err
					}
					o, err := newE20Stack(netCfg, isQuorum).options(cp, 0)
					if err != nil {
						return nil, err
					}
					return exec.Execute(w, src(), o)
				}
				sg, err := arm(false)
				if err != nil {
					return RowOut{}, err
				}
				qr, err := arm(true)
				if err != nil {
					return RowOut{}, err
				}
				single.Add(sg.Makespan)
				quorum.Add(qr.Makespan)
				delta.Add(sg.Makespan - qr.Makespan)
				giveUps += sg.GiveUps
			}
			ci := delta.CI(0.99)
			excludes := delta.Mean()-ci > 0
			applicable := windowEnd >= 0.9
			return RowOut{
				Cells: []result.Cell{
					result.Float(windowEnd),
					result.Int(campRuns),
					result.Float(single.Mean()),
					result.Float(quorum.Mean()),
					result.Float(delta.Mean()),
					result.Float(ci),
					result.Float(float64(giveUps) / float64(campRuns)),
					result.Bool(excludes),
				},
				Value: campOut{applicable: applicable, improves: excludes},
			}, nil
		})
	}

	// Table 3: telemetry-fed planning. A plan-time probe of the remote
	// stack must recover the network's analytic mean per-op latency
	// (base + Exp-jitter mean) within the EWMA's sampling tolerance, and
	// the whole-plan re-solve under C_eff = C + estimate must be no
	// worse than the naive plan when both are costed at effective
	// checkpoint prices.
	tele := p.AddTable(&result.Table{
		ID:    "E20",
		Title: "telemetry-fed planning: probe estimate vs analytic network latency, and re-solved plans under effective checkpoint costs",
		Columns: []string{
			"latency", "jitter", "probe_estimate", "analytic_mean", "ewma_tol", "within_tol", "naive_ckpts", "telemetry_ckpts", "naive_eff_makespan", "telemetry_eff_makespan", "telemetry_no_worse",
		},
	})
	type teleOut struct{ ok bool }
	naive, err := core.SolveChainDP(cp)
	if err != nil {
		return nil, err
	}
	for _, lat := range []float64{0.5, 1.5, 3} {
		lat := lat
		p.Job(tele, func(s *rng.Stream) (RowOut, error) {
			jitter := lat / 2
			netCfg := netsim.Config{Seed: s.Uint64(), Latency: lat, Jitter: jitter}
			st := store.Checked(store.NewRemoteStore(store.NewMemStore(), netsim.New(netCfg), netCfg,
				store.RemoteConfig{Remote: "s0", Timeout: 8 * (lat + jitter)}))
			probe := exec.ProbeStore(st, "e20-telemetry", 32, 0, 0)
			if !probe.Tracked || probe.Failures != 0 {
				return RowOut{}, fmt.Errorf("E20: probe = %+v, want tracked with no failures", probe)
			}
			// The EWMA (weight α = 0.25) of i.i.d. samples with standard
			// deviation σ has asymptotic standard deviation σ·√(α/(2−α));
			// the jitter is Exp with mean = σ = jitter. Accept 4 of those.
			analytic := lat + jitter
			tol := 4 * jitter * math.Sqrt(0.25/1.75)
			within := math.Abs(probe.Estimate-analytic) <= tol

			segs, err := exec.ChainReplanner{CP: cp}.Replan(0, probe.Estimate)
			if err != nil {
				return RowOut{}, err
			}
			ck := make([]bool, cp.Len())
			for _, seg := range segs {
				ck[seg.End] = true
			}
			// Cost both placements at the effective checkpoint price the
			// store actually charges.
			eff := *cp
			eff.Ckpt = make([]float64, cp.Len())
			for i, c := range cp.Ckpt {
				eff.Ckpt[i] = c + probe.Estimate
			}
			naiveEff, err := eff.Makespan(naive.CheckpointAfter)
			if err != nil {
				return RowOut{}, err
			}
			teleEff, err := eff.Makespan(ck)
			if err != nil {
				return RowOut{}, err
			}
			noWorse := teleEff <= naiveEff+1e-9
			return RowOut{
				Cells: []result.Cell{
					result.Float(lat),
					result.Float(jitter),
					result.Float(probe.Estimate),
					result.Float(analytic),
					result.Float(tol),
					result.Bool(within),
					result.Int(len(naive.Positions())),
					result.Int(countTrue(ck)),
					result.Float(naiveEff),
					result.Float(teleEff),
					result.Bool(noWorse),
				},
				Value: teleOut{ok: within && noWorse},
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allIdent, allImprove, allTele := true, true, true
		for _, out := range outs {
			switch v := out.Value.(type) {
			case identOut:
				allIdent = allIdent && v.ok
			case campOut:
				if v.applicable {
					allImprove = allImprove && v.improves
				}
			case teleOut:
				allTele = allTele && v.ok
			}
		}
		tables[drills].AddNote("acceptance: every execution killed during an active partition window — single remote and 3-replica quorum — resumed to the uninterrupted journal and metrics bit-for-bit → %s", yn(allIdent))
		tables[camp].AddNote("acceptance: the write-quorum strictly beats the single remote store under partition windows covering ≥ 0.9 of the nominal makespan (paired 99%% CI of the delta excludes zero) → %s", yn(allImprove))
		tables[tele].AddNote("acceptance: the plan-time probe recovered the analytic mean latency within EWMA tolerance and the telemetry-fed re-solve was no worse than the naive plan under effective costs → %s", yn(allTele))
		return nil
	}
	return p, nil
}

// countTrue counts set flags in a checkpoint vector.
func countTrue(v []bool) int {
	n := 0
	for _, b := range v {
		if b {
			n++
		}
	}
	return n
}
