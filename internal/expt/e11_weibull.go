package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/failure"
	"repro/internal/heuristic"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E11",
		Title: "Extension: general failure laws (Weibull)",
		Claim: "with non-memoryless failures no closed form exists; maximize-expected-work placements (Bouguerra–Trystram–Wagner style) compete with / beat exponential-fit DP placements (Section 6, third extension)",
	}, planE11)
}

// weibullScaleForMean returns the scale η giving a Weibull(k, η) mean mu.
func weibullScaleForMean(shape, mu float64) float64 {
	return mu / math.Gamma(1+1/shape)
}

func planE11(cfg Config) (*Plan, error) {
	runs := cfg.Runs(30_000, 2_000)
	const (
		n     = 30
		w     = 3.0 // uniform task weight
		c     = 0.5 // constant checkpoint/recovery cost
		mtbf  = 25.0
		dtime = 0.5
	)
	weights := make([]float64, n)
	costs := make([]float64, n)
	for i := range weights {
		weights[i] = w
		costs[i] = c
	}

	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID:    "E11",
		Title: fmt.Sprintf("simulated makespans under Weibull failures (chain n=%d, MTBF=%g, %d runs)", n, mtbf, runs),
		Columns: []string{
			"shape k", "E_expDP", "E_weibullDP", "E_always", "E_never", "weibull/exp", "ckpts_exp", "ckpts_weib",
		},
	})
	type shapeOut struct {
		shape, ratio float64
		// deltaCI is the 99% half-width of the paired weibullDP − expDP
		// makespan delta; only set on the CRN path (cfg.CRN), where the
		// common environments make it far tighter than differencing
		// independent means.
		deltaCI float64
	}
	// One row job per shape: each runs four Monte-Carlo campaigns, so the
	// shapes are the natural parallel grain of this experiment.
	for _, shape := range []float64{0.5, 0.7, 0.9, 1.0, 1.5} {
		shape := shape
		p.Job(t, func(s *rng.Stream) (RowOut, error) {
			weib, err := failure.NewWeibull(shape, weibullScaleForMean(shape, mtbf))
			if err != nil {
				return RowOut{}, err
			}
			// (a) Exponential-fit placement: same mean, memoryless model.
			mFit, err := expectation.NewModel(1/mtbf, dtime)
			if err != nil {
				return RowOut{}, err
			}
			cp := &core.ChainProblem{
				Weights: weights, Ckpt: costs, Rec: costs, Model: mFit,
			}
			expDP, err := core.SolveChainDP(cp)
			if err != nil {
				return RowOut{}, err
			}
			// (b) Weibull-aware max-saved-work placement.
			surv, err := heuristic.FreshPlatformSurvival(weib, 1)
			if err != nil {
				return RowOut{}, err
			}
			weibDP, err := heuristic.MaxSavedWorkDP(weights, c, surv)
			if err != nil {
				return RowOut{}, err
			}
			// (c), (d) baselines.
			always := make([]bool, n)
			never := make([]bool, n)
			for i := range always {
				always[i] = true
			}
			never[n-1] = true

			// Workers: 1 — row jobs already run on the engine's saturated
			// pool; a pinned worker count also keeps tables independent of
			// the host's GOMAXPROCS.
			factory := sim.SuperposedFactory(weib, 1, failure.RejuvenateFailedOnly)
			opts := sim.Options{Downtime: dtime, Workers: 1}
			var eExp, eWeib, eAlways, eNever, deltaCI float64
			if cfg.CRN {
				// Common-random-number comparison: all four placements
				// replay the same recorded failure environments, so the
				// strategy deltas are paired (variance-reduced) and the
				// distribution is sampled once instead of four times.
				var plans [][]core.Segment
				for _, ck := range [][]bool{expDP.CheckpointAfter, weibDP.CheckpointAfter, always, never} {
					segs, err := cp.Segments(ck)
					if err != nil {
						return RowOut{}, err
					}
					plans = append(plans, segs)
				}
				res, err := sim.CampaignPlansSharded(plans, factory, sim.ShardOptions{
					Options: opts, Seed: s.Split().Uint64(), Runs: runs, Shards: 1,
				})
				if err != nil {
					return RowOut{}, err
				}
				eExp = res.Results[0].Makespan.Mean()
				eWeib = res.Results[1].Makespan.Mean()
				eAlways = res.Results[2].Makespan.Mean()
				eNever = res.Results[3].Makespan.Mean()
				deltaCI = res.Delta[1].CI(0.99)
			} else {
				simulate := func(ck []bool) (float64, error) {
					segs, err := cp.Segments(ck)
					if err != nil {
						return 0, err
					}
					res, err := sim.MonteCarlo(segs, factory, opts, runs, s.Split())
					if err != nil {
						return 0, err
					}
					return res.Makespan.Mean(), nil
				}
				if eExp, err = simulate(expDP.CheckpointAfter); err != nil {
					return RowOut{}, err
				}
				if eWeib, err = simulate(weibDP.CheckpointAfter); err != nil {
					return RowOut{}, err
				}
				if eAlways, err = simulate(always); err != nil {
					return RowOut{}, err
				}
				if eNever, err = simulate(never); err != nil {
					return RowOut{}, err
				}
			}
			ratio := eWeib / eExp
			nw := 0
			for _, ck := range weibDP.CheckpointAfter {
				if ck {
					nw++
				}
			}
			return RowOut{
				Cells: []result.Cell{
					result.Float(shape), result.Float(eExp), result.Float(eWeib), result.Float(eAlways), result.Float(eNever),
					result.Fixed(ratio, 3),
					result.Int(len(expDP.Positions())), result.Int(nw),
				},
				Value: shapeOut{shape: shape, ratio: ratio, deltaCI: deltaCI},
			}, nil
		})
	}

	// Age-awareness: with decreasing hazard, an aged processor is safer,
	// so the optimal placement checkpoints less.
	age := p.AddTable(&result.Table{
		ID:      "E11",
		Title:   "history dependence (k=0.6): checkpoints chosen vs processor age",
		Columns: []string{"age", "ckpts", "E[saved work]"},
	})
	for _, a := range []float64{0, 10, 50, 200} {
		a := a
		p.Job(age, func(s *rng.Stream) (RowOut, error) {
			weib, err := failure.NewWeibull(0.6, weibullScaleForMean(0.6, mtbf))
			if err != nil {
				return RowOut{}, err
			}
			surv, err := heuristic.AgedPlatformSurvival(weib, []float64{a})
			if err != nil {
				return RowOut{}, err
			}
			placement, err := heuristic.MaxSavedWorkDP(weights, c, surv)
			if err != nil {
				return RowOut{}, err
			}
			nc := 0
			for _, ck := range placement.CheckpointAfter {
				if ck {
					nc++
				}
			}
			return RowOut{
				Cells: []result.Cell{result.Float(a), result.Int(nc), result.Float(placement.SavedWork)},
				Value: nc,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		decreasingHazardWins := true
		prevCk := n + 1
		monotone := true
		maxDeltaCI := 0.0
		for j, job := range p.Jobs {
			switch job.Table {
			case t:
				v := outs[j].Value.(shapeOut)
				if v.shape < 1 && v.ratio > 1.05 {
					decreasingHazardWins = false
				}
				if v.deltaCI > maxDeltaCI {
					maxDeltaCI = v.deltaCI
				}
			case age:
				nc := outs[j].Value.(int)
				if nc > prevCk {
					monotone = false
				}
				prevCk = nc
			}
		}
		if cfg.CRN {
			tables[t].AddNote("CRN campaign: all four placements replayed the same recorded environments; paired weibullDP−expDP 99%% CI ≤ ±%.3g across shapes", maxDeltaCI)
		}
		tables[t].AddNote("for decreasing hazard (k<1) the Weibull-aware placement stays within 5%% of the exponential-fit DP → %s", yn(decreasingHazardWins))
		tables[t].AddNote("the two objectives (expected makespan vs expected saved work) are close but distinct, so neither placement dominates — only heuristics exist for general laws, as Section 6 states")
		tables[t].AddNote("the real catastrophe is never-checkpointing: 2x-80x worse across shapes")
		tables[age].AddNote("older platform (safer under k<1) → fewer checkpoints, monotonically → %s", yn(monotone))
		tables[age].AddNote("this is exactly why the optimal policy is history-dependent for general laws — the paper's second difficulty")
		return nil
	}
	return p, nil
}
