package expt

import (
	"fmt"
	"math"

	"repro/internal/core"
	"repro/internal/expectation"
	"repro/internal/failure"
	"repro/internal/heuristic"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E11",
		Title: "Extension: general failure laws (Weibull)",
		Claim: "with non-memoryless failures no closed form exists; maximize-expected-work placements (Bouguerra–Trystram–Wagner style) compete with / beat exponential-fit DP placements (Section 6, third extension)",
		Run:   runE11,
	})
}

// weibullScaleForMean returns the scale η giving a Weibull(k, η) mean mu.
func weibullScaleForMean(shape, mu float64) float64 {
	return mu / math.Gamma(1+1/shape)
}

func runE11(cfg Config) ([]*Table, error) {
	runs := cfg.Runs(30_000, 2_000)
	seed := rng.New(cfg.Seed + 11)
	const (
		n     = 30
		w     = 3.0 // uniform task weight
		c     = 0.5 // constant checkpoint/recovery cost
		mtbf  = 25.0
		dtime = 0.5
	)
	weights := make([]float64, n)
	costs := make([]float64, n)
	for i := range weights {
		weights[i] = w
		costs[i] = c
	}

	t := &Table{
		ID:    "E11",
		Title: fmt.Sprintf("simulated makespans under Weibull failures (chain n=%d, MTBF=%g, %d runs)", n, mtbf, runs),
		Columns: []string{
			"shape k", "E_expDP", "E_weibullDP", "E_always", "E_never", "weibull/exp", "ckpts_exp", "ckpts_weib",
		},
	}
	decreasingHazardWins := true
	for _, shape := range []float64{0.5, 0.7, 0.9, 1.0, 1.5} {
		weib, err := failure.NewWeibull(shape, weibullScaleForMean(shape, mtbf))
		if err != nil {
			return nil, err
		}
		// (a) Exponential-fit placement: same mean, memoryless model.
		mFit, err := expectation.NewModel(1/mtbf, dtime)
		if err != nil {
			return nil, err
		}
		cp := &core.ChainProblem{
			Weights: weights, Ckpt: costs, Rec: costs, Model: mFit,
		}
		expDP, err := core.SolveChainDP(cp)
		if err != nil {
			return nil, err
		}
		// (b) Weibull-aware max-saved-work placement.
		surv, err := heuristic.FreshPlatformSurvival(weib, 1)
		if err != nil {
			return nil, err
		}
		weibDP, err := heuristic.MaxSavedWorkDP(weights, c, surv)
		if err != nil {
			return nil, err
		}
		// (c), (d) baselines.
		always := make([]bool, n)
		never := make([]bool, n)
		for i := range always {
			always[i] = true
		}
		never[n-1] = true

		factory := sim.SuperposedFactory(weib, 1, failure.RejuvenateFailedOnly)
		simulate := func(ck []bool) (float64, error) {
			segs, err := cp.Segments(ck)
			if err != nil {
				return 0, err
			}
			res, err := sim.MonteCarlo(segs, factory, sim.Options{Downtime: dtime}, runs, seed.Split())
			if err != nil {
				return 0, err
			}
			return res.Makespan.Mean(), nil
		}
		eExp, err := simulate(expDP.CheckpointAfter)
		if err != nil {
			return nil, err
		}
		eWeib, err := simulate(weibDP.CheckpointAfter)
		if err != nil {
			return nil, err
		}
		eAlways, err := simulate(always)
		if err != nil {
			return nil, err
		}
		eNever, err := simulate(never)
		if err != nil {
			return nil, err
		}
		ratio := eWeib / eExp
		if shape < 1 && ratio > 1.05 {
			decreasingHazardWins = false
		}
		nw := 0
		for _, ck := range weibDP.CheckpointAfter {
			if ck {
				nw++
			}
		}
		t.AddRow(fm(shape), fm(eExp), fm(eWeib), fm(eAlways), fm(eNever),
			fmt.Sprintf("%.3f", ratio),
			fmt.Sprintf("%d", len(expDP.Positions())), fmt.Sprintf("%d", nw))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("for decreasing hazard (k<1) the Weibull-aware placement stays within 5%% of the exponential-fit DP → %s", fb(decreasingHazardWins)),
		"the two objectives (expected makespan vs expected saved work) are close but distinct, so neither placement dominates — only heuristics exist for general laws, as Section 6 states",
		"the real catastrophe is never-checkpointing: 2x-80x worse across shapes",
	)

	// Age-awareness: with decreasing hazard, an aged processor is safer,
	// so the optimal placement checkpoints less.
	age := &Table{
		ID:      "E11",
		Title:   "history dependence (k=0.6): checkpoints chosen vs processor age",
		Columns: []string{"age", "ckpts", "E[saved work]"},
	}
	weib, err := failure.NewWeibull(0.6, weibullScaleForMean(0.6, mtbf))
	if err != nil {
		return nil, err
	}
	prevCk := n + 1
	monotone := true
	for _, a := range []float64{0, 10, 50, 200} {
		surv, err := heuristic.AgedPlatformSurvival(weib, []float64{a})
		if err != nil {
			return nil, err
		}
		p, err := heuristic.MaxSavedWorkDP(weights, c, surv)
		if err != nil {
			return nil, err
		}
		nc := 0
		for _, ck := range p.CheckpointAfter {
			if ck {
				nc++
			}
		}
		if nc > prevCk {
			monotone = false
		}
		prevCk = nc
		age.AddRow(fm(a), fmt.Sprintf("%d", nc), fm(p.SavedWork))
	}
	age.Notes = append(age.Notes,
		fmt.Sprintf("older platform (safer under k<1) → fewer checkpoints, monotonically → %s", fb(monotone)),
		"this is exactly why the optimal policy is history-dependent for general laws — the paper's second difficulty",
	)

	return []*Table{t, age}, nil
}
