package expt

import (
	"fmt"

	"repro/internal/expt/result"
	"repro/internal/moldable"
	"repro/internal/platform"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E9",
		Title: "Section 3 scenarios: workload and overhead scaling with p",
		Claim: "instantiating Eq. 6 under the workload models W(p) and overhead models C(p) yields the expected trade-offs in the optimal processor count",
	}, planE9)
}

func planE9(cfg Config) (*Plan, error) {
	pl := platform.Platform{Processors: 1 << 18, LambdaProc: 1e-6, Downtime: 1}
	const (
		wTotal = 1e5
		baseC  = 20.0
	)
	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID:      "E9",
		Title:   fmt.Sprintf("optimal p per scenario (Wtotal=%g, baseC=%g, λproc=%g, D=%g)", wTotal, baseC, pl.LambdaProc, pl.Downtime),
		Columns: []string{"workload", "overhead", "p*", "E(p*)", "E(1)", "speedup", "interior"},
	})
	workloads := []platform.WorkloadModel{
		platform.PerfectlyParallel{},
		platform.Amdahl{Gamma: 1e-5},
		platform.Amdahl{Gamma: 1e-3},
		platform.NumericalKernel{Gamma: 0.01},
		platform.NumericalKernel{Gamma: 0.1},
	}
	overheads := []platform.OverheadModel{
		platform.ProportionalOverhead{},
		platform.ConstantOverhead{},
	}
	type interiority struct {
		constOverhead bool
		interior      bool
	}
	for _, wm := range workloads {
		for _, om := range overheads {
			wm, om := wm, om
			p.Job(t, func(s *rng.Stream) (RowOut, error) {
				task := moldable.Task{
					Name: wm.Name(), WTotal: wTotal, BaseCheckpoint: baseC,
					Scenario: platform.Scenario{Workload: wm, Overhead: om},
				}
				a, err := moldable.OptimalProcessors(task, pl)
				if err != nil {
					return RowOut{}, err
				}
				e1, err := task.ExpectedTime(pl, 1)
				if err != nil {
					return RowOut{}, err
				}
				interior := a.Processors > 1 && a.Processors < pl.Processors
				return RowOut{
					Cells: []result.Cell{
						result.Str(wm.Name()), result.Str(om.Name()), result.Int(a.Processors),
						result.Float(a.Expected), result.Float(e1), result.FixedUnit(a.Speedup, 1, "x"), result.Bool(interior),
					},
					Value: interiority{constOverhead: om.Name() == "constant", interior: interior},
				}, nil
			})
		}
	}

	// Failure-rate sensitivity of the optimal allocation.
	sens := p.AddTable(&result.Table{
		ID:      "E9",
		Title:   "optimal p vs per-processor failure rate (numerical kernel γ=0.05, constant overhead)",
		Columns: []string{"lambda_proc", "p*", "E(p*)", "speedup"},
	})
	for _, lp := range []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4} {
		lp := lp
		p.Job(sens, func(s *rng.Stream) (RowOut, error) {
			plv := platform.Platform{Processors: 1 << 18, LambdaProc: lp, Downtime: 1}
			task := moldable.Task{
				Name: "kernel", WTotal: wTotal, BaseCheckpoint: baseC,
				Scenario: platform.Scenario{Workload: platform.NumericalKernel{Gamma: 0.05}, Overhead: platform.ConstantOverhead{}},
			}
			a, err := moldable.OptimalProcessors(task, plv)
			if err != nil {
				return RowOut{}, err
			}
			return RowOut{
				Cells: []result.Cell{
					result.Sci(lp), result.Int(a.Processors), result.Float(a.Expected), result.FixedUnit(a.Speedup, 1, "x"),
				},
				Value: a.Processors,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		constInterior := true
		monotone := true
		prevP := 1 << 62
		for j, job := range p.Jobs {
			switch job.Table {
			case t:
				v := outs[j].Value.(interiority)
				if v.constOverhead && !v.interior {
					constInterior = false
				}
			case sens:
				pStar := outs[j].Value.(int)
				if pStar > prevP {
					monotone = false
				}
				prevP = pStar
			}
		}
		tables[t].AddNote("constant-overhead scenarios always have a finite interior optimum (λ grows with p while C does not shrink) → %s", yn(constInterior))
		tables[t].AddNote("proportional overhead pushes the optimum to (much) larger p — matching the Section 3 discussion of I/O bottlenecks")
		tables[sens].AddNote("higher failure rates shrink the optimal platform → %s", yn(monotone))
		return nil
	}
	return p, nil
}
