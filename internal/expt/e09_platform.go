package expt

import (
	"fmt"

	"repro/internal/moldable"
	"repro/internal/platform"
)

func init() {
	register(Experiment{
		ID:    "E9",
		Title: "Section 3 scenarios: workload and overhead scaling with p",
		Claim: "instantiating Eq. 6 under the workload models W(p) and overhead models C(p) yields the expected trade-offs in the optimal processor count",
		Run:   runE9,
	})
}

func runE9(cfg Config) ([]*Table, error) {
	pl := platform.Platform{Processors: 1 << 18, LambdaProc: 1e-6, Downtime: 1}
	const (
		wTotal = 1e5
		baseC  = 20.0
	)
	t := &Table{
		ID:      "E9",
		Title:   fmt.Sprintf("optimal p per scenario (Wtotal=%g, baseC=%g, λproc=%g, D=%g)", wTotal, baseC, pl.LambdaProc, pl.Downtime),
		Columns: []string{"workload", "overhead", "p*", "E(p*)", "E(1)", "speedup", "interior"},
	}
	workloads := []platform.WorkloadModel{
		platform.PerfectlyParallel{},
		platform.Amdahl{Gamma: 1e-5},
		platform.Amdahl{Gamma: 1e-3},
		platform.NumericalKernel{Gamma: 0.01},
		platform.NumericalKernel{Gamma: 0.1},
	}
	overheads := []platform.OverheadModel{
		platform.ProportionalOverhead{},
		platform.ConstantOverhead{},
	}
	constInterior := true
	for _, wm := range workloads {
		for _, om := range overheads {
			task := moldable.Task{
				Name: wm.Name(), WTotal: wTotal, BaseCheckpoint: baseC,
				Scenario: platform.Scenario{Workload: wm, Overhead: om},
			}
			a, err := moldable.OptimalProcessors(task, pl)
			if err != nil {
				return nil, err
			}
			e1, err := task.ExpectedTime(pl, 1)
			if err != nil {
				return nil, err
			}
			interior := a.Processors > 1 && a.Processors < pl.Processors
			if om.Name() == "constant" && !interior {
				constInterior = false
			}
			t.AddRow(wm.Name(), om.Name(), fmt.Sprintf("%d", a.Processors),
				fm(a.Expected), fm(e1), fmt.Sprintf("%.1fx", a.Speedup), fb(interior))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("constant-overhead scenarios always have a finite interior optimum (λ grows with p while C does not shrink) → %s", fb(constInterior)),
		"proportional overhead pushes the optimum to (much) larger p — matching the Section 3 discussion of I/O bottlenecks",
	)

	// Failure-rate sensitivity of the optimal allocation.
	sens := &Table{
		ID:      "E9",
		Title:   "optimal p vs per-processor failure rate (numerical kernel γ=0.05, constant overhead)",
		Columns: []string{"lambda_proc", "p*", "E(p*)", "speedup"},
	}
	monotone := true
	prevP := 1 << 62
	for _, lp := range []float64{1e-8, 1e-7, 1e-6, 1e-5, 1e-4} {
		plv := platform.Platform{Processors: 1 << 18, LambdaProc: lp, Downtime: 1}
		task := moldable.Task{
			Name: "kernel", WTotal: wTotal, BaseCheckpoint: baseC,
			Scenario: platform.Scenario{Workload: platform.NumericalKernel{Gamma: 0.05}, Overhead: platform.ConstantOverhead{}},
		}
		a, err := moldable.OptimalProcessors(task, plv)
		if err != nil {
			return nil, err
		}
		if a.Processors > prevP {
			monotone = false
		}
		prevP = a.Processors
		sens.AddRow(fe(lp), fmt.Sprintf("%d", a.Processors), fm(a.Expected), fmt.Sprintf("%.1fx", a.Speedup))
	}
	sens.Notes = append(sens.Notes,
		fmt.Sprintf("higher failure rates shrink the optimal platform → %s", fb(monotone)))

	return []*Table{t, sens}, nil
}
