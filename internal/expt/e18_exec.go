package expt

import (
	"fmt"
	"math"
	"os"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/store"
)

func init() {
	register(Info{
		ID:    "E18",
		Title: "Crash-safe executor: realized vs planned makespan, and crash/resume replay identity",
		Claim: "executing plans on the runtime realizes the Proposition-1 planned expectations within campaign confidence intervals (chains and DAGs, both cost models), and executions killed at injected fault points resume from persisted checkpoints with bit-identical journals",
	}, planE18)
}

func planE18(cfg Config) (*Plan, error) {
	const (
		n      = 40
		lambda = 0.02
		down   = 1.0
	)
	g, err := dag.Chain(n, dag.DefaultWeights(), SetupStream(cfg, "E18"))
	if err != nil {
		return nil, err
	}
	m, err := expectation.NewModel(lambda, down)
	if err != nil {
		return nil, err
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return nil, err
	}
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))
	runs := cfg.Runs(20_000, 1_500)

	p := &Plan{}
	chain := p.AddTable(&result.Table{
		ID:    "E18",
		Title: fmt.Sprintf("chain plans executed on the runtime: planned (Prop. 1) vs realized (%d runs, λ=%g, D=%g, n=%d)", runs, lambda, down, n),
		Columns: []string{
			"strategy", "ckpts", "planned", "realized", "ci99", "rel_err", "within_ci",
		},
	})

	type stratVec struct {
		name string
		ck   []bool
	}
	var strategies []stratVec
	dp, err := core.SolveChainDP(cp)
	if err != nil {
		return nil, err
	}
	strategies = append(strategies, stratVec{"dp", dp.CheckpointAfter})
	daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, lambda))
	if err != nil {
		return nil, err
	}
	strategies = append(strategies, stratVec{"daly", daly.CheckpointAfter})
	young, err := core.PeriodicCheckpoint(cp, expectation.YoungPeriod(meanC, lambda))
	if err != nil {
		return nil, err
	}
	strategies = append(strategies, stratVec{"young", young.CheckpointAfter})
	every5 := make([]bool, n)
	for i := range every5 {
		every5[i] = (i+1)%5 == 0
	}
	every5[n-1] = true
	strategies = append(strategies, stratVec{"every:5", every5})

	type ciOut struct{ within bool }
	for _, sv := range strategies {
		sv := sv
		p.Job(chain, func(s *rng.Stream) (RowOut, error) {
			w, err := exec.NewChainWorkload(cp, sv.ck)
			if err != nil {
				return RowOut{}, err
			}
			planned := w.Planned(m)
			res, err := exec.Campaign(w, failure.Exponential{Lambda: lambda}, exec.CampaignOptions{
				Runs: runs, Seed: s.Uint64(), Workers: 1, Downtime: down,
			})
			if err != nil {
				return RowOut{}, err
			}
			realized := res.Makespan.Mean()
			ci := res.Makespan.CI(0.99)
			within := math.Abs(realized-planned) <= ci
			return RowOut{
				Cells: []result.Cell{
					result.Str(sv.name),
					result.Int(len(checkpointCount(sv.ck))),
					result.Float(planned),
					result.Float(realized),
					result.Float(ci),
					result.Sci(math.Abs(realized-planned) / planned),
					result.Bool(within),
				},
				Value: ciOut{within: within},
			}, nil
		})
	}

	// DAG plans under both cost models: the solver's Expected, the
	// workload's recomputed Planned (they must agree — same segment
	// arithmetic), and the realized campaign mean.
	gd, err := dag.Layered(5, 4, 0.4, dag.DefaultWeights(), SetupStream(cfg, "E18").Keyed(2))
	if err != nil {
		return nil, err
	}
	order, err := gd.TopologicalOrder()
	if err != nil {
		return nil, err
	}
	dagTab := p.AddTable(&result.Table{
		ID:    "E18",
		Title: fmt.Sprintf("DAG plans (layered 5×4) executed under both cost models (%d runs, λ=%g)", runs, lambda),
		Columns: []string{
			"cost_model", "segments", "E_solver", "planned_exec", "realized", "ci99", "within_ci",
		},
	})
	for _, cm := range []core.CostModel{core.LastTaskCosts{R0: 0.5}, core.LiveSetCosts{R0: 0.5}} {
		cm := cm
		p.Job(dagTab, func(s *rng.Stream) (RowOut, error) {
			sol, err := core.SolveOrderDP(gd, order, m, cm)
			if err != nil {
				return RowOut{}, err
			}
			w, err := exec.NewDAGWorkload(gd, sol.Plan(), cm)
			if err != nil {
				return RowOut{}, err
			}
			planned := w.Planned(m)
			if math.Abs(planned-sol.Expected) > 1e-9*math.Max(planned, 1) {
				return RowOut{}, fmt.Errorf("E18: workload planned %v disagrees with solver expected %v under %s",
					planned, sol.Expected, cm.Name())
			}
			res, err := exec.Campaign(w, failure.Exponential{Lambda: lambda}, exec.CampaignOptions{
				Runs: runs, Seed: s.Uint64(), Workers: 1, Downtime: down,
			})
			if err != nil {
				return RowOut{}, err
			}
			realized := res.Makespan.Mean()
			ci := res.Makespan.CI(0.99)
			within := math.Abs(realized-planned) <= ci
			return RowOut{
				Cells: []result.Cell{
					result.Str(cm.Name()),
					result.Int(w.Segments()),
					result.Float(sol.Expected),
					result.Float(planned),
					result.Float(realized),
					result.Float(ci),
					result.Bool(within),
				},
				Value: ciOut{within: within},
			}, nil
		})
	}

	// Crash/resume acceptance: kill the executor at injected fault
	// points, resume from the persisted store, and demand the final
	// journal be byte-identical to an uninterrupted run's.
	crash := p.AddTable(&result.Table{
		ID:    "E18",
		Title: "crash/resume drills: executions killed at injected points, resumed from the store",
		Columns: []string{
			"plan", "store", "kill_points", "crashes", "journal_events", "journal_identical", "metrics_identical",
		},
	})
	type crashOut struct{ identical bool }
	type drill struct {
		plan     string
		storeTag string
		workload func() (*exec.Workload, error)
		source   func() exec.Source
		mkStore  func() (store.Store, func(), error)
	}
	chainDP := func() (*exec.Workload, error) { return exec.NewChainWorkload(cp, dp.CheckpointAfter) }
	dagLive := func() (*exec.Workload, error) {
		sol, err := core.SolveOrderDP(gd, order, m, core.LiveSetCosts{R0: 0.5})
		if err != nil {
			return nil, err
		}
		return exec.NewDAGWorkload(gd, sol.Plan(), core.LiveSetCosts{R0: 0.5})
	}
	drills := []drill{
		{
			plan: "chain/dp", storeTag: "file+crc",
			workload: chainDP,
			source:   func() exec.Source { return exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, 1234, 1) },
			mkStore: func() (store.Store, func(), error) {
				dir, err := os.MkdirTemp("", "e18-store-*")
				if err != nil {
					return nil, nil, err
				}
				fs, err := store.NewFileStore(dir)
				if err != nil {
					os.RemoveAll(dir)
					return nil, nil, err
				}
				return store.Checked(fs), func() { os.RemoveAll(dir) }, nil
			},
		},
		{
			plan: "chain/dp", storeTag: "file+crc+faults",
			workload: chainDP,
			source:   func() exec.Source { return exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, 1234, 1) },
			mkStore: func() (store.Store, func(), error) {
				dir, err := os.MkdirTemp("", "e18-store-*")
				if err != nil {
					return nil, nil, err
				}
				fs, err := store.NewFileStore(dir)
				if err != nil {
					os.RemoveAll(dir)
					return nil, nil, err
				}
				faulty := store.NewFaultStore(fs, store.FaultPlan{
					Seed: 99, WriteFail: 0.1, TornWrite: 0.1, LoseOld: 0.3, ReadFail: 0.1,
				})
				return store.Checked(faulty), func() { os.RemoveAll(dir) }, nil
			},
		},
		{
			plan: "dag/live-set", storeTag: "mem+crc+faults",
			workload: dagLive,
			source:   func() exec.Source { return exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, 1234, 2) },
			mkStore: func() (store.Store, func(), error) {
				faulty := store.NewFaultStore(store.NewMemStore(), store.FaultPlan{
					Seed: 7, WriteFail: 0.15, TornWrite: 0.15, LoseOld: 0.4, ReadFail: 0.15,
				})
				return store.Checked(faulty), func() {}, nil
			},
		},
	}
	for _, d := range drills {
		d := d
		p.Job(crash, func(s *rng.Stream) (RowOut, error) {
			w, err := d.workload()
			if err != nil {
				return RowOut{}, err
			}
			ref, err := exec.Execute(w, d.source(), exec.Options{Downtime: down})
			if err != nil {
				return RowOut{}, err
			}
			st, cleanup, err := d.mkStore()
			if err != nil {
				return RowOut{}, err
			}
			defer cleanup()
			ne := len(ref.Journal)
			kills := []int{ne / 5, 2 * ne / 5, 3 * ne / 5, 4 * ne / 5}
			crashes := 0
			for _, kill := range kills {
				_, err := exec.Execute(w, d.source(), exec.Options{
					RunID: "drill", Store: st, Downtime: down,
					SaveRetries: 4, CrashAfterEvents: kill,
				})
				if err == nil {
					return RowOut{}, fmt.Errorf("E18: kill point %d did not crash", kill)
				}
				crashes++
			}
			res, err := exec.Execute(w, d.source(), exec.Options{
				RunID: "drill", Store: st, Downtime: down, SaveRetries: 4,
			})
			if err != nil {
				return RowOut{}, err
			}
			identical := res.Journal.Equal(ref.Journal)
			metricsOK := res.Metrics == ref.Metrics
			return RowOut{
				Cells: []result.Cell{
					result.Str(d.plan),
					result.Str(d.storeTag),
					result.Int(len(kills)),
					result.Int(crashes),
					result.Int(len(res.Journal)),
					result.Bool(identical),
					result.Bool(metricsOK),
				},
				Value: crashOut{identical: identical && metricsOK},
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allCI, allIdent := true, true
		for _, out := range outs {
			switch v := out.Value.(type) {
			case ciOut:
				allCI = allCI && v.within
			case crashOut:
				allIdent = allIdent && v.identical
			}
		}
		tables[chain].AddNote("acceptance: every realized makespan within its 99%% campaign CI of the planned expectation: %s", yn(allCI))
		tables[crash].AddNote("acceptance: every killed-and-resumed execution reproduced the uninterrupted journal and metrics bit-for-bit: %s", yn(allIdent))
		return nil
	}
	return p, nil
}

// checkpointCount returns the checkpointed positions of a vector (it
// reuses the plan-level convention: the count is what the table shows).
func checkpointCount(ck []bool) []int {
	var out []int
	for i, c := range ck {
		if c {
			out = append(out, i)
		}
	}
	return out
}
