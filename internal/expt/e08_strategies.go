package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E8",
		Title: "Value of optimal placement: DP vs always/never/periodic baselines",
		Claim: "the DP dominates every baseline; crossovers between always- and never-checkpoint shift with λ and C (the trade-off of Section 2)",
	}, planE8)
}

func planE8(cfg Config) (*Plan, error) {
	const n = 50
	// The λ-sweep rows share one random chain; build it at plan time from
	// the setup stream so every row job sees the same graph.
	g, err := dag.Chain(n, dag.DefaultWeights(), SetupStream(cfg, "E8"))
	if err != nil {
		return nil, err
	}

	p := &Plan{}
	sweep := p.AddTable(&result.Table{
		ID:      "E8",
		Title:   fmt.Sprintf("λ sweep on a random chain (n=%d, w∈[1,10], C∈[0.05,0.5])", n),
		Columns: []string{"lambda", "E_dp", "E_always", "E_never", "E_daly", "always/dp", "never/dp", "daly/dp", "ckpts_dp"},
	})
	type sweepOut struct {
		dominates bool
		alwaysWin bool
	}
	for _, lambda := range []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1} {
		lambda := lambda
		p.Job(sweep, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(lambda, 1)
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return RowOut{}, err
			}
			dp, err := core.SolveChainDP(cp)
			if err != nil {
				return RowOut{}, err
			}
			always, err := core.AlwaysCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			never, err := core.NeverCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			meanC := 0.0
			for _, c := range cp.Ckpt {
				meanC += c
			}
			meanC /= float64(len(cp.Ckpt))
			daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, lambda))
			if err != nil {
				return RowOut{}, err
			}
			const eps = 1e-9
			dominates := !(dp.Expected > always.Expected+eps || dp.Expected > never.Expected+eps || dp.Expected > daly.Expected+eps)
			return RowOut{
				Cells: []result.Cell{
					result.Float(lambda), result.Float(dp.Expected), result.Float(always.Expected),
					result.Float(never.Expected), result.Float(daly.Expected),
					result.Fixed(always.Expected/dp.Expected, 3),
					result.Fixed(never.Expected/dp.Expected, 3),
					result.Fixed(daly.Expected/dp.Expected, 3),
					result.Int(len(dp.Positions())),
				},
				Value: sweepOut{dominates: dominates, alwaysWin: always.Expected < never.Expected},
			}, nil
		})
	}

	// Heterogeneous checkpoint costs: where the DP's advantage over the
	// best uniform policy becomes material.
	het := p.AddTable(&result.Table{
		ID:      "E8",
		Title:   "heterogeneous checkpoint costs (a few cheap checkpoints among expensive ones, λ=0.02)",
		Columns: []string{"cheap_every", "E_dp", "E_always", "E_never", "E_daly", "best_baseline/dp"},
	})
	for _, period := range []int{5, 10, 25} {
		period := period
		p.Job(het, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.02, 1)
			if err != nil {
				return RowOut{}, err
			}
			gh, err := dag.Chain(n, dag.WeightSpec{
				MinWeight: 4, MaxWeight: 6,
				MinCheckpoint: 8, MaxCheckpoint: 12, RecoveryFactor: 1,
			}, s.Split())
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(gh, m, 0)
			if err != nil {
				return RowOut{}, err
			}
			for i := 0; i < n; i += period {
				cp.Ckpt[i] = 0.05
				cp.Rec[i] = 0.05
			}
			dp, err := core.SolveChainDP(cp)
			if err != nil {
				return RowOut{}, err
			}
			always, err := core.AlwaysCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			never, err := core.NeverCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(10, 0.02))
			if err != nil {
				return RowOut{}, err
			}
			best := always.Expected
			if never.Expected < best {
				best = never.Expected
			}
			if daly.Expected < best {
				best = daly.Expected
			}
			ratio := best / dp.Expected
			return RowOut{
				Cells: []result.Cell{
					result.Int(period), result.Float(dp.Expected), result.Float(always.Expected),
					result.Float(never.Expected), result.Float(daly.Expected), result.Fixed(ratio, 3),
				},
				Value: ratio >= 1,
			}, nil
		})
	}

	// CRN simulated cross-check (opt-in): replay the four strategies
	// against common recorded failure environments and verify the
	// analytic ranking holds in simulation, with paired-delta confidence
	// intervals the independent-sampling design cannot match at this run
	// count. The table (and its jobs) exists only under cfg.CRN, so the
	// default fingerprints are untouched.
	crn := -1
	if cfg.CRN {
		crn = p.AddTable(&result.Table{
			ID:      "E8",
			Title:   "CRN simulated cross-check: paired strategy deltas vs the DP (same chain, common environments)",
			Columns: []string{"lambda", "sim_dp", "Δalways", "Δnever", "Δdaly", "ci99_Δalways", "rank_ok"},
		})
		simRuns := cfg.Runs(20_000, 2_000)
		// λ stops at 1e-2: beyond that the never-checkpoint candidate's
		// single ~275-unit segment succeeds with probability e^{−λ·275},
		// which is simulable at 1e-2 (~6% per attempt) and hopeless at
		// 1e-1 — the analytic sweep above still covers the large-λ end.
		for _, lambda := range []float64{1e-3, 3e-3, 1e-2} {
			lambda := lambda
			p.Job(crn, func(s *rng.Stream) (RowOut, error) {
				m, err := expectation.NewModel(lambda, 1)
				if err != nil {
					return RowOut{}, err
				}
				cp, _, err := core.NewChainProblem(g, m, 0)
				if err != nil {
					return RowOut{}, err
				}
				dp, err := core.SolveChainDP(cp)
				if err != nil {
					return RowOut{}, err
				}
				always, err := core.AlwaysCheckpoint(cp)
				if err != nil {
					return RowOut{}, err
				}
				never, err := core.NeverCheckpoint(cp)
				if err != nil {
					return RowOut{}, err
				}
				meanC := 0.0
				for _, c := range cp.Ckpt {
					meanC += c
				}
				meanC /= float64(len(cp.Ckpt))
				daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, lambda))
				if err != nil {
					return RowOut{}, err
				}
				var plans [][]core.Segment
				for _, ck := range [][]bool{dp.CheckpointAfter, always.CheckpointAfter, never.CheckpointAfter, daly.CheckpointAfter} {
					segs, err := cp.Segments(ck)
					if err != nil {
						return RowOut{}, err
					}
					plans = append(plans, segs)
				}
				res, err := sim.CampaignPlansSharded(plans, sim.ExponentialFactory(lambda), sim.ShardOptions{
					Options: sim.Options{Downtime: m.Downtime, Workers: 1},
					Seed:    s.Split().Uint64(), Runs: simRuns, Shards: 1,
				})
				if err != nil {
					return RowOut{}, err
				}
				// The DP is provably optimal: every paired delta must be
				// nonnegative up to its own CI.
				rankOK := true
				for i := 1; i < len(res.Delta); i++ {
					if res.Delta[i].Mean() < -res.Delta[i].CI(0.99) {
						rankOK = false
					}
				}
				return RowOut{
					Cells: []result.Cell{
						result.Float(lambda), result.Float(res.Results[0].Makespan.Mean()),
						result.Float(res.Delta[1].Mean()), result.Float(res.Delta[2].Mean()), result.Float(res.Delta[3].Mean()),
						result.Sci(res.Delta[1].CI(0.99)), result.Bool(rankOK),
					},
					Value: rankOK,
				}, nil
			})
		}
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		dpDominates := true
		var sawAlwaysWin, sawNeverWin bool
		gains := true
		ranksOK := true
		for j, job := range p.Jobs {
			switch job.Table {
			case sweep:
				v := outs[j].Value.(sweepOut)
				dpDominates = dpDominates && v.dominates
				if v.alwaysWin {
					sawAlwaysWin = true
				} else {
					sawNeverWin = true
				}
			case het:
				gains = gains && outs[j].Value.(bool)
			case crn:
				ranksOK = ranksOK && outs[j].Value.(bool)
			}
		}
		tables[sweep].AddNote("DP ≤ every baseline at every λ → %s", yn(dpDominates))
		tables[sweep].AddNote("crossover observed: never-checkpoint wins at small λ (%s), always-checkpoint wins at large λ (%s)",
			yn(sawNeverWin), yn(sawAlwaysWin))
		tables[het].AddNote("cost-aware DP beats the best cost-blind baseline on every instance → %s", yn(gains))
		tables[het].AddNote("the DP concentrates checkpoints on the cheap positions — the structure uniform policies cannot express")
		if crn >= 0 {
			tables[crn].AddNote("simulated paired deltas confirm the analytic ranking (DP optimal) at every λ → %s", yn(ranksOK))
			tables[crn].AddNote("common random numbers pair the strategies against one environment set: the delta CI measures the *comparison*, not two independent means")
		}
		return nil
	}
	return p, nil
}
