package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E8",
		Title: "Value of optimal placement: DP vs always/never/periodic baselines",
		Claim: "the DP dominates every baseline; crossovers between always- and never-checkpoint shift with λ and C (the trade-off of Section 2)",
	}, planE8)
}

func planE8(cfg Config) (*Plan, error) {
	const n = 50
	// The λ-sweep rows share one random chain; build it at plan time from
	// the setup stream so every row job sees the same graph.
	g, err := dag.Chain(n, dag.DefaultWeights(), SetupStream(cfg, "E8"))
	if err != nil {
		return nil, err
	}

	p := &Plan{}
	sweep := p.AddTable(&result.Table{
		ID:      "E8",
		Title:   fmt.Sprintf("λ sweep on a random chain (n=%d, w∈[1,10], C∈[0.05,0.5])", n),
		Columns: []string{"lambda", "E_dp", "E_always", "E_never", "E_daly", "always/dp", "never/dp", "daly/dp", "ckpts_dp"},
	})
	type sweepOut struct {
		dominates bool
		alwaysWin bool
	}
	for _, lambda := range []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1} {
		lambda := lambda
		p.Job(sweep, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(lambda, 1)
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return RowOut{}, err
			}
			dp, err := core.SolveChainDP(cp)
			if err != nil {
				return RowOut{}, err
			}
			always, err := core.AlwaysCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			never, err := core.NeverCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			meanC := 0.0
			for _, c := range cp.Ckpt {
				meanC += c
			}
			meanC /= float64(len(cp.Ckpt))
			daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, lambda))
			if err != nil {
				return RowOut{}, err
			}
			const eps = 1e-9
			dominates := !(dp.Expected > always.Expected+eps || dp.Expected > never.Expected+eps || dp.Expected > daly.Expected+eps)
			return RowOut{
				Cells: []result.Cell{
					result.Float(lambda), result.Float(dp.Expected), result.Float(always.Expected),
					result.Float(never.Expected), result.Float(daly.Expected),
					result.Fixed(always.Expected/dp.Expected, 3),
					result.Fixed(never.Expected/dp.Expected, 3),
					result.Fixed(daly.Expected/dp.Expected, 3),
					result.Int(len(dp.Positions())),
				},
				Value: sweepOut{dominates: dominates, alwaysWin: always.Expected < never.Expected},
			}, nil
		})
	}

	// Heterogeneous checkpoint costs: where the DP's advantage over the
	// best uniform policy becomes material.
	het := p.AddTable(&result.Table{
		ID:      "E8",
		Title:   "heterogeneous checkpoint costs (a few cheap checkpoints among expensive ones, λ=0.02)",
		Columns: []string{"cheap_every", "E_dp", "E_always", "E_never", "E_daly", "best_baseline/dp"},
	})
	for _, period := range []int{5, 10, 25} {
		period := period
		p.Job(het, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.02, 1)
			if err != nil {
				return RowOut{}, err
			}
			gh, err := dag.Chain(n, dag.WeightSpec{
				MinWeight: 4, MaxWeight: 6,
				MinCheckpoint: 8, MaxCheckpoint: 12, RecoveryFactor: 1,
			}, s.Split())
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(gh, m, 0)
			if err != nil {
				return RowOut{}, err
			}
			for i := 0; i < n; i += period {
				cp.Ckpt[i] = 0.05
				cp.Rec[i] = 0.05
			}
			dp, err := core.SolveChainDP(cp)
			if err != nil {
				return RowOut{}, err
			}
			always, err := core.AlwaysCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			never, err := core.NeverCheckpoint(cp)
			if err != nil {
				return RowOut{}, err
			}
			daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(10, 0.02))
			if err != nil {
				return RowOut{}, err
			}
			best := always.Expected
			if never.Expected < best {
				best = never.Expected
			}
			if daly.Expected < best {
				best = daly.Expected
			}
			ratio := best / dp.Expected
			return RowOut{
				Cells: []result.Cell{
					result.Int(period), result.Float(dp.Expected), result.Float(always.Expected),
					result.Float(never.Expected), result.Float(daly.Expected), result.Fixed(ratio, 3),
				},
				Value: ratio >= 1,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		dpDominates := true
		var sawAlwaysWin, sawNeverWin bool
		gains := true
		for j, job := range p.Jobs {
			switch job.Table {
			case sweep:
				v := outs[j].Value.(sweepOut)
				dpDominates = dpDominates && v.dominates
				if v.alwaysWin {
					sawAlwaysWin = true
				} else {
					sawNeverWin = true
				}
			case het:
				gains = gains && outs[j].Value.(bool)
			}
		}
		tables[sweep].AddNote("DP ≤ every baseline at every λ → %s", yn(dpDominates))
		tables[sweep].AddNote("crossover observed: never-checkpoint wins at small λ (%s), always-checkpoint wins at large λ (%s)",
			yn(sawNeverWin), yn(sawAlwaysWin))
		tables[het].AddNote("cost-aware DP beats the best cost-blind baseline on every instance → %s", yn(gains))
		tables[het].AddNote("the DP concentrates checkpoints on the cheap positions — the structure uniform policies cannot express")
		return nil
	}
	return p, nil
}
