package expt

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/rng"
)

func init() {
	register(Experiment{
		ID:    "E8",
		Title: "Value of optimal placement: DP vs always/never/periodic baselines",
		Claim: "the DP dominates every baseline; crossovers between always- and never-checkpoint shift with λ and C (the trade-off of Section 2)",
		Run:   runE8,
	})
}

func runE8(cfg Config) ([]*Table, error) {
	seed := rng.New(cfg.Seed + 8)
	const n = 50

	sweep := &Table{
		ID:      "E8",
		Title:   fmt.Sprintf("λ sweep on a random chain (n=%d, w∈[1,10], C∈[0.05,0.5])", n),
		Columns: []string{"lambda", "E_dp", "E_always", "E_never", "E_daly", "always/dp", "never/dp", "daly/dp", "ckpts_dp"},
	}
	g, err := dag.Chain(n, dag.DefaultWeights(), seed.Split())
	if err != nil {
		return nil, err
	}
	dpDominates := true
	var sawAlwaysWin, sawNeverWin bool
	for _, lambda := range []float64{1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1} {
		m, err := expectation.NewModel(lambda, 1)
		if err != nil {
			return nil, err
		}
		cp, _, err := core.NewChainProblem(g, m, 0)
		if err != nil {
			return nil, err
		}
		dp, err := core.SolveChainDP(cp)
		if err != nil {
			return nil, err
		}
		always, err := core.AlwaysCheckpoint(cp)
		if err != nil {
			return nil, err
		}
		never, err := core.NeverCheckpoint(cp)
		if err != nil {
			return nil, err
		}
		meanC := 0.0
		for _, c := range cp.Ckpt {
			meanC += c
		}
		meanC /= float64(len(cp.Ckpt))
		daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(meanC, lambda))
		if err != nil {
			return nil, err
		}
		const eps = 1e-9
		if dp.Expected > always.Expected+eps || dp.Expected > never.Expected+eps || dp.Expected > daly.Expected+eps {
			dpDominates = false
		}
		if always.Expected < never.Expected {
			sawAlwaysWin = true
		} else {
			sawNeverWin = true
		}
		sweep.AddRow(fm(lambda), fm(dp.Expected), fm(always.Expected), fm(never.Expected), fm(daly.Expected),
			fmt.Sprintf("%.3f", always.Expected/dp.Expected),
			fmt.Sprintf("%.3f", never.Expected/dp.Expected),
			fmt.Sprintf("%.3f", daly.Expected/dp.Expected),
			fmt.Sprintf("%d", len(dp.Positions())))
	}
	sweep.Notes = append(sweep.Notes,
		fmt.Sprintf("DP ≤ every baseline at every λ → %s", fb(dpDominates)),
		fmt.Sprintf("crossover observed: never-checkpoint wins at small λ (%s), always-checkpoint wins at large λ (%s)",
			fb(sawNeverWin), fb(sawAlwaysWin)),
	)

	// Heterogeneous checkpoint costs: where the DP's advantage over the
	// best uniform policy becomes material.
	het := &Table{
		ID:      "E8",
		Title:   "heterogeneous checkpoint costs (a few cheap checkpoints among expensive ones, λ=0.02)",
		Columns: []string{"cheap_every", "E_dp", "E_always", "E_never", "E_daly", "best_baseline/dp"},
	}
	m, err := expectation.NewModel(0.02, 1)
	if err != nil {
		return nil, err
	}
	gains := true
	for _, period := range []int{5, 10, 25} {
		gh, err := dag.Chain(n, dag.WeightSpec{
			MinWeight: 4, MaxWeight: 6,
			MinCheckpoint: 8, MaxCheckpoint: 12, RecoveryFactor: 1,
		}, seed.Split())
		if err != nil {
			return nil, err
		}
		cp, order, err := core.NewChainProblem(gh, m, 0)
		if err != nil {
			return nil, err
		}
		_ = order
		for i := 0; i < n; i += period {
			cp.Ckpt[i] = 0.05
			cp.Rec[i] = 0.05
		}
		dp, err := core.SolveChainDP(cp)
		if err != nil {
			return nil, err
		}
		always, err := core.AlwaysCheckpoint(cp)
		if err != nil {
			return nil, err
		}
		never, err := core.NeverCheckpoint(cp)
		if err != nil {
			return nil, err
		}
		daly, err := core.PeriodicCheckpoint(cp, expectation.DalyPeriod(10, 0.02))
		if err != nil {
			return nil, err
		}
		best := always.Expected
		if never.Expected < best {
			best = never.Expected
		}
		if daly.Expected < best {
			best = daly.Expected
		}
		ratio := best / dp.Expected
		if ratio < 1 {
			gains = false
		}
		het.AddRow(fmt.Sprintf("%d", period), fm(dp.Expected), fm(always.Expected),
			fm(never.Expected), fm(daly.Expected), fmt.Sprintf("%.3f", ratio))
	}
	het.Notes = append(het.Notes,
		fmt.Sprintf("cost-aware DP beats the best cost-blind baseline on every instance → %s", fb(gains)),
		"the DP concentrates checkpoints on the cheap positions — the structure uniform policies cannot express",
	)

	return []*Table{sweep, het}, nil
}
