package expt

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/exec"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/failure"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/store"
)

func init() {
	register(Info{
		ID:    "E19",
		Title: "Degraded-store resilience: adaptive replanning vs static plans, and chaos replay identity",
		Claim: "under drifting checkpoint-store latency the adaptive executor (health-tracked retries, online suffix replanning, degradation ladder) realizes a strictly lower makespan than the static plan once latency reaches 2× the planned checkpoint cost (paired 99% CI excluding zero), while kill/resume replay identity survives retries, replans, quota faults and multi-tenant contention on a shared injector",
	}, planE19)
}

func planE19(cfg Config) (*Plan, error) {
	const (
		n      = 40
		lambda = 0.02
		down   = 1.0
	)
	g, err := dag.Chain(n, dag.DefaultWeights(), SetupStream(cfg, "E19"))
	if err != nil {
		return nil, err
	}
	m, err := expectation.NewModel(lambda, down)
	if err != nil {
		return nil, err
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return nil, err
	}
	dp, err := core.SolveChainDP(cp)
	if err != nil {
		return nil, err
	}
	meanC := 0.0
	for _, c := range cp.Ckpt {
		meanC += c
	}
	meanC /= float64(len(cp.Ckpt))

	p := &Plan{}

	// Table 1: paired adaptive-vs-static campaign under drifting store
	// latency. Both arms run the SAME resilience machinery (retry policy,
	// health tracking, overhead accounting) on logically-keyed fault
	// stacks sharing plan and failure seeds; the only difference is that
	// the static arm has no Replanner. The paired per-run makespan delta
	// therefore isolates the value of online replanning.
	campRuns := cfg.Runs(600, 300)
	camp := p.AddTable(&result.Table{
		ID: "E19",
		Title: fmt.Sprintf("adaptive vs static under degraded stores: paired deltas over %d runs (chain n=%d, λ=%g, D=%g, mean C=%.3g)",
			campRuns, n, lambda, down, meanC),
		Columns: []string{
			"latency_mult", "runs", "static_mean", "adaptive_mean", "delta_mean", "delta_ci99", "replans_mean", "ci_excludes_0",
		},
	})
	type campOut struct {
		applicable bool // the acceptance claim covers mult >= 2 only
		improves   bool
	}
	for _, mult := range []float64{0, 2, 4} {
		mult := mult
		p.Job(camp, func(s *rng.Stream) (RowOut, error) {
			pol := exec.ExpBackoff{Base: 0.25 * meanC, Cap: meanC, MaxAttempts: 4}
			var static, adaptive, delta stats.Summary
			replans := 0
			for r := 0; r < campRuns; r++ {
				planSeed := s.Uint64()
				srcSeed := s.Uint64()
				fp := store.FaultPlan{
					Seed:        planSeed,
					WriteFail:   0.1,
					ReadFail:    0.05,
					MeanLatency: mult * meanC,
					LogicalKeys: true,
				}
				arm := func(replanner exec.Replanner) (*exec.Result, error) {
					w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
					if err != nil {
						return nil, err
					}
					return exec.Execute(w,
						exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, srcSeed, 1),
						exec.Options{
							RunID:    "camp",
							Store:    store.Checked(store.NewFaultStore(store.NewMemStore(), fp)),
							Downtime: down,
							Adaptive: &exec.AdaptiveOptions{
								Retry:       pol,
								Replanner:   replanner,
								ReplanRatio: 1.25,
								Cooldown:    2,
							},
						})
				}
				st, err := arm(nil)
				if err != nil {
					return RowOut{}, err
				}
				ad, err := arm(exec.ChainReplanner{CP: cp})
				if err != nil {
					return RowOut{}, err
				}
				static.Add(st.Makespan)
				adaptive.Add(ad.Makespan)
				delta.Add(st.Makespan - ad.Makespan)
				replans += ad.Replans
			}
			ci := delta.CI(0.99)
			excludes := delta.Mean()-ci > 0
			applicable := mult >= 2
			return RowOut{
				Cells: []result.Cell{
					result.Float(mult),
					result.Int(campRuns),
					result.Float(static.Mean()),
					result.Float(adaptive.Mean()),
					result.Float(delta.Mean()),
					result.Float(ci),
					result.Float(float64(replans) / float64(campRuns)),
					result.Bool(excludes),
				},
				Value: campOut{applicable: applicable, improves: excludes},
			}, nil
		})
	}

	// Table 2: chaos replay identity. Each drill builds a persistent
	// bottom layer (MemStore, optional secondary, optional quota ledger)
	// and rebuilds the logically-keyed fault wrapper per invocation, as a
	// process restart would. For every kill point: run a crash invocation
	// on a fresh stack, resume once, and demand the journal and metrics
	// match an uninterrupted reference bit-for-bit.
	drills := p.AddTable(&result.Table{
		ID:    "E19",
		Title: "chaos replay identity: adaptive executions killed at spread event points, resumed from the store",
		Columns: []string{
			"scenario", "store", "kill_points", "journal_events", "journal_identical", "metrics_identical",
		},
	})
	type identOut struct{ identical bool }
	type drill struct {
		name, storeTag string
		plan           store.FaultPlan
		quota          *store.Quota
		secondary      bool
		retry          exec.RetryPolicy
		replan         bool
	}
	scenarios := []drill{
		{
			name: "chain/drift-replan", storeTag: "mem+crc+faults",
			plan:   store.FaultPlan{Seed: 31, MeanLatency: 2.5, WriteFail: 0.2, ReadFail: 0.1, LogicalKeys: true},
			retry:  exec.ExpBackoff{Base: 0.5, Cap: 4, MaxAttempts: 5},
			replan: true,
		},
		{
			name: "chain/torn-writes", storeTag: "mem+crc+faults",
			plan:  store.FaultPlan{Seed: 32, MeanLatency: 1.5, WriteFail: 0.3, TornWrite: 0.2, LogicalKeys: true},
			retry: exec.FixedRetry{Attempts: 3},
		},
		{
			name: "chain/quota-down", storeTag: "mem+crc+faults+quota",
			plan:  store.FaultPlan{Seed: 33, MeanLatency: 1, LogicalKeys: true},
			quota: &store.Quota{MaxCheckpoints: 2},
			retry: exec.ExpBackoff{Base: 0.5, MaxAttempts: 3},
		},
		{
			name: "chain/failover", storeTag: "mem+crc+faults+secondary",
			plan:      store.FaultPlan{Seed: 34, WriteFail: 1, LogicalKeys: true},
			secondary: true,
			retry:     exec.FixedRetry{Attempts: 1},
		},
	}
	type stack struct {
		mem, sec *store.MemStore
		ledger   *store.QuotaLedger
	}
	newStack := func(d drill) *stack {
		a := &stack{mem: store.NewMemStore()}
		if d.secondary {
			a.sec = store.NewMemStore()
		}
		if d.quota != nil {
			a.ledger = store.NewQuotaLedger(*d.quota, nil)
		}
		return a
	}
	options := func(d drill, a *stack, crash int) exec.Options {
		var st store.Store = store.Checked(store.NewFaultStore(a.mem, d.plan))
		if a.ledger != nil {
			st = store.NewQuotaStore(a.ledger, st)
		}
		ao := &exec.AdaptiveOptions{
			Retry:         d.retry,
			ReplanRatio:   1.4,
			FailoverAfter: 2,
			DownAfter:     3,
		}
		if d.replan {
			ao.Replanner = exec.ChainReplanner{CP: cp}
		}
		if a.sec != nil {
			ao.Secondary = store.Checked(a.sec)
		}
		return exec.Options{
			RunID: "e19", Store: st, Downtime: down,
			CrashAfterEvents: crash, Adaptive: ao,
		}
	}
	for i, d := range scenarios {
		d, salt := d, uint64(i+1)
		p.Job(drills, func(s *rng.Stream) (RowOut, error) {
			src := func() exec.Source {
				return exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, 501, salt)
			}
			w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
			if err != nil {
				return RowOut{}, err
			}
			ref, err := exec.Execute(w, src(), options(d, newStack(d), 0))
			if err != nil {
				return RowOut{}, err
			}
			ne := len(ref.Journal)
			kills := []int{ne / 5, 2 * ne / 5, 3 * ne / 5, 4 * ne / 5}
			identical, metricsOK := true, true
			for _, kill := range kills {
				a := newStack(d)
				_, err := exec.Execute(w, src(), options(d, a, kill))
				if !errors.Is(err, exec.ErrCrashed) {
					return RowOut{}, fmt.Errorf("E19: %s kill point %d: want ErrCrashed, got %v", d.name, kill, err)
				}
				res, err := exec.Execute(w, src(), options(d, a, 0))
				if err != nil {
					return RowOut{}, fmt.Errorf("E19: %s resume after kill %d: %w", d.name, kill, err)
				}
				identical = identical && res.Journal.Equal(ref.Journal)
				metricsOK = metricsOK && res.Metrics == ref.Metrics &&
					res.Replans == ref.Replans && res.GiveUps == ref.GiveUps &&
					res.Level == ref.Level && res.MaxRewind == ref.MaxRewind
			}
			return RowOut{
				Cells: []result.Cell{
					result.Str(d.name),
					result.Str(d.storeTag),
					result.Int(len(kills)),
					result.Int(ne),
					result.Bool(identical),
					result.Bool(metricsOK),
				},
				Value: identOut{identical: identical && metricsOK},
			}, nil
		})
	}

	// Multi-tenant contention drill: four tenants share ONE
	// logically-keyed injector and ONE quota ledger, run concurrently,
	// and one tenant is killed mid-flight and resumed. Logical fault
	// keying makes every tenant's outcome a pure function of its own
	// operations, so each concurrent journal must equal the journal of
	// the same tenant run ALONE on a private stack.
	p.Job(drills, func(s *rng.Stream) (RowOut, error) {
		const tenants = 4
		fp := store.FaultPlan{Seed: 35, MeanLatency: 1.5, WriteFail: 0.15, LogicalKeys: true}
		quota := store.Quota{MaxCheckpoints: 3}
		opts := func(st store.Store, crash int) exec.Options {
			return exec.Options{
				Store: st, Downtime: down, CrashAfterEvents: crash,
				Adaptive: &exec.AdaptiveOptions{
					Retry:         exec.ExpBackoff{Base: 0.5, Cap: 2, MaxAttempts: 3},
					ReplanRatio:   1.4,
					Replanner:     exec.ChainReplanner{CP: cp},
					FailoverAfter: 2,
					DownAfter:     3,
				},
			}
		}
		src := func(i int) exec.Source {
			return exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, 601, uint64(i+1))
		}
		// Solo references: each tenant alone on a private stack. Quota
		// accounting is per tenant, so a private ledger admits exactly
		// what the shared one would.
		refs := make([]*exec.Result, tenants)
		for i := 0; i < tenants; i++ {
			w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
			if err != nil {
				return RowOut{}, err
			}
			st := store.NewQuotaStore(store.NewQuotaLedger(quota, nil),
				store.Checked(store.NewFaultStore(store.NewMemStore(), fp)))
			o := opts(st, 0)
			o.RunID = fmt.Sprintf("camp-t%d", i)
			refs[i], err = exec.Execute(w, src(i), o)
			if err != nil {
				return RowOut{}, err
			}
		}
		// Contention run: shared bottom layer, one wrapper stack per
		// invocation, all four tenants concurrent; tenant 0 is killed.
		mem := store.NewMemStore()
		ledger := store.NewQuotaLedger(quota, nil)
		shared := func() store.Store {
			return store.NewQuotaStore(ledger, store.Checked(store.NewFaultStore(mem, fp)))
		}
		results := make([]*exec.Result, tenants)
		errs := make([]error, tenants)
		st := shared()
		var wg sync.WaitGroup
		for i := 0; i < tenants; i++ {
			i := i
			wg.Add(1)
			go func() {
				defer wg.Done()
				w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
				if err != nil {
					errs[i] = err
					return
				}
				crash := 0
				if i == 0 {
					crash = len(refs[0].Journal) / 2
				}
				o := opts(st, crash)
				o.RunID = fmt.Sprintf("camp-t%d", i)
				results[i], errs[i] = exec.Execute(w, src(i), o)
			}()
		}
		wg.Wait()
		for i := 1; i < tenants; i++ {
			if errs[i] != nil {
				return RowOut{}, fmt.Errorf("E19: tenant %d: %w", i, errs[i])
			}
		}
		if !errors.Is(errs[0], exec.ErrCrashed) {
			return RowOut{}, fmt.Errorf("E19: tenant 0 kill: want ErrCrashed, got %v", errs[0])
		}
		// Resume the killed tenant on a rebuilt wrapper stack, as a
		// process restart would.
		w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
		if err != nil {
			return RowOut{}, err
		}
		o := opts(shared(), 0)
		o.RunID = "camp-t0"
		results[0], err = exec.Execute(w, src(0), o)
		if err != nil {
			return RowOut{}, fmt.Errorf("E19: tenant 0 resume: %w", err)
		}
		identical, metricsOK := true, true
		events := 0
		for i := 0; i < tenants; i++ {
			identical = identical && results[i].Journal.Equal(refs[i].Journal)
			metricsOK = metricsOK && results[i].Metrics == refs[i].Metrics
			events += len(results[i].Journal)
		}
		return RowOut{
			Cells: []result.Cell{
				result.Str(fmt.Sprintf("multi-tenant/contention×%d", tenants)),
				result.Str("mem+crc+faults+quota(shared)"),
				result.Int(1),
				result.Int(events),
				result.Bool(identical),
				result.Bool(metricsOK),
			},
			Value: identOut{identical: identical && metricsOK},
		}, nil
	})

	// Table 3: degradation-ladder trace — one execution per scenario,
	// pinning the ladder level the run ends at and the rewind exposure
	// it carried.
	ladder := p.AddTable(&result.Table{
		ID:    "E19",
		Title: "degradation ladder: final level, save give-ups and crash-rewind exposure per scenario",
		Columns: []string{
			"scenario", "saves", "give_ups", "replans", "level", "store_overhead", "max_rewind", "completed", "level_expected",
		},
	})
	type ladderOut struct{ ok bool }
	ladderDrills := []struct {
		name   string
		d      drill
		expect exec.DegradeLevel
	}{
		{
			name: "clean store",
			d: drill{
				plan:  store.FaultPlan{Seed: 41, LogicalKeys: true},
				retry: exec.ExpBackoff{Base: 0.5, MaxAttempts: 4},
			},
			expect: exec.LevelHealthy,
		},
		{
			name: "latency drift",
			d: drill{
				plan:   store.FaultPlan{Seed: 42, MeanLatency: 3, WriteFail: 0.2, LogicalKeys: true},
				retry:  exec.ExpBackoff{Base: 0.5, Cap: 4, MaxAttempts: 5},
				replan: true,
			},
			expect: exec.LevelDegraded,
		},
		{
			name: "primary dead, secondary alive",
			d: drill{
				plan:      store.FaultPlan{Seed: 43, WriteFail: 1, LogicalKeys: true},
				secondary: true,
				retry:     exec.FixedRetry{Attempts: 1},
			},
			expect: exec.LevelFailover,
		},
		{
			name: "primary dead, no secondary",
			d: drill{
				plan:  store.FaultPlan{Seed: 44, WriteFail: 1, LogicalKeys: true},
				retry: exec.FixedRetry{Attempts: 1},
			},
			expect: exec.LevelDown,
		},
		{
			name: "quota exhausted",
			d: drill{
				plan:  store.FaultPlan{Seed: 45, LogicalKeys: true},
				quota: &store.Quota{MaxBytes: 16},
				retry: exec.ExpBackoff{Base: 0.5, MaxAttempts: 4},
			},
			expect: exec.LevelDown,
		},
	}
	for i, ld := range ladderDrills {
		ld, salt := ld, uint64(100+i)
		p.Job(ladder, func(s *rng.Stream) (RowOut, error) {
			w, err := exec.NewChainWorkload(cp, dp.CheckpointAfter)
			if err != nil {
				return RowOut{}, err
			}
			res, err := exec.Execute(w,
				exec.NewKeyedSource(failure.Exponential{Lambda: lambda}, 701, salt),
				options(ld.d, newStack(ld.d), 0))
			if err != nil {
				return RowOut{}, err
			}
			ok := res.Level == ld.expect
			return RowOut{
				Cells: []result.Cell{
					result.Str(ld.name),
					result.Int(res.Saves),
					result.Int(res.GiveUps),
					result.Int(res.Replans),
					result.Str(res.Level.String()),
					result.Float(res.StoreOverhead),
					result.Float(res.MaxRewind),
					result.Bool(true),
					result.Bool(ok),
				},
				Value: ladderOut{ok: ok},
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allImprove, allIdent, allLadder := true, true, true
		for _, out := range outs {
			switch v := out.Value.(type) {
			case campOut:
				if v.applicable {
					allImprove = allImprove && v.improves
				}
			case identOut:
				allIdent = allIdent && v.identical
			case ladderOut:
				allLadder = allLadder && v.ok
			}
		}
		tables[camp].AddNote("acceptance: adaptive replanning strictly beats the static plan under store latency ≥ 2× planned C (paired 99%% CI of the delta excludes zero) → %s", yn(allImprove))
		tables[drills].AddNote("acceptance: every killed-and-resumed adaptive execution — retries, replans, quota faults and multi-tenant contention on a shared injector included — reproduced the uninterrupted journal and metrics bit-for-bit → %s", yn(allIdent))
		tables[ladder].AddNote("degradation ladder reached the expected level in every scenario → %s", yn(allLadder))
		return nil
	}
	return p, nil
}
