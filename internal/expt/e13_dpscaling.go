package expt

import (
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E13",
		Title: "DP scaling: segment-expectation kernel + exact pruning vs the dense O(n²) scan",
		Claim: "the kernel fast path returns the Proposition 3 optimum while evaluating a vanishing fraction of the n(n+1)/2 transitions, making large-n sweeps feasible",
	}, planE13)
}

// E13 measures the solver itself, not the paper's model, so its tables
// mix deterministic evidence with wall-clock measurements: the
// value-equality flags, checkpoint counts, and evaluated-transition
// counts reproduce bit-for-bit from the seed (the pruned scan is exact
// and deterministic), while the timing and speedup cells are volatile,
// like E7's. The kernel arm is pinned via SolveChainDPKernelStats so
// the table keeps measuring the scan (and stays byte-identical) now
// that SolveChainDP dispatches certified instances to the monotone arm
// — E16 covers the kernel-vs-monotone comparison.
func planE13(cfg Config) (*Plan, error) {
	sizes := []int{100, 1000, 2000, 5000, 10000, 20000}
	reps := 3
	if cfg.Quick {
		sizes = []int{100, 500, 2000}
		reps = 1
	}
	p := &Plan{}
	t := p.AddTable(&result.Table{
		ID:      "E13",
		Title:   "kernel-on vs kernel-off chain DP (λ=0.01, w∈[1,10]; best of repetitions)",
		Columns: []string{"n", "t_dense", "t_kernel", "speedup", "transitions", "dense_frac", "values_equal", "ckpts"},
	})
	for _, n := range sizes {
		n := n
		p.Job(t, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.01, 0.5)
			if err != nil {
				return RowOut{}, err
			}
			g, err := dag.Chain(n, dag.DefaultWeights(), s.Split())
			if err != nil {
				return RowOut{}, err
			}
			cp, _, err := core.NewChainProblem(g, m, 0)
			if err != nil {
				return RowOut{}, err
			}
			var tDense, tKernel time.Duration
			var dense, kernel core.ChainResult
			var stats core.DPStats
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				dense, err = core.SolveChainDPDense(cp)
				el := time.Since(start)
				if err != nil {
					return RowOut{}, err
				}
				if rep == 0 || el < tDense {
					tDense = el
				}
				start = time.Now()
				kernel, stats, err = core.SolveChainDPKernelStats(cp)
				el = time.Since(start)
				if err != nil {
					return RowOut{}, err
				}
				if rep == 0 || el < tKernel {
					tKernel = el
				}
			}
			equal := numeric.RelErr(kernel.Expected, dense.Expected) < 1e-9
			denseTransitions := int64(n) * int64(n+1) / 2
			frac := float64(stats.Transitions) / float64(denseTransitions)
			return RowOut{
				Cells: []result.Cell{
					result.Int(n), result.Dur(tDense), result.Dur(tKernel),
					result.FixedUnit(float64(tDense)/float64(tKernel), 1, "x").AsVolatile(),
					result.Int(int(stats.Transitions)), result.Fixed(frac, 4),
					result.Bool(equal), result.Int(len(kernel.Positions())),
				},
				Value: equal,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allEqual := true
		for j, job := range p.Jobs {
			if job.Table == t {
				allEqual = allEqual && outs[j].Value.(bool)
			}
		}
		tables[t].AddNote("kernel optimum equals the dense optimum on every size → %s", yn(allEqual))
		tables[t].AddNote("transitions and dense_frac are deterministic: pruning is exact, so the scan shape depends only on the instance")
		tables[t].AddNote("the dense arm is the seed Algorithm 1 loop (one exp + one expm1 per transition); the kernel arm fuses precomputed exponential tables and stops each row at the exact monotone bound")
		return nil
	}
	return p, nil
}
