package expt

import (
	"fmt"

	"repro/internal/expectation"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Experiment{
		ID:    "E1",
		Title: "Proposition 1 closed form vs Monte-Carlo simulation",
		Claim: "E[T(W,C,D,R,λ)] = e^{λR}(1/λ+D)(e^{λ(W+C)}−1) exactly (Prop. 1)",
		Run:   runE1,
	})
}

func runE1(cfg Config) ([]*Table, error) {
	runs := cfg.Runs(100_000, 4_000)
	seed := rng.New(cfg.Seed)
	t := &Table{
		ID:    "E1",
		Title: fmt.Sprintf("closed form vs simulation (%d runs/cell, 99.9%% CI)", runs),
		Columns: []string{
			"W", "C", "D", "R", "lambda", "E_closed", "E_sim", "CI(99.9%)", "rel_err", "inCI",
		},
	}
	type cell struct{ w, c, d, r, lambda float64 }
	cells := []cell{
		{1, 0.1, 0, 0.1, 0.01},
		{10, 0.5, 0, 0.5, 0.01},
		{10, 1, 1, 1, 0.05},
		{10, 1, 2, 3, 0.05},
		{24, 0.25, 0.1, 0.25, 0.002},
		{96, 0.5, 1, 0.5, 0.001},
		{100, 5, 1, 5, 0.01},
		{1, 0.1, 0.1, 0.1, 1.0},
		{50, 2, 0.5, 2, 0.002},
		{5, 0.05, 0, 0.05, 0.2},
		{500, 10, 5, 10, 0.001},
		{2, 0.5, 0.5, 0.25, 0.1},
	}
	allIn := true
	var worst float64
	for _, c := range cells {
		m, err := expectation.NewModel(c.lambda, c.d)
		if err != nil {
			return nil, err
		}
		closed := m.ExpectedTime(c.w, c.c, c.r)
		est, err := sim.EstimateExpectedTime(c.w, c.c, c.d, c.r, c.lambda, runs, seed.Split())
		if err != nil {
			return nil, err
		}
		rel := numeric.RelErr(est.Mean(), closed)
		in := est.Contains(closed, 0.999)
		if !in {
			allIn = false
		}
		if rel > worst {
			worst = rel
		}
		t.AddRow(fm(c.w), fm(c.c), fm(c.d), fm(c.r), fm(c.lambda),
			fm(closed), fm(est.Mean()), fe(est.CI(0.999)), fe(rel), fb(in))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("pass: every closed-form value inside the simulated 99.9%% CI → %s", fb(allIn)),
		fmt.Sprintf("worst relative error %.2e (shrinks as 1/sqrt(runs))", worst),
	)
	return []*Table{t}, nil
}
