package expt

import (
	"fmt"

	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/numeric"
	"repro/internal/rng"
	"repro/internal/sim"
)

func init() {
	register(Info{
		ID:    "E1",
		Title: "Proposition 1 closed form vs Monte-Carlo simulation",
		Claim: "E[T(W,C,D,R,λ)] = e^{λR}(1/λ+D)(e^{λ(W+C)}−1) exactly (Prop. 1)",
	}, planE1)
}

func planE1(cfg Config) (*Plan, error) {
	runs := cfg.Runs(100_000, 4_000)
	p := &Plan{}
	tab := p.AddTable(&result.Table{
		ID:    "E1",
		Title: fmt.Sprintf("closed form vs simulation (%d runs/cell, 99.9%% CI)", runs),
		Columns: []string{
			"W", "C", "D", "R", "lambda", "E_closed", "E_sim", "CI(99.9%)", "rel_err", "inCI",
		},
	})
	type cell struct{ w, c, d, r, lambda float64 }
	cells := []cell{
		{1, 0.1, 0, 0.1, 0.01},
		{10, 0.5, 0, 0.5, 0.01},
		{10, 1, 1, 1, 0.05},
		{10, 1, 2, 3, 0.05},
		{24, 0.25, 0.1, 0.25, 0.002},
		{96, 0.5, 1, 0.5, 0.001},
		{100, 5, 1, 5, 0.01},
		{1, 0.1, 0.1, 0.1, 1.0},
		{50, 2, 0.5, 2, 0.002},
		{5, 0.05, 0, 0.05, 0.2},
		{500, 10, 5, 10, 0.001},
		{2, 0.5, 0.5, 0.25, 0.1},
	}
	type verdict struct {
		rel float64
		in  bool
	}
	for _, c := range cells {
		c := c
		p.Job(tab, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(c.lambda, c.d)
			if err != nil {
				return RowOut{}, err
			}
			closed := m.ExpectedTime(c.w, c.c, c.r)
			est, err := sim.EstimateExpectedTime(c.w, c.c, c.d, c.r, c.lambda, runs, s)
			if err != nil {
				return RowOut{}, err
			}
			rel := numeric.RelErr(est.Mean(), closed)
			in := est.Contains(closed, 0.999)
			return RowOut{
				Cells: []result.Cell{
					result.Float(c.w), result.Float(c.c), result.Float(c.d), result.Float(c.r), result.Float(c.lambda),
					result.Float(closed), result.Float(est.Mean()), result.Sci(est.CI(0.999)), result.Sci(rel), result.Bool(in),
				},
				Value: verdict{rel: rel, in: in},
			}, nil
		})
	}
	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allIn := true
		var worst float64
		for _, o := range outs {
			v := o.Value.(verdict)
			allIn = allIn && v.in
			if v.rel > worst {
				worst = v.rel
			}
		}
		tables[tab].AddNote("pass: every closed-form value inside the simulated 99.9%% CI → %s", yn(allIn))
		tables[tab].AddNote("worst relative error %.2e (shrinks as 1/sqrt(runs))", worst)
		return nil
	}
	return p, nil
}
