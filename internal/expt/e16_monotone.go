package expt

import (
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E16",
		Title: "Monotone-matrix DP vs the kernel scan: exact chain placement to n = 1,000,000",
		Claim: "on quadrangle-certified instances the totally-monotone arm returns the identical Proposition 3 optimum in O(n log n) oracle evaluations, opening chains three orders of magnitude past E13's sweep",
	}, planE16)
}

// E16 extends E13's solver study to the monotone-matrix arm. Like E13
// it mixes deterministic evidence with wall-clock cells: oracle
// evaluation counts, equality flags, optima and checkpoint counts
// reproduce bit-for-bit from the seed (both arms are deterministic and
// the certificate depends only on the instance), while timings and
// speedups are volatile. The kernel arm is pinned via
// SolveChainDPKernelStats and the monotone arm via
// SolveChainDPMonotoneStats, so the table measures the arms themselves
// rather than the dispatcher. Two failure regimes are swept because the
// kernel scan's pruned row length grows like log(n)/λw̄ — the rarer the
// failures, the further ahead each row must look, and the larger the
// monotone arm's win.
func planE16(cfg Config) (*Plan, error) {
	type combo struct {
		lambda float64
		n      int
	}
	sizes := []int{20000, 50000, 200000}
	denseN := 20000
	bigN := 1000000
	reps := 2
	if cfg.Quick {
		sizes = []int{2000, 10000}
		denseN = 2000
		bigN = 100000
		reps = 1
	}
	lambdas := []float64{0.01, 0.001}
	p := &Plan{}

	arms := p.AddTable(&result.Table{
		ID:      "E16",
		Title:   "monotone vs kernel arm (w∈[1,10], C∈[0.05,0.5]; best of repetitions)",
		Columns: []string{"mtbf", "n", "t_kernel", "t_monotone", "speedup", "evals_kernel", "evals_monotone", "eval_ratio", "identical", "ckpts", "certified"},
	})
	var combos []combo
	for _, lambda := range lambdas {
		for _, n := range sizes {
			combos = append(combos, combo{lambda, n})
		}
	}
	for _, cb := range combos {
		cb := cb
		p.Job(arms, func(s *rng.Stream) (RowOut, error) {
			cp, err := e16Problem(cb.lambda, cb.n, s)
			if err != nil {
				return RowOut{}, err
			}
			var tKern, tMono time.Duration
			var kern, mono core.ChainResult
			var kstats, mstats core.DPStats
			for rep := 0; rep < reps; rep++ {
				start := time.Now()
				kern, kstats, err = core.SolveChainDPKernelStats(cp)
				el := time.Since(start)
				if err != nil {
					return RowOut{}, err
				}
				if rep == 0 || el < tKern {
					tKern = el
				}
				start = time.Now()
				mono, mstats, err = core.SolveChainDPMonotoneStats(cp)
				el = time.Since(start)
				if err != nil {
					return RowOut{}, err
				}
				if rep == 0 || el < tMono {
					tMono = el
				}
			}
			identical := kern.Expected == mono.Expected && samePlacement(kern, mono)
			return RowOut{
				Cells: []result.Cell{
					result.Float(1 / cb.lambda), result.Int(cb.n),
					result.Dur(tKern), result.Dur(tMono),
					result.FixedUnit(float64(tKern)/float64(tMono), 1, "x").AsVolatile(),
					result.Int(int(kstats.Transitions)), result.Int(int(mstats.Transitions)),
					result.FixedUnit(float64(kstats.Transitions)/float64(mstats.Transitions), 1, "x"),
					result.Bool(identical), result.Int(len(mono.Positions())),
					result.Bool(mstats.Certified),
				},
				Value: identical,
			}, nil
		})
	}

	dense := p.AddTable(&result.Table{
		ID:      "E16",
		Title:   "dense anchor: the seed O(n²) loop vs both kernel-backed arms",
		Columns: []string{"mtbf", "n", "t_dense", "t_kernel", "t_monotone", "dense/monotone", "values_equal"},
	})
	for _, lambda := range lambdas {
		lambda := lambda
		p.Job(dense, func(s *rng.Stream) (RowOut, error) {
			cp, err := e16Problem(lambda, denseN, s)
			if err != nil {
				return RowOut{}, err
			}
			start := time.Now()
			den, err := core.SolveChainDPDense(cp)
			tDense := time.Since(start)
			if err != nil {
				return RowOut{}, err
			}
			start = time.Now()
			kern, err := core.SolveChainDPKernel(cp)
			tKern := time.Since(start)
			if err != nil {
				return RowOut{}, err
			}
			start = time.Now()
			mono, err := core.SolveChainDPMonotone(cp)
			tMono := time.Since(start)
			if err != nil {
				return RowOut{}, err
			}
			equal := mono.Expected == den.Expected && kern.Expected == den.Expected
			return RowOut{
				Cells: []result.Cell{
					result.Float(1 / lambda), result.Int(denseN),
					result.Dur(tDense), result.Dur(tKern), result.Dur(tMono),
					result.FixedUnit(float64(tDense)/float64(tMono), 1, "x").AsVolatile(),
					result.Bool(equal),
				},
				Value: equal,
			}, nil
		})
	}

	million := p.AddTable(&result.Table{
		ID:      "E16",
		Title:   "frontier solve: the monotone arm alone (the kernel scan is off the time budget here)",
		Columns: []string{"mtbf", "n", "t_monotone", "evals", "evals/n", "ckpts", "E_opt", "certified"},
	})
	for _, lambda := range lambdas {
		lambda := lambda
		p.Job(million, func(s *rng.Stream) (RowOut, error) {
			cp, err := e16Problem(lambda, bigN, s)
			if err != nil {
				return RowOut{}, err
			}
			start := time.Now()
			mono, stats, err := core.SolveChainDPMonotoneStats(cp)
			tMono := time.Since(start)
			if err != nil {
				return RowOut{}, err
			}
			return RowOut{
				Cells: []result.Cell{
					result.Float(1 / lambda), result.Int(bigN),
					result.Dur(tMono), result.Int(int(stats.Transitions)),
					result.Fixed(float64(stats.Transitions)/float64(bigN), 2),
					result.Int(len(mono.Positions())), result.Float(mono.Expected),
					result.Bool(stats.Certified),
				},
				Value: true,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allIdentical := true
		for j, job := range p.Jobs {
			if job.Table == arms || job.Table == dense {
				allIdentical = allIdentical && outs[j].Value.(bool)
			}
		}
		tables[arms].AddNote("monotone optimum and placement identical to the kernel arm on every row → %s", yn(allIdentical))
		tables[arms].AddNote("evals and eval_ratio are deterministic: both arms' scan shapes depend only on the instance, and the certificate is instance-only")
		tables[arms].AddNote("the kernel row scan must look ~log(n·λ·w̄)/λw̄ candidates ahead before its exact bound fires, so its advantage shrinks as failures get rarer; the monotone arm pays O(log) per row regardless")
		tables[million].AddNote("the pruned kernel scan would evaluate two to three orders of magnitude more transitions here (extrapolating the evals_kernel column above); the monotone arm keeps the frontier solve interactive")
		return nil
	}
	return p, nil
}

// e16Problem builds the E13-family workload at the given failure rate.
func e16Problem(lambda float64, n int, s *rng.Stream) (*core.ChainProblem, error) {
	m, err := expectation.NewModel(lambda, 0.5)
	if err != nil {
		return nil, err
	}
	g, err := dag.Chain(n, dag.DefaultWeights(), s.Split())
	if err != nil {
		return nil, err
	}
	cp, _, err := core.NewChainProblem(g, m, 0)
	if err != nil {
		return nil, err
	}
	return cp, nil
}

// samePlacement reports whether two chain results checkpoint after the
// same positions.
func samePlacement(a, b core.ChainResult) bool {
	if len(a.CheckpointAfter) != len(b.CheckpointAfter) {
		return false
	}
	for i := range a.CheckpointAfter {
		if a.CheckpointAfter[i] != b.CheckpointAfter[i] {
			return false
		}
	}
	return true
}
