package expt

import (
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/numeric"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E3",
		Title: "Comparators: Daly's order approximations and the Bouguerra et al. formula",
		Claim: "Prop. 1 is exact where Daly gives 1st/2nd-order approximations and [12] is inaccurate (it charges a recovery to the first attempt)",
	}, planE3)
}

func planE3(cfg Config) (*Plan, error) {
	p := &Plan{}

	// Table 1: relative error of the approximations as λ(W+C) grows.
	approx := p.AddTable(&result.Table{
		ID:      "E3",
		Title:   "relative error vs exact E[T] as x = λ(W+C) grows (W=10 C=1 R=1 D=0.5)",
		Columns: []string{"x=λ(W+C)", "E_exact", "err_1st_order", "err_2nd_order", "err_always_recover"},
	})
	const w, c, r, d = 10.0, 1.0, 1.0, 0.5
	type approxOut struct{ e1, e2 float64 }
	for _, x := range []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2, 4} {
		x := x
		p.Job(approx, func(s *rng.Stream) (RowOut, error) {
			lambda := x / (w + c)
			m, err := expectation.NewModel(lambda, d)
			if err != nil {
				return RowOut{}, err
			}
			exact := m.ExpectedTime(w, c, r)
			e1 := numeric.RelErr(m.FirstOrderExpectation(w, c, r), exact)
			e2 := numeric.RelErr(m.SecondOrderExpectation(w, c, r), exact)
			eb := numeric.RelErr(m.ExpectedTimeAlwaysRecover(w, c, r), exact)
			return RowOut{
				Cells: []result.Cell{
					result.Sci(x), result.Float(exact), result.Sci(e1), result.Sci(e2), result.Sci(eb),
				},
				Value: approxOut{e1: e1, e2: e2},
			}, nil
		})
	}

	// Table 2: the always-recover error grows with λR at fixed work.
	bt := p.AddTable(&result.Table{
		ID:      "E3",
		Title:   "always-recover ([12]) overestimate vs λR (W=10 C=1 D=0, λ=0.05)",
		Columns: []string{"R", "λR", "E_exact", "E_alwaysrec", "overestimate_%"},
	})
	for _, rr := range []float64{0, 0.5, 1, 2, 5, 10, 20} {
		rr := rr
		p.Job(bt, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(0.05, 0)
			if err != nil {
				return RowOut{}, err
			}
			exact := m.ExpectedTime(10, 1, rr)
			flawed := m.ExpectedTimeAlwaysRecover(10, 1, rr)
			over := (flawed - exact) / exact * 100
			return RowOut{
				Cells: []result.Cell{
					result.Float(rr), result.Float(0.05 * rr), result.Float(exact),
					result.Float(flawed), result.Fixed(over, 3),
				},
				Value: over,
			}, nil
		})
	}

	// Table 3: period selection — Young and Daly periods vs the exact
	// Lambert-W optimum for a divisible load.
	per := p.AddTable(&result.Table{
		ID:      "E3",
		Title:   "divisible load W=1000, R=C, D=0: periods and resulting makespans",
		Columns: []string{"C", "lambda", "T_young", "T_daly", "W*_lambert", "E_young", "E_daly", "E_opt", "young/opt", "daly/opt"},
	})
	for _, pc := range []struct{ c, lambda float64 }{
		{0.1, 1e-3}, {1, 1e-3}, {10, 1e-3}, {1, 1e-2}, {1, 1e-1}, {5, 1e-2},
	} {
		pc := pc
		p.Job(per, func(s *rng.Stream) (RowOut, error) {
			m, err := expectation.NewModel(pc.lambda, 0)
			if err != nil {
				return RowOut{}, err
			}
			young := expectation.YoungPeriod(pc.c, pc.lambda)
			daly := expectation.DalyPeriod(pc.c, pc.lambda)
			chunk, err := expectation.OptimalChunk(pc.c, pc.lambda)
			if err != nil {
				return RowOut{}, err
			}
			const wTotal = 1000.0
			eYoung := m.PeriodMakespan(wTotal, pc.c, pc.c, young)
			eDaly := m.PeriodMakespan(wTotal, pc.c, pc.c, daly)
			_, eOpt, err := m.OptimalChunkCount(wTotal, pc.c, pc.c)
			if err != nil {
				return RowOut{}, err
			}
			ry := eYoung / eOpt
			rd := eDaly / eOpt
			return RowOut{
				Cells: []result.Cell{
					result.Float(pc.c), result.Float(pc.lambda), result.Float(young), result.Float(daly), result.Float(chunk),
					result.Float(eYoung), result.Float(eDaly), result.Float(eOpt), result.Fixed(ry, 4), result.Fixed(rd, 4),
				},
				Value: rd,
			}, nil
		})
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		ordered := true
		growing := true
		var prev1, prev2 float64
		allClose := true
		mono := true
		prevOver := -1.0
		first := true
		for j, job := range p.Jobs {
			switch job.Table {
			case approx:
				v := outs[j].Value.(approxOut)
				if v.e2 > v.e1+1e-15 {
					ordered = false
				}
				if !first && (v.e1 < prev1 || v.e2 < prev2) {
					growing = false
				}
				prev1, prev2 = v.e1, v.e2
				first = false
			case bt:
				over := outs[j].Value.(float64)
				if over < prevOver-1e-12 {
					mono = false
				}
				prevOver = over
			case per:
				if outs[j].Value.(float64) > 1.05 {
					allClose = false
				}
			}
		}
		tables[approx].AddNote("2nd order at least as accurate as 1st everywhere → %s", yn(ordered))
		tables[approx].AddNote("approximation errors grow with λ(W+C) → %s", yn(growing))
		tables[approx].AddNote("always-recover error is strictly positive for R > 0: the first attempt pays a recovery it does not need")
		tables[bt].AddNote("overestimate is 0 at R=0 and grows with λR → %s", yn(mono))
		tables[per].AddNote("Daly's period within 5%% of the exact optimum across the sweep → %s", yn(allClose))
		tables[per].AddNote("Young's simpler period degrades faster as λC grows")
		return nil
	}
	return p, nil
}
