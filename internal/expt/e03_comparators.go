package expt

import (
	"fmt"
	"math"

	"repro/internal/expectation"
	"repro/internal/numeric"
)

func init() {
	register(Experiment{
		ID:    "E3",
		Title: "Comparators: Daly's order approximations and the Bouguerra et al. formula",
		Claim: "Prop. 1 is exact where Daly gives 1st/2nd-order approximations and [12] is inaccurate (it charges a recovery to the first attempt)",
		Run:   runE3,
	})
}

func runE3(cfg Config) ([]*Table, error) {
	// Table 1: relative error of the approximations as λ(W+C) grows.
	approx := &Table{
		ID:      "E3",
		Title:   "relative error vs exact E[T] as x = λ(W+C) grows (W=10 C=1 R=1 D=0.5)",
		Columns: []string{"x=λ(W+C)", "E_exact", "err_1st_order", "err_2nd_order", "err_always_recover"},
	}
	const w, c, r, d = 10.0, 1.0, 1.0, 0.5
	var prev1, prev2 float64
	ordered := true
	growing := true
	for _, x := range []float64{1e-4, 1e-3, 1e-2, 0.1, 0.5, 1, 2, 4} {
		lambda := x / (w + c)
		m, err := expectation.NewModel(lambda, d)
		if err != nil {
			return nil, err
		}
		exact := m.ExpectedTime(w, c, r)
		e1 := numeric.RelErr(m.FirstOrderExpectation(w, c, r), exact)
		e2 := numeric.RelErr(m.SecondOrderExpectation(w, c, r), exact)
		eb := numeric.RelErr(m.ExpectedTimeAlwaysRecover(w, c, r), exact)
		if e2 > e1+1e-15 {
			ordered = false
		}
		if e1 < prev1 || e2 < prev2 {
			growing = false
		}
		prev1, prev2 = e1, e2
		approx.AddRow(fe(x), fm(exact), fe(e1), fe(e2), fe(eb))
	}
	approx.Notes = append(approx.Notes,
		fmt.Sprintf("2nd order at least as accurate as 1st everywhere → %s", fb(ordered)),
		fmt.Sprintf("approximation errors grow with λ(W+C) → %s", fb(growing)),
		"always-recover error is strictly positive for R > 0: the first attempt pays a recovery it does not need",
	)

	// Table 2: the always-recover error grows with λR at fixed work.
	bt := &Table{
		ID:      "E3",
		Title:   "always-recover ([12]) overestimate vs λR (W=10 C=1 D=0, λ=0.05)",
		Columns: []string{"R", "λR", "E_exact", "E_alwaysrec", "overestimate_%"},
	}
	m, err := expectation.NewModel(0.05, 0)
	if err != nil {
		return nil, err
	}
	mono := true
	prevOver := -1.0
	for _, rr := range []float64{0, 0.5, 1, 2, 5, 10, 20} {
		exact := m.ExpectedTime(10, 1, rr)
		flawed := m.ExpectedTimeAlwaysRecover(10, 1, rr)
		over := (flawed - exact) / exact * 100
		if over < prevOver-1e-12 {
			mono = false
		}
		prevOver = over
		bt.AddRow(fm(rr), fm(0.05*rr), fm(exact), fm(flawed), fmt.Sprintf("%.3f", over))
	}
	bt.Notes = append(bt.Notes,
		fmt.Sprintf("overestimate is 0 at R=0 and grows with λR → %s", fb(mono)),
	)

	// Table 3: period selection — Young and Daly periods vs the exact
	// Lambert-W optimum for a divisible load.
	per := &Table{
		ID:      "E3",
		Title:   "divisible load W=1000, R=C, D=0: periods and resulting makespans",
		Columns: []string{"C", "lambda", "T_young", "T_daly", "W*_lambert", "E_young", "E_daly", "E_opt", "young/opt", "daly/opt"},
	}
	allClose := true
	for _, pc := range []struct{ c, lambda float64 }{
		{0.1, 1e-3}, {1, 1e-3}, {10, 1e-3}, {1, 1e-2}, {1, 1e-1}, {5, 1e-2},
	} {
		m, err := expectation.NewModel(pc.lambda, 0)
		if err != nil {
			return nil, err
		}
		young := expectation.YoungPeriod(pc.c, pc.lambda)
		daly := expectation.DalyPeriod(pc.c, pc.lambda)
		chunk, err := expectation.OptimalChunk(pc.c, pc.lambda)
		if err != nil {
			return nil, err
		}
		const wTotal = 1000.0
		eYoung := m.PeriodMakespan(wTotal, pc.c, pc.c, young)
		eDaly := m.PeriodMakespan(wTotal, pc.c, pc.c, daly)
		_, eOpt, err := m.OptimalChunkCount(wTotal, pc.c, pc.c)
		if err != nil {
			return nil, err
		}
		ry := eYoung / eOpt
		rd := eDaly / eOpt
		if rd > 1.05 {
			allClose = false
		}
		per.AddRow(fm(pc.c), fm(pc.lambda), fm(young), fm(daly), fm(chunk),
			fm(eYoung), fm(eDaly), fm(eOpt), fmt.Sprintf("%.4f", ry), fmt.Sprintf("%.4f", rd))
	}
	per.Notes = append(per.Notes,
		fmt.Sprintf("Daly's period within 5%% of the exact optimum across the sweep → %s", fb(allClose)),
		"Young's simpler period degrades faster as λC grows",
	)

	_ = math.Pi // keep math import if note formulas change
	return []*Table{approx, bt, per}, nil
}
