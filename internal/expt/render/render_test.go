package render

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"repro/internal/expt/result"
)

func TestText(t *testing.T) {
	tb := &result.Table{
		ID: "T", Title: "demo",
		Columns: []string{"a", "bbbb"},
	}
	tb.AddRow(result.Int(1), result.Int(2))
	tb.AddRow(result.Int(333), result.Int(4))
	tb.AddNote("a note")
	var buf bytes.Buffer
	if err := Text(&buf, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== T: demo ==", "a    bbbb", "333  4", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
}

func TestCSV(t *testing.T) {
	tb := &result.Table{ID: "T", Title: "demo", Columns: []string{"x", "y"}}
	tb.AddRow(result.Int(1), result.Str("has,comma"))
	tb.AddRow(result.Str(`q"uote`), result.Int(2))
	var buf bytes.Buffer
	if err := CSV(&buf, tb); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"has,comma"`) {
		t.Errorf("comma cell not quoted:\n%s", out)
	}
	if !strings.Contains(out, `"q""uote"`) {
		t.Errorf("quote cell not escaped:\n%s", out)
	}
}

func TestJSON(t *testing.T) {
	tb := &result.Table{ID: "E1", Title: "demo", Columns: []string{"x"}}
	tb.AddRow(result.Float(1.5))
	var buf bytes.Buffer
	err := JSON(&buf, []Suite{{ID: "E1", Title: "t", Claim: "c", Tables: []*result.Table{tb}}})
	if err != nil {
		t.Fatal(err)
	}
	var got []struct {
		ID     string `json:"id"`
		Claim  string `json:"claim"`
		Tables []struct {
			Columns []string `json:"columns"`
		} `json:"tables"`
	}
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 1 || got[0].ID != "E1" || got[0].Claim != "c" || len(got[0].Tables) != 1 {
		t.Errorf("unexpected JSON: %s", buf.String())
	}
}

func TestFingerprintMasksVolatile(t *testing.T) {
	mk := func(d time.Duration, stable float64) []*result.Table {
		tb := &result.Table{ID: "T", Title: "demo", Columns: []string{"time", "value"}}
		tb.AddRow(result.Dur(d), result.Float(stable))
		tb.AddVolatileNote("took %s", d)
		tb.AddNote("stable note")
		return []*result.Table{tb}
	}
	a := Fingerprint(mk(time.Second, 1.5))
	b := Fingerprint(mk(3*time.Minute, 1.5))
	if a != b {
		t.Errorf("fingerprints differ only in volatile content:\n%s\nvs\n%s", a, b)
	}
	c := Fingerprint(mk(time.Second, 2.5))
	if a == c {
		t.Error("fingerprint ignored a stable cell change")
	}
	if !strings.Contains(a, "stable note") {
		t.Errorf("stable note missing from fingerprint:\n%s", a)
	}
}

// Row metadata never reaches the text renderer, but it does reach the
// JSON output — so the fingerprint must cover it.
func TestFingerprintCoversMeta(t *testing.T) {
	mk := func(regime string) []*result.Table {
		tb := &result.Table{ID: "T", Title: "demo", Columns: []string{"v"}}
		tb.AddRowMeta(map[string]string{"regime": regime, "z": "1"}, result.Float(2))
		return []*result.Table{tb}
	}
	a := Fingerprint(mk("practical"))
	b := Fingerprint(mk("supercritical"))
	if a == b {
		t.Error("fingerprint ignored a row-meta change")
	}
	if !strings.Contains(a, "meta[0]: regime=practical z=1") {
		t.Errorf("meta not rendered deterministically:\n%s", a)
	}
	var text bytes.Buffer
	if err := Text(&text, mk("practical")[0]); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(text.String(), "regime") {
		t.Error("Text unexpectedly renders meta (golden outputs would change)")
	}
}
