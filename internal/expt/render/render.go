// Package render turns typed experiment results (internal/expt/result)
// into output formats: aligned plain text, CSV, and JSON. Rendering is a
// separate step from running experiments so the same typed tables can be
// printed, diffed, or machine-consumed without re-running anything.
//
// Fingerprint is the determinism probe: it renders tables with volatile
// (wall-clock) content masked, so two runs of the same seed — serial or
// parallel, any worker count — must produce identical fingerprints (see
// DESIGN.md's determinism contract).
package render

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"repro/internal/expt/result"
)

// Text writes the table as aligned plain text, the chkptbench default.
func Text(w io.Writer, t *result.Table) error {
	if _, err := fmt.Fprintf(w, "== %s: %s ==\n", t.ID, t.Title); err != nil {
		return err
	}
	cells := func(r result.Row) []string {
		out := make([]string, len(r.Cells))
		for i, c := range r.Cells {
			out[i] = c.String()
		}
		return out
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range cells(row) {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cs []string) string {
		var b strings.Builder
		for i, cell := range cs {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			if pad := widths[i] - len(cell); pad > 0 && i < len(cs)-1 {
				b.WriteString(strings.Repeat(" ", pad))
			}
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	total := 0
	for _, wd := range widths {
		total += wd + 2
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", total)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(cells(row))); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n.Text); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (quoting cells that
// contain commas, quotes, or newlines).
func CSV(w io.Writer, t *result.Table) error {
	quote := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	writeRow := func(cs []string) error {
		qs := make([]string, len(cs))
		for i, c := range cs {
			qs[i] = quote(c)
		}
		_, err := fmt.Fprintln(w, strings.Join(qs, ","))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		cs := make([]string, len(row.Cells))
		for i, c := range row.Cells {
			cs[i] = c.String()
		}
		if err := writeRow(cs); err != nil {
			return err
		}
	}
	return nil
}

// Suite is one experiment's identity plus its rendered-ready tables; the
// JSON format is a list of these.
type Suite struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Claim  string          `json:"claim"`
	Tables []*result.Table `json:"tables"`
}

// JSON writes the suites as an indented JSON array.
func JSON(w io.Writer, suites []Suite) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(suites)
}

// masked is the placeholder printed for volatile content in fingerprints.
const masked = "<volatile>"

// Fingerprint renders the tables as text with every volatile cell and
// note replaced by a fixed placeholder, then appends each row's
// metadata in sorted-key order (Text ignores Meta, but the determinism
// contract covers it — it surfaces in the JSON output). Two runs with
// the same seed must produce equal fingerprints regardless of worker
// count; runs whose tables contain no volatile content must in fact be
// byte-identical in full (tested in internal/expt/engine).
func Fingerprint(tables []*result.Table) string {
	var b strings.Builder
	for _, t := range tables {
		m := &result.Table{ID: t.ID, Title: t.Title, Columns: t.Columns}
		for _, row := range t.Rows {
			cs := make([]result.Cell, len(row.Cells))
			for i, c := range row.Cells {
				if c.Volatile {
					cs[i] = result.Str(masked)
				} else {
					cs[i] = c
				}
			}
			m.Rows = append(m.Rows, result.Row{Cells: cs})
		}
		for _, n := range t.Notes {
			if n.Volatile {
				n.Text = masked
			}
			m.Notes = append(m.Notes, n)
		}
		if err := Text(&b, m); err != nil {
			// strings.Builder never errors; keep the signature honest.
			fmt.Fprintf(&b, "render error: %v\n", err)
		}
		for i, row := range t.Rows {
			if len(row.Meta) == 0 {
				continue
			}
			keys := make([]string, 0, len(row.Meta))
			for k := range row.Meta {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			fmt.Fprintf(&b, "meta[%d]:", i)
			for _, k := range keys {
				fmt.Fprintf(&b, " %s=%s", k, row.Meta[k])
			}
			fmt.Fprintln(&b)
		}
	}
	return b.String()
}
