package expt

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/dag"
	"repro/internal/expectation"
	"repro/internal/expt/result"
	"repro/internal/rng"
)

func init() {
	register(Info{
		ID:    "E15",
		Title: "Exact DAG scheduling over the downset lattice vs factorial order enumeration",
		Claim: "the lattice DP returns the bit-identical global optimum while storing exponentially fewer states than there are linearizations, reaching sizes where order enumeration is infeasible and exposing the true optimality gap of the Prop. 2 heuristics",
	}, planE15)
}

// E15InfeasibleOrders is the linear-extension count past which the
// factorial arm is declared infeasible outright (the acceptance bar:
// exact solves where enumeration would visit > 10¹⁰ orders).
const E15InfeasibleOrders = 1e10

// E15Graph builds one scaling-sweep workload: a linear chain (the
// degenerate one-order case), a 3-branch in-tree (reduction shape,
// factorially many interleavings, polynomially many downsets), or a
// G(n, 0.3) random order DAG. n must be ≥ 4; in-tree sizes round to
// 3·depth + 1. Shared with cmd/benchtraj so the recorded benchmark
// trajectory measures exactly the experiment's workloads.
func E15Graph(family string, n int, s *rng.Stream) (*dag.Graph, error) {
	switch family {
	case "chain":
		return dag.Chain(n, dag.DefaultWeights(), s)
	case "in-tree":
		depth := (n - 1) / 3
		if depth < 1 {
			depth = 1
		}
		return dag.IntreeFromChains(3, depth, dag.DefaultWeights(), s)
	case "gnp":
		return dag.GNP(n, 0.3, dag.DefaultWeights(), s)
	}
	return nil, fmt.Errorf("expt: unknown E15 family %q", family)
}

// E15Model returns the failure model of the scaling sweep.
func E15Model() (expectation.Model, error) { return expectation.NewModel(0.02, 1) }

// e15Case is one row of the sweep.
type e15Case struct {
	family string
	n      int
}

func planE15(cfg Config) (*Plan, error) {
	cases := []e15Case{
		{"chain", 12}, {"chain", 20},
		{"in-tree", 10}, {"in-tree", 16}, {"in-tree", 22}, {"in-tree", 28},
		{"gnp", 10}, {"gnp", 16}, {"gnp", 20}, {"gnp", 24},
	}
	factorialBudget := 1e6 // enumerate when the order count is below this
	if cfg.Quick {
		cases = []e15Case{{"chain", 8}, {"in-tree", 10}, {"gnp", 10}}
		factorialBudget = 2e4
	}
	strategies := core.DefaultStrategies()

	p := &Plan{}
	cols := []string{"graph", "model", "n", "orders", "states", "transitions",
		"t_lattice", "t_factorial", "speedup", "match", "E_opt"}
	for _, s := range strategies {
		cols = append(cols, s.Name+"/opt")
	}
	t := p.AddTable(&result.Table{
		ID:      "E15",
		Title:   "exact lattice solver vs factorial enumeration (λ=0.02, D=1; both cost models per graph)",
		Columns: cols,
	})

	type rowFlags struct {
		match       bool // lattice ≡ factorial when both ran, vacuously true otherwise
		infeasible  bool // orders beyond E15InfeasibleOrders, solved exactly anyway
		worstGap    float64
		factorialOK bool
	}
	for _, tc := range cases {
		tc := tc
		for _, cm := range []core.CostModel{core.LastTaskCosts{}, core.LiveSetCosts{}} {
			cm := cm
			p.Job(t, func(s *rng.Stream) (RowOut, error) {
				m, err := E15Model()
				if err != nil {
					return RowOut{}, err
				}
				g, err := E15Graph(tc.family, tc.n, s.Split())
				if err != nil {
					return RowOut{}, err
				}
				lat, err := g.Lattice()
				if err != nil {
					return RowOut{}, err
				}
				orders := lat.CountLinearExtensions()

				// Solve every portfolio strategy first: the per-strategy
				// values become the gap columns AND the best of them seeds
				// the lattice branch-and-bound — the exact bound the solver
				// would otherwise recompute internally, so t_lattice times
				// the lattice search alone.
				heur := make([]core.DAGResult, len(strategies))
				incumbent := 0.0
				for i, st := range strategies {
					order, err := st.Order(g)
					if err != nil {
						return RowOut{}, err
					}
					heur[i], err = core.SolveOrderDP(g, order, m, cm)
					if err != nil {
						return RowOut{}, err
					}
					if i == 0 || heur[i].Expected < incumbent {
						incumbent = heur[i].Expected
					}
				}

				start := time.Now()
				res, stats, err := core.SolveDAGLatticeStats(g, m, cm,
					core.Options{Workers: 1, IncumbentUB: incumbent})
				tLattice := time.Since(start)
				if err != nil {
					return RowOut{}, err
				}

				flags := rowFlags{match: true}
				tFactCell := result.Str("—").AsVolatile()
				speedupCell := result.Str("—").AsVolatile()
				matchCell := result.Str("—")
				if orders <= factorialBudget {
					start = time.Now()
					exact, err := core.SolveDAGExhaustive(g, m, cm, 0)
					tFact := time.Since(start)
					if err != nil {
						return RowOut{}, err
					}
					flags.factorialOK = true
					flags.match = exact.Expected == res.Expected
					tFactCell = result.Dur(tFact)
					speedupCell = result.FixedUnit(float64(tFact)/float64(tLattice), 1, "x").AsVolatile()
					matchCell = result.Bool(flags.match)
				}
				flags.infeasible = orders > E15InfeasibleOrders

				cells := []result.Cell{
					result.Str(tc.family), result.Str(cm.Name()), result.Int(g.Len()),
					result.Sci(orders), result.Int(int(stats.States)), result.Int(int(stats.Transitions)),
					result.Dur(tLattice), tFactCell, speedupCell, matchCell,
					result.Float(res.Expected),
				}
				for i := range strategies {
					gap := heur[i].Expected / res.Expected
					if gap > flags.worstGap {
						flags.worstGap = gap
					}
					cells = append(cells, result.Fixed(gap, 4))
				}
				return RowOut{Cells: cells, Value: flags}, nil
			})
		}
	}

	p.Finish = func(tables []*result.Table, outs []RowOut) error {
		allMatch, anyFactorial, anyInfeasible := true, false, false
		worst := 1.0
		for _, out := range outs {
			f := out.Value.(rowFlags)
			allMatch = allMatch && f.match
			anyFactorial = anyFactorial || f.factorialOK
			anyInfeasible = anyInfeasible || f.infeasible
			if f.worstGap > worst {
				worst = f.worstGap
			}
		}
		tables[t].AddNote("lattice optimum is bit-identical to the factorial oracle on every row both solve → %s", yn(allMatch && anyFactorial))
		if cfg.Quick {
			tables[t].AddNote("quick budget: sizes capped below the factorial-infeasibility bar; the full sweep covers > 10^10-order instances")
		} else {
			tables[t].AddNote("rows with > 10^10 linearizations solved exactly (factorial arm infeasible) → %s", yn(anyInfeasible))
		}
		tables[t].AddNote("worst heuristic/optimal ratio across the sweep: %.4f — the first measured optimality gaps at sizes order enumeration cannot reach", worst)
		tables[t].AddNote("states and transitions are deterministic: branch-and-bound prunes against the portfolio incumbent, whose value depends only on the instance")
		return nil
	}
	return p, nil
}
