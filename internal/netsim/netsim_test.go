package netsim

import (
	"sync"
	"testing"
)

// TestDeliverDeterministic pins the core contract: the outcome of a
// logical delivery is a pure function of (seed, endpoints, message,
// attempt), independent of interleaving with other traffic and of
// instance restarts.
func TestDeliverDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Latency: 0.1, Jitter: 0.5, Loss: 0.2}
	msg := Message{Kind: 1, Run: "r", Seq: 7}

	solo := New(cfg)
	want := []Outcome{
		solo.Deliver(0, "a", "b", msg),
		solo.Deliver(0, "a", "b", msg),
		solo.Deliver(0, "a", "b", msg),
	}

	// Same deliveries with unrelated traffic interleaved.
	noisy := New(cfg)
	var got []Outcome
	for i := 0; i < 3; i++ {
		noisy.Deliver(0, "a", "c", Message{Kind: 2, Run: "other", Seq: uint64(i)})
		got = append(got, noisy.Deliver(0, "a", "b", msg))
		noisy.Deliver(0, "b", "a", Message{Kind: 1, Run: "r", Seq: 7}) // reverse direction is a distinct stream
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("attempt %d: solo %+v, interleaved %+v", i+1, want[i], got[i])
		}
	}

	// A fresh instance (process restart) re-deals the same outcomes.
	fresh := New(cfg)
	for i := range want {
		if out := fresh.Deliver(0, "a", "b", msg); out != want[i] {
			t.Fatalf("restart attempt %d: want %+v, got %+v", i+1, want[i], out)
		}
	}
}

// TestDeliverDirectionAndIdentity checks distinct streams per endpoint
// pair, kind, run and seq.
func TestDeliverDirectionAndIdentity(t *testing.T) {
	cfg := Config{Seed: 9, Jitter: 1}
	base := New(cfg).Deliver(0, "a", "b", Message{Kind: 1, Run: "r", Seq: 1})
	variants := []Outcome{
		New(cfg).Deliver(0, "b", "a", Message{Kind: 1, Run: "r", Seq: 1}),
		New(cfg).Deliver(0, "a", "b", Message{Kind: 2, Run: "r", Seq: 1}),
		New(cfg).Deliver(0, "a", "b", Message{Kind: 1, Run: "q", Seq: 1}),
		New(cfg).Deliver(0, "a", "b", Message{Kind: 1, Run: "r", Seq: 2}),
	}
	for i, v := range variants {
		if v.Latency == base.Latency {
			t.Errorf("variant %d drew the same jitter as the base delivery (%v); streams not distinct", i, v.Latency)
		}
	}
}

// TestPartitionWindows checks window coverage semantics: exactly one
// endpoint isolated, half-open interval, traffic within a side flows.
func TestPartitionWindows(t *testing.T) {
	n := New(Config{Seed: 1, Partitions: []Window{{Start: 10, End: 20, Isolated: []string{"s0"}}}})
	msg := Message{Kind: 1, Run: "r", Seq: 1}
	cases := []struct {
		now      float64
		from, to string
		want     bool
	}{
		{5, "exec", "s0", false},  // before the window
		{10, "exec", "s0", true},  // start is inclusive
		{15, "exec", "s0", true},  // inside
		{15, "s0", "exec", true},  // either direction
		{20, "exec", "s0", false}, // end is exclusive
		{15, "exec", "s1", false}, // both outside the isolated set
		{15, "s0", "s0", false},   // both inside the isolated set
	}
	for _, c := range cases {
		if got := n.Deliver(c.now, c.from, c.to, msg).Partitioned; got != c.want {
			t.Errorf("Deliver(now=%v, %s->%s): Partitioned=%v, want %v", c.now, c.from, c.to, got, c.want)
		}
		if got := n.PartitionedAt(c.now, c.from, c.to); got != c.want {
			t.Errorf("PartitionedAt(now=%v, %s, %s)=%v, want %v", c.now, c.from, c.to, got, c.want)
		}
	}
}

// TestPartitionDoesNotPerturbDraws pins that a window only flips the
// outcome flag: the latency stream is identical with and without the
// partition, so replaying past a healed window cannot shift later
// draws.
func TestPartitionDoesNotPerturbDraws(t *testing.T) {
	cfg := Config{Seed: 3, Latency: 0.2, Jitter: 0.7, Loss: 0.3}
	cut := cfg
	cut.Partitions = []Window{{Start: 0, End: 100, Isolated: []string{"b"}}}
	open, closed := New(cfg), New(cut)
	for i := 0; i < 50; i++ {
		msg := Message{Kind: 1, Run: "r", Seq: uint64(i)}
		a, b := open.Deliver(50, "a", "b", msg), closed.Deliver(50, "a", "b", msg)
		if a.Latency != b.Latency {
			t.Fatalf("seq %d: latency differs with partition: %v vs %v", i, a.Latency, b.Latency)
		}
		if !b.Partitioned {
			t.Fatalf("seq %d: expected partitioned outcome", i)
		}
	}
}

// TestLossRate sanity-checks the loss draw frequency and stats.
func TestLossRate(t *testing.T) {
	n := New(Config{Seed: 11, Loss: 0.25})
	const total = 4000
	for i := 0; i < total; i++ {
		n.Deliver(0, "a", "b", Message{Kind: 1, Run: "r", Seq: uint64(i)})
	}
	st := n.Stats()
	if st.Messages != total {
		t.Fatalf("Messages = %d, want %d", st.Messages, total)
	}
	rate := float64(st.Lost) / total
	if rate < 0.20 || rate > 0.30 {
		t.Fatalf("loss rate %.3f far from configured 0.25", rate)
	}
}

// TestConcurrentDeliveriesDeterministic hammers one network from many
// goroutines and checks each goroutine's own stream matches its solo
// replay — the -race-visible version of the interleaving contract.
func TestConcurrentDeliveriesDeterministic(t *testing.T) {
	cfg := Config{Seed: 77, Latency: 0.05, Jitter: 0.4, Loss: 0.1}
	const workers, ops = 8, 64

	want := make([][]Outcome, workers)
	for w := 0; w < workers; w++ {
		solo := New(cfg)
		for i := 0; i < ops; i++ {
			run := string(rune('A' + w))
			want[w] = append(want[w], solo.Deliver(0, "exec", "s0", Message{Kind: 1, Run: run, Seq: uint64(i % 8)}))
		}
	}

	shared := New(cfg)
	got := make([][]Outcome, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			run := string(rune('A' + w))
			for i := 0; i < ops; i++ {
				got[w] = append(got[w], shared.Deliver(0, "exec", "s0", Message{Kind: 1, Run: run, Seq: uint64(i % 8)}))
			}
		}(w)
	}
	wg.Wait()
	for w := 0; w < workers; w++ {
		for i := range want[w] {
			if want[w][i] != got[w][i] {
				t.Fatalf("worker %d op %d: solo %+v, shared %+v", w, i, want[w][i], got[w][i])
			}
		}
	}
}
