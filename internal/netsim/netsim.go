// Package netsim provides a deterministic simulated network for the
// execution runtime: keyed-stream latency, jitter, message loss, and
// scheduled partition windows. Nothing sleeps and nothing reads wall
// clocks — latency is virtual, loss is a seeded draw, and partitions
// are evaluated against the caller-supplied virtual time — so every
// delivery outcome is replay-deterministic in the style of
// store.FaultStore's logical keying: a pure function of (seed, from,
// to, message identity, attempt), independent of how deliveries from
// different runs interleave and of process restarts.
//
// The intended composition is store.NewRemoteStore(inner, net, cfg):
// the remote layer translates checkpoint operations into messages,
// charges the drawn latency against its per-op deadline, and turns
// lost or partitioned messages into timeouts the executor's
// degradation ladder can classify and ride out.
package netsim

import (
	"hash/fnv"
	"sync"

	"repro/internal/rng"
)

// Window schedules one partition: during [Start, End) in virtual time,
// every message with exactly one endpoint in Isolated is cut off. Both
// endpoints inside (or both outside) the isolated set still reach each
// other — the network splits into the isolated minority and the rest,
// and traffic within either side flows normally.
type Window struct {
	// Start and End bound the window in virtual time; End is exclusive.
	Start, End float64
	// Isolated names the endpoints cut off from everyone else.
	Isolated []string
}

// covers reports whether the window partitions a message between from
// and to at virtual time now.
func (w Window) covers(now float64, from, to string) bool {
	if now < w.Start || now >= w.End {
		return false
	}
	return w.isolates(from) != w.isolates(to)
}

func (w Window) isolates(name string) bool {
	for _, n := range w.Isolated {
		if n == name {
			return true
		}
	}
	return false
}

// Config parameterizes the network. A zero config delivers every
// message instantly and reliably.
type Config struct {
	// Seed drives every latency and loss draw.
	Seed uint64
	// Latency is the deterministic base latency added to every
	// delivery.
	Latency float64
	// Jitter, when positive, adds an Exp-distributed extra latency with
	// this mean to every delivery.
	Jitter float64
	// Loss is the per-message probability in [0, 1] that a delivery is
	// silently dropped. The sender learns nothing until its deadline
	// expires, so the remote store charges the full timeout.
	Loss float64
	// Partitions schedules deterministic partition windows.
	Partitions []Window
}

// Message identifies the payload being delivered in logical terms. The
// triple (Kind, Run, Seq), together with the endpoints and a
// per-identity attempt counter, keys the delivery's random draws: the
// same logical delivery always draws the same jitter and the same loss
// decision, no matter what else the network carried in between.
type Message struct {
	// Kind distinguishes operation families (the remote store uses its
	// save/load/list/delete op kinds) so retries of one operation can
	// never perturb another's outcomes.
	Kind uint64
	// Run and Seq name the checkpoint operation being carried.
	Run string
	Seq uint64
}

// Outcome reports one delivery attempt. Latency is always the drawn
// value (base + jitter), even for lost or partitioned messages — the
// caller decides what a non-delivery costs (typically its timeout).
type Outcome struct {
	// Latency is the drawn delivery latency.
	Latency float64
	// Lost reports a seeded message drop.
	Lost bool
	// Partitioned reports that a scheduled window separated the
	// endpoints at delivery time.
	Partitioned bool
}

// OK reports whether the message was delivered.
func (o Outcome) OK() bool { return !o.Lost && !o.Partitioned }

// Stats counts what the network did.
type Stats struct {
	// Messages is the number of delivery attempts.
	Messages uint64
	// Lost counts seeded drops; Partitioned counts window cuts. A
	// message cut by a window is counted as Partitioned only.
	Lost, Partitioned uint64
	// Latency is the total drawn latency across all attempts.
	Latency float64
}

// linkKey identifies a logical delivery for attempt counting.
type linkKey struct {
	from, to uint64
	kind     uint64
	run      string
	seq      uint64
}

// Network is a deterministic simulated network. It is safe for
// concurrent use; outcomes for a given logical delivery are
// independent of interleaving because every draw is keyed, never
// sequenced. Attempt counters reset with the instance, so a process
// restart re-observes the same outcomes the uninterrupted run drew —
// the same contract store.FaultPlan.LogicalKeys documents.
type Network struct {
	cfg Config

	mu       sync.Mutex
	attempts map[linkKey]uint64
	stats    Stats
}

// New returns a network with the given config.
func New(cfg Config) *Network {
	return &Network{cfg: cfg, attempts: make(map[linkKey]uint64)}
}

// hashName folds an endpoint name into key material.
func hashName(name string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return h.Sum64()
}

// Deliver attempts to carry msg from one endpoint to another at
// virtual time now. The draw order within an attempt is fixed — jitter
// first, then the loss decision — and both draws always happen, so a
// partition window changes only the outcome flag, never the stream
// positions of later draws; killing a window cannot perturb any other
// delivery.
func (n *Network) Deliver(now float64, from, to string, msg Message) Outcome {
	k := linkKey{from: hashName(from), to: hashName(to), kind: msg.Kind, run: msg.Run, seq: msg.Seq}
	n.mu.Lock()
	n.attempts[k]++
	attempt := n.attempts[k]
	n.mu.Unlock()

	s := rng.New(n.cfg.Seed).
		Keyed(k.from).Keyed(k.to).
		Keyed(msg.Kind).Keyed(hashRun(msg.Run)).Keyed(msg.Seq).
		Keyed(attempt)
	out := Outcome{Latency: n.cfg.Latency}
	if n.cfg.Jitter > 0 {
		out.Latency += s.ExpFloat64() * n.cfg.Jitter
	}
	lost := n.cfg.Loss > 0 && s.Float64() < n.cfg.Loss
	if n.partitioned(now, from, to) {
		out.Partitioned = true
	} else if lost {
		out.Lost = true
	}

	n.mu.Lock()
	n.stats.Messages++
	n.stats.Latency += out.Latency
	if out.Partitioned {
		n.stats.Partitioned++
	} else if out.Lost {
		n.stats.Lost++
	}
	n.mu.Unlock()
	return out
}

// hashRun folds a run ID into key material; identical to the store
// layer's keying so composed stacks stay coherent.
func hashRun(run string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(run))
	return h.Sum64()
}

// Partitioned reports whether a scheduled window separates the two
// endpoints at virtual time now.
func (n *Network) partitioned(now float64, a, b string) bool {
	for _, w := range n.cfg.Partitions {
		if w.covers(now, a, b) {
			return true
		}
	}
	return false
}

// PartitionedAt reports whether endpoints a and b are separated at
// virtual time now. Exposed for tests and planners that want to reason
// about the schedule without spending delivery attempts.
func (n *Network) PartitionedAt(now float64, a, b string) bool {
	return n.partitioned(now, a, b)
}

// Stats returns a snapshot of the delivery counters.
func (n *Network) Stats() Stats {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.stats
}
