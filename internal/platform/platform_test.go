package platform

import (
	"math"
	"testing"
)

func TestWorkloadModels(t *testing.T) {
	const w = 1000.0
	pp := PerfectlyParallel{}
	if pp.Time(w, 10) != 100 {
		t.Errorf("perfect: %v", pp.Time(w, 10))
	}
	am := Amdahl{Gamma: 0.1}
	// (0.9·1000)/10 + 0.1·1000 = 190.
	if am.Time(w, 10) != 190 {
		t.Errorf("amdahl: %v", am.Time(w, 10))
	}
	// γ = 0 degenerates to perfect parallelism.
	if (Amdahl{}).Time(w, 8) != pp.Time(w, 8) {
		t.Error("amdahl γ=0 should equal perfect")
	}
	nk := NumericalKernel{Gamma: 0.5}
	want := w/10 + 0.5*math.Pow(w, 2.0/3.0)/math.Sqrt(10)
	if math.Abs(nk.Time(w, 10)-want) > 1e-12 {
		t.Errorf("kernel: %v, want %v", nk.Time(w, 10), want)
	}
}

func TestWorkloadMonotoneDecreasingInP(t *testing.T) {
	models := []WorkloadModel{PerfectlyParallel{}, Amdahl{Gamma: 0.05}, NumericalKernel{Gamma: 0.1}}
	for _, m := range models {
		prev := math.Inf(1)
		for p := 1; p <= 1024; p *= 2 {
			cur := m.Time(1e6, p)
			if cur > prev {
				t.Errorf("%s: W(p) increased at p=%d", m.Name(), p)
			}
			prev = cur
		}
	}
}

func TestAmdahlFloor(t *testing.T) {
	// W(p) ≥ γ·W for Amdahl: the sequential fraction is a hard floor.
	am := Amdahl{Gamma: 0.02}
	if am.Time(1000, 1<<20) < 20 {
		t.Error("Amdahl floor violated")
	}
}

func TestOverheadModels(t *testing.T) {
	if (ProportionalOverhead{}).Cost(100, 4) != 25 {
		t.Error("proportional overhead wrong")
	}
	if (ConstantOverhead{}).Cost(100, 4) != 100 {
		t.Error("constant overhead wrong")
	}
}

func TestPlatformValidate(t *testing.T) {
	good := Platform{Processors: 4, LambdaProc: 1e-3, Downtime: 0.5}
	if err := good.Validate(); err != nil {
		t.Errorf("valid platform rejected: %v", err)
	}
	bad := []Platform{
		{Processors: 0, LambdaProc: 1},
		{Processors: 2, LambdaProc: 0},
		{Processors: 2, LambdaProc: -1},
		{Processors: 2, LambdaProc: 1, Downtime: -1},
		{Processors: 2, LambdaProc: math.Inf(1)},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad platform %d accepted", i)
		}
	}
}

func TestPlatformLambda(t *testing.T) {
	p := Platform{Processors: 100, LambdaProc: 1e-4, Downtime: 0}
	if math.Abs(p.Lambda()-1e-2) > 1e-15 {
		t.Errorf("Lambda = %v", p.Lambda())
	}
	if math.Abs(p.MTBF()-100) > 1e-9 {
		t.Errorf("MTBF = %v", p.MTBF())
	}
}

func TestScenarioInstantiate(t *testing.T) {
	pl := Platform{Processors: 64, LambdaProc: 1e-4, Downtime: 1}
	s := Scenario{Workload: PerfectlyParallel{}, Overhead: ProportionalOverhead{}}
	w, c, r, lambda := s.Instantiate(pl, 6400, 32, 16)
	if w != 400 {
		t.Errorf("w = %v", w)
	}
	if c != 2 || r != 2 {
		t.Errorf("c, r = %v, %v", c, r)
	}
	if math.Abs(lambda-16e-4) > 1e-15 {
		t.Errorf("λ = %v", lambda)
	}

	s2 := Scenario{Workload: Amdahl{Gamma: 0.5}, Overhead: ConstantOverhead{}}
	_, c2, _, _ := s2.Instantiate(pl, 6400, 32, 16)
	if c2 != 32 {
		t.Errorf("constant overhead c = %v", c2)
	}
}

func TestNames(t *testing.T) {
	for _, m := range []WorkloadModel{PerfectlyParallel{}, Amdahl{Gamma: 0.1}, NumericalKernel{Gamma: 0.2}} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
	for _, m := range []OverheadModel{ProportionalOverhead{}, ConstantOverhead{}} {
		if m.Name() == "" {
			t.Errorf("%T has empty name", m)
		}
	}
}
