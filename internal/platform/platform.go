// Package platform implements the Section 3 scenarios of the paper: how
// work, checkpoint overhead, failure rate and downtime scale with the
// number p of processors executing a fully-parallel task.
//
//   - Workload models W(p): perfectly parallel, Amdahl-law generic
//     parallel, and the 2-D numerical-kernel model W_total/p + γ·W^{2/3}/√p.
//   - Checkpoint-overhead models C(p): proportional (per-node I/O bound,
//     C/p) and constant (shared-storage bound).
//   - Failure scaling: λ(p) = p·λ_proc for Exponential laws.
//   - Downtime scaling: D(p) ≥ D(1) with cascades (see sim.CascadeDowntime).
package platform

import (
	"fmt"
	"math"
)

// WorkloadModel maps a total sequential load to the parallel execution
// time on p processors.
type WorkloadModel interface {
	// Time returns W(p) for the given total sequential work.
	Time(wTotal float64, p int) float64
	// Name identifies the model in experiment tables.
	Name() string
}

// PerfectlyParallel is scenario (i): W(p) = W_total/p.
type PerfectlyParallel struct{}

// Time implements WorkloadModel.
func (PerfectlyParallel) Time(wTotal float64, p int) float64 { return wTotal / float64(p) }

// Name implements WorkloadModel.
func (PerfectlyParallel) Name() string { return "perfect" }

// Amdahl is scenario (ii): W(p) = (1−γ)·W_total/p + γ·W_total, with γ the
// inherently sequential fraction.
type Amdahl struct {
	// Gamma is the sequential fraction γ ∈ [0, 1).
	Gamma float64
}

// Time implements WorkloadModel.
func (a Amdahl) Time(wTotal float64, p int) float64 {
	return (1-a.Gamma)*wTotal/float64(p) + a.Gamma*wTotal
}

// Name implements WorkloadModel.
func (a Amdahl) Name() string { return fmt.Sprintf("amdahl(γ=%g)", a.Gamma) }

// NumericalKernel is scenario (iii): W(p) = W_total/p + γ·W_total^{2/3}/√p,
// the shape of dense matrix product or LU/QR factorization on a 2-D grid,
// with γ the communication-to-computation ratio.
type NumericalKernel struct {
	// Gamma is the communication-to-computation ratio.
	Gamma float64
}

// Time implements WorkloadModel.
func (k NumericalKernel) Time(wTotal float64, p int) float64 {
	return wTotal/float64(p) + k.Gamma*math.Pow(wTotal, 2.0/3.0)/math.Sqrt(float64(p))
}

// Name implements WorkloadModel.
func (k NumericalKernel) Name() string { return fmt.Sprintf("kernel(γ=%g)", k.Gamma) }

// OverheadModel maps the single-node checkpoint (and recovery) cost to its
// p-processor value.
type OverheadModel interface {
	// Cost returns C(p) from the footprint-derived base cost.
	Cost(base float64, p int) float64
	// Name identifies the model in experiment tables.
	Name() string
}

// ProportionalOverhead is overhead scenario (i): C(p) = C/p — each node
// writes its V/p bytes through its own card, so the cost shrinks with p.
type ProportionalOverhead struct{}

// Cost implements OverheadModel.
func (ProportionalOverhead) Cost(base float64, p int) float64 { return base / float64(p) }

// Name implements OverheadModel.
func (ProportionalOverhead) Name() string { return "proportional" }

// ConstantOverhead is overhead scenario (ii): C(p) = C — the shared
// resilient store is the bottleneck regardless of p.
type ConstantOverhead struct{}

// Cost implements OverheadModel.
func (ConstantOverhead) Cost(base float64, _ int) float64 { return base }

// Name implements OverheadModel.
func (ConstantOverhead) Name() string { return "constant" }

var (
	_ WorkloadModel = PerfectlyParallel{}
	_ WorkloadModel = Amdahl{}
	_ WorkloadModel = NumericalKernel{}
	_ OverheadModel = ProportionalOverhead{}
	_ OverheadModel = ConstantOverhead{}
)

// Platform describes the machine: p processors, per-processor failure
// rate, and base (single-node) downtime.
type Platform struct {
	// Processors is p.
	Processors int
	// LambdaProc is the per-processor Exponential failure rate λ_proc.
	LambdaProc float64
	// Downtime is D, the single-failure downtime.
	Downtime float64
}

// Validate checks the platform parameters.
func (pl Platform) Validate() error {
	if pl.Processors <= 0 {
		return fmt.Errorf("platform: processor count must be positive, got %d", pl.Processors)
	}
	if pl.LambdaProc <= 0 || math.IsInf(pl.LambdaProc, 0) || math.IsNaN(pl.LambdaProc) {
		return fmt.Errorf("platform: λproc must be positive and finite, got %v", pl.LambdaProc)
	}
	if pl.Downtime < 0 {
		return fmt.Errorf("platform: downtime must be ≥ 0, got %v", pl.Downtime)
	}
	return nil
}

// Lambda returns the platform failure rate λ = p·λ_proc (superposition of
// p independent Exponential processes).
func (pl Platform) Lambda() float64 { return float64(pl.Processors) * pl.LambdaProc }

// MTBF returns the platform mean time between failures 1/λ.
func (pl Platform) MTBF() float64 { return 1 / pl.Lambda() }

// Scenario bundles a workload model with an overhead model: one column of
// the Section 3 design space.
type Scenario struct {
	Workload WorkloadModel
	Overhead OverheadModel
}

// Instantiate returns the effective (W, C, R, λ) of executing wTotal units
// of sequential work with checkpoint base cost baseC on p processors of
// the platform (recovery cost scales like checkpoint cost, the paper's
// C = R convention).
func (s Scenario) Instantiate(pl Platform, wTotal, baseC float64, p int) (w, c, r, lambda float64) {
	w = s.Workload.Time(wTotal, p)
	c = s.Overhead.Cost(baseC, p)
	r = c
	lambda = float64(p) * pl.LambdaProc
	return w, c, r, lambda
}
