package trace

import (
	"bytes"
	"math"
	"sort"
	"strings"
	"testing"

	"repro/internal/failure"
	"repro/internal/rng"
)

func TestGenerate(t *testing.T) {
	e, _ := failure.NewExponential(0.1) // per-node MTBF 10
	tr, err := Generate(e, 16, 1000, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Nodes != 16 {
		t.Errorf("Nodes = %d", tr.Nodes)
	}
	if len(tr.Events) == 0 {
		t.Fatal("no events generated")
	}
	if !sort.SliceIsSorted(tr.Events, func(i, j int) bool { return tr.Events[i].Time < tr.Events[j].Time }) {
		t.Error("events not sorted")
	}
	for _, ev := range tr.Events {
		if ev.Time < 0 || ev.Time > 1000 || ev.Node < 0 || ev.Node >= 16 {
			t.Fatalf("bad event %+v", ev)
		}
	}
	// Platform MTBF ≈ 1/(16·0.1) = 0.625.
	if m := tr.MTBF(); math.Abs(m-0.625)/0.625 > 0.1 {
		t.Errorf("MTBF = %v, want ≈ 0.625", m)
	}
}

func TestGenerateValidation(t *testing.T) {
	e, _ := failure.NewExponential(1)
	if _, err := Generate(e, 0, 10, rng.New(1)); err == nil {
		t.Error("zero nodes should fail")
	}
	if _, err := Generate(e, 1, 0, rng.New(1)); err == nil {
		t.Error("zero horizon should fail")
	}
}

func TestPlatformGaps(t *testing.T) {
	tr := &Trace{
		Events: []Event{{Time: 2, Node: 0}, {Time: 5, Node: 1}, {Time: 6, Node: 0}},
		Nodes:  2,
	}
	gaps := tr.PlatformGaps()
	want := []float64{2, 3, 1}
	if len(gaps) != len(want) {
		t.Fatalf("gaps = %v", gaps)
	}
	for i := range want {
		if gaps[i] != want[i] {
			t.Errorf("gap %d = %v, want %v", i, gaps[i], want[i])
		}
	}
	if got := tr.NodeGaps(0); len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Errorf("node gaps = %v", got)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	e, _ := failure.NewExponential(0.5)
	tr, err := Generate(e, 4, 200, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Nodes != tr.Nodes || len(back.Events) != len(tr.Events) {
		t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d events",
			back.Nodes, tr.Nodes, len(back.Events), len(tr.Events))
	}
	for i := range tr.Events {
		if tr.Events[i] != back.Events[i] {
			t.Fatalf("event %d changed: %+v vs %+v", i, tr.Events[i], back.Events[i])
		}
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",        // empty
		"abc,0\n", // bad time
		"1.5\n",   // missing node
		"1.5,x\n", // bad node
		"-1,0\n",  // negative time
	}
	for i, c := range cases {
		if _, err := ReadCSV(strings.NewReader(c)); err == nil {
			t.Errorf("case %d should fail: %q", i, c)
		}
	}
}

func TestReadCSVUnsortedGetsSorted(t *testing.T) {
	in := "5,0\n1,1\n3,0\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if tr.Events[0].Time != 1 || tr.Events[2].Time != 5 {
		t.Errorf("events not sorted: %+v", tr.Events)
	}
	if tr.Nodes != 2 {
		t.Errorf("inferred nodes = %d, want 2", tr.Nodes)
	}
}

func TestProcessReplay(t *testing.T) {
	tr := &Trace{Events: []Event{{Time: 1, Node: 0}, {Time: 4, Node: 0}}, Nodes: 1}
	proc, err := tr.Process()
	if err != nil {
		t.Fatal(err)
	}
	if proc.NextFailure() != 1 {
		t.Errorf("first gap = %v", proc.NextFailure())
	}
	proc.ObserveFailure()
	if proc.NextFailure() != 3 {
		t.Errorf("second gap = %v", proc.NextFailure())
	}
	empty := &Trace{Nodes: 1}
	if _, err := empty.Process(); err == nil {
		t.Error("empty trace should not replay")
	}
}

func TestFitRecoversExponential(t *testing.T) {
	e, _ := failure.NewExponential(0.2)
	tr, err := Generate(e, 32, 20000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := tr.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// Platform rate = 32 · 0.2 = 6.4.
	if math.Abs(fit.Exp.Lambda-6.4)/6.4 > 0.05 {
		t.Errorf("fitted platform λ = %v, want ≈ 6.4", fit.Exp.Lambda)
	}
	// Superposed exponentials stay exponential: Weibull shape ≈ 1.
	if math.Abs(fit.Weib.Shape-1) > 0.1 {
		t.Errorf("fitted shape = %v, want ≈ 1", fit.Weib.Shape)
	}
	if fit.MTBF <= 0 {
		t.Error("MTBF must be positive")
	}
}

func TestFitWeibullTraceHasSmallShape(t *testing.T) {
	// A Weibull k=0.7 single-node trace must fit back with k < 1
	// (decreasing hazard), which is what makes the extension matter.
	w, _ := failure.NewWeibull(0.7, 10)
	tr, err := Generate(w, 1, 200000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	fit, err := tr.Fit()
	if err != nil {
		t.Fatal(err)
	}
	if fit.Weib.Shape >= 0.85 {
		t.Errorf("fitted shape = %v, want ≈ 0.7", fit.Weib.Shape)
	}
}

// TestReadCSVMalformedRows extends the error-path coverage with the
// shapes real logs actually degrade into, and pins that the error names
// the offending line.
func TestReadCSVMalformedRows(t *testing.T) {
	cases := []struct {
		name, in, wantErr string
	}{
		{"extra field", "1,0,7\n", "line 1"},
		{"negative node", "1,-2\n", "line 1"},
		{"nan time", "NaN,0\n", "non-finite"},
		{"inf time", "+Inf,0\n", "non-finite"},
		{"bad row after good rows", "# header\n1,0\n2,0\nbroken row\n", "line 4"},
		{"float node", "1,0.5\n", "bad node"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadCSV(strings.NewReader(c.in))
			if err == nil {
				t.Fatalf("accepted %q", c.in)
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}

// TestReadCSVNonMonotoneTimes pins the repair contract for out-of-order
// logs: ReadCSV sorts rather than rejects, the event set is preserved,
// and the platform gaps of the sorted trace are all non-negative.
func TestReadCSVNonMonotoneTimes(t *testing.T) {
	in := "# nodes=3\n9,2\n1,0\n9,1\n4,0\n"
	tr, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Events) != 4 || tr.Nodes != 3 {
		t.Fatalf("parsed %d events over %d nodes", len(tr.Events), tr.Nodes)
	}
	for i, g := range tr.PlatformGaps() {
		if g < 0 {
			t.Fatalf("gap %d negative after sort: %v", i, g)
		}
	}
	// Duplicate times are kept, not deduplicated.
	times := map[float64]int{}
	for _, e := range tr.Events {
		times[e.Time]++
	}
	if times[9] != 2 {
		t.Fatalf("duplicate-time events lost: %v", times)
	}
}
