// Package trace generates, stores and replays failure traces. It is the
// stand-in for the production failure logs (Failure Trace Archive) the
// paper cites for the general-law extension: synthetic traces drawn from
// Exponential, Weibull or log-normal laws in a simple CSV format, plus the
// estimators needed to fit laws back from observed traces.
package trace

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/failure"
	"repro/internal/rng"
)

// Event is one failure record: the absolute time at which a node failed.
type Event struct {
	// Time is the absolute failure time.
	Time float64
	// Node identifies the failed processor.
	Node int
}

// Trace is a chronologically sorted list of failure events.
type Trace struct {
	// Events holds the failures sorted by time.
	Events []Event
	// Nodes is the number of processors the trace covers.
	Nodes int
}

// Generate draws a synthetic trace: each of nodes processors fails
// repeatedly with iid inter-failure times from dist, until horizon. The
// per-node renewal processes are superposed and sorted.
func Generate(dist failure.Distribution, nodes int, horizon float64, r *rng.Stream) (*Trace, error) {
	if nodes <= 0 {
		return nil, fmt.Errorf("trace: node count must be positive, got %d", nodes)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("trace: horizon must be positive, got %v", horizon)
	}
	var events []Event
	for node := 0; node < nodes; node++ {
		t := 0.0
		for {
			t += dist.Sample(r)
			if t > horizon {
				break
			}
			events = append(events, Event{Time: t, Node: node})
		}
	}
	sort.Slice(events, func(i, j int) bool { return events[i].Time < events[j].Time })
	return &Trace{Events: events, Nodes: nodes}, nil
}

// PlatformGaps returns the platform-level inter-failure times: the
// differences between consecutive failure instants across all nodes (the
// sequence a fully-parallel application experiences).
func (t *Trace) PlatformGaps() []float64 {
	if len(t.Events) == 0 {
		return nil
	}
	gaps := make([]float64, 0, len(t.Events))
	prev := 0.0
	for _, e := range t.Events {
		gaps = append(gaps, e.Time-prev)
		prev = e.Time
	}
	return gaps
}

// NodeGaps returns the inter-failure times of one node.
func (t *Trace) NodeGaps(node int) []float64 {
	var gaps []float64
	prev := 0.0
	for _, e := range t.Events {
		if e.Node != node {
			continue
		}
		gaps = append(gaps, e.Time-prev)
		prev = e.Time
	}
	return gaps
}

// MTBF returns the mean platform gap, or 0 for traces with no failure.
func (t *Trace) MTBF() float64 {
	gaps := t.PlatformGaps()
	if len(gaps) == 0 {
		return 0
	}
	var sum float64
	for _, g := range gaps {
		sum += g
	}
	return sum / float64(len(gaps))
}

// WriteCSV stores the trace as "time,node" lines with a header.
func (t *Trace) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "# nodes=%d events=%d\n", t.Nodes, len(t.Events)); err != nil {
		return err
	}
	for _, e := range t.Events {
		if _, err := fmt.Fprintf(bw, "%s,%d\n", strconv.FormatFloat(e.Time, 'g', -1, 64), e.Node); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadCSV parses a trace written by WriteCSV (comments and blank lines are
// skipped; the nodes count is recovered from the header or from the data).
func ReadCSV(r io.Reader) (*Trace, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	out := &Trace{}
	maxNode := -1
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		if strings.HasPrefix(text, "#") {
			if i := strings.Index(text, "nodes="); i >= 0 {
				rest := text[i+len("nodes="):]
				if j := strings.IndexFunc(rest, func(r rune) bool { return r < '0' || r > '9' }); j >= 0 {
					rest = rest[:j]
				}
				if n, err := strconv.Atoi(rest); err == nil {
					out.Nodes = n
				}
			}
			continue
		}
		parts := strings.Split(text, ",")
		if len(parts) != 2 {
			return nil, fmt.Errorf("trace: line %d: want \"time,node\", got %q", line, text)
		}
		tv, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad time: %w", line, err)
		}
		nv, err := strconv.Atoi(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, fmt.Errorf("trace: line %d: bad node: %w", line, err)
		}
		if math.IsNaN(tv) || math.IsInf(tv, 0) {
			return nil, fmt.Errorf("trace: line %d: non-finite time %v", line, tv)
		}
		if tv < 0 || nv < 0 {
			return nil, fmt.Errorf("trace: line %d: negative time or node", line)
		}
		out.Events = append(out.Events, Event{Time: tv, Node: nv})
		if nv > maxNode {
			maxNode = nv
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if out.Nodes == 0 {
		out.Nodes = maxNode + 1
	}
	if len(out.Events) == 0 {
		return nil, errors.New("trace: no events")
	}
	if !sort.SliceIsSorted(out.Events, func(i, j int) bool { return out.Events[i].Time < out.Events[j].Time }) {
		sort.Slice(out.Events, func(i, j int) bool { return out.Events[i].Time < out.Events[j].Time })
	}
	return out, nil
}

// Process adapts the trace to the simulator's failure.Process interface,
// replaying platform gaps cyclically.
func (t *Trace) Process() (failure.Process, error) {
	gaps := t.PlatformGaps()
	if len(gaps) == 0 {
		return nil, errors.New("trace: cannot replay a trace with no failures")
	}
	return failure.NewTraceProcess(gaps)
}

// FitSummary reports distribution fits of the platform gaps, used by the
// extension experiments to parameterize schedulers from "observed" logs.
type FitSummary struct {
	// MTBF is the empirical platform mean time between failures.
	MTBF float64
	// Exp is the maximum-likelihood Exponential fit.
	Exp failure.Exponential
	// Weib is the maximum-likelihood Weibull fit.
	Weib failure.Weibull
}

// Fit estimates the platform gap distribution.
func (t *Trace) Fit() (FitSummary, error) {
	gaps := t.PlatformGaps()
	e, err := failure.FitExponential(gaps)
	if err != nil {
		return FitSummary{}, err
	}
	w, err := failure.FitWeibull(gaps)
	if err != nil {
		return FitSummary{}, err
	}
	return FitSummary{MTBF: t.MTBF(), Exp: e, Weib: w}, nil
}
