package fsx_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/fsx"
)

func TestAtomicWriteFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	want := []byte("hello durable world")
	if err := fsx.AtomicWriteFile(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("read back %q, want %q", got, want)
	}
}

func TestAtomicWriteFileOverwrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.bin")
	if err := fsx.AtomicWriteFile(path, []byte("old old old")); err != nil {
		t.Fatal(err)
	}
	if err := fsx.AtomicWriteFile(path, []byte("new")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "new" {
		t.Fatalf("read back %q, want %q", got, "new")
	}
}

func TestAtomicWriteFileLeavesNoTemp(t *testing.T) {
	dir := t.TempDir()
	if err := fsx.AtomicWriteFile(filepath.Join(dir, "a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	// A write into a missing directory fails and must clean up after
	// itself too.
	if err := fsx.AtomicWriteFile(filepath.Join(dir, "missing", "b"), []byte("x")); err == nil {
		t.Fatal("write into missing directory succeeded")
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".tmp-") {
			t.Fatalf("temp file %s left behind", e.Name())
		}
	}
}

func TestSyncDir(t *testing.T) {
	if err := fsx.SyncDir(t.TempDir()); err != nil {
		t.Fatalf("SyncDir on a fresh directory: %v", err)
	}
	if err := fsx.SyncDir(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Fatal("SyncDir on a missing directory succeeded")
	}
}
