// Package fsx holds the crash-durability file primitives shared by every
// component that persists state: the sharded campaign results
// (internal/sim), the trace spills (internal/failure) and the durable
// checkpoint store (internal/store).
//
// The discipline is the standard one: write to a temp file in the target
// directory, fsync the file, rename over the destination, then fsync the
// directory so the rename itself is durable. Rename-without-fsync only
// protects against a kill of the *writer* (the destination is never
// half-written); it does not protect against a crash of the *host*, after
// which the filesystem may expose an empty or partial file under the final
// name. Checkpoint stores exist precisely to survive host crashes, so the
// full discipline is not optional here.
package fsx

import (
	"os"
	"path/filepath"
)

// AtomicWriteFile durably writes data to path: temp file in path's
// directory, write, fsync, rename, directory fsync. After it returns nil,
// a crash at any later point leaves either the previous content or the
// new content at path — never a mix, never a truncation.
func AtomicWriteFile(path string, data []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return SyncDir(dir)
}

// SyncDir fsyncs a directory, making recent renames/creates/removes in it
// durable. On filesystems that refuse directory fsync the error is
// surfaced; callers for whom durability is best-effort may ignore it
// explicitly.
func SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
