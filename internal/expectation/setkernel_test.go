package expectation

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// TestSetKernelMatchesReference sweeps random task sets across the
// interesting regimes (λw ≪ 1, moderate, near and past overflow) and
// pins SegmentLast/SegmentCost/WorkOnly against Model.ExpectedTime on
// the accumulated work sum.
func TestSetKernelMatchesReference(t *testing.T) {
	r := rng.New(41)
	models := []Model{
		{Lambda: 1e-6, Downtime: 0},
		{Lambda: 0.01, Downtime: 0.5},
		{Lambda: 0.5, Downtime: 2},
		{Lambda: 30, Downtime: 0.1}, // pushes λ·ΣW near/past MaxExpArg
	}
	for _, m := range models {
		n := 16
		weights := make([]float64, n)
		ckpt := make([]float64, n)
		for i := range weights {
			weights[i] = r.Range(0, 12)
			ckpt[i] = r.Range(0, 2)
		}
		// A couple of degenerate tasks.
		weights[0], ckpt[0] = 0, 0
		k, err := NewSetKernel(m, weights, ckpt)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 200; trial++ {
			acc := k.Empty()
			var wSum float64
			size := 1 + r.IntN(n)
			for s := 0; s < size; s++ {
				task := r.IntN(n)
				acc = k.Push(acc, task)
				wSum += weights[task]
			}
			rec := r.Range(0, 30)
			amp := k.Amp(rec)
			last := r.IntN(n)
			checkClose(t, "SegmentLast", k.SegmentLast(acc, amp, last),
				m.ExpectedTime(wSum, ckpt[last], rec))
			c := r.Range(0, 5)
			checkClose(t, "SegmentCost", k.SegmentCost(acc, amp, c),
				m.ExpectedTime(wSum, c, rec))
			checkClose(t, "WorkOnly", k.WorkOnly(acc, amp),
				m.ExpectedTime(wSum, 0, rec))
			if got := k.WorkOnly(acc, amp); got > k.SegmentLast(acc, amp, last)*k.Slack() {
				t.Fatalf("WorkOnly %v not a lower bound for SegmentLast %v", got, k.SegmentLast(acc, amp, last))
			}
		}
	}
}

func checkClose(t *testing.T, what string, got, want float64) {
	t.Helper()
	if math.IsInf(want, 1) {
		if !math.IsInf(got, 1) {
			t.Fatalf("%s = %v, want +Inf", what, got)
		}
		return
	}
	// The accumulated argument may round differently from λ·(ΣW+C); the
	// contract is the kernel's documented ~4e-13 relative error plus the
	// accumulation noise — 1e-11 has ample headroom.
	if numeric.RelErr(got, want) > 1e-11 {
		t.Fatalf("%s = %v, want %v (rel err %v)", what, got, want, numeric.RelErr(got, want))
	}
}

// TestSetKernelInfSemantics pins the +Inf edges: amplitude overflow
// (λ·rec past the threshold) and argument overflow.
func TestSetKernelInfSemantics(t *testing.T) {
	m := Model{Lambda: 1, Downtime: 0}
	k, err := NewSetKernel(m, []float64{800}, []float64{1})
	if err != nil {
		t.Fatal(err)
	}
	if amp := k.Amp(800); !math.IsInf(amp, 1) {
		t.Errorf("Amp(λ·rec=800) = %v, want +Inf", amp)
	}
	acc := k.Push(k.Empty(), 0) // λ·W = 800 > MaxExpArg
	if v := k.SegmentLast(acc, k.Amp(0), 0); !math.IsInf(v, 1) {
		t.Errorf("overflowing segment = %v, want +Inf", v)
	}
	if v := k.SegmentCost(acc, k.Amp(0), 0); !math.IsInf(v, 1) {
		t.Errorf("overflowing SegmentCost = %v, want +Inf", v)
	}
	// +Inf amplitude dominates even a zero-work segment (no 0·Inf NaN).
	if v := k.WorkOnly(k.Empty(), math.Inf(1)); !math.IsInf(v, 1) {
		t.Errorf("Inf amp · empty segment = %v, want +Inf", v)
	}
}

// TestSetKernelPushOrderInvariance checks that the accumulator is
// insensitive to push order far beyond the pruning slack: the lattice
// DFS reaches the same set along different paths and must see
// consistent values.
func TestSetKernelPushOrderInvariance(t *testing.T) {
	m := Model{Lambda: 0.05, Downtime: 1}
	r := rng.New(42)
	n := 12
	weights := make([]float64, n)
	ckpt := make([]float64, n)
	for i := range weights {
		weights[i] = r.Range(0.1, 9)
		ckpt[i] = r.Range(0.01, 0.4)
	}
	k, err := NewSetKernel(m, weights, ckpt)
	if err != nil {
		t.Fatal(err)
	}
	fwd, rev := k.Empty(), k.Empty()
	for i := 0; i < n; i++ {
		fwd = k.Push(fwd, i)
		rev = k.Push(rev, n-1-i)
	}
	amp := k.Amp(3)
	a, b := k.SegmentLast(fwd, amp, 4), k.SegmentLast(rev, amp, 4)
	if numeric.RelErr(a, b) > 1e-12 {
		t.Errorf("push-order sensitivity: %v vs %v", a, b)
	}
}

// TestSegmentKernelReinitMatchesFresh pins buffer reuse: a kernel
// reinitialized from a larger problem to a smaller one must reproduce a
// fresh build bit-for-bit, including the recInf flags that only a
// stale-buffer bug would leave set.
func TestSegmentKernelReinitMatchesFresh(t *testing.T) {
	mBig := Model{Lambda: 1, Downtime: 0}
	big := []float64{100, 900, 3} // λ·rec = 900 sets recInf on position 1
	kb, err := NewSegmentKernel(mBig, big, big, big)
	if err != nil {
		t.Fatal(err)
	}
	_ = kb.Segment(0, 2)

	m := Model{Lambda: 0.02, Downtime: 0.5}
	weights := []float64{4, 7, 2}
	ckpt := []float64{0.3, 0.1, 0.2}
	rec := []float64{0.5, 0.3, 0.1}
	if err := kb.Reinit(m, weights, ckpt, rec); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewSegmentKernel(m, weights, ckpt, rec)
	if err != nil {
		t.Fatal(err)
	}
	if kb.Len() != fresh.Len() {
		t.Fatalf("reused Len = %d, fresh = %d", kb.Len(), fresh.Len())
	}
	for x := 0; x < 3; x++ {
		for j := x; j < 3; j++ {
			if got, want := kb.Segment(x, j), fresh.Segment(x, j); got != want {
				t.Errorf("Segment(%d,%d): reused %v, fresh %v", x, j, got, want)
			}
			if got, want := kb.Bound(x, j), fresh.Bound(x, j); got != want {
				t.Errorf("Bound(%d,%d): reused %v, fresh %v", x, j, got, want)
			}
		}
	}
	if kb.Slack() != fresh.Slack() {
		t.Errorf("Slack: reused %v, fresh %v", kb.Slack(), fresh.Slack())
	}
}
