package expectation

import (
	"math"
	"testing"

	"repro/internal/numeric"
)

func TestTruncExpMoments(t *testing.T) {
	// Against numerical integration.
	for _, c := range []struct{ lambda, x float64 }{
		{0.5, 1}, {0.1, 10}, {2, 0.3}, {1, 5},
	} {
		denom := 1 - math.Exp(-c.lambda*c.x)
		wantM1 := numeric.Integrate(func(t float64) float64 {
			return t * c.lambda * math.Exp(-c.lambda*t)
		}, 0, c.x, 1e-12) / denom
		wantM2 := numeric.Integrate(func(t float64) float64 {
			return t * t * c.lambda * math.Exp(-c.lambda*t)
		}, 0, c.x, 1e-12) / denom
		m1, m2 := truncExpMoments(c.lambda, c.x)
		if !numeric.AlmostEqual(m1, wantM1, 1e-8) {
			t.Errorf("λ=%v x=%v: m1 = %v, want %v", c.lambda, c.x, m1, wantM1)
		}
		if !numeric.AlmostEqual(m2, wantM2, 1e-8) {
			t.Errorf("λ=%v x=%v: m2 = %v, want %v", c.lambda, c.x, m2, wantM2)
		}
	}
	if m1, m2 := truncExpMoments(1, 0); m1 != 0 || m2 != 0 {
		t.Error("zero horizon should have zero moments")
	}
}

func TestTruncExpMomentsConsistency(t *testing.T) {
	// The first moment must match the Eq. 4 form used by ExpectedLost.
	m := mustModel(t, 0.2, 0)
	for _, x := range []float64{0.5, 3, 20} {
		m1, _ := truncExpMoments(0.2, x)
		want := m.ExpectedLost(x, 0)
		if !numeric.AlmostEqual(m1, want, 1e-10) {
			t.Errorf("x=%v: truncated mean %v ≠ ExpectedLost %v", x, m1, want)
		}
	}
}

func TestVarianceSmallLambdaLimit(t *testing.T) {
	// As λ → 0 failures vanish and T → W+C deterministically: Var → 0.
	m := mustModel(t, 1e-9, 1)
	v := m.Variance(10, 1, 1)
	if v > 1e-3 {
		t.Errorf("small-λ variance = %v, want ≈ 0", v)
	}
}

func TestVarianceNonNegativeAndGrowing(t *testing.T) {
	m := mustModel(t, 0.05, 0.5)
	prev := -1.0
	for _, w := range []float64{1, 5, 20, 80} {
		v := m.Variance(w, 1, 1)
		if v < 0 {
			t.Fatalf("negative variance %v at W=%v", v, w)
		}
		if v <= prev {
			t.Errorf("variance should grow with W: %v after %v", v, prev)
		}
		prev = v
	}
}

func TestSecondMomentDominatesSquaredMean(t *testing.T) {
	m := mustModel(t, 0.1, 0.5)
	for _, w := range []float64{1, 10, 50} {
		et := m.ExpectedTime(w, 1, 2)
		m2 := m.SecondMoment(w, 1, 2)
		if m2 < et*et-1e-6*et*et {
			t.Errorf("E[T²] = %v < E[T]² = %v at W=%v", m2, et*et, w)
		}
	}
}

func TestMomentsOverflow(t *testing.T) {
	m := mustModel(t, 1, 0)
	if !math.IsInf(m.SecondMoment(1e4, 0, 0), 1) {
		t.Error("overflow second moment should be +Inf")
	}
	if !math.IsInf(m.Variance(1e4, 0, 0), 1) {
		t.Error("overflow variance should be +Inf")
	}
}

func TestStdDevSqrt(t *testing.T) {
	m := mustModel(t, 0.05, 0.5)
	v := m.Variance(10, 1, 1)
	if got := m.StdDev(10, 1, 1); !numeric.AlmostEqual(got*got, v, 1e-9) {
		t.Errorf("StdDev² = %v, want %v", got*got, v)
	}
}

func TestRecoveryMomentsZeroRecovery(t *testing.T) {
	// R = 0: Trec is exactly the downtime D (no failure can strike a
	// zero-length recovery).
	m := mustModel(t, 0.3, 2)
	m1, m2 := m.recoveryMoments(0)
	if !numeric.AlmostEqual(m1, 2, 1e-12) {
		t.Errorf("E[Trec] = %v, want 2", m1)
	}
	if !numeric.AlmostEqual(m2, 4, 1e-12) {
		t.Errorf("E[Trec²] = %v, want 4", m2)
	}
}
