package expectation

// This file implements the runtime quadrangle-inequality certifier that
// gates the monotone-matrix chain solvers (internal/core). Total
// monotonicity is a property of the (distribution, cost-model) instance,
// not of the algorithm: the paper's general per-task costs can break it
// (which is exactly why Proposition 3 settles for O(n²)), so the fast
// arm may only run on instances whose cost matrix provably has the
// structure.
//
// # What is certified
//
// The chain DP transition cost is the Proposition 1 segment expectation
//
//	cost(x, j) = amp(x)·(e^{t_j − u_x} − 1),   amp(x) = e^{λ·rec(x)}(1/λ + D),
//
// with t_j = λ(P(j+1) + C_j) nondecreasing exactly when checkpoint-cost
// jumps never outweigh task weights (λ(w_{j+1} + C_{j+1} − C_j) ≥ 0),
// and u_x = λ·P(x) always nondecreasing. For x < x' and j < j' the
// cross-difference telescopes to
//
//	cost(x, j') + cost(x', j) − cost(x, j) − cost(x', j')
//	  = (e^{t_{j'}} − e^{t_j}) · (s(x) − s(x')),   s(x) = amp(x)·e^{−u_x},
//
// so the concave quadrangle inequality (QI)
//
//	cost(x, j) + cost(x', j') ≤ cost(x, j') + cost(x', j)
//
// holds for every quadruple iff t is nondecreasing and s is
// nonincreasing — and because the cross-difference telescopes over
// adjacent pairs, checking the 2(n−1) adjacent margins is a complete
// boundary check, not a heuristic sample. In log space the s condition
// is λ·rec(x+1) − λ·rec(x) ≤ u_{x+1} − u_x = λ·w_x: recovery-cost jumps
// must not outweigh task weights. Constant C and R (the homogeneous
// case of SolveChainDPHomogeneous) trivially satisfy both.
//
// QI survives the kernel's +Inf saturation: the largest-argument entry
// of any quadruple is cost(x, j') (smallest u, largest t under the
// certified monotonicities), so whenever any entry saturates, a
// right-hand-side entry saturates too and the inequality holds in the
// extended reals. Rows with λ·rec(x) past numeric.MaxExpArg would break
// this dominance argument, so they fail certification outright.
//
// # Slack
//
// The boundary checks compare the kernel's precomputed tables directly
// and accept only outright floating-point monotonicity — a margin lost
// to rounding rejects the instance, which merely costs the fallback to
// the kernel arm, never correctness. The sampled checks re-evaluate
// cost quadruples through SegmentKernel.Segment, whose fast path
// carries the documented ~4·10⁻¹³ relative error; they therefore flag a
// violation only beyond the kernel's pruning Slack, mirroring how the
// pruned scan treats cross-path comparisons. Within that slack a
// certified instance may still resolve ulp-scale decision ties
// differently from the dense scan — the same tie caveat SolveChainDP
// already documents for the kernel arm.

// QICertificate is the outcome of CertifyQuadrangle.
type QICertificate struct {
	// Certified reports whether the instance's segment-cost matrix was
	// certified totally monotone (concave quadrangle inequality), making
	// the monotone-matrix DP arms exact for it.
	Certified bool
	// Reason names the first failed condition when not certified ("" when
	// certified).
	Reason string
	// BoundaryChecks counts the adjacent-pair margin comparisons made.
	BoundaryChecks int
	// SampledChecks counts the evaluated cost-quadruple checks made.
	SampledChecks int
}

// qiSampleBudget is the number of deterministic quadruple probes of the
// evaluated cost matrix; the factored boundary checks are already
// complete, so the samples only guard the evaluation path itself.
const qiSampleBudget = 128

// CertifyQuadrangle decides whether the kernel's segment-cost matrix
// satisfies the concave quadrangle inequality, the entry ticket to the
// totally-monotone (SMAWK-family) chain solvers. It runs in O(n): the
// complete adjacent boundary checks of the factored tables plus a
// deterministic sample of evaluated cost quadruples (see the file
// comment for the exact conditions and the slack contract). The
// certificate depends only on the instance, never on random state.
func (k *SegmentKernel) CertifyQuadrangle() QICertificate {
	n := k.Len()
	cert := QICertificate{}
	for x := 0; x < n; x++ {
		if k.recInf[x] {
			cert.Reason = "recovery amplitude overflows (λ·rec past exp range)"
			return cert
		}
	}
	// Boundary checks: t nondecreasing (end factor) and lrec − u
	// nonincreasing (log of the amplitude-weighted start factor).
	for j := 0; j+1 < n; j++ {
		cert.BoundaryChecks++
		if !(k.t[j+1] >= k.t[j]) {
			cert.Reason = "end table not monotone (checkpoint-cost drop outweighs a task weight)"
			return cert
		}
	}
	for x := 0; x+1 < n; x++ {
		cert.BoundaryChecks++
		if !(k.lrec[x+1]-k.u[x+1] <= k.lrec[x]-k.u[x]) {
			cert.Reason = "start factor not monotone (recovery-cost jump outweighs a task weight)"
			return cert
		}
	}
	// Sampled checks: evaluated QI on a deterministic low-discrepancy
	// sample of quadruples x < x' ≤ j < j', tolerated up to the kernel
	// slack. A violation here means the evaluation path disagrees with
	// the certified factored structure — fall back to the kernel arm.
	if n >= 3 {
		slack := k.Slack()
		state := uint64(0x9e3779b97f4a7c15)
		draw := func(span int) int {
			state = state*6364136223846793005 + 1442695040888963407
			return int((state >> 33) % uint64(span))
		}
		for i := 0; i < qiSampleBudget; i++ {
			x := draw(n - 2)
			xp := x + 1 + draw(n-2-x) // x < x' ≤ n−2
			j := xp + draw(n-1-xp)    // x' ≤ j ≤ n−2
			jp := j + 1 + draw(n-1-j) // j < j' ≤ n−1
			rhs := k.Segment(x, jp) + k.Segment(xp, j)
			lhs := k.Segment(x, j) + k.Segment(xp, jp)
			cert.SampledChecks++
			if lhs > rhs*slack {
				cert.Reason = "sampled quadrangle-inequality violation"
				return cert
			}
		}
	}
	cert.Certified = true
	return cert
}
