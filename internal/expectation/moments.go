package expectation

import (
	"math"

	"repro/internal/numeric"
)

// This file extends Proposition 1 beyond the paper: the same recursion
// that yields E[T] in closed form also yields the second moment, hence
// the variance of the time to execute work W and checkpoint C. Segment
// completions are renewal points, so plan-level variances add across
// segments — giving exact makespan variability, not just expectation.
//
// Derivation sketch (mirrors the proof of Proposition 1): with
// x = W + C and p = e^{−λx},
//
//	T = x                    with probability p
//	T = Tlost + Trec + T'    otherwise (T' an independent copy)
//
// so E[T²]·p = p·x² + (1−p)(E[L²] + E[R²] + 2(E[L]E[R] + (E[L]+E[R])·E[T]))
// where L = Tlost is Exp(λ) truncated to [0, x] and R = Trec satisfies an
// analogous recursion over recovery attempts.

// truncExpMoments returns the first and second moments of an Exp(λ)
// variable conditioned on being smaller than x.
func truncExpMoments(lambda, x float64) (m1, m2 float64) {
	if x <= 0 {
		return 0, 0
	}
	lx := lambda * x
	if lx > numeric.MaxExpArg {
		// Conditioning is vacuous: plain exponential moments.
		return 1 / lambda, 2 / (lambda * lambda)
	}
	denom := -math.Expm1(-lx) // 1 − e^{−λx}
	elx := math.Exp(-lx)
	m1 = (1/lambda - elx*(x+1/lambda)) / denom
	m2 = (2/(lambda*lambda) - elx*(x*x+2*x/lambda+2/(lambda*lambda))) / denom
	return m1, m2
}

// recoveryMoments returns E[Trec] and E[Trec²] for downtime D and
// recovery length R under failure rate λ.
func (m Model) recoveryMoments(r float64) (m1, m2 float64) {
	lr := m.Lambda * r
	if lr > numeric.MaxExpArg {
		return math.Inf(1), math.Inf(1)
	}
	d := m.Downtime
	m1 = d*math.Exp(lr) + math.Expm1(lr)/m.Lambda

	pR := math.Exp(-lr)
	qR := -math.Expm1(-lr)
	lr1, lr2 := truncExpMoments(m.Lambda, r)
	// E[(D+Lr)²] = D² + 2D·E[Lr] + E[Lr²].
	dl2 := d*d + 2*d*lr1 + lr2
	// E[Trec²]·pR = pR(D+R)² + qR(E[(D+Lr)²] + 2(D+E[Lr])·E[Trec]).
	m2 = (pR*(d+r)*(d+r) + qR*(dl2+2*(d+lr1)*m1)) / pR
	return m1, m2
}

// SecondMoment returns E[T²] for the Proposition 1 scenario: W units of
// work plus a checkpoint C, downtime D and recovery R per failure.
// Overflowing instances return +Inf.
func (m Model) SecondMoment(w, c, r float64) float64 {
	x := w + c
	lx := m.Lambda * x
	if lx > numeric.MaxExpArg || m.Lambda*r > numeric.MaxExpArg {
		return math.Inf(1)
	}
	if x == 0 {
		return 0
	}
	p := math.Exp(-lx)
	q := -math.Expm1(-lx)
	l1, l2 := truncExpMoments(m.Lambda, x)
	r1, r2 := m.recoveryMoments(r)
	et := m.ExpectedTime(w, c, r)
	// E[T²]·p = p·x² + q·(E[L²] + E[R²] + 2(E[L]E[R] + (E[L]+E[R])E[T])).
	return (p*x*x + q*(l2+r2+2*(l1*r1+(l1+r1)*et))) / p
}

// Variance returns Var[T] = E[T²] − E[T]².
func (m Model) Variance(w, c, r float64) float64 {
	et := m.ExpectedTime(w, c, r)
	if math.IsInf(et, 1) {
		return math.Inf(1)
	}
	v := m.SecondMoment(w, c, r) - et*et
	if v < 0 {
		// Cancellation guard for λ(W+C) ≈ 0 where Var → 0.
		return 0
	}
	return v
}

// StdDev returns the standard deviation of T.
func (m Model) StdDev(w, c, r float64) float64 {
	return math.Sqrt(m.Variance(w, c, r))
}
