// Package expectation implements the analytical core of the paper: the
// exact closed-form expectation of Proposition 1,
//
//	E[T(W,C,D,R,λ)] = e^{λR} (1/λ + D) (e^{λ(W+C)} − 1),
//
// its components E[Tlost] (Eq. 4) and E[Trec] (Eq. 5), and the comparator
// formulas from the related work: Young's and Daly's approximate optimal
// periods, the always-recover formula of Bouguerra et al. (which the paper
// points out is inaccurate), and the exact Lambert-W optimal chunking used
// in the convexity argument of Proposition 2.
//
// All formulas are evaluated in expm1-stable form so that the practically
// dominant regime λ(W+C) ≪ 1 keeps full precision.
package expectation

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// Model carries the failure-environment parameters shared by every
// expectation query: the platform failure rate λ and the downtime D.
// Checkpoint cost C and recovery cost R vary per query because they are
// per-task quantities in the scheduling problem.
type Model struct {
	Lambda   float64 // platform failure rate (λ = p·λproc); must be > 0
	Downtime float64 // downtime D after each failure; must be ≥ 0
}

// NewModel validates and returns a Model.
func NewModel(lambda, downtime float64) (Model, error) {
	m := Model{Lambda: lambda, Downtime: downtime}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

// Validate reports whether the model parameters are admissible.
func (m Model) Validate() error {
	if !(m.Lambda > 0) || math.IsInf(m.Lambda, 0) {
		return fmt.Errorf("expectation: failure rate λ must be positive and finite, got %v", m.Lambda)
	}
	if m.Downtime < 0 || math.IsNaN(m.Downtime) {
		return fmt.Errorf("expectation: downtime D must be ≥ 0, got %v", m.Downtime)
	}
	return nil
}

// MTBF returns the platform mean time between failures 1/λ.
func (m Model) MTBF() float64 { return 1 / m.Lambda }

// ExpectedTime returns E[T(W,C,D,R,λ)], the exact expected time to execute
// W units of work followed by a checkpoint of length C, when each failure
// costs a downtime D plus a recovery of length R (failures may strike
// during recovery but not during downtime). This is Proposition 1.
//
// Instances with λ(W+C) or λR beyond the exp overflow threshold return
// +Inf: their expectation is astronomically large, not undefined.
func (m Model) ExpectedTime(w, c, r float64) float64 {
	x := m.Lambda * (w + c)
	lr := m.Lambda * r
	if x > numeric.MaxExpArg || lr > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return math.Exp(lr) * (1/m.Lambda + m.Downtime) * math.Expm1(x)
}

// ExpectedLost returns E[Tlost], the expected time spent computing before a
// failure, conditioned on the failure striking within the next W+C units
// (Eq. 4): E[Tlost] = 1/λ − (W+C)/(e^{λ(W+C)} − 1).
func (m Model) ExpectedLost(w, c float64) float64 {
	x := m.Lambda * (w + c)
	if x == 0 {
		return 0
	}
	// 1/λ − (W+C)/expm1(x) = (1 − x/expm1(x)) / λ, stable form.
	return (1 - numeric.XOverExpm1(x)) / m.Lambda
}

// ExpectedRecovery returns E[Trec], the expected downtime-plus-recovery
// delay after a failure, accounting for failures during recovery (Eq. 5):
// E[Trec] = D·e^{λR} + (e^{λR} − 1)/λ.
func (m Model) ExpectedRecovery(r float64) float64 {
	lr := m.Lambda * r
	if lr > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return m.Downtime*math.Exp(lr) + math.Expm1(lr)/m.Lambda
}

// ExpectedTimeRecursion recomputes E[T] through the recursion of Eq. 3,
//
//	E[T] = W + C + (e^{λ(W+C)} − 1)(E[Tlost] + E[Trec]),
//
// rather than the factored closed form. Proposition 1 asserts both are
// equal; tests and experiment E2 check the identity numerically.
func (m Model) ExpectedTimeRecursion(w, c, r float64) float64 {
	x := m.Lambda * (w + c)
	if x > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return w + c + math.Expm1(x)*(m.ExpectedLost(w, c)+m.ExpectedRecovery(r))
}

// FailureFreeTime returns the failure-free execution time W + C, the
// baseline against which Waste is measured.
func (m Model) FailureFreeTime(w, c float64) float64 { return w + c }

// Waste returns the waste ratio E[T]/(W) − 1: the relative overhead paid
// for checkpointing plus failures, compared to pure work.
func (m Model) Waste(w, c, r float64) float64 {
	if w == 0 {
		return math.Inf(1)
	}
	return m.ExpectedTime(w, c, r)/w - 1
}

// ExpectedTimeAlwaysRecover is the comparator formula of Bouguerra et
// al. [12], in which every execution attempt — including the first — is
// preceded by a recovery. Folding R into the work of Proposition 1 gives
//
//	E_B[T] = (1/λ + D) (e^{λ(R+W+C)} − 1).
//
// The paper notes this is inaccurate: the first attempt needs no recovery,
// so E_B strictly overestimates whenever R > 0 (experiment E3 measures by
// how much).
func (m Model) ExpectedTimeAlwaysRecover(w, c, r float64) float64 {
	x := m.Lambda * (r + w + c)
	if x > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return (1/m.Lambda + m.Downtime) * math.Expm1(x)
}

// FirstOrderExpectation is the O(λ) Taylor expansion of Proposition 1:
//
//	E ≈ (W+C) + λ(W+C)·((W+C)/2 + R + D),
//
// the first-order estimate in the style the paper attributes to
// Young/Daly. Experiment E3 quantifies its error against the exact form.
func (m Model) FirstOrderExpectation(w, c, r float64) float64 {
	x := w + c
	return x + m.Lambda*x*(x/2+r+m.Downtime)
}

// SecondOrderExpectation extends the expansion to O(λ²):
//
//	E ≈ x + λx(x/2 + R + D) + λ²(x³/6 + Dx²/2 + R(x²/2 + Dx) + R²x/2),
//
// with x = W + C — the "higher order estimate" in Daly's sense.
func (m Model) SecondOrderExpectation(w, c, r float64) float64 {
	x := w + c
	d := m.Downtime
	l := m.Lambda
	return x + l*x*(x/2+r+d) + l*l*(x*x*x/6+d*x*x/2+r*(x*x/2+d*x)+r*r*x/2)
}

// YoungPeriod returns Young's first-order approximation of the optimal
// checkpoint period: W* ≈ sqrt(2·C/λ).
func YoungPeriod(c, lambda float64) float64 {
	return math.Sqrt(2 * c / lambda)
}

// DalyPeriod returns Daly's higher-order approximation of the optimal
// checkpoint period for MTBF M = 1/λ:
//
//	W* ≈ sqrt(2CM)·[1 + (1/3)·sqrt(C/(2M)) + (1/9)·(C/(2M))] − C   (C < 2M)
//	W* = M                                                          (C ≥ 2M)
func DalyPeriod(c, lambda float64) float64 {
	mtbf := 1 / lambda
	if c >= 2*mtbf {
		return mtbf
	}
	ratio := c / (2 * mtbf)
	return math.Sqrt(2*c*mtbf)*(1+math.Sqrt(ratio)/3+ratio/9) - c
}

// OptimalChunk returns the exact optimal chunk size W* for a divisible
// load under the paper's model, obtained from the stationarity condition
// of the proof of Proposition 2: with u = λW*,
//
//	(1 − u)·e^{u} = e^{−λC}  ⇔  u = 1 + W₀(−e^{−1−λC}),
//
// where W₀ is the principal Lambert branch. The result is independent of R
// and D (they multiply the objective by a constant).
func OptimalChunk(c, lambda float64) (float64, error) {
	arg := -math.Exp(-1 - lambda*c)
	w0, err := numeric.LambertW0(arg)
	if err != nil {
		return 0, fmt.Errorf("expectation: optimal chunk: %w", err)
	}
	u := 1 + w0
	return u / lambda, nil
}

// EqualChunkMakespan returns the expected makespan of splitting total work
// wTotal into m equal chunks, each followed by a checkpoint C with
// recovery R (the function E₀(m) = m·e^{λR}(1/λ+D)(e^{λ(wTotal/m+C)}−1)
// from the proof of Proposition 2).
func (m Model) EqualChunkMakespan(wTotal, c, r float64, chunks int) float64 {
	if chunks <= 0 {
		return math.Inf(1)
	}
	per := m.ExpectedTime(wTotal/float64(chunks), c, r)
	return float64(chunks) * per
}

// OptimalChunkCount returns the integer number of equal chunks minimizing
// EqualChunkMakespan, along with the achieved makespan. It evaluates the
// continuous optimum from OptimalChunk and compares its floor and ceiling
// (the objective is convex in the chunk count, so this is exact).
func (m Model) OptimalChunkCount(wTotal, c, r float64) (int, float64, error) {
	if wTotal <= 0 {
		return 0, 0, fmt.Errorf("expectation: total work must be positive, got %v", wTotal)
	}
	chunk, err := OptimalChunk(c, m.Lambda)
	if err != nil {
		return 0, 0, err
	}
	var mReal float64
	if chunk <= 0 {
		mReal = 1
	} else {
		mReal = wTotal / chunk
	}
	lo := int(math.Floor(mReal))
	if lo < 1 {
		lo = 1
	}
	hi := lo + 1
	vLo := m.EqualChunkMakespan(wTotal, c, r, lo)
	vHi := m.EqualChunkMakespan(wTotal, c, r, hi)
	if vLo <= vHi {
		return lo, vLo, nil
	}
	return hi, vHi, nil
}

// PeriodMakespan returns the expected makespan of checkpointing a
// divisible load wTotal with fixed period (chunk size) period: the load is
// cut into ceil(wTotal/period) chunks, the last one possibly shorter. It
// is used to evaluate Young's and Daly's periods against the exact
// optimum.
func (m Model) PeriodMakespan(wTotal, c, r, period float64) float64 {
	if period <= 0 {
		return math.Inf(1)
	}
	n := int(math.Ceil(wTotal / period))
	if n < 1 {
		n = 1
	}
	full := n - 1
	rest := wTotal - float64(full)*period
	total := float64(full) * m.ExpectedTime(period, c, r)
	total += m.ExpectedTime(rest, c, r)
	return total
}

// ProofG evaluates g(m) = m·(e^{λ(W/m + C)} − 1), the function analyzed in
// the proof of Proposition 2 (with W = n·T there). Exposed for experiment
// E4, which reproduces its convexity and the location of its minimum.
func ProofG(lambda, w, c, mCount float64) float64 {
	if mCount <= 0 {
		return math.Inf(1)
	}
	x := lambda * (w/mCount + c)
	if x > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return mCount * math.Expm1(x)
}

// ProofGPrime evaluates g'(m) = (1 − λW/m)·e^{λ(W/m+C)} − 1.
func ProofGPrime(lambda, w, c, mCount float64) float64 {
	x := lambda * (w/mCount + c)
	return (1-lambda*w/mCount)*math.Exp(x) - 1
}

// ProofGDoublePrime evaluates g”(m) = λ²W²/m³ · e^{λ(W/m+C)} (> 0).
func ProofGDoublePrime(lambda, w, c, mCount float64) float64 {
	x := lambda * (w/mCount + c)
	return lambda * lambda * w * w / (mCount * mCount * mCount) * math.Exp(x)
}
