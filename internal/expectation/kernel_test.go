package expectation

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// randomKernelInstance draws a positional problem in a given λ regime.
func randomKernelInstance(r *rng.Stream, n int, lambda float64) (Model, []float64, []float64, []float64) {
	m := Model{Lambda: lambda, Downtime: r.Range(0, 2)}
	weights := make([]float64, n)
	ckpt := make([]float64, n)
	rec := make([]float64, n)
	for i := 0; i < n; i++ {
		weights[i] = r.Range(0, 10)
		ckpt[i] = r.Range(0, 2)
		rec[i] = r.Range(0, 2)
	}
	return m, weights, ckpt, rec
}

func TestSegmentMatchesExpectedTime(t *testing.T) {
	r := rng.New(11)
	for _, lambda := range []float64{1e-9, 1e-4, 0.02, 0.5, 5} {
		m, weights, ckpt, rec := randomKernelInstance(r, 40, lambda)
		k, err := NewSegmentKernel(m, weights, ckpt, rec)
		if err != nil {
			t.Fatal(err)
		}
		prefix := make([]float64, len(weights)+1)
		for i, w := range weights {
			prefix[i+1] = prefix[i] + w
		}
		for x := 0; x < len(weights); x++ {
			for j := x; j < len(weights); j++ {
				got := k.Segment(x, j)
				w := prefix[j+1] - prefix[x]
				want := m.ExpectedTime(w, ckpt[j], rec[x])
				arg := m.Lambda * (w + ckpt[j])
				if arg < StableArgThreshold {
					if got != want {
						t.Fatalf("λ=%v (%d,%d): stable path not bit-identical: %v vs %v", lambda, x, j, got, want)
					}
					continue
				}
				if numeric.RelErr(got, want) > 1e-12 {
					t.Fatalf("λ=%v (%d,%d): Segment = %v, ExpectedTime = %v (rel %v)", lambda, x, j, got, want, numeric.RelErr(got, want))
				}
				if wc := k.SegmentWithCost(x, j, ckpt[j]); wc != want {
					t.Fatalf("λ=%v (%d,%d): SegmentWithCost not bit-identical: %v vs %v", lambda, x, j, wc, want)
				}
			}
		}
	}
}

func TestSegmentOverflowSemantics(t *testing.T) {
	// λ(W+C) past numeric.MaxExpArg must report +Inf, exactly like
	// ExpectedTime; recovery overflow likewise.
	m := Model{Lambda: 1, Downtime: 0}
	weights := []float64{300, 300, 300}
	ckpt := []float64{1, 1, 1}
	rec := []float64{0, 0, 0}
	k, err := NewSegmentKernel(m, weights, ckpt, rec)
	if err != nil {
		t.Fatal(err)
	}
	if got := k.Segment(0, 2); !math.IsInf(got, 1) {
		t.Errorf("Segment spanning λW=901 = %v, want +Inf", got)
	}
	// Just under the threshold: finite but astronomically large, agreeing
	// with the reference to the fast-path tolerance.
	got := k.Segment(0, 1)
	want := m.ExpectedTime(600, 1, 0)
	if math.IsInf(got, 1) || numeric.RelErr(got, want) > 1e-12 {
		t.Errorf("Segment at λ(W+C)=601: %v, want %v", got, want)
	}
	if got := k.Segment(1, 1); math.IsInf(got, 1) {
		t.Errorf("single 300-unit segment should be finite-huge, got %v", got)
	}

	recBig := []float64{800, 0, 0}
	k2, err := NewSegmentKernel(m, weights, ckpt, recBig)
	if err != nil {
		t.Fatal(err)
	}
	if got := k2.Segment(0, 0); !math.IsInf(got, 1) {
		t.Errorf("λ·rec = 800 should give +Inf, got %v", got)
	}
}

// TestBoundIsLowerBound pins the pruning contract: Bound(x, j) ≤
// Segment(x, k)·Slack() for every k ≥ j.
func TestBoundIsLowerBound(t *testing.T) {
	r := rng.New(23)
	for _, lambda := range []float64{1e-6, 0.02, 1} {
		for trial := 0; trial < 20; trial++ {
			m, weights, ckpt, rec := randomKernelInstance(r, 30, lambda)
			k, err := NewSegmentKernel(m, weights, ckpt, rec)
			if err != nil {
				t.Fatal(err)
			}
			for x := 0; x < len(weights); x++ {
				for j := x; j < len(weights); j++ {
					b := k.Bound(x, j)
					for kk := j; kk < len(weights); kk++ {
						s := k.Segment(x, kk)
						if !(b <= s*k.Slack()) && !math.IsInf(s, 1) {
							t.Fatalf("λ=%v: Bound(%d,%d)=%v exceeds Segment(%d,%d)=%v·slack", lambda, x, j, b, x, kk, s)
						}
					}
				}
			}
		}
	}
}

// TestSegmentSaturatedPrefix pins the regression where an absolute
// prefix beyond ExpScaled's cap (λ·P ≳ 3.7e8) saturated both scaled
// pairs, their sentinel exponents cancelled, and Segment returned 0 for
// a finite segment. The kernel must fall back to the stable path.
func TestSegmentSaturatedPrefix(t *testing.T) {
	m := Model{Lambda: 1, Downtime: 0}
	weights := []float64{4e8, 1, 2}
	ckpt := []float64{0, 0, 0.5}
	rec := []float64{0, 0, 0}
	k, err := NewSegmentKernel(m, weights, ckpt, rec)
	if err != nil {
		t.Fatal(err)
	}
	// Segments entirely past the huge task: finite, must match the
	// reference exactly (stable path).
	if got, want := k.Segment(1, 1), m.ExpectedTime(1, 0, 0); got != want {
		t.Errorf("Segment(1,1) = %v, want %v", got, want)
	}
	if got, want := k.Segment(1, 2), m.ExpectedTime(3, 0.5, 0); got != want {
		t.Errorf("Segment(1,2) = %v, want %v", got, want)
	}
	// Segments spanning the huge task overflow to +Inf.
	if got := k.Segment(0, 1); !math.IsInf(got, 1) {
		t.Errorf("Segment(0,1) = %v, want +Inf", got)
	}
	// Bound stays a valid lower bound in the saturated regime.
	if b := k.Bound(1, 1); b > k.Segment(1, 1)*k.Slack() || b > k.Segment(1, 2)*k.Slack() {
		t.Errorf("Bound(1,1) = %v exceeds later segments", b)
	}
}

func TestKernelValidation(t *testing.T) {
	m := Model{Lambda: 0.1, Downtime: 0}
	if _, err := NewSegmentKernel(m, nil, nil, nil); err == nil {
		t.Error("empty kernel should fail")
	}
	if _, err := NewSegmentKernel(m, []float64{1, 2}, []float64{1}, []float64{0, 0}); err == nil {
		t.Error("mismatched slice lengths should fail")
	}
	if _, err := NewSegmentKernel(Model{Lambda: -1}, []float64{1}, []float64{1}, []float64{0}); err == nil {
		t.Error("invalid model should fail")
	}
}
