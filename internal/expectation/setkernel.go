package expectation

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// SetKernel is the SegmentKernel's sibling for order-free DP states: it
// evaluates the Proposition 1 segment expectation when a segment is a
// *set* of tasks rather than a positional range of one fixed
// linearization. The downset-lattice solver (core.SolveDAGLattice)
// extends segments one task at a time while walking the lattice, so the
// kernel carries the running work term as a scaled-exponential
// accumulator (SetAccum): pushing task t multiplies in the precomputed
// pair e^{λ·w_t} = frac·2^exp (numeric.ExpScaled), and closing a
// segment is one fused multiply against the last task's e^{λ·C_t} pair
// — zero transcendental calls per transition, exactly like the
// positional kernel's end/start tables.
//
// The numerical contract mirrors SegmentKernel: below
// StableArgThreshold (or when any pair saturated) the evaluation falls
// back to the expm1-stable expression, bit-identical to
// Model.ExpectedTime on the accumulated argument; λ(W+C) or λ·rec past
// numeric.MaxExpArg reports +Inf. Slack widens the pruning comparisons
// so a bound may only discard candidates that are strictly worse by
// more than every accumulated rounding error (the accumulator adds one
// rounding per pushed task on top of the table error — both are orders
// of magnitude below the base slack for any lattice-sized segment).
type SetKernel struct {
	model Model
	scale float64 // 1/λ + D

	weights []float64 // w_t, for admissible work bounds
	wArg    []float64 // λ·w_t
	wFrac   []float64 // e^{λ·w_t} scaled: frac ∈ [1,2)
	wExp    []int32
	cArg    []float64 // λ·C_t
	cFrac   []float64 // e^{λ·C_t} scaled
	cExp    []int32
	slack   float64
}

// SetAccum is the running state of one segment being extended: the
// accumulated λ·ΣW (plain and in scaled-exponential form) plus the raw
// work sum. It is a small value type — the lattice DFS passes it down
// the recursion and gets backtracking for free.
type SetAccum struct {
	// Arg is λ·ΣW over the pushed tasks.
	Arg float64
	// W is the plain work sum ΣW, for admissible failure-free bounds.
	W    float64
	frac float64
	exp  int32
	sat  bool
}

// NewSetKernel builds the kernel from per-task weights and checkpoint
// costs, indexed by task ID. Both slices must have equal positive
// length.
func NewSetKernel(m Model, weights, ckpt []float64) (*SetKernel, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("expectation: set kernel needs at least one task")
	}
	if len(ckpt) != n {
		return nil, fmt.Errorf("expectation: set kernel slice lengths differ (%d, %d)", n, len(ckpt))
	}
	k := &SetKernel{
		model:   m,
		scale:   1/m.Lambda + m.Downtime,
		weights: append([]float64(nil), weights...),
		wArg:    make([]float64, n),
		wFrac:   make([]float64, n),
		wExp:    make([]int32, n),
		cArg:    make([]float64, n),
		cFrac:   make([]float64, n),
		cExp:    make([]int32, n),
	}
	var maxArg float64
	for i := 0; i < n; i++ {
		k.wArg[i] = m.Lambda * weights[i]
		f, e := numeric.ExpScaled(k.wArg[i])
		k.wFrac[i], k.wExp[i] = f, int32(e)
		k.cArg[i] = m.Lambda * ckpt[i]
		f, e = numeric.ExpScaled(k.cArg[i])
		k.cFrac[i], k.cExp[i] = f, int32(e)
		maxArg += k.wArg[i]
		if k.cArg[i] > maxArg {
			maxArg = k.cArg[i]
		}
	}
	// Same structure as the positional kernel's slack: base error plus
	// the large-argument degradation of the scaled tables, with the
	// accumulator's per-push rounding (≤ 64·ε) far below the base term.
	k.slack = 1 + kernelBaseSlack + 8e-16*math.Max(1, maxArg)
	return k, nil
}

// Len returns the number of tasks.
func (k *SetKernel) Len() int { return len(k.wArg) }

// Empty returns the accumulator of an empty segment.
func (k *SetKernel) Empty() SetAccum { return SetAccum{frac: 1} }

// Push returns the accumulator extended by task t.
func (k *SetKernel) Push(a SetAccum, t int) SetAccum {
	a.Arg += k.wArg[t]
	a.W += k.weights[t]
	if a.sat || k.wExp[t] >= numeric.ExpScaledSatExp {
		// A saturated pair's exponent is a sentinel, not a magnitude:
		// stop combining (which could overflow int32) and let the
		// evaluation fall back to the argument-based stable path.
		a.sat = true
		return a
	}
	a.frac *= k.wFrac[t] // [1,2)·[1,2) = [1,4)
	if a.frac >= 2 {
		a.frac *= 0.5 // exact
		a.exp++
	}
	a.exp += k.wExp[t]
	if a.exp >= numeric.ExpScaledSatExp {
		a.sat = true
	}
	return a
}

// Amp returns the per-state amplitude e^{λ·rec}·(1/λ + D), +Inf when
// λ·rec exceeds the overflow threshold — the same semantics as the
// positional kernel's amp table, hoisted once per lattice state.
func (k *SetKernel) Amp(rec float64) float64 {
	lr := k.model.Lambda * rec
	if lr > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return math.Exp(lr) * k.scale
}

// value evaluates amp·(e^{λ(W+C)} − 1) for the accumulated work plus an
// end term carried as (arg, frac, exp): fused product when safe, the
// expm1-stable path for small arguments or saturated pairs.
func (k *SetKernel) value(a SetAccum, amp, arg, frac float64, exp int32) float64 {
	if math.IsInf(amp, 1) {
		return math.Inf(1)
	}
	if arg > numeric.MaxExpArg {
		return math.Inf(1)
	}
	if a.sat || arg < StableArgThreshold || exp >= numeric.ExpScaledSatExp {
		return amp * math.Expm1(arg)
	}
	return amp * (numeric.LdexpProduct(frac, int(exp)) - 1)
}

// SegmentLast returns the expectation of executing the accumulated
// segment and checkpointing after task `last`, under amplitude amp —
// the transition of the base (last-task) cost model. Zero
// transcendental calls on the fast path.
func (k *SetKernel) SegmentLast(a SetAccum, amp float64, last int) float64 {
	return k.value(a, amp, a.Arg+k.cArg[last], a.frac*k.cFrac[last], a.exp+k.cExp[last])
}

// SegmentCost returns the expectation of the accumulated segment closed
// by a checkpoint of explicit cost c — for cost models whose checkpoint
// cost is maintained incrementally by the caller (the live-set model).
// Like the positional kernel's SegmentWithCost it pays one expm1, with
// the amplitude hoisted.
func (k *SetKernel) SegmentCost(a SetAccum, amp, c float64) float64 {
	if math.IsInf(amp, 1) {
		return math.Inf(1)
	}
	arg := a.Arg + k.model.Lambda*c
	if arg > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return amp * math.Expm1(arg)
}

// WorkOnly returns the expectation of the accumulated segment with a
// zero-cost checkpoint — a lower bound on the segment term under any
// nonnegative checkpoint cost, which drives the lattice solver's
// branch-and-bound subtree pruning.
func (k *SetKernel) WorkOnly(a SetAccum, amp float64) float64 {
	return k.value(a, amp, a.Arg, a.frac, a.exp)
}

// Slack is the multiplicative safety factor for pruning comparisons,
// covering the kernel's worst-case relative error (see SegmentKernel).
func (k *SetKernel) Slack() float64 { return k.slack }
