package expectation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/numeric"
)

func mustModel(t *testing.T, lambda, d float64) Model {
	t.Helper()
	m, err := NewModel(lambda, d)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelValidation(t *testing.T) {
	if _, err := NewModel(0, 0); err == nil {
		t.Error("λ = 0 should be rejected")
	}
	if _, err := NewModel(-1, 0); err == nil {
		t.Error("λ < 0 should be rejected")
	}
	if _, err := NewModel(1, -1); err == nil {
		t.Error("D < 0 should be rejected")
	}
	if _, err := NewModel(math.Inf(1), 0); err == nil {
		t.Error("infinite λ should be rejected")
	}
	if _, err := NewModel(0.1, 2); err != nil {
		t.Errorf("valid model rejected: %v", err)
	}
}

func TestProposition1ClosedForm(t *testing.T) {
	// Hand-checked value: λ=0.1, D=1, W=10, C=1, R=2.
	m := mustModel(t, 0.1, 1)
	got := m.ExpectedTime(10, 1, 2)
	want := math.Exp(0.2) * (10 + 1) * (math.Exp(1.1) - 1)
	if !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("E[T] = %v, want %v", got, want)
	}
}

func TestClosedFormEqualsRecursion(t *testing.T) {
	// Proposition 1's factored form must equal the Eq. 3 recursion.
	lambdas := []float64{1e-6, 1e-3, 0.01, 0.1, 1}
	for _, l := range lambdas {
		for _, d := range []float64{0, 0.5, 5} {
			m := mustModel(t, l, d)
			for _, w := range []float64{0.1, 1, 50, 500} {
				for _, c := range []float64{0, 0.1, 3} {
					for _, r := range []float64{0, 0.2, 4} {
						a := m.ExpectedTime(w, c, r)
						b := m.ExpectedTimeRecursion(w, c, r)
						if !numeric.AlmostEqual(a, b, 1e-9) {
							t.Errorf("λ=%v D=%v W=%v C=%v R=%v: closed %v ≠ recursion %v", l, d, w, c, r, a, b)
						}
					}
				}
			}
		}
	}
}

func TestExpectedTimeLimits(t *testing.T) {
	m := mustModel(t, 1e-9, 0)
	// As λ → 0, E[T] → W + C.
	got := m.ExpectedTime(100, 5, 3)
	if math.Abs(got-105) > 1e-4 {
		t.Errorf("small-λ limit: E[T] = %v, want ≈ 105", got)
	}
	// Overflow regime returns +Inf, not NaN or panic.
	m2 := mustModel(t, 1, 0)
	if got := m2.ExpectedTime(1e4, 0, 0); !math.IsInf(got, 1) {
		t.Errorf("overflow regime: %v, want +Inf", got)
	}
}

func TestExpectedTimeMonotoneInW(t *testing.T) {
	m := mustModel(t, 0.05, 0.1)
	prev := 0.0
	for _, w := range numeric.Linspace(0.1, 100, 200) {
		e := m.ExpectedTime(w, 1, 1)
		if e <= prev {
			t.Fatalf("E[T] not increasing at W=%v", w)
		}
		prev = e
	}
}

func TestExpectedLost(t *testing.T) {
	m := mustModel(t, 0.1, 0)
	// Eq. 4 direct evaluation.
	w, c := 10.0, 1.0
	x := m.Lambda * (w + c)
	want := 1/m.Lambda - (w+c)/(math.Exp(x)-1)
	if got := m.ExpectedLost(w, c); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("E[Tlost] = %v, want %v", got, want)
	}
	// E[Tlost] < W+C always, and → (W+C)/2 as λ→0.
	m2 := mustModel(t, 1e-8, 0)
	if got := m2.ExpectedLost(10, 0); math.Abs(got-5) > 1e-4 {
		t.Errorf("small-λ lost = %v, want ≈ 5", got)
	}
	if got := m.ExpectedLost(0, 0); got != 0 {
		t.Errorf("lost with no work = %v", got)
	}
}

func TestExpectedRecovery(t *testing.T) {
	m := mustModel(t, 0.2, 3)
	r := 2.0
	want := 3*math.Exp(0.4) + (math.Exp(0.4)-1)/0.2
	if got := m.ExpectedRecovery(r); !numeric.AlmostEqual(got, want, 1e-12) {
		t.Errorf("E[Trec] = %v, want %v", got, want)
	}
	// R = 0: only the downtime remains.
	if got := m.ExpectedRecovery(0); !numeric.AlmostEqual(got, 3, 1e-12) {
		t.Errorf("E[Trec] with R=0 = %v, want 3", got)
	}
}

func TestAlwaysRecoverOverestimates(t *testing.T) {
	// The Bouguerra et al. formula must strictly exceed the exact one
	// whenever R > 0 (the first attempt pays a recovery it shouldn't).
	m := mustModel(t, 0.05, 0.5)
	for _, w := range []float64{1, 10, 100} {
		for _, r := range []float64{0.5, 2, 10} {
			exact := m.ExpectedTime(w, 1, r)
			flawed := m.ExpectedTimeAlwaysRecover(w, 1, r)
			if flawed <= exact {
				t.Errorf("W=%v R=%v: flawed %v should exceed exact %v", w, r, flawed, exact)
			}
		}
	}
	// And agree when R = 0.
	exact := m.ExpectedTime(10, 1, 0)
	flawed := m.ExpectedTimeAlwaysRecover(10, 1, 0)
	if !numeric.AlmostEqual(exact, flawed, 1e-12) {
		t.Errorf("R=0: exact %v ≠ flawed %v", exact, flawed)
	}
}

func TestYoungDalyPeriods(t *testing.T) {
	c, lambda := 0.1, 1e-3
	young := YoungPeriod(c, lambda)
	if math.Abs(young-math.Sqrt(2*c/lambda)) > 1e-12 {
		t.Errorf("Young = %v", young)
	}
	daly := DalyPeriod(c, lambda)
	// Daly refines Young; they agree to first order.
	if math.Abs(daly-young)/young > 0.2 {
		t.Errorf("Daly %v too far from Young %v", daly, young)
	}
	// Degenerate regime: C ≥ 2·MTBF pins the period at the MTBF.
	if got := DalyPeriod(10, 1); got != 1 {
		t.Errorf("Daly degenerate = %v, want MTBF", got)
	}
}

func TestOptimalChunkStationarity(t *testing.T) {
	// The optimal chunk length must satisfy (1−λW)e^{λW} = e^{−λC}.
	for _, lambda := range []float64{1e-4, 1e-2, 0.5} {
		for _, c := range []float64{0.01, 0.3, 5} {
			w, err := OptimalChunk(c, lambda)
			if err != nil {
				t.Fatalf("OptimalChunk(%v, %v): %v", c, lambda, err)
			}
			if w <= 0 {
				t.Fatalf("chunk must be positive, got %v", w)
			}
			u := lambda * w
			lhs := (1 - u) * math.Exp(u)
			rhs := math.Exp(-lambda * c)
			if !numeric.AlmostEqual(lhs, rhs, 1e-8) {
				t.Errorf("λ=%v C=%v: stationarity %v ≠ %v", lambda, c, lhs, rhs)
			}
		}
	}
}

func TestOptimalChunkCount(t *testing.T) {
	m := mustModel(t, 0.01, 0.2)
	wTotal, c, r := 1000.0, 0.5, 0.5
	best, bestE, err := m.OptimalChunkCount(wTotal, c, r)
	if err != nil {
		t.Fatal(err)
	}
	if best < 1 {
		t.Fatalf("chunk count %d", best)
	}
	// The integer optimum must beat its neighbors.
	for _, mm := range []int{best - 1, best + 1} {
		if mm < 1 {
			continue
		}
		if e := m.EqualChunkMakespan(wTotal, c, r, mm); e < bestE {
			t.Errorf("neighbor m=%d has %v < optimum %v", mm, e, bestE)
		}
	}
	if _, _, err := m.OptimalChunkCount(-5, c, r); err == nil {
		t.Error("negative work should fail")
	}
}

func TestEqualChunkConvexInCount(t *testing.T) {
	m := mustModel(t, 0.02, 0)
	var ys []float64
	for k := 1; k <= 60; k++ {
		ys = append(ys, m.EqualChunkMakespan(500, 1, 1, k))
	}
	// The sequence decreases to the optimum then increases (discrete
	// convexity of m ↦ m(e^{λ(W/m+C)}−1)).
	minIdx := 0
	for i, y := range ys {
		if y < ys[minIdx] {
			minIdx = i
		}
	}
	for i := 1; i <= minIdx; i++ {
		if ys[i] > ys[i-1] {
			t.Fatalf("not decreasing before optimum at k=%d", i+1)
		}
	}
	for i := minIdx + 1; i < len(ys); i++ {
		if ys[i] < ys[i-1] {
			t.Fatalf("not increasing after optimum at k=%d", i+1)
		}
	}
}

func TestPeriodMakespan(t *testing.T) {
	m := mustModel(t, 0.01, 0.1)
	// Period ≥ total work: a single chunk.
	single := m.PeriodMakespan(100, 1, 1, 200)
	direct := m.ExpectedTime(100, 1, 1)
	if !numeric.AlmostEqual(single, direct, 1e-12) {
		t.Errorf("single-chunk period = %v, want %v", single, direct)
	}
	// Exact optimal period (from the Lambert chunk) cannot lose to Young
	// or Daly by more than a whisker, and the optimum over equal chunks
	// lower-bounds all periods.
	_, bestE, err := m.OptimalChunkCount(100, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, per := range []float64{YoungPeriod(1, 0.01), DalyPeriod(1, 0.01)} {
		if e := m.PeriodMakespan(100, 1, 1, per); e < bestE-1e-9 {
			t.Errorf("period %v beats the equal-chunk optimum: %v < %v", per, e, bestE)
		}
	}
	if !math.IsInf(m.PeriodMakespan(100, 1, 1, 0), 1) {
		t.Error("non-positive period should be +Inf")
	}
}

func TestProofGDerivatives(t *testing.T) {
	lambda, w, c := 0.05, 200.0, 2.0
	// Numerical derivative check of g'.
	for _, mm := range []float64{2, 5, 10, 20} {
		h := 1e-5
		num := (ProofG(lambda, w, c, mm+h) - ProofG(lambda, w, c, mm-h)) / (2 * h)
		ana := ProofGPrime(lambda, w, c, mm)
		if !numeric.AlmostEqual(num, ana, 1e-4) {
			t.Errorf("g'(%v): numeric %v vs analytic %v", mm, num, ana)
		}
		if ProofGDoublePrime(lambda, w, c, mm) <= 0 {
			t.Errorf("g'' must be positive at m=%v", mm)
		}
	}
	if !math.IsInf(ProofG(lambda, w, c, 0), 1) {
		t.Error("g(0) should be +Inf")
	}
}

func TestReductionRiggedStationarity(t *testing.T) {
	// Under λ = 1/(2T) and C = (ln2 − ½)/λ the proof shows g'(n) = 0 for
	// W = nT: the equal-chunk count n is exactly stationary.
	tVal := 120.0
	lambda := 1 / (2 * tVal)
	c := (math.Ln2 - 0.5) / lambda
	n := 7.0
	if got := ProofGPrime(lambda, n*tVal, c, n); math.Abs(got) > 1e-10 {
		t.Errorf("g'(n) = %v, want 0", got)
	}
	// e^{λ(T+C)} = 2 exactly.
	if got := math.Exp(lambda * (tVal + c)); !numeric.AlmostEqual(got, 2, 1e-12) {
		t.Errorf("e^{λ(T+C)} = %v, want 2", got)
	}
}

func TestWaste(t *testing.T) {
	m := mustModel(t, 1e-4, 0)
	w := m.Waste(100, 1, 1)
	if w <= 0 {
		t.Errorf("waste must be positive, got %v", w)
	}
	if !math.IsInf(m.Waste(0, 1, 1), 1) {
		t.Error("waste of zero work should be +Inf")
	}
}

func TestExpectedTimePositiveProperty(t *testing.T) {
	f := func(lRaw, wRaw, cRaw, rRaw, dRaw float64) bool {
		lambda := math.Abs(math.Mod(lRaw, 1)) + 1e-6
		w := math.Abs(math.Mod(wRaw, 100))
		c := math.Abs(math.Mod(cRaw, 10))
		r := math.Abs(math.Mod(rRaw, 10))
		d := math.Abs(math.Mod(dRaw, 10))
		m, err := NewModel(lambda, d)
		if err != nil {
			return false
		}
		e := m.ExpectedTime(w, c, r)
		// E[T] ≥ W + C (can't beat failure-free), and increases with R.
		if e < w+c-1e-9 {
			return false
		}
		return m.ExpectedTime(w, c, r+1) >= e
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
