package expectation

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// SegmentKernel is the fast evaluator behind the chain/DAG placement DPs
// (Proposition 3 and its generalizations). The DP transition needs the
// segment expectation of Proposition 1 for O(n²) (start, end) pairs,
//
//	E(x, j) = e^{λ·rec(x)} (1/λ + D) (e^{λ(P(j+1) − P(x) + C_j)} − 1),
//
// and the naive evaluation pays one math.Exp plus one math.Expm1 per
// pair. The kernel instead precomputes, once per problem (O(n) exp
// calls),
//
//	endFrac/endExp[j]     = e^{λ(P(j+1) + C_j)}   (scaled, never overflows)
//	startFrac/startExp[x] = e^{−λ·P(x)}           (scaled)
//	amp[x]                = e^{λ·rec(x)} (1/λ + D)
//
// so each transition becomes two multiplies and a table-backed power-of-
// two scaling — zero transcendental calls in the inner loop.
//
// # Numerical-stability contract
//
// The fused product e^{t_j}·e^{−u_x} − 1 loses relative precision when
// the segment argument a = λ(w + C) is small (the classic expm1
// cancellation): the error is about 4ε·(1 + 1/a). Segment therefore
// falls back to the expm1-stable path — bit-identical to
// Model.ExpectedTime — whenever a < StableArgThreshold, keeping the fast
// path's relative error below ~4·10⁻¹³ while the practically dominant
// λw ≪ 1 regime retains full precision. Arguments past
// numeric.MaxExpArg report +Inf, and λ·rec(x) past it reports +Inf,
// exactly like Model.ExpectedTime.
//
// For very large absolute prefixes (λ·P(n) beyond ~7·10⁵) the scaled
// tables themselves lose up to λ·P(n)·2⁻⁵² of relative accuracy (see
// numeric.ExpScaled); Slack widens with the problem's magnitude so that
// pruning stays exact even there.
//
// # Exact pruning
//
// Bound(x, j) returns a value that is — up to the Slack factor — a lower
// bound on Segment(x, k) for every k ≥ j: it evaluates the suffix
// minimum of the end table, and scaling by the common positive factors
// e^{−λP(x)} and amp[x] is monotone in floating point (rounding is
// monotone, power-of-two scaling is exact). A DP scanning j upward may
// therefore stop as soon as Bound(x, j+1) ≥ best·Slack(): every skipped
// candidate's segment term alone already exceeds the incumbent, and DP
// tails are nonnegative, so no skipped candidate can strictly improve.
// Since the paper's recurrences break ties toward the earliest scanned
// index, the pruned scan reproduces the unpruned kernel scan exactly.
type SegmentKernel struct {
	model  Model
	prefix []float64 // prefix[i] = Σ_{k<i} weights[k], len n+1
	ckpt   []float64
	t      []float64 // t[j] = λ·(prefix[j+1] + C_j)
	u      []float64 // u[x] = λ·prefix[x]

	endFrac   []float64 // e^{t[j]} scaled: frac ∈ [1,2)
	endExp    []int32
	startFrac []float64 // e^{−u[x]} scaled
	startExp  []int32

	amp    []float64 // amp[x] = e^{λ·rec(x)}·(1/λ + D); see recInf
	lrec   []float64 // lrec[x] = λ·rec(x); the certifier compares these
	recInf []bool    // λ·rec(x) > numeric.MaxExpArg → Segment is +Inf
	sufMin []int32   // sufMin[j] = argmin_{k ≥ j} t[k]
	slack  float64
}

// StableArgThreshold is the segment argument λ(W+C) below which Segment
// uses the expm1-stable path (bit-identical to Model.ExpectedTime)
// instead of the fused scaled product. At the threshold the fast path's
// relative error is about 4ε·(1+2¹⁰) ≈ 4·10⁻¹³.
const StableArgThreshold = 1.0 / 1024

// kernelBaseSlack covers the fast path's relative error (both in Segment
// and in Bound) with three orders of magnitude to spare.
const kernelBaseSlack = 1e-9

// NewSegmentKernel builds the kernel for a positional problem: weights,
// per-position checkpoint costs, and recBefore[x] — the recovery cost in
// force when a segment starts at position x (R₀ for x = 0 in the chain
// problem). All three slices must have equal, positive length.
func NewSegmentKernel(m Model, weights, ckpt, recBefore []float64) (*SegmentKernel, error) {
	k := &SegmentKernel{}
	if err := k.Reinit(m, weights, ckpt, recBefore); err != nil {
		return nil, err
	}
	return k, nil
}

// Reinit rebuilds the kernel in place for a new problem, reusing the
// table capacity of previous builds — the portfolio solvers run one
// per-order DP per linearization strategy and reinitialize one kernel
// across them instead of allocating ~10 tables per order. A reused
// kernel is indistinguishable from a fresh NewSegmentKernel build.
func (k *SegmentKernel) Reinit(m Model, weights, ckpt, recBefore []float64) error {
	if err := m.Validate(); err != nil {
		return err
	}
	n := len(weights)
	if n == 0 {
		return fmt.Errorf("expectation: kernel needs at least one position")
	}
	if len(ckpt) != n || len(recBefore) != n {
		return fmt.Errorf("expectation: kernel slice lengths differ (%d, %d, %d)", n, len(ckpt), len(recBefore))
	}
	k.model = m
	k.prefix = grow(k.prefix, n+1)
	k.ckpt = ckpt
	k.t = grow(k.t, n)
	k.u = grow(k.u, n)
	k.endFrac = grow(k.endFrac, n)
	k.endExp = grow(k.endExp, n)
	k.startFrac = grow(k.startFrac, n)
	k.startExp = grow(k.startExp, n)
	k.amp = grow(k.amp, n)
	k.lrec = grow(k.lrec, n)
	k.recInf = grow(k.recInf, n)
	k.sufMin = grow(k.sufMin, n)
	k.prefix[0] = 0
	for i, w := range weights {
		k.prefix[i+1] = k.prefix[i] + w
	}
	scale := 1/m.Lambda + m.Downtime
	for i := 0; i < n; i++ {
		k.t[i] = m.Lambda * (k.prefix[i+1] + ckpt[i])
		k.u[i] = m.Lambda * k.prefix[i]
		f, e := numeric.ExpScaled(k.t[i])
		k.endFrac[i], k.endExp[i] = f, int32(e)
		f, e = numeric.ExpScaled(-k.u[i])
		k.startFrac[i], k.startExp[i] = f, int32(e)
		lr := m.Lambda * recBefore[i]
		k.lrec[i] = lr
		if lr > numeric.MaxExpArg {
			k.recInf[i] = true
			k.amp[i] = math.Inf(1)
		} else {
			k.recInf[i] = false // may be stale from a reused build
			k.amp[i] = math.Exp(lr) * scale
		}
	}
	// Suffix argmin of the end table, compared by the full-precision
	// exponents t[j] rather than the scaled pairs: the pairs lose the
	// magnitude of saturated entries (they all collapse to the sentinel),
	// while t keeps the true order everywhere. Candidates whose t are
	// within an ulp of each other can rank either way against their
	// scaled values; Slack absorbs that, as it does the cross-path
	// comparisons.
	best := int32(n - 1)
	k.sufMin[n-1] = best
	for j := n - 2; j >= 0; j-- {
		if k.t[j] < k.t[best] {
			best = int32(j)
		}
		k.sufMin[j] = best
	}
	// Pruning slack: fast-path error plus the large-prefix degradation of
	// the scaled tables (λ·P(n)·2⁻⁵², with headroom).
	k.slack = 1 + kernelBaseSlack + 8e-16*math.Max(1, k.t[n-1])
	return nil
}

// grow returns s resized to n, reusing capacity when possible; grown
// elements may hold stale content, which Reinit fully overwrites.
func grow[T any](s []T, n int) []T {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]T, n)
}

// Len returns the number of positions.
func (k *SegmentKernel) Len() int { return len(k.t) }

// Segment returns the Proposition 1 expectation of executing positions
// [x, j] and checkpointing after j, with the recovery cost in force at x.
// It agrees with Model.ExpectedTime(P(j+1)−P(x), C_j, rec(x)) to the
// contract documented on SegmentKernel (bit-identical below
// StableArgThreshold, ≲4·10⁻¹³ relative above it, same ±Inf semantics).
func (k *SegmentKernel) Segment(x, j int) float64 {
	if k.recInf[x] {
		return math.Inf(1)
	}
	arg := k.t[j] - k.u[x]
	if arg > numeric.MaxExpArg {
		return math.Inf(1)
	}
	if arg < StableArgThreshold ||
		k.startExp[x] <= -numeric.ExpScaledSatExp || k.endExp[j] >= numeric.ExpScaledSatExp {
		// Expm1-stable path, mirroring Model.ExpectedTime's expression
		// tree so the result is bit-identical to the reference. Besides
		// the small-argument regime, this also covers saturated scaled
		// pairs (λ·P beyond ExpScaled's cap, ~3.7e8): their sentinel
		// exponents would cancel in the product and yield garbage, while
		// the argument difference itself is still well conditioned.
		w := k.prefix[j+1] - k.prefix[x]
		return k.amp[x] * math.Expm1(k.model.Lambda*(w+k.ckpt[j]))
	}
	frac := k.endFrac[j] * k.startFrac[x]
	return k.amp[x] * (numeric.LdexpProduct(frac, int(k.endExp[j])+int(k.startExp[x])) - 1)
}

// SegmentWithCost returns the Proposition 1 expectation of executing
// positions [x, j] and closing with a checkpoint of explicit cost c —
// for cost models whose checkpoint cost depends on the segment start, so
// it cannot live in the precomputed end table. It pays one math.Expm1
// per call but still hoists the amplitude e^{λ·rec(x)}(1/λ+D) from the
// precomputed table; the result is bit-identical to
// Model.ExpectedTime(P(j+1)−P(x), c, rec(x)).
func (k *SegmentKernel) SegmentWithCost(x, j int, c float64) float64 {
	if k.recInf[x] {
		return math.Inf(1)
	}
	w := k.prefix[j+1] - k.prefix[x]
	arg := k.model.Lambda * (w + c)
	if arg > numeric.MaxExpArg {
		return math.Inf(1)
	}
	return k.amp[x] * math.Expm1(arg)
}

// Bound returns a lower bound (up to Slack) on Segment(x, k) for every
// k ≥ j: the segment term evaluated at the suffix minimum of the end
// table. See the pruning notes on SegmentKernel.
func (k *SegmentKernel) Bound(x, j int) float64 {
	return k.Segment(x, int(k.sufMin[j]))
}

// Slack is the multiplicative safety factor for pruning comparisons:
// stop scanning only once Bound(x, j) ≥ best·Slack(). It covers the
// kernel's worst-case relative error with ample headroom, so pruning
// never discards a candidate that could strictly improve the incumbent.
func (k *SegmentKernel) Slack() float64 { return k.slack }
