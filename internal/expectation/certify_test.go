package expectation

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/rng"
)

// buildKernel is a test helper constructing a kernel or failing.
func buildKernel(t testing.TB, m Model, w, c, rec []float64) *SegmentKernel {
	t.Helper()
	k, err := NewSegmentKernel(m, w, c, rec)
	if err != nil {
		t.Fatal(err)
	}
	return k
}

func TestCertifyHomogeneous(t *testing.T) {
	m := Model{Lambda: 0.05, Downtime: 1}
	n := 20
	w := make([]float64, n)
	c := make([]float64, n)
	rec := make([]float64, n)
	r := rng.New(7)
	for i := range w {
		w[i] = r.Range(1, 10)
		c[i] = 0.4
		rec[i] = 0.4
	}
	cert := buildKernel(t, m, w, c, rec).CertifyQuadrangle()
	if !cert.Certified {
		t.Fatalf("homogeneous instance rejected: %s", cert.Reason)
	}
	if cert.BoundaryChecks != 2*(n-1) {
		t.Errorf("boundary checks = %d, want %d", cert.BoundaryChecks, 2*(n-1))
	}
	if cert.SampledChecks != qiSampleBudget {
		t.Errorf("sampled checks = %d, want %d", cert.SampledChecks, qiSampleBudget)
	}
}

func TestCertifyRejections(t *testing.T) {
	m := Model{Lambda: 0.1, Downtime: 0}
	cases := []struct {
		name       string
		w, c, rec  []float64
		wantReason string
	}{
		{
			// C drops by more than the following weight → end table dips.
			name: "checkpoint drop",
			w:    []float64{3, 0.1, 2}, c: []float64{9, 0.1, 0.1}, rec: []float64{0, 0, 0},
			wantReason: "end table not monotone (checkpoint-cost drop outweighs a task weight)",
		},
		{
			// rec jumps by more than the task weight → start factor climbs.
			name: "recovery jump",
			w:    []float64{3, 0.2, 2}, c: []float64{1, 1.1, 1.2}, rec: []float64{0.1, 50, 0.1},
			wantReason: "start factor not monotone (recovery-cost jump outweighs a task weight)",
		},
		{
			// λ·rec beyond the exp range breaks the saturation-dominance
			// argument outright.
			name: "recovery overflow",
			w:    []float64{3, 4}, c: []float64{1, 1}, rec: []float64{1e5, 1e5},
			wantReason: "recovery amplitude overflows (λ·rec past exp range)",
		},
	}
	for _, tc := range cases {
		cert := buildKernel(t, m, tc.w, tc.c, tc.rec).CertifyQuadrangle()
		if cert.Certified {
			t.Errorf("%s: certified, want rejection", tc.name)
			continue
		}
		if cert.Reason != tc.wantReason {
			t.Errorf("%s: reason %q, want %q", tc.name, cert.Reason, tc.wantReason)
		}
	}
}

// TestCertifyDeterministic pins that the certificate depends only on
// the instance: repeated runs (including on a reused kernel) agree.
func TestCertifyDeterministic(t *testing.T) {
	m := Model{Lambda: 0.02, Downtime: 0.5}
	r := rng.New(11)
	n := 40
	w := make([]float64, n)
	c := make([]float64, n)
	rec := make([]float64, n)
	for i := range w {
		w[i] = r.Range(0, 5)
		c[i] = r.Range(0, 2)
		rec[i] = r.Range(0, 2)
	}
	k := buildKernel(t, m, w, c, rec)
	first := k.CertifyQuadrangle()
	if again := k.CertifyQuadrangle(); again != first {
		t.Fatalf("certificate changed between runs: %+v vs %+v", first, again)
	}
	if err := k.Reinit(m, w, c, rec); err != nil {
		t.Fatal(err)
	}
	if again := k.CertifyQuadrangle(); again != first {
		t.Fatalf("certificate changed after Reinit: %+v vs %+v", first, again)
	}
}

// referenceCost evaluates the segment cost through the reference
// arithmetic of Model.ExpectedTime, independent of the kernel tables.
func referenceCost(m Model, prefix, c, rec []float64, x, j int) float64 {
	return m.ExpectedTime(prefix[j+1]-prefix[x], c[j], rec[x])
}

// quadrangleCounterexample scans every quadruple x < x' ≤ j < j' of the
// instance with the reference arithmetic and reports whether the
// concave quadrangle inequality is clearly violated beyond float noise.
func quadrangleCounterexample(m Model, w, c, rec []float64) bool {
	n := len(w)
	prefix := make([]float64, n+1)
	for i, v := range w {
		prefix[i+1] = prefix[i] + v
	}
	const tol = 1e-12 // clear violation: beyond any rounding of the four terms
	for x := 0; x < n-1; x++ {
		for xp := x + 1; xp < n; xp++ {
			for j := xp; j < n-1; j++ {
				for jp := j + 1; jp < n; jp++ {
					lhs := referenceCost(m, prefix, c, rec, x, j) + referenceCost(m, prefix, c, rec, xp, jp)
					rhs := referenceCost(m, prefix, c, rec, x, jp) + referenceCost(m, prefix, c, rec, xp, j)
					if math.IsInf(rhs, 1) || math.IsNaN(lhs) || math.IsNaN(rhs) {
						continue
					}
					if lhs > rhs*(1+tol)+tol {
						return true
					}
				}
			}
		}
	}
	return false
}

// FuzzQICertifier pins the certifier's soundness: it must never certify
// an instance for which exhaustive reference-arithmetic checking finds
// a quadrangle-inequality counterexample.
func FuzzQICertifier(f *testing.F) {
	f.Add(uint64(1), uint(8), 0.05, 4.0)
	f.Add(uint64(2), uint(14), 1e-6, 50.0)
	f.Add(uint64(3), uint(5), 1.5, 0.3)
	f.Add(uint64(4), uint(10), 0.01, 300.0)
	f.Fuzz(func(t *testing.T, seed uint64, n uint, lambda, scale float64) {
		size := 2 + int(n%14) // exhaustive quadruple scan stays tractable
		if !(lambda > 0) || math.IsInf(lambda, 0) || math.IsNaN(lambda) {
			t.Skip()
		}
		if !(scale >= 0) || math.IsInf(scale, 0) || scale > 1e9 {
			t.Skip()
		}
		m := Model{Lambda: lambda, Downtime: 0.5}
		r := rng.New(seed)
		w := make([]float64, size)
		c := make([]float64, size)
		rec := make([]float64, size)
		// recBefore semantics of the chain DP: rec[x] is the recovery in
		// force at segment start x, drawn independently like the solvers'
		// R vectors.
		for i := range w {
			w[i] = r.Range(0, scale)
			c[i] = r.Range(0, scale/3)
			rec[i] = r.Range(0, scale/3)
		}
		k, err := NewSegmentKernel(m, w, c, rec)
		if err != nil {
			t.Skip()
		}
		cert := k.CertifyQuadrangle()
		if !cert.Certified {
			return // rejections are always safe (they only cost the fallback)
		}
		if quadrangleCounterexample(m, w, c, rec) {
			t.Fatalf("certified an instance with a quadrangle-inequality counterexample (λ=%v scale=%v n=%d)", lambda, scale, size)
		}
	})
}

// TestCertifierSoundnessSweep is the deterministic slice of the fuzz
// property: across random instances, certified ⟹ no counterexample.
func TestCertifierSoundnessSweep(t *testing.T) {
	r := rng.New(31)
	lambdas := []float64{1e-8, 1e-3, 0.05, 0.4, 2}
	certifiedSeen := 0
	for trial := 0; trial < 200; trial++ {
		lambda := lambdas[trial%len(lambdas)]
		n := 2 + int(r.Uint64()%10)
		m := Model{Lambda: lambda, Downtime: r.Range(0, 2)}
		w := make([]float64, n)
		c := make([]float64, n)
		rec := make([]float64, n)
		for i := range w {
			w[i] = r.Range(0, 6)
			c[i] = r.Range(0, 2)
			rec[i] = r.Range(0, 2)
		}
		k := buildKernel(t, m, w, c, rec)
		cert := k.CertifyQuadrangle()
		if !cert.Certified {
			continue
		}
		certifiedSeen++
		if quadrangleCounterexample(m, w, c, rec) {
			t.Fatalf("trial %d: certified instance has a counterexample", trial)
		}
	}
	if certifiedSeen == 0 {
		t.Fatal("sweep never produced a certified instance; widen the generator")
	}
}

// TestCertifySmallChains covers the degenerate sizes the sampled stage
// skips (n < 3).
func TestCertifySmallChains(t *testing.T) {
	m := Model{Lambda: 0.1, Downtime: 0}
	one := buildKernel(t, m, []float64{5}, []float64{1}, []float64{1}).CertifyQuadrangle()
	if !one.Certified || one.SampledChecks != 0 {
		t.Fatalf("n=1: %+v", one)
	}
	two := buildKernel(t, m, []float64{5, 4}, []float64{1, 1}, []float64{1, 1}).CertifyQuadrangle()
	if !two.Certified || two.SampledChecks != 0 {
		t.Fatalf("n=2: %+v", two)
	}
	if numeric.MaxExpArg <= 0 {
		t.Fatal("impossible") // keep the numeric import honest
	}
}
