package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestP2MatchesExactQuantiles cross-checks the streaming estimator
// against the exact sorted quantiles on heavy- and light-tailed data.
func TestP2MatchesExactQuantiles(t *testing.T) {
	const n = 200_000
	gens := map[string]func(r *rng.Stream) float64{
		"uniform":     func(r *rng.Stream) float64 { return r.Float64() },
		"exponential": func(r *rng.Stream) float64 { return r.ExpFloat64() },
		"lognormal":   func(r *rng.Stream) float64 { return math.Exp(1.5 * r.NormFloat64()) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			r := rng.New(31)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen(r)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				est := NewP2Quantile(q)
				for _, x := range xs {
					est.Add(x)
				}
				exact := Quantile(xs, q)
				got := est.Value()
				// Tolerance: the P² error is a few multiples of the
				// sampling error of the order statistic itself; 2% relative
				// (plus a floor for near-zero quantiles) is comfortable at
				// this n without being vacuous.
				tol := 0.02*math.Abs(exact) + 1e-3
				if math.Abs(got-exact) > tol {
					t.Errorf("q=%g: P² %v vs exact %v (tol %v)", q, got, exact, tol)
				}
				if est.N() != n {
					t.Errorf("q=%g: N = %d, want %d", q, est.N(), n)
				}
			}
		})
	}
}

// TestP2SmallStreams pins the graceful small-n path: fewer than five
// observations interpolate the buffer exactly.
func TestP2SmallStreams(t *testing.T) {
	p := NewP2Quantile(0.5)
	if !math.IsNaN(p.Value()) {
		t.Error("empty estimator should return NaN")
	}
	p.Add(3)
	if p.Value() != 3 {
		t.Errorf("single observation: %v", p.Value())
	}
	p.Add(1)
	if got := p.Value(); got != 2 {
		t.Errorf("median of {1,3} = %v, want 2", got)
	}
	p.Add(2)
	if got := p.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
	if p.Q() != 0.5 {
		t.Errorf("Q = %v", p.Q())
	}
}

// TestP2ExactOnSortedInsertion: with exactly five observations the
// estimator is the exact interpolated order statistic.
func TestP2ExactOnSortedInsertion(t *testing.T) {
	p := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 4, 2, 3} {
		p.Add(x)
	}
	if got := p.Value(); got != 3 {
		t.Errorf("median of 1..5 = %v, want 3", got)
	}
}

func TestP2RejectsBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%v should panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

func TestKSTwoSample(t *testing.T) {
	r := rng.New(17)
	a := make([]float64, 4000)
	b := make([]float64, 5000)
	c := make([]float64, 5000)
	for i := range a {
		a[i] = r.ExpFloat64()
	}
	for i := range b {
		b[i] = r.ExpFloat64()
	}
	for i := range c {
		c[i] = r.ExpFloat64() * 1.2 // different scale: should be rejected
	}
	ok, d, err := KSTwoSampleTest(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("same-law samples rejected (D=%v)", d)
	}
	ok, d, err = KSTwoSampleTest(a, c, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("different-scale samples not rejected (D=%v)", d)
	}
	if _, err := KolmogorovSmirnovTwoSample(nil, a); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := KSTwoSampleCriticalValue(0, 1, 0.05); err == nil {
		t.Error("bad sizes should fail")
	}
	if _, err := KSTwoSampleCriticalValue(1, 1, 2); err == nil {
		t.Error("bad alpha should fail")
	}
	// The two-sample statistic against a sample of itself is zero.
	d, err = KolmogorovSmirnovTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self-KS = %v, want 0", d)
	}
}
