package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// TestP2MatchesExactQuantiles cross-checks the streaming estimator
// against the exact sorted quantiles on heavy- and light-tailed data.
func TestP2MatchesExactQuantiles(t *testing.T) {
	const n = 200_000
	gens := map[string]func(r *rng.Stream) float64{
		"uniform":     func(r *rng.Stream) float64 { return r.Float64() },
		"exponential": func(r *rng.Stream) float64 { return r.ExpFloat64() },
		"lognormal":   func(r *rng.Stream) float64 { return math.Exp(1.5 * r.NormFloat64()) },
	}
	for name, gen := range gens {
		t.Run(name, func(t *testing.T) {
			r := rng.New(31)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = gen(r)
			}
			for _, q := range []float64{0.5, 0.9, 0.99, 0.999} {
				est := NewP2Quantile(q)
				for _, x := range xs {
					est.Add(x)
				}
				exact := Quantile(xs, q)
				got := est.Value()
				// Tolerance: the P² error is a few multiples of the
				// sampling error of the order statistic itself; 2% relative
				// (plus a floor for near-zero quantiles) is comfortable at
				// this n without being vacuous.
				tol := 0.02*math.Abs(exact) + 1e-3
				if math.Abs(got-exact) > tol {
					t.Errorf("q=%g: P² %v vs exact %v (tol %v)", q, got, exact, tol)
				}
				if est.N() != n {
					t.Errorf("q=%g: N = %d, want %d", q, est.N(), n)
				}
			}
		})
	}
}

// TestP2SmallStreams pins the graceful small-n path: fewer than five
// observations interpolate the buffer exactly.
func TestP2SmallStreams(t *testing.T) {
	p := NewP2Quantile(0.5)
	if !math.IsNaN(p.Value()) {
		t.Error("empty estimator should return NaN")
	}
	p.Add(3)
	if p.Value() != 3 {
		t.Errorf("single observation: %v", p.Value())
	}
	p.Add(1)
	if got := p.Value(); got != 2 {
		t.Errorf("median of {1,3} = %v, want 2", got)
	}
	p.Add(2)
	if got := p.Value(); got != 2 {
		t.Errorf("median of {1,2,3} = %v, want 2", got)
	}
	if p.Q() != 0.5 {
		t.Errorf("Q = %v", p.Q())
	}
}

// TestP2ExactOnSortedInsertion: with exactly five observations the
// estimator is the exact interpolated order statistic.
func TestP2ExactOnSortedInsertion(t *testing.T) {
	p := NewP2Quantile(0.5)
	for _, x := range []float64{5, 1, 4, 2, 3} {
		p.Add(x)
	}
	if got := p.Value(); got != 3 {
		t.Errorf("median of 1..5 = %v, want 3", got)
	}
}

// TestP2ConstantStream: every estimate on a constant stream must be the
// constant exactly, at every prefix length — the parabolic step must not
// drift markers off a degenerate distribution.
func TestP2ConstantStream(t *testing.T) {
	for _, q := range []float64{0.01, 0.3, 0.5, 0.9, 0.999} {
		p := NewP2Quantile(q)
		for i := 1; i <= 5000; i++ {
			p.Add(42.5)
			if v := p.Value(); v != 42.5 {
				t.Fatalf("q=%v n=%d: constant stream gave %v", q, i, v)
			}
		}
	}
}

// TestP2TwoValuedFuzz hardens the duplicate-heavy edge: on a stream of
// two atoms, P²'s continuous interpolation may place the estimate
// between the atoms, but only near a rank boundary — the estimate must
// be either rank-accurate (its rank interval within a sampling-noise
// band of the target) or value-accurate (a hair off the exact atom).
// Marker heights must stay sorted and the estimate inside [min, max].
func TestP2TwoValuedFuzz(t *testing.T) {
	const n = 4000
	for seed := uint64(0); seed < 60; seed++ {
		r := rng.New(5000 + seed)
		frac := 0.02 + 0.96*r.Float64() // P(hi atom)
		q := 0.05 + 0.9*r.Float64()
		lo, hi := -1.5, 2.5
		p := NewP2Quantile(q)
		xs := make([]float64, 0, n)
		for i := 0; i < n; i++ {
			x := lo
			if r.Float64() < frac {
				x = hi
			}
			p.Add(x)
			xs = append(xs, x)
			if i >= 4 {
				for j := 0; j < 4; j++ {
					if p.heights[j] > p.heights[j+1] {
						t.Fatalf("seed=%d n=%d: marker heights out of order %v", seed, i+1, p.heights)
					}
				}
			}
		}
		v := p.Value()
		if v < lo || v > hi {
			t.Errorf("seed=%d frac=%.3f q=%.3f: estimate %v outside [%v, %v]", seed, frac, q, v, lo, hi)
			continue
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		exact := quantileSorted(sorted, q)
		rankTol := 4*math.Sqrt(n) + 10 // binomial boundary fluctuation
		valueTol := 0.02 * (hi - lo)
		if tdRankErr(sorted, v, q) > rankTol && math.Abs(v-exact) > valueTol {
			t.Errorf("seed=%d frac=%.3f q=%.3f: estimate %v (exact %v) fails both rank (%.1f > %.1f) and value tolerance",
				seed, frac, q, v, exact, tdRankErr(sorted, v, q), rankTol)
		}
	}
}

// TestP2SmallNInterpolation pins the small-n hardening: at n = 5 the
// markers are exact order statistics and Value interpolates them at the
// desired rank, so the estimate is the exact empirical quantile for ANY
// q — the raw center marker would be the median regardless of q.
func TestP2SmallNInterpolation(t *testing.T) {
	xs := []float64{50, 10, 40, 20, 30}
	for _, q := range []float64{0.25, 0.5, 0.75} { // 4q integral: bitwise exact
		p := NewP2Quantile(q)
		for _, x := range xs {
			p.Add(x)
		}
		if got, want := p.Value(), Quantile(xs, q); got != want {
			t.Errorf("n=5 q=%v: %v, want exact %v", q, got, want)
		}
	}
	for _, q := range []float64{0.1, 0.37, 0.9, 0.99} { // generic q: same up to rounding
		p := NewP2Quantile(q)
		for _, x := range xs {
			p.Add(x)
		}
		if got, want := p.Value(), Quantile(xs, q); math.Abs(got-want) > 1e-9 {
			t.Errorf("n=5 q=%v: %v, want %v", q, got, want)
		}
	}
	// Growth regime: a tail estimator over 6 ≤ n ≤ 60 must track the
	// empirical quantile within a few ranks, not sit at the median.
	for seed := uint64(0); seed < 40; seed++ {
		r := rng.New(7000 + seed)
		p := NewP2Quantile(0.9)
		xs := xs[:0]
		for i := 0; i < 60; i++ {
			x := r.Float64() * 100
			p.Add(x)
			xs = append(xs, x)
			if i+1 < 6 {
				continue
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			// The markers adapt at most one rank per observation, so the
			// inherent lag grows with the stream; 2 + 0.06·n covers the
			// observed worst case (~4 ranks at n ≈ 60) with slack while
			// still catching a median-stuck estimator (rank error ~0.4·n).
			band := 2 + 0.06*float64(i+1)
			if err := tdRankErr(sorted, p.Value(), 0.9); err > band {
				t.Errorf("seed=%d n=%d: q=0.9 estimate %v has rank error %.1f > %.1f",
					seed, i+1, p.Value(), err, band)
			}
		}
	}
}

func TestP2RejectsBadQuantile(t *testing.T) {
	for _, q := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("q=%v should panic", q)
				}
			}()
			NewP2Quantile(q)
		}()
	}
}

func TestKSTwoSample(t *testing.T) {
	r := rng.New(17)
	a := make([]float64, 4000)
	b := make([]float64, 5000)
	c := make([]float64, 5000)
	for i := range a {
		a[i] = r.ExpFloat64()
	}
	for i := range b {
		b[i] = r.ExpFloat64()
	}
	for i := range c {
		c[i] = r.ExpFloat64() * 1.2 // different scale: should be rejected
	}
	ok, d, err := KSTwoSampleTest(a, b, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("same-law samples rejected (D=%v)", d)
	}
	ok, d, err = KSTwoSampleTest(a, c, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("different-scale samples not rejected (D=%v)", d)
	}
	if _, err := KolmogorovSmirnovTwoSample(nil, a); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := KSTwoSampleCriticalValue(0, 1, 0.05); err == nil {
		t.Error("bad sizes should fail")
	}
	if _, err := KSTwoSampleCriticalValue(1, 1, 2); err == nil {
		t.Error("bad alpha should fail")
	}
	// The two-sample statistic against a sample of itself is zero.
	d, err = KolmogorovSmirnovTwoSample(a, a)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Errorf("self-KS = %v, want 0", d)
	}
}
