package stats

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"
)

func TestSummaryBasics(t *testing.T) {
	var s Summary
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Fatalf("N = %d", s.N())
	}
	if math.Abs(s.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Population variance is 4; sample variance is 32/7.
	if math.Abs(s.Variance()-32.0/7.0) > 1e-12 {
		t.Errorf("Variance = %v, want %v", s.Variance(), 32.0/7.0)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestSummaryEmpty(t *testing.T) {
	var s Summary
	if s.Mean() != 0 || s.Variance() != 0 || s.StdErr() != 0 {
		t.Error("empty summary should report zeros")
	}
}

func TestSummaryMerge(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, -3, 2.5}
	var whole Summary
	whole.AddAll(xs)
	var a, b Summary
	a.AddAll(xs[:5])
	b.AddAll(xs[5:])
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if math.Abs(a.Mean()-whole.Mean()) > 1e-12 {
		t.Errorf("merged mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if math.Abs(a.Variance()-whole.Variance()) > 1e-9 {
		t.Errorf("merged variance = %v, want %v", a.Variance(), whole.Variance())
	}
	if a.Min() != whole.Min() || a.Max() != whole.Max() {
		t.Errorf("merged min/max = %v/%v", a.Min(), a.Max())
	}
}

func TestSummaryMergeEmptyCases(t *testing.T) {
	var a, b Summary
	a.Add(3)
	a.Merge(b) // merge empty into non-empty
	if a.N() != 1 || a.Mean() != 3 {
		t.Error("merging empty changed summary")
	}
	var c Summary
	c.Merge(a) // merge into empty
	if c.N() != 1 || c.Mean() != 3 {
		t.Error("merging into empty failed")
	}
}

func TestMergeEquivalenceProperty(t *testing.T) {
	f := func(xs []float64, split uint8) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, math.Mod(x, 1e9))
			}
		}
		if len(clean) < 2 {
			return true
		}
		k := int(split) % len(clean)
		var whole, a, b Summary
		whole.AddAll(clean)
		a.AddAll(clean[:k])
		b.AddAll(clean[k:])
		a.Merge(b)
		return a.N() == whole.N() &&
			math.Abs(a.Mean()-whole.Mean()) <= 1e-6*(1+math.Abs(whole.Mean())) &&
			math.Abs(a.Variance()-whole.Variance()) <= 1e-6*(1+whole.Variance())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCI(t *testing.T) {
	var s Summary
	for i := 0; i < 10000; i++ {
		s.Add(float64(i % 2)) // mean 0.5, sd 0.5
	}
	half95 := s.CI(0.95)
	// Expected ≈ 1.96 · 0.5 / 100 ≈ 0.0098.
	if math.Abs(half95-0.0098) > 0.0005 {
		t.Errorf("CI(0.95) = %v, want ≈ 0.0098", half95)
	}
	if !s.Contains(0.5, 0.95) {
		t.Error("CI should contain the true mean")
	}
	if s.Contains(0.6, 0.95) {
		t.Error("CI should not contain 0.6")
	}
	if s.CI(0.99) <= s.CI(0.95) {
		t.Error("99% CI should be wider than 95%")
	}
}

func TestZQuantile(t *testing.T) {
	cases := []struct{ p, want float64 }{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
	}
	for _, c := range cases {
		if got := zQuantile(c.p); math.Abs(got-c.want) > 1e-4 {
			t.Errorf("zQuantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsInf(zQuantile(0), -1) || !math.IsInf(zQuantile(1), 1) {
		t.Error("zQuantile boundary values should be infinite")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	if got := Quantile(xs, 0.5); got != 3 {
		t.Errorf("median = %v, want 3", got)
	}
	if got := Quantile(xs, 0); got != 1 {
		t.Errorf("min = %v, want 1", got)
	}
	if got := Quantile(xs, 1); got != 5 {
		t.Errorf("max = %v, want 5", got)
	}
	if got := Quantile(xs, 0.25); got != 2 {
		t.Errorf("q25 = %v, want 2", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
	// Quantile must not reorder the input.
	if xs[0] != 5 {
		t.Error("Quantile modified its input")
	}
}

func TestQuantiles(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	qs := Quantiles(xs, 0, 0.5, 1)
	if qs[0] != 1 || qs[2] != 4 {
		t.Errorf("Quantiles = %v", qs)
	}
	if math.Abs(qs[1]-2.5) > 1e-12 {
		t.Errorf("median = %v, want 2.5", qs[1])
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 42} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 2 {
		t.Errorf("Under/Over = %d/%d", h.Under, h.Over)
	}
	if h.Bins[0] != 2 { // 0, 1.9
		t.Errorf("bin0 = %d, want 2", h.Bins[0])
	}
	if h.Bins[1] != 1 { // 2
		t.Errorf("bin1 = %d, want 1", h.Bins[1])
	}
	if h.Total() != 8 {
		t.Errorf("Total = %d, want 8", h.Total())
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with bad config should panic")
		}
	}()
	NewHistogram(5, 1, 3)
}

func TestIsConvex(t *testing.T) {
	if !IsConvex([]float64{4, 1, 0, 1, 4}, 0) {
		t.Error("parabola samples should be convex")
	}
	if IsConvex([]float64{0, 3, 1}, 0) {
		t.Error("non-convex sequence accepted")
	}
	if !IsConvex([]float64{0, 3, 1}, 5.1) {
		t.Error("tolerance should forgive small violations")
	}
	if !IsConvex([]float64{1, 2}, 0) || !IsConvex(nil, 0) {
		t.Error("short sequences are trivially convex")
	}
}

func TestIsConvexRel(t *testing.T) {
	if !IsConvexRel([]float64{4, 1, 0, 1, 4}, 0) {
		t.Error("parabola samples should be convex")
	}
	if IsConvexRel([]float64{0, 3, 1}, 1e-12) {
		t.Error("non-convex sequence accepted")
	}
	// The point of the relative variant: an ulp-scale dip on a huge
	// curve is noise, not concavity. The second difference here is
	// −2e-9 absolute — a dozen ulps of the 1e6 magnitude, far below
	// 1e-12 of it relatively.
	big := []float64{1e6, 1e6 + 0.500000001, 1e6 + 1}
	if !IsConvexRel(big, 1e-12) {
		t.Error("ulp-scale dip on a large curve should pass the relative probe")
	}
	if IsConvex(big, 1e-14) {
		t.Error("the absolute probe at a small tol is scale-sensitive by design (sanity check)")
	}
	// A genuine violation scales with the curve, so it still fails.
	if IsConvexRel([]float64{1e6, 2e6, 1e6}, 1e-12) {
		t.Error("genuinely concave large curve accepted")
	}
	if !IsConvexRel([]float64{1, 2}, 0) || !IsConvexRel(nil, 0) {
		t.Error("short sequences are trivially convex")
	}
}

func TestArgminSlice(t *testing.T) {
	if got := ArgminSlice([]float64{3, 1, 2}); got != 1 {
		t.Errorf("ArgminSlice = %d, want 1", got)
	}
	if got := ArgminSlice(nil); got != -1 {
		t.Errorf("ArgminSlice(nil) = %d, want -1", got)
	}
}

func TestMeanOf(t *testing.T) {
	if got := MeanOf([]float64{1, 2, 3}); got != 2 {
		t.Errorf("MeanOf = %v", got)
	}
	if got := MeanOf(nil); got != 0 {
		t.Errorf("MeanOf(nil) = %v", got)
	}
}

// TestSummaryJSONRoundTrip pins the cross-process merge contract: a
// summary that travels through JSON merges bit-identically to one that
// never left the process.
func TestSummaryJSONRoundTrip(t *testing.T) {
	var a, b Summary
	for i := 0; i < 1000; i++ {
		a.Add(math.Sqrt(float64(i)) * 1.37)
		b.Add(float64(i%7) - 3.1)
	}
	data, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back != a {
		t.Fatalf("round trip changed state: %+v vs %+v", back, a)
	}
	direct, viaJSON := a, back
	direct.Merge(b)
	viaJSON.Merge(b)
	if direct != viaJSON {
		t.Error("merge after JSON round trip is not bit-identical")
	}
	for _, bad := range []string{
		`{"n":-1,"mean":0,"m2":0,"min":0,"max":0}`,
		`{"n":3,"mean":0,"m2":-1,"min":0,"max":1}`,
		`{"n":3,"mean":0,"m2":1,"min":2,"max":1}`,
	} {
		var s Summary
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Errorf("corrupt summary %s accepted", bad)
		}
	}
}
