package stats

import (
	"encoding/json"
	"math"
	"sort"
	"testing"

	"repro/internal/rng"
)

// tdRankErr returns the rank error of estimate v for target quantile q
// over the sorted sample: the distance from q·n to the nearest rank
// consistent with v (duplicates give v a rank interval).
func tdRankErr(sorted []float64, v, q float64) float64 {
	n := len(sorted)
	lo := sort.SearchFloat64s(sorted, v)                            // ranks below v
	hi := sort.Search(n, func(i int) bool { return sorted[i] > v }) // ranks ≤ v
	target := q * float64(n)
	if target < float64(lo) {
		return float64(lo) - target
	}
	if target > float64(hi) {
		return target - float64(hi)
	}
	return 0
}

// tdBound is the pinned rank-error bound: 6·q(1−q)·n/δ + 20. The
// analytic centroid-width argument gives ~2·q(1−q)·n/δ; the factor 6
// plus the additive constant absorb interpolation and small-n effects
// (the constant dominates only in the far tails, where it is ~1e-4·n).
func tdBound(n int, q, compression float64) float64 {
	return 6*q*(1-q)*float64(n)/compression + 20
}

var tdQuantiles = []float64{0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999}

func tdSamples(t *testing.T, kind string, n int, r *rng.Stream) []float64 {
	t.Helper()
	xs := make([]float64, n)
	for i := range xs {
		switch kind {
		case "exp":
			xs[i] = r.ExpFloat64()
		case "lognormal":
			xs[i] = math.Exp(0.8 * r.NormFloat64())
		case "uniform":
			xs[i] = r.Float64()
		case "duplicates":
			xs[i] = float64(r.IntN(5))
		default:
			t.Fatalf("unknown kind %s", kind)
		}
	}
	return xs
}

func TestTDigestAccuracy(t *testing.T) {
	const n = 200_000
	for _, kind := range []string{"exp", "lognormal", "uniform", "duplicates"} {
		xs := tdSamples(t, kind, n, rng.New(101))
		td := NewTDigest(DefaultTDigestCompression)
		for _, x := range xs {
			td.Add(x)
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		if td.Min() != sorted[0] || td.Max() != sorted[n-1] {
			t.Errorf("%s: extremes %v/%v vs exact %v/%v", kind, td.Min(), td.Max(), sorted[0], sorted[n-1])
		}
		for _, q := range tdQuantiles {
			est := td.Quantile(q)
			if kind == "duplicates" {
				// Atom-heavy distributions make rank error the wrong
				// metric: a boundary centroid mixing two atoms shifts the
				// estimate by a sliver in value space, which reads as a
				// cliff-sized rank jump. Pin value error instead (all the
				// tested q targets sit inside atom runs, so the exact
				// quantile is an atom).
				exact := Quantile(xs, q)
				if math.Abs(est-exact) > 0.05 {
					t.Errorf("duplicates q=%v: estimate %v vs exact %v", q, est, exact)
				}
				continue
			}
			if err := tdRankErr(sorted, est, q); err > tdBound(n, q, td.Compression()) {
				t.Errorf("%s q=%v: estimate %v has rank error %.1f > bound %.1f",
					kind, q, est, err, tdBound(n, q, td.Compression()))
			}
		}
		if c := td.Centroids(); c > 2*DefaultTDigestCompression {
			t.Errorf("%s: %d centroids exceeds 2δ", kind, c)
		}
	}
}

// TestTDigestMerge pins the sharding use case: per-shard digests over a
// partitioned stream, folded in shard order, stay within the same rank
// bound — and the fold is deterministic (same parts, same order ⇒
// bit-identical quantiles).
func TestTDigestMerge(t *testing.T) {
	const n = 120_000
	xs := tdSamples(t, "lognormal", n, rng.New(202))
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	for _, parts := range []int{2, 7, 16} {
		fold := func() *TDigest {
			shards := make([]*TDigest, parts)
			for s := range shards {
				shards[s] = NewTDigest(DefaultTDigestCompression)
			}
			for i, x := range xs {
				shards[i*parts/n].Add(x)
			}
			out := NewTDigest(DefaultTDigestCompression)
			for _, s := range shards {
				out.Merge(s)
			}
			return out
		}
		a, b := fold(), fold()
		if a.N() != float64(n) {
			t.Fatalf("parts=%d: merged count %v", parts, a.N())
		}
		for _, q := range tdQuantiles {
			if av, bv := a.Quantile(q), b.Quantile(q); av != bv {
				t.Errorf("parts=%d q=%v: fold not deterministic (%v vs %v)", parts, q, av, bv)
			}
			// Merged digests lose a little resolution; allow 2× the
			// single-digest bound.
			if err := tdRankErr(sorted, a.Quantile(q), q); err > 2*tdBound(n, q, a.Compression()) {
				t.Errorf("parts=%d q=%v: rank error %.1f > merged bound %.1f",
					parts, q, err, 2*tdBound(n, q, a.Compression()))
			}
		}
	}
}

func TestTDigestJSONRoundTrip(t *testing.T) {
	td := NewTDigest(100)
	r := rng.New(303)
	for i := 0; i < 50_000; i++ {
		td.Add(r.ExpFloat64())
	}
	data, err := json.Marshal(td)
	if err != nil {
		t.Fatal(err)
	}
	var back TDigest
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.N() != td.N() || back.Min() != td.Min() || back.Max() != td.Max() {
		t.Errorf("round trip changed count/extremes: %v/%v/%v vs %v/%v/%v",
			back.N(), back.Min(), back.Max(), td.N(), td.Min(), td.Max())
	}
	for _, q := range tdQuantiles {
		if a, b := td.Quantile(q), back.Quantile(q); a != b {
			t.Errorf("q=%v: %v != %v after round trip", q, a, b)
		}
	}
	// Round-tripped digests keep merging.
	back.Merge(td)
	if back.N() != 2*td.N() {
		t.Errorf("merge after round trip: count %v", back.N())
	}
}

func TestTDigestJSONRejectsCorrupt(t *testing.T) {
	for _, bad := range []string{
		`{"compression":5,"count":0,"means":[],"weights":[]}`,
		`{"compression":100,"count":2,"means":[1,2],"weights":[1]}`,
		`{"compression":100,"count":2,"means":[2,1],"weights":[1,1]}`,
		`{"compression":100,"count":2,"means":[1,2],"weights":[1,-1]}`,
		`{"compression":100,"count":99,"means":[1,2],"weights":[1,1]}`,
	} {
		var td TDigest
		if err := json.Unmarshal([]byte(bad), &td); err == nil {
			t.Errorf("corrupt digest %s accepted", bad)
		}
	}
}

func TestTDigestSmallAndEdge(t *testing.T) {
	td := NewTDigest(50)
	if !math.IsNaN(td.Quantile(0.5)) {
		t.Error("empty digest should report NaN")
	}
	td.Add(3)
	for _, q := range []float64{0, 0.5, 1} {
		if v := td.Quantile(q); v != 3 {
			t.Errorf("single value digest q=%v gave %v", q, v)
		}
	}
	td.AddWeighted(5, 3)
	if td.N() != 4 {
		t.Errorf("weighted count %v", td.N())
	}
	if v := td.Quantile(0.99); v > 5 || v < 3 {
		t.Errorf("quantile %v outside data range", v)
	}
	if v := td.Quantile(0); v != 3 {
		t.Errorf("q=0 gave %v", v)
	}
	if v := td.Quantile(1); v != 5 {
		t.Errorf("q=1 gave %v", v)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("NaN add should panic")
			}
		}()
		td.Add(math.NaN())
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("non-positive weight should panic")
			}
		}()
		td.AddWeighted(1, 0)
	}()
}

// TestTDigestConstantStream: a constant stream must collapse to the
// constant at every quantile.
func TestTDigestConstantStream(t *testing.T) {
	td := NewTDigest(100)
	for i := 0; i < 10_000; i++ {
		td.Add(7.25)
	}
	for _, q := range tdQuantiles {
		if v := td.Quantile(q); v != 7.25 {
			t.Errorf("q=%v gave %v on constant stream", q, v)
		}
	}
	if td.Centroids() > 2*100 {
		t.Errorf("constant stream kept %d centroids", td.Centroids())
	}
}
