package stats

import (
	"math"
	"sort"
)

// P2Quantile is the P² (piecewise-parabolic) streaming quantile estimator
// of Jain & Chlamtac (CACM 1985): it tracks one quantile of a stream in
// O(1) memory and O(1) time per observation by maintaining five markers —
// the minimum, the maximum, the target quantile and the two midpoints —
// whose heights are nudged toward their ideal order-statistic positions
// with a parabolic (falling back to linear) interpolation step.
//
// It exists for the million-run Monte-Carlo campaigns: exact quantiles
// need every sample retained and sorted (O(runs) memory, O(runs·log runs)
// time), which sim.EstimateMakespanDistribution keeps for small campaigns
// and cross-checks against this estimator in tests; above the retention
// threshold the distribution switches to P², making memory independent of
// the run count.
type P2Quantile struct {
	q       float64
	n       int64
	heights [5]float64 // marker heights (estimated order statistics)
	pos     [5]float64 // actual marker positions, 1-based
	want    [5]float64 // desired marker positions
	dwant   [5]float64 // desired-position increments per observation
}

// NewP2Quantile returns an estimator for the q-quantile, 0 < q < 1.
func NewP2Quantile(q float64) *P2Quantile {
	if !(q > 0 && q < 1) || math.IsNaN(q) {
		panic("stats: P² quantile must be in (0, 1)")
	}
	p := &P2Quantile{q: q}
	p.pos = [5]float64{1, 2, 3, 4, 5}
	p.want = [5]float64{1, 1 + 2*q, 1 + 4*q, 3 + 2*q, 5}
	p.dwant = [5]float64{0, q / 2, q, (1 + q) / 2, 1}
	return p
}

// Q returns the target quantile.
func (p *P2Quantile) Q() float64 { return p.q }

// N returns the number of observations seen.
func (p *P2Quantile) N() int64 { return p.n }

// Add accumulates one observation.
func (p *P2Quantile) Add(x float64) {
	if p.n < 5 {
		p.heights[p.n] = x
		p.n++
		if p.n == 5 {
			sort.Float64s(p.heights[:])
		}
		return
	}
	// Locate the cell containing x and update the extreme markers.
	var k int
	switch {
	case x < p.heights[0]:
		p.heights[0] = x
		k = 0
	case x >= p.heights[4]:
		if x > p.heights[4] {
			p.heights[4] = x
		}
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < p.heights[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		p.pos[i]++
	}
	for i := range p.want {
		p.want[i] += p.dwant[i]
	}
	p.n++
	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := p.want[i] - p.pos[i]
		if (d >= 1 && p.pos[i+1]-p.pos[i] > 1) || (d <= -1 && p.pos[i-1]-p.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			h := p.parabolic(i, s)
			if p.heights[i-1] < h && h < p.heights[i+1] {
				p.heights[i] = h
			} else {
				p.heights[i] = p.linear(i, s)
			}
			p.pos[i] += s
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction s (±1).
func (p *P2Quantile) parabolic(i int, s float64) float64 {
	num1 := p.pos[i] - p.pos[i-1] + s
	num2 := p.pos[i+1] - p.pos[i] - s
	den := p.pos[i+1] - p.pos[i-1]
	t1 := (p.heights[i+1] - p.heights[i]) / (p.pos[i+1] - p.pos[i])
	t2 := (p.heights[i] - p.heights[i-1]) / (p.pos[i] - p.pos[i-1])
	return p.heights[i] + s/den*(num1*t1+num2*t2)
}

// linear is the fallback height prediction when the parabola overshoots a
// neighbouring marker.
func (p *P2Quantile) linear(i int, s float64) float64 {
	j := i + int(s)
	return p.heights[i] + s*(p.heights[j]-p.heights[i])/(p.pos[j]-p.pos[i])
}

// Value returns the current quantile estimate. For fewer than five
// observations it interpolates the sorted buffer exactly, so small
// streams degrade gracefully; NaN when empty.
//
// For n ≥ 5 the estimate interpolates the marker polyline (pos, heights)
// at the desired rank 1 + q·(n−1) rather than returning the raw center
// marker: right after initialization the center marker is the sample
// median whatever q is, and it takes O(|q−0.5|·n) further observations
// to drift to the target rank. At n = 5 the markers are exact order
// statistics, so the interpolation is the exact empirical quantile for
// any q; at large n the center marker position is within one rank of
// the target and the correction is a vanishing fraction of the
// inter-marker span, so the estimate coincides with the classic
// heights[2] in the limit.
func (p *P2Quantile) Value() float64 {
	if p.n == 0 {
		return math.NaN()
	}
	if p.n < 5 {
		buf := make([]float64, p.n)
		copy(buf, p.heights[:p.n])
		sort.Float64s(buf)
		return quantileSorted(buf, p.q)
	}
	t := 1 + p.q*float64(p.n-1)
	for i := 0; i < 4; i++ {
		if t <= p.pos[i+1] {
			frac := (t - p.pos[i]) / (p.pos[i+1] - p.pos[i])
			return p.heights[i] + frac*(p.heights[i+1]-p.heights[i])
		}
	}
	return p.heights[4]
}
