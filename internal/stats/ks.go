package stats

import (
	"fmt"
	"math"
	"sort"
)

// KolmogorovSmirnov returns the one-sample KS statistic
// D_n = sup_x |F_n(x) − F(x)| between the empirical distribution of the
// sample and the hypothesized CDF. It is used to validate the failure-law
// samplers against their analytic CDFs and fitted laws against traces.
func KolmogorovSmirnov(sample []float64, cdf func(float64) float64) (float64, error) {
	n := len(sample)
	if n == 0 {
		return 0, fmt.Errorf("stats: empty sample")
	}
	sorted := make([]float64, n)
	copy(sorted, sample)
	sort.Float64s(sorted)
	var d float64
	for i, x := range sorted {
		f := cdf(x)
		if f < 0 || f > 1 || math.IsNaN(f) {
			return 0, fmt.Errorf("stats: CDF returned %v at %v", f, x)
		}
		lo := float64(i) / float64(n)
		hi := float64(i+1) / float64(n)
		if diff := math.Abs(hi - f); diff > d {
			d = diff
		}
		if diff := math.Abs(f - lo); diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSCriticalValue returns the approximate critical value of the KS
// statistic at the given significance level alpha (two-sided), using the
// asymptotic Kolmogorov distribution: c(α)/√n with
// c(α) = sqrt(−ln(α/2)/2). Valid for n ≳ 35.
func KSCriticalValue(n int, alpha float64) (float64, error) {
	if n <= 0 {
		return 0, fmt.Errorf("stats: sample size must be positive, got %d", n)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: significance level must be in (0, 1), got %v", alpha)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c / math.Sqrt(float64(n)), nil
}

// KSTest reports whether the sample is consistent with the CDF at
// significance alpha: true means "not rejected".
func KSTest(sample []float64, cdf func(float64) float64, alpha float64) (bool, float64, error) {
	d, err := KolmogorovSmirnov(sample, cdf)
	if err != nil {
		return false, 0, err
	}
	crit, err := KSCriticalValue(len(sample), alpha)
	if err != nil {
		return false, 0, err
	}
	return d <= crit, d, nil
}

// KolmogorovSmirnovTwoSample returns the two-sample KS statistic
// D = sup_x |F_a(x) − F_b(x)| between the empirical distributions of a
// and b. It is used where no analytic CDF exists — e.g. checking that a
// common-random-number campaign's makespan marginals match independent
// sampling (sim.Campaign).
func KolmogorovSmirnovTwoSample(a, b []float64) (float64, error) {
	if len(a) == 0 || len(b) == 0 {
		return 0, fmt.Errorf("stats: empty sample (%d, %d)", len(a), len(b))
	}
	sa := make([]float64, len(a))
	copy(sa, a)
	sort.Float64s(sa)
	sb := make([]float64, len(b))
	copy(sb, b)
	sort.Float64s(sb)
	var d float64
	i, j := 0, 0
	for i < len(sa) && j < len(sb) {
		// Evaluate both empirical CDFs just past the next distinct value,
		// consuming every tie at once so duplicates (within or across
		// samples) do not inflate the statistic.
		x := sa[i]
		if sb[j] < x {
			x = sb[j]
		}
		for i < len(sa) && sa[i] == x {
			i++
		}
		for j < len(sb) && sb[j] == x {
			j++
		}
		diff := math.Abs(float64(i)/float64(len(sa)) - float64(j)/float64(len(sb)))
		if diff > d {
			d = diff
		}
	}
	return d, nil
}

// KSTwoSampleCriticalValue returns the asymptotic critical value for the
// two-sample KS statistic at significance alpha:
// c(α)·sqrt((n+m)/(n·m)) with c(α) = sqrt(−ln(α/2)/2).
func KSTwoSampleCriticalValue(n, m int, alpha float64) (float64, error) {
	if n <= 0 || m <= 0 {
		return 0, fmt.Errorf("stats: sample sizes must be positive, got %d and %d", n, m)
	}
	if alpha <= 0 || alpha >= 1 {
		return 0, fmt.Errorf("stats: significance level must be in (0, 1), got %v", alpha)
	}
	c := math.Sqrt(-math.Log(alpha/2) / 2)
	return c * math.Sqrt(float64(n+m)/(float64(n)*float64(m))), nil
}

// KSTwoSampleTest reports whether the two samples are consistent with one
// underlying distribution at significance alpha: true means "not
// rejected".
func KSTwoSampleTest(a, b []float64, alpha float64) (bool, float64, error) {
	d, err := KolmogorovSmirnovTwoSample(a, b)
	if err != nil {
		return false, 0, err
	}
	crit, err := KSTwoSampleCriticalValue(len(a), len(b), alpha)
	if err != nil {
		return false, 0, err
	}
	return d <= crit, d, nil
}
