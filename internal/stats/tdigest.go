package stats

// TDigest is a mergeable streaming quantile sketch (Dunning & Ertl's
// t-digest, merging variant). It complements P2Quantile in the
// Monte-Carlo pipeline: P² tracks one pre-declared quantile of one
// stream in O(1) memory, while a t-digest summarizes the *whole*
// distribution in O(δ) centroids and — the property the sharded
// campaigns need — two digests built on disjoint shards Merge into a
// digest of the union. Million-run makespan distributions therefore
// aggregate across shards (and across separate processes, via the JSON
// serialization) in O(centroids) memory per shard.
//
// Accuracy: centroids are size-bounded by the scale function
// k(q) = δ/(2π)·asin(2q−1), which keeps a centroid's rank width below
// ≈ 4·q(1−q)/δ of the total count. The rank error of Quantile is at
// most half the local centroid width, so observed rank error is
// ≤ ~2·q(1−q)·n/δ + O(1) — tight at the tails (q(1−q) → 0), loosest at
// the median. The tdigest tests pin a conservative 6·q(1−q)·n/δ + 20
// bound against exact sort quantiles across distributions and merge
// shapes; DESIGN.md documents the bound. Min and max are tracked
// exactly.
//
// Determinism: Add, Merge and compression are deterministic functions
// of the observation sequence and merge order. Two digests fed the same
// stream are identical; folds over the same parts in the same order are
// identical (the sharded campaigns always fold in block/shard order).
// Folding in a *different* grouping yields a statistically equivalent
// but not bit-identical digest — the campaign determinism contract
// therefore pins means/deltas bitwise and digests in quantile space.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// DefaultTDigestCompression is the δ used by the campaign pipeline:
// ~2·δ centroids worst case (≈6 KB), mid-quantile rank error ~n/400.
const DefaultTDigestCompression = 200

// TDigest accumulates observations into size-bounded centroids. The
// zero value is not usable; call NewTDigest.
type TDigest struct {
	compression float64
	// merged centroids, sorted ascending by mean
	means   []float64
	weights []float64
	// unmerged buffer, compressed when it reaches cap(bufMeans)
	bufMeans   []float64
	bufWeights []float64
	count      float64 // total weight, including the buffer
	min, max   float64
}

// NewTDigest returns a digest with the given compression δ (≥ 10;
// DefaultTDigestCompression is the pipeline's choice).
func NewTDigest(compression float64) *TDigest {
	if !(compression >= 10) || math.IsInf(compression, 0) {
		panic(fmt.Sprintf("stats: t-digest compression must be ≥ 10 and finite, got %v", compression))
	}
	bufCap := 4 * int(compression)
	return &TDigest{
		compression: compression,
		bufMeans:    make([]float64, 0, bufCap),
		bufWeights:  make([]float64, 0, bufCap),
		min:         math.Inf(1),
		max:         math.Inf(-1),
	}
}

// Compression returns δ.
func (t *TDigest) Compression() float64 { return t.compression }

// N returns the total weight (observation count for unit-weight adds).
func (t *TDigest) N() float64 { return t.count }

// Min returns the smallest observation (+Inf when empty).
func (t *TDigest) Min() float64 { return t.min }

// Max returns the largest observation (−Inf when empty).
func (t *TDigest) Max() float64 { return t.max }

// Centroids returns the current centroid count (after compressing the
// buffer), the O(δ) memory footprint of the sketch.
func (t *TDigest) Centroids() int {
	t.compress()
	return len(t.means)
}

// Add accumulates one observation with unit weight.
func (t *TDigest) Add(x float64) { t.AddWeighted(x, 1) }

// AddWeighted accumulates one observation with the given positive
// weight. NaN observations and non-positive weights panic: a sketch
// that silently absorbed them would mask simulation bugs.
func (t *TDigest) AddWeighted(x, w float64) {
	if math.IsNaN(x) || !(w > 0) {
		panic(fmt.Sprintf("stats: t-digest add of x=%v w=%v", x, w))
	}
	if len(t.bufMeans) == cap(t.bufMeans) {
		t.compress()
	}
	t.bufMeans = append(t.bufMeans, x)
	t.bufWeights = append(t.bufWeights, w)
	t.count += w
	if x < t.min {
		t.min = x
	}
	if x > t.max {
		t.max = x
	}
}

// Merge folds other into t, as if every observation of other had been
// added to t (in sketch form: other's centroids become weighted
// observations). other is not modified. Merging is how shard digests
// aggregate; fold order is part of the determinism contract.
func (t *TDigest) Merge(other *TDigest) {
	if other == nil || other.count == 0 {
		return
	}
	add := func(ms, ws []float64) {
		for i, m := range ms {
			if len(t.bufMeans) == cap(t.bufMeans) {
				t.compress()
			}
			t.bufMeans = append(t.bufMeans, m)
			t.bufWeights = append(t.bufWeights, ws[i])
			t.count += ws[i]
		}
	}
	add(other.means, other.weights)
	add(other.bufMeans, other.bufWeights)
	if other.min < t.min {
		t.min = other.min
	}
	if other.max > t.max {
		t.max = other.max
	}
	t.compress()
}

// compress merges the buffer into the centroid list with the k1 scale
// function. Deterministic: the combined centroids are sorted by
// (mean, weight) and swept left to right.
func (t *TDigest) compress() {
	if len(t.bufMeans) == 0 {
		return
	}
	n := len(t.means) + len(t.bufMeans)
	ms := make([]float64, 0, n)
	ws := make([]float64, 0, n)
	ms = append(append(ms, t.means...), t.bufMeans...)
	ws = append(append(ws, t.weights...), t.bufWeights...)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		ia, ib := idx[a], idx[b]
		if ms[ia] != ms[ib] {
			return ms[ia] < ms[ib]
		}
		return ws[ia] < ws[ib]
	})
	total := 0.0
	for _, w := range ws {
		total += w
	}
	outM := t.means[:0]
	outW := t.weights[:0]
	curM, curW := ms[idx[0]], ws[idx[0]]
	emitted := 0.0 // weight of centroids already emitted
	qLimit := t.qFromK(t.kFromQ(0) + 1)
	for _, j := range idx[1:] {
		m, w := ms[j], ws[j]
		if (emitted+curW+w)/total <= qLimit {
			// Absorb into the current centroid (weighted mean update).
			// Equal means are NOT merged beyond the size bound on
			// purpose: interpolation accuracy on atom-heavy streams
			// depends on atoms staying split across many centroids, so
			// the rank knots stay dense around each atom.
			curW += w
			curM += w * (m - curM) / curW
		} else {
			outM = append(outM, curM)
			outW = append(outW, curW)
			emitted += curW
			qLimit = t.qFromK(t.kFromQ(emitted/total) + 1)
			curM, curW = m, w
		}
	}
	outM = append(outM, curM)
	outW = append(outW, curW)
	t.means, t.weights = outM, outW
	t.bufMeans = t.bufMeans[:0]
	t.bufWeights = t.bufWeights[:0]
}

// kFromQ is the k1 scale function δ/(2π)·asin(2q−1).
func (t *TDigest) kFromQ(q float64) float64 {
	if q <= 0 {
		return -t.compression / 4
	}
	if q >= 1 {
		return t.compression / 4
	}
	return t.compression / (2 * math.Pi) * math.Asin(2*q-1)
}

// qFromK inverts kFromQ.
func (t *TDigest) qFromK(k float64) float64 {
	if k >= t.compression/4 {
		return 1
	}
	if k <= -t.compression/4 {
		return 0
	}
	return (math.Sin(k*2*math.Pi/t.compression) + 1) / 2
}

// Quantile returns the q-quantile estimate (0 ≤ q ≤ 1) by piecewise
// linear interpolation in rank space between centroid midpoints, with
// the exact min and max as anchors. NaN when empty.
func (t *TDigest) Quantile(q float64) float64 {
	t.compress()
	if len(t.means) == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return t.min
	}
	if q >= 1 {
		return t.max
	}
	target := q * t.count
	// Rank-space knots: (0, min), (cum_i + w_i/2, mean_i)…, (count, max).
	prevRank, prevVal := 0.0, t.min
	cum := 0.0
	for i := range t.means {
		mid := cum + t.weights[i]/2
		if target < mid {
			if mid == prevRank {
				return t.means[i]
			}
			frac := (target - prevRank) / (mid - prevRank)
			return prevVal + frac*(t.means[i]-prevVal)
		}
		cum += t.weights[i]
		prevRank, prevVal = mid, t.means[i]
	}
	if t.count == prevRank {
		return t.max
	}
	frac := (target - prevRank) / (t.count - prevRank)
	return prevVal + frac*(t.max-prevVal)
}

// tdigestJSON is the serialized form: compressed centroids plus the
// exact extremes. JSON float64 round-trips exactly (shortest-form
// encoding), so a digest survives serialization bit-identically.
type tdigestJSON struct {
	Compression float64   `json:"compression"`
	Count       float64   `json:"count"`
	Min         *float64  `json:"min,omitempty"`
	Max         *float64  `json:"max,omitempty"`
	Means       []float64 `json:"means"`
	Weights     []float64 `json:"weights"`
}

// MarshalJSON serializes the digest (compressing the buffer first, so
// the form is canonical for the observation sequence).
func (t *TDigest) MarshalJSON() ([]byte, error) {
	t.compress()
	doc := tdigestJSON{
		Compression: t.compression,
		Count:       t.count,
		Means:       t.means,
		Weights:     t.weights,
	}
	if t.count > 0 {
		// ±Inf sentinels of the empty digest are not valid JSON numbers;
		// only real extremes are serialized.
		doc.Min, doc.Max = &t.min, &t.max
	}
	return json.Marshal(doc)
}

// UnmarshalJSON restores a digest serialized by MarshalJSON.
func (t *TDigest) UnmarshalJSON(data []byte) error {
	var doc tdigestJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if !(doc.Compression >= 10) {
		return fmt.Errorf("stats: t-digest compression %v out of range", doc.Compression)
	}
	if len(doc.Means) != len(doc.Weights) {
		return fmt.Errorf("stats: t-digest has %d means but %d weights", len(doc.Means), len(doc.Weights))
	}
	var total float64
	for i, w := range doc.Weights {
		if !(w > 0) {
			return fmt.Errorf("stats: t-digest weight %v at centroid %d", w, i)
		}
		if i > 0 && doc.Means[i] < doc.Means[i-1] {
			return fmt.Errorf("stats: t-digest centroids out of order at %d", i)
		}
		total += w
	}
	// The incremental count can differ from the centroid-weight sum in
	// the last ulp; the serialized count is authoritative so round-trips
	// are bit-identical, but it must agree with the weights it claims to
	// summarize.
	if math.Abs(doc.Count-total) > 1e-9*math.Max(doc.Count, total) {
		return fmt.Errorf("stats: t-digest count %v inconsistent with centroid weight %v", doc.Count, total)
	}
	fresh := NewTDigest(doc.Compression)
	fresh.means = doc.Means
	fresh.weights = doc.Weights
	fresh.count = doc.Count
	if doc.Min != nil {
		fresh.min = *doc.Min
	}
	if doc.Max != nil {
		fresh.max = *doc.Max
	}
	*t = *fresh
	return nil
}
