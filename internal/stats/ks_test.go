package stats

import (
	"math"
	"testing"
)

func uniformCDF(x float64) float64 {
	switch {
	case x < 0:
		return 0
	case x > 1:
		return 1
	default:
		return x
	}
}

func TestKSPerfectFit(t *testing.T) {
	// Sample at exact quantiles: D = 1/(2n) with the midpoint grid.
	n := 100
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = (float64(i) + 0.5) / float64(n)
	}
	d, err := KolmogorovSmirnov(sample, uniformCDF)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-1.0/(2*float64(n))) > 1e-12 {
		t.Errorf("D = %v, want %v", d, 1.0/(2*float64(n)))
	}
}

func TestKSDetectsWrongDistribution(t *testing.T) {
	// Uniform sample vs a shifted CDF must be rejected.
	n := 1000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = (float64(i) + 0.5) / float64(n)
	}
	wrong := func(x float64) float64 { return uniformCDF(x * x) } // sqrt-law
	ok, d, err := KSTest(sample, wrong, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Errorf("wrong CDF not rejected (D = %v)", d)
	}
}

func TestKSAcceptsRightDistribution(t *testing.T) {
	n := 1000
	sample := make([]float64, n)
	for i := range sample {
		sample[i] = (float64(i) + 0.5) / float64(n)
	}
	ok, d, err := KSTest(sample, uniformCDF, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Errorf("correct CDF rejected (D = %v)", d)
	}
}

func TestKSErrors(t *testing.T) {
	if _, err := KolmogorovSmirnov(nil, uniformCDF); err == nil {
		t.Error("empty sample should fail")
	}
	if _, err := KolmogorovSmirnov([]float64{0.5}, func(float64) float64 { return 2 }); err == nil {
		t.Error("invalid CDF should fail")
	}
	if _, err := KSCriticalValue(0, 0.05); err == nil {
		t.Error("n = 0 should fail")
	}
	if _, err := KSCriticalValue(10, 1.5); err == nil {
		t.Error("alpha out of range should fail")
	}
}

func TestKSCriticalValueShrinks(t *testing.T) {
	c100, err := KSCriticalValue(100, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	c10000, err := KSCriticalValue(10000, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if c10000 >= c100 {
		t.Error("critical value must shrink with n")
	}
	// Known value: c(0.05) ≈ 1.358.
	if math.Abs(c100*10-1.3581) > 0.001 {
		t.Errorf("c(0.05)/√100 = %v, want ≈ 0.13581", c100)
	}
}
