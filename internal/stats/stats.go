// Package stats provides the summary statistics used by the Monte-Carlo
// experiments: streaming moments (Welford), normal-approximation
// confidence intervals, quantiles, histograms and convexity probes.
package stats

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
)

// Summary accumulates streaming moments of a sample using Welford's
// algorithm. The zero value is an empty summary ready for use.
type Summary struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add accumulates one observation.
func (s *Summary) Add(x float64) {
	s.n++
	if s.n == 1 {
		s.min, s.max = x, x
	} else {
		if x < s.min {
			s.min = x
		}
		if x > s.max {
			s.max = x
		}
	}
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// AddAll accumulates every value of xs.
func (s *Summary) AddAll(xs []float64) {
	for _, x := range xs {
		s.Add(x)
	}
}

// Merge folds other into s, as if all of other's observations had been
// added to s. It enables parallel accumulation with per-worker summaries.
func (s *Summary) Merge(other Summary) {
	if other.n == 0 {
		return
	}
	if s.n == 0 {
		*s = other
		return
	}
	n1, n2 := float64(s.n), float64(other.n)
	delta := other.mean - s.mean
	tot := n1 + n2
	s.mean += delta * n2 / tot
	s.m2 += other.m2 + delta*delta*n1*n2/tot
	s.n += other.n
	if other.min < s.min {
		s.min = other.min
	}
	if other.max > s.max {
		s.max = other.max
	}
}

// N returns the number of observations.
func (s *Summary) N() int64 { return s.n }

// Mean returns the sample mean (0 when empty).
func (s *Summary) Mean() float64 { return s.mean }

// Variance returns the unbiased sample variance (0 for n < 2).
func (s *Summary) Variance() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n-1)
}

// StdDev returns the sample standard deviation.
func (s *Summary) StdDev() float64 { return math.Sqrt(s.Variance()) }

// StdErr returns the standard error of the mean.
func (s *Summary) StdErr() float64 {
	if s.n == 0 {
		return 0
	}
	return s.StdDev() / math.Sqrt(float64(s.n))
}

// Min returns the smallest observation (0 when empty).
func (s *Summary) Min() float64 { return s.min }

// Max returns the largest observation (0 when empty).
func (s *Summary) Max() float64 { return s.max }

// CI returns the half-width of the normal-approximation confidence
// interval around the mean at the given confidence level (e.g. 0.95,
// 0.99). Monte-Carlo sample sizes here are ≥ 10⁴, so the normal
// approximation to the t distribution is accurate.
func (s *Summary) CI(level float64) float64 {
	z := zQuantile((1 + level) / 2)
	return z * s.StdErr()
}

// Contains reports whether v lies inside the level confidence interval of
// the mean.
func (s *Summary) Contains(v, level float64) bool {
	half := s.CI(level)
	return v >= s.mean-half && v <= s.mean+half
}

// summaryJSON is the wire form of a Summary: the exact Welford state,
// so a summary serialized by one campaign shard and merged by another
// process is bit-identical to an in-process merge. JSON float64
// round-trips exactly (shortest-form encoding).
type summaryJSON struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	M2   float64 `json:"m2"`
	Min  float64 `json:"min"`
	Max  float64 `json:"max"`
}

// MarshalJSON serializes the exact accumulator state.
func (s Summary) MarshalJSON() ([]byte, error) {
	return json.Marshal(summaryJSON{N: s.n, Mean: s.mean, M2: s.m2, Min: s.min, Max: s.max})
}

// UnmarshalJSON restores a summary serialized by MarshalJSON.
func (s *Summary) UnmarshalJSON(data []byte) error {
	var doc summaryJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return err
	}
	if doc.N < 0 {
		return fmt.Errorf("stats: summary with negative count %d", doc.N)
	}
	if doc.N > 0 && (doc.M2 < 0 || doc.Min > doc.Max) {
		return fmt.Errorf("stats: inconsistent summary state (n=%d m2=%v min=%v max=%v)", doc.N, doc.M2, doc.Min, doc.Max)
	}
	*s = Summary{n: doc.N, mean: doc.Mean, m2: doc.M2, min: doc.Min, max: doc.Max}
	return nil
}

// String formats the summary for experiment tables.
func (s *Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.6g sd=%.4g [%.6g, %.6g]",
		s.n, s.mean, s.StdDev(), s.min, s.max)
}

// zQuantile returns the standard-normal quantile via the Acklam/Moro
// rational approximation (|relative error| < 1.15e-9).
func zQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics. xs is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q)
}

// Quantiles returns multiple quantiles with a single sort.
func Quantiles(xs []float64, qs ...float64) []float64 {
	if len(xs) == 0 {
		out := make([]float64, len(qs))
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	out := make([]float64, len(qs))
	for i, q := range qs {
		out[i] = quantileSorted(sorted, q)
	}
	return out
}

func quantileSorted(sorted []float64, q float64) float64 {
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram is a fixed-bin histogram over [Lo, Hi); values outside the
// range are counted in Under/Over.
type Histogram struct {
	Lo, Hi float64
	Bins   []int64
	Under  int64
	Over   int64
}

// NewHistogram creates a histogram with n bins over [lo, hi).
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram configuration")
	}
	return &Histogram{Lo: lo, Hi: hi, Bins: make([]int64, n)}
}

// Add counts one observation.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Lo:
		h.Under++
	case x >= h.Hi:
		h.Over++
	default:
		i := int(float64(len(h.Bins)) * (x - h.Lo) / (h.Hi - h.Lo))
		if i >= len(h.Bins) {
			i = len(h.Bins) - 1
		}
		h.Bins[i]++
	}
}

// Total returns the number of observations including out-of-range ones.
func (h *Histogram) Total() int64 {
	t := h.Under + h.Over
	for _, b := range h.Bins {
		t += b
	}
	return t
}

// IsConvex reports whether the sequence ys is (discretely) convex:
// ys[i+1] − ys[i] is nondecreasing, allowing the absolute tolerance tol
// for noise. The absolute slack makes the verdict scale-sensitive —
// a curve in the millions needs a different tol than one near 1 — so
// probes over instances of varying magnitude should use IsConvexRel.
func IsConvex(ys []float64, tol float64) bool {
	for i := 0; i+2 < len(ys); i++ {
		d1 := ys[i+1] - ys[i]
		d2 := ys[i+2] - ys[i+1]
		if d2 < d1-tol {
			return false
		}
	}
	return true
}

// IsConvexRel is IsConvex with a relative tolerance: each second
// difference may undershoot by relTol times the local magnitude
// max(|ys[i]|, |ys[i+1]|, |ys[i+2]|, 1). The floor of 1 keeps the probe
// meaningful for curves that pass near zero; relTol a few orders above
// machine epsilon (e.g. 1e-12) absorbs rounding noise at any scale.
func IsConvexRel(ys []float64, relTol float64) bool {
	for i := 0; i+2 < len(ys); i++ {
		d1 := ys[i+1] - ys[i]
		d2 := ys[i+2] - ys[i+1]
		scale := math.Max(math.Max(math.Abs(ys[i]), math.Abs(ys[i+1])), math.Max(math.Abs(ys[i+2]), 1))
		if d2 < d1-relTol*scale {
			return false
		}
	}
	return true
}

// ArgminSlice returns the index of the smallest value in ys, or -1 when
// empty.
func ArgminSlice(ys []float64) int {
	if len(ys) == 0 {
		return -1
	}
	best := 0
	for i, y := range ys {
		if y < ys[best] {
			best = i
		}
	}
	return best
}

// MeanOf returns the arithmetic mean of xs (0 when empty).
func MeanOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s Summary
	s.AddAll(xs)
	return s.Mean()
}
