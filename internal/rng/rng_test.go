package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds coincide too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other.
	diff := false
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("split children produced identical sequences")
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split() // splitting must not consume parent's sequence
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split perturbed the parent stream")
		}
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(11).Split()
	b := New(11).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

// TestSplitIndependentOfParentDrawOrder is the engine's prerequisite:
// the k-th Split child depends only on the parent's seed material and
// the split counter, never on how much the parent (or other children)
// has been drawn from. Without this property, parallel workers drawing
// from sibling streams would perturb each other's sequences.
func TestSplitIndependentOfParentDrawOrder(t *testing.T) {
	fresh := New(21)
	drawn := New(21)
	for i := 0; i < 1000; i++ {
		drawn.Uint64() // exercise the parent before splitting
	}
	c1 := fresh.Split()
	c2 := drawn.Split()
	for i := 0; i < 1000; i++ {
		if c1.Uint64() != c2.Uint64() {
			t.Fatalf("split child diverged at step %d: parent draws leaked into the child", i)
		}
	}
	// Drawing from one child must not perturb a sibling either.
	s1, s2 := New(22), New(22)
	a1 := s1.Split()
	for i := 0; i < 500; i++ {
		a1.Uint64()
	}
	b1 := s1.Split()
	_ = s2.Split()
	b2 := s2.Split()
	for i := 0; i < 1000; i++ {
		if b1.Uint64() != b2.Uint64() {
			t.Fatalf("sibling draws perturbed the next split child at step %d", i)
		}
	}
}

func TestKeyedReproducible(t *testing.T) {
	a := New(31).Keyed(12345)
	b := New(31).Keyed(12345)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Keyed is not deterministic")
		}
	}
}

// TestKeyedIndependentOfHistory: Keyed children ignore both draw and
// split history of the parent — they are a pure function of (seed, key).
func TestKeyedIndependentOfHistory(t *testing.T) {
	fresh := New(33)
	used := New(33)
	for i := 0; i < 100; i++ {
		used.Uint64()
		used.Split()
	}
	a := fresh.Keyed(7)
	b := used.Keyed(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("Keyed child depends on parent history (step %d)", i)
		}
	}
}

func TestKeyedDistinct(t *testing.T) {
	parent := New(35)
	seen := map[uint64]uint64{}
	for key := uint64(0); key < 200; key++ {
		v := parent.Keyed(key).Uint64()
		if prev, dup := seen[v]; dup {
			t.Fatalf("keys %d and %d collide on first draw", prev, key)
		}
		seen[v] = key
	}
	// Keyed children are also disjoint from Split children with small
	// counters (the salts are deliberately different).
	split1 := New(35).Split().Uint64()
	if k1 := New(35).Keyed(1).Uint64(); k1 == split1 {
		t.Error("Keyed(1) collides with the first Split child")
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("ExpFloat64 mean = %v, want ≈ 1", mean)
	}
}

func TestRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 7)
		if v < 5 || v >= 7 {
			t.Fatalf("Range out of [5,7): %v", v)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(13)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestIntN(t *testing.T) {
	s := New(17)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.IntN(4)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("IntN bucket %d count %d far from uniform", i, c)
		}
	}
}
