package rng

import (
	"math"
	"testing"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams with equal seeds diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("streams with different seeds coincide too often: %d/100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	c1 := parent.Split()
	c2 := parent.Split()
	// Children must differ from each other.
	diff := false
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c2.Uint64() {
			diff = true
			break
		}
	}
	if !diff {
		t.Error("split children produced identical sequences")
	}
}

func TestSplitDoesNotPerturbParent(t *testing.T) {
	a := New(9)
	b := New(9)
	_ = a.Split() // splitting must not consume parent's sequence
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split perturbed the parent stream")
		}
	}
}

func TestSplitReproducible(t *testing.T) {
	a := New(11).Split()
	b := New(11).Split()
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Split is not deterministic")
		}
	}
}

func TestFloat64Range(t *testing.T) {
	s := New(3)
	for i := 0; i < 10000; i++ {
		v := s.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestExpFloat64Mean(t *testing.T) {
	s := New(5)
	sum := 0.0
	const n = 200000
	for i := 0; i < n; i++ {
		sum += s.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("ExpFloat64 mean = %v, want ≈ 1", mean)
	}
}

func TestRange(t *testing.T) {
	s := New(8)
	for i := 0; i < 1000; i++ {
		v := s.Range(5, 7)
		if v < 5 || v >= 7 {
			t.Fatalf("Range out of [5,7): %v", v)
		}
	}
}

func TestPerm(t *testing.T) {
	s := New(13)
	p := s.Perm(10)
	seen := make([]bool, 10)
	for _, v := range p {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("Perm invalid: %v", p)
		}
		seen[v] = true
	}
}

func TestIntN(t *testing.T) {
	s := New(17)
	counts := make([]int, 4)
	for i := 0; i < 40000; i++ {
		counts[s.IntN(4)]++
	}
	for i, c := range counts {
		if c < 9000 || c > 11000 {
			t.Errorf("IntN bucket %d count %d far from uniform", i, c)
		}
	}
}
