// Package rng provides deterministic, splittable random-number streams for
// reproducible experiments. Every simulation and workload generator in this
// repository takes an explicit *rng.Stream; nothing reads global state, so
// any experiment re-runs bit-identically from its seed.
package rng

import (
	"math/rand/v2"
)

// Stream is a deterministic pseudo-random stream (PCG) with convenience
// samplers. It is not safe for concurrent use; use Split to derive
// independent per-goroutine streams.
type Stream struct {
	r *rand.Rand
	// seed material kept for Split derivation
	hi, lo uint64
	splits uint64
}

// New returns a stream seeded from seed. Two streams with the same seed
// produce identical sequences.
func New(seed uint64) *Stream {
	return newFrom(seed, 0x9e3779b97f4a7c15)
}

func newFrom(hi, lo uint64) *Stream {
	return &Stream{r: rand.New(rand.NewPCG(hi, lo)), hi: hi, lo: lo}
}

// Split derives a new stream that is statistically independent of s and of
// every other stream split from s. Splitting advances only the split
// counter, not s's own sequence, so adding workers does not perturb the
// parent stream.
func (s *Stream) Split() *Stream {
	s.splits++
	return newFrom(mix(s.hi, s.splits), mix(s.lo, s.splits+0x632be59bd9b4e019))
}

// Keyed derives the child stream identified by key. Unlike Split it does
// not consume the split counter (or any other state), so the result
// depends only on s's seed material and the key: every caller that holds
// a stream with the same seed gets the same child for the same key,
// regardless of how much the parent has been drawn from or split. This
// is the primitive behind the experiment engine's determinism contract —
// row jobs executed in any order, on any number of workers, reproduce
// the serial run bit-for-bit because each job's stream is keyed, not
// sequenced. Keyed children use salt constants disjoint from Split's, so
// Keyed(k) never collides with the k-th Split child.
func (s *Stream) Keyed(key uint64) *Stream {
	return newFrom(mix(s.hi, key^0xd6e8feb86659fd93), mix(s.lo, key+0x8a91a6d40bf42040))
}

// mix is the SplitMix64 finalizer, a strong 64-bit mixer.
func mix(z, salt uint64) uint64 {
	z += salt * 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (s *Stream) Float64() float64 { return s.r.Float64() }

// Uint64 returns a uniform 64-bit value.
func (s *Stream) Uint64() uint64 { return s.r.Uint64() }

// IntN returns a uniform value in [0, n). n must be positive.
func (s *Stream) IntN(n int) int { return s.r.IntN(n) }

// Int64N returns a uniform value in [0, n). n must be positive.
func (s *Stream) Int64N(n int64) int64 { return s.r.Int64N(n) }

// NormFloat64 returns a standard-normal variate.
func (s *Stream) NormFloat64() float64 { return s.r.NormFloat64() }

// ExpFloat64 returns a rate-1 exponential variate.
func (s *Stream) ExpFloat64() float64 { return s.r.ExpFloat64() }

// Range returns a uniform value in [lo, hi).
func (s *Stream) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*s.Float64()
}

// Perm returns a uniform random permutation of [0, n).
func (s *Stream) Perm(n int) []int { return s.r.Perm(n) }

// Shuffle pseudo-randomizes the order of n elements using swap.
func (s *Stream) Shuffle(n int, swap func(i, j int)) { s.r.Shuffle(n, swap) }
