package store

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// replicasIdentical asserts every replica mem holds bit-identical
// contents for run: same seq sets, same raw (sealed) bytes.
func replicasIdentical(t *testing.T, mems []*MemStore, run string) {
	t.Helper()
	ref, err := mems[0].List(run)
	if err != nil {
		t.Fatalf("replica 0 List: %v", err)
	}
	for i := 1; i < len(mems); i++ {
		seqs, err := mems[i].List(run)
		if err != nil {
			t.Fatalf("replica %d List: %v", i, err)
		}
		if fmt.Sprint(seqs) != fmt.Sprint(ref) {
			t.Fatalf("replica %d seqs %v != replica 0 seqs %v", i, seqs, ref)
		}
	}
	for _, sq := range ref {
		want, err := mems[0].Load(run, sq)
		if err != nil {
			t.Fatalf("replica 0 Load %d: %v", sq, err)
		}
		for i := 1; i < len(mems); i++ {
			got, err := mems[i].Load(run, sq)
			if err != nil {
				t.Fatalf("replica %d Load %d: %v", i, sq, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("replica %d seq %d diverges from replica 0", i, sq)
			}
		}
	}
}

// TestSyncRunConvergesAfterHeal pins the anti-entropy headline: a
// replica isolated during the writes converges bit-identically after
// the partition heals, with no read traffic involved, and a second
// pass is a no-op.
func TestSyncRunConvergesAfterHeal(t *testing.T) {
	netCfg := netsim.Config{
		Seed:       11,
		Latency:    0.05,
		Partitions: []netsim.Window{{Start: 0, End: 10, Isolated: []string{"s0"}}},
	}
	q, mems := quorumStack(netCfg, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	now := 5.0
	q.BindClock("r", func() float64 { return now })
	for seq := uint64(1); seq <= 4; seq++ {
		if err := q.Save("r", seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatalf("Save %d: %v", seq, err)
		}
	}
	if seqs, _ := mems[0].List("r"); len(seqs) != 0 {
		t.Fatalf("isolated replica saw writes: %v", seqs)
	}

	now = 20 // healed
	rep, err := q.SyncRun("r")
	if err != nil {
		t.Fatalf("SyncRun after heal: %v (%+v)", err, rep)
	}
	if rep.Seqs != 4 || rep.Copied != 4 || rep.InSync != 12 || !rep.Converged() {
		t.Fatalf("SyncRun report = %+v, want 4 seqs, 4 copies to the healed replica, 12 verified in sync", rep)
	}
	replicasIdentical(t, mems, "r")

	again, err := q.SyncRun("r")
	if err != nil || again.Copied != 0 || again.InSync != 12 {
		t.Fatalf("second SyncRun = %+v, %v; want pure no-op", again, err)
	}
}

// TestSyncRunRepairsDivergentContent: a replica holding a DIFFERENT
// validly-sealed payload (e.g. a write that landed from a fenced-off
// era) is overwritten with the quorum payload.
func TestSyncRunRepairsDivergentContent(t *testing.T) {
	q, mems := quorumStack(netsim.Config{Seed: 12, Latency: 0.05}, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	if err := q.Save("r", 1, []byte("canonical")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Plant a valid divergent frame directly under replica 2's codec.
	if err := Checked(mems[2]).Save("r", 1, []byte("divergent")); err != nil {
		t.Fatalf("planting divergent frame: %v", err)
	}
	rep, err := q.SyncRun("r")
	if err != nil || rep.Copied != 1 {
		t.Fatalf("SyncRun = %+v, %v; want exactly the divergent replica copied", rep, err)
	}
	replicasIdentical(t, mems, "r")
	if got, _ := Checked(mems[2]).Load("r", 1); string(got) != "canonical" {
		t.Fatalf("replica 2 payload = %q, want canonical", got)
	}
}

// TestSyncRunDuringPartition: with a replica still cut off, the pass
// reports itself unconverged (typed for retry) but repairs what it can
// reach.
func TestSyncRunDuringPartition(t *testing.T) {
	netCfg := netsim.Config{
		Seed:       13,
		Latency:    0.05,
		Partitions: []netsim.Window{{Start: 10, End: 30, Isolated: []string{"s2"}}},
	}
	q, mems := quorumStack(netCfg, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	now := 0.0
	q.BindClock("r", func() float64 { return now })
	if err := q.Save("r", 1, []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Replica 1 loses its copy; replica 2 is partitioned off.
	if err := mems[1].Delete("r", 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	now = 15
	rep, err := q.SyncRun("r")
	if err == nil || rep.Converged() {
		t.Fatalf("SyncRun mid-partition = %+v, %v; want unconverged with error", rep, err)
	}
	if rep.Unlisted != 1 || rep.Copied != 1 {
		t.Fatalf("SyncRun report = %+v; want the reachable stale replica repaired, one unlisted", rep)
	}
	if _, err := Checked(mems[1]).Load("r", 1); err != nil {
		t.Fatalf("reachable replica not repaired: %v", err)
	}
	// Fewer listings than R: the usual quorum error shape.
	netCfg.Partitions = []netsim.Window{{Start: 0, End: 100, Isolated: []string{"s1", "s2"}}}
	q2, _ := quorumStack(netCfg, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	if _, err := q2.SyncRun("r"); !errors.Is(err, ErrQuorum) {
		t.Fatalf("SyncRun with R unreachable = %v, want ErrQuorum", err)
	}
}

// corruptReplica tears replica i's sealed frame for (run, seq) so its
// Checked layer reports ErrCorrupt.
func corruptReplica(t *testing.T, mems []*MemStore, i int, run string, seq uint64) {
	t.Helper()
	raw, err := mems[i].Load(run, seq)
	if err != nil {
		t.Fatalf("loading frame to corrupt: %v", err)
	}
	if err := mems[i].Save(run, seq, raw[:len(raw)-3]); err != nil {
		t.Fatalf("tearing frame: %v", err)
	}
}

// TestScrubRepairBound pins the scrub quorum math on N=3, R=2: up to
// N−R = 1 corrupt replica per key is repaired from the clean quorum;
// beyond that the scrub fails loudly with ErrUnrepairable and leaves
// the survivors untouched.
func TestScrubRepairBound(t *testing.T) {
	q, mems := quorumStack(netsim.Config{Seed: 14, Latency: 0.05}, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	for seq := uint64(1); seq <= 3; seq++ {
		if err := q.Save("r", seq, []byte(fmt.Sprintf("payload-%d", seq))); err != nil {
			t.Fatalf("Save %d: %v", seq, err)
		}
	}

	// k=1 ≤ N−R: repairable.
	corruptReplica(t, mems, 1, "r", 2)
	rep, err := q.ScrubRun("r")
	if err != nil {
		t.Fatalf("ScrubRun with one corrupt replica: %v (%+v)", err, rep)
	}
	if rep.Seqs != 3 || rep.Checked != 9 || rep.Corrupt != 1 || rep.Repaired != 1 || rep.Unrepairable != 0 {
		t.Fatalf("ScrubRun report = %+v", rep)
	}
	replicasIdentical(t, mems, "r")

	// k=2 > N−R: no clean quorum for seq 3 — typed loud failure.
	corruptReplica(t, mems, 0, "r", 3)
	corruptReplica(t, mems, 1, "r", 3)
	rep, err = q.ScrubRun("r")
	if !errors.Is(err, ErrUnrepairable) {
		t.Fatalf("ScrubRun with two corrupt replicas = %v, want ErrUnrepairable", err)
	}
	if rep.Unrepairable != 1 || rep.Repaired != 0 {
		t.Fatalf("ScrubRun report = %+v; want one unrepairable seq, nothing blessed", rep)
	}
	// The lone clean copy was not overwritten.
	if got, lerr := Checked(mems[2]).Load("r", 3); lerr != nil || string(got) != "payload-3" {
		t.Fatalf("clean survivor = %q, %v; must be untouched", got, lerr)
	}

	// A clean pass is a no-op.
	clean, err := q.ScrubRun("nope")
	if err != nil || clean.Seqs != 0 {
		t.Fatalf("ScrubRun on empty run = %+v, %v", clean, err)
	}
}

// TestScrubWinnerDeterminism: among clean copies the repair source is
// the most common payload, ties toward the lowest replica index.
func TestScrubWinnerDeterminism(t *testing.T) {
	mk := func(idx int, payload string) reply { return reply{idx: idx, payload: []byte(payload)} }
	if got := scrubWinner([]reply{mk(0, "a"), mk(1, "b"), mk(2, "b")}); string(got) != "b" {
		t.Fatalf("majority winner = %q, want b", got)
	}
	if got := scrubWinner([]reply{mk(2, "a"), mk(1, "b")}); string(got) != "b" {
		t.Fatalf("tie winner = %q, want b (lowest index)", got)
	}
	if got := scrubWinner([]reply{mk(0, "a")}); string(got) != "a" {
		t.Fatalf("single winner = %q, want a", got)
	}
}

func TestFindSyncerAndScrubberWalkStacks(t *testing.T) {
	q, _ := quorumStack(netsim.Config{Seed: 15, Latency: 0.05}, QuorumConfig{}, 3, FaultPlan{})
	ledger := NewQuotaLedger(Quota{}, func(run string) string { return run })
	var outer Store = NewQuotaStore(ledger, NewLeaseStore(q, LeaseConfig{Holder: "a"}))
	if sy, ok := FindSyncer(outer); !ok || sy != RunSyncer(q) {
		t.Fatalf("FindSyncer through quota+lease = %v, %v", sy, ok)
	}
	if sc, ok := FindScrubber(outer); !ok || sc != RunScrubber(q) {
		t.Fatalf("FindScrubber through quota+lease = %v, %v", sc, ok)
	}
	if _, ok := FindSyncer(NewMemStore()); ok {
		t.Fatal("FindSyncer over bare mem must report absent")
	}
}
