package store

import (
	"sort"
	"sync"
)

// MemStore is the in-memory Store: a mutex-guarded map. It is the
// default for campaigns (thousands of runs whose checkpoints exist only
// to exercise the executor's rollback path) and for tests that want
// store semantics without disk.
type MemStore struct {
	mu   sync.RWMutex
	runs map[string]map[uint64][]byte
}

// NewMemStore returns an empty in-memory store.
func NewMemStore() *MemStore {
	return &MemStore{runs: make(map[string]map[uint64][]byte)}
}

// Save stores a copy of payload under (run, seq).
func (m *MemStore) Save(run string, seq uint64, payload []byte) error {
	if err := validRun(run); err != nil {
		return err
	}
	cp := make([]byte, len(payload))
	copy(cp, payload)
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.runs[run]
	if r == nil {
		r = make(map[uint64][]byte)
		m.runs[run] = r
	}
	r[seq] = cp
	return nil
}

// Load returns a copy of checkpoint (run, seq).
func (m *MemStore) Load(run string, seq uint64) ([]byte, error) {
	if err := validRun(run); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	payload, ok := m.runs[run][seq]
	if !ok {
		return nil, ErrNotFound
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, nil
}

// List returns run's sequence numbers, ascending.
func (m *MemStore) List(run string) ([]uint64, error) {
	if err := validRun(run); err != nil {
		return nil, err
	}
	m.mu.RLock()
	defer m.mu.RUnlock()
	r := m.runs[run]
	out := make([]uint64, 0, len(r))
	for seq := range r {
		out = append(out, seq)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Delete removes checkpoint (run, seq).
func (m *MemStore) Delete(run string, seq uint64) error {
	if err := validRun(run); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	r := m.runs[run]
	if _, ok := r[seq]; !ok {
		return ErrNotFound
	}
	delete(r, seq)
	return nil
}

var _ Store = (*MemStore)(nil)
