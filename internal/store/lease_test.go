package store

import (
	"errors"
	"testing"

	"repro/internal/netsim"
)

// leaseOverMem builds a LeaseStore over a bare MemStore with a mutable
// virtual clock, returning the lease store, the mem, and a setter for
// the clock.
func leaseOverMem(cfg LeaseConfig) (*LeaseStore, *MemStore, func(float64)) {
	mem := NewMemStore()
	l := NewLeaseStore(mem, cfg)
	now := 0.0
	BindClock(l, "r", func() float64 { return now })
	return l, mem, func(t float64) { now = t }
}

func TestLeaseAcquireIdempotentPerInstance(t *testing.T) {
	l, mem, _ := leaseOverMem(LeaseConfig{Holder: "a", TTL: 10})
	st, err := l.Acquire("r")
	if err != nil || st.Epoch != 1 || st.Holder != "a" || st.Expiry != 10 {
		t.Fatalf("first Acquire = %+v, %v", st, err)
	}
	again, err := l.Acquire("r")
	if err != nil || again.Epoch != 1 {
		t.Fatalf("re-Acquire on same instance = %+v, %v; want cached epoch 1", again, err)
	}
	if got := l.Stats().Acquires; got != 1 {
		t.Fatalf("Acquires = %d, want 1 (idempotent)", got)
	}
	// The record rides the store under the derived lease run, not the
	// data run.
	if seqs, _ := mem.List("r"); len(seqs) != 0 {
		t.Fatalf("data run lists lease traffic: %v", seqs)
	}
	if seqs, _ := mem.List(LeaseRun("r")); len(seqs) != 1 || seqs[0] != leaseSeq {
		t.Fatalf("lease run listing = %v, want [%d]", seqs, leaseSeq)
	}
	if ep, ok := l.Epoch("r"); !ok || ep != 1 {
		t.Fatalf("Epoch = %d, %v", ep, ok)
	}
}

func TestLeaseHeldBlocksForeignAcquire(t *testing.T) {
	l, mem, _ := leaseOverMem(LeaseConfig{Holder: "a", TTL: 10})
	if _, err := l.Acquire("r"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	b := NewLeaseStore(mem, LeaseConfig{Holder: "b", TTL: 10})
	BindClock(b, "r", func() float64 { return 0 })
	if _, err := b.Acquire("r"); !errors.Is(err, ErrLeaseHeld) {
		t.Fatalf("foreign Acquire under live lease = %v, want ErrLeaseHeld", err)
	}
	// Takeover overrides the live lease and bumps the epoch.
	bt := NewLeaseStore(mem, LeaseConfig{Holder: "b", TTL: 10, Takeover: true})
	BindClock(bt, "r", func() float64 { return 0 })
	st, err := bt.Acquire("r")
	if err != nil || st.Epoch != 2 {
		t.Fatalf("takeover Acquire = %+v, %v; want epoch 2", st, err)
	}
}

func TestLeaseExpiryAndSameHolderReacquire(t *testing.T) {
	l, mem, setNow := leaseOverMem(LeaseConfig{Holder: "a", TTL: 5})
	if _, err := l.Acquire("r"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Expired lease: anyone may acquire without a takeover.
	setNow(7)
	b := NewLeaseStore(mem, LeaseConfig{Holder: "b", TTL: 5})
	BindClock(b, "r", func() float64 { return 7 })
	st, err := b.Acquire("r")
	if err != nil || st.Epoch != 2 || st.Expiry != 12 {
		t.Fatalf("Acquire after expiry = %+v, %v; want epoch 2 expiring t=12", st, err)
	}
	// Same holder identity re-acquires an unexpired lease freely (its
	// own restart), still bumping the epoch to fence the old instance.
	b2 := NewLeaseStore(mem, LeaseConfig{Holder: "b", TTL: 5})
	BindClock(b2, "r", func() float64 { return 8 })
	st2, err := b2.Acquire("r")
	if err != nil || st2.Epoch != 3 {
		t.Fatalf("same-holder re-Acquire = %+v, %v; want epoch 3", st2, err)
	}
}

func TestLeaseFencesZombieWrites(t *testing.T) {
	a, mem, _ := leaseOverMem(LeaseConfig{Holder: "a", TTL: 10})
	if _, err := a.Acquire("r"); err != nil {
		t.Fatalf("Acquire a: %v", err)
	}
	if err := a.Save("r", 1, []byte("a1")); err != nil {
		t.Fatalf("a Save: %v", err)
	}
	// b takes over (false crash detection of a).
	b := NewLeaseStore(mem, LeaseConfig{Holder: "b", TTL: 10, Takeover: true})
	BindClock(b, "r", func() float64 { return 1 })
	if _, err := b.Acquire("r"); err != nil {
		t.Fatalf("Acquire b: %v", err)
	}
	if err := b.Save("r", 2, []byte("b2")); err != nil {
		t.Fatalf("b Save: %v", err)
	}
	// Zombie a wakes up: reads pass, writes fence.
	if _, err := a.Load("r", 2); err != nil {
		t.Fatalf("zombie Load: %v (reads never fence)", err)
	}
	if err := a.Save("r", 3, []byte("a3")); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Save = %v, want ErrFenced", err)
	}
	if err := a.Delete("r", 1); !errors.Is(err, ErrFenced) {
		t.Fatalf("zombie Delete = %v, want ErrFenced", err)
	}
	if got := a.Stats().Fenced; got != 2 {
		t.Fatalf("zombie Fenced stat = %d, want 2", got)
	}
	// The store never saw the zombie's write.
	if _, err := mem.Load("r", 3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("fenced write reached the store: %v", err)
	}
}

func TestLeaseRenewalPiggybacksOnSaves(t *testing.T) {
	l, mem, setNow := leaseOverMem(LeaseConfig{Holder: "a", TTL: 10})
	if _, err := l.Acquire("r"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	// Plenty of TTL left: no renewal.
	setNow(1)
	if err := l.Save("r", 1, []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := l.Stats().Renewals; got != 0 {
		t.Fatalf("Renewals after early save = %d, want 0", got)
	}
	// Inside the renewal window (remaining 4 < TTL/2): renew to t+TTL.
	setNow(6)
	if err := l.Save("r", 2, []byte("y")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	if got := l.Stats().Renewals; got != 1 {
		t.Fatalf("Renewals after windowed save = %d, want 1", got)
	}
	rec, _, err := NewLeaseStore(mem, LeaseConfig{}).readLease("r")
	if err != nil || rec.Expiry != 16 {
		t.Fatalf("renewed record = %+v, %v; want expiry t=16", rec, err)
	}
	// Even past its own expiry the holder renews as long as nobody
	// claimed the gap — the epoch still stands.
	setNow(30)
	if err := l.Save("r", 3, []byte("z")); err != nil {
		t.Fatalf("Save past expiry with unclaimed record: %v", err)
	}
	if got := l.Stats().Renewals; got != 2 {
		t.Fatalf("Renewals = %d, want 2", got)
	}
}

func TestLeaseSelfHealsVanishedRecord(t *testing.T) {
	l, mem, _ := leaseOverMem(LeaseConfig{Holder: "a", TTL: 10})
	if _, err := l.Acquire("r"); err != nil {
		t.Fatalf("Acquire: %v", err)
	}
	if err := mem.Delete(LeaseRun("r"), leaseSeq); err != nil {
		t.Fatalf("deleting lease record: %v", err)
	}
	if err := l.Save("r", 1, []byte("x")); err != nil {
		t.Fatalf("Save after record vanished: %v (want self-heal)", err)
	}
	rec, found, err := l.readLease("r")
	if err != nil || !found || rec.Epoch != 1 || rec.Holder != "a" {
		t.Fatalf("healed record = %+v, %v, %v", rec, found, err)
	}
}

func TestLeaseGuardsRequireAcquire(t *testing.T) {
	l, _, _ := leaseOverMem(LeaseConfig{Holder: "a"})
	if err := l.Save("r", 1, []byte("x")); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("Save without Acquire = %v, want ErrLeaseExpired", err)
	}
	if err := l.Delete("r", 1); !errors.Is(err, ErrLeaseExpired) {
		t.Fatalf("Delete without Acquire = %v, want ErrLeaseExpired", err)
	}
	// Reads stay unguarded.
	if _, err := l.Load("r", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load without Acquire = %v, want plain ErrNotFound", err)
	}
}

func TestLeaseMalformedRecordDoesNotResetEpoch(t *testing.T) {
	l, mem, _ := leaseOverMem(LeaseConfig{Holder: "a", TTL: 10})
	if err := mem.Save(LeaseRun("r"), leaseSeq, []byte("not a lease record")); err != nil {
		t.Fatalf("planting garbage: %v", err)
	}
	if _, err := l.Acquire("r"); err == nil || errors.Is(err, ErrNotFound) {
		t.Fatalf("Acquire over malformed record = %v, want a loud decode failure", err)
	}
}

func TestLeaseRecordRoundTrip(t *testing.T) {
	want := LeaseState{Epoch: 42, Holder: "worker-7", Expiry: 123.5}
	got, err := decodeLease(encodeLease(want))
	if err != nil || got != want {
		t.Fatalf("round trip = %+v, %v; want %+v", got, err, want)
	}
	for _, bad := range [][]byte{
		nil,
		[]byte("LEA"),
		encodeLease(want)[:10],
		append(encodeLease(want), 'x'),
		append([]byte("XXXX"), encodeLease(want)[4:]...),
	} {
		if _, err := decodeLease(bad); !errors.Is(err, errLeaseRecord) {
			t.Fatalf("decodeLease(%q) = %v, want errLeaseRecord", bad, err)
		}
	}
}

func TestAcquireLeaseWalksStack(t *testing.T) {
	mem := NewMemStore()
	l := NewLeaseStore(mem, LeaseConfig{Holder: "a", TTL: 10})
	ledger := NewQuotaLedger(Quota{MaxCheckpoints: 100, MaxBytes: 1 << 20}, func(run string) string { return run })
	var outer Store = NewQuotaStore(ledger, l)
	BindClock(outer, "r", func() float64 { return 0 })
	st, found, err := AcquireLease(outer, "r")
	if err != nil || !found || st.Epoch != 1 {
		t.Fatalf("AcquireLease through quota = %+v, %v, %v", st, found, err)
	}
	// No lease layer in the stack: found=false, run unfenced.
	if _, found, err := AcquireLease(mem, "r2"); found || err != nil {
		t.Fatalf("AcquireLease over bare mem = %v, %v; want absent", found, err)
	}
	if _, err := l.Acquire(LeaseRun("r")); err == nil {
		t.Fatal("Acquire on a lease run must fail")
	}
}

// TestLeaseOverQuorum pins the tentpole composition: the lease record
// persists through the same quorum machinery as the checkpoints it
// guards — replicated, partition-tolerant, and visible to every
// replica after a W=2 write.
func TestLeaseOverQuorum(t *testing.T) {
	netCfg := netsim.Config{
		Seed:       7,
		Latency:    0.05,
		Partitions: []netsim.Window{{Start: 0, End: 100, Isolated: []string{"s0"}}},
	}
	q, mems := quorumStack(netCfg, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	l := NewLeaseStore(q, LeaseConfig{Holder: "a", TTL: 50})
	now := 10.0
	BindClock(l, "r", func() float64 { return now })

	st, err := l.Acquire("r")
	if err != nil || st.Epoch != 1 {
		t.Fatalf("Acquire through partitioned quorum = %+v, %v", st, err)
	}
	if err := l.Save("r", 1, []byte("payload")); err != nil {
		t.Fatalf("guarded Save through quorum: %v", err)
	}
	// The isolated replica missed the lease record; the reachable ones
	// hold it.
	if seqs, _ := mems[0].List(LeaseRun("r")); len(seqs) != 0 {
		t.Fatalf("isolated replica holds lease record: %v", seqs)
	}
	for i := 1; i < 3; i++ {
		if seqs, _ := mems[i].List(LeaseRun("r")); len(seqs) != 1 {
			t.Fatalf("replica %d lease run listing = %v, want 1 record", i, seqs)
		}
	}
}
