package store

import (
	"errors"
	"fmt"
	"testing"

	"repro/internal/netsim"
)

// remoteOverMem builds Checked(Remote(mem)) over a fresh network and
// returns both the composed store and the remote layer.
func remoteOverMem(netCfg netsim.Config, cfg RemoteConfig) (Store, *RemoteStore) {
	net := netsim.New(netCfg)
	rs := NewRemoteStore(NewMemStore(), net, netCfg, cfg)
	return Checked(rs), rs
}

func TestRemoteStoreRoundTrip(t *testing.T) {
	st, rs := remoteOverMem(netsim.Config{Seed: 1, Latency: 0.1, Jitter: 0.2}, RemoteConfig{})
	payload := []byte("checkpoint state")
	if err := st.Save("r", 3, payload); err != nil {
		t.Fatalf("Save: %v", err)
	}
	got, err := st.Load("r", 3)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if string(got) != string(payload) {
		t.Fatalf("Load = %q, want %q", got, payload)
	}
	seqs, err := st.List("r")
	if err != nil || len(seqs) != 1 || seqs[0] != 3 {
		t.Fatalf("List = %v, %v", seqs, err)
	}
	if err := st.Delete("r", 3); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	op := rs.LastOp("r")
	if op.Ops != 4 {
		t.Fatalf("Ops = %d, want 4", op.Ops)
	}
	if op.Latency < 0.1 {
		t.Fatalf("last op latency %v below base latency", op.Latency)
	}
	if lat, ok := RunLatency(st, "r"); !ok || lat <= 0 {
		t.Fatalf("RunLatency = %v, %v", lat, ok)
	}
}

func TestRemoteStoreTimeoutDuringPartition(t *testing.T) {
	netCfg := netsim.Config{
		Seed:       2,
		Latency:    0.1,
		Partitions: []netsim.Window{{Start: 10, End: 20, Isolated: []string{"store"}}},
	}
	st, rs := remoteOverMem(netCfg, RemoteConfig{Timeout: 2})
	now := 0.0
	BindClock(st, "r", func() float64 { return now })

	if err := st.Save("r", 1, []byte("before")); err != nil {
		t.Fatalf("Save before window: %v", err)
	}

	now = 15 // inside the window
	err := st.Save("r", 2, []byte("during"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("Save during window: err = %v, want ErrTimeout", err)
	}
	if op := rs.LastOp("r"); op.Latency != 2 {
		t.Fatalf("timed-out op charged %v, want the 2.0 timeout", op.Latency)
	}
	// The message never reached the inner store.
	if _, err := st.Load("r", 2); !errors.Is(err, ErrTimeout) && !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load during window: %v", err)
	}

	now = 25 // window healed
	if err := st.Save("r", 2, []byte("after")); err != nil {
		t.Fatalf("Save after window: %v", err)
	}
	if _, err := st.Load("r", 2); err != nil {
		t.Fatalf("Load after window: %v", err)
	}
	if rs.Timeouts() == 0 {
		t.Fatal("Timeouts counter never advanced")
	}
}

func TestRemoteStoreLoss(t *testing.T) {
	st, _ := remoteOverMem(netsim.Config{Seed: 3, Loss: 1}, RemoteConfig{Timeout: 1})
	if err := st.Save("r", 1, []byte("x")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("Save with full loss: %v, want ErrTimeout", err)
	}
}

// TestRemoteStoreReplayDeterministic pins that a rebuilt stack (fresh
// network instance, same seed) re-observes identical per-op latencies
// and outcomes — the kill/resume contract.
func TestRemoteStoreReplayDeterministic(t *testing.T) {
	netCfg := netsim.Config{Seed: 4, Latency: 0.05, Jitter: 0.4, Loss: 0.2}
	run := func() ([]float64, []bool) {
		st, rs := remoteOverMem(netCfg, RemoteConfig{Timeout: 1.5})
		var lats []float64
		var oks []bool
		for seq := uint64(1); seq <= 20; seq++ {
			err := st.Save("r", seq, []byte(fmt.Sprintf("payload-%d", seq)))
			op := rs.LastOp("r")
			lats = append(lats, op.Latency)
			oks = append(oks, err == nil)
		}
		return lats, oks
	}
	l1, o1 := run()
	l2, o2 := run()
	for i := range l1 {
		if l1[i] != l2[i] || o1[i] != o2[i] {
			t.Fatalf("op %d: (%v, %v) vs (%v, %v)", i, l1[i], o1[i], l2[i], o2[i])
		}
	}
}

// TestRemoteStoreFoldsInnerLatency checks that a fault layer below the
// network contributes its virtual latency to the remote op's cost.
func TestRemoteStoreFoldsInnerLatency(t *testing.T) {
	netCfg := netsim.Config{Seed: 5, Latency: 0.1}
	net := netsim.New(netCfg)
	fault := NewFaultStore(NewMemStore(), FaultPlan{Seed: 6, MeanLatency: 2, LogicalKeys: true})
	rs := NewRemoteStore(fault, net, netCfg, RemoteConfig{Timeout: 100})
	st := Checked(rs)
	if err := st.Save("r", 1, []byte("x")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	inner := fault.LastOp("r")
	outer := rs.LastOp("r")
	if want := 0.1 + inner.Latency; outer.Latency != want {
		t.Fatalf("outer latency %v, want net 0.1 + inner %v = %v", outer.Latency, inner.Latency, want)
	}
}

func TestRemoteConfigDefaultTimeout(t *testing.T) {
	netCfg := netsim.Config{Latency: 0.5, Jitter: 0.25}
	_, rs := remoteOverMem(netCfg, RemoteConfig{})
	if got := rs.Timeout(); got != 6 {
		t.Fatalf("default timeout %v, want 8*(0.5+0.25)=6", got)
	}
	_, rs = remoteOverMem(netsim.Config{}, RemoteConfig{})
	if got := rs.Timeout(); got != 1 {
		t.Fatalf("default timeout floor %v, want 1", got)
	}
}
