package store

import (
	"errors"
	"fmt"
	"sync"
)

// ErrQuota reports a Save rejected because it would exceed the tenant's
// retained-checkpoint budget. It is a PERMANENT error class: retrying
// the identical save cannot succeed until retained state is deleted, so
// executors must not spin on it — they degrade (replan, fail over, or
// run checkpoint-free) instead.
var ErrQuota = errors.New("store: tenant quota exceeded")

// Quota is a per-tenant budget on RETAINED state, not on I/O: a Save
// replacing an existing (run, seq) entry is charged only the size
// delta, and Deletes refund. Charging retained state (rather than
// counting operations) keeps quota decisions history-independent — a
// killed-and-resumed run re-saving the checkpoint it restored charges
// exactly what the uninterrupted run charged, which is what keeps
// kill/resume journals bit-identical under quota faults.
type Quota struct {
	// MaxBytes caps retained payload bytes per tenant; 0 = unlimited.
	MaxBytes uint64
	// MaxCheckpoints caps retained checkpoints per tenant; 0 = unlimited.
	MaxCheckpoints int
}

// QuotaLedger is the accounting shared by every QuotaStore wrapper
// bound to it: per-tenant retained bytes and counts. The ledger lives
// as long as the storage service it models — in multi-invocation drills
// one ledger spans all invocations while fault-injecting wrappers are
// rebuilt per invocation, mirroring a process restart against a durable
// quota service.
type QuotaLedger struct {
	quota    Quota
	tenantOf func(run string) string

	mu    sync.Mutex
	used  map[string]uint64
	count map[string]int
	sizes map[string]map[uint64]uint64 // run → seq → retained payload size
}

// NewQuotaLedger creates a ledger enforcing q. tenantOf maps run IDs to
// tenants; nil makes every run its own tenant (budgets are then
// per-run, which also keeps concurrent tenants' quota decisions
// independent of how their operations interleave).
func NewQuotaLedger(q Quota, tenantOf func(run string) string) *QuotaLedger {
	return &QuotaLedger{
		quota:    q,
		tenantOf: tenantOf,
		used:     make(map[string]uint64),
		count:    make(map[string]int),
		sizes:    make(map[string]map[uint64]uint64),
	}
}

func (l *QuotaLedger) tenant(run string) string {
	if l.tenantOf == nil {
		return run
	}
	return l.tenantOf(run)
}

// Used returns a tenant's retained bytes and checkpoint count.
func (l *QuotaLedger) Used(tenant string) (bytes uint64, checkpoints int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.used[tenant], l.count[tenant]
}

// admit checks whether replacing (run, seq) with size bytes fits the
// budget, without committing.
func (l *QuotaLedger) admit(run string, seq uint64, size uint64) error {
	tenant := l.tenant(run)
	l.mu.Lock()
	defer l.mu.Unlock()
	old, had := l.sizes[run][seq]
	newUsed := l.used[tenant] - old + size
	newCount := l.count[tenant]
	if !had {
		newCount++
	}
	if l.quota.MaxBytes > 0 && newUsed > l.quota.MaxBytes {
		return fmt.Errorf("save %s/%d: %d retained bytes would exceed tenant %q budget %d: %w",
			run, seq, newUsed, tenant, l.quota.MaxBytes, ErrQuota)
	}
	if l.quota.MaxCheckpoints > 0 && newCount > l.quota.MaxCheckpoints {
		return fmt.Errorf("save %s/%d: %d retained checkpoints would exceed tenant %q budget %d: %w",
			run, seq, newCount, tenant, l.quota.MaxCheckpoints, ErrQuota)
	}
	return nil
}

// commit records a successful save of (run, seq) with size bytes.
func (l *QuotaLedger) commit(run string, seq uint64, size uint64) {
	tenant := l.tenant(run)
	l.mu.Lock()
	defer l.mu.Unlock()
	m := l.sizes[run]
	if m == nil {
		m = make(map[uint64]uint64)
		l.sizes[run] = m
	}
	old, had := m[seq]
	m[seq] = size
	l.used[tenant] += size - old
	if !had {
		l.count[tenant]++
	}
}

// release refunds a deleted (run, seq).
func (l *QuotaLedger) release(run string, seq uint64) {
	tenant := l.tenant(run)
	l.mu.Lock()
	defer l.mu.Unlock()
	if old, had := l.sizes[run][seq]; had {
		delete(l.sizes[run], seq)
		l.used[tenant] -= old
		l.count[tenant]--
	}
}

// QuotaStore enforces a ledger's budgets in front of an inner store.
// Compose it OUTERMOST — NewQuotaStore(ledger, Checked(FaultStore(…)))
// — so budgets are charged on the caller's payload bytes and rejections
// happen before any inner layer is touched.
//
// Accounting is billing-level: a save is charged only when the inner
// store reports success, so clean write failures cost nothing, torn-
// write debris below the quota layer is not billed, and silent losses
// injected by lower layers (FaultPlan.LoseOld) are not refunded. The
// admit/commit pair is not atomic across concurrent runs of ONE tenant;
// per-run tenants (the default) make the check exact.
type QuotaStore struct {
	ledger *QuotaLedger
	inner  Store
}

// NewQuotaStore binds a ledger to an inner store.
func NewQuotaStore(ledger *QuotaLedger, inner Store) *QuotaStore {
	return &QuotaStore{ledger: ledger, inner: inner}
}

// Ledger returns the bound ledger.
func (q *QuotaStore) Ledger() *QuotaLedger { return q.ledger }

// Unwrap exposes the inner store for capability discovery.
func (q *QuotaStore) Unwrap() Store { return q.inner }

// Save admits the payload against the tenant budget, then delegates.
func (q *QuotaStore) Save(run string, seq uint64, payload []byte) error {
	if err := q.ledger.admit(run, seq, uint64(len(payload))); err != nil {
		return err
	}
	if err := q.inner.Save(run, seq, payload); err != nil {
		return err
	}
	q.ledger.commit(run, seq, uint64(len(payload)))
	return nil
}

// Load delegates.
func (q *QuotaStore) Load(run string, seq uint64) ([]byte, error) {
	return q.inner.Load(run, seq)
}

// List delegates.
func (q *QuotaStore) List(run string) ([]uint64, error) {
	return q.inner.List(run)
}

// Delete delegates and refunds the tenant on success.
func (q *QuotaStore) Delete(run string, seq uint64) error {
	if err := q.inner.Delete(run, seq); err != nil {
		return err
	}
	q.ledger.release(run, seq)
	return nil
}

var _ Store = (*QuotaStore)(nil)
