package store

import (
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"repro/internal/netsim"
)

// quorumStack builds a quorum store whose replicas are each
// Checked(Remote(Fault(mem))) behind ONE shared network; replica i is
// endpoint "s<i>". Returns the quorum store and the replica mem stores
// for white-box inspection.
func quorumStack(netCfg netsim.Config, qcfg QuorumConfig, n int, faults FaultPlan) (*QuorumStore, []*MemStore) {
	net := netsim.New(netCfg)
	replicas := make([]Store, n)
	mems := make([]*MemStore, n)
	for i := 0; i < n; i++ {
		mems[i] = NewMemStore()
		var inner Store = mems[i]
		if faults != (FaultPlan{}) {
			fp := faults
			fp.Seed = faults.Seed + uint64(i)
			inner = NewFaultStore(inner, fp)
		}
		rs := NewRemoteStore(inner, net, netCfg, RemoteConfig{Remote: fmt.Sprintf("s%d", i), Timeout: 2})
		replicas[i] = Checked(rs)
	}
	q, err := NewQuorumStore(replicas, qcfg)
	if err != nil {
		panic(err)
	}
	return q, mems
}

// TestKthSmallest pins the quorum-assembly selection directly: exact
// ranks at both ends, duplicate values occupying adjacent ranks, and
// no mutation of the input.
func TestKthSmallest(t *testing.T) {
	for _, tc := range []struct {
		xs   []float64
		k    int
		want float64
	}{
		{[]float64{5}, 1, 5},
		{[]float64{3, 1, 2}, 1, 1},
		{[]float64{3, 1, 2}, 2, 2},
		{[]float64{3, 1, 2}, 3, 3},
		{[]float64{2, 2, 2}, 1, 2},
		{[]float64{2, 2, 2}, 3, 2},
		{[]float64{4, 1, 4, 1}, 2, 1}, // ties: duplicate ranks adjacent
		{[]float64{4, 1, 4, 1}, 3, 4},
		{[]float64{0.3, 0.1, 0.2, 0.1, 0.3}, 4, 0.3},
	} {
		if got := kthSmallest(tc.xs, tc.k); got != tc.want {
			t.Errorf("kthSmallest(%v, %d) = %g, want %g", tc.xs, tc.k, got, tc.want)
		}
	}
	xs := []float64{9, 7, 8}
	_ = kthSmallest(xs, 2)
	if !reflect.DeepEqual(xs, []float64{9, 7, 8}) {
		t.Fatalf("kthSmallest mutated its input: %v", xs)
	}
}

// TestQuorumReadRepairConvergence is the property test behind the
// read-repair claim: after a quorum Load over deterministically
// diverged replicas — any mix of missing copies, torn frames, and
// divergent-but-valid payloads — every CONTACTED replica holds the
// chosen payload bit-for-bit. With R=N that is all N replicas.
func TestQuorumReadRepairConvergence(t *testing.T) {
	// Each scenario describes replica i's state before the Load:
	// "ok" (canonical), "missing", "torn", "divergent" (valid frame,
	// different bytes).
	scenarios := [][]string{
		{"ok", "missing", "torn"},
		{"ok", "torn", "torn"},
		{"missing", "ok", "divergent"},
		{"divergent", "ok", "missing"},
		{"ok", "divergent", "divergent"},
		{"torn", "missing", "ok"},
	}
	for si, sc := range scenarios {
		t.Run(fmt.Sprintf("scenario_%d", si), func(t *testing.T) {
			q, mems := quorumStack(netsim.Config{Seed: uint64(40 + si), Latency: 0.05}, QuorumConfig{W: 3, R: 3}, 3, FaultPlan{})
			if err := q.Save("r", 1, []byte("canonical")); err != nil {
				t.Fatalf("Save: %v", err)
			}
			for i, state := range sc {
				switch state {
				case "missing":
					if err := mems[i].Delete("r", 1); err != nil {
						t.Fatalf("replica %d delete: %v", i, err)
					}
				case "torn":
					raw, _ := mems[i].Load("r", 1)
					if err := mems[i].Save("r", 1, raw[:len(raw)-3]); err != nil {
						t.Fatalf("replica %d tear: %v", i, err)
					}
				case "divergent":
					if err := Checked(mems[i]).Save("r", 1, []byte("from another era")); err != nil {
						t.Fatalf("replica %d divergent plant: %v", i, err)
					}
				}
			}
			payload, err := q.Load("r", 1)
			if err != nil {
				t.Fatalf("Load over diverged replicas: %v", err)
			}
			ref, err := mems[0].Load("r", 1)
			if err != nil {
				t.Fatalf("replica 0 raw load: %v", err)
			}
			for i := 1; i < 3; i++ {
				got, err := mems[i].Load("r", 1)
				if err != nil {
					t.Fatalf("replica %d raw load after repair: %v", i, err)
				}
				if !reflect.DeepEqual(got, ref) {
					t.Fatalf("replica %d raw frame diverges from replica 0 after read repair", i)
				}
			}
			for i := 0; i < 3; i++ {
				got, err := q.replicas[i].Load("r", 1)
				if err != nil || string(got) != string(payload) {
					t.Fatalf("replica %d decoded = %q, %v; want the chosen payload %q", i, got, err, payload)
				}
			}
		})
	}
}

func TestQuorumRoundTrip(t *testing.T) {
	q, mems := quorumStack(netsim.Config{Seed: 1, Latency: 0.1, Jitter: 0.1}, QuorumConfig{}, 3, FaultPlan{})
	payload := []byte("state")
	if err := q.Save("r", 1, payload); err != nil {
		t.Fatalf("Save: %v", err)
	}
	for i, m := range mems {
		if seqs, _ := m.List("r"); len(seqs) != 1 {
			t.Fatalf("replica %d holds %v, want one checkpoint", i, seqs)
		}
	}
	got, err := q.Load("r", 1)
	if err != nil || string(got) != "state" {
		t.Fatalf("Load = %q, %v", got, err)
	}
	seqs, err := q.List("r")
	if err != nil || len(seqs) != 1 || seqs[0] != 1 {
		t.Fatalf("List = %v, %v", seqs, err)
	}
	if err := q.Delete("r", 1); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if err := q.Delete("r", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("second Delete = %v, want ErrNotFound", err)
	}
	if _, err := q.Load("r", 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Load after delete = %v, want ErrNotFound", err)
	}
	if op := q.LastOp("r"); op.Ops != 6 {
		t.Fatalf("quorum ops = %d, want 6 (one per call)", op.Ops)
	}
}

// TestQuorumRidesPartition pins the headline property: with one of
// three replicas isolated, W=2 writes and R=2 reads keep succeeding,
// while a single remote store behind the same window only times out.
func TestQuorumRidesPartition(t *testing.T) {
	netCfg := netsim.Config{
		Seed:       2,
		Latency:    0.1,
		Partitions: []netsim.Window{{Start: 0, End: 100, Isolated: []string{"s0"}}},
	}
	q, mems := quorumStack(netCfg, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	now := 50.0
	q.BindClock("r", func() float64 { return now })

	if err := q.Save("r", 1, []byte("during")); err != nil {
		t.Fatalf("quorum Save during partition: %v", err)
	}
	if seqs, _ := mems[0].List("r"); len(seqs) != 0 {
		t.Fatalf("isolated replica received the write: %v", seqs)
	}
	got, err := q.Load("r", 1)
	if err != nil || string(got) != "during" {
		t.Fatalf("quorum Load during partition = %q, %v", got, err)
	}

	single, _ := remoteOverMem(netsim.Config{
		Seed:       2,
		Latency:    0.1,
		Partitions: []netsim.Window{{Start: 0, End: 100, Isolated: []string{"store"}}},
	}, RemoteConfig{Timeout: 2})
	BindClock(single, "r", func() float64 { return 50 })
	if err := single.Save("r", 1, []byte("during")); !errors.Is(err, ErrTimeout) {
		t.Fatalf("single store during partition: %v, want ErrTimeout", err)
	}
}

// TestQuorumReadRepair checks that a replica that missed the write (or
// holds a torn frame) is healed by the read path, off the critical
// path.
func TestQuorumReadRepair(t *testing.T) {
	netCfg := netsim.Config{Seed: 3, Latency: 0.05}
	q, mems := quorumStack(netCfg, QuorumConfig{W: 2, R: 3}, 3, FaultPlan{})
	if err := q.Save("r", 1, []byte("good")); err != nil {
		t.Fatalf("Save: %v", err)
	}
	// Replica 1 silently loses the checkpoint; a torn frame stands in
	// on replica 2.
	if err := mems[1].Delete("r", 1); err != nil {
		t.Fatalf("Delete on replica 1: %v", err)
	}
	raw, _ := mems[2].Load("r", 1)
	if err := mems[2].Save("r", 1, raw[:len(raw)-3]); err != nil {
		t.Fatalf("tearing replica 2: %v", err)
	}

	got, err := q.Load("r", 1)
	if err != nil || string(got) != "good" {
		t.Fatalf("Load with stale replicas = %q, %v", got, err)
	}
	if st := q.Stats(); st.Repairs != 2 {
		t.Fatalf("Repairs = %d, want 2", st.Repairs)
	}
	// Both replicas healed: direct loads through their checked layers
	// now succeed.
	for _, i := range []int{1, 2} {
		if _, err := q.replicas[i].Load("r", 1); err != nil {
			t.Fatalf("replica %d still stale after repair: %v", i, err)
		}
	}
}

// TestQuorumNotReached pins the failure shape when no quorum is
// possible: ErrQuorum wrapping a transient (timeout) cause, so the
// executor retries rather than aborts.
func TestQuorumNotReached(t *testing.T) {
	netCfg := netsim.Config{
		Seed:       4,
		Partitions: []netsim.Window{{Start: 0, End: 100, Isolated: []string{"s0", "s1", "s2"}}},
	}
	q, _ := quorumStack(netCfg, QuorumConfig{W: 2, R: 2}, 3, FaultPlan{})
	err := q.Save("r", 1, []byte("x"))
	if !errors.Is(err, ErrQuorum) || !errors.Is(err, ErrTimeout) {
		t.Fatalf("Save with all replicas cut = %v, want ErrQuorum wrapping ErrTimeout", err)
	}
	if _, err := q.Load("r", 1); !errors.Is(err, ErrQuorum) {
		t.Fatalf("Load with all replicas cut = %v, want ErrQuorum", err)
	}
	if st := q.Stats(); st.QuorumFailures != 2 {
		t.Fatalf("QuorumFailures = %d, want 2", st.QuorumFailures)
	}
}

// runScript drives one run through a quorum store with a fixed op
// script and returns every observable: per-op success, per-op quorum
// latency, and the loaded payloads.
func runScript(q *QuorumStore, run string) (oks []bool, lats []float64, loads []string) {
	for seq := uint64(1); seq <= 10; seq++ {
		payload := []byte(fmt.Sprintf("%s/%d payload with some length to tear", run, seq))
		err := q.Save(run, seq, payload)
		op := q.LastOp(run)
		oks = append(oks, err == nil)
		lats = append(lats, op.Latency)
		if seq%3 == 0 {
			got, lerr := q.Load(run, seq)
			op = q.LastOp(run)
			oks = append(oks, lerr == nil)
			lats = append(lats, op.Latency)
			if lerr == nil {
				loads = append(loads, string(got))
			}
		}
	}
	seqs, err := q.List(run)
	oks = append(oks, err == nil)
	loads = append(loads, fmt.Sprintf("list=%v", seqs))
	return
}

// TestQuorumDeterministicRepair is the property test behind the PR's
// determinism claim: for any replica count and any worker count, the
// merge/repair behaviour of a shared quorum store is a pure function
// of each run's logical operations. Every run's observations on a
// shared, concurrently hammered stack must equal the same run's
// observations on a private stack, and the aggregate repair counters
// must equal the sum of the solo runs'.
func TestQuorumDeterministicRepair(t *testing.T) {
	faults := FaultPlan{Seed: 90, TornWrite: 0.25, LoseOld: 0.1, MeanLatency: 0.2, LogicalKeys: true}
	netCfg := netsim.Config{Seed: 91, Latency: 0.05, Jitter: 0.3, Loss: 0.1}
	runs := []string{"alpha", "beta", "gamma", "delta", "epsilon", "zeta"}

	for _, tc := range []struct{ n, w, r, workers int }{
		{2, 2, 1, 2},
		{3, 2, 2, 3},
		{3, 3, 1, 6},
		{5, 3, 3, 4},
		{5, 4, 2, 6},
	} {
		t.Run(fmt.Sprintf("n=%d_w=%d_r=%d_workers=%d", tc.n, tc.w, tc.r, tc.workers), func(t *testing.T) {
			type obs struct {
				oks   []bool
				lats  []float64
				loads []string
			}
			// Solo reference: a private stack per run.
			want := make(map[string]obs)
			var wantRepairs uint64
			for _, run := range runs {
				q, _ := quorumStack(netCfg, QuorumConfig{W: tc.w, R: tc.r}, tc.n, faults)
				oks, lats, loads := runScript(q, run)
				want[run] = obs{oks, lats, loads}
				wantRepairs += q.Stats().Repairs
			}

			// Shared stack, runs distributed over workers.
			shared, _ := quorumStack(netCfg, QuorumConfig{W: tc.w, R: tc.r}, tc.n, faults)
			got := make(map[string]obs)
			var mu sync.Mutex
			var wg sync.WaitGroup
			for w := 0; w < tc.workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for i := w; i < len(runs); i += tc.workers {
						run := runs[i]
						oks, lats, loads := runScript(shared, run)
						mu.Lock()
						got[run] = obs{oks, lats, loads}
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()

			for _, run := range runs {
				if !reflect.DeepEqual(want[run], got[run]) {
					t.Fatalf("run %s diverged between solo and shared stacks:\nsolo   %+v\nshared %+v", run, want[run], got[run])
				}
			}
			if gotRepairs := shared.Stats().Repairs; gotRepairs != wantRepairs {
				t.Fatalf("shared Repairs = %d, want sum of solo runs %d", gotRepairs, wantRepairs)
			}
		})
	}
}
