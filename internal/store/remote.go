package store

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/netsim"
)

// ErrTimeout reports a remote operation that missed its per-op
// deadline: the message was lost, cut off by a partition window, or
// simply drew a latency beyond the timeout. The executor classifies it
// as transient — retry, back off, degrade, ride out the window.
var ErrTimeout = errors.New("store: remote operation timed out")

// RemoteConfig parameterizes a RemoteStore.
type RemoteConfig struct {
	// Local and Remote name the network endpoints of the executor side
	// and the store side; partition windows isolate endpoints by these
	// names. Defaults are "exec" and "store".
	Local, Remote string
	// Timeout is the per-operation deadline in virtual time. A message
	// that is lost, partitioned, or slower than this charges exactly
	// Timeout and fails with ErrTimeout. When zero or negative, a
	// default of 8×(base latency + jitter mean), floor 1, applies.
	Timeout float64
}

// timeout resolves the effective deadline against the network config.
func (c RemoteConfig) timeout(net netsim.Config) float64 {
	if c.Timeout > 0 {
		return c.Timeout
	}
	d := 8 * (net.Latency + net.Jitter)
	if d < 1 {
		d = 1
	}
	return d
}

// RemoteStore routes Save/Load/List/Delete through a simulated network
// with per-op timeouts. Each operation sends one logical message
// (modeling the full request/response round trip); if the network
// loses it, a partition window cuts it, or the drawn latency exceeds
// the deadline, the operation charges exactly the timeout, fails with
// ErrTimeout, and never reaches the inner store. Otherwise the drawn
// latency — plus any virtual latency the inner stack itself injects —
// is charged and the inner operation runs.
//
// Partition windows are evaluated at the run's bound virtual time
// (BindClock); an unbound run reads time zero. Like FaultStore in
// LogicalKeys mode, every outcome is a pure function of the logical
// operation identity and its attempt ordinal, so concurrent runs never
// perturb each other and kill/resume replays re-observe identical
// outcomes.
//
// Compose Checked ABOVE the remote layer — Checked(NewRemoteStore(...))
// — so payloads that do land torn (an inner FaultStore below the
// network) surface as ErrCorrupt: detected, not decoded.
type RemoteStore struct {
	inner Store
	net   *netsim.Network
	cfg   RemoteConfig
	ttl   float64

	mu       sync.Mutex
	clocks   map[string]func() float64
	runOps   map[string]uint64
	runLat   map[string]float64
	lastLat  map[string]float64
	timeouts uint64
}

// NewRemoteStore wraps inner behind the simulated network.
func NewRemoteStore(inner Store, net *netsim.Network, netCfg netsim.Config, cfg RemoteConfig) *RemoteStore {
	if cfg.Local == "" {
		cfg.Local = "exec"
	}
	if cfg.Remote == "" {
		cfg.Remote = "store"
	}
	return &RemoteStore{
		inner:   inner,
		net:     net,
		cfg:     cfg,
		ttl:     cfg.timeout(netCfg),
		clocks:  make(map[string]func() float64),
		runOps:  make(map[string]uint64),
		runLat:  make(map[string]float64),
		lastLat: make(map[string]float64),
	}
}

// BindClock registers run's virtual-time source, used to evaluate
// partition windows at delivery time.
func (r *RemoteStore) BindClock(run string, now func() float64) {
	r.mu.Lock()
	r.clocks[run] = now
	r.mu.Unlock()
}

// Timeout returns the effective per-operation deadline.
func (r *RemoteStore) Timeout() float64 { return r.ttl }

// Timeouts returns how many operations have timed out.
func (r *RemoteStore) Timeouts() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.timeouts
}

// LastOp returns the run's operation count and the exact virtual
// latency of its most recent operation (network transit plus any inner
// virtual latency, or the full timeout on failure).
func (r *RemoteStore) LastOp(run string) RunOp {
	r.mu.Lock()
	defer r.mu.Unlock()
	return RunOp{Ops: r.runOps[run], Latency: r.lastLat[run]}
}

// RunLatency returns the total virtual latency attributed to one run.
func (r *RemoteStore) RunLatency(run string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.runLat[run]
}

// Unwrap exposes the inner store for capability discovery.
func (r *RemoteStore) Unwrap() Store { return r.inner }

// transit sends the operation's message. It returns the network
// latency to charge and a nil error on delivery, or ErrTimeout (with
// the timeout as the charged latency) when the message is lost,
// partitioned, or too slow.
func (r *RemoteStore) transit(kind uint64, opName, run string, seq uint64) (float64, error) {
	r.mu.Lock()
	clock := r.clocks[run]
	r.mu.Unlock()
	now := 0.0
	if clock != nil {
		now = clock()
	}
	out := r.net.Deliver(now, r.cfg.Local, r.cfg.Remote, netsim.Message{Kind: kind, Run: run, Seq: seq})
	if !out.OK() || out.Latency > r.ttl {
		r.mu.Lock()
		r.timeouts++
		r.mu.Unlock()
		why := "slow"
		switch {
		case out.Partitioned:
			why = "partitioned"
		case out.Lost:
			why = "lost"
		}
		return r.ttl, fmt.Errorf("store: %s %s/%d at t=%.6g (%s): %w", opName, run, seq, now, why, ErrTimeout)
	}
	return out.Latency, nil
}

// record books an operation's exact latency for run.
func (r *RemoteStore) record(run string, lat float64) {
	r.mu.Lock()
	r.runOps[run]++
	r.runLat[run] += lat
	r.lastLat[run] = lat
	r.mu.Unlock()
}

// innerLat runs op against the inner store and folds any virtual
// latency the inner stack charged for it into the returned total, so a
// composed Remote(Fault(...)) stack reports one coherent per-op cost.
func (r *RemoteStore) innerLat(run string, netLat float64, op func() error) (float64, error) {
	before, tracked := LastOp(r.inner, run)
	err := op()
	if tracked {
		if after, _ := LastOp(r.inner, run); after.Ops > before.Ops {
			netLat += after.Latency
		}
	}
	return netLat, err
}

// Save routes the save through the network, then the inner store.
func (r *RemoteStore) Save(run string, seq uint64, payload []byte) error {
	lat, err := r.transit(opSave, "save", run, seq)
	if err == nil {
		lat, err = r.innerLat(run, lat, func() error { return r.inner.Save(run, seq, payload) })
	}
	r.record(run, lat)
	return err
}

// Load routes the load through the network, then the inner store.
func (r *RemoteStore) Load(run string, seq uint64) ([]byte, error) {
	lat, err := r.transit(opLoad, "load", run, seq)
	var payload []byte
	if err == nil {
		lat, err = r.innerLat(run, lat, func() error {
			var ierr error
			payload, ierr = r.inner.Load(run, seq)
			return ierr
		})
	}
	r.record(run, lat)
	return payload, err
}

// List routes the enumeration through the network (seq 0, like the
// fault layer), then the inner store.
func (r *RemoteStore) List(run string) ([]uint64, error) {
	lat, err := r.transit(opList, "list", run, 0)
	var seqs []uint64
	if err == nil {
		lat, err = r.innerLat(run, lat, func() error {
			var ierr error
			seqs, ierr = r.inner.List(run)
			return ierr
		})
	}
	r.record(run, lat)
	return seqs, err
}

// Delete routes the delete through the network, then the inner store.
func (r *RemoteStore) Delete(run string, seq uint64) error {
	lat, err := r.transit(opDelete, "delete", run, seq)
	if err == nil {
		lat, err = r.innerLat(run, lat, func() error { return r.inner.Delete(run, seq) })
	}
	r.record(run, lat)
	return err
}

var (
	_ Store       = (*RemoteStore)(nil)
	_ ClockBinder = (*RemoteStore)(nil)
)
