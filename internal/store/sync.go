package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
)

// ErrUnrepairable reports a scrub that found corrupt replicas it could
// not repair: fewer than R replicas hold a clean copy, so no read
// quorum vouches for any candidate payload and overwriting would risk
// blessing a wrong one. This is a loud, typed failure — the operator
// must restore the key from elsewhere (or accept the data loss), and
// silent continuation would let rot spread to the repair source itself.
var ErrUnrepairable = errors.New("store: corrupt replicas without a clean quorum to repair from")

// SyncReport summarizes one anti-entropy pass over a run.
type SyncReport struct {
	// Seqs is the number of distinct sequence numbers the pass visited
	// (the union of every reachable replica's listing).
	Seqs int
	// Copied counts replica copies written by this pass: (seq, replica)
	// pairs that were missing, corrupt, or byte-divergent and now hold
	// the quorum payload — whether the canonical read's repair or the
	// explicit copy sweep wrote them.
	Copied int
	// InSync counts (seq, replica) pairs verified to hold the quorum
	// payload bit-for-bit by the end of the pass.
	InSync int
	// LoadFailures counts seqs skipped because no quorum read could
	// establish a canonical payload (e.g. mid-partition).
	LoadFailures int
	// CopyFailures counts replica copies that failed (unreachable
	// replica); the pair stays divergent until the next pass.
	CopyFailures int
	// Unlisted counts replicas whose List failed — their missing seqs
	// cannot be discovered this pass.
	Unlisted int
}

// Converged reports whether the pass proved every replica it could see
// holds every seq bit-for-bit: nothing failed and nothing was left out.
func (r SyncReport) Converged() bool {
	return r.LoadFailures == 0 && r.CopyFailures == 0 && r.Unlisted == 0
}

// ScrubReport summarizes one scrub-and-repair pass over a run.
type ScrubReport struct {
	// Seqs is the number of distinct sequence numbers walked.
	Seqs int
	// Checked counts (seq, replica) load probes performed.
	Checked int
	// Corrupt counts replicas whose copy failed the Checked codec's
	// integrity check (ErrCorrupt).
	Corrupt int
	// Repaired counts corrupt replicas overwritten from a clean quorum.
	Repaired int
	// Unrepairable counts seqs with corrupt replicas but fewer than R
	// clean copies — no quorum vouches for a repair source.
	Unrepairable int
	// CopyFailures counts repair writes that failed.
	CopyFailures int
}

// RunSyncer is the anti-entropy capability: stores that can converge a
// run's replicas without read traffic implement it.
type RunSyncer interface {
	SyncRun(run string) (SyncReport, error)
}

// RunScrubber is the scrub-and-repair capability.
type RunScrubber interface {
	ScrubRun(run string) (ScrubReport, error)
}

// FindSyncer walks the decorator stack for a RunSyncer.
func FindSyncer(s Store) (RunSyncer, bool) {
	for s != nil {
		if sy, ok := s.(RunSyncer); ok {
			return sy, true
		}
		u, ok := s.(Unwrapper)
		if !ok {
			break
		}
		s = u.Unwrap()
	}
	return nil, false
}

// FindScrubber walks the decorator stack for a RunScrubber.
func FindScrubber(s Store) (RunScrubber, bool) {
	for s != nil {
		if sc, ok := s.(RunScrubber); ok {
			return sc, true
		}
		u, ok := s.(Unwrapper)
		if !ok {
			break
		}
		s = u.Unwrap()
	}
	return nil, false
}

// SyncRun runs one deterministic anti-entropy pass over run: list every
// replica, take the union of sequence numbers, establish the canonical
// payload for each via a quorum Load, and copy it to every reachable
// replica that is missing, corrupt, or byte-divergent. Sequences are
// visited in ascending order and replicas in ascending index, so the
// pass is bit-reproducible; it never advances the virtual clock beyond
// what its own store operations charge and draws no randomness of its
// own, which keeps executor-driven passes invisible to the journal.
//
// After a partition heals, repeated passes converge all N replicas to
// bit-identical contents without depending on read traffic — this is
// the background half of repair, complementing the read path's quorum
// repair. The returned error (nil when the pass fully converged) wraps
// a representative cause; the report is always meaningful.
func (q *QuorumStore) SyncRun(run string) (SyncReport, error) {
	if err := validRun(run); err != nil {
		return SyncReport{}, err
	}
	n := len(q.replicas)
	seen := make(map[uint64]bool)
	listed := make([]bool, n)
	okLists := 0
	listErrs := make([]error, 0, n)
	for i := 0; i < n; i++ {
		var seqs []uint64
		_, err := q.replicaOp(i, run, func(s Store) error {
			var ierr error
			seqs, ierr = s.List(run)
			return ierr
		})
		if err != nil {
			listErrs = append(listErrs, err)
			continue
		}
		listed[i] = true
		okLists++
		for _, sq := range seqs {
			seen[sq] = true
		}
	}
	rep := SyncReport{Unlisted: n - okLists}
	if okLists < q.r {
		// Too few listings to even trust the seq union: bail with the
		// usual quorum error shape so retry classification works.
		q.mu.Lock()
		q.stats.QuorumFailures++
		q.mu.Unlock()
		return rep, quorumErr("sync", run, 0, okLists, q.r, listErrs)
	}
	seqs := make([]uint64, 0, len(seen))
	for sq := range seen {
		seqs = append(seqs, sq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	rep.Seqs = len(seqs)

	var firstErr error
	for _, sq := range seqs {
		// The quorum Load both establishes the canonical payload and
		// read-repairs the negatives it contacts; those repairs are this
		// pass's work, so the Repairs delta counts toward Copied.
		q.mu.Lock()
		beforeRepairs := q.stats.Repairs
		q.mu.Unlock()
		canonical, err := q.Load(run, sq)
		q.mu.Lock()
		rep.Copied += int(q.stats.Repairs - beforeRepairs)
		q.mu.Unlock()
		if err != nil {
			rep.LoadFailures++
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		for i := 0; i < n; i++ {
			if !listed[i] {
				// The replica could not even list; its copy state is
				// unknown and a write would likely fail the same way.
				continue
			}
			var cur []byte
			_, lerr := q.replicaOp(i, run, func(s Store) error {
				var ierr error
				cur, ierr = s.Load(run, sq)
				return ierr
			})
			if lerr == nil && bytes.Equal(cur, canonical) {
				rep.InSync++
				continue
			}
			if _, werr := q.replicaOp(i, run, func(s Store) error { return s.Save(run, sq, canonical) }); werr != nil {
				rep.CopyFailures++
				if firstErr == nil {
					firstErr = werr
				}
				continue
			}
			rep.Copied++
			q.mu.Lock()
			q.stats.Repairs++
			q.mu.Unlock()
		}
	}
	if rep.Converged() {
		return rep, nil
	}
	if firstErr == nil && rep.Unlisted > 0 {
		firstErr = fmt.Errorf("%d replicas unreachable for listing", rep.Unlisted)
	}
	return rep, fmt.Errorf("store: sync %s: %d/%d seqs unresolved, %d copies failed, %d replicas unlisted: %w",
		run, rep.LoadFailures, rep.Seqs, rep.CopyFailures, rep.Unlisted, firstErr)
}

// ScrubRun walks every (run, seq) key, probes each replica's copy, and
// repairs the ones the Checked codec rejects (ErrCorrupt) by
// overwriting them with the payload a clean quorum agrees on. The
// repair source is the most common clean payload, requiring at least R
// clean replicas — a read quorum's worth of agreement — so a scrub can
// repair up to N−R corrupt copies of one key (with W+R > N this bounds
// the classic N−W stragglers plus any rot on top). Fewer clean copies
// than R is a typed loud failure (ErrUnrepairable): no quorum vouches
// for any candidate, and guessing could overwrite the only good bytes.
//
// Like SyncRun the walk is deterministic: ascending seq, ascending
// replica index, no goroutines, no wall clock.
func (q *QuorumStore) ScrubRun(run string) (ScrubReport, error) {
	if err := validRun(run); err != nil {
		return ScrubReport{}, err
	}
	n := len(q.replicas)
	seen := make(map[uint64]bool)
	okLists := 0
	listErrs := make([]error, 0, n)
	for i := 0; i < n; i++ {
		var seqs []uint64
		_, err := q.replicaOp(i, run, func(s Store) error {
			var ierr error
			seqs, ierr = s.List(run)
			return ierr
		})
		if err != nil {
			listErrs = append(listErrs, err)
			continue
		}
		okLists++
		for _, sq := range seqs {
			seen[sq] = true
		}
	}
	var rep ScrubReport
	if okLists < q.r {
		q.mu.Lock()
		q.stats.QuorumFailures++
		q.mu.Unlock()
		return rep, quorumErr("scrub", run, 0, okLists, q.r, listErrs)
	}
	seqs := make([]uint64, 0, len(seen))
	for sq := range seen {
		seqs = append(seqs, sq)
	}
	sort.Slice(seqs, func(a, b int) bool { return seqs[a] < seqs[b] })
	rep.Seqs = len(seqs)

	var firstErr error
	for _, sq := range seqs {
		var clean []reply
		var corrupt []int
		for i := 0; i < n; i++ {
			var payload []byte
			_, err := q.replicaOp(i, run, func(s Store) error {
				var ierr error
				payload, ierr = s.Load(run, sq)
				return ierr
			})
			rep.Checked++
			switch {
			case err == nil:
				clean = append(clean, reply{idx: i, payload: payload})
			case errors.Is(err, ErrCorrupt):
				corrupt = append(corrupt, i)
			}
			// Missing or unreachable copies are SyncRun's department;
			// the scrubber only chases rot.
		}
		if len(corrupt) == 0 {
			continue
		}
		rep.Corrupt += len(corrupt)
		if len(clean) < q.r {
			rep.Unrepairable++
			if firstErr == nil {
				firstErr = fmt.Errorf("store: scrub %s/%d: %d corrupt replicas, only %d clean (need %d): %w",
					run, sq, len(corrupt), len(clean), q.r, ErrUnrepairable)
			}
			continue
		}
		winner := scrubWinner(clean)
		for _, i := range corrupt {
			if _, werr := q.replicaOp(i, run, func(s Store) error { return s.Save(run, sq, winner) }); werr != nil {
				rep.CopyFailures++
				if firstErr == nil {
					firstErr = werr
				}
				continue
			}
			rep.Repaired++
			q.mu.Lock()
			q.stats.Repairs++
			q.mu.Unlock()
		}
	}
	if rep.Unrepairable == 0 && rep.CopyFailures == 0 {
		return rep, nil
	}
	return rep, fmt.Errorf("store: scrub %s: %d/%d seqs unrepairable, %d repair writes failed: %w",
		run, rep.Unrepairable, rep.Seqs, rep.CopyFailures, firstErr)
}

// scrubWinner picks the repair source among clean replies: the most
// common payload byte-string, ties broken toward the one whose lowest
// holding replica index is smallest, so the choice is deterministic.
func scrubWinner(clean []reply) []byte {
	counts := make(map[string]int, len(clean))
	lowest := make(map[string]int, len(clean))
	for _, rp := range clean {
		key := string(rp.payload)
		counts[key]++
		if cur, ok := lowest[key]; !ok || rp.idx < cur {
			lowest[key] = rp.idx
		}
	}
	// Map iteration order is random, but the (count desc, lowest-index
	// asc) order is strict — lowest indices are unique per key — so the
	// winner is iteration-order independent.
	best, have := "", false
	for key := range counts {
		if !have || counts[key] > counts[best] || (counts[key] == counts[best] && lowest[key] < lowest[best]) {
			best, have = key, true
		}
	}
	return []byte(best)
}

var (
	_ RunSyncer   = (*QuorumStore)(nil)
	_ RunScrubber = (*QuorumStore)(nil)
)
