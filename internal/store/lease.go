package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
)

// ErrFenced reports a write rejected because a higher-epoch lease exists
// for the run: another executor legitimately took the run over, and this
// writer is a zombie — an executor that stalled (partition, long pause,
// crash misdetection) past its lease and woke up still believing it owns
// the run. Fenced writes MUST abort the execution (ClassifyStoreError
// marks the error fatal): retrying or degrading would interleave two
// executors' journal histories on one store.
var ErrFenced = errors.New("store: operation fenced by a higher-epoch lease")

// ErrLeaseExpired reports a guarded operation whose lease could not be
// confirmed: the session expired and renewal failed, the lease record
// was unreadable, or no lease was ever acquired for the run. Unlike
// ErrFenced nothing proves another writer exists, so the error is
// transient — retrying re-validates, and a renewal that rides a healed
// partition succeeds.
var ErrLeaseExpired = errors.New("store: lease expired or unconfirmed")

// ErrLeaseHeld reports an acquisition attempt while another holder's
// lease is still live on the virtual clock. The acquirer may wait for
// expiry, or — when its failure detector says the holder is dead —
// re-acquire with Takeover, which bumps the epoch and fences the old
// holder rather than trusting the detector.
var ErrLeaseHeld = errors.New("store: lease held by another executor")

// leaseSuffix maps a run to its lease run: lease records persist through
// the same store stack (same codec, same quorum machinery) as the
// checkpoints they guard, under a derived run ID so lease traffic stays
// out of the data run's listings and per-run op ledgers.
const leaseSuffix = "~lease"

// leaseSeq is the fixed sequence number of the single current-lease
// record inside a lease run. Overwriting one well-known key keeps
// acquisition to one read + one write and renewal to one write.
const leaseSeq = 1

// LeaseRun returns the derived run ID holding run's lease record.
func LeaseRun(run string) string { return run + leaseSuffix }

// isLeaseRun reports whether run is itself a lease run; operations on
// lease runs pass through unguarded (they ARE the lease machinery).
func isLeaseRun(run string) bool { return strings.HasSuffix(run, leaseSuffix) }

// LeaseConfig parameterizes a LeaseStore.
type LeaseConfig struct {
	// Holder identifies this executor in lease records ("exec" when
	// empty). Two processes contending on one store must use distinct
	// holders — the read-back after an acquisition write distinguishes
	// winners by holder identity.
	Holder string
	// TTL is the lease duration in virtual time (default 10). A holder
	// that performs no guarded write for a full TTL loses its claim: the
	// next acquirer may take the run without a takeover.
	TTL float64
	// RenewWithin renews the lease during a guarded write once the
	// remaining TTL drops below this (default TTL/2). Renewal is
	// piggy-backed: it costs one extra store write on a save that was
	// happening anyway, never a background timer.
	RenewWithin float64
	// Takeover lets Acquire bump the epoch even while another holder's
	// lease is unexpired — the "my failure detector says the owner is
	// dead" path. Safety never depends on the detector being right:
	// a takeover fences the old holder, it does not trust it to be gone.
	Takeover bool
}

func (c LeaseConfig) holder() string {
	if c.Holder == "" {
		return "exec"
	}
	return c.Holder
}

func (c LeaseConfig) ttl() float64 {
	if c.TTL <= 0 {
		return 10
	}
	return c.TTL
}

func (c LeaseConfig) renewWithin() float64 {
	if c.RenewWithin <= 0 {
		return c.ttl() / 2
	}
	return c.RenewWithin
}

// LeaseState is a decoded lease record: the fencing epoch, who holds it,
// and when it expires on the virtual clock.
type LeaseState struct {
	Epoch  uint64
	Holder string
	Expiry float64
}

// LeaseStats counts lease-protocol activity.
type LeaseStats struct {
	// Acquires counts epoch bumps written by this instance.
	Acquires uint64
	// Renewals counts lease-record rewrites piggy-backed on saves.
	Renewals uint64
	// Validations counts guarded operations that re-read the lease
	// record before writing.
	Validations uint64
	// Fenced counts guarded operations rejected with ErrFenced.
	Fenced uint64
}

// leaseSession is this instance's claim on one run.
type leaseSession struct {
	epoch  uint64
	expiry float64
}

// LeaseStore wraps a store with epoch-fenced write leases. One
// LeaseStore instance models one executor process: Acquire bumps the
// run's epoch exactly once per instance (a resumed run is a NEW process
// and therefore a NEW instance, so resume re-acquires a higher epoch),
// and every guarded Save/Delete re-reads the lease record first —
// a higher epoch means another executor took over, and the operation
// fails with ErrFenced instead of interleaving writes. An invocation
// that re-enters Execute on the SAME instance (a zombie waking up)
// keeps its stale session and is fenced on its first write.
//
// The lease record is an ordinary checkpoint of the derived lease run
// (LeaseRun), persisted through the wrapped stack — it rides the same
// codec and quorum machinery as the data it guards, and its expiry is
// virtual time read from the clock bound via BindClock. Lease traffic
// is keyed under the lease run, so the data run's op ledgers, latency
// accounting and network attempt counters never observe it: leases are
// invisible to the journal and to replay identity.
//
// Concurrent-acquisition arbitration is read-back-based: an acquirer
// writes its record and re-reads it; whoever's record survives (the
// store is last-writer-wins) owns the epoch and the loser sees ErrFenced.
// Under the deterministic simulator operations serialize, so the
// read-back always observes the winner.
type LeaseStore struct {
	inner Store
	cfg   LeaseConfig

	mu       sync.Mutex
	clocks   map[string]func() float64
	sessions map[string]*leaseSession
	stats    LeaseStats
}

// NewLeaseStore wraps inner with lease fencing.
func NewLeaseStore(inner Store, cfg LeaseConfig) *LeaseStore {
	return &LeaseStore{
		inner:    inner,
		cfg:      cfg,
		clocks:   make(map[string]func() float64),
		sessions: make(map[string]*leaseSession),
	}
}

// Unwrap exposes the inner store for capability discovery.
func (l *LeaseStore) Unwrap() Store { return l.inner }

// Stats returns a snapshot of lease-protocol counters.
func (l *LeaseStore) Stats() LeaseStats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.stats
}

// Holder returns this instance's holder identity.
func (l *LeaseStore) Holder() string { return l.cfg.holder() }

// Epoch returns the epoch this instance holds for run, ok=false before
// Acquire.
func (l *LeaseStore) Epoch(run string) (uint64, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.sessions[run]
	if s == nil {
		return 0, false
	}
	return s.epoch, true
}

// BindClock keeps the run's virtual-time source for expiry arithmetic
// and propagates it to the inner stack under the lease run's key, so
// time-dependent layers (RemoteStore partition evaluation) see lease
// traffic at the same virtual time as the data traffic it rides with.
// The generic BindClock walker separately binds the data run on the
// inner stack via Unwrap.
func (l *LeaseStore) BindClock(run string, now func() float64) {
	l.mu.Lock()
	l.clocks[run] = now
	l.mu.Unlock()
	if !isLeaseRun(run) {
		BindClock(l.inner, LeaseRun(run), now)
	}
}

// now reads run's virtual clock; an unbound run reads time zero.
func (l *LeaseStore) now(run string) float64 {
	l.mu.Lock()
	clock := l.clocks[run]
	l.mu.Unlock()
	if clock == nil {
		return 0
	}
	return clock()
}

// Lease-record layout (little-endian):
//
//	magic "LEAS" | version u8 | epoch u64 | expiry f64 bits | hlen u16 | holder
const (
	leaseMagic   = "LEAS"
	leaseVersion = 1
)

// errLeaseRecord reports a lease record that decoded to garbage — a
// version skew, not bit rot (the codec layer below already CRC-checks).
// It is NOT treated as absence: resetting the epoch on a record we
// cannot read could un-fence a zombie.
var errLeaseRecord = errors.New("store: malformed lease record")

func encodeLease(st LeaseState) []byte {
	out := make([]byte, 0, len(leaseMagic)+1+8+8+2+len(st.Holder))
	out = append(out, leaseMagic...)
	out = append(out, leaseVersion)
	out = binary.LittleEndian.AppendUint64(out, st.Epoch)
	out = binary.LittleEndian.AppendUint64(out, math.Float64bits(st.Expiry))
	out = binary.LittleEndian.AppendUint16(out, uint16(len(st.Holder)))
	return append(out, st.Holder...)
}

func decodeLease(data []byte) (LeaseState, error) {
	head := len(leaseMagic) + 1 + 8 + 8 + 2
	if len(data) < head || string(data[:len(leaseMagic)]) != leaseMagic {
		return LeaseState{}, errLeaseRecord
	}
	p := len(leaseMagic)
	if data[p] != leaseVersion {
		return LeaseState{}, fmt.Errorf("%w: version %d", errLeaseRecord, data[p])
	}
	p++
	st := LeaseState{Epoch: binary.LittleEndian.Uint64(data[p:])}
	p += 8
	st.Expiry = math.Float64frombits(binary.LittleEndian.Uint64(data[p:]))
	p += 8
	hlen := int(binary.LittleEndian.Uint16(data[p:]))
	p += 2
	if len(data) != head+hlen {
		return LeaseState{}, fmt.Errorf("%w: holder length %d does not match record size %d", errLeaseRecord, hlen, len(data))
	}
	st.Holder = string(data[p:])
	return st, nil
}

// leaseOpRetries is the extra-attempt budget lease reads and writes get
// against transient remote timeouts, mirroring the executor's resume
// listing: each retry is an independent keyed network draw, so a lossy
// link does not turn every acquisition into a coin flip, while a
// partition still fails deterministically after the budget.
const leaseOpRetries = 4

// readLease loads and decodes run's current lease record. found=false
// means the record definitively does not exist (epoch zero).
func (l *LeaseStore) readLease(run string) (st LeaseState, found bool, err error) {
	lrun := LeaseRun(run)
	data, err := l.inner.Load(lrun, leaseSeq)
	for extra := 0; errors.Is(err, ErrTimeout) && extra < leaseOpRetries; extra++ {
		data, err = l.inner.Load(lrun, leaseSeq)
	}
	if errors.Is(err, ErrNotFound) {
		return LeaseState{}, false, nil
	}
	if err != nil {
		return LeaseState{}, false, err
	}
	st, err = decodeLease(data)
	if err != nil {
		return LeaseState{}, false, err
	}
	return st, true, nil
}

// writeLease persists st as run's current lease record.
func (l *LeaseStore) writeLease(run string, st LeaseState) error {
	lrun := LeaseRun(run)
	err := l.inner.Save(lrun, leaseSeq, encodeLease(st))
	for extra := 0; errors.Is(err, ErrTimeout) && extra < leaseOpRetries; extra++ {
		err = l.inner.Save(lrun, leaseSeq, encodeLease(st))
	}
	return err
}

// Acquire claims run for this instance, bumping the persisted epoch
// past whatever is recorded. It is idempotent per instance: a second
// call returns the session already held without touching the store —
// which is exactly what makes a zombie detectable. A NEW process
// resuming the run constructs a new LeaseStore and its Acquire writes
// a higher epoch, fencing every older session's writes.
//
// A live lease under a different holder blocks acquisition with
// ErrLeaseHeld unless the config asks for a Takeover; an expired one,
// or one held by the same holder identity (a restart of ourselves),
// never blocks.
func (l *LeaseStore) Acquire(run string) (LeaseState, error) {
	if err := validRun(run); err != nil {
		return LeaseState{}, err
	}
	if isLeaseRun(run) {
		return LeaseState{}, fmt.Errorf("store: acquire %s: lease runs cannot themselves be leased", run)
	}
	l.mu.Lock()
	if s := l.sessions[run]; s != nil {
		held := LeaseState{Epoch: s.epoch, Holder: l.cfg.holder(), Expiry: s.expiry}
		l.mu.Unlock()
		return held, nil
	}
	l.mu.Unlock()

	now := l.now(run)
	cur, found, err := l.readLease(run)
	if err != nil {
		return LeaseState{}, fmt.Errorf("store: acquire %s: reading lease record: %w", run, err)
	}
	if found && cur.Holder != l.cfg.holder() && now < cur.Expiry && !l.cfg.Takeover {
		return LeaseState{}, fmt.Errorf("store: acquire %s: %w (holder %q, epoch %d, expires t=%g, now t=%g)",
			run, ErrLeaseHeld, cur.Holder, cur.Epoch, cur.Expiry, now)
	}
	next := LeaseState{Epoch: cur.Epoch + 1, Holder: l.cfg.holder(), Expiry: now + l.cfg.ttl()}
	if err := l.writeLease(run, next); err != nil {
		return LeaseState{}, fmt.Errorf("store: acquire %s: writing lease record: %w", run, err)
	}
	// Read-back arbitration: a racing acquirer may have overwritten the
	// record between our write and now — whoever's record survived owns
	// the epoch.
	got, found, err := l.readLease(run)
	if err != nil {
		return LeaseState{}, fmt.Errorf("store: acquire %s: verifying lease record: %w", run, err)
	}
	if !found || got.Epoch != next.Epoch || got.Holder != next.Holder {
		l.mu.Lock()
		l.stats.Fenced++
		l.mu.Unlock()
		return LeaseState{}, fmt.Errorf("store: acquire %s: %w (lost the acquisition race to holder %q, epoch %d)",
			run, ErrFenced, got.Holder, got.Epoch)
	}
	l.mu.Lock()
	l.sessions[run] = &leaseSession{epoch: next.Epoch, expiry: next.Expiry}
	l.stats.Acquires++
	l.mu.Unlock()
	return next, nil
}

// guard validates this instance's claim before a write: re-read the
// lease record, fence on a higher epoch (or a same-epoch foreign
// holder — a lost acquisition race), self-heal a vanished record, and
// renew when the remaining TTL runs low. Renewal failure only fails the
// operation when the session has actually expired — an unexpired lease
// is still good, and the next guarded write retries the renewal.
func (l *LeaseStore) guard(op, run string, seq uint64) error {
	l.mu.Lock()
	s := l.sessions[run]
	holder := l.cfg.holder()
	l.mu.Unlock()
	if s == nil {
		return fmt.Errorf("store: %s %s/%d: %w (no lease acquired for run)", op, run, seq, ErrLeaseExpired)
	}
	now := l.now(run)
	l.mu.Lock()
	l.stats.Validations++
	l.mu.Unlock()
	cur, found, err := l.readLease(run)
	if err != nil {
		return fmt.Errorf("store: %s %s/%d: validating lease: %w: %w", op, run, seq, ErrLeaseExpired, err)
	}
	if found && (cur.Epoch > s.epoch || (cur.Epoch == s.epoch && cur.Holder != holder)) {
		l.mu.Lock()
		l.stats.Fenced++
		l.mu.Unlock()
		return fmt.Errorf("store: %s %s/%d: %w (holder %q epoch %d supersedes ours, epoch %d)",
			op, run, seq, ErrFenced, cur.Holder, cur.Epoch, s.epoch)
	}
	// Our epoch stands. Renew when the record is gone (self-heal), the
	// persisted expiry has passed (nobody claimed the gap), or the
	// remaining TTL is inside the renewal window.
	if !found || now >= cur.Expiry-l.cfg.renewWithin() {
		renewed := LeaseState{Epoch: s.epoch, Holder: holder, Expiry: now + l.cfg.ttl()}
		if werr := l.writeLease(run, renewed); werr != nil {
			if found && now < cur.Expiry {
				// Lease still live; renewal was advisory.
				return nil
			}
			return fmt.Errorf("store: %s %s/%d: renewing lease: %w: %w", op, run, seq, ErrLeaseExpired, werr)
		}
		l.mu.Lock()
		l.stats.Renewals++
		if s := l.sessions[run]; s != nil {
			s.expiry = renewed.Expiry
		}
		l.mu.Unlock()
	}
	return nil
}

// Save performs a guarded write: lease validation (and piggy-backed
// renewal) first, then the inner save. Writes to lease runs pass
// through — they are the lease machinery itself.
func (l *LeaseStore) Save(run string, seq uint64, payload []byte) error {
	if isLeaseRun(run) {
		return l.inner.Save(run, seq, payload)
	}
	if err := l.guard("save", run, seq); err != nil {
		return err
	}
	return l.inner.Save(run, seq, payload)
}

// Load passes through: reads never fence. A zombie may read freely —
// it is the write that would corrupt history, and that is what fences.
func (l *LeaseStore) Load(run string, seq uint64) ([]byte, error) {
	return l.inner.Load(run, seq)
}

// List passes through.
func (l *LeaseStore) List(run string) ([]uint64, error) {
	return l.inner.List(run)
}

// Delete performs a guarded delete.
func (l *LeaseStore) Delete(run string, seq uint64) error {
	if isLeaseRun(run) {
		return l.inner.Delete(run, seq)
	}
	if err := l.guard("delete", run, seq); err != nil {
		return err
	}
	return l.inner.Delete(run, seq)
}

// AcquireLease walks the decorator stack of s for a LeaseStore and
// ensures a lease on run, returning the held state. found=false means
// the stack carries no lease layer — the caller runs unfenced, which is
// the pre-lease behavior.
func AcquireLease(s Store, run string) (st LeaseState, found bool, err error) {
	for s != nil {
		if ls, isLease := s.(*LeaseStore); isLease {
			st, err := ls.Acquire(run)
			return st, true, err
		}
		u, isWrapper := s.(Unwrapper)
		if !isWrapper {
			break
		}
		s = u.Unwrap()
	}
	return LeaseState{}, false, nil
}

var (
	_ Store       = (*LeaseStore)(nil)
	_ ClockBinder = (*LeaseStore)(nil)
	_ Unwrapper   = (*LeaseStore)(nil)
)
