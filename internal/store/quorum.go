package store

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrQuorum reports an operation that could not assemble its quorum:
// too few replicas responded before their deadlines. It always wraps a
// representative replica error so classification still works — a
// transient one when retrying could plausibly assemble the quorum, the
// permanent failure otherwise.
var ErrQuorum = errors.New("store: quorum not reached")

// QuorumConfig parameterizes a QuorumStore over N replicas.
type QuorumConfig struct {
	// W is the write quorum: a Save (or Delete) succeeds once W
	// replicas acknowledge. Zero defaults to the majority N/2+1.
	W int
	// R is the read quorum: a Load (or List) succeeds once R replicas
	// respond. Zero defaults to the majority N/2+1. Choose W+R > N so
	// every read quorum intersects every write quorum.
	R int
	// Hedge, when positive, is the virtual-time delay after which a
	// read that has not yet assembled R responses from its first wave
	// proactively contacts the spare replicas, instead of waiting for
	// the stragglers' timeouts. Zero hedges only after the first wave's
	// slowest terminal event.
	Hedge float64
}

// QuorumStats counts quorum-level activity.
type QuorumStats struct {
	// Repairs counts stale or corrupt replicas overwritten with a good
	// payload on the read path.
	Repairs uint64
	// Hedged counts reads that contacted spare replicas beyond the
	// first wave.
	Hedged uint64
	// QuorumFailures counts operations that could not assemble their
	// quorum.
	QuorumFailures uint64
}

// QuorumStore replicates checkpoints across N replica stores with
// write-quorum W and read-quorum R semantics, hedged reads, and
// deterministic read repair. Replicas are contacted in ascending index
// order and all bookkeeping (response ordering, repair order, merge
// order) ties on replica index, so every outcome is deterministic for
// any replica count and any number of concurrently executing runs.
//
// Latency model: replicas respond "in parallel" in virtual time. The
// operation's charged latency is the quorum-assembly time — the W-th
// (or R-th) smallest response time — not the sum of replica latencies;
// stragglers beyond the quorum and read repair run off the critical
// path. A failed operation charges the slowest terminal event among
// everything it waited on.
//
// Compose each replica as Checked(NewRemoteStore(...)) so torn frames
// below the network surface as ErrCorrupt negative responses the
// quorum can out-vote and repair — detected, not decoded. QuorumStore
// is itself a latency-tracking layer (LastOp/RunLatency) and forwards
// clock bindings to every replica.
type QuorumStore struct {
	replicas []Store
	w, r     int
	hedge    float64

	// bookkeeping shares the FaultStore/RemoteStore mutex-and-maps
	// idiom; one executor drives a run, but runs share the store.
	mu      sync.Mutex
	clocks  map[string]func() float64
	runOps  map[string]uint64
	runLat  map[string]float64
	lastLat map[string]float64
	stats   QuorumStats
}

// NewQuorumStore builds a quorum store over the given replicas. W and
// R default to the majority when zero; both are clamped no higher than
// the replica count.
func NewQuorumStore(replicas []Store, cfg QuorumConfig) (*QuorumStore, error) {
	n := len(replicas)
	if n == 0 {
		return nil, fmt.Errorf("store: quorum needs at least one replica")
	}
	w, r := cfg.W, cfg.R
	if w == 0 {
		w = n/2 + 1
	}
	if r == 0 {
		r = n/2 + 1
	}
	if w < 1 || w > n || r < 1 || r > n {
		return nil, fmt.Errorf("store: quorum W=%d R=%d invalid for %d replicas", w, r, n)
	}
	q := &QuorumStore{
		replicas: replicas,
		w:        w,
		r:        r,
		hedge:    cfg.Hedge,
		clocks:   make(map[string]func() float64),
		runOps:   make(map[string]uint64),
		runLat:   make(map[string]float64),
		lastLat:  make(map[string]float64),
	}
	return q, nil
}

// Replicas returns the replica count.
func (q *QuorumStore) Replicas() int { return len(q.replicas) }

// Stats returns a snapshot of quorum-level counters.
func (q *QuorumStore) Stats() QuorumStats {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.stats
}

// BindClock forwards the binding to every replica stack and keeps it
// for the quorum's own bookkeeping.
func (q *QuorumStore) BindClock(run string, now func() float64) {
	q.mu.Lock()
	q.clocks[run] = now
	q.mu.Unlock()
	for _, rep := range q.replicas {
		BindClock(rep, run, now)
	}
}

// LastOp returns the run's quorum-operation count and the exact
// quorum-assembly latency of its most recent operation. Each
// Save/Load/List/Delete counts as ONE operation regardless of replica
// fan-out, so executors that difference Ops around a save observe
// exactly one increment.
func (q *QuorumStore) LastOp(run string) RunOp {
	q.mu.Lock()
	defer q.mu.Unlock()
	return RunOp{Ops: q.runOps[run], Latency: q.lastLat[run]}
}

// RunLatency returns the run's accumulated quorum-assembly latency.
func (q *QuorumStore) RunLatency(run string) float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.runLat[run]
}

// record books one quorum operation's latency for run.
func (q *QuorumStore) record(run string, lat float64) {
	q.mu.Lock()
	q.runOps[run]++
	q.runLat[run] += lat
	q.lastLat[run] = lat
	q.mu.Unlock()
}

// replicaOp runs op against replica i and returns the virtual latency
// the replica stack charged for it (zero when the stack tracks none).
func (q *QuorumStore) replicaOp(i int, run string, op func(Store) error) (float64, error) {
	rep := q.replicas[i]
	before, tracked := LastOp(rep, run)
	err := op(rep)
	if !tracked {
		return 0, err
	}
	after, _ := LastOp(rep, run)
	if after.Ops > before.Ops {
		return after.Latency, err
	}
	return 0, err
}

// permanentErr classifies a replica failure: quota, corruption and
// not-found cannot be fixed by retrying the same operation.
func permanentErr(err error) bool {
	return errors.Is(err, ErrQuota) || errors.Is(err, ErrCorrupt) || errors.Is(err, ErrNotFound)
}

// quorumErr assembles the representative error for a failed quorum:
// when enough of the failures are transient that a retry could still
// assemble the quorum, a transient failure is wrapped (the operation
// classifies transient); otherwise the first permanent failure is.
func quorumErr(op, run string, seq uint64, got, need int, failures []error) error {
	needed := need - got
	var transient, permanent error
	transients := 0
	for _, e := range failures {
		if e == nil {
			continue
		}
		if permanentErr(e) {
			if permanent == nil {
				permanent = e
			}
			continue
		}
		transients++
		if transient == nil {
			transient = e
		}
	}
	rep := transient
	if transients < needed && permanent != nil {
		rep = permanent
	}
	if rep == nil {
		rep = fmt.Errorf("no replica reachable")
	}
	return fmt.Errorf("store: %s %s/%d: %d/%d replicas: %w: %w", op, run, seq, got, need, ErrQuorum, rep)
}

// kthSmallest returns the k-th smallest value (1-based) of xs by
// sorting a copy: O(n log n) on quorum-sized inputs, duplicate values
// occupy adjacent ranks, and xs is never mutated.
func kthSmallest(xs []float64, k int) float64 {
	ys := append([]float64(nil), xs...)
	sort.Float64s(ys)
	return ys[k-1]
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Save fans the write out to every replica and succeeds once W
// acknowledge. Charged latency is the W-th fastest acknowledgment;
// a failed save charges the slowest terminal event.
func (q *QuorumStore) Save(run string, seq uint64, payload []byte) error {
	n := len(q.replicas)
	lats := make([]float64, n)
	errs := make([]error, n)
	var acks []float64
	for i := 0; i < n; i++ {
		lats[i], errs[i] = q.replicaOp(i, run, func(s Store) error { return s.Save(run, seq, payload) })
		if errs[i] == nil {
			acks = append(acks, lats[i])
		}
	}
	if len(acks) >= q.w {
		q.record(run, kthSmallest(acks, q.w))
		return nil
	}
	q.record(run, maxOf(lats))
	q.mu.Lock()
	q.stats.QuorumFailures++
	q.mu.Unlock()
	return quorumErr("save", run, seq, len(acks), q.w, errs)
}

// reply is one replica's answer on the read path. A response is an
// answer that arrived before the replica's deadline — a payload, or a
// definite negative (not-found / corrupt). Timeouts are non-responses:
// their terminal time is still waited on when the quorum cannot be
// assembled without them.
type reply struct {
	idx      int
	at       float64
	payload  []byte
	negative bool // responded, but with not-found or corrupt
	err      error
}

// Load assembles a read quorum with hedging: the first R replicas are
// contacted immediately; if they do not yield R responses, the spare
// replicas are contacted at the hedge delay (or, without one, after
// the first wave's slowest terminal event). The returned payload is
// the first positive response in completion order (ties on replica
// index); replicas that responded negatively are then repaired off the
// critical path. All R responses negative means the checkpoint
// definitively does not exist at this quorum: ErrNotFound.
func (q *QuorumStore) Load(run string, seq uint64) ([]byte, error) {
	n := len(q.replicas)
	contact := func(i int, offset float64) reply {
		var payload []byte
		lat, err := q.replicaOp(i, run, func(s Store) error {
			var ierr error
			payload, ierr = s.Load(run, seq)
			return ierr
		})
		rp := reply{idx: i, at: offset + lat, err: err}
		switch {
		case err == nil:
			rp.payload = payload
		case permanentErr(err):
			rp.negative = true
		}
		return rp
	}

	first := q.r
	if first > n {
		first = n
	}
	var responses, failures []reply
	for i := 0; i < first; i++ {
		rp := contact(i, 0)
		if rp.err == nil || rp.negative {
			responses = append(responses, rp)
		} else {
			failures = append(failures, rp)
		}
	}

	// Hedge: contact the spares when the first wave cannot assemble R
	// responses on its own.
	if len(responses) < q.r && first < n {
		start := q.hedge
		if start <= 0 {
			var terminals []float64
			for _, rp := range responses {
				terminals = append(terminals, rp.at)
			}
			for _, rp := range failures {
				terminals = append(terminals, rp.at)
			}
			start = maxOf(terminals)
		}
		q.mu.Lock()
		q.stats.Hedged++
		q.mu.Unlock()
		for i := first; i < n; i++ {
			rp := contact(i, start)
			if rp.err == nil || rp.negative {
				responses = append(responses, rp)
			} else {
				failures = append(failures, rp)
			}
		}
	}

	// Completion order: by virtual arrival time, ties on replica index.
	sort.SliceStable(responses, func(a, b int) bool {
		if responses[a].at != responses[b].at {
			return responses[a].at < responses[b].at
		}
		return responses[a].idx < responses[b].idx
	})

	if len(responses) < q.r {
		var terminals []float64
		errs := make([]error, 0, len(failures))
		for _, rp := range responses {
			terminals = append(terminals, rp.at)
		}
		for _, rp := range failures {
			terminals = append(terminals, rp.at)
			errs = append(errs, rp.err)
		}
		q.record(run, maxOf(terminals))
		q.mu.Lock()
		q.stats.QuorumFailures++
		q.mu.Unlock()
		return nil, quorumErr("load", run, seq, len(responses), q.r, errs)
	}

	// The read completes when the R-th response arrives.
	quorum := responses[:q.r]
	q.record(run, quorum[q.r-1].at)
	var payload []byte
	for _, rp := range quorum {
		if !rp.negative {
			payload = rp.payload
			break
		}
	}
	if payload == nil {
		// Check late responses too before declaring absence — a spare
		// that answered after the quorum may still hold the payload
		// (only possible when W+R ≤ N).
		for _, rp := range responses[q.r:] {
			if !rp.negative {
				payload = rp.payload
				break
			}
		}
		if payload == nil {
			return nil, fmt.Errorf("store: load %s/%d: %w", run, seq, ErrNotFound)
		}
	}

	// Read repair, off the critical path, in ascending replica index:
	// every contacted replica that answered with a definite negative —
	// or with payload bytes that diverge from the chosen one — gets the
	// good payload re-written. Repair failures are ignored — the next
	// read (or an anti-entropy pass) retries.
	var stale []int
	for _, rp := range responses {
		if rp.negative || (rp.err == nil && !bytes.Equal(rp.payload, payload)) {
			stale = append(stale, rp.idx)
		}
	}
	sort.Ints(stale)
	for _, i := range stale {
		if _, err := q.replicaOp(i, run, func(s Store) error { return s.Save(run, seq, payload) }); err == nil {
			q.mu.Lock()
			q.stats.Repairs++
			q.mu.Unlock()
		}
	}
	return payload, nil
}

// List contacts every replica and merges the sequence sets of all
// successful responses (ascending, deduplicated) once at least R
// replicas answered. Late responses still merge — a conservative
// union can only offer the executor more fallback points.
func (q *QuorumStore) List(run string) ([]uint64, error) {
	n := len(q.replicas)
	var oks []float64
	var terminals []float64
	errs := make([]error, 0, n)
	seen := make(map[uint64]bool)
	for i := 0; i < n; i++ {
		var seqs []uint64
		lat, err := q.replicaOp(i, run, func(s Store) error {
			var ierr error
			seqs, ierr = s.List(run)
			return ierr
		})
		terminals = append(terminals, lat)
		if err != nil {
			errs = append(errs, err)
			continue
		}
		oks = append(oks, lat)
		for _, sq := range seqs {
			seen[sq] = true
		}
	}
	if len(oks) < q.r {
		q.record(run, maxOf(terminals))
		q.mu.Lock()
		q.stats.QuorumFailures++
		q.mu.Unlock()
		return nil, quorumErr("list", run, 0, len(oks), q.r, errs)
	}
	q.record(run, kthSmallest(oks, q.r))
	merged := make([]uint64, 0, len(seen))
	for sq := range seen {
		merged = append(merged, sq)
	}
	sort.Slice(merged, func(a, b int) bool { return merged[a] < merged[b] })
	return merged, nil
}

// Delete fans out to every replica; a replica that reports not-found
// counts as an acknowledgment (the checkpoint is gone there already).
// The delete succeeds once W replicas acknowledge, and reports
// ErrNotFound only when every acknowledgment was a not-found.
func (q *QuorumStore) Delete(run string, seq uint64) error {
	n := len(q.replicas)
	lats := make([]float64, n)
	errs := make([]error, n)
	var acks []float64
	deleted := false
	for i := 0; i < n; i++ {
		lats[i], errs[i] = q.replicaOp(i, run, func(s Store) error { return s.Delete(run, seq) })
		if errs[i] == nil || errors.Is(errs[i], ErrNotFound) {
			acks = append(acks, lats[i])
			if errs[i] == nil {
				deleted = true
			}
		}
	}
	if len(acks) >= q.w {
		q.record(run, kthSmallest(acks, q.w))
		if !deleted {
			return fmt.Errorf("store: delete %s/%d: %w", run, seq, ErrNotFound)
		}
		return nil
	}
	q.record(run, maxOf(lats))
	q.mu.Lock()
	q.stats.QuorumFailures++
	q.mu.Unlock()
	return quorumErr("delete", run, seq, len(acks), q.w, errs)
}

var (
	_ Store       = (*QuorumStore)(nil)
	_ ClockBinder = (*QuorumStore)(nil)
)
